//! Synthetic molecule workloads.
//!
//! Random tree-shaped molecules in the linear notation (always parseable
//! by construction), with controllable size and heteroatom density, plus
//! helpers to plant substructure-bearing molecules so searches have known
//! answers.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic molecule generator.
pub struct MoleculeWorkload {
    rng: StdRng,
}

const ELEMENTS: [&str; 4] = ["C", "N", "O", "S"];

impl MoleculeWorkload {
    /// Generator with a fixed seed.
    pub fn new(seed: u64) -> Self {
        MoleculeWorkload { rng: StdRng::seed_from_u64(seed) }
    }

    fn atom(&mut self) -> &'static str {
        // Carbon-rich, like real organic molecules.
        if self.rng.gen_bool(0.7) {
            "C"
        } else {
            ELEMENTS[self.rng.gen_range(1..ELEMENTS.len())]
        }
    }

    fn bond(&mut self) -> &'static str {
        match self.rng.gen_range(0..10) {
            0 => "=",
            1 => "#",
            _ => "",
        }
    }

    /// A random tree-shaped molecule of roughly `atoms` atoms.
    pub fn molecule(&mut self, atoms: usize) -> String {
        let mut out = String::from(self.atom());
        let mut remaining = atoms.saturating_sub(1);
        self.grow(&mut out, &mut remaining, 0);
        out
    }

    fn grow(&mut self, out: &mut String, remaining: &mut usize, depth: usize) {
        while *remaining > 0 {
            if depth < 3 && *remaining > 2 && self.rng.gen_bool(0.25) {
                // Branch.
                out.push('(');
                out.push_str(self.bond());
                out.push_str(self.atom());
                *remaining -= 1;
                self.grow(out, remaining, depth + 1);
                out.push(')');
                if *remaining == 0 {
                    return;
                }
            }
            out.push_str(self.bond());
            out.push_str(self.atom());
            *remaining -= 1;
            if depth > 0 && self.rng.gen_bool(0.3) {
                return; // end this branch
            }
        }
    }

    /// A molecule guaranteed to contain `fragment` (appended extensions).
    pub fn molecule_containing(&mut self, fragment: &str, extra_atoms: usize) -> String {
        let mut out = String::from(fragment);
        let mut remaining = extra_atoms;
        self.grow(&mut out, &mut remaining, 1);
        out
    }

    /// A corpus of `n` molecules of `atoms`±50% size.
    pub fn corpus(&mut self, n: usize, atoms: usize) -> Vec<String> {
        (0..n)
            .map(|_| {
                let lo = (atoms / 2).max(1);
                let hi = atoms + atoms / 2;
                let size = self.rng.gen_range(lo..=hi);
                self.molecule(size)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::molecule::Molecule;

    #[test]
    fn generated_molecules_parse() {
        let mut g = MoleculeWorkload::new(42);
        for _ in 0..200 {
            let s = g.molecule(12);
            assert!(Molecule::parse(&s).is_ok(), "unparseable generated molecule {s:?}");
        }
    }

    #[test]
    fn containing_molecules_contain_the_fragment() {
        let mut g = MoleculeWorkload::new(7);
        let frag = Molecule::parse("CC=O").unwrap();
        for _ in 0..50 {
            let s = g.molecule_containing("CC=O", 5);
            let m = Molecule::parse(&s).expect("parseable");
            assert!(m.contains_subgraph(&frag), "{s} should contain CC=O");
        }
    }

    #[test]
    fn corpus_sizes() {
        let mut g = MoleculeWorkload::new(1);
        let c = g.corpus(25, 10);
        assert_eq!(c.len(), 25);
        for s in &c {
            let m = Molecule::parse(s).unwrap();
            assert!(m.atom_count() >= 5 && m.atom_count() <= 15, "{s}");
        }
    }

    #[test]
    fn deterministic() {
        let mut a = MoleculeWorkload::new(5);
        let mut b = MoleculeWorkload::new(5);
        assert_eq!(a.molecule(10), b.molecule(10));
    }
}
