//! Synthetic spatial workloads.
//!
//! Stand-in for the paper's roads/parks layers: deterministic generators
//! producing rectangles (and optional triangles) either uniformly over the
//! world or clustered around hot spots, so overlap-join selectivity can be
//! controlled.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::geometry::{Geometry, Mbr};

/// Deterministic geometry generator over a square world.
pub struct SpatialWorkload {
    rng: StdRng,
    /// World side length.
    pub world: f64,
}

impl SpatialWorkload {
    /// Generator with a fixed seed.
    pub fn new(world: f64, seed: u64) -> Self {
        SpatialWorkload { rng: StdRng::seed_from_u64(seed), world }
    }

    /// A random rectangle with sides in `[min_size, max_size]`.
    pub fn rect(&mut self, min_size: f64, max_size: f64) -> Geometry {
        let w = self.rng.gen_range(min_size..=max_size);
        let h = self.rng.gen_range(min_size..=max_size);
        let x = self.rng.gen_range(0.0..(self.world - w));
        let y = self.rng.gen_range(0.0..(self.world - h));
        Geometry::Rect(Mbr { xmin: x, ymin: y, xmax: x + w, ymax: y + h })
    }

    /// A random triangle with extent about `size`.
    pub fn triangle(&mut self, size: f64) -> Geometry {
        let cx = self.rng.gen_range(size..(self.world - size));
        let cy = self.rng.gen_range(size..(self.world - size));
        let mut pts = Vec::with_capacity(3);
        for _ in 0..3 {
            pts.push((
                cx + self.rng.gen_range(-size..size),
                cy + self.rng.gen_range(-size..size),
            ));
        }
        Geometry::Polygon(pts)
    }

    /// `n` rectangles clustered around `hotspots` centers (cluster radius
    /// `spread`), the rest uniform; `cluster_fraction` of objects cluster.
    pub fn clustered_rects(
        &mut self,
        n: usize,
        hotspots: usize,
        spread: f64,
        cluster_fraction: f64,
        min_size: f64,
        max_size: f64,
    ) -> Vec<Geometry> {
        let centers: Vec<(f64, f64)> = (0..hotspots.max(1))
            .map(|_| {
                (
                    self.rng.gen_range(spread..(self.world - spread)),
                    self.rng.gen_range(spread..(self.world - spread)),
                )
            })
            .collect();
        (0..n)
            .map(|_| {
                if self.rng.gen_bool(cluster_fraction.clamp(0.0, 1.0)) {
                    let (cx, cy) = centers[self.rng.gen_range(0..centers.len())];
                    let w = self.rng.gen_range(min_size..=max_size);
                    let h = self.rng.gen_range(min_size..=max_size);
                    let x = (cx + self.rng.gen_range(-spread..spread))
                        .clamp(0.0, self.world - w);
                    let y = (cy + self.rng.gen_range(-spread..spread))
                        .clamp(0.0, self.world - h);
                    Geometry::Rect(Mbr { xmin: x, ymin: y, xmax: x + w, ymax: y + h })
                } else {
                    self.rect(min_size, max_size)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rects_stay_in_world() {
        let mut w = SpatialWorkload::new(100.0, 3);
        for _ in 0..100 {
            let g = w.rect(1.0, 5.0);
            let m = g.mbr();
            assert!(m.xmin >= 0.0 && m.ymax <= 100.0);
            assert!(m.xmax - m.xmin >= 1.0 && m.xmax - m.xmin <= 5.0);
        }
    }

    #[test]
    fn deterministic() {
        let mut a = SpatialWorkload::new(100.0, 9);
        let mut b = SpatialWorkload::new(100.0, 9);
        assert_eq!(a.rect(1.0, 5.0), b.rect(1.0, 5.0));
    }

    #[test]
    fn clustered_generation() {
        let mut w = SpatialWorkload::new(1000.0, 5);
        let geoms = w.clustered_rects(200, 3, 50.0, 0.8, 2.0, 10.0);
        assert_eq!(geoms.len(), 200);
    }

    #[test]
    fn triangles_have_three_vertices() {
        let mut w = SpatialWorkload::new(100.0, 1);
        match w.triangle(5.0) {
            Geometry::Polygon(p) => assert_eq!(p.len(), 3),
            other => panic!("{other:?}"),
        }
    }
}
