//! Page and segment identities.
//!
//! The engine models storage as segments of fixed-size pages. Rows are kept
//! as structured values rather than serialized bytes, but page *occupancy*
//! is tracked with byte estimates so that page counts — and therefore all
//! I/O statistics — scale the way a real slotted-page layout would.

/// Fixed page size in bytes (Oracle's common 8 KiB block).
pub const PAGE_SIZE: usize = 8192;

/// Maximum row slots per heap page regardless of row size.
pub const MAX_SLOTS_PER_PAGE: usize = 512;

/// Modeled B-tree fanout for index-organized tables: how many child
/// pointers fit an internal page. Drives the modeled tree height used for
/// I/O charging on probes.
pub const BTREE_FANOUT: usize = 256;

/// Identifier of a storage segment (one heap table, IOT, or index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SegmentId(pub u32);

impl std::fmt::Display for SegmentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SEG{}", self.0)
    }
}

/// Modeled height of a B-tree holding `n` entries with [`BTREE_FANOUT`]:
/// the number of page reads a point probe costs. Always at least 1.
pub fn btree_height(n: usize) -> usize {
    let mut height = 1usize;
    let mut reach = BTREE_FANOUT;
    while reach < n.max(1) {
        height += 1;
        reach = reach.saturating_mul(BTREE_FANOUT);
    }
    height
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn height_grows_logarithmically() {
        assert_eq!(btree_height(0), 1);
        assert_eq!(btree_height(1), 1);
        assert_eq!(btree_height(BTREE_FANOUT), 1);
        assert_eq!(btree_height(BTREE_FANOUT + 1), 2);
        assert_eq!(btree_height(BTREE_FANOUT * BTREE_FANOUT), 2);
        assert_eq!(btree_height(BTREE_FANOUT * BTREE_FANOUT + 1), 3);
    }

    #[test]
    fn segment_display() {
        assert_eq!(SegmentId(7).to_string(), "SEG7");
    }
}
