//! A second spatial indextype: `Sdo_Relate` via an R-tree.
//!
//! Same operator, same queries, same geometry table — different primary
//! filter. The paper's §3.2.2 point: "the Oracle8i extensibility
//! framework allows changing the underlying spatial indexing algorithms
//! without requiring the end users to change their queries." Swap
//! `INDEXTYPE IS SpatialIndexType` for `INDEXTYPE IS RtreeIndexType` and
//! every query keeps working.
//!
//! Storage: `DR$<index>$R (nodeid, payload)` holds the R-tree nodes (see
//! [`crate::rtree`]); `DR$<index>$G (rid, geom)` holds serialized
//! geometries for the exact filter, identical to the tile cartridge's.

use extidx_common::{Error, Result, RowId, Value};
use extidx_core::build::{try_partition_map, DEFAULT_BUILD_BATCH_ROWS};
use extidx_core::meta::{IndexInfo, OperatorCall};
use extidx_core::params::ParamString;
use extidx_core::scan::{FetchResult, ScanContext};
use extidx_core::server::{BaseRow, ServerContext};
use extidx_core::stats::{IndexCost, OdciStats};
use extidx_core::OdciIndex;

use crate::cartridge::{exact_fetch, geom_table, SpatialScan};
use crate::geometry::{Geometry, Mask};
use crate::rtree::RTree;

/// The R-tree indextype implementation.
pub struct RtreeIndexMethods;

fn rtree_table(info: &IndexInfo) -> String {
    info.storage_table_name("R")
}

fn index_one(srv: &mut dyn ServerContext, info: &IndexInfo, rid: RowId, value: &Value) -> Result<()> {
    if value.is_null() {
        return Ok(());
    }
    let g = Geometry::from_value(value)?;
    let table = rtree_table(info);
    RTree::open(srv, table).insert(rid, g.mbr())?;
    srv.execute(
        &format!("INSERT INTO {} VALUES (?, ?)", geom_table(info)),
        &[Value::RowId(rid), Value::from(g.serialize())],
    )?;
    Ok(())
}

fn unindex_one(srv: &mut dyn ServerContext, info: &IndexInfo, rid: RowId, value: &Value) -> Result<()> {
    if value.is_null() {
        return Ok(());
    }
    let g = Geometry::from_value(value)?;
    let table = rtree_table(info);
    RTree::open(srv, table).delete(rid, g.mbr())?;
    srv.execute(
        &format!("DELETE FROM {} WHERE rid = ?", geom_table(info)),
        &[Value::RowId(rid)],
    )?;
    Ok(())
}

impl RtreeIndexMethods {
    /// Stream the base table through [`OdciIndex::build_batch`] — the
    /// R-tree itself mutates serially, but parsing still fans out.
    fn populate_from_base(&self, srv: &mut dyn ServerContext, info: &IndexInfo) -> Result<()> {
        let parallel = info.parameters.parallel_degree();
        srv.scan_base_batches(
            &info.table_name,
            &[&info.column_name],
            DEFAULT_BUILD_BATCH_ROWS,
            &mut |srv, batch| self.build_batch(srv, info, batch, parallel),
        )
    }
}

impl OdciIndex for RtreeIndexMethods {
    fn create(&self, srv: &mut dyn ServerContext, info: &IndexInfo) -> Result<()> {
        RTree::create(srv, rtree_table(info))?;
        srv.execute(
            &format!(
                "CREATE TABLE {} (rid ROWID, geom VARCHAR2(4000), PRIMARY KEY (rid)) \
                 ORGANIZATION INDEX",
                geom_table(info)
            ),
            &[],
        )?;
        self.populate_from_base(srv, info)
    }

    fn alter(&self, srv: &mut dyn ServerContext, info: &IndexInfo, _delta: &ParamString) -> Result<()> {
        self.truncate(srv, info)?;
        self.populate_from_base(srv, info)
    }

    fn build_batch(
        &self,
        srv: &mut dyn ServerContext,
        info: &IndexInfo,
        batch: &[BaseRow],
        parallel: usize,
    ) -> Result<()> {
        // Parse + MBR + serialization are pure CPU and fan out; the tree
        // insertions are stateful (node splits) and stay serial on the
        // coordinator, in input order.
        let prepared = try_partition_map(batch, parallel, |row| {
            let v = row.value();
            if v.is_null() {
                return Ok::<_, Error>(None);
            }
            let g = Geometry::from_value(v)?;
            Ok(Some((row.rid, g.mbr(), g.serialize())))
        })?;
        let rt = rtree_table(info);
        let gt = geom_table(info);
        for (rid, mbr, geom) in prepared.into_iter().flatten() {
            RTree::open(srv, rt.clone()).insert(rid, mbr)?;
            srv.execute(
                &format!("INSERT INTO {gt} VALUES (?, ?)"),
                &[Value::RowId(rid), Value::from(geom)],
            )?;
        }
        Ok(())
    }

    fn truncate(&self, srv: &mut dyn ServerContext, info: &IndexInfo) -> Result<()> {
        srv.execute(&format!("TRUNCATE TABLE {}", rtree_table(info)), &[])?;
        // Re-initialize an empty root.
        let table = rtree_table(info);
        srv.execute(&format!("INSERT INTO {table} VALUES (0, '1,2')"), &[])?;
        srv.execute(&format!("INSERT INTO {table} VALUES (1, 'L|')"), &[])?;
        srv.execute(&format!("TRUNCATE TABLE {}", geom_table(info)), &[])?;
        Ok(())
    }

    fn drop_index(&self, srv: &mut dyn ServerContext, info: &IndexInfo) -> Result<()> {
        srv.execute(&format!("DROP TABLE {}", rtree_table(info)), &[])?;
        srv.execute(&format!("DROP TABLE {}", geom_table(info)), &[])?;
        Ok(())
    }

    fn insert(
        &self,
        srv: &mut dyn ServerContext,
        info: &IndexInfo,
        rid: RowId,
        new_value: &Value,
    ) -> Result<()> {
        index_one(srv, info, rid, new_value)?;
        srv.fault_point("rtree.maintenance.indexed")
    }

    fn update(
        &self,
        srv: &mut dyn ServerContext,
        info: &IndexInfo,
        rid: RowId,
        old_value: &Value,
        new_value: &Value,
    ) -> Result<()> {
        unindex_one(srv, info, rid, old_value)?;
        // Old entry removed from the R-tree, new one not yet inserted.
        srv.fault_point("rtree.maintenance.reindex")?;
        index_one(srv, info, rid, new_value)
    }

    fn delete(
        &self,
        srv: &mut dyn ServerContext,
        info: &IndexInfo,
        rid: RowId,
        old_value: &Value,
    ) -> Result<()> {
        unindex_one(srv, info, rid, old_value)
    }

    fn start(
        &self,
        srv: &mut dyn ServerContext,
        info: &IndexInfo,
        op: &OperatorCall,
    ) -> Result<ScanContext> {
        let query = Geometry::from_value(op.args.first().ok_or_else(|| {
            Error::odci(&info.indextype_name, "ODCIIndexStart", "missing query geometry")
        })?)?;
        let mask = Mask::parse(op.args.get(1).and_then(|v| v.as_str().ok()).unwrap_or("ANYINTERACT"))?;
        // Primary filter: R-tree window search on the query MBR.
        let table = rtree_table(info);
        let candidates = RTree::open(srv, table).search(&query.mbr())?;
        let primary = candidates.len();
        Ok(ScanContext::State(Box::new(SpatialScan {
            query,
            mask,
            candidates,
            pos: 0,
            primary_candidates: primary,
        })))
    }

    fn fetch(
        &self,
        srv: &mut dyn ServerContext,
        info: &IndexInfo,
        ctx: &mut ScanContext,
        nrows: usize,
    ) -> Result<FetchResult> {
        let gt = geom_table(info);
        let st = ctx.state_mut::<SpatialScan>().ok_or_else(|| {
            Error::odci(&info.indextype_name, "ODCIIndexFetch", "bad scan state")
        })?;
        exact_fetch(srv, &gt, st, nrows)
    }

    fn close(&self, _srv: &mut dyn ServerContext, _info: &IndexInfo, _ctx: ScanContext) -> Result<()> {
        Ok(())
    }
}

/// ODCIStats for the R-tree indextype: selectivity from the query MBR's
/// share of the indexed extent; cost from tree height plus candidates.
pub struct RtreeStats;

impl OdciStats for RtreeStats {
    fn collect(&self, _srv: &mut dyn ServerContext, _info: &IndexInfo) -> Result<()> {
        Ok(())
    }

    fn selectivity(
        &self,
        srv: &mut dyn ServerContext,
        info: &IndexInfo,
        op: &OperatorCall,
    ) -> Result<f64> {
        let total = srv.query(&format!("SELECT COUNT(*) FROM {}", geom_table(info)), &[])?[0][0]
            .as_integer()? as f64;
        if total == 0.0 {
            return Ok(0.0);
        }
        let Some(first) = op.args.first() else { return Ok(0.01) };
        let Ok(query) = Geometry::from_value(first) else { return Ok(0.01) };
        // Estimate candidates by an actual (cheap) window search — the
        // tree is the statistic.
        let table = rtree_table(info);
        let candidates = RTree::open(srv, table).search(&query.mbr())?.len() as f64;
        Ok((candidates / total).clamp(0.0, 1.0))
    }

    fn index_cost(
        &self,
        srv: &mut dyn ServerContext,
        info: &IndexInfo,
        _op: &OperatorCall,
        selectivity: f64,
    ) -> Result<IndexCost> {
        let total = srv.query(&format!("SELECT COUNT(*) FROM {}", geom_table(info)), &[])?[0][0]
            .as_integer()? as f64;
        Ok(IndexCost {
            io_cost: 3.0 + (total.max(1.0)).log2() / 3.0 + selectivity * total / 8.0,
            cpu_cost: selectivity * total * 0.01,
        })
    }
}
