//! Seeded generation of schemas, rows, and statement streams.
//!
//! Everything here is *structured*: a statement is a value that renders
//! to SQL but also carries enough typed payload for the mirror
//! interpreter to evaluate it independently of the engine. Generation is
//! a pure function of the seed — the same seed always yields the same
//! statement list, which is what makes replay and shrinking sound.

use extidx_chem::MoleculeWorkload;
use extidx_spatial::{geometry_sql, Geometry, SpatialWorkload};
use extidx_text::CorpusGenerator;
use extidx_vir::SignatureWorkload;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// The heap-organized fuzz table.
pub const HEAP: &str = "F_HEAP";
/// The index-organized fuzz table (primary key `id`).
pub const IOT: &str = "F_IOT";

/// Probability that a generated cell is NULL — the workload is
/// deliberately NULL-heavy so three-valued logic divergences surface.
const NULL_P: f64 = 0.18;

/// One generated row. `id` values are unique across the whole workload
/// (a monotone counter), so result sets are identified by their id bags.
#[derive(Debug, Clone)]
pub struct GenRow {
    pub id: i64,
    pub doc: Option<String>,
    pub geom: Option<Geometry>,
    /// Serialized [`extidx_vir::Signature`]; both the engine (via the
    /// `VIR_IMAGE` literal) and the interpreter parse this same string.
    pub img: Option<String>,
    pub mol: Option<String>,
    pub num: Option<f64>,
}

fn quote(s: &str) -> String {
    format!("'{}'", s.replace('\'', "''"))
}

fn opt_str(v: &Option<String>) -> String {
    match v {
        Some(s) => quote(s),
        None => "NULL".into(),
    }
}

impl GenRow {
    pub fn insert_sql(&self, table: &str) -> String {
        let geom = match &self.geom {
            Some(g) => geometry_sql(g),
            None => "NULL".into(),
        };
        let img = match &self.img {
            Some(s) => format!("VIR_IMAGE({})", quote(s)),
            None => "NULL".into(),
        };
        let num = match self.num {
            Some(n) => format!("{n:.1}"),
            None => "NULL".into(),
        };
        format!(
            "INSERT INTO {table} VALUES ({}, {}, {geom}, {img}, {}, {num})",
            self.id,
            opt_str(&self.doc),
            opt_str(&self.mol),
        )
    }
}

/// The updatable columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Col {
    Doc,
    Geom,
    Img,
    Mol,
    Num,
}

impl Col {
    pub fn name(self) -> &'static str {
        match self {
            Col::Doc => "doc",
            Col::Geom => "geom",
            Col::Img => "img",
            Col::Mol => "mol",
            Col::Num => "num",
        }
    }
}

/// A new cell value for UPDATE, typed per column.
#[derive(Debug, Clone)]
pub enum GenCell {
    Doc(Option<String>),
    Geom(Option<Geometry>),
    Img(Option<String>),
    Mol(Option<String>),
    Num(Option<f64>),
}

impl GenCell {
    pub fn col(&self) -> Col {
        match self {
            GenCell::Doc(_) => Col::Doc,
            GenCell::Geom(_) => Col::Geom,
            GenCell::Img(_) => Col::Img,
            GenCell::Mol(_) => Col::Mol,
            GenCell::Num(_) => Col::Num,
        }
    }

    fn sql(&self) -> String {
        match self {
            GenCell::Doc(v) | GenCell::Mol(v) => opt_str(v),
            GenCell::Geom(Some(g)) => geometry_sql(g),
            GenCell::Img(Some(s)) => format!("VIR_IMAGE({})", quote(s)),
            GenCell::Num(Some(n)) => format!("{n:.1}"),
            GenCell::Geom(None) | GenCell::Img(None) | GenCell::Num(None) => "NULL".into(),
        }
    }
}

/// DML row selection — restricted to the unique `id` column so the
/// mirror's notion of "which rows changed" is trivially identical to the
/// engine's.
#[derive(Debug, Clone)]
pub enum IdPred {
    Eq(i64),
    Between(i64, i64),
}

impl IdPred {
    pub fn sql(&self) -> String {
        match self {
            IdPred::Eq(k) => format!("id = {k}"),
            IdPred::Between(lo, hi) => format!("id BETWEEN {lo} AND {hi}"),
        }
    }

    pub fn matches(&self, id: i64) -> bool {
        match self {
            IdPred::Eq(k) => id == *k,
            IdPred::Between(lo, hi) => (*lo..=*hi).contains(&id),
        }
    }
}

/// One atomic predicate. Operator literal arguments are `Option` so the
/// generator can inject NULL literals (a NULL operand makes the whole
/// operator NULL under three-valued logic).
#[derive(Debug, Clone)]
pub enum Atom {
    Contains { query: Option<String>, label: Option<i64> },
    SdoRelate { window: Option<Geometry>, mask: String },
    VirSimilar { sig: Option<String>, weights: String, threshold: f64 },
    MolContains { frag: Option<String> },
    MolSimilar { query: String, threshold: f64 },
    NumCmp { op: &'static str, value: f64 },
    IdEq { id: i64 },
    IdBetween { lo: i64, hi: i64 },
    IsNull { col: Col, negated: bool },
}

impl Atom {
    pub fn sql(&self) -> String {
        match self {
            Atom::Contains { query, label } => match label {
                Some(l) => format!("Contains(doc, {}, {l})", opt_str(query)),
                None => format!("Contains(doc, {})", opt_str(query)),
            },
            Atom::SdoRelate { window, mask } => {
                let w = match window {
                    Some(g) => geometry_sql(g),
                    None => "NULL".into(),
                };
                format!("Sdo_Relate(geom, {w}, 'mask={mask}')")
            }
            Atom::VirSimilar { sig, weights, threshold } => {
                format!(
                    "VirSimilar(img, {}, {}, {threshold:.1})",
                    opt_str(sig),
                    quote(weights)
                )
            }
            Atom::MolContains { frag } => format!("MolContains(mol, {})", opt_str(frag)),
            Atom::MolSimilar { query, threshold } => {
                format!("MolSimilar(mol, {}, {threshold:.2})", quote(query))
            }
            Atom::NumCmp { op, value } => format!("num {op} {value:.1}"),
            Atom::IdEq { id } => format!("id = {id}"),
            Atom::IdBetween { lo, hi } => format!("id BETWEEN {lo} AND {hi}"),
            Atom::IsNull { col, negated } => {
                format!("{} IS {}NULL", col.name(), if *negated { "NOT " } else { "" })
            }
        }
    }

    /// `(operator, column, arity, has_null_literal)` for atoms backed by
    /// a user-defined operator — what hint forcing needs to decide
    /// whether a domain index is applicable.
    pub fn op_info(&self) -> Option<(&'static str, &'static str, usize, bool)> {
        match self {
            Atom::Contains { query, label } => {
                Some(("CONTAINS", "DOC", 2 + usize::from(label.is_some()), query.is_none()))
            }
            Atom::SdoRelate { window, .. } => Some(("SDO_RELATE", "GEOM", 3, window.is_none())),
            Atom::VirSimilar { sig, .. } => Some(("VIRSIMILAR", "IMG", 4, sig.is_none())),
            Atom::MolContains { frag } => Some(("MOLCONTAINS", "MOL", 2, frag.is_none())),
            Atom::MolSimilar { .. } => Some(("MOLSIMILAR", "MOL", 3, false)),
            _ => None,
        }
    }

    /// Can a B-tree on `num` consume this atom?
    pub fn btreeable_on_num(&self) -> bool {
        matches!(self, Atom::NumCmp { .. })
    }
}

/// A two-level predicate tree: AND of atoms and 2-way OR groups.
#[derive(Debug, Clone)]
pub enum Pred {
    Atom(Atom),
    And(Vec<Pred>),
    Or(Vec<Pred>),
}

impl Pred {
    pub fn sql(&self) -> String {
        match self {
            Pred::Atom(a) => a.sql(),
            Pred::And(cs) => cs.iter().map(Pred::sql).collect::<Vec<_>>().join(" AND "),
            Pred::Or(cs) => {
                format!("({})", cs.iter().map(Pred::sql).collect::<Vec<_>>().join(" OR "))
            }
        }
    }

    /// Atoms that are top-level AND conjuncts — the only atoms an access
    /// path can consume, hence the only ones hint forcing may target.
    pub fn top_atoms(&self) -> Vec<&Atom> {
        match self {
            Pred::Atom(a) => vec![a],
            Pred::And(cs) => cs
                .iter()
                .filter_map(|c| match c {
                    Pred::Atom(a) => Some(a),
                    _ => None,
                })
                .collect(),
            Pred::Or(_) => Vec::new(),
        }
    }
}

/// A generated query: `SELECT id[, SCORE(label)] FROM table WHERE pred
/// [ORDER BY id LIMIT n]`.
#[derive(Debug, Clone)]
pub struct Query {
    pub table: &'static str,
    pub pred: Pred,
    /// Ancillary `SCORE(label)` select item; paired with a labeled atom.
    pub select_score: Option<i64>,
    /// `ORDER BY id LIMIT n` — id is unique, so the prefix is
    /// deterministic and comparable as an ordered list.
    pub order_limit: Option<u64>,
}

impl Query {
    /// Render, optionally with a plan-forcing hint after SELECT.
    pub fn sql(&self, hint: Option<&str>) -> String {
        let hint = hint.map(|h| format!("/*+ {h} */ ")).unwrap_or_default();
        let items = match self.select_score {
            Some(l) => format!("id, SCORE({l})"),
            None => "id".into(),
        };
        let tail = match self.order_limit {
            Some(n) => format!(" ORDER BY id LIMIT {n}"),
            None => String::new(),
        };
        format!("SELECT {hint}{items} FROM {} WHERE {}{tail}", self.table, self.pred.sql())
    }

    /// The NoREC companion: same predicate, aggregated server-side.
    pub fn count_sql(&self, hint: Option<&str>) -> String {
        let hint = hint.map(|h| format!("/*+ {h} */ ")).unwrap_or_default();
        format!("SELECT {hint}COUNT(*) FROM {} WHERE {}", self.table, self.pred.sql())
    }
}

/// One workload statement.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// Raw DDL (index create/drop) — no mirror effect.
    Sql(String),
    Truncate { table: &'static str },
    Insert { table: &'static str, row: GenRow },
    Update { table: &'static str, pred: IdPred, cell: GenCell },
    Delete { table: &'static str, pred: IdPred },
    Query(Query),
}

impl Stmt {
    /// The SQL this statement executes (queries render unhinted).
    pub fn sql(&self) -> String {
        match self {
            Stmt::Sql(s) => s.clone(),
            Stmt::Truncate { table } => format!("TRUNCATE TABLE {table}"),
            Stmt::Insert { table, row } => row.insert_sql(table),
            Stmt::Update { table, pred, cell } => {
                format!("UPDATE {table} SET {} = {} WHERE {}", cell.col().name(), cell.sql(), pred.sql())
            }
            Stmt::Delete { table, pred } => format!("DELETE FROM {table} WHERE {}", pred.sql()),
            Stmt::Query(q) => q.sql(None),
        }
    }
}

/// A complete generated workload: fixed schema preamble plus the random
/// statement stream.
#[derive(Debug, Clone)]
pub struct Workload {
    pub preamble: Vec<String>,
    pub stmts: Vec<Stmt>,
}

const MASKS: [&str; 6] = ["ANYINTERACT", "OVERLAPS", "INSIDE", "CONTAINS", "EQUAL", "TOUCH"];
const WEIGHTS: [&str; 3] = ["", "globalcolor=1.0", "globalcolor=0.5, texture=0.5"];
const NUM_OPS: [&str; 5] = ["<", "<=", ">", ">=", "="];

/// Domain/B-tree index slots the stream can drop and recreate. Names are
/// fixed; the indexing *scheme* behind the geometry slot can flip between
/// the tile and R-tree cartridges across recreations (§3.2.2's
/// algorithm-swap claim, fuzzed).
#[derive(Debug, Clone, Copy)]
enum SlotKind {
    Text,
    Geo,
    Img,
    Mol,
    Num,
}

struct IndexSlot {
    name: &'static str,
    table: &'static str,
    kind: SlotKind,
}

const SLOTS: [IndexSlot; 10] = [
    IndexSlot { name: "QH_TXT", table: HEAP, kind: SlotKind::Text },
    IndexSlot { name: "QH_GEO", table: HEAP, kind: SlotKind::Geo },
    IndexSlot { name: "QH_IMG", table: HEAP, kind: SlotKind::Img },
    IndexSlot { name: "QH_MOL", table: HEAP, kind: SlotKind::Mol },
    IndexSlot { name: "QH_NUM", table: HEAP, kind: SlotKind::Num },
    IndexSlot { name: "QI_TXT", table: IOT, kind: SlotKind::Text },
    IndexSlot { name: "QI_GEO", table: IOT, kind: SlotKind::Geo },
    IndexSlot { name: "QI_IMG", table: IOT, kind: SlotKind::Img },
    IndexSlot { name: "QI_MOL", table: IOT, kind: SlotKind::Mol },
    IndexSlot { name: "QI_NUM", table: IOT, kind: SlotKind::Num },
];

struct WorkloadGen {
    rng: StdRng,
    next_id: i64,
    corpus: CorpusGenerator,
    spatial: SpatialWorkload,
    sigs: SignatureWorkload,
    mols: MoleculeWorkload,
    /// Substructure fragments reused between stored molecules and
    /// MolContains queries so matches actually occur.
    frags: Vec<String>,
    /// Serialized signatures of inserted images; query signatures are
    /// sometimes drawn from here so VirSimilar thresholds bite.
    sig_pool: Vec<String>,
    /// Which index slots the *generator* believes exist — only steers
    /// which DDL gets emitted; the harness derives truth from the
    /// catalog, so a stale belief just yields a no-op statement.
    slot_alive: [bool; SLOTS.len()],
}

impl WorkloadGen {
    fn new(seed: u64) -> Self {
        let mut mols = MoleculeWorkload::new(seed ^ 0x6d6f6c);
        let frags = vec![mols.molecule(3), mols.molecule(4), mols.molecule(3)];
        WorkloadGen {
            rng: StdRng::seed_from_u64(seed),
            next_id: 1,
            corpus: CorpusGenerator::new(50, 1.1, seed ^ 0x747874),
            spatial: SpatialWorkload::new(100.0, seed ^ 0x67656f),
            sigs: SignatureWorkload::new(seed ^ 0x696d67),
            mols,
            frags,
            sig_pool: Vec::new(),
            slot_alive: [true; SLOTS.len()],
        }
    }

    fn create_sql(&mut self, slot: &IndexSlot) -> String {
        let on = format!("CREATE INDEX {} ON {}", slot.name, slot.table);
        match slot.kind {
            SlotKind::Text => {
                let params = match self.rng.gen_range(0..3u32) {
                    0 => "",
                    1 => " PARAMETERS (':ScanMode PRECOMPUTE')",
                    _ => " PARAMETERS (':ScanMode INCREMENTAL')",
                };
                format!("{on}(doc) INDEXTYPE IS TextIndexType{params}")
            }
            SlotKind::Geo => {
                let it = if self.rng.gen_bool(0.5) { "SpatialIndexType" } else { "RtreeIndexType" };
                format!("{on}(geom) INDEXTYPE IS {it}")
            }
            SlotKind::Img => format!("{on}(img) INDEXTYPE IS VirIndexType"),
            SlotKind::Mol => format!("{on}(mol) INDEXTYPE IS ChemIndexType"),
            SlotKind::Num => format!("{on}(num)"),
        }
    }

    fn preamble(&mut self) -> Vec<String> {
        let cols = "doc VARCHAR2(4000), geom SDO_GEOMETRY, img VIR_IMAGE, \
                    mol VARCHAR2(400), num NUMBER";
        let mut out = vec![
            format!("CREATE TABLE {HEAP} (id INTEGER, {cols})"),
            format!("CREATE TABLE {IOT} (id INTEGER, {cols}, PRIMARY KEY (id)) ORGANIZATION INDEX"),
        ];
        for slot in &SLOTS {
            let sql = self.create_sql(slot);
            out.push(sql);
        }
        out
    }

    fn table(&mut self) -> &'static str {
        if self.rng.gen_bool(0.5) {
            HEAP
        } else {
            IOT
        }
    }

    fn row(&mut self) -> GenRow {
        let id = self.next_id;
        self.next_id += 1;
        let doc = (!self.rng.gen_bool(NULL_P)).then(|| self.corpus.document(8));
        let geom = (!self.rng.gen_bool(NULL_P)).then(|| self.spatial.rect(2.0, 25.0));
        let img = (!self.rng.gen_bool(NULL_P)).then(|| self.sigs.random().serialize());
        let mol = (!self.rng.gen_bool(NULL_P)).then(|| {
            if self.rng.gen_bool(0.5) {
                let f = self.frags[self.rng.gen_range(0..self.frags.len())].clone();
                self.mols.molecule_containing(&f, 4)
            } else {
                self.mols.molecule(8)
            }
        });
        let num = (!self.rng.gen_bool(NULL_P)).then(|| self.rng.gen_range(0..1000i64) as f64 / 10.0);
        if let Some(s) = &img {
            if self.sig_pool.len() < 24 {
                self.sig_pool.push(s.clone());
            }
        }
        GenRow { id, doc, geom, img, mol, num }
    }

    fn cell(&mut self) -> GenCell {
        let null = self.rng.gen_bool(0.25);
        match self.rng.gen_range(0..5u32) {
            0 => GenCell::Doc((!null).then(|| self.corpus.document(8))),
            1 => GenCell::Geom((!null).then(|| self.spatial.rect(2.0, 25.0))),
            2 => GenCell::Img((!null).then(|| self.sigs.random().serialize())),
            3 => GenCell::Mol((!null).then(|| self.mols.molecule(8))),
            _ => GenCell::Num((!null).then(|| self.rng.gen_range(0..1000i64) as f64 / 10.0)),
        }
    }

    fn id_pred(&mut self) -> IdPred {
        let hi = self.next_id.max(2);
        if self.rng.gen_bool(0.6) {
            IdPred::Eq(self.rng.gen_range(1..hi))
        } else {
            let lo = self.rng.gen_range(1..hi);
            IdPred::Between(lo, lo + self.rng.gen_range(0..6i64))
        }
    }

    fn text_query(&mut self) -> String {
        let term = |g: &mut Self| {
            let rank = g.rng.gen_range(0..g.corpus.vocab_size());
            g.corpus.term(rank).to_string()
        };
        let a = term(self);
        match self.rng.gen_range(0..4u32) {
            0 => a,
            1 => format!("{a} AND {}", term(self)),
            2 => format!("{a} OR {}", term(self)),
            _ => format!("{a} AND NOT {}", term(self)),
        }
    }

    fn atom(&mut self) -> Atom {
        // NULL literal injection rate for operator arguments.
        let null_lit = self.rng.gen_bool(0.08);
        match self.rng.gen_range(0..100u32) {
            0..=21 => Atom::Contains {
                query: (!null_lit).then(|| self.text_query()),
                label: None,
            },
            22..=39 => Atom::SdoRelate {
                window: (!null_lit).then(|| self.spatial.rect(5.0, 45.0)),
                mask: MASKS[self.rng.gen_range(0..MASKS.len())].to_string(),
            },
            40..=53 => {
                let sig = if null_lit {
                    None
                } else if !self.sig_pool.is_empty() && self.rng.gen_bool(0.5) {
                    Some(self.sig_pool[self.rng.gen_range(0..self.sig_pool.len())].clone())
                } else {
                    Some(self.sigs.random().serialize())
                };
                Atom::VirSimilar {
                    sig,
                    weights: WEIGHTS[self.rng.gen_range(0..WEIGHTS.len())].to_string(),
                    threshold: self.rng.gen_range(50..800i64) as f64 / 10.0,
                }
            }
            54..=67 => Atom::MolContains {
                frag: (!null_lit).then(|| self.frags[self.rng.gen_range(0..self.frags.len())].clone()),
            },
            68..=77 => Atom::MolSimilar {
                query: self.mols.molecule(6),
                threshold: self.rng.gen_range(10..80i64) as f64 / 100.0,
            },
            78..=87 => Atom::NumCmp {
                op: NUM_OPS[self.rng.gen_range(0..NUM_OPS.len())],
                value: self.rng.gen_range(0..1000i64) as f64 / 10.0,
            },
            88..=93 => {
                let hi = self.next_id.max(2);
                if self.rng.gen_bool(0.5) {
                    Atom::IdEq { id: self.rng.gen_range(1..hi) }
                } else {
                    let lo = self.rng.gen_range(1..hi);
                    Atom::IdBetween { lo, hi: lo + self.rng.gen_range(0..8i64) }
                }
            }
            _ => Atom::IsNull {
                col: [Col::Doc, Col::Geom, Col::Img, Col::Mol, Col::Num]
                    [self.rng.gen_range(0..5usize)],
                negated: self.rng.gen_bool(0.4),
            },
        }
    }

    fn query(&mut self) -> Query {
        let table = self.table();
        let n = self.rng.gen_range(1..=3u32);
        let mut children = Vec::new();
        for _ in 0..n {
            if self.rng.gen_bool(0.3) {
                children.push(Pred::Or(vec![Pred::Atom(self.atom()), Pred::Atom(self.atom())]));
            } else {
                children.push(Pred::Atom(self.atom()));
            }
        }
        let mut pred = if children.len() == 1 {
            children.pop().expect("one child")
        } else {
            Pred::And(children)
        };
        // Attach an ancillary-score label to the first eligible Contains
        // conjunct, paired with a SCORE(label) select item.
        let mut select_score = None;
        if self.rng.gen_bool(0.3) {
            let slots: &mut [Pred] = match &mut pred {
                Pred::And(cs) => cs,
                one => std::slice::from_mut(one),
            };
            for c in slots.iter_mut() {
                if let Pred::Atom(Atom::Contains { query: Some(_), label }) = c {
                    *label = Some(1);
                    select_score = Some(1);
                    break;
                }
            }
        }
        let order_limit = self.rng.gen_bool(0.3).then(|| self.rng.gen_range(1..=8u64));
        Query { table, pred, select_score, order_limit }
    }

    fn statement(&mut self) -> Stmt {
        match self.rng.gen_range(0..100u32) {
            0..=29 => {
                let table = self.table();
                let row = self.row();
                Stmt::Insert { table, row }
            }
            30..=39 => Stmt::Update { table: self.table(), pred: self.id_pred(), cell: self.cell() },
            40..=46 => Stmt::Delete { table: self.table(), pred: self.id_pred() },
            47..=50 => {
                let i = self.rng.gen_range(0..SLOTS.len());
                if self.slot_alive[i] {
                    self.slot_alive[i] = false;
                    Stmt::Sql(format!("DROP INDEX {}", SLOTS[i].name))
                } else {
                    self.slot_alive[i] = true;
                    let sql = self.create_sql(&SLOTS[i]);
                    Stmt::Sql(sql)
                }
            }
            51..=52 => Stmt::Truncate { table: self.table() },
            _ => Stmt::Query(self.query()),
        }
    }
}

/// Structured statement source for the concurrent scheduler
/// (`crate::concurrent`): the same seeded vocabulary as [`generate`],
/// handed out one statement at a time, restricted to the forms whose
/// serial commit-order replay is sound under snapshot isolation —
/// inserts of globally fresh ids and UPDATE/DELETE keyed by `id =`
/// equality. (Range predicates could straddle a concurrent insert, and
/// the resulting phantom behavior under SI legitimately differs from a
/// serial replay, so they stay out of the concurrent stream.)
pub struct ConcurrentGen {
    inner: WorkloadGen,
}

impl ConcurrentGen {
    pub fn new(seed: u64) -> Self {
        ConcurrentGen { inner: WorkloadGen::new(seed) }
    }

    /// The fixed schema preamble (both fuzz tables + all index slots).
    pub fn preamble(&mut self) -> Vec<String> {
        self.inner.preamble()
    }

    /// Pick one of the two fuzz tables.
    pub fn table(&mut self) -> &'static str {
        self.inner.table()
    }

    /// An INSERT of a globally fresh id.
    pub fn insert(&mut self, table: &'static str) -> Stmt {
        let row = self.inner.row();
        Stmt::Insert { table, row }
    }

    /// An UPDATE of exactly the row `id` (one random cell).
    pub fn update_eq(&mut self, table: &'static str, id: i64) -> Stmt {
        let cell = self.inner.cell();
        Stmt::Update { table, pred: IdPred::Eq(id), cell }
    }

    /// A DELETE of exactly the row `id`.
    pub fn delete_eq(&mut self, table: &'static str, id: i64) -> Stmt {
        Stmt::Delete { table, pred: IdPred::Eq(id) }
    }

    /// A domain-operator query (same shape as the serial stream's).
    pub fn query(&mut self) -> Query {
        self.inner.query()
    }
}

/// Generate the workload for `seed`: the fixed schema preamble plus `n`
/// random statements. Pure — identical inputs yield identical output.
pub fn generate(seed: u64, n: usize) -> Workload {
    let mut g = WorkloadGen::new(seed);
    let preamble = g.preamble();
    let stmts = (0..n).map(|_| g.statement()).collect();
    Workload { preamble, stmts }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate(42, 120);
        let b = generate(42, 120);
        assert_eq!(a.preamble, b.preamble);
        let asql: Vec<String> = a.stmts.iter().map(Stmt::sql).collect();
        let bsql: Vec<String> = b.stmts.iter().map(Stmt::sql).collect();
        assert_eq!(asql, bsql);
        let c = generate(43, 120);
        let csql: Vec<String> = c.stmts.iter().map(Stmt::sql).collect();
        assert_ne!(asql, csql, "different seeds must differ");
    }

    #[test]
    fn workload_covers_every_statement_kind() {
        let w = generate(7, 400);
        let mut kinds = [false; 6];
        for s in &w.stmts {
            let k = match s {
                Stmt::Sql(_) => 0,
                Stmt::Truncate { .. } => 1,
                Stmt::Insert { .. } => 2,
                Stmt::Update { .. } => 3,
                Stmt::Delete { .. } => 4,
                Stmt::Query(_) => 5,
            };
            kinds[k] = true;
        }
        assert!(kinds.iter().all(|&k| k), "missing statement kind: {kinds:?}");
        // Both tables and all five operator families appear in queries.
        let all: String = w.stmts.iter().map(Stmt::sql).collect::<Vec<_>>().join("\n");
        for needle in
            ["Contains(doc", "Sdo_Relate(geom", "VirSimilar(img", "MolContains(mol", "MolSimilar(mol", HEAP, IOT]
        {
            assert!(all.contains(needle), "workload never exercises {needle}");
        }
    }
}
