//! # extidx-vir — the Visual-Information-Retrieval-like cartridge
//!
//! Reproduces the §3.2.3 case study: content-based image retrieval over
//! synthetic image signatures. The `VirSimilar` operator finds images
//! whose weighted signature distance to a query signature is within a
//! threshold; with a domain index it "is evaluated in three phases — the
//! first phase is a filter that does a range query on the index data
//! table, the second phase is another filter that is a computation of the
//! distance measure, and the third phase does the actual image signature
//! comparison."
//!
//! Without the index, the operator "was evaluated as a filter predicate
//! for every row" — the functional fallback reproduces exactly that
//! baseline.

pub mod cartridge;
pub mod signature;

use std::sync::Arc;

use extidx_common::{Result, Value};
use extidx_core::operator::ScalarFunction;
use extidx_sql::Database;

pub use cartridge::{column_signature, phase_counts, PhaseCounts, VirIndexMethods, VirStats};
pub use signature::{Signature, SignatureWorkload, Weights};

/// Install the VIR cartridge: the `VIR_IMAGE` object type (a signature-
/// bearing image object, demonstrating object-column indexing), the
/// functional `VirSimilar` implementation, the operator, and the
/// `VirIndexType` indextype.
pub fn install(db: &mut Database) -> Result<()> {
    db.execute("CREATE TYPE VIR_IMAGE AS OBJECT (signature VARCHAR2(2000))")?;
    db.register_function(ScalarFunction::new("VirSimilarFn", |_, args| {
        let Some(sig) = column_signature(&args[0])? else { return Ok(Value::Null) };
        let query = Signature::deserialize(args[1].as_str()?)?;
        let weights = Weights::parse(args.get(2).and_then(|v| v.as_str().ok()).unwrap_or(""))?;
        let threshold = args
            .get(3)
            .ok_or_else(|| extidx_common::Error::Semantic("VirSimilar needs a threshold".into()))?
            .as_number()?;
        Ok(Value::Boolean(sig.distance(&query, &weights) <= threshold))
    }))?;
    db.execute(
        "CREATE OPERATOR VirSimilar \
         BINDING (VIR_IMAGE, VARCHAR2, VARCHAR2, NUMBER) RETURN BOOLEAN USING VirSimilarFn, \
         (VIR_IMAGE, VARCHAR2, VARCHAR2, NUMBER, INTEGER) RETURN BOOLEAN USING VirSimilarFn, \
         (VARCHAR2, VARCHAR2, VARCHAR2, NUMBER) RETURN BOOLEAN USING VirSimilarFn, \
         (VARCHAR2, VARCHAR2, VARCHAR2, NUMBER, INTEGER) RETURN BOOLEAN USING VirSimilarFn",
    )?;
    db.register_odci_implementation("VirIndexMethods", Arc::new(VirIndexMethods), Arc::new(VirStats));
    db.execute(
        "CREATE INDEXTYPE VirIndexType FOR \
         VirSimilar(VIR_IMAGE, VARCHAR2, VARCHAR2, NUMBER), \
         VirSimilar(VIR_IMAGE, VARCHAR2, VARCHAR2, NUMBER, INTEGER), \
         VirSimilar(VARCHAR2, VARCHAR2, VARCHAR2, NUMBER), \
         VirSimilar(VARCHAR2, VARCHAR2, VARCHAR2, NUMBER, INTEGER) \
         USING VirIndexMethods",
    )?;
    Ok(())
}
