//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace ships a
//! tiny wall-clock harness with criterion's spelling for the API the
//! benches use: `Criterion::benchmark_group`, `sample_size`,
//! `bench_with_input`/`bench_function`, `BenchmarkId`, `Bencher::iter`,
//! and the `criterion_group!`/`criterion_main!` macros. Each benchmark
//! runs one warm-up iteration plus `sample_size` timed iterations and
//! prints min/median/mean — no statistics engine, no HTML reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group: `function_name/parameter`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Passed to benchmark closures; `iter` times the hot loop.
pub struct Bencher {
    samples: usize,
    timings: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, untimed
        self.timings.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.timings.push(start.elapsed());
        }
    }
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n== {name}");
        BenchmarkGroup { _c: self, name, sample_size: 10 }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, 10, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.sample_size, |b| f(b, input));
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    let mut b = Bencher { samples, timings: Vec::with_capacity(samples) };
    f(&mut b);
    let mut sorted = b.timings.clone();
    sorted.sort();
    if sorted.is_empty() {
        eprintln!("{label:<48} (no samples)");
        return;
    }
    let total: Duration = sorted.iter().sum();
    let mean = total / sorted.len() as u32;
    let median = sorted[sorted.len() / 2];
    eprintln!(
        "{label:<48} min {:>10} | median {:>10} | mean {:>10} ({} samples)",
        fmt_dur(sorted[0]),
        fmt_dur(median),
        fmt_dur(mean),
        sorted.len()
    );
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_with_input(BenchmarkId::new("count", 5), &5u32, |b, &n| {
            b.iter(|| {
                calls += 1;
                (0..n).sum::<u32>()
            })
        });
        group.finish();
        // 1 warm-up + 3 timed samples.
        assert_eq!(calls, 4);
    }
}
