//! Image signatures and weighted similarity.
//!
//! §3.2.3: "Each image is represented by a signature which is an
//! abstraction of the contents of the image in terms of its visual
//! attributes. A set of numbers that are a coarse representation of the
//! signature are then stored in a table representing the index data."
//!
//! A [`Signature`] holds four channels — globalcolor, localcolor, texture,
//! structure — of [`CHANNEL_DIM`] values each in `[0, 100]`. The weighted
//! distance is a per-channel mean-absolute-difference combined by the
//! query's weights. The **coarse representation** is each channel's mean;
//! by Jensen's inequality the weighted distance over coarse values lower
//! bounds the full distance, so the multi-level filters never miss a
//! qualifying image.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use extidx_common::{Error, Result};

/// Values per channel.
pub const CHANNEL_DIM: usize = 8;
/// Number of channels.
pub const CHANNELS: usize = 4;
/// Channel names in order, matching the paper's weight list.
pub const CHANNEL_NAMES: [&str; CHANNELS] = ["globalcolor", "localcolor", "texture", "structure"];

/// A full image signature: `CHANNELS × CHANNEL_DIM` values in `[0, 100]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Signature {
    pub channels: [[f64; CHANNEL_DIM]; CHANNELS],
}

/// Per-channel weights (the paper's `globalcolor=0.5,localcolor=0.0,…`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weights(pub [f64; CHANNELS]);

impl Default for Weights {
    fn default() -> Self {
        Weights([0.25; CHANNELS])
    }
}

impl Weights {
    /// Parse a weight list: `"globalcolor=0.5 texture=0.5"` (commas or
    /// whitespace as separators; unnamed channels weigh 0).
    pub fn parse(s: &str) -> Result<Weights> {
        let mut w = [0.0; CHANNELS];
        let mut any = false;
        for part in s.split(|c: char| c == ',' || c.is_whitespace()) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (name, value) = part
                .split_once('=')
                .ok_or_else(|| Error::Semantic(format!("bad weight {part:?}")))?;
            let idx = CHANNEL_NAMES
                .iter()
                .position(|n| n.eq_ignore_ascii_case(name.trim()))
                .ok_or_else(|| Error::Semantic(format!("unknown channel {name:?}")))?;
            w[idx] = value
                .trim()
                .parse::<f64>()
                .map_err(|_| Error::Semantic(format!("bad weight value {value:?}")))?;
            any = true;
        }
        if !any {
            return Ok(Weights::default());
        }
        Ok(Weights(w))
    }

    /// Sum of weights (0 means "no discriminating channels").
    pub fn total(&self) -> f64 {
        self.0.iter().sum()
    }
}

impl Signature {
    /// Coarse representation: per-channel means.
    pub fn coarse(&self) -> [f64; CHANNELS] {
        let mut out = [0.0; CHANNELS];
        for (i, ch) in self.channels.iter().enumerate() {
            out[i] = ch.iter().sum::<f64>() / CHANNEL_DIM as f64;
        }
        out
    }

    /// Full weighted distance: `Σ_c w_c · meanAbsDiff(channel_c)`.
    pub fn distance(&self, other: &Signature, w: &Weights) -> f64 {
        let mut d = 0.0;
        for c in 0..CHANNELS {
            if w.0[c] == 0.0 {
                continue;
            }
            let mad: f64 = self.channels[c]
                .iter()
                .zip(&other.channels[c])
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>()
                / CHANNEL_DIM as f64;
            d += w.0[c] * mad;
        }
        d
    }

    /// Coarse weighted distance: lower bound of [`Signature::distance`].
    pub fn coarse_distance(a: &[f64; CHANNELS], b: &[f64; CHANNELS], w: &Weights) -> f64 {
        (0..CHANNELS).map(|c| w.0[c] * (a[c] - b[c]).abs()).sum()
    }

    /// Serialize to the compact text form stored in the index table.
    pub fn serialize(&self) -> String {
        self.channels
            .iter()
            .flat_map(|ch| ch.iter())
            .map(|v| format!("{v:.3}"))
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Parse the serialized form.
    pub fn deserialize(s: &str) -> Result<Signature> {
        let vals: Vec<f64> = s
            .split(',')
            .map(|v| v.trim().parse::<f64>().map_err(|_| Error::Storage(format!("bad signature value {v:?}"))))
            .collect::<Result<_>>()?;
        if vals.len() != CHANNELS * CHANNEL_DIM {
            return Err(Error::Storage(format!(
                "signature needs {} values, got {}",
                CHANNELS * CHANNEL_DIM,
                vals.len()
            )));
        }
        let mut channels = [[0.0; CHANNEL_DIM]; CHANNELS];
        for (i, v) in vals.into_iter().enumerate() {
            channels[i / CHANNEL_DIM][i % CHANNEL_DIM] = v;
        }
        Ok(Signature { channels })
    }
}

/// Deterministic signature workload generator.
pub struct SignatureWorkload {
    rng: StdRng,
}

impl SignatureWorkload {
    /// Generator with a fixed seed.
    pub fn new(seed: u64) -> Self {
        SignatureWorkload { rng: StdRng::seed_from_u64(seed) }
    }

    /// A uniformly random signature.
    pub fn random(&mut self) -> Signature {
        let mut channels = [[0.0; CHANNEL_DIM]; CHANNELS];
        for ch in &mut channels {
            for v in ch.iter_mut() {
                *v = self.rng.gen_range(0.0..100.0);
            }
        }
        Signature { channels }
    }

    /// A near-duplicate of `base`: every value jittered by ±`jitter`.
    pub fn near_duplicate(&mut self, base: &Signature, jitter: f64) -> Signature {
        let mut out = base.clone();
        for ch in &mut out.channels {
            for v in ch.iter_mut() {
                *v = (*v + self.rng.gen_range(-jitter..jitter)).clamp(0.0, 100.0);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialize_roundtrip() {
        let mut g = SignatureWorkload::new(4);
        let s = g.random();
        let r = Signature::deserialize(&s.serialize()).unwrap();
        // 3-decimal serialization: close, not exact.
        assert!(s.distance(&r, &Weights::default()) < 0.01);
    }

    #[test]
    fn deserialize_rejects_bad_input() {
        assert!(Signature::deserialize("1,2,3").is_err());
        assert!(Signature::deserialize("not-a-number").is_err());
    }

    #[test]
    fn distance_is_zero_for_identical() {
        let mut g = SignatureWorkload::new(1);
        let s = g.random();
        assert_eq!(s.distance(&s, &Weights::default()), 0.0);
    }

    #[test]
    fn near_duplicates_are_close() {
        let mut g = SignatureWorkload::new(2);
        let base = g.random();
        let dup = g.near_duplicate(&base, 1.0);
        let stranger = g.random();
        let w = Weights::default();
        assert!(base.distance(&dup, &w) < 1.0);
        assert!(base.distance(&stranger, &w) > base.distance(&dup, &w));
    }

    #[test]
    fn coarse_distance_lower_bounds_full() {
        let mut g = SignatureWorkload::new(3);
        let w = Weights([0.5, 0.1, 0.3, 0.1]);
        for _ in 0..50 {
            let a = g.random();
            let b = g.random();
            let cd = Signature::coarse_distance(&a.coarse(), &b.coarse(), &w);
            let fd = a.distance(&b, &w);
            assert!(cd <= fd + 1e-9, "coarse {cd} must lower-bound full {fd}");
        }
    }

    #[test]
    fn weight_parsing() {
        let w = Weights::parse("globalcolor=0.5, localcolor=0.0, texture=0.5, structure=0.0").unwrap();
        assert_eq!(w.0, [0.5, 0.0, 0.5, 0.0]);
        let w = Weights::parse("texture=1").unwrap();
        assert_eq!(w.0, [0.0, 0.0, 1.0, 0.0]);
        assert_eq!(Weights::parse("").unwrap(), Weights::default());
        assert!(Weights::parse("hue=1").is_err());
        assert!(Weights::parse("texture:1").is_err());
    }

    #[test]
    fn zero_weight_channels_ignored() {
        let mut g = SignatureWorkload::new(5);
        let mut a = g.random();
        let b = a.clone();
        // Perturb only the structure channel; weight it zero.
        a.channels[3][0] += 50.0;
        let w = Weights([1.0, 0.0, 0.0, 0.0]);
        assert_eq!(a.distance(&b, &w), 0.0);
    }
}
