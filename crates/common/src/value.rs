//! Runtime SQL values.
//!
//! [`Value`] is the single value representation flowing through the
//! executor, the framework interfaces, and cartridge code: ODCI routines
//! receive old/new column values as `Value`s (paper §2.2.3: maintenance
//! routines "are passed in the new and/or old value for the indexed
//! column"), and operator bindings evaluate over `Value` argument lists.

use std::cmp::Ordering;
use std::fmt;

use crate::error::{Error, Result};
use crate::rowid::RowId;
use crate::types::SqlType;

/// A table row: one value per column, in column-declaration order.
pub type Row = Vec<Value>;

/// Approximate on-page size of a value in bytes.
///
/// The storage layer does not serialize rows to bytes; instead it models
/// page occupancy with this estimate so that page counts (and therefore
/// buffer-cache I/O statistics) scale realistically with data volume.
pub fn approx_value_size(v: &Value) -> usize {
    match v {
        Value::Null => 1,
        Value::Integer(_) => 8,
        Value::Number(_) => 8,
        Value::Varchar(s) => 4 + s.len(),
        Value::Boolean(_) => 1,
        Value::Lob(_) => 16,
        Value::RowId(_) => 10,
        Value::Object(name, attrs) => {
            4 + name.len() + attrs.iter().map(approx_value_size).sum::<usize>()
        }
        Value::Array(elems) => 4 + elems.iter().map(approx_value_size).sum::<usize>(),
    }
}

/// Approximate on-page size of a whole row (values plus a slot header).
pub fn approx_row_size(row: &[Value]) -> usize {
    4 + row.iter().map(approx_value_size).sum::<usize>()
}

/// Reference ("locator") to a large object stored out-of-line.
///
/// The LOB bytes live in the storage layer's LOB segment; a `LobRef` is a
/// small copyable handle, mirroring Oracle LOB locators. Cartridges that
/// store their index in LOBs (the Daylight chemistry case study, §3.2.4)
/// read and write through the server-callback LOB interface using these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LobRef(pub u64);

impl fmt::Display for LobRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LOB#{}", self.0)
    }
}

/// A runtime SQL value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL. Compares as unknown; sorts last.
    Null,
    /// `INTEGER` value.
    Integer(i64),
    /// `NUMBER` value.
    Number(f64),
    /// `VARCHAR2` value.
    Varchar(String),
    /// `BOOLEAN` value.
    Boolean(bool),
    /// LOB locator.
    Lob(LobRef),
    /// Physical row address.
    RowId(RowId),
    /// Instance of an object type: the type name plus attribute values in
    /// declaration order.
    Object(String, Vec<Value>),
    /// VARRAY instance.
    Array(Vec<Value>),
}

impl Value {
    /// The runtime type of this value, or `None` for NULL (whose type is
    /// context-dependent). Object values report their type by name with no
    /// attribute list (enough for error messages and dispatch).
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "NULL",
            Value::Integer(_) => "INTEGER",
            Value::Number(_) => "NUMBER",
            Value::Varchar(_) => "VARCHAR2",
            Value::Boolean(_) => "BOOLEAN",
            Value::Lob(_) => "LOB",
            Value::RowId(_) => "ROWID",
            Value::Object(..) => "OBJECT",
            Value::Array(_) => "VARRAY",
        }
    }

    /// `true` when the value is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Whether this value can be stored in a column of type `ty`
    /// (NULL stores anywhere).
    pub fn conforms_to(&self, ty: &SqlType) -> bool {
        match (self, ty) {
            (Value::Null, _) => true,
            (Value::Integer(_), SqlType::Integer | SqlType::Number) => true,
            (Value::Number(_), SqlType::Number) => true,
            (Value::Varchar(_), SqlType::Varchar(_) | SqlType::Lob) => true,
            (Value::Boolean(_), SqlType::Boolean) => true,
            (Value::Lob(_), SqlType::Lob) => true,
            (Value::RowId(_), SqlType::RowId) => true,
            (Value::Object(name, _), SqlType::Object(def)) => *name == def.name,
            (Value::Array(_), SqlType::VArray(_)) => true,
            _ => false,
        }
    }

    /// Extract an `i64`, widening/narrowing from NUMBER when lossless.
    pub fn as_integer(&self) -> Result<i64> {
        match self {
            Value::Integer(i) => Ok(*i),
            Value::Number(n) if n.fract() == 0.0 && n.abs() < 9e15 => Ok(*n as i64),
            other => Err(Error::type_mismatch("INTEGER", other.type_name())),
        }
    }

    /// Extract an `f64` from INTEGER or NUMBER.
    pub fn as_number(&self) -> Result<f64> {
        match self {
            Value::Integer(i) => Ok(*i as f64),
            Value::Number(n) => Ok(*n),
            other => Err(Error::type_mismatch("NUMBER", other.type_name())),
        }
    }

    /// Extract a string slice.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Varchar(s) => Ok(s),
            other => Err(Error::type_mismatch("VARCHAR2", other.type_name())),
        }
    }

    /// Extract a boolean. Accepts the Oracle8i idiom of NUMBER 0/1 since
    /// the paper's own example is `Contains(...) = 1`.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Boolean(b) => Ok(*b),
            Value::Integer(0) => Ok(false),
            Value::Integer(1) => Ok(true),
            Value::Number(n) if *n == 0.0 => Ok(false),
            Value::Number(n) if *n == 1.0 => Ok(true),
            other => Err(Error::type_mismatch("BOOLEAN", other.type_name())),
        }
    }

    /// Extract a rowid.
    pub fn as_rowid(&self) -> Result<RowId> {
        match self {
            Value::RowId(r) => Ok(*r),
            other => Err(Error::type_mismatch("ROWID", other.type_name())),
        }
    }

    /// Extract a LOB locator.
    pub fn as_lob(&self) -> Result<LobRef> {
        match self {
            Value::Lob(l) => Ok(*l),
            other => Err(Error::type_mismatch("LOB", other.type_name())),
        }
    }

    /// Extract the attribute list of an object value.
    pub fn as_object(&self) -> Result<(&str, &[Value])> {
        match self {
            Value::Object(name, attrs) => Ok((name, attrs)),
            other => Err(Error::type_mismatch("OBJECT", other.type_name())),
        }
    }

    /// Extract the elements of a VARRAY value.
    pub fn as_array(&self) -> Result<&[Value]> {
        match self {
            Value::Array(elems) => Ok(elems),
            other => Err(Error::type_mismatch("VARRAY", other.type_name())),
        }
    }

    /// Three-valued SQL comparison. Returns `None` when either side is
    /// NULL (unknown) or the values are not mutually comparable.
    /// Integer/Number compare numerically across the two variants.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Integer(a), Integer(b)) => Some(a.cmp(b)),
            (Number(a), Number(b)) => a.partial_cmp(b),
            (Integer(a), Number(b)) => (*a as f64).partial_cmp(b),
            (Number(a), Integer(b)) => a.partial_cmp(&(*b as f64)),
            (Varchar(a), Varchar(b)) => Some(a.cmp(b)),
            (Boolean(a), Boolean(b)) => Some(a.cmp(b)),
            (RowId(a), RowId(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Total ordering used for sorting (ORDER BY, B-tree keys): NULLs sort
    /// last (Oracle default), incomparable pairs order by type name so the
    /// sort is still total.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        match (self.is_null(), other.is_null()) {
            (true, true) => return Ordering::Equal,
            (true, false) => return Ordering::Greater,
            (false, true) => return Ordering::Less,
            _ => {}
        }
        self.sql_cmp(other)
            .unwrap_or_else(|| self.type_name().cmp(other.type_name()))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Integer(i) => write!(f, "{i}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::Varchar(s) => write!(f, "{s}"),
            Value::Boolean(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Value::Lob(l) => write!(f, "{l}"),
            Value::RowId(r) => write!(f, "{r}"),
            Value::Object(name, attrs) => {
                write!(f, "{name}(")?;
                for (i, a) in attrs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Value::Array(elems) => {
                write!(f, "VARRAY(")?;
                for (i, e) in elems.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Integer(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Number(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Varchar(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Varchar(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Boolean(v)
    }
}
impl From<RowId> for Value {
    fn from(v: RowId) -> Self {
        Value::RowId(v)
    }
}
impl From<LobRef> for Value {
    fn from(v: LobRef) -> Self {
        Value::Lob(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Integer(1)), None);
        assert_eq!(Value::Integer(1).sql_cmp(&Value::Null), None);
    }

    #[test]
    fn cross_numeric_comparison() {
        assert_eq!(
            Value::Integer(2).sql_cmp(&Value::Number(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Number(1.5).sql_cmp(&Value::Integer(2)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn total_cmp_nulls_last() {
        let mut vals = vec![Value::Null, Value::Integer(2), Value::Integer(1)];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(vals, vec![Value::Integer(1), Value::Integer(2), Value::Null]);
    }

    #[test]
    fn as_bool_accepts_numeric_idiom() {
        assert!(Value::Integer(1).as_bool().unwrap());
        assert!(!Value::Number(0.0).as_bool().unwrap());
        assert!(Value::Integer(7).as_bool().is_err());
    }

    #[test]
    fn as_integer_from_number_lossless_only() {
        assert_eq!(Value::Number(42.0).as_integer().unwrap(), 42);
        assert!(Value::Number(42.5).as_integer().is_err());
    }

    #[test]
    fn conforms_to_object_by_name() {
        use crate::types::ObjectTypeDef;
        let def = ObjectTypeDef::new("pt", vec![("x".into(), SqlType::Number)]);
        let v = Value::Object("PT".into(), vec![Value::Number(1.0)]);
        assert!(v.conforms_to(&SqlType::Object(def.clone())));
        let w = Value::Object("OTHER".into(), vec![]);
        assert!(!w.conforms_to(&SqlType::Object(def)));
    }

    #[test]
    fn display_object_and_array() {
        let v = Value::Object("PT".into(), vec![Value::Number(1.0), Value::Null]);
        assert_eq!(v.to_string(), "PT(1, NULL)");
        let a = Value::Array(vec![Value::from("Skiing"), Value::from("Chess")]);
        assert_eq!(a.to_string(), "VARRAY(Skiing, Chess)");
    }

    #[test]
    fn string_total_order() {
        let mut v = [Value::from("b"), Value::from("a")];
        v.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(v[0], Value::from("a"));
    }
}
