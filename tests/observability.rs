//! The observability layer: EXPLAIN ANALYZE row-source instrumentation,
//! timed trace crossings, and the read-only `V$` virtual tables.
//!
//! The load-bearing acceptance checks live here:
//! - EXPLAIN ANALYZE's root-node buffer gets equal the statement's
//!   buffer-cache delta (inclusive accounting, like Oracle's row-source
//!   statistics), and
//! - `V$ODCI_CALLS` per-routine call counts equal the number of trace
//!   events recorded for that routine on a pinned workload.

use extidx::sql::Database;

fn text_db(bulk: i64) -> Database {
    let mut db = Database::with_cache_pages(4096);
    extidx::text::install(&mut db).unwrap();
    db.execute("CREATE TABLE docs (id INTEGER, body VARCHAR2(200))").unwrap();
    for i in 0..bulk {
        let body = if i % 7 == 0 {
            format!("gorse thicket number {i}")
        } else {
            format!("plain filler row {i}")
        };
        db.execute_with("INSERT INTO docs VALUES (?, ?)", &[i.into(), body.into()]).unwrap();
    }
    db.execute("CREATE INDEX dt ON docs(body) INDEXTYPE IS TextIndexType").unwrap();
    db
}

/// Parse `key=<digits>` out of a rendered plan line, starting the search
/// at the *last* occurrence of `key=` (plan lines carry both the
/// estimate `(rows=…)` and the actual `[actual rows=…]`).
fn field(line: &str, key: &str) -> u64 {
    let pat = format!("{key}=");
    let at = line.rfind(&pat).unwrap_or_else(|| panic!("no {pat} in {line:?}"));
    line[at + pat.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap()
}

fn analyze(db: &mut Database, sql: &str) -> Vec<String> {
    db.query(&format!("EXPLAIN ANALYZE {sql}"))
        .unwrap()
        .into_iter()
        .map(|r| r[0].to_string())
        .collect()
}

/// Acceptance: every plan line is annotated, the annotation lines align
/// 1:1 with plain EXPLAIN output, and the root node's buffer gets equal
/// the statement-level cache delta reported in the summary line.
#[test]
fn explain_analyze_root_gets_equal_statement_delta() {
    let mut db = text_db(120);
    let sql = "SELECT id FROM docs WHERE Contains(body, 'gorse')";

    let plain = db.explain(sql).unwrap();
    let analyzed = analyze(&mut db, sql);
    assert_eq!(analyzed.len(), plain.len() + 1, "one annotation per plan line plus a summary");

    for (p, a) in plain.iter().zip(&analyzed) {
        assert!(a.starts_with(p.as_str()), "annotated line {a:?} should extend {p:?}");
        assert!(a.contains("[actual rows="), "missing instrumentation on {a:?}");
        assert!(a.contains("time="), "missing wall time on {a:?}");
    }

    let root = &analyzed[0];
    let summary = analyzed.last().unwrap();
    assert!(summary.starts_with("statement:"), "summary line: {summary:?}");

    // Inclusive accounting: the root subtree covers the whole execution,
    // so its gets must equal the statement's cache delta exactly.
    assert_eq!(field(root, "gets"), field(summary, "gets"), "root: {root}\nsummary: {summary}");
    assert_eq!(
        field(root, "actual rows"),
        field(summary, "rows"),
        "root row count vs statement rows"
    );

    // The result is correct too: the annotated run executed the plan.
    let expected = db.query(sql).unwrap().len() as u64;
    assert_eq!(field(summary, "rows"), expected);
}

/// EXPLAIN ANALYZE actually drives the ODCI scan lifecycle — the trace
/// records Start/Fetch/Close crossings with nonzero call counts.
#[test]
fn explain_analyze_executes_the_domain_scan() {
    let mut db = text_db(120);
    db.trace().set_enabled(true);
    analyze(&mut db, "SELECT id FROM docs WHERE Contains(body, 'gorse')");
    let seq: Vec<&str> = db
        .trace()
        .events()
        .iter()
        .map(|e| e.routine)
        .filter(|r| r.starts_with("ODCIIndex"))
        .collect();
    assert!(seq.contains(&"ODCIIndexStart"), "no Start in {seq:?}");
    assert!(seq.contains(&"ODCIIndexFetch"), "no Fetch in {seq:?}");
    assert!(seq.contains(&"ODCIIndexClose"), "no Close in {seq:?}");
}

#[test]
fn explain_analyze_rejects_non_select() {
    let mut db = text_db(5);
    let err = db.execute("EXPLAIN ANALYZE INSERT INTO docs VALUES (99, 'x')");
    assert!(err.is_err(), "EXPLAIN ANALYZE of DML must fail");
    // And the DML must not have run.
    assert!(db.query("SELECT id FROM docs WHERE id = 99").unwrap().is_empty());
}

/// Acceptance: `V$ODCI_CALLS` per-routine counts equal the number of
/// `CallTrace` events for that (indextype, routine) on a pinned workload.
#[test]
fn v_odci_calls_counts_match_trace_event_counts() {
    use std::collections::BTreeMap;

    let mut db = text_db(120);
    db.trace().set_enabled(true);

    // Pinned workload: scans (Start/Fetch/Close), maintenance
    // (Insert/Update/Delete), and the optimizer stats crossings.
    db.query("SELECT id FROM docs WHERE Contains(body, 'gorse')").unwrap();
    db.query("SELECT id FROM docs WHERE Contains(body, 'thicket OR filler')").unwrap();
    db.execute("INSERT INTO docs VALUES (500, 'gorse anew'), (501, 'more filler')").unwrap();
    db.execute("UPDATE docs SET body = 'rewritten entirely' WHERE id = 500").unwrap();
    db.execute("DELETE FROM docs WHERE id = 501").unwrap();

    // Count events per (indextype, routine) before touching the V$ layer.
    let mut by_routine: BTreeMap<(String, String), i64> = BTreeMap::new();
    for e in db.trace().events() {
        *by_routine.entry((e.indextype.clone(), e.routine.to_string())).or_default() += 1;
    }
    assert_eq!(db.trace().dropped(), 0, "workload must fit the ring for counts to be comparable");

    let rows = db.query("SELECT INDEXTYPE, ROUTINE, CALLS FROM V$ODCI_CALLS").unwrap();
    assert!(!rows.is_empty());
    let mut seen = 0usize;
    for r in &rows {
        let key = (r[0].to_string(), r[1].to_string());
        let calls = r[2].as_integer().unwrap();
        let events = by_routine.get(&key).copied().unwrap_or(0);
        assert_eq!(calls, events, "V$ODCI_CALLS disagrees with the event stream for {key:?}");
        seen += 1;
    }
    assert_eq!(seen, by_routine.len(), "V$ODCI_CALLS missing routines: {by_routine:?}");
}

/// The V$ tables answer plain SQL — projection, WHERE, ORDER BY — like
/// ordinary tables.
#[test]
fn v_tables_answer_plain_sql() {
    let mut db = text_db(60);
    db.trace().set_enabled(true);
    db.query("SELECT id FROM docs WHERE Contains(body, 'gorse')").unwrap();

    // V$CACHE_STATS: the three counters, filterable by name.
    let all = db.query("SELECT NAME, VALUE FROM V$CACHE_STATS ORDER BY NAME").unwrap();
    let names: Vec<String> = all.iter().map(|r| r[0].to_string()).collect();
    assert_eq!(names, vec!["LOGICAL_READS", "PHYSICAL_READS", "PHYSICAL_WRITES"]);
    let one = db
        .query("SELECT VALUE FROM V$CACHE_STATS WHERE NAME = 'LOGICAL_READS'")
        .unwrap();
    assert_eq!(one.len(), 1);
    assert!(one[0][0].as_integer().unwrap() > 0, "a bulked scan must have touched pages");

    // V$TRACE: the event ring with monotonically increasing SEQ.
    let trace = db.query("SELECT SEQ, ROUTINE, ELAPSED_MICROS FROM V$TRACE ORDER BY SEQ").unwrap();
    assert!(!trace.is_empty());
    let seqs: Vec<i64> = trace.iter().map(|r| r[0].as_integer().unwrap()).collect();
    assert!(seqs.windows(2).all(|w| w[0] < w[1]), "SEQ must increase: {seqs:?}");

    // V$SQLSTATS: the statement history includes the query we just ran.
    let stats = db.query("SELECT SQL_TEXT, ROWS_PROCESSED FROM V$SQLSTATS").unwrap();
    assert!(
        stats.iter().any(|r| r[0].to_string().contains("Contains(body, 'gorse')")),
        "V$SQLSTATS should carry the scan statement: {stats:?}"
    );

    // V$ tables join like ordinary relations (never a domain-join side).
    let joined = db
        .query(
            "SELECT s.NAME FROM V$CACHE_STATS s, V$CACHE_STATS t \
             WHERE s.NAME = t.NAME ORDER BY s.NAME",
        )
        .unwrap();
    assert_eq!(joined.len(), 3);
}

/// The ring's eviction is visible through V$TRACE's DROPPED column.
#[test]
fn v_trace_surfaces_ring_eviction() {
    let mut db = text_db(60);
    db.trace().set_enabled(true);
    db.trace().set_capacity(4);
    db.query("SELECT id FROM docs WHERE Contains(body, 'gorse')").unwrap();
    let rows = db.query("SELECT SEQ, DROPPED FROM V$TRACE").unwrap();
    assert!(rows.len() <= 4, "ring capacity must bound V$TRACE: {} rows", rows.len());
    let dropped = rows[0][1].as_integer().unwrap();
    assert!(dropped > 0, "the scan generates more than 4 crossings");
    assert_eq!(dropped as u64, db.trace().dropped());
}

#[test]
fn v_tables_are_read_only() {
    let mut db = text_db(5);
    for dml in [
        "INSERT INTO V$CACHE_STATS VALUES ('X', 1)",
        "UPDATE V$SQLSTATS SET SQL_ID = 0",
        "DELETE FROM V$TRACE",
    ] {
        let err = db.execute(dml).expect_err(dml);
        assert!(err.to_string().contains("read-only"), "{dml}: {err}");
    }
    // An unknown V$ name is a planning error, not a panic.
    assert!(db.query("SELECT * FROM V$NOPE").is_err());
}

/// The tkprof-style report aggregates the same counters the V$ layer
/// exposes: routine lines with calls and time, cache totals, top SQL.
#[test]
fn trace_report_summarizes_the_session() {
    let mut db = text_db(120);
    db.trace().set_enabled(true);
    db.query("SELECT id FROM docs WHERE Contains(body, 'gorse')").unwrap();
    db.execute("INSERT INTO docs VALUES (700, 'gorse again')").unwrap();
    let report = db.trace_report();
    assert!(report.contains("TEXTINDEXTYPE.ODCIIndexFetch"), "{report}");
    assert!(report.contains("TEXTINDEXTYPE.ODCIIndexInsert"), "{report}");
    assert!(report.contains("buffer cache:"), "{report}");
    assert!(report.contains("top statements by elapsed time:"), "{report}");
    assert!(report.contains("Contains(body, 'gorse')"), "{report}");
}

/// Two real sessions on different threads hammer the same server — one
/// reading (SQL stats + cache counters + trace ring), one writing — and
/// the V$ layer must stay coherent: no torn counters, SEQ strictly
/// increasing, and the reader's statement text present in V$SQLSTATS.
#[test]
fn v_tables_stay_coherent_under_two_sessions() {
    use extidx::common::Value;
    use extidx::sql::Server;

    let db = text_db(60);
    db.trace().set_enabled(true);
    let server = Server::new(db);

    std::thread::scope(|scope| {
        let mut reader = server.session();
        let mut writer = server.session();
        scope.spawn(move || {
            for _ in 0..40 {
                reader.query("SELECT id FROM docs WHERE Contains(body, 'gorse')").unwrap();
                reader.query("SELECT COUNT(*) FROM docs").unwrap();
            }
        });
        scope.spawn(move || {
            for i in 0..40 {
                let id = 9000 + i;
                let mut tries = 0;
                while writer
                    .execute(&format!("INSERT INTO docs VALUES ({id}, 'gorse burst')"))
                    .is_err()
                {
                    tries += 1;
                    assert!(tries < 100, "insert livelock at id {id}");
                }
            }
        });
    });

    let mut s = server.session();
    // Cache counters: monotone totals, no panics, reads accounted.
    let reads = s
        .query("SELECT VALUE FROM V$CACHE_STATS WHERE NAME = 'LOGICAL_READS'")
        .unwrap();
    assert!(
        matches!(reads[0][0], Value::Integer(n) if n > 0),
        "concurrent load must be charged to the cache: {reads:?}"
    );
    // Statement history carries both sessions' work.
    let stats = s.query("SELECT SQL_TEXT, ROWS_PROCESSED FROM V$SQLSTATS").unwrap();
    assert!(
        stats.iter().any(|r| format!("{:?}", r[0]).contains("Contains(body, 'gorse')")),
        "reader statements missing from V$SQLSTATS: {stats:?}"
    );
    // Trace ring: SEQ strictly increasing even though two sessions fed it.
    let trace = s.query("SELECT SEQ FROM V$TRACE ORDER BY SEQ").unwrap();
    let seqs: Vec<i64> = trace
        .iter()
        .map(|r| match r[0] {
            Value::Integer(n) => n,
            ref v => panic!("SEQ must be an integer, got {v:?}"),
        })
        .collect();
    assert!(seqs.windows(2).all(|w| w[0] < w[1]), "V$TRACE SEQ not monotone: {seqs:?}");
    // The writer's rows all landed (each insert committed exactly once).
    let count = s.query("SELECT COUNT(*) FROM docs WHERE Contains(body, 'burst')").unwrap();
    assert_eq!(count[0][0], Value::Integer(40), "all 40 concurrent inserts must be durable");
}
