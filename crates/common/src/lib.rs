//! # extidx-common
//!
//! Shared foundation types for the `extidx` workspace: the SQL value model
//! ([`Value`]), the type system ([`SqlType`]), physical row identifiers
//! ([`RowId`]), large-object references ([`value::LobRef`]), and the common
//! error type ([`Error`]).
//!
//! Everything in this crate is deliberately independent of storage, SQL
//! processing, and the extensible-indexing framework so that cartridges,
//! the engine, and the framework can all speak the same value vocabulary
//! without depending on each other.

pub mod error;
pub mod key;
pub mod rowid;
pub mod types;
pub mod value;

pub use error::{Error, Result};
pub use key::Key;
pub use rowid::RowId;
pub use types::{ObjectTypeDef, SqlType};
pub use value::{approx_row_size, approx_value_size, LobRef, Row, Value};
