//! Index-scan contexts and fetch results.
//!
//! The paper (§2.2.3) describes the scan protocol: `ODCIIndexStart`
//! initializes and returns a *scan context* that the server passes back
//! into every `ODCIIndexFetch` and the final `ODCIIndexClose`. Two context
//! mechanisms are specified:
//!
//! - **Return State** — small state travels with the call as the context
//!   object itself;
//! - **Return Handle** — large state (e.g. a precomputed result set) stays
//!   in a server-side workspace "allocated for the duration of the
//!   statement", and only a handle travels.
//!
//! [`ScanContext`] models both. The workspace arena lives in the server
//! (see [`crate::server::ServerContext::workspace_put`]) and is torn down
//! at statement end, matching the paper.
//!
//! `ODCIIndexFetch` "supports returning a single row or a batch of rows in
//! each call", with scan end signalled by a null row identifier —
//! [`FetchResult`] carries the batch and a `done` flag playing the role of
//! that null.

use std::any::Any;

use extidx_common::{RowId, Value};

/// Handle naming a workspace entry held by the server for the duration of
/// one statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WorkspaceHandle(pub u64);

/// Scan state as defined by the cartridge. Boxed as `Any` so the
/// framework stays agnostic of each cartridge's state type; cartridges
/// downcast on re-entry, which mirrors Oracle's opaque SELF object.
pub type BoxedScanState = Box<dyn Any + Send>;

/// The scan context returned by `ODCIIndexStart` and threaded through
/// `ODCIIndexFetch`/`ODCIIndexClose`.
pub enum ScanContext {
    /// "Return State": the cartridge's (small) state object itself.
    State(BoxedScanState),
    /// "Return Handle": state lives in the server's statement workspace.
    Handle(WorkspaceHandle),
}

impl ScanContext {
    /// Downcast a `State` context to the cartridge's concrete state type.
    /// Returns `None` for `Handle` contexts or a type mismatch.
    pub fn state_mut<T: 'static>(&mut self) -> Option<&mut T> {
        match self {
            ScanContext::State(b) => b.downcast_mut::<T>(),
            ScanContext::Handle(_) => None,
        }
    }

    /// The handle, if this is a `Handle` context.
    pub fn handle(&self) -> Option<WorkspaceHandle> {
        match self {
            ScanContext::Handle(h) => Some(*h),
            ScanContext::State(_) => None,
        }
    }
}

impl std::fmt::Debug for ScanContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScanContext::State(_) => write!(f, "ScanContext::State(..)"),
            ScanContext::Handle(h) => write!(f, "ScanContext::Handle({})", h.0),
        }
    }
}

/// One row produced by an index scan: the base-table rowid plus optional
/// ancillary data (the paper's `Score`-style auxiliary value, §2.4.2).
#[derive(Debug, Clone, PartialEq)]
pub struct FetchedRow {
    pub rowid: RowId,
    /// Ancillary value produced by the scan for this row (e.g. a text
    /// relevance score), retrievable through an ancillary operator.
    pub ancillary: Option<Value>,
}

impl FetchedRow {
    /// Row with no ancillary data.
    pub fn plain(rowid: RowId) -> Self {
        FetchedRow { rowid, ancillary: None }
    }

    /// Row with an ancillary value attached.
    pub fn with_ancillary(rowid: RowId, v: Value) -> Self {
        FetchedRow { rowid, ancillary: Some(v) }
    }
}

/// Result of one `ODCIIndexFetch` call: up to `nrows` rows, plus whether
/// the scan is exhausted (the paper's "null row identifier" end marker).
#[derive(Debug, Clone, Default)]
pub struct FetchResult {
    pub rows: Vec<FetchedRow>,
    pub done: bool,
}

impl FetchResult {
    /// An exhausted scan with no rows.
    pub fn end() -> Self {
        FetchResult { rows: Vec::new(), done: true }
    }

    /// A batch with more rows possibly remaining.
    pub fn batch(rows: Vec<FetchedRow>) -> Self {
        FetchResult { rows, done: false }
    }

    /// A final batch: these rows, then end-of-scan.
    pub fn last_batch(rows: Vec<FetchedRow>) -> Self {
        FetchResult { rows, done: true }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct MyState {
        cursor: usize,
    }

    #[test]
    fn state_context_downcasts() {
        let mut ctx = ScanContext::State(Box::new(MyState { cursor: 7 }));
        let s = ctx.state_mut::<MyState>().unwrap();
        assert_eq!(s.cursor, 7);
        s.cursor = 8;
        assert_eq!(ctx.state_mut::<MyState>().unwrap().cursor, 8);
        assert!(ctx.handle().is_none());
    }

    #[test]
    fn wrong_type_downcast_is_none() {
        let mut ctx = ScanContext::State(Box::new(MyState { cursor: 0 }));
        assert!(ctx.state_mut::<String>().is_none());
    }

    #[test]
    fn handle_context() {
        let mut ctx = ScanContext::Handle(WorkspaceHandle(42));
        assert_eq!(ctx.handle(), Some(WorkspaceHandle(42)));
        assert!(ctx.state_mut::<MyState>().is_none());
    }

    #[test]
    fn fetch_result_constructors() {
        assert!(FetchResult::end().done);
        assert!(FetchResult::end().rows.is_empty());
        let r = FetchResult::batch(vec![FetchedRow::plain(RowId::new(1, 0, 0))]);
        assert!(!r.done);
        assert_eq!(r.rows.len(), 1);
        let l = FetchResult::last_batch(vec![]);
        assert!(l.done);
    }

    #[test]
    fn ancillary_row() {
        let r = FetchedRow::with_ancillary(RowId::new(1, 0, 0), Value::Number(0.92));
        assert_eq!(r.ancillary, Some(Value::Number(0.92)));
        assert_eq!(FetchedRow::plain(RowId::new(1, 0, 0)).ancillary, None);
    }
}
