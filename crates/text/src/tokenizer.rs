//! Lexical analysis of document text.
//!
//! The paper's index parameters identify "the language of the text
//! document (thus identifying the lexical analyzer to use), and the list
//! of stop words which are to be ignored while creating the text index".
//! [`StopWords`] carries that list; [`tokenize`] produces the token
//! multiset an inverted index stores.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use extidx_core::params::ParamString;

/// A stop-word list (lower-cased).
#[derive(Debug, Clone, Default)]
pub struct StopWords {
    words: BTreeSet<String>,
}

impl StopWords {
    /// No stop words.
    pub fn none() -> Self {
        Self::default()
    }

    /// From an explicit list.
    pub fn from_words<I: IntoIterator<Item = S>, S: AsRef<str>>(words: I) -> Self {
        StopWords {
            words: words.into_iter().map(|w| w.as_ref().to_ascii_lowercase()).collect(),
        }
    }

    /// From index parameters: the `:Ignore w1 w2 …` key of the paper's
    /// example.
    pub fn from_params(params: &ParamString) -> Self {
        Self::from_words(params.values("Ignore"))
    }

    /// Whether a (lower-cased) token is a stop word.
    pub fn contains(&self, token: &str) -> bool {
        self.words.contains(token)
    }

    /// Number of stop words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

/// Tokenize a document: lower-case, split on non-alphanumerics, drop stop
/// words. Returns token → occurrence count.
pub fn tokenize(text: &str, stop: &StopWords) -> BTreeMap<String, u32> {
    let mut counts = BTreeMap::new();
    for raw in text.split(|c: char| !c.is_ascii_alphanumeric()) {
        if raw.is_empty() {
            continue;
        }
        let token = raw.to_ascii_lowercase();
        if stop.contains(&token) {
            continue;
        }
        *counts.entry(token).or_insert(0) += 1;
    }
    counts
}

/// Normalize a single query term the same way documents are tokenized.
pub fn normalize_term(term: &str) -> String {
    term.to_ascii_lowercase()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_and_counts() {
        let t = tokenize("Oracle and UNIX, oracle!", &StopWords::none());
        assert_eq!(t.get("oracle"), Some(&2));
        assert_eq!(t.get("unix"), Some(&1));
        assert_eq!(t.get("and"), Some(&1));
    }

    #[test]
    fn stop_words_dropped() {
        let stop = StopWords::from_words(["the", "a", "an"]);
        let t = tokenize("The quick brown fox jumps over a lazy dog", &stop);
        assert!(!t.contains_key("the"));
        assert!(!t.contains_key("a"));
        assert_eq!(t.get("quick"), Some(&1));
    }

    #[test]
    fn stop_words_from_params() {
        let p = ParamString::parse(":Language English :Ignore the a an");
        let stop = StopWords::from_params(&p);
        assert_eq!(stop.len(), 3);
        assert!(stop.contains("the") && stop.contains("an"));
        assert!(!stop.contains("oracle"));
    }

    #[test]
    fn empty_text() {
        assert!(tokenize("", &StopWords::none()).is_empty());
        assert!(tokenize("!!! --- ???", &StopWords::none()).is_empty());
    }

    #[test]
    fn numbers_are_tokens() {
        let t = tokenize("version 8i released 1999", &StopWords::none());
        assert_eq!(t.get("1999"), Some(&1));
        assert_eq!(t.get("8i"), Some(&1));
    }
}
