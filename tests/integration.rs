//! Cross-crate integration tests: several cartridges coexisting in one
//! database, combined operator predicates, transactions spanning multiple
//! domain indexes, and the Fig. 1 trace across subsystems.

use extidx::spatial::{geometry_sql, Geometry, Mbr};
use extidx::sql::Database;
use extidx::vir::SignatureWorkload;
use extidx_common::Value;

fn full_db() -> Database {
    let mut db = Database::with_cache_pages(8192);
    extidx::text::install(&mut db).unwrap();
    extidx::spatial::install(&mut db).unwrap();
    extidx::vir::install(&mut db).unwrap();
    extidx::chem::install(&mut db).unwrap();
    db
}

#[test]
fn all_four_cartridges_coexist() {
    let db = full_db();
    let names = db.catalog().registry.indextype_names();
    assert_eq!(
        names,
        vec![
            "CHEMINDEXTYPE",
            "RTREEINDEXTYPE",
            "SPATIALINDEXTYPE",
            "TEXTINDEXTYPE",
            "VIRINDEXTYPE"
        ]
    );
}

#[test]
fn one_table_two_domain_indexes() {
    // A listing with both a text description and a location, indexed by
    // two different cartridges on two columns of the same table.
    let mut db = full_db();
    db.execute(
        "CREATE TABLE listings (id INTEGER, description VARCHAR2(500), area SDO_GEOMETRY)",
    )
    .unwrap();
    let spots = [
        (1, "cozy cabin with lake view and sauna", (0.0, 0.0, 10.0, 10.0)),
        (2, "downtown loft near transit", (500.0, 500.0, 510.0, 510.0)),
        (3, "lakefront estate with private dock and sauna", (5.0, 5.0, 15.0, 15.0)),
    ];
    for (id, desc, (x0, y0, x1, y1)) in spots {
        let g = Geometry::Rect(Mbr { xmin: x0, ymin: y0, xmax: x1, ymax: y1 });
        db.execute(&format!(
            "INSERT INTO listings VALUES ({id}, '{desc}', {})",
            geometry_sql(&g)
        ))
        .unwrap();
    }
    db.execute("CREATE INDEX l_text ON listings(description) INDEXTYPE IS TextIndexType").unwrap();
    db.execute("CREATE INDEX l_geo ON listings(area) INDEXTYPE IS SpatialIndexType").unwrap();

    // Both operators in one WHERE clause: one is evaluated via its domain
    // index, the other functionally — either way results must agree.
    let window = geometry_sql(&Geometry::Rect(Mbr { xmin: 0.0, ymin: 0.0, xmax: 20.0, ymax: 20.0 }));
    let rows = db
        .query(&format!(
            "SELECT id FROM listings WHERE Contains(description, 'sauna') \
             AND Sdo_Relate(area, {window}, 'mask=ANYINTERACT') ORDER BY id"
        ))
        .unwrap();
    assert_eq!(rows, vec![vec![Value::Integer(1)], vec![Value::Integer(3)]]);
}

#[test]
fn transaction_spans_multiple_domain_indexes() {
    let mut db = full_db();
    db.execute("CREATE TABLE listings (id INTEGER, description VARCHAR2(200), area SDO_GEOMETRY)")
        .unwrap();
    db.execute("CREATE INDEX l_text ON listings(description) INDEXTYPE IS TextIndexType").unwrap();
    db.execute("CREATE INDEX l_geo ON listings(area) INDEXTYPE IS SpatialIndexType").unwrap();
    let g = geometry_sql(&Geometry::Rect(Mbr { xmin: 1.0, ymin: 1.0, xmax: 2.0, ymax: 2.0 }));

    db.execute("BEGIN").unwrap();
    db.execute(&format!("INSERT INTO listings VALUES (1, 'transient sauna', {g})")).unwrap();
    assert_eq!(db.query("SELECT id FROM listings WHERE Contains(description, 'sauna')").unwrap().len(), 1);
    db.execute("ROLLBACK").unwrap();

    // Both cartridges' index tables rolled back with the base table.
    assert!(db.query("SELECT id FROM listings WHERE Contains(description, 'sauna')").unwrap().is_empty());
    assert_eq!(db.query("SELECT COUNT(*) FROM DR$L_TEXT$I").unwrap()[0][0], Value::Integer(0));
    assert_eq!(db.query("SELECT COUNT(*) FROM DR$L_GEO$T").unwrap()[0][0], Value::Integer(0));
}

#[test]
fn drop_table_cascades_through_cartridges() {
    let mut db = full_db();
    db.execute("CREATE TABLE listings (id INTEGER, description VARCHAR2(200))").unwrap();
    db.execute("INSERT INTO listings VALUES (1, 'hello world')").unwrap();
    db.execute("CREATE INDEX l_text ON listings(description) INDEXTYPE IS TextIndexType").unwrap();
    db.execute("DROP TABLE listings").unwrap();
    assert!(db.query("SELECT COUNT(*) FROM DR$L_TEXT$I").is_err(), "index storage dropped");
    assert!(db.catalog().domain_index("L_TEXT").is_none());
}

#[test]
fn trace_covers_every_framework_surface() {
    let mut db = full_db();
    db.trace().set_enabled(true);
    db.execute("CREATE TABLE docs (id INTEGER, body VARCHAR2(200))").unwrap();
    db.execute("INSERT INTO docs VALUES (1, 'alpha beta')").unwrap();
    for i in 10..300 {
        db.execute_with(
            "INSERT INTO docs VALUES (?, ?)",
            &[i64::from(i).into(), format!("filler document {i}").into()],
        )
        .unwrap();
    }
    db.execute("CREATE INDEX dt ON docs(body) INDEXTYPE IS TextIndexType").unwrap();
    db.execute("INSERT INTO docs VALUES (2, 'beta gamma')").unwrap();
    db.execute("UPDATE docs SET body = 'alpha gamma' WHERE id = 2").unwrap();
    db.execute("DELETE FROM docs WHERE id = 1").unwrap();
    db.execute("ANALYZE TABLE docs").unwrap();
    db.query("SELECT id FROM docs WHERE Contains(body, 'gamma')").unwrap();
    db.execute("ALTER INDEX dt PARAMETERS (':Ignore zzz')").unwrap();
    db.execute("TRUNCATE TABLE docs").unwrap();
    db.execute("DROP INDEX dt").unwrap();

    let seq = db.trace().routine_sequence();
    for routine in [
        "ODCIIndexCreate",
        "ODCIIndexInsert",
        "ODCIIndexUpdate",
        "ODCIIndexDelete",
        "ODCIStatsCollect",
        "ODCIStatsSelectivity",
        "ODCIStatsIndexCost",
        "ODCIIndexStart",
        "ODCIIndexFetch",
        "ODCIIndexClose",
        "ODCIIndexAlter",
        "ODCIIndexTruncate",
        "ODCIIndexDrop",
    ] {
        assert!(seq.contains(&routine), "missing {routine} in {seq:?}");
    }
}

#[test]
fn similarity_and_text_across_cartridges() {
    let mut db = full_db();
    db.execute("CREATE TABLE assets (id INTEGER, caption VARCHAR2(200), img VIR_IMAGE)").unwrap();
    let mut wl = SignatureWorkload::new(12);
    let base = wl.random();
    for (id, caption, sig) in [
        (1, "sunset over mountains", wl.near_duplicate(&base, 0.3)),
        (2, "city skyline at night", wl.random()),
        (3, "mountains in morning fog", wl.near_duplicate(&base, 0.4)),
    ] {
        db.execute_with(
            "INSERT INTO assets VALUES (?, ?, VIR_IMAGE(?))",
            &[i64::from(id).into(), caption.into(), sig.serialize().into()],
        )
        .unwrap();
    }
    db.execute("CREATE INDEX a_text ON assets(caption) INDEXTYPE IS TextIndexType").unwrap();
    db.execute("CREATE INDEX a_img ON assets(img) INDEXTYPE IS VirIndexType").unwrap();
    let rows = db
        .query_with(
            "SELECT id FROM assets WHERE Contains(caption, 'mountains') \
             AND VirSimilar(img, ?, 'globalcolor=0.5, texture=0.5', 2.0) ORDER BY id",
            &[base.serialize().into()],
        )
        .unwrap();
    assert_eq!(rows, vec![vec![Value::Integer(1)], vec![Value::Integer(3)]]);
}

#[test]
fn statement_failure_rolls_back_cartridge_side_effects() {
    let mut db = full_db();
    db.execute("CREATE TABLE docs (id INTEGER, body VARCHAR2(200))").unwrap();
    db.execute("CREATE INDEX dt ON docs(body) INDEXTYPE IS TextIndexType").unwrap();
    db.execute("INSERT INTO docs VALUES (1, 'good row')").unwrap();
    // Multi-row insert whose second row fails type checking: the whole
    // statement — including the first row's index maintenance — unwinds.
    let err = db.execute("INSERT INTO docs VALUES (2, 'second row'), ('oops', 3)");
    assert!(err.is_err());
    assert_eq!(db.query("SELECT COUNT(*) FROM docs").unwrap()[0][0], Value::Integer(1));
    assert!(db.query("SELECT id FROM docs WHERE Contains(body, 'second')").unwrap().is_empty());
}
