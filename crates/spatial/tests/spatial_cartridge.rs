//! End-to-end tests of the spatial cartridge: the §3.2.2 roads/parks
//! scenario, two-phase evaluation, spatial joins, and the legacy baseline.

use extidx_common::Value;
use extidx_spatial::{geometry_sql, legacy, Geometry, Mask, Mbr, SpatialWorkload};
use extidx_sql::Database;

fn rect(x0: f64, y0: f64, x1: f64, y1: f64) -> Geometry {
    Geometry::Rect(Mbr { xmin: x0, ymin: y0, xmax: x1, ymax: y1 })
}

fn spatial_db() -> Database {
    let mut db = Database::with_cache_pages(4096);
    extidx_spatial::install(&mut db).unwrap();
    db
}

fn load_layer(db: &mut Database, table: &str, geoms: &[Geometry]) {
    db.execute(&format!("CREATE TABLE {table} (gid INTEGER, geometry SDO_GEOMETRY)")).unwrap();
    for (i, g) in geoms.iter().enumerate() {
        db.execute(&format!(
            "INSERT INTO {table} VALUES ({}, {})",
            i,
            geometry_sql(g)
        ))
        .unwrap();
    }
}

#[test]
fn single_layer_window_query() {
    let mut db = spatial_db();
    let geoms = vec![
        rect(0.0, 0.0, 10.0, 10.0),
        rect(100.0, 100.0, 110.0, 110.0),
        rect(5.0, 5.0, 15.0, 15.0),
        rect(500.0, 500.0, 510.0, 510.0),
    ];
    load_layer(&mut db, "parcels", &geoms);
    db.execute("CREATE INDEX parcel_sidx ON parcels(geometry) INDEXTYPE IS SpatialIndexType")
        .unwrap();
    let window = geometry_sql(&rect(0.0, 0.0, 20.0, 20.0));
    let rows = db
        .query(&format!(
            "SELECT gid FROM parcels WHERE Sdo_Relate(geometry, {window}, 'mask=ANYINTERACT') \
             ORDER BY gid"
        ))
        .unwrap();
    assert_eq!(rows, vec![vec![Value::Integer(0)], vec![Value::Integer(2)]]);
}

#[test]
fn functional_and_indexed_agree() {
    let mut wl = SpatialWorkload::new(1024.0, 11);
    let geoms: Vec<Geometry> = (0..60).map(|_| wl.rect(5.0, 40.0)).collect();
    let window = wl.rect(100.0, 300.0);
    let window_sql = geometry_sql(&window);

    let mut plain = spatial_db();
    load_layer(&mut plain, "parcels", &geoms);
    let f = plain
        .query(&format!(
            "SELECT gid FROM parcels WHERE Sdo_Relate(geometry, {window_sql}, 'mask=ANYINTERACT') ORDER BY gid"
        ))
        .unwrap();

    let mut indexed = spatial_db();
    load_layer(&mut indexed, "parcels", &geoms);
    indexed
        .execute("CREATE INDEX sidx ON parcels(geometry) INDEXTYPE IS SpatialIndexType")
        .unwrap();
    let i = indexed
        .query(&format!(
            "SELECT gid FROM parcels WHERE Sdo_Relate(geometry, {window_sql}, 'mask=ANYINTERACT') ORDER BY gid"
        ))
        .unwrap();
    assert_eq!(f, i);
    assert!(!f.is_empty(), "window should hit something");
}

#[test]
fn papers_roads_parks_overlap_join() {
    let mut db = spatial_db();
    let roads = vec![
        rect(0.0, 0.0, 100.0, 5.0),   // road 0: horizontal strip
        rect(200.0, 0.0, 205.0, 100.0), // road 1: vertical strip
    ];
    let parks = vec![
        rect(50.0, 0.0, 80.0, 50.0), // park 0 overlaps road 0
        rect(300.0, 300.0, 350.0, 350.0), // park 1 overlaps nothing
    ];
    load_layer(&mut db, "roads", &roads);
    load_layer(&mut db, "parks", &parks);
    db.execute("CREATE INDEX roads_sidx ON roads(geometry) INDEXTYPE IS SpatialIndexType").unwrap();
    db.execute("CREATE INDEX parks_sidx ON parks(geometry) INDEXTYPE IS SpatialIndexType").unwrap();

    // The paper's modern query: one operator, no exposed index tables.
    let rows = db
        .query(
            "SELECT r.gid, p.gid FROM roads r, parks p \
             WHERE Sdo_Relate(r.geometry, p.geometry, 'mask=OVERLAPS')",
        )
        .unwrap();
    assert_eq!(rows, vec![vec![Value::Integer(0), Value::Integer(0)]]);

    // The plan pushes the operator into a domain join.
    let plan = db
        .explain(
            "SELECT r.gid, p.gid FROM roads r, parks p \
             WHERE Sdo_Relate(r.geometry, p.geometry, 'mask=OVERLAPS')",
        )
        .unwrap()
        .join("\n");
    assert!(plan.contains("DOMAIN JOIN"), "{plan}");
}

#[test]
fn legacy_join_matches_modern_query() {
    let mut wl = SpatialWorkload::new(512.0, 21);
    let roads: Vec<Geometry> = (0..40).map(|_| wl.rect(10.0, 60.0)).collect();
    let parks: Vec<Geometry> = (0..40).map(|_| wl.rect(10.0, 60.0)).collect();
    let mut db = spatial_db();
    load_layer(&mut db, "roads", &roads);
    load_layer(&mut db, "parks", &parks);
    db.execute("CREATE INDEX roads_sidx ON roads(geometry) INDEXTYPE IS SpatialIndexType").unwrap();
    db.execute("CREATE INDEX parks_sidx ON parks(geometry) INDEXTYPE IS SpatialIndexType").unwrap();

    let mut modern: Vec<(i64, i64)> = db
        .query(
            "SELECT r.gid, p.gid FROM roads r, parks p \
             WHERE Sdo_Relate(r.geometry, p.geometry, 'mask=OVERLAPS')",
        )
        .unwrap()
        .into_iter()
        .map(|r| (r[0].as_integer().unwrap(), r[1].as_integer().unwrap()))
        .collect();
    let mut old: Vec<(i64, i64)> = legacy::legacy_relate_join(
        &mut db, "roads", "gid", "roads_sidx", "parks", "gid", "parks_sidx", Mask::Overlaps,
    )
    .unwrap()
    .into_iter()
    .map(|(a, b)| (a.as_integer().unwrap(), b.as_integer().unwrap()))
    .collect();
    modern.sort_unstable();
    old.sort_unstable();
    assert_eq!(modern, old);
    assert!(!modern.is_empty(), "workload should produce overlaps");
}

#[test]
fn index_maintenance_on_dml() {
    let mut db = spatial_db();
    load_layer(&mut db, "parcels", &[rect(0.0, 0.0, 10.0, 10.0)]);
    db.execute("CREATE INDEX sidx ON parcels(geometry) INDEXTYPE IS SpatialIndexType").unwrap();
    let window = geometry_sql(&rect(0.0, 0.0, 50.0, 50.0));
    let q = format!(
        "SELECT gid FROM parcels WHERE Sdo_Relate(geometry, {window}, 'mask=ANYINTERACT')"
    );
    assert_eq!(db.query(&q).unwrap().len(), 1);
    // Insert inside the window.
    db.execute(&format!("INSERT INTO parcels VALUES (7, {})", geometry_sql(&rect(20.0, 20.0, 30.0, 30.0))))
        .unwrap();
    assert_eq!(db.query(&q).unwrap().len(), 2);
    // Move parcel 7 away.
    db.execute(&format!(
        "UPDATE parcels SET geometry = {} WHERE gid = 7",
        geometry_sql(&rect(900.0, 900.0, 910.0, 910.0))
    ))
    .unwrap();
    assert_eq!(db.query(&q).unwrap().len(), 1);
    // Delete the original parcel.
    db.execute("DELETE FROM parcels WHERE gid = 0").unwrap();
    assert_eq!(db.query(&q).unwrap().len(), 0);
}

#[test]
fn masks_distinguish_relations() {
    let mut db = spatial_db();
    let geoms = vec![
        rect(0.0, 0.0, 100.0, 100.0), // 0: big parcel
        rect(10.0, 10.0, 20.0, 20.0), // 1: inside 0
        rect(90.0, 90.0, 150.0, 150.0), // 2: overlaps 0
    ];
    load_layer(&mut db, "parcels", &geoms);
    db.execute("CREATE INDEX sidx ON parcels(geometry) INDEXTYPE IS SpatialIndexType").unwrap();
    let big = geometry_sql(&geoms[0]);
    let inside = db
        .query(&format!("SELECT gid FROM parcels WHERE Sdo_Relate(geometry, {big}, 'mask=INSIDE')"))
        .unwrap();
    assert_eq!(inside, vec![vec![Value::Integer(1)]]);
    let overlaps = db
        .query(&format!("SELECT gid FROM parcels WHERE Sdo_Relate(geometry, {big}, 'mask=OVERLAPS')"))
        .unwrap();
    assert_eq!(overlaps, vec![vec![Value::Integer(2)]]);
    let equal = db
        .query(&format!("SELECT gid FROM parcels WHERE Sdo_Relate(geometry, {big}, 'mask=EQUAL')"))
        .unwrap();
    assert_eq!(equal, vec![vec![Value::Integer(0)]]);
}

#[test]
fn tessellation_parameters_respected() {
    let mut db = spatial_db();
    load_layer(&mut db, "parcels", &[rect(0.0, 0.0, 10.0, 10.0)]);
    db.execute(
        "CREATE INDEX sidx ON parcels(geometry) INDEXTYPE IS SpatialIndexType \
         PARAMETERS (':World 256 :Level 3')",
    )
    .unwrap();
    // 256/8 = 32-unit tiles; a 10x10 rect at origin hits exactly 1 tile.
    let n = db.query("SELECT COUNT(*) FROM DR$SIDX$T").unwrap();
    assert_eq!(n[0][0], Value::Integer(1));
    // ALTER to a finer tessellation → rebuild with more tiles.
    db.execute("ALTER INDEX sidx PARAMETERS (':Level 6')").unwrap();
    // 256/64 = 4-unit tiles; 10x10 at origin spans 3x3 = 9 tiles.
    let n = db.query("SELECT COUNT(*) FROM DR$SIDX$T").unwrap();
    assert_eq!(n[0][0], Value::Integer(9));
}

#[test]
fn polygons_in_the_index() {
    let mut db = spatial_db();
    let tri = Geometry::Polygon(vec![(10.0, 10.0), (60.0, 10.0), (35.0, 60.0)]);
    load_layer(&mut db, "zones", &[tri.clone(), rect(500.0, 500.0, 600.0, 600.0)]);
    db.execute("CREATE INDEX zidx ON zones(geometry) INDEXTYPE IS SpatialIndexType").unwrap();
    let probe = geometry_sql(&Geometry::Point { x: 35.0, y: 20.0 });
    let rows = db
        .query(&format!("SELECT gid FROM zones WHERE Sdo_Relate(geometry, {probe}, 'mask=CONTAINS')"))
        .unwrap();
    assert_eq!(rows, vec![vec![Value::Integer(0)]]);
}

#[test]
fn drop_index_removes_storage_tables() {
    let mut db = spatial_db();
    load_layer(&mut db, "parcels", &[rect(0.0, 0.0, 10.0, 10.0)]);
    db.execute("CREATE INDEX sidx ON parcels(geometry) INDEXTYPE IS SpatialIndexType").unwrap();
    assert!(db.query("SELECT COUNT(*) FROM DR$SIDX$T").is_ok());
    db.execute("DROP INDEX sidx").unwrap();
    assert!(db.query("SELECT COUNT(*) FROM DR$SIDX$T").is_err());
    assert!(db.query("SELECT COUNT(*) FROM DR$SIDX$G").is_err());
}

/// EXPLAIN ANALYZE smoke: the tile-index window scan is annotated with
/// actual counters and the summary reports the executed row count.
#[test]
fn explain_analyze_annotates_the_spatial_scan() {
    let mut wl = SpatialWorkload::new(1024.0, 19);
    let geoms: Vec<Geometry> = (0..60).map(|_| wl.rect(5.0, 40.0)).collect();
    let mut db = spatial_db();
    load_layer(&mut db, "parcels", &geoms);
    db.execute("CREATE INDEX sidx ON parcels(geometry) INDEXTYPE IS SpatialIndexType").unwrap();
    let window = geometry_sql(&wl.rect(100.0, 300.0));
    let sql = format!(
        "SELECT /*+ INDEX(parcels sidx) */ gid FROM parcels \
         WHERE Sdo_Relate(geometry, {window}, 'mask=ANYINTERACT')"
    );
    let lines: Vec<String> = db
        .query(&format!("EXPLAIN ANALYZE {sql}"))
        .unwrap()
        .into_iter()
        .map(|r| r[0].to_string())
        .collect();
    let scan =
        lines.iter().find(|l| l.contains("DOMAIN INDEX SCAN")).expect("domain scan in plan");
    assert!(scan.contains("[actual rows="), "unannotated scan line: {scan}");
    let expected = db.query(&sql).unwrap().len();
    let summary = lines.last().unwrap();
    assert!(summary.contains(&format!("rows={expected}")), "{summary}");
}

/// A panic in the tile indextype's maintenance path is contained by the
/// sandbox: clean statement failure, engine alive, index consistent.
#[test]
fn panic_in_maintenance_is_contained() {
    use extidx_core::fault::FaultKind;

    let mut db = spatial_db();
    load_layer(&mut db, "parcels", &[rect(0.0, 0.0, 10.0, 10.0), rect(50.0, 50.0, 60.0, 60.0)]);
    db.execute("CREATE INDEX sidx ON parcels(geometry) INDEXTYPE IS SpatialIndexType").unwrap();
    let inj = db.fault_injector().clone();
    inj.arm("spatial.maintenance.indexed", None, 1, FaultKind::Panic);
    let g = geometry_sql(&rect(2.0, 2.0, 4.0, 4.0));
    let err = db
        .execute(&format!("INSERT INTO parcels VALUES (9, {g})"))
        .expect_err("panicking maintenance must fail the statement");
    assert!(
        matches!(err, extidx_common::Error::CartridgeFault { .. }),
        "expected CartridgeFault, got {err}"
    );
    inj.disarm_all();

    let window = geometry_sql(&rect(0.0, 0.0, 20.0, 20.0));
    let probe =
        format!("SELECT gid FROM parcels WHERE Sdo_Relate(geometry, {window}, 'mask=ANYINTERACT')");
    let rows = db.query(&probe).unwrap();
    assert_eq!(rows, vec![vec![Value::Integer(0)]], "failed insert must leave no index entries");

    db.execute(&format!("INSERT INTO parcels VALUES (9, {g})")).unwrap();
    let mut gids: Vec<i64> =
        db.query(&probe).unwrap().iter().map(|r| r[0].as_integer().unwrap()).collect();
    gids.sort_unstable();
    assert_eq!(gids, vec![0, 9]);
}
