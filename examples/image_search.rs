//! Content-based image retrieval — the §3.2.3 VIR case study.
//!
//! Loads synthetic image signatures with a few planted near-duplicates,
//! then runs `VirSimilar` queries with and without the domain index. The
//! indexed path evaluates the operator in three phases (coarse range
//! filter → coarse distance → full signature comparison); the unindexed
//! path compares full signatures for every row — the pre-8i situation
//! where "the operator was evaluated as a filter predicate for every row".
//!
//! Run with: `cargo run --release --example image_search`

use std::time::Instant;

use extidx::sql::Database;
use extidx::vir::{SignatureWorkload, Weights};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n_images = 5_000;
    let mut wl = SignatureWorkload::new(2026);
    let query_image = wl.random();

    let mut db = Database::with_cache_pages(16_384);
    extidx::vir::install(&mut db)?;
    db.execute("CREATE TABLE images (id INTEGER, img VIR_IMAGE)")?;

    print!("loading {n_images} image signatures (+5 planted near-duplicates)… ");
    let t = Instant::now();
    for i in 0..n_images {
        let sig = wl.random();
        db.execute_with(
            "INSERT INTO images VALUES (?, VIR_IMAGE(?))",
            &[(i as i64).into(), sig.serialize().into()],
        )?;
    }
    for d in 0..5 {
        let dup = wl.near_duplicate(&query_image, 0.8);
        db.execute_with(
            "INSERT INTO images VALUES (?, VIR_IMAGE(?))",
            &[((n_images + d) as i64).into(), dup.serialize().into()],
        )?;
    }
    println!("{:?}", t.elapsed());

    let weights = "globalcolor=0.5, localcolor=0.0, texture=0.5, structure=0.0";
    let threshold = 3.0;
    let sql = format!(
        "SELECT id, SCORE(1) FROM images \
         WHERE VirSimilar(img, '{}', '{weights}', {threshold}, 1) ORDER BY SCORE(1)",
        query_image.serialize()
    );

    // Baseline: no index → full signature comparison per row.
    let t = Instant::now();
    let baseline = db.query(&sql)?;
    let baseline_time = t.elapsed();

    // Build the index and re-run — three-phase filtered evaluation.
    print!("building VIR index… ");
    let t = Instant::now();
    db.execute("CREATE INDEX img_idx ON images(img) INDEXTYPE IS VirIndexType")?;
    println!("{:?}", t.elapsed());

    let t = Instant::now();
    let indexed = db.query(&sql)?;
    let indexed_time = t.elapsed();
    assert_eq!(baseline.len(), indexed.len());

    println!("\nmatches within distance {threshold} (weights: {weights}):");
    for row in indexed.iter().take(8) {
        println!("  image {:>6}  distance {}", row[0], row[1]);
    }

    // Phase effectiveness straight off the index table.
    let qc = query_image.coarse();
    let w = Weights::parse(weights)?;
    let r = threshold / w.0[0];
    let phase1 = db.query_with(
        "SELECT COUNT(*) FROM DR$IMG_IDX$S WHERE q1 BETWEEN ? AND ?",
        &[(qc[0] - r).into(), (qc[0] + r).into()],
    )?[0][0]
        .as_integer()?;
    let total = db.query("SELECT COUNT(*) FROM DR$IMG_IDX$S")?[0][0].as_integer()?;

    println!("\nmulti-level filtering (§3.2.3):");
    println!("  total images            {total:>8}");
    println!("  after phase-1 range     {phase1:>8}");
    println!("  final matches           {:>8}", indexed.len());
    println!("\n{:<28} {:>12}", "execution", "time");
    println!("{:<28} {:>12?}", "full-scan comparison", baseline_time);
    println!("{:<28} {:>12?}", "three-phase via index", indexed_time);
    println!(
        "\nspeedup: {:.1}x — \"it is now possible to do content-based image queries on \
         tables with millions of rows\"",
        baseline_time.as_secs_f64() / indexed_time.as_secs_f64()
    );
    Ok(())
}
