//! Concurrent multi-session front end over one shared [`Database`].
//!
//! The paper's framework runs inside a multi-user server: many sessions
//! issue statements against one instance, each session seeing a
//! transaction-consistent snapshot while domain-index maintenance stays
//! statement-atomic. This module supplies that front end for the
//! reproduction:
//!
//! - [`Server`] wraps the engine in an `Arc<RwLock<Database>>` and hands
//!   out [`Session`]s (independent handles, one per "connection").
//! - SELECT statements take the **read lock**: any number of sessions
//!   scan concurrently, each pinned to its snapshot — its own
//!   transaction's snapshot inside `BEGIN…COMMIT`, latest-committed
//!   otherwise. Cartridge scan callbacks (`ODCIIndexStart/Fetch/Close`)
//!   run under the read lock through the read-only `SharedCtx`, so a
//!   cartridge can never mutate shared state from a reader.
//! - Everything else (DML, DDL, transaction control) takes the **write
//!   lock** for the duration of the statement. That exclusivity is what
//!   serializes ODCIIndex maintenance, the compensation log, and the
//!   pending-work log per index: a cartridge never observes a torn
//!   statement, and crash recovery's commit markers are appended in
//!   commit order because csn assignment and the marker append happen
//!   under one exclusive hold.
//!
//! Isolation level is **snapshot isolation** with first-writer-wins:
//! `COMMIT` validates the transaction's write set against concurrently
//! committed writers and fails with a conflict error on overlap,
//! auto-rolling the loser back (its session returns to autocommit mode).
//! Statements outside an explicit transaction are an implicit
//! begin+statement+commit, so autocommit writers participate in the same
//! conflict protocol.
//!
//! On top of PR 9's incremental vacuum this module adds the
//! server-resident governance layer:
//!
//! - a **maintenance daemon** thread owned by the [`Server`]: it runs
//!   incremental vacuum passes on an adaptive cadence (occupancy-driven,
//!   see `ServerGovernor::adaptive_interval`) so foreground commits no
//!   longer pay the inline sweep. Daemon panics are contained per pass
//!   and the loop restarts (`DAEMON_RESTARTS` in `V$SERVER`);
//! - **backpressure**: when MVCC chain occupancy crosses the high-water
//!   mark, new DML briefly yields at [`Session::backpressure_gate`]
//!   (bounded rounds; with a zero `yield_wait` every round self-drains
//!   deterministically) until the low-water mark releases the gate;
//! - **statement deadlines**: `SET STATEMENT_TIMEOUT` (wall ms) / `SET
//!   STATEMENT_TIMEOUT_TICKS` (deterministic poll count) arm a
//!   per-statement guard polled by executor loops and charged alongside
//!   the sandbox tick budget at ODCI crossings; expiry surfaces as
//!   `Error::StatementTimeout` after normal statement rollback;
//! - **transparent conflict retry**: an autocommit statement losing
//!   first-writer-wins is re-run server-side on a fresh snapshot with
//!   seeded, jittered backoff; explicit transactions still surface the
//!   conflict to the client.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use extidx_common::{Error, Result, Row, Value};
use extidx_core::events::DbEvent;
use extidx_core::governor as stmt_governor;
use extidx_core::governor::CancelToken;
use extidx_storage::{Snapshot, UndoLog};
use parking_lot::{Mutex, RwLock};

use crate::ast::{bind_statement, Select, Statement};
use crate::database::{Database, SqlStat, StmtResult};
use crate::exec_ctx::run_select_shared;
use crate::governor::{GovernorConfig, JitterRng, ServerGovernor};
use crate::parser::parse;

/// A shared database server: the constructor of [`Session`]s and the
/// owner of the maintenance daemon.
#[derive(Clone)]
pub struct Server {
    db: Arc<RwLock<Database>>,
    governor: Arc<ServerGovernor>,
    daemon: Option<Arc<DaemonHandle>>,
}

// The whole point: a `Server` (and its `Database`) crosses threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Server>();
};

impl Server {
    /// Wrap an engine (typically already loaded with schema/cartridges)
    /// for shared multi-session access, with the default governor
    /// configuration (maintenance daemon on).
    pub fn new(db: Database) -> Self {
        Self::with_config(db, GovernorConfig::default())
    }

    /// Wrap an engine with an explicit governor configuration. With
    /// `config.daemon == false` vacuum stays inline on commit/rollback
    /// (PR 9 behaviour); otherwise the daemon thread owns the cadence.
    pub fn with_config(mut db: Database, config: GovernorConfig) -> Self {
        let daemon_wanted = config.daemon;
        let governor = Arc::new(ServerGovernor::new(config));
        db.set_governor(Arc::clone(&governor));
        db.refresh_backpressure();
        let db = Arc::new(RwLock::new(db));
        let daemon = daemon_wanted.then(|| spawn_daemon(&db, &governor));
        Server { db, governor, daemon }
    }

    /// The shared governor blackboard (counters, watermarks, config).
    pub fn governor(&self) -> Arc<ServerGovernor> {
        Arc::clone(&self.governor)
    }

    /// Open a new session. Sessions are independent: each owns its
    /// transaction state and can run on its own thread.
    pub fn session(&self) -> Session {
        let cfg = self.governor.config();
        // Per-session jitter seed: deterministic in the session-creation
        // order, distinct across sessions (`SET RETRY_SEED` overrides).
        let seed = 0x0DC1_5EED ^ SESSION_SEQ.fetch_add(1, Ordering::Relaxed);
        Session {
            db: Arc::clone(&self.db),
            governor: Arc::clone(&self.governor),
            txn: None,
            token: CancelToken::new(),
            timeout: None,
            poll_limit: None,
            retry_max: cfg.retry_max,
            retry_backoff: cfg.retry_backoff,
            jitter: JitterRng::new(seed),
            seed,
        }
    }

    /// Run `f` with exclusive access to the engine — setup, ablation
    /// toggles, assertions. Not a statement path.
    pub fn admin<T>(&self, f: impl FnOnce(&mut Database) -> T) -> T {
        f(&mut self.db.write())
    }

    /// Run `f` with shared access to the engine (metrics, catalog reads).
    pub fn read<T>(&self, f: impl FnOnce(&Database) -> T) -> T {
        f(&self.db.read())
    }

    /// Tear the server down and reclaim the engine. Fails (returning the
    /// still-shared server) if sessions or clones are alive.
    ///
    /// Ordering matters: the daemon thread holds its own `Arc` on the
    /// engine, so it must be stopped (and joined) *before* the engine
    /// `Arc` can unwrap — and if live sessions then block the unwrap, the
    /// daemon is restarted so the surviving server keeps its maintenance
    /// cadence instead of silently regressing to inline vacuum.
    pub fn into_inner(mut self) -> std::result::Result<Database, Server> {
        let governor = Arc::clone(&self.governor);
        if let Some(d) = self.daemon.take() {
            match Arc::try_unwrap(d) {
                // Last daemon handle: stopping it joins the thread and
                // releases the daemon's engine Arc.
                Ok(handle) => drop(handle),
                Err(shared) => {
                    // Other Server clones are alive — teardown impossible.
                    return Err(Server { db: self.db, governor, daemon: Some(shared) });
                }
            }
        }
        match Arc::try_unwrap(self.db) {
            Ok(lock) => Ok(lock.into_inner()),
            Err(db) => {
                let daemon = governor.config().daemon.then(|| spawn_daemon(&db, &governor));
                Err(Server { db, governor, daemon })
            }
        }
    }
}

static SESSION_SEQ: AtomicU64 = AtomicU64::new(1);

/// Owner of the maintenance daemon thread; shared by every clone of one
/// [`Server`]. Dropping the last handle requests shutdown and joins.
struct DaemonHandle {
    governor: Arc<ServerGovernor>,
    join: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Drop for DaemonHandle {
    fn drop(&mut self) {
        self.governor.request_shutdown();
        if let Some(j) = self.join.lock().take() {
            let _ = j.join();
        }
        // Sessions still holding the engine fall back to inline vacuum.
        self.governor.set_daemon_running(false);
    }
}

fn spawn_daemon(db: &Arc<RwLock<Database>>, governor: &Arc<ServerGovernor>) -> Arc<DaemonHandle> {
    governor.reset_shutdown();
    governor.set_daemon_running(true);
    let db = Arc::clone(db);
    let g = Arc::clone(governor);
    let join = std::thread::Builder::new()
        .name("extidx-maintenance".into())
        .spawn(move || daemon_main(db, g))
        .expect("spawn maintenance daemon");
    Arc::new(DaemonHandle { governor: Arc::clone(governor), join: Mutex::new(Some(join)) })
}

/// The daemon loop: adaptive sleep, then one maintenance pass (orphan
/// aborts + incremental vacuum) under the write lock. Each pass runs
/// inside the cartridge sandbox, so an injected panic at the
/// `daemon.vacuum` fault point is contained exactly like a cartridge
/// bug — the loop counts a restart and continues; the engine lock is
/// never poisoned (the `parking_lot` shim recovers poisoned `std` locks).
fn daemon_main(db: Arc<RwLock<Database>>, g: Arc<ServerGovernor>) {
    while !g.shutdown_requested() {
        g.daemon_wait(g.adaptive_interval());
        if g.shutdown_requested() {
            break;
        }
        let pass = catch_unwind(AssertUnwindSafe(|| db.write().daemon_pass()));
        match pass {
            Ok(Ok(())) => g.bump(&g.counters.daemon_passes),
            // An injected (non-panic) fault aborted the pass before it
            // touched anything; the next interval retries.
            Ok(Err(_)) => g.bump(&g.counters.daemon_faults),
            // Contained panic: the pass died, the daemon did not.
            Err(_) => g.bump(&g.counters.daemon_restarts),
        }
    }
}

/// The session's open transaction: the snapshot every statement reads
/// under plus the accumulated undo for rollback.
struct SessionTxn {
    snap: Snapshot,
    undo: UndoLog,
}

/// One database connection. `Send` — hand sessions to worker threads —
/// but driven by one thread at a time.
pub struct Session {
    db: Arc<RwLock<Database>>,
    governor: Arc<ServerGovernor>,
    txn: Option<SessionTxn>,
    /// Cancellation flag for the in-flight statement; clone it out via
    /// [`Session::cancel_token`] and trip it from any thread.
    token: CancelToken,
    /// `SET STATEMENT_TIMEOUT` (wall-clock), `None` = unlimited.
    timeout: Option<Duration>,
    /// `SET STATEMENT_TIMEOUT_TICKS` (deterministic poll count).
    poll_limit: Option<u64>,
    /// `SET CONFLICT_RETRIES` — transparent autocommit retry budget.
    retry_max: u32,
    retry_backoff: Duration,
    jitter: JitterRng,
    seed: u64,
}

impl Session {
    /// Whether an explicit transaction is open.
    pub fn in_txn(&self) -> bool {
        self.txn.is_some()
    }

    /// The open transaction's snapshot (None in autocommit mode).
    pub fn snapshot(&self) -> Option<Snapshot> {
        self.txn.as_ref().map(|t| t.snap)
    }

    /// A handle other threads can use to cancel this session's running
    /// statement (observed at its next cooperative poll).
    pub fn cancel_token(&self) -> CancelToken {
        self.token.clone()
    }

    /// Execute one statement.
    pub fn execute(&mut self, sql: &str) -> Result<StmtResult> {
        self.execute_with(sql, &[])
    }

    /// Convenience: run a query and return just the rows.
    pub fn query(&mut self, sql: &str) -> Result<Vec<Row>> {
        match self.execute(sql)? {
            StmtResult::Rows { rows, .. } => Ok(rows),
            _ => Err(Error::Semantic("statement did not produce rows".into())),
        }
    }

    /// Execute one statement with `?` binds.
    pub fn execute_with(&mut self, sql: &str, binds: &[Value]) -> Result<StmtResult> {
        let mut stmt = parse(sql)?;
        bind_statement(&mut stmt, binds)?;
        let result = match stmt {
            Statement::Begin => self.begin(),
            Statement::Commit => self.commit(),
            Statement::Rollback => self.rollback(),
            // Maintenance command: no transaction of its own. Open
            // snapshots (including this session's) hold the horizon back,
            // so an explicit VACUUM mid-transaction is always safe.
            Statement::Vacuum => {
                self.db.write().vacuum();
                Ok(StmtResult::Ok)
            }
            Statement::Set { name, value } => self.set_param(&name, value),
            Statement::Show { name } => self.show_param(&name),
            Statement::Select(s) => self.run_select(sql, &s),
            other => self.write_statement(other),
        };
        if let Err(e @ Error::StatementTimeout { .. }) = &result {
            // Central deadline accounting: `V$SERVER` counter + a
            // TXN/Timeout row in `V$TRACE`, once per timed-out statement.
            self.db.read().trace_timeout(e);
        }
        result
    }

    // ---- session parameters ------------------------------------------------

    fn set_param(&mut self, name: &str, value: i64) -> Result<StmtResult> {
        let nonneg = |v: i64| -> Result<u64> {
            u64::try_from(v)
                .map_err(|_| Error::Semantic(format!("{name} must be non-negative, got {v}")))
        };
        match name {
            // Milliseconds; 0 disables.
            "STATEMENT_TIMEOUT" => {
                let v = nonneg(value)?;
                self.timeout = (v > 0).then(|| Duration::from_millis(v));
            }
            // Deterministic poll-count deadline; 0 disables.
            "STATEMENT_TIMEOUT_TICKS" => {
                let v = nonneg(value)?;
                self.poll_limit = (v > 0).then_some(v);
            }
            "CONFLICT_RETRIES" => {
                self.retry_max = u32::try_from(nonneg(value)?).unwrap_or(u32::MAX);
            }
            "RETRY_SEED" => {
                self.seed = value as u64;
                self.jitter = JitterRng::new(value as u64);
            }
            _ => {
                return Err(Error::Unsupported(format!("unknown session parameter {name}")));
            }
        }
        Ok(StmtResult::Ok)
    }

    fn show_param(&self, name: &str) -> Result<StmtResult> {
        let value: i64 = match name {
            "STATEMENT_TIMEOUT" => self.timeout.map(|d| d.as_millis() as i64).unwrap_or(0),
            "STATEMENT_TIMEOUT_TICKS" => self.poll_limit.map(|v| v as i64).unwrap_or(0),
            "CONFLICT_RETRIES" => i64::from(self.retry_max),
            "RETRY_SEED" => self.seed as i64,
            _ => {
                return Err(Error::Unsupported(format!("unknown session parameter {name}")));
            }
        };
        Ok(StmtResult::Rows {
            columns: vec!["NAME".into(), "VALUE".into()],
            rows: vec![vec![Value::from(name.to_string()), Value::Integer(value)]],
        })
    }

    /// Install the per-statement cancellation guard. Each statement
    /// starts with a cleared token (a cancel only ever targets the
    /// statement in flight, not a future one).
    fn stmt_guard(&self) -> stmt_governor::StmtGuard {
        self.token.reset();
        stmt_governor::begin_statement(self.token.clone(), self.timeout, self.poll_limit)
    }

    // ---- statement lanes ---------------------------------------------------

    fn run_select(&mut self, sql: &str, s: &Select) -> Result<StmtResult> {
        let _guard = self.stmt_guard();
        // Read lane: shared lock, snapshot-pinned, no mutation.
        let started = Instant::now();
        let db = self.db.read();
        let snap = self.txn.as_ref().map(|t| t.snap).unwrap_or_else(Snapshot::latest);
        let before = db.cache_stats();
        let outcome = run_select_shared(&db, snap, s);
        // Completed statements always hit `V$SQLSTATS`; a timed-out one
        // is recorded too (rows_processed = whatever it managed), so the
        // deadline is observable in the statement-level stats.
        let record = |rows_processed: u64| {
            db.record_sql_stat(SqlStat {
                sql_id: 0, // assigned by record_sql_stat
                sql_text: sql.to_string(),
                rows_processed,
                elapsed_micros: started.elapsed().as_micros() as u64,
                cache: db.cache_stats().since(&before),
            });
        };
        match outcome {
            Ok((columns, rows)) => {
                record(rows.len() as u64);
                Ok(StmtResult::Rows { columns, rows })
            }
            Err(e) => {
                if matches!(e, Error::StatementTimeout { .. }) {
                    record(0);
                }
                Err(e)
            }
        }
    }

    /// Open an explicit transaction: reserve a txn id and pin the
    /// snapshot every subsequent statement reads under.
    fn begin(&mut self) -> Result<StmtResult> {
        if self.txn.is_some() {
            return Err(Error::Transaction("a transaction is already active".into()));
        }
        let snap = self.db.read().storage().txn_manager().begin();
        self.txn = Some(SessionTxn { snap, undo: UndoLog::new() });
        Ok(StmtResult::Ok)
    }

    /// Commit the open transaction: first-writer-wins validation, then
    /// the commit marker (in csn order) and version GC. On a write-write
    /// conflict the transaction is rolled back automatically and the
    /// conflict error surfaces — the session drops back to autocommit.
    /// Explicit transactions are **never** transparently retried: the
    /// client saw intermediate state, so only it can decide to re-run.
    fn commit(&mut self) -> Result<StmtResult> {
        let Some(mut t) = self.txn.take() else {
            // COMMIT with nothing open mirrors the legacy arm: fire the
            // event, succeed.
            self.db.write().fire_event(DbEvent::Commit)?;
            return Ok(StmtResult::Ok);
        };
        let mut db = self.db.write();
        let txns = db.storage().txn_manager();
        let enforce = db.storage().conflict_checks();
        match txns.commit(&t.snap, enforce) {
            Ok(_csn) => {
                db.session_commit_finish(t.snap)?;
                Ok(StmtResult::Ok)
            }
            Err(conflict) => {
                db.trace_conflict(&conflict);
                let _ = db.session_abort(t.snap, &mut t.undo);
                Err(conflict)
            }
        }
    }

    /// Roll back the open transaction (no-op + event when none is open,
    /// mirroring the legacy arm).
    fn rollback(&mut self) -> Result<StmtResult> {
        let Some(mut t) = self.txn.take() else {
            self.db.write().fire_event(DbEvent::Rollback)?;
            return Ok(StmtResult::Ok);
        };
        self.db.write().session_abort(t.snap, &mut t.undo)?;
        Ok(StmtResult::Ok)
    }

    /// Write lane: DML/DDL under the exclusive lock. Inside an explicit
    /// transaction the statement joins it; otherwise the statement is an
    /// implicit begin+statement+commit so autocommit writers take part in
    /// the same first-writer-wins protocol (with transparent retry).
    fn write_statement(&mut self, stmt: Statement) -> Result<StmtResult> {
        let _guard = self.stmt_guard();
        // The gate runs *before* the write lock is taken: a yielding
        // statement must not block the daemon (or other sessions) out of
        // the very lock the drain needs.
        self.backpressure_gate()?;
        if self.txn.is_some() {
            return self.txn_statement(stmt);
        }
        self.autocommit_statement(stmt)
    }

    fn txn_statement(&mut self, stmt: Statement) -> Result<StmtResult> {
        let t = self.txn.as_mut().expect("explicit transaction open");
        let mut db = self.db.write();
        // A failed statement already rolled its own effects back
        // inside `run_top`; the transaction stays open either way.
        let result = db.session_statement(stmt, t.snap, &mut t.undo);
        if let Err(e) = &result {
            db.trace_conflict(e);
        }
        result
    }

    /// Autocommit with transparent conflict retry: a statement losing
    /// first-writer-wins validation is re-run on a fresh snapshot up to
    /// `retry_max` times with seeded jittered backoff. Every other error
    /// (including a statement timeout) surfaces immediately.
    fn autocommit_statement(&mut self, stmt: Statement) -> Result<StmtResult> {
        let mut attempt: u32 = 0;
        loop {
            match self.autocommit_once(stmt.clone()) {
                Err(e @ Error::WriteConflict { .. }) => {
                    if attempt >= self.retry_max {
                        if self.retry_max > 0 {
                            self.governor
                                .bump(&self.governor.counters.conflict_retry_exhausted);
                        }
                        return Err(e);
                    }
                    attempt += 1;
                    self.governor.bump(&self.governor.counters.conflict_retries);
                    // The commit point disarmed the deadline; the retry
                    // re-runs the statement, so the deadline applies again.
                    stmt_governor::rearm();
                    stmt_governor::poll()?;
                    self.retry_sleep(attempt);
                }
                Ok(r) => {
                    if attempt > 0 {
                        self.governor.bump(&self.governor.counters.conflict_retry_successes);
                    }
                    return Ok(r);
                }
                other => return other,
            }
        }
    }

    fn autocommit_once(&mut self, stmt: Statement) -> Result<StmtResult> {
        let mut db = self.db.write();
        // Adopt any transactions orphaned by dropped sessions while we
        // hold the lock anyway (keeps the vacuum horizon moving even if
        // the daemon is off).
        db.drain_orphans();
        let txns = db.storage().txn_manager();
        let snap = txns.begin();
        let mut undo = UndoLog::new();
        match db.session_statement(stmt, snap, &mut undo) {
            Ok(result) => {
                // The statement's work is done — from here the commit
                // must not be interrupted by its deadline (half-committed
                // is strictly worse than late).
                stmt_governor::disarm();
                let enforce = db.storage().conflict_checks();
                match txns.commit(&snap, enforce) {
                    Ok(_csn) => {
                        db.session_commit_finish(snap)?;
                        Ok(result)
                    }
                    Err(conflict) => {
                        db.trace_conflict(&conflict);
                        let _ = db.session_abort(snap, &mut undo);
                        Err(conflict)
                    }
                }
            }
            Err(e) => {
                // Statement-level rollback (and its Rollback event) ran in
                // `run_top`; just retire the implicit transaction.
                db.trace_conflict(&e);
                db.session_discard(snap);
                Err(e)
            }
        }
    }

    /// The backpressure gate. When chain occupancy sits above the
    /// high-water mark this briefly parks new DML (bounded rounds — the
    /// gate must never wedge a client): each round either waits
    /// `yield_wait` for the daemon to drain, or — with a zero wait (the
    /// deterministic test clock) or as the final round's last resort —
    /// vacuums in the foreground itself. A statement deadline keeps
    /// ticking while gated.
    fn backpressure_gate(&mut self) -> Result<()> {
        if self.governor.has_orphans() {
            self.db.write().drain_orphans();
        }
        if !self.governor.backpressure_engaged() {
            return Ok(());
        }
        let cfg = self.governor.config();
        let mut rounds = 0u32;
        while self.governor.backpressure_engaged() && rounds < cfg.max_yield_rounds {
            stmt_governor::poll()?;
            rounds += 1;
            self.governor.bump(&self.governor.counters.backpressure_waits);
            if cfg.yield_wait.is_zero() || rounds == cfg.max_yield_rounds {
                // Deterministic clock, or the daemon didn't make it in
                // time: drain in the foreground (armed with its own
                // `governor.backpressure` fault point).
                self.db.write().backpressure_drain()?;
                self.governor.bump(&self.governor.counters.backpressure_self_drains);
            } else {
                self.governor.wake_daemon();
                self.governor.gate_wait(cfg.yield_wait);
            }
        }
        // Still engaged after the bounded rounds (e.g. versions pinned by
        // long snapshots): proceed anyway — overload protection degrades
        // to best-effort, never to a hang.
        Ok(())
    }

    fn retry_sleep(&mut self, attempt: u32) {
        if self.retry_backoff.is_zero() {
            return;
        }
        // Exponential base with ±50% seeded jitter, so colliding sessions
        // decorrelate deterministically under a fixed seed.
        let shift = attempt.saturating_sub(1).min(10);
        let base = self.retry_backoff.saturating_mul(1 << shift);
        let pct = 50 + (self.jitter.next() % 101); // 50..=150
        std::thread::sleep(base.mul_f64(pct as f64 / 100.0));
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        // An abandoned open transaction must not pin versions or leave
        // uncommitted in-place images behind: roll it back. Never block
        // on the engine lock here — the holder may be this very thread
        // (a statement that panicked mid-write) or a wedged peer; park
        // the transaction with the governor instead, and the daemon (or
        // the next write statement) aborts it under the lock.
        if let Some(t) = self.txn.take() {
            match self.db.try_write() {
                Some(mut db) => {
                    let mut undo = t.undo;
                    let _ = db.session_abort(t.snap, &mut undo);
                }
                None => self.governor.park_orphan(t.snap, t.undo),
            }
        }
    }
}
