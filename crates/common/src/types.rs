//! The SQL type system.
//!
//! Mirrors the subset of Oracle8i's type system the paper exercises:
//! scalars (`NUMBER`, `INTEGER`, `VARCHAR2`, `BOOLEAN`), large objects
//! (`LOB`), object types with named attributes (used by the spatial and
//! image cartridges for `SDO_GEOMETRY`-like and signature-bearing columns),
//! collections (`VARRAY`, used by the paper's `Contains(Hobbies, 'Skiing')`
//! example), and `ROWID`.

use std::fmt;

use crate::error::{Error, Result};

/// A SQL data type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SqlType {
    /// 64-bit signed integer (`INTEGER`).
    Integer,
    /// Double-precision number (`NUMBER`). Oracle's NUMBER is decimal; a
    /// binary double is adequate for the workloads reproduced here.
    Number,
    /// Variable-length string (`VARCHAR2(n)`); the length bound is kept
    /// for DDL fidelity but not enforced on assignment, like a declared
    /// but unchecked constraint.
    Varchar(u32),
    /// Boolean (`BOOLEAN`). Oracle8i SQL lacks a true boolean column type;
    /// the paper itself writes `Contains(...) = 1`. We allow both styles.
    Boolean,
    /// Large object (`LOB`): stored out-of-line in the LOB segment and
    /// referenced by a locator value.
    Lob,
    /// Physical row address (`ROWID`).
    RowId,
    /// A named object type with ordered, typed attributes, e.g.
    /// `SDO_GEOMETRY(gtype INTEGER, points VARRAY OF NUMBER)`.
    Object(ObjectTypeDef),
    /// Variable-length array of one element type (`VARRAY OF t`).
    VArray(Box<SqlType>),
}

/// Definition of an object type: a name plus ordered attributes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ObjectTypeDef {
    /// Type name, stored upper-cased like all identifiers in the catalog.
    pub name: String,
    /// Ordered `(attribute name, attribute type)` pairs.
    pub attrs: Vec<(String, SqlType)>,
}

impl ObjectTypeDef {
    /// Create an object type definition; names are normalized to upper
    /// case to match catalog identifier handling.
    pub fn new(name: impl Into<String>, attrs: Vec<(String, SqlType)>) -> Self {
        ObjectTypeDef {
            name: name.into().to_ascii_uppercase(),
            attrs: attrs
                .into_iter()
                .map(|(n, t)| (n.to_ascii_uppercase(), t))
                .collect(),
        }
    }

    /// Position of an attribute by (case-insensitive) name.
    pub fn attr_index(&self, name: &str) -> Result<usize> {
        let upper = name.to_ascii_uppercase();
        self.attrs
            .iter()
            .position(|(n, _)| *n == upper)
            .ok_or_else(|| Error::not_found("object attribute", format!("{}.{}", self.name, upper)))
    }
}

impl SqlType {
    /// `true` if values of `self` can be compared with `<`, `=`, `>`
    /// natively (and therefore indexed by the built-in B-tree).
    pub fn is_scalar_comparable(&self) -> bool {
        matches!(
            self,
            SqlType::Integer | SqlType::Number | SqlType::Varchar(_) | SqlType::Boolean
        )
    }

    /// `true` if assignment of a value of type `other` into a column of
    /// type `self` is allowed (exact match plus the integer→number
    /// widening Oracle performs implicitly).
    pub fn accepts(&self, other: &SqlType) -> bool {
        match (self, other) {
            (SqlType::Number, SqlType::Integer) => true,
            (SqlType::Varchar(_), SqlType::Varchar(_)) => true,
            (SqlType::Lob, SqlType::Varchar(_)) => true, // string literal into LOB column
            (a, b) => a == b,
        }
    }
}

impl fmt::Display for SqlType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlType::Integer => write!(f, "INTEGER"),
            SqlType::Number => write!(f, "NUMBER"),
            SqlType::Varchar(n) => write!(f, "VARCHAR2({n})"),
            SqlType::Boolean => write!(f, "BOOLEAN"),
            SqlType::Lob => write!(f, "LOB"),
            SqlType::RowId => write!(f, "ROWID"),
            SqlType::Object(def) => write!(f, "{}", def.name),
            SqlType::VArray(elem) => write!(f, "VARRAY OF {elem}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point_type() -> ObjectTypeDef {
        ObjectTypeDef::new(
            "sdo_point",
            vec![("x".into(), SqlType::Number), ("y".into(), SqlType::Number)],
        )
    }

    #[test]
    fn object_type_normalizes_names() {
        let t = point_type();
        assert_eq!(t.name, "SDO_POINT");
        assert_eq!(t.attrs[0].0, "X");
    }

    #[test]
    fn attr_index_case_insensitive() {
        let t = point_type();
        assert_eq!(t.attr_index("y").unwrap(), 1);
        assert_eq!(t.attr_index("Y").unwrap(), 1);
        assert!(t.attr_index("z").is_err());
    }

    #[test]
    fn scalar_comparability() {
        assert!(SqlType::Integer.is_scalar_comparable());
        assert!(SqlType::Varchar(10).is_scalar_comparable());
        assert!(!SqlType::Lob.is_scalar_comparable());
        assert!(!SqlType::VArray(Box::new(SqlType::Integer)).is_scalar_comparable());
        assert!(!SqlType::Object(point_type()).is_scalar_comparable());
    }

    #[test]
    fn accepts_widening() {
        assert!(SqlType::Number.accepts(&SqlType::Integer));
        assert!(!SqlType::Integer.accepts(&SqlType::Number));
        assert!(SqlType::Varchar(5).accepts(&SqlType::Varchar(500)));
        assert!(SqlType::Lob.accepts(&SqlType::Varchar(10)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(SqlType::Varchar(128).to_string(), "VARCHAR2(128)");
        assert_eq!(
            SqlType::VArray(Box::new(SqlType::Varchar(16))).to_string(),
            "VARRAY OF VARCHAR2(16)"
        );
        assert_eq!(SqlType::Object(point_type()).to_string(), "SDO_POINT");
    }
}
