//! Physical query plans.
//!
//! A [`PlanNode`] tree is what the optimizer hands the executor. Access
//! paths mirror §2.4.2's choices: full table scan with functional operator
//! evaluation, B-tree index access, index-organized-table key access, and
//! the domain-index scan that drives the cartridge's
//! ODCIIndexStart/Fetch/Close routines.

use extidx_common::{Key, Value};
use extidx_core::meta::{OperatorCall, PredicateBound};

use crate::expr::{AggKind, RExpr, Scope};

/// Evaluation-cost class of one WHERE conjunct, cheapest first. The
/// optimizer sorts Filter terms by this rank (stably, preserving source
/// order within a class) so short-circuit evaluation runs the expensive
/// cartridge operators against the fewest surviving rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TermClass {
    /// References no columns — constant-foldable, evaluated once per row
    /// at register-compare cost.
    Const,
    /// Simple `col relop literal` / `col BETWEEN` shape — the same shape
    /// zone maps and B-trees cover, cheap single-column compare.
    IndexedCol,
    /// Any other column-referencing expression.
    PlainCol,
    /// Contains a user-defined (ODCI) operator call — a cartridge
    /// dispatch, possibly re-entering SQL; by far the most expensive.
    DomainOp,
}

impl std::fmt::Display for TermClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TermClass::Const => "const",
            TermClass::IndexedCol => "zone",
            TermClass::PlainCol => "col",
            TermClass::DomainOp => "op",
        })
    }
}

/// One ordered conjunct of a [`PlanKind::Filter`] node.
#[derive(Debug)]
pub struct FilterTerm {
    pub pred: RExpr,
    pub class: TermClass,
}

/// A zone-map pruning bound a full scan applies before reading a page:
/// the residual conjunct restated as `col ∈ [lo, hi]` over the table's
/// physical column index (`None` = unbounded on that side).
#[derive(Debug, Clone)]
pub struct ZoneBound {
    pub col: usize,
    pub col_name: String,
    pub lo: Option<Value>,
    pub hi: Option<Value>,
}

/// A physical plan node plus its output scope and optimizer estimates.
#[derive(Debug)]
pub struct PlanNode {
    pub kind: PlanKind,
    /// Columns this node outputs.
    pub scope: Scope,
    /// Estimated output rows.
    pub est_rows: f64,
    /// Estimated cumulative cost (page-read equivalents).
    pub est_cost: f64,
}

/// The physical operator.
#[derive(Debug)]
pub enum PlanKind {
    /// Sequential scan of a heap table; exposes columns plus ROWID.
    /// `forced` names the hint that mandated this path, if any.
    /// `prune` lists zone-map bounds the scan checks per page so it can
    /// skip pages whose min/max provably exclude every bound.
    FullScan { table: String, forced: Option<String>, prune: Vec<ZoneBound> },
    /// Full scan of an index-organized table (key order).
    IotFullScan { table: String, forced: Option<String> },
    /// Key range access on an index-organized table's primary key.
    IotRange { table: String, lo: Option<Key>, hi: Option<Key> },
    /// B-tree index range access: scan index entries, fetch base rows.
    BTreeAccess {
        table: String,
        index: String,
        lo: Option<Key>,
        hi: Option<Key>,
        forced: Option<String>,
    },
    /// Direct fetch of one row by ROWID (`WHERE t.ROWID = <literal>`).
    RowIdEq { table: String, rid: extidx_common::RowId },
    /// Constant result rows computed at plan time (e.g. the COUNT(*)
    /// fast path answered from table metadata).
    ConstRows { rows: Vec<Vec<extidx_common::Value>> },
    /// Domain-index scan: drives ODCIIndexStart/Fetch/Close on the
    /// indextype, fetches base rows by the returned rowids.
    DomainScan {
        table: String,
        index: String,
        indextype: String,
        call: OperatorCall,
        /// Ancillary label bridging to `SCORE(label)` (§2.4.2 ancillary
        /// operators).
        label: Option<i64>,
        forced: Option<String>,
    },
    /// Row filter over cost-ordered conjuncts (see [`TermClass`]), each
    /// evaluated under Kleene logic and short-circuited at the first
    /// non-TRUE term. `functional_ops` names the user-defined operators
    /// this filter evaluates through their functional implementations —
    /// the §2.4.2 fallback path, surfaced in EXPLAIN so tests can pin it.
    /// `degraded` names quarantined domain indexes that would have served
    /// a conjunct now evaluated here instead — the health machinery's
    /// silent degradation, made visible to EXPLAIN.
    Filter {
        input: Box<PlanNode>,
        terms: Vec<FilterTerm>,
        functional_ops: Vec<String>,
        degraded: Vec<String>,
    },
    /// Projection.
    Project { input: Box<PlanNode>, exprs: Vec<RExpr> },
    /// Nested-loop join with optional residual predicate (over the
    /// concatenated scope).
    NestedLoopJoin { left: Box<PlanNode>, right: Box<PlanNode>, pred: Option<RExpr> },
    /// Domain join: for each outer (left) row, evaluate `arg_exprs`
    /// against it and drive a domain-index scan of `right_table` with the
    /// resulting argument values — how a user-defined operator acting as
    /// a *join* condition (`Sdo_Relate(r.geometry, p.geometry, …)`) is
    /// evaluated through the index.
    DomainJoin {
        left: Box<PlanNode>,
        right_table: String,
        index: String,
        indextype: String,
        operator: String,
        /// Non-indexed operator arguments, compiled against the left
        /// scope, evaluated per outer row.
        arg_exprs: Vec<RExpr>,
        bound: PredicateBound,
        label: Option<i64>,
    },
    /// Hash join on one equi-key pair (keys compiled against each side's
    /// scope); `extra_pred` evaluated over the concatenated scope.
    HashJoin {
        left: Box<PlanNode>,
        right: Box<PlanNode>,
        left_key: RExpr,
        right_key: RExpr,
        extra_pred: Option<RExpr>,
    },
    /// Sort by keys (`true` = descending).
    Sort { input: Box<PlanNode>, keys: Vec<(RExpr, bool)> },
    /// Row-count limit.
    Limit { input: Box<PlanNode>, n: u64 },
    /// Duplicate elimination over the full row.
    Distinct { input: Box<PlanNode> },
    /// Hash aggregation: output = group columns then aggregate results.
    Aggregate {
        input: Box<PlanNode>,
        group: Vec<RExpr>,
        aggs: Vec<(AggKind, Option<RExpr>)>,
    },
}

impl PlanNode {
    /// Indented one-line-per-node rendering for EXPLAIN.
    pub fn explain(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.explain_into(0, &mut out);
        out
    }

    fn explain_into(&self, depth: usize, out: &mut Vec<String>) {
        let pad = "  ".repeat(depth);
        // `[FORCED BY /*+ hint */]` marks paths mandated by a hint rather
        // than chosen by cost.
        let forced_suffix = |forced: &Option<String>| match forced {
            Some(h) => format!("  [FORCED BY /*+ {h} */]"),
            None => String::new(),
        };
        let line = match &self.kind {
            PlanKind::FullScan { table, forced, prune } => {
                let prune_suffix = if prune.is_empty() {
                    String::new()
                } else {
                    let cols: Vec<&str> =
                        prune.iter().map(|b| b.col_name.as_str()).collect();
                    format!("  zone-prune[{}]", cols.join(", "))
                };
                format!("{pad}FULL SCAN {table}{prune_suffix}{}", forced_suffix(forced))
            }
            PlanKind::IotFullScan { table, forced } => {
                format!("{pad}IOT FULL SCAN {table}{}", forced_suffix(forced))
            }
            PlanKind::IotRange { table, lo, hi } => {
                format!("{pad}IOT RANGE {table} lo={lo:?} hi={hi:?}")
            }
            PlanKind::BTreeAccess { table, index, lo, hi, forced } => {
                format!(
                    "{pad}BTREE ACCESS {table} VIA {index} lo={lo:?} hi={hi:?}{}",
                    forced_suffix(forced)
                )
            }
            PlanKind::RowIdEq { table, rid } => format!("{pad}ROWID FETCH {table} {rid}"),
            PlanKind::ConstRows { rows } => format!("{pad}CONSTANT ({} rows)", rows.len()),
            PlanKind::DomainScan { table, index, indextype, call, forced, .. } => format!(
                "{pad}DOMAIN INDEX SCAN {table} VIA {index} ({indextype}) OP {}({} args){}",
                call.operator,
                call.args.len(),
                forced_suffix(forced)
            ),
            PlanKind::Filter { terms, functional_ops, degraded, .. } => {
                let degraded_suffix = if degraded.is_empty() {
                    String::new()
                } else {
                    format!("  [DEGRADED: index quarantined: {}]", degraded.join(", "))
                };
                // Terms print in evaluation order, each tagged with its
                // cost class, so tests can pin the chosen ordering.
                let pred = terms
                    .iter()
                    .map(|t| format!("{}:{:?}", t.class, t.pred))
                    .collect::<Vec<_>>()
                    .join(" AND ");
                if functional_ops.is_empty() {
                    format!("{pad}FILTER {pred}{degraded_suffix}")
                } else {
                    format!(
                        "{pad}FILTER [FUNCTIONAL FALLBACK {}] {pred}{degraded_suffix}",
                        functional_ops.join(", ")
                    )
                }
            }
            PlanKind::Project { exprs, .. } => format!("{pad}PROJECT {} cols", exprs.len()),
            PlanKind::NestedLoopJoin { pred, .. } => {
                format!("{pad}NESTED LOOP JOIN pred={pred:?}")
            }
            PlanKind::DomainJoin { right_table, index, indextype, operator, .. } => format!(
                "{pad}DOMAIN JOIN {right_table} VIA {index} ({indextype}) OP {operator}"
            ),
            PlanKind::HashJoin { left_key, right_key, .. } => {
                format!("{pad}HASH JOIN {left_key:?} = {right_key:?}")
            }
            PlanKind::Sort { keys, .. } => format!("{pad}SORT {} keys", keys.len()),
            PlanKind::Limit { n, .. } => format!("{pad}LIMIT {n}"),
            PlanKind::Distinct { .. } => format!("{pad}DISTINCT"),
            PlanKind::Aggregate { group, aggs, .. } => {
                format!("{pad}AGGREGATE groups={} aggs={}", group.len(), aggs.len())
            }
        };
        // A cost of f64::MIN means the path was mandated (hint or SCORE
        // reference), not costed — print that instead of a 300-digit number.
        if self.est_cost == f64::MIN {
            out.push(format!("{line}  (rows={:.0} cost=forced)", self.est_rows));
        } else {
            out.push(format!("{line}  (rows={:.0} cost={:.1})", self.est_rows, self.est_cost));
        }
        match &self.kind {
            PlanKind::Filter { input, .. }
            | PlanKind::Project { input, .. }
            | PlanKind::Sort { input, .. }
            | PlanKind::Limit { input, .. }
            | PlanKind::Distinct { input }
            | PlanKind::Aggregate { input, .. } => input.explain_into(depth + 1, out),
            PlanKind::NestedLoopJoin { left, right, .. }
            | PlanKind::HashJoin { left, right, .. } => {
                left.explain_into(depth + 1, out);
                right.explain_into(depth + 1, out);
            }
            PlanKind::DomainJoin { left, .. } => left.explain_into(depth + 1, out),
            _ => {}
        }
    }

    /// The access-path names appearing in this plan, in pre-order — used
    /// by tests asserting which path the optimizer chose.
    pub fn access_paths(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_paths(&mut out);
        out
    }

    fn collect_paths(&self, out: &mut Vec<String>) {
        match &self.kind {
            PlanKind::FullScan { table, .. } => out.push(format!("FULL({table})")),
            PlanKind::IotFullScan { table, .. } => out.push(format!("IOTFULL({table})")),
            PlanKind::IotRange { table, .. } => out.push(format!("IOTRANGE({table})")),
            PlanKind::BTreeAccess { table, index, .. } => {
                out.push(format!("BTREE({table},{index})"))
            }
            PlanKind::RowIdEq { table, .. } => out.push(format!("ROWIDEQ({table})")),
            PlanKind::ConstRows { .. } => out.push("CONST".to_string()),
            PlanKind::DomainScan { table, index, .. } => {
                out.push(format!("DOMAIN({table},{index})"))
            }
            PlanKind::Filter { input, .. }
            | PlanKind::Project { input, .. }
            | PlanKind::Sort { input, .. }
            | PlanKind::Limit { input, .. }
            | PlanKind::Distinct { input }
            | PlanKind::Aggregate { input, .. } => input.collect_paths(out),
            PlanKind::NestedLoopJoin { left, right, .. }
            | PlanKind::HashJoin { left, right, .. } => {
                left.collect_paths(out);
                right.collect_paths(out);
            }
            PlanKind::DomainJoin { left, right_table, index, .. } => {
                left.collect_paths(out);
                out.push(format!("DOMAINJOIN({right_table},{index})"));
            }
        }
    }
}

/// A fully planned query: the root node plus output column names.
#[derive(Debug)]
pub struct PlannedQuery {
    pub root: PlanNode,
    pub column_names: Vec<String>,
}
