//! Optimizer tour — §2.4.2 made visible.
//!
//! Walks through the cost-based choices the paper describes: functional
//! evaluation vs domain-index scan, the `Contains(...) AND id = 100`
//! example where the B-tree wins, and how the decision flips as the
//! relational predicate's selectivity degrades.
//!
//! Run with: `cargo run --release --example optimizer_tour`

use extidx::sql::Database;
use extidx::text::CorpusGenerator;

fn show(db: &mut Database, title: &str, sql: &str) -> Result<(), Box<dyn std::error::Error>> {
    println!("\n── {title}");
    println!("   {sql}");
    for line in db.explain(sql)? {
        println!("   {line}");
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Database::with_cache_pages(16_384);
    extidx::text::install(&mut db)?;

    // A corpus big enough that plan choices matter.
    let mut gen = CorpusGenerator::new(1000, 1.0, 7);
    db.execute("CREATE TABLE employees (id INTEGER, grade INTEGER, resume VARCHAR2(2000))")?;
    for i in 0..3000i64 {
        let body = gen.document(50);
        db.execute_with(
            "INSERT INTO employees VALUES (?, ?, ?)",
            &[i.into(), (i % 10).into(), body.into()],
        )?;
    }

    show(&mut db, "no indexes: full scan + functional operator evaluation",
        "SELECT id FROM employees WHERE Contains(resume, 'term00005')")?;

    db.execute("CREATE INDEX resume_text ON employees(resume) INDEXTYPE IS TextIndexType")?;
    show(&mut db, "domain index exists: ODCIStats says the scan is cheaper",
        "SELECT id FROM employees WHERE Contains(resume, 'term00005')")?;

    db.execute("CREATE INDEX emp_id ON employees(id)")?;
    db.execute("ANALYZE TABLE employees")?;
    show(
        &mut db,
        "the paper's example: a highly selective id predicate wins; Contains \
         becomes a filter (functional implementation)",
        "SELECT id FROM employees WHERE Contains(resume, 'term00005') AND id = 100",
    )?;

    show(
        &mut db,
        "a weak id range flips the choice back to the domain index",
        "SELECT id FROM employees WHERE Contains(resume, 'term00800') AND id > 10",
    )?;

    show(
        &mut db,
        "common term (poor text selectivity) + selective id: B-tree again",
        "SELECT id FROM employees WHERE Contains(resume, 'term00000') AND id BETWEEN 100 AND 101",
    )?;

    println!("\nODCIStatsSelectivity / ODCIStatsIndexCost callbacks made these choices;");
    println!("enable db.trace() to watch them (see the e1-architecture harness).");
    Ok(())
}
