//! An interactive SQL shell over the engine with all four cartridges
//! installed — the "downstream user" experience.
//!
//! ```text
//! cargo run --release --example sql_shell
//! sql> CREATE TABLE docs (id INTEGER, body VARCHAR2(400));
//! sql> INSERT INTO docs VALUES (1, 'extensible indexing in oracle 8i');
//! sql> CREATE INDEX dt ON docs(body) INDEXTYPE IS TextIndexType;
//! sql> SELECT id FROM docs WHERE Contains(body, 'oracle AND indexing');
//! sql> EXPLAIN SELECT id FROM docs WHERE Contains(body, 'oracle');
//! sql> .trace on          -- watch the ODCI call flow
//! sql> .iostat            -- buffer-cache counters
//! sql> .quit
//! ```

use std::io::{BufRead, Write};

use extidx::sql::{Database, StmtResult};

fn print_rows(columns: &[String], rows: &[Vec<extidx_common::Value>]) {
    let mut widths: Vec<usize> = columns.iter().map(|c| c.len()).collect();
    let rendered: Vec<Vec<String>> =
        rows.iter().map(|r| r.iter().map(|v| v.to_string()).collect()).collect();
    for r in &rendered {
        for (i, c) in r.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(c.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", c, w = widths.get(i).copied().unwrap_or(8)));
        }
        println!("  {s}");
    };
    line(columns);
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for r in rendered {
        line(&r);
    }
    println!("  ({} rows)", rows.len());
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Database::new();
    extidx::text::install(&mut db)?;
    extidx::spatial::install(&mut db)?;
    extidx::vir::install(&mut db)?;
    extidx::chem::install(&mut db)?;
    println!("extidx shell — cartridges installed: TEXT, SPATIAL, VIR, CHEM");
    println!("meta commands: .trace on|off  .iostat  .tables  .quit\n");

    let stdin = std::io::stdin();
    let mut buffer = String::new();
    // Live-trace echo prints only events newer than this; the ring and
    // its aggregates are left intact so V$TRACE / V$ODCI_CALLS /
    // `db.trace_report()` keep answering for the whole session.
    let mut trace_seen: u64 = 0;
    let echo_trace = |db: &Database, seen: &mut u64| {
        let from = *seen;
        for e in db.trace().events().iter().filter(|e| e.seq >= from) {
            println!("  trace: {e}");
            *seen = e.seq + 1;
        }
    };
    loop {
        if buffer.is_empty() {
            print!("sql> ");
        } else {
            print!("  -> ");
        }
        std::io::stdout().flush()?;
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            break; // EOF
        }
        let trimmed = line.trim();
        if buffer.is_empty() {
            match trimmed {
                ".quit" | ".exit" | "quit" | "exit" => break,
                ".trace on" => {
                    db.trace().set_enabled(true);
                    trace_seen = db.trace().events().last().map_or(0, |e| e.seq + 1);
                    println!("ODCI trace enabled");
                    continue;
                }
                ".trace off" => {
                    echo_trace(&db, &mut trace_seen);
                    db.trace().set_enabled(false);
                    continue;
                }
                ".iostat" => {
                    let s = db.cache_stats();
                    println!(
                        "  logical reads {}  physical reads {}  physical writes {}",
                        s.logical_reads, s.physical_reads, s.physical_writes
                    );
                    continue;
                }
                ".tables" => {
                    for t in db.catalog().table_names() {
                        println!("  {t}");
                    }
                    continue;
                }
                "" => continue,
                _ => {}
            }
        }
        buffer.push_str(&line);
        // Statements end with `;` (or a meta command handled above).
        if !buffer.trim_end().ends_with(';') {
            continue;
        }
        let sql = std::mem::take(&mut buffer);
        let started = std::time::Instant::now();
        match db.execute(sql.trim().trim_end_matches(';')) {
            Ok(StmtResult::Rows { columns, rows }) => {
                print_rows(&columns, &rows);
                println!("  [{:?}]", started.elapsed());
            }
            Ok(StmtResult::Affected(n)) => println!("  {n} rows affected [{:?}]", started.elapsed()),
            Ok(StmtResult::Ok) => println!("  ok [{:?}]", started.elapsed()),
            Err(e) => println!("  ERROR: {e}"),
        }
        if db.trace().is_enabled() {
            echo_trace(&db, &mut trace_seen);
        }
    }
    println!("bye");
    Ok(())
}
