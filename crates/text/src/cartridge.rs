//! The ODCIIndex implementation for the text indextype.
//!
//! Index storage (§3.2.1): "The inverted index is stored in an
//! index-organized table, and is maintained by performing
//! insert/update/delete on the table whenever the table on which the text
//! index is defined is modified." The table is `DR$<index>$I (token, rid,
//! freq)` keyed on `(token, rid)`.
//!
//! Scan implementations (§2.2.3): `PARAMETERS (':ScanMode PRECOMPUTE')`
//! (default) materializes and *ranks* the whole result set in
//! `ODCIIndexStart` and returns a small Return-State context;
//! `':ScanMode INCREMENTAL'` computes candidate rows batch-by-batch inside
//! `ODCIIndexFetch`, holding its larger merge state in a Return-Handle
//! workspace context.

use std::collections::BTreeMap;

use extidx_common::{Error, Result, RowId, Value};
use extidx_core::build::{try_partition_map, DEFAULT_BUILD_BATCH_ROWS};
use extidx_core::meta::{IndexInfo, OperatorCall};
use extidx_core::params::ParamString;
use extidx_core::scan::{FetchResult, FetchedRow, ScanContext};
use extidx_core::server::{workspace_state, BaseRow, ServerContext};
use extidx_core::stats::{IndexCost, OdciStats};
use extidx_core::OdciIndex;

use crate::query::{parse_query, TextQuery};
use crate::tokenizer::{tokenize, StopWords};

/// The indextype implementation (the paper's `TextIndexMethods` object
/// type).
pub struct TextIndexMethods;

/// Name of the inverted-index storage table for an index.
pub fn index_table(info: &IndexInfo) -> String {
    info.storage_table_name("I")
}

/// Read a document value as text, dereferencing LOB locators through
/// server callbacks.
fn document_text(srv: &mut dyn ServerContext, v: &Value) -> Result<Option<String>> {
    Ok(match v {
        Value::Null => None,
        Value::Varchar(s) => Some(s.clone()),
        Value::Lob(l) => Some(String::from_utf8_lossy(&srv.lob_read_all(*l)?).into_owned()),
        other => {
            return Err(Error::type_mismatch("VARCHAR2 or LOB", other.type_name()));
        }
    })
}

/// Rows per multi-row `INSERT` issued through the server callback.
pub(crate) const INSERT_CHUNK: usize = 256;

/// Build the `VALUES (?, ?, ?), …` clause for an n-row posting insert.
fn postings_insert_sql(table: &str, nrows: usize) -> String {
    let mut sql = format!("INSERT INTO {table} VALUES ");
    for i in 0..nrows {
        if i > 0 {
            sql.push_str(", ");
        }
        sql.push_str("(?, ?, ?)");
    }
    sql
}

/// Insert posting entries in batches to cut server round trips (§2.5's
/// batch-interface point, applied to maintenance). The full-chunk SQL
/// string is built once and reused for every full chunk; only a trailing
/// partial chunk formats a second statement.
fn insert_postings(
    srv: &mut dyn ServerContext,
    table: &str,
    entries: &[(String, RowId, u32)],
) -> Result<()> {
    fn exec_chunk(
        srv: &mut dyn ServerContext,
        sql: &str,
        chunk: &[(String, RowId, u32)],
    ) -> Result<()> {
        let mut binds: Vec<Value> = Vec::with_capacity(chunk.len() * 3);
        for (token, rid, freq) in chunk {
            binds.push(Value::from(token.clone()));
            binds.push(Value::RowId(*rid));
            binds.push(Value::Integer(*freq as i64));
        }
        srv.execute(sql, &binds)?;
        Ok(())
    }
    // One statement string per distinct chunk size: the full-chunk SQL is
    // formatted once and reused; only a trailing partial chunk needs its
    // own (previously every chunk re-formatted the whole VALUES clause).
    let full = entries.chunks_exact(INSERT_CHUNK);
    let rest = full.remainder();
    if entries.len() >= INSERT_CHUNK {
        let sql = postings_insert_sql(table, INSERT_CHUNK);
        for chunk in full {
            exec_chunk(srv, &sql, chunk)?;
        }
    }
    if !rest.is_empty() {
        exec_chunk(srv, &postings_insert_sql(table, rest.len()), rest)?;
    }
    Ok(())
}

fn doc_entries(text: &str, rid: RowId, stop: &StopWords) -> Vec<(String, RowId, u32)> {
    tokenize(text, stop).into_iter().map(|(t, f)| (t, rid, f)).collect()
}

/// Load the posting list of every positive query term.
fn load_postings(
    srv: &mut dyn ServerContext,
    table: &str,
    q: &TextQuery,
) -> Result<BTreeMap<String, BTreeMap<RowId, u32>>> {
    let mut postings = BTreeMap::new();
    for term in q.terms() {
        if postings.contains_key(&term) {
            continue;
        }
        let rows = srv.query(
            &format!("SELECT rid, freq FROM {table} WHERE token = ?"),
            &[Value::from(term.clone())],
        )?;
        let mut list = BTreeMap::new();
        for r in rows {
            list.insert(r[0].as_rowid()?, r[1].as_integer()? as u32);
        }
        postings.insert(term, list);
    }
    Ok(postings)
}

/// Whether one rowid satisfies the query given the loaded postings.
fn rid_matches(q: &TextQuery, postings: &BTreeMap<String, BTreeMap<RowId, u32>>, rid: RowId) -> bool {
    match q {
        TextQuery::Term(t) => postings.get(t).is_some_and(|p| p.contains_key(&rid)),
        TextQuery::And(a, b) => rid_matches(a, postings, rid) && rid_matches(b, postings, rid),
        TextQuery::Or(a, b) => rid_matches(a, postings, rid) || rid_matches(b, postings, rid),
        TextQuery::Not(a) => !rid_matches(a, postings, rid),
    }
}

fn rid_score(
    terms: &[String],
    postings: &BTreeMap<String, BTreeMap<RowId, u32>>,
    rid: RowId,
) -> u32 {
    terms.iter().filter_map(|t| postings.get(t).and_then(|p| p.get(&rid))).sum()
}

/// Precompute-All scan state (Return State context): ranked result rows.
struct PrecomputedScan {
    /// `(rid, score)` sorted by descending score (ranking semantics).
    rows: Vec<(RowId, u32)>,
    pos: usize,
    wants_ancillary: bool,
}

/// Incremental scan state (kept in the statement workspace behind a
/// Return Handle): candidate rowids evaluated batch-by-batch.
struct IncrementalScan {
    query: TextQuery,
    /// Positive terms, cached once (scoring would otherwise re-derive
    /// them per candidate row).
    terms: Vec<String>,
    postings: BTreeMap<String, BTreeMap<RowId, u32>>,
    candidates: Vec<RowId>,
    pos: usize,
    wants_ancillary: bool,
}

impl TextIndexMethods {
    /// Stream the base table through [`OdciIndex::build_batch`] — the
    /// shared populate path for `create` and rebuild-on-`alter`. The whole
    /// table is never materialized; `PARALLEL <n>` in the parameters fans
    /// tokenization across worker threads.
    fn populate_from_base(&self, srv: &mut dyn ServerContext, info: &IndexInfo) -> Result<()> {
        let parallel = info.parameters.parallel_degree();
        srv.scan_base_batches(
            &info.table_name,
            &[&info.column_name],
            DEFAULT_BUILD_BATCH_ROWS,
            &mut |srv, batch| self.build_batch(srv, info, batch, parallel),
        )
    }
}

impl OdciIndex for TextIndexMethods {
    fn create(&self, srv: &mut dyn ServerContext, info: &IndexInfo) -> Result<()> {
        let table = index_table(info);
        srv.execute(
            &format!(
                "CREATE TABLE {table} (token VARCHAR2(128), rid ROWID, freq INTEGER, \
                 PRIMARY KEY (token, rid)) ORGANIZATION INDEX"
            ),
            &[],
        )?;
        // Populate from existing base rows, one batch at a time.
        self.populate_from_base(srv, info)
    }

    fn alter(&self, srv: &mut dyn ServerContext, info: &IndexInfo, _delta: &ParamString) -> Result<()> {
        // Parameters affecting the lexical analysis (e.g. a changed stop
        // list) require a rebuild: truncate and repopulate under the
        // merged parameters `info` already carries.
        self.truncate(srv, info)?;
        self.populate_from_base(srv, info)
    }

    fn build_batch(
        &self,
        srv: &mut dyn ServerContext,
        info: &IndexInfo,
        batch: &[BaseRow],
        parallel: usize,
    ) -> Result<()> {
        let stop = StopWords::from_params(&info.parameters);
        // LOB dereferencing is a server callback, so document text is
        // resolved on the coordinating thread…
        let mut docs: Vec<(RowId, String)> = Vec::with_capacity(batch.len());
        for row in batch {
            if let Some(text) = document_text(srv, row.value())? {
                docs.push((row.rid, text));
            }
        }
        // …and tokenization — the CPU-heavy part — fans out across workers.
        let per_doc = try_partition_map(&docs, parallel, |(rid, text)| {
            Ok::<_, Error>(doc_entries(text, *rid, &stop))
        })?;
        let entries: Vec<(String, RowId, u32)> = per_doc.into_iter().flatten().collect();
        insert_postings(srv, &index_table(info), &entries)
    }

    fn truncate(&self, srv: &mut dyn ServerContext, info: &IndexInfo) -> Result<()> {
        srv.execute(&format!("TRUNCATE TABLE {}", index_table(info)), &[])?;
        Ok(())
    }

    fn drop_index(&self, srv: &mut dyn ServerContext, info: &IndexInfo) -> Result<()> {
        srv.execute(&format!("DROP TABLE {}", index_table(info)), &[])?;
        Ok(())
    }

    fn insert(
        &self,
        srv: &mut dyn ServerContext,
        info: &IndexInfo,
        rid: RowId,
        new_value: &Value,
    ) -> Result<()> {
        if let Some(text) = document_text(srv, new_value)? {
            let stop = StopWords::from_params(&info.parameters);
            let entries = doc_entries(&text, rid, &stop);
            insert_postings(srv, &index_table(info), &entries)?;
            // Postings are in the DR$ table at this point: a fault here
            // exercises rewind of a routine's completed partial effects.
            srv.fault_point("text.maintenance.indexed")?;
        }
        Ok(())
    }

    fn update(
        &self,
        srv: &mut dyn ServerContext,
        info: &IndexInfo,
        rid: RowId,
        old_value: &Value,
        new_value: &Value,
    ) -> Result<()> {
        // Paper §2.2.3: "ODCIIndexUpdate should delete the entries
        // corresponding to the old indexed column value… and insert the
        // new entries".
        self.delete(srv, info, rid, old_value)?;
        // Mid-update milestone: old postings gone, new ones not yet
        // written — the worst place to die.
        srv.fault_point("text.maintenance.reindex")?;
        self.insert(srv, info, rid, new_value)
    }

    fn delete(
        &self,
        srv: &mut dyn ServerContext,
        info: &IndexInfo,
        rid: RowId,
        old_value: &Value,
    ) -> Result<()> {
        if let Some(text) = document_text(srv, old_value)? {
            let stop = StopWords::from_params(&info.parameters);
            let table = index_table(info);
            for (token, _) in tokenize(&text, &stop) {
                srv.execute(
                    &format!("DELETE FROM {table} WHERE token = ? AND rid = ?"),
                    &[Value::from(token), Value::RowId(rid)],
                )?;
            }
            srv.fault_point("text.maintenance.unindexed")?;
        }
        Ok(())
    }

    fn start(
        &self,
        srv: &mut dyn ServerContext,
        info: &IndexInfo,
        op: &OperatorCall,
    ) -> Result<ScanContext> {
        let text_query = op
            .args
            .first()
            .ok_or_else(|| Error::odci(&info.indextype_name, "ODCIIndexStart", "missing query argument"))?
            .as_str()?;
        let q = parse_query(text_query)?;
        let incremental = info
            .parameters
            .first("ScanMode")
            .is_some_and(|m| m.eq_ignore_ascii_case("INCREMENTAL"));
        let table = index_table(info);
        let postings = load_postings(srv, &table, &q)?;
        if incremental {
            // Incremental Computation: defer boolean evaluation and
            // scoring to fetch time; keep (potentially large) merge state
            // in the statement workspace.
            let mut candidates: Vec<RowId> = Vec::new();
            for list in postings.values() {
                candidates.extend(list.keys().copied());
            }
            candidates.sort_unstable();
            candidates.dedup();
            let state = IncrementalScan {
                terms: q.terms(),
                query: q,
                postings,
                candidates,
                pos: 0,
                wants_ancillary: op.wants_ancillary,
            };
            let handle = srv.workspace_put(Box::new(state));
            Ok(ScanContext::Handle(handle))
        } else {
            // Precompute All: evaluate the boolean query and rank the
            // entire result by score before the first fetch.
            let result = q.evaluate_postings(&postings)?;
            let mut rows: Vec<(RowId, u32)> = result.into_iter().collect();
            rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            Ok(ScanContext::State(Box::new(PrecomputedScan {
                rows,
                pos: 0,
                wants_ancillary: op.wants_ancillary,
            })))
        }
    }

    fn fetch(
        &self,
        srv: &mut dyn ServerContext,
        info: &IndexInfo,
        ctx: &mut ScanContext,
        nrows: usize,
    ) -> Result<FetchResult> {
        match ctx {
            ScanContext::State(_) => {
                let st = ctx.state_mut::<PrecomputedScan>().ok_or_else(|| {
                    Error::odci(&info.indextype_name, "ODCIIndexFetch", "bad scan state")
                })?;
                let end = (st.pos + nrows).min(st.rows.len());
                let out: Vec<FetchedRow> = st.rows[st.pos..end]
                    .iter()
                    .map(|(rid, score)| {
                        if st.wants_ancillary {
                            FetchedRow::with_ancillary(*rid, Value::Number(*score as f64))
                        } else {
                            FetchedRow::plain(*rid)
                        }
                    })
                    .collect();
                st.pos = end;
                Ok(FetchResult { rows: out, done: st.pos >= st.rows.len() })
            }
            ScanContext::Handle(h) => {
                let handle = *h;
                let st = workspace_state::<IncrementalScan>(
                    srv,
                    handle,
                    &info.indextype_name,
                    "ODCIIndexFetch",
                )?;
                let mut out = Vec::with_capacity(nrows);
                while out.len() < nrows && st.pos < st.candidates.len() {
                    let rid = st.candidates[st.pos];
                    st.pos += 1;
                    if rid_matches(&st.query, &st.postings, rid) {
                        if st.wants_ancillary {
                            let score = rid_score(&st.terms, &st.postings, rid);
                            out.push(FetchedRow::with_ancillary(rid, Value::Number(score as f64)));
                        } else {
                            out.push(FetchedRow::plain(rid));
                        }
                    }
                }
                let done = st.pos >= st.candidates.len();
                Ok(FetchResult { rows: out, done })
            }
        }
    }

    fn close(&self, srv: &mut dyn ServerContext, _info: &IndexInfo, ctx: ScanContext) -> Result<()> {
        // Return-Handle state is released from the statement workspace;
        // Return-State contexts drop with the context itself.
        if let ScanContext::Handle(h) = ctx {
            srv.workspace_take(h);
        }
        Ok(())
    }
}

/// The ODCIStats implementation for the text indextype.
pub struct TextStats;

impl TextStats {
    fn query_selectivity(
        srv: &mut dyn ServerContext,
        table: &str,
        total_docs: f64,
        q: &TextQuery,
    ) -> Result<f64> {
        Ok(match q {
            TextQuery::Term(t) => {
                let rows = srv.query(
                    &format!("SELECT COUNT(*) FROM {table} WHERE token = ?"),
                    &[Value::from(t.clone())],
                )?;
                let len = rows[0][0].as_integer()? as f64;
                if total_docs == 0.0 {
                    0.0
                } else {
                    (len / total_docs).min(1.0)
                }
            }
            TextQuery::And(a, b) => {
                Self::query_selectivity(srv, table, total_docs, a)?
                    * Self::query_selectivity(srv, table, total_docs, b)?
            }
            TextQuery::Or(a, b) => (Self::query_selectivity(srv, table, total_docs, a)?
                + Self::query_selectivity(srv, table, total_docs, b)?)
            .min(1.0),
            TextQuery::Not(a) => 1.0 - Self::query_selectivity(srv, table, total_docs, a)?,
        })
    }
}

impl OdciStats for TextStats {
    fn collect(&self, _srv: &mut dyn ServerContext, _info: &IndexInfo) -> Result<()> {
        // Posting lengths are queried live at selectivity time; nothing to
        // precompute for this reproduction.
        Ok(())
    }

    fn selectivity(
        &self,
        srv: &mut dyn ServerContext,
        info: &IndexInfo,
        op: &OperatorCall,
    ) -> Result<f64> {
        let text_query = op.args.first().and_then(|v| v.as_str().ok()).unwrap_or("");
        let q = match parse_query(text_query) {
            Ok(q) => q,
            Err(_) => return Ok(0.01),
        };
        let total = srv.query(&format!("SELECT COUNT(*) FROM {}", info.table_name), &[])?;
        let total_docs = total[0][0].as_integer()? as f64;
        Self::query_selectivity(srv, &index_table(info), total_docs, &q)
    }

    fn index_cost(
        &self,
        srv: &mut dyn ServerContext,
        info: &IndexInfo,
        op: &OperatorCall,
        selectivity: f64,
    ) -> Result<IndexCost> {
        // Cost ≈ one probe per query term plus the posting pages read.
        let text_query = op.args.first().and_then(|v| v.as_str().ok()).unwrap_or("");
        let terms = parse_query(text_query).map(|q| q.terms().len()).unwrap_or(1) as f64;
        let total = srv.query(&format!("SELECT COUNT(*) FROM {}", index_table(info)), &[])?;
        let entries = total[0][0].as_integer()? as f64;
        // ~400 posting entries per 8 KiB leaf page.
        let posting_pages = (entries * selectivity / 400.0).max(1.0);
        Ok(IndexCost { io_cost: terms * 2.0 + posting_pages, cpu_cost: entries * selectivity * 0.0002 })
    }
}
