//! NULL agreement between the index path and the functional fallback.
//!
//! SQL three-valued logic demands that an operator atom with any NULL
//! operand — stored column value or literal argument — evaluates to
//! UNKNOWN, which a WHERE clause rejects. Both engine strategies must
//! agree: the domain-index scan never returns NULL-keyed rows (they are
//! not in the index), and the functional fallback short-circuits NULL
//! operands to NULL before calling the cartridge function. One test per
//! cartridge pins the contract across the forced INDEX, NO_INDEX, and
//! FULL paths.

use extidx::chem::MoleculeWorkload;
use extidx::spatial::{geometry_sql, Geometry, Mbr};
use extidx::sql::Database;
use extidx::vir::SignatureWorkload;
use extidx_common::Value;

fn rect(x0: f64, y0: f64, x1: f64, y1: f64) -> String {
    geometry_sql(&Geometry::Rect(Mbr { xmin: x0, ymin: y0, xmax: x1, ymax: y1 }))
}

/// One table covering all five domains. Row 1 has every domain column
/// populated; row 2 has them all NULL; row 3 is populated but disjoint
/// from the probes below.
fn null_db() -> Database {
    let mut db = Database::with_cache_pages(2048);
    extidx::text::install(&mut db).unwrap();
    extidx::spatial::install(&mut db).unwrap();
    extidx::vir::install(&mut db).unwrap();
    extidx::chem::install(&mut db).unwrap();
    db.execute(
        "CREATE TABLE t (id INTEGER, doc VARCHAR2(400), geom SDO_GEOMETRY, \
         img VIR_IMAGE, mol VARCHAR2(400), num NUMBER)",
    )
    .unwrap();

    let mut sigs = SignatureWorkload::new(7);
    let (s1, s3) = (sigs.random().serialize(), sigs.random().serialize());
    let mut mols = MoleculeWorkload::new(7);
    let frag = mols.molecule(3);
    let m1 = mols.molecule_containing(&frag, 4);
    db.execute(&format!(
        "INSERT INTO t VALUES (1, 'alpha beta', {}, VIR_IMAGE('{s1}'), '{m1}', 10.0)",
        rect(0.0, 0.0, 10.0, 10.0)
    ))
    .unwrap();
    db.execute("INSERT INTO t VALUES (2, NULL, NULL, NULL, NULL, NULL)").unwrap();
    db.execute(&format!(
        "INSERT INTO t VALUES (3, 'gamma delta', {}, VIR_IMAGE('{s3}'), 'C', 30.0)",
        rect(500.0, 500.0, 510.0, 510.0)
    ))
    .unwrap();

    db.execute("CREATE INDEX i_txt ON t(doc) INDEXTYPE IS TextIndexType").unwrap();
    db.execute("CREATE INDEX i_geo ON t(geom) INDEXTYPE IS SpatialIndexType").unwrap();
    db.execute("CREATE INDEX i_img ON t(img) INDEXTYPE IS VirIndexType").unwrap();
    db.execute("CREATE INDEX i_mol ON t(mol) INDEXTYPE IS ChemIndexType").unwrap();
    db.execute("CREATE INDEX i_num ON t(num)").unwrap();
    db
}

fn ids(rows: &[Vec<Value>]) -> Vec<i64> {
    let mut out: Vec<i64> = rows
        .iter()
        .map(|r| match &r[0] {
            Value::Integer(i) => *i,
            other => panic!("expected integer id, got {other:?}"),
        })
        .collect();
    out.sort_unstable();
    out
}

/// Run the predicate through the forced-index, NO_INDEX, and FULL paths
/// and require identical id sets everywhere, returning that set.
fn agree_all_paths(db: &mut Database, pred: &str, index: &str) -> Vec<i64> {
    let base = format!("SELECT id FROM t WHERE {pred}");
    let forced = db
        .query(&format!("SELECT /*+ INDEX(t {index}) */ id FROM t WHERE {pred}"))
        .unwrap_or_else(|e| panic!("forced {index} failed on `{pred}`: {e}"));
    let no_index = db.query(&format!("SELECT /*+ NO_INDEX(t) */ id FROM t WHERE {pred}")).unwrap();
    let full = db.query(&format!("SELECT /*+ FULL(t) */ id FROM t WHERE {pred}")).unwrap();
    let plain = db.query(&base).unwrap();
    let expected = ids(&forced);
    assert_eq!(ids(&no_index), expected, "NO_INDEX diverges on `{pred}`");
    assert_eq!(ids(&full), expected, "FULL diverges on `{pred}`");
    assert_eq!(ids(&plain), expected, "cost-chosen plan diverges on `{pred}`");
    expected
}

/// A NULL literal argument makes every path return nothing, and the
/// index is not forcible (the optimizer refuses rather than scans).
fn null_literal_all_paths_empty(db: &mut Database, pred: &str, index: &str) {
    for hint in ["NO_INDEX(t)", "FULL(t)"] {
        let rows = db.query(&format!("SELECT /*+ {hint} */ id FROM t WHERE {pred}")).unwrap();
        assert_eq!(ids(&rows), Vec::<i64>::new(), "[{hint}] must reject NULL literal `{pred}`");
    }
    let rows = db.query(&format!("SELECT id FROM t WHERE {pred}")).unwrap();
    assert_eq!(ids(&rows), Vec::<i64>::new(), "plan must reject NULL literal `{pred}`");
    let err = db
        .query(&format!("SELECT /*+ INDEX(t {index}) */ id FROM t WHERE {pred}"))
        .unwrap_err();
    assert!(err.to_string().contains("cannot force index"), "got: {err}");
}

#[test]
fn text_contains_null_agreement() {
    let mut db = null_db();
    // Row 2's doc is NULL: UNKNOWN, never returned — on any path.
    assert_eq!(agree_all_paths(&mut db, "Contains(doc, 'alpha')", "I_TXT"), vec![1]);
    null_literal_all_paths_empty(&mut db, "Contains(doc, NULL)", "I_TXT");
}

#[test]
fn spatial_relate_null_agreement() {
    let mut db = null_db();
    let w = rect(0.0, 0.0, 20.0, 20.0);
    let pred = format!("Sdo_Relate(geom, {w}, 'mask=ANYINTERACT')");
    assert_eq!(agree_all_paths(&mut db, &pred, "I_GEO"), vec![1]);
    null_literal_all_paths_empty(&mut db, "Sdo_Relate(geom, NULL, 'mask=ANYINTERACT')", "I_GEO");
}

#[test]
fn vir_similar_null_agreement() {
    let mut db = null_db();
    let mut sigs = SignatureWorkload::new(7);
    let s1 = sigs.random().serialize();
    // Distance to itself is 0.0 — row 1 matches; NULL img row 2 never.
    let pred = format!("VirSimilar(img, '{s1}', 'globalcolor=1.0', 5.0)");
    let got = agree_all_paths(&mut db, &pred, "I_IMG");
    assert!(got.contains(&1), "self-similar row must match: {got:?}");
    assert!(!got.contains(&2), "NULL img row must not match: {got:?}");
    null_literal_all_paths_empty(&mut db, "VirSimilar(img, NULL, 'globalcolor=1.0', 5.0)", "I_IMG");
}

#[test]
fn chem_operators_null_agreement() {
    let mut db = null_db();
    let mut mols = MoleculeWorkload::new(7);
    let frag = mols.molecule(3);
    let m1 = mols.molecule_containing(&frag, 4);
    let got = agree_all_paths(&mut db, &format!("MolContains(mol, '{frag}')"), "I_MOL");
    assert!(got.contains(&1), "containing molecule must match: {got:?}");
    assert!(!got.contains(&2), "NULL mol row must not match: {got:?}");
    null_literal_all_paths_empty(&mut db, "MolContains(mol, NULL)", "I_MOL");

    // Tanimoto of a molecule with itself is 1.0.
    let got = agree_all_paths(&mut db, &format!("MolSimilar(mol, '{m1}', 0.99)"), "I_MOL");
    assert!(got.contains(&1), "identical molecule must match: {got:?}");
    assert!(!got.contains(&2), "NULL mol row must not match: {got:?}");
}

#[test]
fn btree_skips_null_keys_on_every_path() {
    let mut db = null_db();
    // num: 10.0, NULL, 30.0 — a range covering everything must still
    // exclude the NULL row, whether answered by B-tree or scan.
    assert_eq!(agree_all_paths(&mut db, "num > 0.0", "I_NUM"), vec![1, 3]);
    assert_eq!(agree_all_paths(&mut db, "num <= 30.0", "I_NUM"), vec![1, 3]);
    // Maintenance transitions: NULL→value adds an index entry,
    // value→NULL removes it, DELETE of a NULL-keyed row is a no-op on
    // the index.
    db.execute("UPDATE t SET num = 20.0 WHERE id = 2").unwrap();
    assert_eq!(agree_all_paths(&mut db, "num > 0.0", "I_NUM"), vec![1, 2, 3]);
    db.execute("UPDATE t SET num = NULL WHERE id = 2").unwrap();
    assert_eq!(agree_all_paths(&mut db, "num > 0.0", "I_NUM"), vec![1, 3]);
    db.execute("DELETE FROM t WHERE id = 2").unwrap();
    assert_eq!(agree_all_paths(&mut db, "num > 0.0", "I_NUM"), vec![1, 3]);
}

#[test]
fn is_null_is_two_valued_and_or_rescues_unknown() {
    let mut db = null_db();
    let rows = db.query("SELECT id FROM t WHERE doc IS NULL").unwrap();
    assert_eq!(ids(&rows), vec![2]);
    let rows = db.query("SELECT id FROM t WHERE doc IS NOT NULL").unwrap();
    assert_eq!(ids(&rows), vec![1, 3]);

    // Kleene OR: UNKNOWN OR TRUE = TRUE. Row 2 has NULL doc (UNKNOWN
    // Contains) but its id matches — the row must appear on all paths.
    for hint in ["", "/*+ NO_INDEX(t) */ ", "/*+ FULL(t) */ "] {
        let rows = db
            .query(&format!(
                "SELECT {hint}id FROM t WHERE Contains(doc, 'alpha') OR id = 2"
            ))
            .unwrap();
        assert_eq!(ids(&rows), vec![1, 2], "hint={hint:?}");
    }
    // Kleene AND: UNKNOWN AND TRUE = UNKNOWN → rejected.
    let rows = db.query("SELECT id FROM t WHERE Contains(doc, 'alpha') AND id = 2").unwrap();
    assert_eq!(ids(&rows), Vec::<i64>::new());
}
