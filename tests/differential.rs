//! The differential query oracle (see crates/qgen).
//!
//! A seeded workload — DDL, DML, and domain-operator queries over heap
//! and index-organized tables with NULL-heavy columns — runs through
//! every reachable engine plan (cost-chosen, `/*+ FULL */`,
//! `/*+ NO_INDEX */`, and each forcible `/*+ INDEX(t idx) */`) plus a
//! brute-force mirror interpreter, demanding bag-equality and NoREC
//! `COUNT(*)` agreement at every query. A divergence is minimized by
//! delta debugging into a self-contained SQL repro script.
//!
//! `DIFF_SEED` selects the default run's seed (decimal or 0x-hex);
//! scripts/ci.sh threads it through and prints the failing seed plus the
//! minimized script on failure.

use extidx_qgen::{run_seed, ChaosOpts};

const DEFAULT_SEED: u64 = 0xD1FF;
const STATEMENTS: usize = 200;

fn seed_from_env() -> u64 {
    match std::env::var("DIFF_SEED") {
        Ok(s) => {
            let s = s.trim();
            let parsed = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => s.parse(),
            };
            parsed.unwrap_or_else(|_| panic!("DIFF_SEED must be a u64, got {s:?}"))
        }
        Err(_) => DEFAULT_SEED,
    }
}

/// The default gate: one 200-statement seeded run must be divergence-
/// free. On failure the panic message carries everything needed to
/// reproduce: the seed, the first divergence, and the minimized script.
#[test]
fn seeded_workload_has_no_divergence() {
    let seed = seed_from_env();
    if let Some(d) = run_seed(seed, STATEMENTS, ChaosOpts::default()) {
        panic!(
            "differential oracle found a divergence\n\
             seed {} (rerun with DIFF_SEED={}), statement {}, minimized to {} statements\n\
             {}\n--- minimized repro script ---\n{}",
            d.seed, d.seed, d.step, d.minimized, d.detail, d.script
        );
    }
}

/// The acceptance check for the oracle itself: with the chaos knob
/// dropping the final batch of every domain-index scan (the `done=true`
/// batch carries rows), the default seeded run must catch the planted
/// bug and shrink the repro to at most 10 statements.
#[test]
fn chaos_drop_last_batch_is_caught_and_minimized() {
    let d = run_seed(seed_from_env(), STATEMENTS, ChaosOpts::drop_last_batch())
        .expect("planted executor bug must be caught by the default seeded run");
    assert!(
        d.minimized <= 10,
        "repro should shrink to <= 10 statements, got {}:\n{}",
        d.minimized,
        d.script
    );
    assert!(d.script.contains("-- seed"), "script must be self-describing:\n{}", d.script);
}

/// Long multi-seed sweep, run by scripts/ci.sh via `--include-ignored`.
#[test]
#[ignore = "long sweep; run via scripts/ci.sh or --include-ignored"]
fn multi_seed_sweep_has_no_divergence() {
    for seed in 0..24u64 {
        if let Some(d) = run_seed(seed, STATEMENTS, ChaosOpts::default()) {
            panic!(
                "divergence at seed {} (rerun with DIFF_SEED={}), statement {}\n{}\n{}",
                d.seed, d.seed, d.step, d.detail, d.script
            );
        }
    }
}

/// Quarantine chaos: flip domain indexes between QUARANTINED and VALID
/// (via `ALTER INDEX … REBUILD`) mid-stream. Unlike the planted executor
/// bug, this must NOT produce a divergence — a quarantined index
/// degrades to the functional fallback, which answers identically, and a
/// rebuild replays the pending DML log (or rebuilds from the base table)
/// before the index serves scans again.
#[test]
#[ignore = "long sweep; run via scripts/ci.sh or --include-ignored"]
fn quarantine_chaos_sweep_has_no_divergence() {
    for seed in [seed_from_env(), 7, 23] {
        if let Some(d) = run_seed(seed, STATEMENTS, ChaosOpts::quarantine()) {
            panic!(
                "quarantine chaos must degrade silently, but seed {} diverged at statement {}\n{}\n{}",
                d.seed, d.step, d.detail, d.script
            );
        }
    }
}

/// The chaos bug must be visible from many starting points, not just the
/// default seed — every sweep seed has to catch it.
#[test]
#[ignore = "long sweep; run via scripts/ci.sh or --include-ignored"]
fn multi_seed_sweep_catches_planted_bug() {
    for seed in 0..8u64 {
        let d = run_seed(seed, STATEMENTS, ChaosOpts::drop_last_batch())
            .unwrap_or_else(|| panic!("seed {seed} missed the planted executor bug"));
        assert!(d.minimized <= 10, "seed {seed}: repro has {} statements", d.minimized);
    }
}
