//! MVCC visibility properties, checked across every scan shape.
//!
//! Two invariants, drawn from the snapshot-isolation contract:
//!
//! 1. a reader whose snapshot predates a concurrent commit never sees
//!    that commit's rows — not through a full scan, not through a
//!    zone-pruned batch scan, and not through a domain-index
//!    ODCIIndexFetch (the chemistry index keeps its fingerprint store in
//!    a shared LOB, so this exercises LOB version chains specifically);
//! 2. versions written by an aborted transaction are never visible to
//!    anyone, through any of those paths.
//!
//! The properties randomize row population, which rows the writer
//! touches, and the probe predicates. `PROPTEST_CASES` scales the case
//! count (default 32).

use extidx::common::Value;
use extidx::sql::{Server, Session};
use extidx_qgen::{fresh_db, ChaosOpts};
use proptest::prelude::*;

/// Molecules for the chem-indexed column: the first half match the
/// `MolContains(mol, 'CO')` probe (they contain a C–O bond), the rest
/// do not.
const MOLS: [&str; 6] = ["CCO", "COC", "OCC", "CCC", "CCN", "CCS"];

fn sorted_ids(rows: &[Vec<Value>]) -> Vec<i64> {
    let mut ids: Vec<i64> = rows
        .iter()
        .map(|r| match r[0] {
            Value::Integer(i) => i,
            ref v => panic!("expected integer id, got {v:?}"),
        })
        .collect();
    ids.sort_unstable();
    ids
}

/// The probe queries, each answering "which ids does this snapshot see"
/// through a different scan shape: chem domain index (forced), the
/// functional fallback over a full scan (forced), and a range predicate
/// the batch executor may zone-prune.
fn probes(lo: i64, hi: i64) -> [String; 3] {
    [
        "SELECT /*+ INDEX(MV MV_MOL) */ id FROM MV WHERE MolContains(mol, 'CO')".to_string(),
        "SELECT /*+ NO_INDEX */ id FROM MV WHERE MolContains(mol, 'CO')".to_string(),
        format!("SELECT id FROM MV WHERE num >= {lo} AND num <= {hi}"),
    ]
}

fn observe(sess: &mut Session, lo: i64, hi: i64) -> Vec<Vec<i64>> {
    probes(lo, hi)
        .iter()
        .map(|q| sorted_ids(&sess.query(q).expect("probe query must run")))
        .collect()
}

/// A server with `MV (id, mol, num)`, a chemistry domain index on `mol`,
/// and `n` seeded rows.
fn setup(n: usize, seed: u64) -> Server {
    let server = Server::new(fresh_db(ChaosOpts::default()));
    let mut s = server.session();
    s.execute("CREATE TABLE MV (id INTEGER, mol VARCHAR2(64), num INTEGER)").unwrap();
    s.execute("CREATE INDEX MV_MOL ON MV(mol) INDEXTYPE IS ChemIndexType").unwrap();
    for i in 0..n {
        let mol = MOLS[(seed as usize + i) % MOLS.len()];
        let num = ((seed >> 8) as i64 + i as i64 * 13) % 200;
        s.execute(&format!("INSERT INTO MV (id, mol, num) VALUES ({i}, '{mol}', {num})"))
            .unwrap();
    }
    server
}

proptest! {
    /// Property 1: everything a reader observes at the start of its
    /// transaction it observes unchanged after a concurrent transaction
    /// inserts, updates, deletes, and commits — then, once the reader
    /// ends, a fresh snapshot sees the writer's effects.
    #[test]
    fn reader_snapshot_is_repeatable_across_concurrent_commit(
        n in 8usize..24,
        seed in any::<u64>(),
    ) {
        let server = setup(n, seed);
        let lo = (seed % 100) as i64;
        let hi = lo + 60;
        let victim = (seed % n as u64) as i64;
        let other = ((seed >> 16) % n as u64) as i64;

        let mut reader = server.session();
        reader.execute("BEGIN").unwrap();
        let baseline = observe(&mut reader, lo, hi);

        let mut writer = server.session();
        writer.execute("BEGIN").unwrap();
        let fresh_id = n as i64 + 1;
        writer
            .execute(&format!(
                "INSERT INTO MV (id, mol, num) VALUES ({fresh_id}, 'CCO', {})",
                lo + 1
            ))
            .unwrap();
        writer
            .execute(&format!(
                "UPDATE MV SET mol = 'CCO', num = {} WHERE id = {victim}",
                lo + 2
            ))
            .unwrap();
        writer.execute(&format!("DELETE FROM MV WHERE id = {other}")).unwrap();

        // Mid-flight: the writer is uncommitted, the reader must still
        // see its baseline through every scan shape.
        prop_assert_eq!(&observe(&mut reader, lo, hi), &baseline);

        writer.execute("COMMIT").unwrap();

        // Committed, but after the reader's snapshot: still the baseline.
        let after_commit = observe(&mut reader, lo, hi);
        prop_assert_eq!(&after_commit, &baseline);
        for obs in &after_commit {
            prop_assert!(
                !obs.contains(&fresh_id),
                "snapshot reader leaked a post-snapshot insert: {:?}",
                obs
            );
        }
        reader.execute("COMMIT").unwrap();

        // A snapshot opened after the commit sees all three effects.
        let now = observe(&mut server.session(), lo, hi);
        prop_assert!(
            now[0].contains(&fresh_id) && now[1].contains(&fresh_id),
            "fresh snapshot must see the committed insert via index and fallback: {:?}",
            now
        );
        if victim != other {
            prop_assert!(
                now[0].contains(&victim),
                "committed UPDATE must register in the domain index: {:?}",
                now
            );
        }
        for obs in &now {
            prop_assert!(!obs.contains(&other), "committed DELETE must hide id {}", other);
        }
    }

    /// Property 2: an aborted transaction's versions are invisible to
    /// concurrent readers while it is active and to everyone after the
    /// rollback, through every scan shape.
    #[test]
    fn aborted_versions_are_never_visible(
        n in 8usize..24,
        seed in any::<u64>(),
    ) {
        let server = setup(n, seed);
        let lo = (seed % 100) as i64;
        let hi = lo + 60;
        let victim = (seed % n as u64) as i64;

        let baseline = observe(&mut server.session(), lo, hi);

        let mut writer = server.session();
        writer.execute("BEGIN").unwrap();
        let fresh_id = n as i64 + 1;
        writer
            .execute(&format!(
                "INSERT INTO MV (id, mol, num) VALUES ({fresh_id}, 'CCO', {})",
                lo + 1
            ))
            .unwrap();
        writer
            .execute(&format!(
                "UPDATE MV SET mol = 'CCO', num = {} WHERE id = {victim}",
                lo + 2
            ))
            .unwrap();

        // Uncommitted writes leak to nobody.
        prop_assert_eq!(&observe(&mut server.session(), lo, hi), &baseline);

        writer.execute("ROLLBACK").unwrap();

        // Rolled back: the world is exactly the baseline again.
        prop_assert_eq!(&observe(&mut server.session(), lo, hi), &baseline);
        let mut late = server.session();
        late.execute("BEGIN").unwrap();
        prop_assert_eq!(&observe(&mut late, lo, hi), &baseline);
        late.execute("COMMIT").unwrap();
    }
}
