//! E3 (§3.2.2): the one-operator Sdo_Relate overlap join vs the pre-8i
//! hand-written tile join — the claim is performance parity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use extidx_bench::spatial_fixture;
use extidx_spatial::{legacy, Mask};

fn bench_spatial_relate(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_spatial_relate");
    group.sample_size(10);
    for n in [100usize, 300] {
        let mut fx = spatial_fixture(n, 9).expect("fixture");
        let sql = "SELECT r.gid, p.gid FROM roads r, parks p \
                   WHERE Sdo_Relate(r.geometry, p.geometry, 'mask=OVERLAPS')";
        group.bench_with_input(BenchmarkId::new("modern_operator", n), &n, |b, _| {
            b.iter(|| fx.db.query(sql).expect("modern join"))
        });
        group.bench_with_input(BenchmarkId::new("legacy_tile_join", n), &n, |b, _| {
            b.iter(|| {
                legacy::legacy_relate_join(
                    &mut fx.db, "roads", "gid", "roads_sidx", "parks", "gid", "parks_sidx",
                    Mask::Overlaps,
                )
                .expect("legacy join")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spatial_relate);
criterion_main!(benches);
