//! The pre-Oracle8i spatial query formulation — the §3.2.2 baseline.
//!
//! "Prior to Oracle8i, the above query had to be formulated as follows by
//! the end user: SELECT DISTINCT r.gid, p.gid FROM roads_sdoindex r,
//! parks_sdoindex p WHERE (r.grpcode = p.grpcode) AND (…) AND
//! (sdo_geom.Relate(r.gid, p.gid, 'OVERLAPS') = 'TRUE')" — the user joins
//! the *exposed index tables* on tile codes and applies the exact
//! predicate manually. "The drawback … is that the querying algorithm
//! which may be proprietary has to be exposed to the user."
//!
//! [`legacy_relate_join`] reproduces that formulation against the same
//! `DR$…$T`/`DR$…$G` tables the modern cartridge maintains: a SQL tile
//! join for the primary filter, then a hand-rolled exact filter.

use std::collections::BTreeSet;

use extidx_common::{Result, RowId, Value};
use extidx_sql::Database;

use crate::geometry::{Geometry, Mask};

/// The pre-8i join of two spatial layers: returns `(gid_a, gid_b)` pairs
/// whose geometries satisfy `mask`. `gid_col_*` name the id columns of
/// the base tables; `index_*` name the domain indexes whose storage
/// tables the legacy query reads directly.
#[allow(clippy::too_many_arguments)]
pub fn legacy_relate_join(
    db: &mut Database,
    table_a: &str,
    gid_col_a: &str,
    index_a: &str,
    table_b: &str,
    gid_col_b: &str,
    index_b: &str,
    mask: Mask,
) -> Result<Vec<(Value, Value)>> {
    let ta = format!("DR${}$T", index_a.to_ascii_uppercase());
    let tb = format!("DR${}$T", index_b.to_ascii_uppercase());
    let ga = format!("DR${}$G", index_a.to_ascii_uppercase());
    let gb = format!("DR${}$G", index_b.to_ascii_uppercase());

    // Primary filter, exposed to the "user" as a plain SQL join on tile
    // codes (the r.grpcode = p.grpcode part of the paper's query).
    let pairs = db.query(&format!(
        "SELECT DISTINCT a.rid, b.rid FROM {ta} a, {tb} b WHERE a.tile = b.tile"
    ))?;

    // Exact filter, applied pair by pair — the sdo_geom.Relate(...) part.
    let mut results = Vec::new();
    let mut seen: BTreeSet<(RowId, RowId)> = BTreeSet::new();
    for p in pairs {
        let (ra, rb) = (p[0].as_rowid()?, p[1].as_rowid()?);
        if !seen.insert((ra, rb)) {
            continue;
        }
        let geom_a = db.query_with(&format!("SELECT geom FROM {ga} WHERE rid = ?"), &[Value::RowId(ra)])?;
        let geom_b = db.query_with(&format!("SELECT geom FROM {gb} WHERE rid = ?"), &[Value::RowId(rb)])?;
        let (Some(a_row), Some(b_row)) = (geom_a.first(), geom_b.first()) else { continue };
        let a = Geometry::deserialize(a_row[0].as_str()?)?;
        let b = Geometry::deserialize(b_row[0].as_str()?)?;
        if a.relate(&b, mask) {
            // Map rowids back to user-visible ids through the base tables.
            let gid_a = db.query_with(
                &format!("SELECT {gid_col_a} FROM {table_a} WHERE ROWID = ?"),
                &[Value::RowId(ra)],
            )?;
            let gid_b = db.query_with(
                &format!("SELECT {gid_col_b} FROM {table_b} WHERE ROWID = ?"),
                &[Value::RowId(rb)],
            )?;
            if let (Some(x), Some(y)) = (gid_a.first(), gid_b.first()) {
                results.push((x[0].clone(), y[0].clone()));
            }
        }
    }
    Ok(results)
}
