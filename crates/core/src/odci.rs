//! The ODCIIndex interface — the heart of the framework.
//!
//! The paper (§2.2.3): "Define a type or package that implements the index
//! interface, ODCIIndex. These methods handle the definition, maintenance
//! and scan of the domain indexes." [`OdciIndex`] is that interface. A
//! cartridge implements it once per indexing scheme; the host engine
//! invokes it implicitly:
//!
//! - `CREATE INDEX … INDEXTYPE IS …` → [`OdciIndex::create`]
//! - `ALTER INDEX … PARAMETERS (…)` → [`OdciIndex::alter`]
//! - `TRUNCATE TABLE` of the base table → [`OdciIndex::truncate`]
//! - `DROP INDEX` → [`OdciIndex::drop_index`]
//! - base-table `INSERT`/`UPDATE`/`DELETE` → the maintenance trio
//! - an indexable operator predicate chosen by the optimizer →
//!   [`OdciIndex::start`] / [`OdciIndex::fetch`] / [`OdciIndex::close`]
//!
//! Implementations are stateless (Oracle's were STATIC member functions):
//! all per-index state lives in index storage tables reached via
//! [`ServerContext`] callbacks, and all per-scan state lives in the
//! [`ScanContext`].

use extidx_common::{Result, RowId, Value};

use crate::meta::{IndexInfo, OperatorCall};
use crate::params::ParamString;
use crate::scan::{FetchResult, ScanContext};
use crate::server::{BaseRow, ServerContext};

/// The index implementation interface a cartridge supplies.
///
/// Routine-naming follows the paper (`ODCIIndexCreate` → `create`, …).
/// Every routine receives the index metadata ([`IndexInfo`]) and a
/// [`ServerContext`] whose [`CallbackMode`](crate::server::CallbackMode)
/// matches the routine class, so the engine can enforce the §2.5 callback
/// restrictions.
pub trait OdciIndex: Send + Sync {
    // ---- definition routines (Definition mode) ---------------------------

    /// `ODCIIndexCreate`: build the index storage (typically `CREATE
    /// TABLE`s via callbacks) and populate it from the base table if it
    /// already has rows.
    fn create(&self, srv: &mut dyn ServerContext, info: &IndexInfo) -> Result<()>;

    /// `ODCIIndexAlter`: react to `ALTER INDEX … PARAMETERS`. `info`
    /// carries the *merged* parameters; `delta` is the newly supplied
    /// string alone.
    fn alter(&self, srv: &mut dyn ServerContext, info: &IndexInfo, delta: &ParamString) -> Result<()>;

    /// `ODCIIndexTruncate`: clear index data (invoked when the base table
    /// is truncated — the paper notes there is no explicit statement for
    /// truncating a domain index).
    fn truncate(&self, srv: &mut dyn ServerContext, info: &IndexInfo) -> Result<()>;

    /// `ODCIIndexDrop`: tear down index storage.
    fn drop_index(&self, srv: &mut dyn ServerContext, info: &IndexInfo) -> Result<()>;

    /// External files backing this index, if any (empty for indexes whose
    /// data lives in database objects). The engine uses this for two
    /// recovery duties the cartridge cannot perform itself: force-removing
    /// orphaned files when a faulted `ODCIIndexDrop` is bypassed, and
    /// quarantining the index after a crash whose uncommitted tail touched
    /// one of these files.
    fn external_files(&self, info: &IndexInfo) -> Vec<String> {
        let _ = info;
        Vec::new()
    }

    /// Bulk-build path: index one batch of base-table rows (each carrying
    /// the indexed value in `values[0]`), with a hint of how many worker
    /// threads the build may use for CPU-side work. Called by streaming
    /// builds (`create`/`alter` driving
    /// [`ServerContext::scan_base_batches`]).
    ///
    /// The default implementation keeps third-party cartridges working:
    /// it loops over [`OdciIndex::insert`] serially. Cartridges override
    /// it to fan the per-row CPU work across threads via
    /// [`crate::build::partition_map`] — server callbacks must stay on
    /// the calling thread either way.
    fn build_batch(
        &self,
        srv: &mut dyn ServerContext,
        info: &IndexInfo,
        batch: &[BaseRow],
        _parallel: usize,
    ) -> Result<()> {
        for row in batch {
            self.insert(srv, info, row.rid, row.value())?;
        }
        Ok(())
    }

    // ---- maintenance routines (Maintenance mode) --------------------------

    /// `ODCIIndexInsert`: a base-table row gained the indexed value
    /// `new_value` at `rid`.
    fn insert(
        &self,
        srv: &mut dyn ServerContext,
        info: &IndexInfo,
        rid: RowId,
        new_value: &Value,
    ) -> Result<()>;

    /// `ODCIIndexUpdate`: the indexed column at `rid` changed from
    /// `old_value` to `new_value`. The paper's guidance: delete the old
    /// entries, insert the new ones.
    fn update(
        &self,
        srv: &mut dyn ServerContext,
        info: &IndexInfo,
        rid: RowId,
        old_value: &Value,
        new_value: &Value,
    ) -> Result<()>;

    /// `ODCIIndexDelete`: the row at `rid` (indexed value `old_value`)
    /// was deleted.
    fn delete(
        &self,
        srv: &mut dyn ServerContext,
        info: &IndexInfo,
        rid: RowId,
        old_value: &Value,
    ) -> Result<()>;

    // ---- scan routines (Scan mode) ------------------------------------------

    /// `ODCIIndexStart`: begin evaluating `op` with this index. Returns
    /// the scan context threaded through fetch/close. Implementations
    /// choose Precompute-All (materialize results here) or Incremental
    /// (compute during fetch) — §2.2.3 describes both.
    fn start(
        &self,
        srv: &mut dyn ServerContext,
        info: &IndexInfo,
        op: &OperatorCall,
    ) -> Result<ScanContext>;

    /// `ODCIIndexFetch`: produce up to `nrows` more rowids satisfying the
    /// predicate (batch interface, §2.5). `done` in the result is the
    /// paper's null-rowid end-of-scan marker.
    fn fetch(
        &self,
        srv: &mut dyn ServerContext,
        info: &IndexInfo,
        ctx: &mut ScanContext,
        nrows: usize,
    ) -> Result<FetchResult>;

    /// `ODCIIndexClose`: release scan resources.
    fn close(&self, srv: &mut dyn ServerContext, info: &IndexInfo, ctx: ScanContext) -> Result<()>;
}

/// Drain an entire scan through the batch interface — convenience for
/// callers (and tests) that want all rowids at once. Honors `batch_size`
/// per fetch call, mirroring how the engine's executor drives scans.
pub fn drain_scan(
    index: &dyn OdciIndex,
    srv: &mut dyn ServerContext,
    info: &IndexInfo,
    op: &OperatorCall,
    batch_size: usize,
) -> Result<Vec<crate::scan::FetchedRow>> {
    let mut ctx = index.start(srv, info, op)?;
    let mut out = Vec::new();
    loop {
        let batch = index.fetch(srv, info, &mut ctx, batch_size)?;
        out.extend(batch.rows);
        if batch.done {
            break;
        }
    }
    index.close(srv, info, ctx)?;
    Ok(out)
}
