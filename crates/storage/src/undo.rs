//! Row-level undo for transaction rollback.
//!
//! Every mutating operation on *database-resident* storage (heap rows, IOT
//! rows, LOB bytes) appends a compensating record to the active
//! [`UndoLog`]. Rolling back applies the records in reverse. Because
//! domain-index data stored in tables/IOTs/LOBs flows through the same
//! paths, the paper's claim falls out structurally (§2.5: "The
//! transactional semantics are also automatically ensured for the user
//! index data, if the index data resides within the database") — and the
//! *absence* of any `FileStore` variant here is the §5 limitation.

use extidx_common::{Key, LobRef, Row, RowId};

use crate::page::SegmentId;

/// One compensating action.
#[derive(Debug, Clone)]
pub enum UndoOp {
    /// A row was inserted into a heap; undo deletes it.
    HeapInsert { seg: SegmentId, rid: RowId },
    /// A heap row was deleted; undo re-inserts the old image at its slot.
    HeapDelete { seg: SegmentId, rid: RowId, old: Row },
    /// A heap row was updated; undo restores the old image.
    HeapUpdate { seg: SegmentId, rid: RowId, old: Row },
    /// An IOT row was inserted (no previous row); undo deletes the key.
    IotInsert { seg: SegmentId, key: Key },
    /// An IOT row was replaced; undo restores the old row.
    IotReplace { seg: SegmentId, old: Row },
    /// An IOT row was deleted; undo re-inserts the old row under its
    /// original logical-rowid ordinal.
    IotDelete { seg: SegmentId, old: Row, ord: u64 },
    /// A LOB was allocated; undo frees it.
    LobAllocate { lob: LobRef },
    /// A LOB's bytes changed; undo restores the full prior image. Used by
    /// whole-LOB operations (overwrite) — byte-range writes/appends use
    /// [`UndoOp::LobSpan`] so concurrent transactions writing disjoint
    /// ranges of one LOB roll back independently.
    LobModify { lob: LobRef, old: Vec<u8> },
    /// A byte range `[start, start+len)` of a LOB was written or appended;
    /// undo restores `old` (the before-image clipped to the pre-write LOB
    /// length) in place and truncates/hole-fills the part the write
    /// extended. Offset-stable: rollback never shifts other writers' bytes.
    LobSpan { lob: LobRef, start: u64, len: u64, old: Vec<u8> },
    /// A LOB was freed; undo restores it.
    LobFree { lob: LobRef, old: Vec<u8> },
}

/// An ordered log of compensating actions for one transaction.
#[derive(Debug, Default)]
pub struct UndoLog {
    ops: Vec<UndoOp>,
}

impl UndoLog {
    /// Fresh, empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a compensating action.
    pub fn push(&mut self, op: UndoOp) {
        self.ops.push(op);
    }

    /// Number of recorded actions.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Drain the actions in reverse (rollback) order.
    pub fn drain_reverse(&mut self) -> Vec<UndoOp> {
        let mut ops = std::mem::take(&mut self.ops);
        ops.reverse();
        ops
    }

    /// Discard everything (commit).
    pub fn clear(&mut self) {
        self.ops.clear();
    }

    /// Append another log's actions after this one's (a completed
    /// statement's undo folding into its enclosing transaction).
    pub fn absorb(&mut self, mut other: UndoLog) {
        self.ops.append(&mut other.ops);
    }

    /// Split off every action recorded at or after `mark` (a prior
    /// [`len`](Self::len) observation) into its own log, leaving this one
    /// at `mark` actions. The retry path uses this to rewind just the
    /// partial effects of one failed cartridge call.
    pub fn split_off(&mut self, mark: usize) -> UndoLog {
        UndoLog { ops: self.ops.split_off(mark.min(self.ops.len())) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use extidx_common::Value;

    #[test]
    fn drain_reverses_order() {
        let mut log = UndoLog::new();
        log.push(UndoOp::HeapInsert { seg: SegmentId(1), rid: RowId::new(1, 0, 0) });
        log.push(UndoOp::HeapInsert { seg: SegmentId(1), rid: RowId::new(1, 0, 1) });
        let ops = log.drain_reverse();
        assert_eq!(ops.len(), 2);
        match &ops[0] {
            UndoOp::HeapInsert { rid, .. } => assert_eq!(rid.slot, 1),
            other => panic!("unexpected {other:?}"),
        }
        assert!(log.is_empty());
    }

    #[test]
    fn clear_discards() {
        let mut log = UndoLog::new();
        log.push(UndoOp::IotDelete { seg: SegmentId(2), old: vec![Value::Integer(1)], ord: 0 });
        assert_eq!(log.len(), 1);
        log.clear();
        assert!(log.is_empty());
    }

    #[test]
    fn split_off_partitions_at_mark() {
        let mut log = UndoLog::new();
        log.push(UndoOp::HeapInsert { seg: SegmentId(1), rid: RowId::new(1, 0, 0) });
        let mark = log.len();
        log.push(UndoOp::HeapInsert { seg: SegmentId(1), rid: RowId::new(1, 0, 1) });
        log.push(UndoOp::HeapInsert { seg: SegmentId(1), rid: RowId::new(1, 0, 2) });
        let tail = log.split_off(mark);
        assert_eq!(log.len(), 1);
        assert_eq!(tail.len(), 2);
        // Out-of-range marks are clamped, not panicking.
        let mut empty_tail = log.split_off(99);
        assert!(empty_tail.is_empty());
        assert_eq!(empty_tail.drain_reverse().len(), 0);
    }
}
