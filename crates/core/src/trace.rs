//! Invocation tracing — Figure 1 made observable.
//!
//! The paper's Figure 1 shows the call flow: client SQL arrives, the
//! indexing component calls the registered ODCIIndexStart/Fetch/Close
//! routines, the optimizer calls ODCIStatsIndexCost/Selectivity, DML
//! drives the maintenance routines. [`CallTrace`] records exactly those
//! crossings of the server↔cartridge boundary so the E1 experiment (and
//! any debugging session) can print the architecture diagram as a live
//! event log.
//!
//! Events live in a *bounded ring*: once `capacity` events are held the
//! oldest are dropped and counted in [`CallTrace::dropped`], so long qgen
//! sweeps cannot grow memory without limit. Per-(indextype, routine)
//! aggregates — call counts and total elapsed time — are kept separately
//! and are *not* subject to ring eviction; they back the `V$ODCI_CALLS`
//! virtual table and the tkprof-style session report.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

/// Default ring capacity (events retained before the oldest are dropped).
pub const DEFAULT_TRACE_CAPACITY: usize = 8192;

/// Which server component invoked the cartridge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Component {
    /// DDL processing (CREATE/ALTER/TRUNCATE/DROP INDEX).
    Ddl,
    /// Implicit index maintenance during DML.
    Dml,
    /// The index-access component driving scans.
    IndexAccess,
    /// The cost-based optimizer.
    Optimizer,
    /// Compensation replay after a failed statement — inverse maintenance
    /// operations restoring domain indexes to pre-statement state.
    Recovery,
    /// The fault-injection harness firing at a crossing.
    Fault,
    /// Index-health state machine transitions (VALID / SUSPECT /
    /// QUARANTINED / BUILD_FAILED) recorded by the circuit breaker.
    Health,
    /// Transaction-layer events: write-write conflicts (first-writer-wins
    /// aborts naming the winning transaction and the contended key).
    Txn,
}

impl std::fmt::Display for Component {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Component::Ddl => "DDL",
            Component::Dml => "DML",
            Component::IndexAccess => "INDEX-ACCESS",
            Component::Optimizer => "OPTIMIZER",
            Component::Recovery => "RECOVERY",
            Component::Fault => "FAULT",
            Component::Health => "HEALTH",
            Component::Txn => "TXN",
        };
        write!(f, "{s}")
    }
}

/// One server→cartridge invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotonic sequence number (survives ring eviction — gaps at the
    /// front of [`CallTrace::events`] mean events were dropped).
    pub seq: u64,
    /// Which server component made the call.
    pub component: Component,
    /// The ODCI routine name (e.g. `ODCIIndexFetch`).
    pub routine: &'static str,
    /// Which indextype was invoked.
    pub indextype: String,
    /// Human-readable argument summary.
    pub detail: String,
    /// Wall time spent inside the cartridge routine, in microseconds.
    /// Zero until the crossing completes (or for crossings that are not
    /// timed, e.g. fault-harness events).
    pub elapsed_micros: u64,
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {} -> {}.{}", self.component, self.detail, self.indextype, self.routine)
    }
}

/// Aggregate counters for one (indextype, routine) pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoutineStats {
    /// Number of crossings recorded.
    pub calls: u64,
    /// Total wall time spent inside the routine, microseconds.
    pub total_micros: u64,
}

#[derive(Default)]
struct TraceInner {
    enabled: bool,
    events: std::collections::VecDeque<TraceEvent>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
    /// (indextype, routine) → aggregate. Not subject to ring eviction.
    aggregates: BTreeMap<(String, &'static str), RoutineStats>,
}

/// A shared, toggleable trace. Cloning shares the underlying buffer, so
/// the engine and a test/bench harness can watch the same stream.
#[derive(Clone)]
pub struct CallTrace {
    inner: Arc<Mutex<TraceInner>>,
}

impl Default for CallTrace {
    fn default() -> Self {
        CallTrace {
            inner: Arc::new(Mutex::new(TraceInner {
                capacity: DEFAULT_TRACE_CAPACITY,
                ..TraceInner::default()
            })),
        }
    }
}

/// Handle returned by [`CallTrace::record`]; pass it to
/// [`CallTrace::finish`] once the crossing returns to stamp the event's
/// elapsed time and fold it into the per-routine aggregates.
///
/// The started-at instant lives in the handle (not the shared buffer), so
/// nested crossings — a cartridge calling back into the server mid-routine
/// — time correctly without any stack bookkeeping.
#[derive(Debug, Clone, Copy)]
pub struct CrossingHandle {
    seq: u64,
    started: Instant,
}

impl CallTrace {
    /// A new, disabled trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enable or disable recording.
    pub fn set_enabled(&self, on: bool) {
        self.inner.lock().enabled = on;
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.inner.lock().enabled
    }

    /// Change the ring capacity. Excess oldest events are dropped (and
    /// counted) immediately.
    pub fn set_capacity(&self, capacity: usize) {
        let mut g = self.inner.lock();
        g.capacity = capacity.max(1);
        while g.events.len() > g.capacity {
            g.events.pop_front();
            g.dropped += 1;
        }
    }

    /// Events evicted from the ring since the last [`CallTrace::clear`].
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// Record a crossing (no-op while disabled, but the returned handle is
    /// still valid to pass to [`CallTrace::finish`]). The event enters the
    /// stream *before* the cartridge routine runs, so events a routine
    /// generates by calling back into the server appear after it.
    pub fn record(
        &self,
        component: Component,
        routine: &'static str,
        indextype: &str,
        detail: impl Into<String>,
    ) -> CrossingHandle {
        let started = Instant::now();
        let mut g = self.inner.lock();
        // A disabled trace hands back a handle that can never match a
        // recorded event, so a later `finish` stays a no-op.
        let mut seq = u64::MAX;
        if g.enabled {
            seq = g.next_seq;
            g.next_seq += 1;
            let agg = g.aggregates.entry((indextype.to_string(), routine)).or_default();
            agg.calls += 1;
            g.events.push_back(TraceEvent {
                seq,
                component,
                routine,
                indextype: indextype.to_string(),
                detail: detail.into(),
                elapsed_micros: 0,
            });
            if g.events.len() > g.capacity {
                g.events.pop_front();
                g.dropped += 1;
            }
        }
        CrossingHandle { seq, started }
    }

    /// Stamp the elapsed time for a crossing recorded by
    /// [`CallTrace::record`], updating both the ring event (if still
    /// resident) and the per-routine aggregates.
    pub fn finish(&self, handle: CrossingHandle) {
        let elapsed = handle.started.elapsed().as_micros() as u64;
        let mut g = self.inner.lock();
        if !g.enabled {
            return;
        }
        // Events are seq-ordered; search from the back since the crossing
        // we are finishing is normally the most recent few.
        if let Some(ev) = g.events.iter_mut().rev().find(|e| e.seq == handle.seq) {
            ev.elapsed_micros = elapsed;
            let key = (ev.indextype.clone(), ev.routine);
            if let Some(agg) = g.aggregates.get_mut(&key) {
                agg.total_micros += elapsed;
            }
        }
    }

    /// Snapshot the recorded events (oldest retained first).
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.lock().events.iter().cloned().collect()
    }

    /// Snapshot the per-(indextype, routine) aggregates, sorted by key.
    pub fn aggregates(&self) -> Vec<(String, &'static str, RoutineStats)> {
        self.inner
            .lock()
            .aggregates
            .iter()
            .map(|((it, r), s)| (it.clone(), *r, *s))
            .collect()
    }

    /// Clear recorded events, aggregates, and the dropped counter.
    pub fn clear(&self) {
        let mut g = self.inner.lock();
        g.events.clear();
        g.aggregates.clear();
        g.dropped = 0;
    }

    /// Routine names in recorded order — handy for call-sequence asserts.
    pub fn routine_sequence(&self) -> Vec<&'static str> {
        self.inner.lock().events.iter().map(|e| e.routine).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let t = CallTrace::new();
        t.record(Component::Ddl, "ODCIIndexCreate", "T", "x");
        assert!(t.events().is_empty());
        assert!(t.aggregates().is_empty());
    }

    #[test]
    fn enabled_trace_records_in_order() {
        let t = CallTrace::new();
        t.set_enabled(true);
        t.record(Component::IndexAccess, "ODCIIndexStart", "T", "q1");
        t.record(Component::IndexAccess, "ODCIIndexFetch", "T", "q1");
        t.record(Component::IndexAccess, "ODCIIndexClose", "T", "q1");
        assert_eq!(
            t.routine_sequence(),
            vec!["ODCIIndexStart", "ODCIIndexFetch", "ODCIIndexClose"]
        );
    }

    #[test]
    fn clones_share_the_buffer() {
        let t = CallTrace::new();
        t.set_enabled(true);
        let t2 = t.clone();
        t2.record(Component::Optimizer, "ODCIStatsSelectivity", "T", "");
        assert_eq!(t.events().len(), 1);
        t.clear();
        assert!(t2.events().is_empty());
    }

    #[test]
    fn event_display() {
        let e = TraceEvent {
            seq: 0,
            component: Component::Dml,
            routine: "ODCIIndexInsert",
            indextype: "TEXTINDEXTYPE".into(),
            detail: "EMPLOYEES row".into(),
            elapsed_micros: 0,
        };
        assert_eq!(
            e.to_string(),
            "[DML] EMPLOYEES row -> TEXTINDEXTYPE.ODCIIndexInsert"
        );
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let t = CallTrace::new();
        t.set_enabled(true);
        t.set_capacity(3);
        for i in 0..5 {
            t.record(Component::Dml, "ODCIIndexInsert", "T", format!("row {i}"));
        }
        let evs = t.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(t.dropped(), 2);
        // Oldest two (seq 0, 1) evicted; seqs of survivors are contiguous.
        assert_eq!(evs.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![2, 3, 4]);
        // Aggregates are immune to eviction.
        let aggs = t.aggregates();
        assert_eq!(aggs.len(), 1);
        assert_eq!(aggs[0].2.calls, 5);
        t.clear();
        assert_eq!(t.dropped(), 0);
        assert!(t.aggregates().is_empty());
    }

    #[test]
    fn finish_stamps_elapsed_and_aggregates() {
        let t = CallTrace::new();
        t.set_enabled(true);
        let h = t.record(Component::IndexAccess, "ODCIIndexFetch", "T", "q");
        std::thread::sleep(std::time::Duration::from_millis(2));
        t.finish(h);
        let evs = t.events();
        assert!(evs[0].elapsed_micros >= 1000, "elapsed = {}", evs[0].elapsed_micros);
        let aggs = t.aggregates();
        assert_eq!(aggs[0].2.calls, 1);
        assert_eq!(aggs[0].2.total_micros, evs[0].elapsed_micros);
    }

    #[test]
    fn shrinking_capacity_evicts_immediately() {
        let t = CallTrace::new();
        t.set_enabled(true);
        for _ in 0..4 {
            t.record(Component::Ddl, "ODCIIndexCreate", "T", "");
        }
        t.set_capacity(2);
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 2);
    }
}
