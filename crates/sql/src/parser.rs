//! Recursive-descent SQL parser.
//!
//! Produces [`Statement`]s from token streams. The grammar mirrors the
//! paper's examples, including the extensibility DDL:
//!
//! ```sql
//! CREATE OPERATOR Contains BINDING (VARCHAR2, VARCHAR2) RETURN NUMBER USING TextContains;
//! CREATE INDEXTYPE TextIndexType FOR Contains(VARCHAR2, VARCHAR2) USING TextIndexMethods;
//! CREATE INDEX ResumeTextIndex ON Employees(resume)
//!   INDEXTYPE IS TextIndexType PARAMETERS (':Language English :Ignore the a an');
//! ```

use extidx_common::{Error, Result, Value};

use crate::ast::*;
use crate::lexer::{lex, Token};

/// Parse one statement (an optional trailing `;` is accepted).
pub fn parse(sql: &str) -> Result<Statement> {
    let tokens = lex(sql)?;
    let mut p = Parser { tokens, pos: 0, params: 0 };
    let stmt = p.statement()?;
    p.eat(&Token::Semicolon);
    if !p.at_end() {
        return Err(Error::Parse(format!("unexpected trailing input at token {}", p.pos)));
    }
    Ok(stmt)
}

/// Parse the content of a `/*+ … */` hint block: a sequence of
/// `INDEX(t idx)`, `NO_INDEX[(t)]`, and `FULL[(t)]` hints. Unlike
/// Oracle — which silently ignores malformed hints — unknown or
/// ill-formed hints are parse errors: the differential harness relies on
/// hints being hard overrides, so a typo must not degrade to "optimizer's
/// choice".
fn parse_hints(text: &str) -> Result<Vec<Hint>> {
    let tokens = lex(text)?;
    let mut p = Parser { tokens, pos: 0, params: 0 };
    let mut hints = Vec::new();
    while !p.at_end() {
        let name = p.ident()?;
        match name.as_str() {
            "INDEX" => {
                p.expect(&Token::LParen)?;
                let table = p.ident()?;
                p.eat(&Token::Comma);
                let index = p.ident()?;
                p.expect(&Token::RParen)?;
                hints.push(Hint::Index { table, index });
            }
            "NO_INDEX" | "FULL" => {
                let table = if p.eat(&Token::LParen) {
                    let t = p.ident()?;
                    p.expect(&Token::RParen)?;
                    Some(t)
                } else {
                    None
                };
                hints.push(match name.as_str() {
                    "NO_INDEX" => Hint::NoIndex { table },
                    _ => Hint::Full { table },
                });
            }
            other => return Err(Error::Parse(format!("unknown hint {other}"))),
        }
    }
    Ok(hints)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    params: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1)
    }

    fn next(&mut self) -> Result<Token> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| Error::Parse("unexpected end of statement".into()))?;
        self.pos += 1;
        Ok(t)
    }

    /// Consume `tok` if present; report whether it was.
    fn eat(&mut self, tok: &Token) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &Token) -> Result<()> {
        if self.eat(tok) {
            Ok(())
        } else {
            Err(Error::Parse(format!(
                "expected {tok} but found {}",
                self.peek().map(|t| t.to_string()).unwrap_or_else(|| "end of input".into())
            )))
        }
    }

    /// Consume a keyword (case-insensitive identifier) if present.
    fn eat_kw(&mut self, kw: &str) -> bool {
        match self.peek() {
            Some(Token::Ident(s)) if s == kw => {
                self.pos += 1;
                true
            }
            _ => false,
        }
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s == kw)
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(Error::Parse(format!(
                "expected {kw} but found {}",
                self.peek().map(|t| t.to_string()).unwrap_or_else(|| "end of input".into())
            )))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next()? {
            Token::Ident(s) => Ok(s),
            other => Err(Error::Parse(format!("expected identifier, found {other}"))),
        }
    }

    fn string(&mut self) -> Result<String> {
        match self.next()? {
            Token::Str(s) => Ok(s),
            other => Err(Error::Parse(format!("expected string literal, found {other}"))),
        }
    }

    // ---- statements ---------------------------------------------------------

    fn statement(&mut self) -> Result<Statement> {
        if self.eat_kw("EXPLAIN") {
            // `EXPLAIN ANALYZE` executes the plan under instrumentation;
            // plain `EXPLAIN` only renders it. `ANALYZE` here cannot be the
            // start of an `ANALYZE TABLE` statement, so eating it is safe.
            if self.eat_kw("ANALYZE") {
                let inner = self.statement()?;
                return Ok(Statement::ExplainAnalyze(Box::new(inner)));
            }
            let inner = self.statement()?;
            return Ok(Statement::Explain(Box::new(inner)));
        }
        if self.peek_kw("SELECT") {
            return Ok(Statement::Select(self.select()?));
        }
        if self.eat_kw("INSERT") {
            return self.insert();
        }
        if self.eat_kw("UPDATE") {
            return self.update();
        }
        if self.eat_kw("DELETE") {
            return self.delete();
        }
        if self.eat_kw("BEGIN") {
            return Ok(Statement::Begin);
        }
        if self.eat_kw("COMMIT") {
            return Ok(Statement::Commit);
        }
        if self.eat_kw("ROLLBACK") {
            return Ok(Statement::Rollback);
        }
        if self.eat_kw("VACUUM") {
            return Ok(Statement::Vacuum);
        }
        if self.eat_kw("CREATE") {
            return self.create();
        }
        if self.eat_kw("DROP") {
            return self.drop();
        }
        if self.eat_kw("ALTER") {
            return self.alter();
        }
        if self.eat_kw("TRUNCATE") {
            self.expect_kw("TABLE")?;
            return Ok(Statement::TruncateTable { name: self.ident()? });
        }
        if self.eat_kw("ANALYZE") {
            self.expect_kw("TABLE")?;
            return Ok(Statement::AnalyzeTable { name: self.ident()? });
        }
        if self.eat_kw("SET") {
            let name = self.ident()?;
            // Oracle's `ALTER SESSION SET x = v` flavor, pared down: an
            // optional `=` then a (possibly negative) integer value.
            self.eat(&Token::Eq);
            let neg = self.eat(&Token::Minus);
            let value = match self.next()? {
                Token::Int(i) => {
                    if neg {
                        -i
                    } else {
                        i
                    }
                }
                other => {
                    return Err(Error::Parse(format!(
                        "expected integer value for SET {name}, found {other}"
                    )))
                }
            };
            return Ok(Statement::Set { name, value });
        }
        if self.eat_kw("SHOW") {
            return Ok(Statement::Show { name: self.ident()? });
        }
        Err(Error::Parse(format!(
            "unrecognized statement start: {}",
            self.peek().map(|t| t.to_string()).unwrap_or_else(|| "end of input".into())
        )))
    }

    // ---- SELECT ----------------------------------------------------------------

    fn select(&mut self) -> Result<Select> {
        self.expect_kw("SELECT")?;
        let hints = match self.peek() {
            Some(Token::Hint(text)) => {
                let text = text.clone();
                self.pos += 1;
                parse_hints(&text)?
            }
            _ => Vec::new(),
        };
        let distinct = self.eat_kw("DISTINCT");
        let mut items = Vec::new();
        loop {
            items.push(self.select_item()?);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect_kw("FROM")?;
        let mut from = Vec::new();
        loop {
            let table = self.ident()?;
            let alias = match self.peek() {
                Some(Token::Ident(s)) if !is_clause_keyword(s) => {
                    let a = s.clone();
                    self.pos += 1;
                    Some(a)
                }
                _ => None,
            };
            from.push(TableRef { table, alias });
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_kw("WHERE") { Some(self.expr()?) } else { None };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_kw("HAVING") { Some(self.expr()?) } else { None };
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                order_by.push(OrderItem { expr, desc });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("LIMIT") {
            match self.next()? {
                Token::Int(n) if n >= 0 => Some(n as u64),
                other => return Err(Error::Parse(format!("expected LIMIT count, found {other}"))),
            }
        } else {
            None
        };
        Ok(Select { hints, distinct, items, from, where_clause, group_by, having, order_by, limit })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.eat(&Token::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // alias.* form
        if let (Some(Token::Ident(q)), Some(Token::Dot)) = (self.peek(), self.peek2()) {
            if self.tokens.get(self.pos + 2) == Some(&Token::Star) {
                let q = q.clone();
                self.pos += 3;
                return Ok(SelectItem::QualifiedWildcard(q));
            }
        }
        let expr = self.expr()?;
        let alias = if self.eat_kw("AS") {
            Some(self.ident()?)
        } else {
            match self.peek() {
                Some(Token::Ident(s)) if !is_clause_keyword(s) => {
                    let a = s.clone();
                    self.pos += 1;
                    Some(a)
                }
                _ => None,
            }
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    // ---- DML --------------------------------------------------------------------

    fn insert(&mut self) -> Result<Statement> {
        self.expect_kw("INTO")?;
        let table = self.ident()?;
        let mut columns = None;
        if self.peek() == Some(&Token::LParen) {
            // Could be a column list; disambiguate by requiring idents
            // only followed by VALUES/SELECT.
            let save = self.pos;
            self.pos += 1;
            let mut cols = Vec::new();
            let mut ok = true;
            loop {
                match self.peek() {
                    Some(Token::Ident(_)) => {
                        cols.push(self.ident()?);
                    }
                    _ => {
                        ok = false;
                        break;
                    }
                }
                if self.eat(&Token::RParen) {
                    break;
                }
                if !self.eat(&Token::Comma) {
                    ok = false;
                    break;
                }
            }
            if ok && (self.peek_kw("VALUES") || self.peek_kw("SELECT")) {
                columns = Some(cols);
            } else {
                self.pos = save;
            }
        }
        if self.eat_kw("VALUES") {
            let mut rows = Vec::new();
            loop {
                self.expect(&Token::LParen)?;
                let mut row = Vec::new();
                loop {
                    row.push(self.expr()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen)?;
                rows.push(row);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            return Ok(Statement::Insert { table, columns, source: InsertSource::Values(rows) });
        }
        if self.peek_kw("SELECT") {
            let q = self.select()?;
            return Ok(Statement::Insert { table, columns, source: InsertSource::Query(Box::new(q)) });
        }
        Err(Error::Parse("expected VALUES or SELECT in INSERT".into()))
    }

    fn update(&mut self) -> Result<Statement> {
        let table = self.ident()?;
        self.expect_kw("SET")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect(&Token::Eq)?;
            let value = self.expr()?;
            assignments.push((col, value));
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_kw("WHERE") { Some(self.expr()?) } else { None };
        Ok(Statement::Update { table, assignments, where_clause })
    }

    fn delete(&mut self) -> Result<Statement> {
        self.expect_kw("FROM")?;
        let table = self.ident()?;
        let where_clause = if self.eat_kw("WHERE") { Some(self.expr()?) } else { None };
        Ok(Statement::Delete { table, where_clause })
    }

    // ---- DDL -----------------------------------------------------------------------

    fn create(&mut self) -> Result<Statement> {
        if self.eat_kw("TABLE") {
            return self.create_table();
        }
        if self.eat_kw("TYPE") {
            let name = self.ident()?;
            self.expect_kw("AS")?;
            self.expect_kw("OBJECT")?;
            self.expect(&Token::LParen)?;
            let mut attrs = Vec::new();
            loop {
                let name = self.ident()?;
                let type_name = self.type_spec()?;
                attrs.push(ColumnSpec { name, type_name });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(Statement::CreateType { name, attrs });
        }
        if self.eat_kw("INDEX") {
            let name = self.ident()?;
            self.expect_kw("ON")?;
            let table = self.ident()?;
            self.expect(&Token::LParen)?;
            let column = self.ident()?;
            self.expect(&Token::RParen)?;
            let mut indextype = None;
            let mut parameters = None;
            if self.eat_kw("INDEXTYPE") {
                self.expect_kw("IS")?;
                indextype = Some(self.ident()?);
            }
            if self.eat_kw("PARAMETERS") {
                self.expect(&Token::LParen)?;
                parameters = Some(self.string()?);
                self.expect(&Token::RParen)?;
            }
            return Ok(Statement::CreateIndex { name, table, column, indextype, parameters });
        }
        if self.eat_kw("OPERATOR") {
            let name = self.ident()?;
            self.expect_kw("BINDING")?;
            let mut bindings = Vec::new();
            loop {
                self.expect(&Token::LParen)?;
                let mut arg_types = Vec::new();
                if self.peek() != Some(&Token::RParen) {
                    loop {
                        arg_types.push(self.type_spec()?);
                        if !self.eat(&Token::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&Token::RParen)?;
                self.expect_kw("RETURN")?;
                let return_type = self.type_spec()?;
                self.expect_kw("USING")?;
                let function_name = self.ident()?;
                bindings.push(BindingSpec { arg_types, return_type, function_name });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            return Ok(Statement::CreateOperator { name, bindings });
        }
        if self.eat_kw("INDEXTYPE") {
            let name = self.ident()?;
            self.expect_kw("FOR")?;
            let mut operators = Vec::new();
            loop {
                let op_name = self.ident()?;
                self.expect(&Token::LParen)?;
                let mut arg_types = Vec::new();
                if self.peek() != Some(&Token::RParen) {
                    loop {
                        arg_types.push(self.type_spec()?);
                        if !self.eat(&Token::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&Token::RParen)?;
                operators.push(IndexTypeOpSpec { name: op_name, arg_types });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect_kw("USING")?;
            let using = self.ident()?;
            return Ok(Statement::CreateIndexType { name, operators, using });
        }
        Err(Error::Parse("expected TABLE, TYPE, INDEX, OPERATOR, or INDEXTYPE after CREATE".into()))
    }

    fn create_table(&mut self) -> Result<Statement> {
        let name = self.ident()?;
        self.expect(&Token::LParen)?;
        let mut columns = Vec::new();
        let mut primary_key = Vec::new();
        loop {
            if self.eat_kw("PRIMARY") {
                self.expect_kw("KEY")?;
                self.expect(&Token::LParen)?;
                loop {
                    primary_key.push(self.ident()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen)?;
            } else {
                let col_name = self.ident()?;
                let type_name = self.type_spec()?;
                columns.push(ColumnSpec { name: col_name, type_name });
            }
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        let organization_index = if self.eat_kw("ORGANIZATION") {
            self.expect_kw("INDEX")?;
            true
        } else {
            false
        };
        Ok(Statement::CreateTable { name, columns, primary_key, organization_index })
    }

    fn drop(&mut self) -> Result<Statement> {
        if self.eat_kw("TABLE") {
            return Ok(Statement::DropTable { name: self.ident()? });
        }
        if self.eat_kw("INDEX") {
            return Ok(Statement::DropIndex { name: self.ident()? });
        }
        if self.eat_kw("OPERATOR") {
            return Ok(Statement::DropOperator { name: self.ident()? });
        }
        if self.eat_kw("INDEXTYPE") {
            return Ok(Statement::DropIndexType { name: self.ident()? });
        }
        Err(Error::Parse("expected TABLE, INDEX, OPERATOR, or INDEXTYPE after DROP".into()))
    }

    fn alter(&mut self) -> Result<Statement> {
        self.expect_kw("INDEX")?;
        let name = self.ident()?;
        if self.eat_kw("REBUILD") {
            return Ok(Statement::AlterIndex { name, action: AlterIndexAction::Rebuild });
        }
        self.expect_kw("PARAMETERS")?;
        self.expect(&Token::LParen)?;
        let parameters = self.string()?;
        self.expect(&Token::RParen)?;
        Ok(Statement::AlterIndex { name, action: AlterIndexAction::Parameters(parameters) })
    }

    fn type_spec(&mut self) -> Result<TypeSpec> {
        let name = self.ident()?;
        Ok(match name.as_str() {
            "INTEGER" | "INT" => TypeSpec::Integer,
            "NUMBER" | "FLOAT" | "DOUBLE" => TypeSpec::Number,
            "VARCHAR" | "VARCHAR2" | "CHAR" => {
                let mut n = 4000;
                if self.eat(&Token::LParen) {
                    match self.next()? {
                        Token::Int(v) if v > 0 => n = v as u32,
                        other => {
                            return Err(Error::Parse(format!("expected length, found {other}")))
                        }
                    }
                    self.expect(&Token::RParen)?;
                }
                TypeSpec::Varchar(n)
            }
            "BOOLEAN" => TypeSpec::Boolean,
            "LOB" | "BLOB" | "CLOB" => TypeSpec::Lob,
            "ROWID" => TypeSpec::RowId,
            "VARRAY" => {
                self.expect_kw("OF")?;
                TypeSpec::VArray(Box::new(self.type_spec()?))
            }
            _ => TypeSpec::Named(name),
        })
    }

    // ---- expressions ------------------------------------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("OR") {
            let rhs = self.and_expr()?;
            lhs = Expr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw("AND") {
            let rhs = self.not_expr()?;
            lhs = Expr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("NOT") {
            let inner = self.not_expr()?;
            return Ok(Expr::Unary(UnOp::Not, Box::new(inner)));
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr> {
        let lhs = self.additive()?;
        // postfix predicates
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull(Box::new(lhs), negated));
        }
        if self.eat_kw("BETWEEN") {
            let lo = self.additive()?;
            self.expect_kw("AND")?;
            let hi = self.additive()?;
            return Ok(Expr::Between(Box::new(lhs), Box::new(lo), Box::new(hi)));
        }
        if self.eat_kw("NOT") {
            // NOT LIKE / NOT IN
            if self.eat_kw("LIKE") {
                let rhs = self.additive()?;
                return Ok(Expr::Unary(
                    UnOp::Not,
                    Box::new(Expr::Binary(BinOp::Like, Box::new(lhs), Box::new(rhs))),
                ));
            }
            if self.eat_kw("IN") {
                let list = self.in_list()?;
                return Ok(Expr::Unary(UnOp::Not, Box::new(Expr::InList(Box::new(lhs), list))));
            }
            return Err(Error::Parse("expected LIKE or IN after NOT".into()));
        }
        if self.eat_kw("LIKE") {
            let rhs = self.additive()?;
            return Ok(Expr::Binary(BinOp::Like, Box::new(lhs), Box::new(rhs)));
        }
        if self.eat_kw("IN") {
            let list = self.in_list()?;
            return Ok(Expr::InList(Box::new(lhs), list));
        }
        let op = match self.peek() {
            Some(Token::Eq) => Some(BinOp::Eq),
            Some(Token::Ne) => Some(BinOp::Ne),
            Some(Token::Lt) => Some(BinOp::Lt),
            Some(Token::Le) => Some(BinOp::Le),
            Some(Token::Gt) => Some(BinOp::Gt),
            Some(Token::Ge) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let rhs = self.additive()?;
            return Ok(Expr::Binary(op, Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn in_list(&mut self) -> Result<Vec<Expr>> {
        self.expect(&Token::LParen)?;
        let mut list = Vec::new();
        loop {
            list.push(self.expr()?);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        Ok(list)
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.multiplicative()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat(&Token::Minus) {
            let inner = self.unary()?;
            // Fold negative literals immediately for cleaner plans.
            if let Expr::Literal(Value::Integer(i)) = inner {
                return Ok(Expr::Literal(Value::Integer(-i)));
            }
            if let Expr::Literal(Value::Number(n)) = inner {
                return Ok(Expr::Literal(Value::Number(-n)));
            }
            return Ok(Expr::Unary(UnOp::Neg, Box::new(inner)));
        }
        self.postfix()
    }

    /// Primary expression plus any `.attr` accesses.
    fn postfix(&mut self) -> Result<Expr> {
        let mut e = self.primary()?;
        while self.peek() == Some(&Token::Dot) {
            // `.` after a column ref or call = attribute access; after an
            // unqualified column it may also be a table qualifier, which
            // primary() already folded. Here any further dots are
            // attribute accesses.
            self.pos += 1;
            let attr = self.ident()?;
            e = Expr::Attribute(Box::new(e), attr);
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.next()? {
            Token::Int(i) => Ok(Expr::Literal(Value::Integer(i))),
            Token::Num(n) => Ok(Expr::Literal(Value::Number(n))),
            Token::Str(s) => Ok(Expr::Literal(Value::Varchar(s))),
            Token::Question => {
                let idx = self.params;
                self.params += 1;
                Ok(Expr::Parameter(idx))
            }
            Token::LParen => {
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Token::Star => Ok(Expr::Star),
            Token::Ident(name) => {
                match name.as_str() {
                    "NULL" => return Ok(Expr::Literal(Value::Null)),
                    "TRUE" => return Ok(Expr::Literal(Value::Boolean(true))),
                    "FALSE" => return Ok(Expr::Literal(Value::Boolean(false))),
                    _ => {}
                }
                // Function / operator / constructor call?
                if self.peek() == Some(&Token::LParen) {
                    self.pos += 1;
                    let mut args = Vec::new();
                    if self.peek() != Some(&Token::RParen) {
                        loop {
                            if self.peek() == Some(&Token::Star) {
                                // COUNT(*)
                                self.pos += 1;
                                args.push(Expr::Star);
                            } else {
                                args.push(self.expr()?);
                            }
                            if !self.eat(&Token::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&Token::RParen)?;
                    return Ok(Expr::Call { name, args });
                }
                // Qualified column `q.name`?
                if self.peek() == Some(&Token::Dot) {
                    if let Some(Token::Ident(_)) = self.peek2() {
                        self.pos += 1;
                        let col = self.ident()?;
                        return Ok(Expr::Column { qualifier: Some(name), name: col });
                    }
                }
                Ok(Expr::Column { qualifier: None, name })
            }
            other => Err(Error::Parse(format!("unexpected token {other} in expression"))),
        }
    }
}

fn is_clause_keyword(word: &str) -> bool {
    matches!(
        word,
        "FROM"
            | "WHERE"
            | "GROUP"
            | "HAVING"
            | "ORDER"
            | "LIMIT"
            | "ON"
            | "SET"
            | "VALUES"
            | "AS"
            | "AND"
            | "OR"
            | "NOT"
            | "ASC"
            | "DESC"
            | "INDEXTYPE"
            | "PARAMETERS"
            | "UNION"
            | "JOIN"
            | "INNER"
            | "LEFT"
            | "SELECT"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_query() {
        let s = parse("SELECT * FROM Employees WHERE Contains(resume, 'Oracle AND UNIX');").unwrap();
        match s {
            Statement::Select(sel) => {
                assert_eq!(sel.items, vec![SelectItem::Wildcard]);
                assert_eq!(sel.from[0].table, "EMPLOYEES");
                match sel.where_clause.unwrap() {
                    Expr::Call { name, args } => {
                        assert_eq!(name, "CONTAINS");
                        assert_eq!(args.len(), 2);
                    }
                    other => panic!("expected operator call, got {other:?}"),
                }
            }
            other => panic!("expected SELECT, got {other:?}"),
        }
    }

    #[test]
    fn parses_create_domain_index() {
        let s = parse(
            "CREATE INDEX ResumeTextIndex ON Employees(resume) \
             INDEXTYPE IS TextIndexType PARAMETERS (':Language English :Ignore the a an')",
        )
        .unwrap();
        assert_eq!(
            s,
            Statement::CreateIndex {
                name: "RESUMETEXTINDEX".into(),
                table: "EMPLOYEES".into(),
                column: "RESUME".into(),
                indextype: Some("TEXTINDEXTYPE".into()),
                parameters: Some(":Language English :Ignore the a an".into()),
            }
        );
    }

    #[test]
    fn parses_plain_btree_index() {
        let s = parse("CREATE INDEX IdIdx ON Employees(id)").unwrap();
        match s {
            Statement::CreateIndex { indextype, parameters, .. } => {
                assert!(indextype.is_none());
                assert!(parameters.is_none());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_create_operator() {
        let s = parse(
            "CREATE OPERATOR Contains BINDING (VARCHAR2, VARCHAR2) RETURN NUMBER USING TextContains",
        )
        .unwrap();
        match s {
            Statement::CreateOperator { name, bindings } => {
                assert_eq!(name, "CONTAINS");
                assert_eq!(bindings.len(), 1);
                assert_eq!(bindings[0].function_name, "TEXTCONTAINS");
                assert_eq!(bindings[0].arg_types.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_create_indextype() {
        let s = parse(
            "CREATE INDEXTYPE TextIndexType FOR Contains(VARCHAR2, VARCHAR2) USING TextIndexMethods",
        )
        .unwrap();
        match s {
            Statement::CreateIndexType { name, operators, using } => {
                assert_eq!(name, "TEXTINDEXTYPE");
                assert_eq!(operators[0].name, "CONTAINS");
                assert_eq!(using, "TEXTINDEXMETHODS");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_alter_index_parameters() {
        let s = parse("ALTER INDEX ResumeTextIndex PARAMETERS (':Ignore COBOL')").unwrap();
        assert_eq!(
            s,
            Statement::AlterIndex {
                name: "RESUMETEXTINDEX".into(),
                action: AlterIndexAction::Parameters(":Ignore COBOL".into()),
            }
        );
    }

    #[test]
    fn parses_alter_index_rebuild() {
        let s = parse("ALTER INDEX ResumeTextIndex REBUILD").unwrap();
        assert_eq!(
            s,
            Statement::AlterIndex {
                name: "RESUMETEXTINDEX".into(),
                action: AlterIndexAction::Rebuild,
            }
        );
        assert!(parse("ALTER INDEX i REBUILD EXTRA").is_err());
    }

    #[test]
    fn parses_create_table_with_iot() {
        let s = parse(
            "CREATE TABLE t (token VARCHAR2(64), rid INTEGER, cnt INTEGER, \
             PRIMARY KEY (token, rid)) ORGANIZATION INDEX",
        )
        .unwrap();
        match s {
            Statement::CreateTable { columns, primary_key, organization_index, .. } => {
                assert_eq!(columns.len(), 3);
                assert_eq!(primary_key, vec!["TOKEN".to_string(), "RID".to_string()]);
                assert!(organization_index);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_multi_table_join_query() {
        let s = parse(
            "SELECT r.gid, p.gid FROM roads r, parks p \
             WHERE Sdo_Relate(r.geometry, p.geometry, 'mask=OVERLAPS')",
        )
        .unwrap();
        match s {
            Statement::Select(sel) => {
                assert_eq!(sel.from.len(), 2);
                assert_eq!(sel.from[0].alias.as_deref(), Some("R"));
                assert_eq!(sel.from[1].alias.as_deref(), Some("P"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_aggregates_group_order_limit() {
        let s = parse(
            "SELECT dept, COUNT(*), AVG(salary) FROM emp WHERE salary > 10 \
             GROUP BY dept HAVING COUNT(*) > 2 ORDER BY dept DESC LIMIT 5",
        )
        .unwrap();
        match s {
            Statement::Select(sel) => {
                assert_eq!(sel.group_by.len(), 1);
                assert!(sel.having.is_some());
                assert!(sel.order_by[0].desc);
                assert_eq!(sel.limit, Some(5));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_between_in_isnull_like() {
        let s = parse(
            "SELECT * FROM t WHERE a BETWEEN 1 AND 5 AND b IN (1,2,3) \
             AND c IS NOT NULL AND d LIKE 'x%' AND e NOT LIKE 'y%'",
        );
        assert!(s.is_ok(), "{s:?}");
    }

    #[test]
    fn parses_insert_forms() {
        assert!(parse("INSERT INTO t VALUES (1, 'a'), (2, 'b')").is_ok());
        assert!(parse("INSERT INTO t (a, b) VALUES (1, 'a')").is_ok());
        assert!(parse("INSERT INTO t SELECT a, b FROM s WHERE a > 1").is_ok());
    }

    #[test]
    fn parses_update_delete() {
        assert!(parse("UPDATE t SET a = a + 1, b = 'x' WHERE id = 3").is_ok());
        assert!(parse("DELETE FROM t WHERE id = 3").is_ok());
    }

    #[test]
    fn parses_explain() {
        let s = parse("EXPLAIN SELECT * FROM t").unwrap();
        assert!(matches!(s, Statement::Explain(_)));
    }

    #[test]
    fn parses_plan_forcing_hints() {
        let s = parse("SELECT /*+ INDEX(t idx) NO_INDEX(u) FULL */ * FROM t, u").unwrap();
        match s {
            Statement::Select(sel) => {
                assert_eq!(
                    sel.hints,
                    vec![
                        Hint::Index { table: "T".into(), index: "IDX".into() },
                        Hint::NoIndex { table: Some("U".into()) },
                        Hint::Full { table: None },
                    ]
                );
            }
            other => panic!("{other:?}"),
        }
        // Comma between INDEX arguments is accepted, Oracle-style.
        let s = parse("SELECT /*+ INDEX(t, idx) */ * FROM t").unwrap();
        match s {
            Statement::Select(sel) => {
                assert_eq!(sel.hints, vec![Hint::Index { table: "T".into(), index: "IDX".into() }]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn malformed_hints_are_errors_not_ignored() {
        assert!(parse("SELECT /*+ FROB */ * FROM t").is_err());
        assert!(parse("SELECT /*+ INDEX(t) */ * FROM t").is_err());
        assert!(parse("SELECT /*+ INDEX */ * FROM t").is_err());
    }

    #[test]
    fn plain_block_comment_is_not_a_hint() {
        let s = parse("SELECT /* INDEX(t idx) */ * FROM t").unwrap();
        match s {
            Statement::Select(sel) => assert!(sel.hints.is_empty()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_transactions() {
        assert_eq!(parse("BEGIN").unwrap(), Statement::Begin);
        assert_eq!(parse("COMMIT").unwrap(), Statement::Commit);
        assert_eq!(parse("ROLLBACK").unwrap(), Statement::Rollback);
        assert_eq!(parse("VACUUM").unwrap(), Statement::Vacuum);
    }

    #[test]
    fn parses_binds_in_order() {
        let s = parse("SELECT * FROM t WHERE a = ? AND b = ?").unwrap();
        match s {
            Statement::Select(sel) => {
                let w = sel.where_clause.unwrap();
                let printed = format!("{w:?}");
                assert!(printed.contains("Parameter(0)") && printed.contains("Parameter(1)"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_attribute_access() {
        let s = parse("SELECT t.img.signature FROM images t").unwrap();
        match s {
            Statement::Select(sel) => match &sel.items[0] {
                SelectItem::Expr { expr: Expr::Attribute(inner, attr), .. } => {
                    assert_eq!(attr, "SIGNATURE");
                    assert!(matches!(**inner, Expr::Column { .. }));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_rowid_pseudo_column() {
        let s = parse("SELECT d.rowid FROM docs d WHERE d.rowid = ?").unwrap();
        match s {
            Statement::Select(sel) => match &sel.items[0] {
                SelectItem::Expr { expr: Expr::Column { qualifier, name }, .. } => {
                    assert_eq!(qualifier.as_deref(), Some("D"));
                    assert_eq!(name, "ROWID");
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_truncate_analyze() {
        assert!(matches!(parse("TRUNCATE TABLE t").unwrap(), Statement::TruncateTable { .. }));
        assert!(matches!(parse("ANALYZE TABLE t").unwrap(), Statement::AnalyzeTable { .. }));
    }

    #[test]
    fn parses_create_type() {
        let s = parse("CREATE TYPE SDO_GEOMETRY AS OBJECT (gtype INTEGER, x NUMBER, y NUMBER)")
            .unwrap();
        match s {
            Statement::CreateType { name, attrs } => {
                assert_eq!(name, "SDO_GEOMETRY");
                assert_eq!(attrs.len(), 3);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_varray_type() {
        let s = parse("CREATE TABLE emp (hobbies VARRAY OF VARCHAR2(32))").unwrap();
        match s {
            Statement::CreateTable { columns, .. } => {
                assert_eq!(columns[0].type_name, TypeSpec::VArray(Box::new(TypeSpec::Varchar(32))));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("SELECT * FROM t garbage garbage garbage(").is_err());
        assert!(parse("SELECT FROM").is_err());
    }

    #[test]
    fn operator_relop_bound_parses() {
        // VIRSimilar(...) <= 10 — operator call under a comparison.
        let s = parse("SELECT * FROM images WHERE VIRSimilar(sig, ?, 0.5) <= 10").unwrap();
        match s {
            Statement::Select(sel) => match sel.where_clause.unwrap() {
                Expr::Binary(BinOp::Le, lhs, _) => {
                    assert!(matches!(*lhs, Expr::Call { .. }));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }
}
