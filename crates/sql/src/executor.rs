//! The Volcano-style executor.
//!
//! Plan nodes become pull-based state machines ([`ExecNode`]); every
//! `next` call receives the read-lane [`Exec`] context — a shared
//! database reference plus the statement's snapshot — which is what lets
//! a domain scan re-enter the engine: each fetch drives the cartridge's
//! `ODCIIndexFetch` through a Scan-mode server context, and the
//! cartridge's own SQL callbacks recurse into the engine underneath, all
//! pinned to the snapshot that opened the scan.
//!
//! The crucial property reproduced from §3.2.1: domain-scan results are
//! **streamed** ("the relevant row identifiers are streamed back to the
//! server via the ODCI interfaces… all rows that satisfy the text
//! predicate do not have to be identified before the first result row can
//! be returned to the user"). `next` returns as soon as one fetched rowid
//! has been joined to its base row.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use extidx_common::{Error, Key, Result, RowId, Value};
use extidx_core::meta::{IndexInfo, OperatorCall, PredicateBound};
use extidx_core::sandbox;
use extidx_core::scan::ScanContext;
use extidx_core::server::CallbackMode;
use extidx_core::trace::Component;
use extidx_core::OdciIndex;
use extidx_storage::SegmentId;

use crate::ast::BinOp;
use crate::exec_ctx::Exec;
use crate::expr::{eval, filter_accepts, AggKind, EvalCtx, ExecRow, RExpr};
use crate::plan::{FilterTerm, PlanKind, PlanNode, ZoneBound};

/// The largest possible rowid — used as an upper key pad so inclusive
/// B-tree bounds cover every `(key, rowid)` entry of the bound key.
const MAX_ROWID: RowId = RowId { table: u32::MAX, page: u32::MAX, slot: u16::MAX };

/// Target rows per executor batch on the vectorized path.
pub const BATCH_TARGET: usize = 1024;

/// A batch of rows flowing through the vectorized executor path. An
/// empty batch means the producing node is exhausted — nodes never
/// return an empty batch while more rows remain.
#[derive(Debug, Default)]
pub struct RowBatch {
    pub rows: Vec<ExecRow>,
}

/// A pull-based physical operator.
pub trait ExecNode: Send {
    /// Produce the next row, or `None` when exhausted.
    fn next(&mut self, db: &Exec<'_>) -> Result<Option<ExecRow>>;

    /// Produce up to `max_rows` rows at once; an empty batch means
    /// exhausted. The default adapter loops `next`, so row-only nodes
    /// (joins, sorts, V$ const rows) ride the vectorized path unmodified;
    /// hot nodes override this with a native batch implementation.
    fn next_batch(&mut self, db: &Exec<'_>, max_rows: usize) -> Result<RowBatch> {
        let mut rows = Vec::new();
        while rows.len() < max_rows {
            match self.next(db)? {
                Some(r) => rows.push(r),
                None => break,
            }
        }
        Ok(RowBatch { rows })
    }

    /// Rewind so the node can be executed again (nested-loop inners).
    fn reset(&mut self, db: &Exec<'_>) -> Result<()>;

    /// Pages this node skipped via zone maps (full scans only).
    fn pages_pruned(&self) -> u64 {
        0
    }

    /// Tear the subtree down on the statement's *error* path (deadline,
    /// injected fault, …): wrapper nodes forward to their children, and
    /// a domain scan closes its open cartridge context best-effort so
    /// Start ≡ Close holds even when the statement dies mid-scan. Must
    /// never fail — the original error wins.
    fn abandon(&mut self, db: &Exec<'_>) {
        let _ = db;
    }
}

/// Build the executor tree for a plan.
pub fn build(plan: PlanNode) -> Box<dyn ExecNode> {
    build_node(plan, &mut None)
}

/// Build the executor tree with every node wrapped in an
/// [`InstrumentExec`] (the EXPLAIN ANALYZE path). The returned stats
/// cells are allocated in the same pre-order as
/// [`PlanNode::explain`] renders lines, so `lines[i]` describes
/// `cells[i]`. Accounting is *inclusive*: a node's counters cover its
/// whole subtree, so the root cell's buffer gets equal the statement's
/// cache delta.
pub fn build_instrumented(plan: PlanNode) -> (Box<dyn ExecNode>, Vec<Arc<NodeStats>>) {
    let mut cells = Some(Vec::new());
    let node = build_node(plan, &mut cells);
    (node, cells.expect("cells present"))
}

fn build_node(plan: PlanNode, cells: &mut Option<Vec<Arc<NodeStats>>>) -> Box<dyn ExecNode> {
    // Pre-order: allocate this node's cell before descending, mirroring
    // `explain_into` (self line first, then children left-to-right).
    let stats = cells.as_mut().map(|v| {
        let s: Arc<NodeStats> = Arc::default();
        v.push(s.clone());
        s
    });
    let inner: Box<dyn ExecNode> = match plan.kind {
        PlanKind::FullScan { table, prune, .. } => Box::new(FullScanExec::new(table, prune)),
        PlanKind::IotFullScan { table, .. } => Box::new(IotScanExec::new(table, None, None)),
        PlanKind::IotRange { table, lo, hi } => Box::new(IotScanExec::new(table, lo, hi)),
        PlanKind::BTreeAccess { table, index, lo, hi, .. } => {
            Box::new(BTreeAccessExec::new(table, index, lo, hi))
        }
        PlanKind::RowIdEq { table, rid } => Box::new(RowIdEqExec { table, rid, done: false }),
        PlanKind::ConstRows { rows } => Box::new(ConstRowsExec { rows, idx: 0 }),
        PlanKind::DomainScan { table, index, call, label, .. } => {
            Box::new(DomainScanExec::new(table, index, call, label))
        }
        PlanKind::Filter { input, terms, .. } => {
            Box::new(FilterExec { input: build_node(*input, cells), terms })
        }
        PlanKind::Project { input, exprs } => {
            Box::new(ProjectExec { input: build_node(*input, cells), exprs })
        }
        PlanKind::NestedLoopJoin { left, right, pred } => Box::new(NestedLoopJoinExec {
            left: build_node(*left, cells),
            right: build_node(*right, cells),
            pred,
            current: None,
            started: false,
        }),
        PlanKind::DomainJoin {
            left,
            right_table,
            index,
            operator,
            arg_exprs,
            bound,
            label,
            ..
        } => Box::new(DomainJoinExec {
            left: build_node(*left, cells),
            scan: DomainScanExec::new(
                right_table,
                index,
                OperatorCall {
                    operator,
                    args: Vec::new(),
                    bound: bound.clone(),
                    wants_ancillary: label.is_some(),
                },
                label,
            ),
            arg_exprs,
            current: None,
        }),
        PlanKind::HashJoin { left, right, left_key, right_key, extra_pred } => {
            Box::new(HashJoinExec {
                left: build_node(*left, cells),
                right: build_node(*right, cells),
                left_key,
                right_key,
                extra_pred,
                table: None,
                pending: VecDeque::new(),
            })
        }
        PlanKind::Sort { input, keys } => {
            Box::new(SortExec { input: build_node(*input, cells), keys, sorted: None })
        }
        PlanKind::Limit { input, n } => {
            Box::new(LimitExec { input: build_node(*input, cells), n, produced: 0 })
        }
        PlanKind::Distinct { input } => {
            Box::new(DistinctExec { input: build_node(*input, cells), seen: BTreeMap::new() })
        }
        PlanKind::Aggregate { input, group, aggs } => Box::new(AggregateExec {
            input: build_node(*input, cells),
            group,
            aggs,
            output: None,
        }),
    };
    match stats {
        Some(stats) => Box::new(InstrumentExec { inner, stats }),
        None => inner,
    }
}

// ---------------------------------------------------------------------------
// instrumentation (EXPLAIN ANALYZE)
// ---------------------------------------------------------------------------

/// Runtime counters for one instrumented plan node. Atomics because
/// [`ExecNode`] is `Send` and the rendering side holds the cells through
/// `Arc` while the tree executes.
#[derive(Debug, Default)]
pub struct NodeStats {
    rows: AtomicU64,
    next_calls: AtomicU64,
    batches: AtomicU64,
    pages_pruned: AtomicU64,
    elapsed_nanos: AtomicU64,
    logical_reads: AtomicU64,
    physical_reads: AtomicU64,
    physical_writes: AtomicU64,
}

/// A plain snapshot of [`NodeStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeStatsSnapshot {
    /// Rows this node produced.
    pub rows: u64,
    /// `next` calls (for a domain scan this bounds the batches fetched).
    pub next_calls: u64,
    /// `next_batch` calls — on the vectorized path rows ≠ calls, so the
    /// two are accounted (and reported) separately.
    pub batches: u64,
    /// Pages this node's scan skipped via zone maps.
    pub pages_pruned: u64,
    /// Wall time inside this subtree, microseconds.
    pub elapsed_micros: u64,
    /// Buffer-cache logical reads charged while this subtree ran.
    pub logical_reads: u64,
    /// Cache misses ("disk" reads) while this subtree ran.
    pub physical_reads: u64,
    /// Dirty-page writebacks while this subtree ran.
    pub physical_writes: u64,
}

impl NodeStats {
    /// Snapshot the counters.
    pub fn snapshot(&self) -> NodeStatsSnapshot {
        NodeStatsSnapshot {
            rows: self.rows.load(Ordering::Relaxed),
            next_calls: self.next_calls.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            pages_pruned: self.pages_pruned.load(Ordering::Relaxed),
            elapsed_micros: self.elapsed_nanos.load(Ordering::Relaxed) / 1_000,
            logical_reads: self.logical_reads.load(Ordering::Relaxed),
            physical_reads: self.physical_reads.load(Ordering::Relaxed),
            physical_writes: self.physical_writes.load(Ordering::Relaxed),
        }
    }
}

/// Wrapper recording rows, calls, wall time, and buffer-get deltas around
/// every `next` of the wrapped node. Deltas are measured with per-call
/// [`extidx_storage::buffer::CacheStats`] snapshots, so a parent's
/// counters include its children's (inclusive accounting, like Oracle's
/// row-source statistics).
struct InstrumentExec {
    inner: Box<dyn ExecNode>,
    stats: Arc<NodeStats>,
}

impl ExecNode for InstrumentExec {
    fn next(&mut self, db: &Exec<'_>) -> Result<Option<ExecRow>> {
        let cache_before = db.cache_stats();
        let started = Instant::now();
        let out = self.inner.next(db);
        let elapsed = started.elapsed().as_nanos() as u64;
        let delta = db.cache_stats().since(&cache_before);
        self.stats.next_calls.fetch_add(1, Ordering::Relaxed);
        self.stats.elapsed_nanos.fetch_add(elapsed, Ordering::Relaxed);
        self.stats.logical_reads.fetch_add(delta.logical_reads, Ordering::Relaxed);
        self.stats.physical_reads.fetch_add(delta.physical_reads, Ordering::Relaxed);
        self.stats.physical_writes.fetch_add(delta.physical_writes, Ordering::Relaxed);
        if let Ok(Some(_)) = &out {
            self.stats.rows.fetch_add(1, Ordering::Relaxed);
        }
        self.stats.pages_pruned.store(self.inner.pages_pruned(), Ordering::Relaxed);
        out
    }

    fn next_batch(&mut self, db: &Exec<'_>, max_rows: usize) -> Result<RowBatch> {
        let cache_before = db.cache_stats();
        let started = Instant::now();
        let out = self.inner.next_batch(db, max_rows);
        let elapsed = started.elapsed().as_nanos() as u64;
        let delta = db.cache_stats().since(&cache_before);
        self.stats.batches.fetch_add(1, Ordering::Relaxed);
        self.stats.elapsed_nanos.fetch_add(elapsed, Ordering::Relaxed);
        self.stats.logical_reads.fetch_add(delta.logical_reads, Ordering::Relaxed);
        self.stats.physical_reads.fetch_add(delta.physical_reads, Ordering::Relaxed);
        self.stats.physical_writes.fetch_add(delta.physical_writes, Ordering::Relaxed);
        if let Ok(b) = &out {
            self.stats.rows.fetch_add(b.rows.len() as u64, Ordering::Relaxed);
        }
        self.stats.pages_pruned.store(self.inner.pages_pruned(), Ordering::Relaxed);
        out
    }

    fn reset(&mut self, db: &Exec<'_>) -> Result<()> {
        self.inner.reset(db)
    }

    fn pages_pruned(&self) -> u64 {
        self.inner.pages_pruned()
    }

    fn abandon(&mut self, db: &Exec<'_>) {
        self.inner.abandon(db);
    }
}

// ---------------------------------------------------------------------------
// scans
// ---------------------------------------------------------------------------

struct FullScanExec {
    table: String,
    /// Zone-map bounds from the residual predicate: a page whose
    /// recorded min/max excludes *any* bound (they are ANDed conjuncts)
    /// is skipped without ever charging a buffer read.
    prune: Vec<ZoneBound>,
    seg: Option<SegmentId>,
    page: u32,
    slot: u16,
    charged_page: Option<u32>,
    pruned: u64,
}

impl FullScanExec {
    fn new(table: String, prune: Vec<ZoneBound>) -> Self {
        FullScanExec { table, prune, seg: None, page: 0, slot: 0, charged_page: None, pruned: 0 }
    }
}

impl ExecNode for FullScanExec {
    fn next(&mut self, db: &Exec<'_>) -> Result<Option<ExecRow>> {
        Ok(self.next_batch(db, 1)?.rows.pop())
    }

    fn next_batch(&mut self, db: &Exec<'_>, max_rows: usize) -> Result<RowBatch> {
        let seg = match self.seg {
            Some(s) => s,
            None => {
                let s = db.catalog.table(&self.table)?.seg;
                self.seg = Some(s);
                s
            }
        };
        // Fast gate: no version chains on the segment ⇒ every physical
        // row is visible to every snapshot and the legacy path is exact.
        let versioned = db.storage.segment_has_chains(seg);
        let mut rows = Vec::new();
        loop {
            if rows.len() >= max_rows {
                return Ok(RowBatch { rows });
            }
            let heap = db.storage.heap(seg)?;
            if (self.page as usize) >= heap.page_count() {
                return Ok(RowBatch { rows });
            }
            let slots = heap.slots_in_page(self.page);
            // Zone check once per page, on first entry, before any read
            // is charged: consulting segment metadata costs no cache get.
            // Valid on chained segments too: the engine widens a page's
            // zone with every displaced version its chains hold (and
            // re-widens after each exact rebuild), so the bounds are a
            // superset of everything any snapshot could see on the page.
            if self.slot == 0 && !self.prune.is_empty() {
                let page = self.page;
                let excluded = self.prune.iter().any(|b| {
                    db.storage.heap_zone_excludes(seg, page, b.col, b.lo.as_ref(), b.hi.as_ref())
                });
                if excluded {
                    self.pruned += 1;
                    self.page += 1;
                    continue;
                }
            }
            if (self.slot as usize) >= slots {
                self.page += 1;
                self.slot = 0;
                continue;
            }
            if self.charged_page != Some(self.page) {
                db.storage.charge_page_read(seg, self.page);
                self.charged_page = Some(self.page);
            }
            let slot = self.slot;
            self.slot += 1;
            if let Some(row) = db.storage.heap(seg)?.slot(self.page, slot) {
                let rid = RowId::new(seg.0, self.page, slot);
                // Snapshot isolation: replace the in-place (newest) image
                // with the version this statement's snapshot may see —
                // possibly a displaced older version, possibly nothing
                // (uncommitted insert, or a delete committed before us).
                let visible = if versioned {
                    db.storage.heap_visible_image(seg, rid, row, &db.snap)
                } else {
                    Some(row.clone())
                };
                if let Some(mut values) = visible {
                    values.push(Value::RowId(rid));
                    rows.push(ExecRow::new(values));
                }
            }
        }
    }

    fn reset(&mut self, _db: &Exec<'_>) -> Result<()> {
        self.page = 0;
        self.slot = 0;
        self.charged_page = None;
        Ok(())
    }

    fn pages_pruned(&self) -> u64 {
        self.pruned
    }
}

/// Full or range scan over an index-organized table (materialized — IOT
/// ranges are returned by the storage layer in one call).
struct IotScanExec {
    table: String,
    lo: Option<Key>,
    hi: Option<Key>,
    rows: Option<Vec<Vec<Value>>>,
    idx: usize,
}

impl IotScanExec {
    fn new(table: String, lo: Option<Key>, hi: Option<Key>) -> Self {
        IotScanExec { table, lo, hi, rows: None, idx: 0 }
    }

    fn ensure_rows(&mut self, db: &Exec<'_>) -> Result<()> {
        if self.rows.is_none() {
            let tdef = db.catalog.table(&self.table)?;
            let seg = tdef.seg;
            // A bound on a key prefix must cover all longer keys sharing
            // the prefix: pad the upper bound with NULLs, which sort last.
            let key_cols = match tdef.org {
                crate::catalog::TableOrg::Index { key_cols } => key_cols,
                _ => 1,
            };
            let hi = self.hi.clone().map(|mut k| {
                while k.0.len() < key_cols {
                    k.0.push(Value::Null);
                }
                k
            });
            // Every row carries its logical rowid in the hidden ROWID
            // column, mirroring heap scans.
            let with_rids = if self.lo.is_none() && hi.is_none() {
                db.storage.iot_scan_with_rids_visible(seg, &db.snap)?
            } else {
                db.storage.iot_range_with_rids_visible(
                    seg,
                    self.lo.as_ref(),
                    hi.as_ref(),
                    &db.snap,
                )?
            };
            let rows: Vec<Vec<Value>> = with_rids
                .into_iter()
                .map(|(rid, mut row)| {
                    row.push(Value::RowId(rid));
                    row
                })
                .collect();
            self.rows = Some(rows);
            self.idx = 0;
        }
        Ok(())
    }
}

impl ExecNode for IotScanExec {
    fn next(&mut self, db: &Exec<'_>) -> Result<Option<ExecRow>> {
        self.ensure_rows(db)?;
        let rows = self.rows.as_ref().expect("materialized");
        if self.idx >= rows.len() {
            return Ok(None);
        }
        let row = rows[self.idx].clone();
        self.idx += 1;
        Ok(Some(ExecRow::new(row)))
    }

    fn next_batch(&mut self, db: &Exec<'_>, max_rows: usize) -> Result<RowBatch> {
        self.ensure_rows(db)?;
        let rows = self.rows.as_ref().expect("materialized");
        let end = (self.idx + max_rows).min(rows.len());
        let out: Vec<ExecRow> =
            rows[self.idx..end].iter().map(|r| ExecRow::new(r.clone())).collect();
        self.idx = end;
        Ok(RowBatch { rows: out })
    }

    fn reset(&mut self, _db: &Exec<'_>) -> Result<()> {
        self.rows = None;
        self.idx = 0;
        Ok(())
    }
}

struct BTreeAccessExec {
    table: String,
    index: String,
    lo: Option<Key>,
    hi: Option<Key>,
    entries: Option<Vec<RowId>>,
    idx: usize,
}

impl BTreeAccessExec {
    fn new(table: String, index: String, lo: Option<Key>, hi: Option<Key>) -> Self {
        BTreeAccessExec { table, index, lo, hi, entries: None, idx: 0 }
    }
}

impl ExecNode for BTreeAccessExec {
    fn next(&mut self, db: &Exec<'_>) -> Result<Option<ExecRow>> {
        if self.entries.is_none() {
            let idef = db
                .catalog
                .btree_index(&self.index)
                .ok_or_else(|| Error::not_found("index", self.index.clone()))?
                .clone();
            // Pad the upper bound with MAX_ROWID so every (key, rowid)
            // entry of the boundary key is included.
            let lo = self.lo.clone();
            let hi = self
                .hi
                .clone()
                .map(|k| Key(k.0.into_iter().chain([Value::RowId(MAX_ROWID)]).collect()));
            let rows =
                db.storage.iot_range_visible(idef.seg, lo.as_ref(), hi.as_ref(), &db.snap)?;
            let mut rids = Vec::with_capacity(rows.len());
            for r in rows {
                rids.push(r[1].as_rowid()?);
            }
            self.entries = Some(rids);
            self.idx = 0;
        }
        // Index entries and base rows are maintained in the same
        // transaction, but the *versions* can diverge mid-statement: an
        // entry visible in the index may point at a base row whose visible
        // image is a different (or no) version — skip those.
        loop {
            let entries = self.entries.as_ref().expect("materialized");
            if self.idx >= entries.len() {
                return Ok(None);
            }
            let rid = entries[self.idx];
            self.idx += 1;
            let tdef = db.catalog.table(&self.table)?;
            let (seg, org) = (tdef.seg, tdef.org.clone());
            let fetched = match org {
                crate::catalog::TableOrg::Heap => {
                    db.storage.heap_fetch_multi_visible(seg, &[rid], &db.snap)?.pop().flatten()
                }
                crate::catalog::TableOrg::Index { .. } => {
                    db.storage.iot_fetch_by_rowid_visible(seg, rid, &db.snap)?
                }
            };
            let Some(mut values) = fetched else { continue };
            values.push(Value::RowId(rid));
            return Ok(Some(ExecRow::new(values)));
        }
    }

    fn reset(&mut self, _db: &Exec<'_>) -> Result<()> {
        self.entries = None;
        self.idx = 0;
        Ok(())
    }
}

/// Plan-time constant rows (COUNT(*) fast path).
struct ConstRowsExec {
    rows: Vec<Vec<Value>>,
    idx: usize,
}

impl ExecNode for ConstRowsExec {
    fn next(&mut self, _db: &Exec<'_>) -> Result<Option<ExecRow>> {
        if self.idx >= self.rows.len() {
            return Ok(None);
        }
        let row = self.rows[self.idx].clone();
        self.idx += 1;
        Ok(Some(ExecRow::new(row)))
    }

    fn reset(&mut self, _db: &Exec<'_>) -> Result<()> {
        self.idx = 0;
        Ok(())
    }
}

/// Single-row fetch by rowid. A rowid pointing at a deleted slot yields
/// no row (stale rowids simply do not match, like Oracle).
struct RowIdEqExec {
    table: String,
    rid: RowId,
    done: bool,
}

impl ExecNode for RowIdEqExec {
    fn next(&mut self, db: &Exec<'_>) -> Result<Option<ExecRow>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;
        let tdef = db.catalog.table(&self.table)?;
        let (seg, org) = (tdef.seg, tdef.org.clone());
        let fetched = match org {
            crate::catalog::TableOrg::Heap => db
                .storage
                .heap_fetch_multi_visible(seg, &[self.rid], &db.snap)
                .ok()
                .and_then(|mut v| v.pop().flatten()),
            crate::catalog::TableOrg::Index { .. } => db
                .storage
                .iot_fetch_by_rowid_visible(seg, self.rid, &db.snap)
                .ok()
                .flatten(),
        };
        match fetched {
            Some(mut values) => {
                values.push(Value::RowId(self.rid));
                Ok(Some(ExecRow::new(values)))
            }
            None => Ok(None),
        }
    }

    fn reset(&mut self, _db: &Exec<'_>) -> Result<()> {
        self.done = false;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// domain-index scan
// ---------------------------------------------------------------------------

/// Drives ODCIIndexStart/Fetch/Close on a cartridge and joins returned
/// rowids to base rows — the server half of Fig. 1's index-access path.
struct DomainScanExec {
    table: String,
    index: String,
    call: OperatorCall,
    label: Option<i64>,
    runtime: Option<(Arc<dyn OdciIndex>, IndexInfo, String)>,
    ctx: Option<ScanContext>,
    /// Rows already joined to the base table, ready to stream out. Whole
    /// `FetchResult` batches are joined at once through
    /// `heap_fetch_multi`, which orders page touches, so the cache sees
    /// each heap page once per batch instead of once per row.
    buffer: VecDeque<ExecRow>,
    fetch_done: bool,
    closed: bool,
}

impl DomainScanExec {
    fn new(table: String, index: String, call: OperatorCall, label: Option<i64>) -> Self {
        DomainScanExec {
            table,
            index,
            call,
            label,
            runtime: None,
            ctx: None,
            buffer: VecDeque::new(),
            fetch_done: false,
            closed: false,
        }
    }

    /// Replace the operator arguments (domain-join parameterization).
    fn set_args(&mut self, args: Vec<Value>) {
        self.call.args = args;
    }

    fn ensure_runtime(&mut self, db: &Exec<'_>) -> Result<()> {
        if self.runtime.is_none() {
            let def = db
                .catalog
                .domain_index(&self.index)
                .ok_or_else(|| Error::not_found("domain index", self.index.clone()))?
                .clone();
            let (index, _, info) = db.domain_index_runtime(&def)?;
            self.runtime = Some((index, info, def.indextype));
        }
        Ok(())
    }

    fn open(&mut self, db: &Exec<'_>) -> Result<()> {
        self.ensure_runtime(db)?;
        let (index, info, indextype) = self.runtime.as_ref().expect("runtime resolved").clone();
        let h = db.trace_event(
            Component::IndexAccess,
            "ODCIIndexStart",
            &indextype,
            format!("{}({} args)", self.call.operator, self.call.args.len()),
        );
        let started = db.sandboxed_odci(
            "ODCIIndexStart",
            &self.index,
            &indextype,
            CallbackMode::Scan,
            None,
            |ctx| index.start(ctx, &info, &self.call),
        );
        db.trace_finish(h);
        let scan_ctx = match started {
            Ok(c) => c,
            Err(e) => {
                // A failed start leaves no scan context to close, but the
                // event stream must still balance Start/Close pairs — the
                // lifecycle invariant tests count events, not contexts.
                db.trace_event(
                    Component::Recovery,
                    "ODCIIndexClose",
                    &indextype,
                    "start failed; no scan context",
                );
                return Err(e);
            }
        };
        self.ctx = Some(scan_ctx);
        self.fetch_done = false;
        self.closed = false;
        self.buffer.clear();
        Ok(())
    }

    fn close(&mut self, db: &Exec<'_>) -> Result<()> {
        if let Some(ctx) = self.ctx.take() {
            if !self.closed {
                let (index, info, indextype) =
                    self.runtime.as_ref().expect("runtime resolved").clone();
                let h = db.trace_event(Component::IndexAccess, "ODCIIndexClose", &indextype, "");
                let r = db.sandboxed_odci(
                    "ODCIIndexClose",
                    &self.index,
                    &indextype,
                    CallbackMode::Scan,
                    None,
                    |sctx| index.close(sctx, &info, ctx),
                );
                db.trace_finish(h);
                self.closed = true;
                r?;
            }
        }
        Ok(())
    }

    /// Best-effort close on the scan's error path. A failed
    /// `ODCIIndexFetch` used to propagate with `?` and leak the
    /// cartridge's scan context without ever calling `ODCIIndexClose`;
    /// this runs the close routine directly — no fault check, recovery is
    /// never sabotaged — and swallows any close failure (traced under
    /// RECOVERY) so the original error wins.
    fn close_on_error(&mut self, db: &Exec<'_>) {
        let Some(ctx) = self.ctx.take() else { return };
        if self.closed {
            return;
        }
        self.closed = true;
        let (index, info, indextype) = self.runtime.as_ref().expect("runtime resolved").clone();
        let h =
            db.trace_event(Component::Recovery, "ODCIIndexClose", &indextype, "error-path close");
        let budget = db.tick_budget();
        let r = sandbox::sandboxed_call(&indextype, "ODCIIndexClose", budget, || {
            db.with_shared_ctx(CallbackMode::Scan, |sctx| index.close(sctx, &info, ctx))
        });
        db.trace_finish(h);
        if let Err(e) = r {
            db.trace_event(Component::Recovery, "CloseFailed", &indextype, e.to_string());
        }
    }
}

impl DomainScanExec {
    /// Drive ODCIIndexFetch until the join buffer holds at least one row
    /// or the scan is exhausted (closing it). Returns whether rows are
    /// buffered — the shared engine under both `next` and `next_batch`.
    fn fill_buffer(&mut self, db: &Exec<'_>) -> Result<bool> {
        if self.ctx.is_none() && !self.closed {
            self.open(db)?;
        }
        loop {
            if !self.buffer.is_empty() {
                return Ok(true);
            }
            if self.fetch_done {
                self.close(db)?;
                return Ok(false);
            }
            let (index, info, indextype) = self.runtime.as_ref().expect("runtime resolved").clone();
            let batch = db.batch_size();
            let h = db.trace_event(
                Component::IndexAccess,
                "ODCIIndexFetch",
                &indextype,
                format!("nrows={batch}"),
            );
            let scan_ctx = self.ctx.as_mut().expect("scan open");
            let fetched = db.sandboxed_odci(
                "ODCIIndexFetch",
                &self.index,
                &indextype,
                CallbackMode::Scan,
                None,
                |sctx| index.fetch(sctx, &info, scan_ctx, batch),
            );
            db.trace_finish(h);
            let result = match fetched {
                Ok(r) => r,
                Err(e) => {
                    // Don't leak the cartridge scan context: close it
                    // best-effort before surfacing the fetch error.
                    self.close_on_error(db);
                    return Err(e);
                }
            };
            self.fetch_done = result.done;
            if result.rows.is_empty() {
                continue;
            }
            // Deliberate, test-armed bug: lose the scan's final batch.
            // The differential oracle must catch this (ISSUE acceptance).
            if result.done && db.chaos_drop_last_domain_batch {
                continue;
            }
            // Join the whole fetch batch at once: one page-ordered
            // multi-fetch instead of a heap_fetch per rowid.
            let tdef = db.catalog.table(&self.table)?;
            let (seg, org) = (tdef.seg, tdef.org.clone());
            let rids: Vec<RowId> = result.rows.iter().map(|fr| fr.rowid).collect();
            // Visibility-aware join: a rowid the cartridge streams back
            // may resolve to an older displaced version under this
            // snapshot, or to nothing at all (version not yet visible) —
            // invisible rowids are silently skipped, like a non-match.
            let joined = match org {
                crate::catalog::TableOrg::Heap => {
                    db.storage.heap_fetch_multi_visible(seg, &rids, &db.snap)?
                }
                crate::catalog::TableOrg::Index { .. } => {
                    db.storage.iot_fetch_multi_visible(seg, &rids, &db.snap)?
                }
            };
            for (fr, values) in result.rows.into_iter().zip(joined) {
                let Some(mut values) = values else { continue };
                values.push(Value::RowId(fr.rowid));
                let mut row = ExecRow::new(values);
                if let (Some(label), Some(v)) = (self.label, fr.ancillary) {
                    row.ancillary.push((label, v));
                }
                self.buffer.push_back(row);
            }
        }
    }
}

impl ExecNode for DomainScanExec {
    fn next(&mut self, db: &Exec<'_>) -> Result<Option<ExecRow>> {
        if self.fill_buffer(db)? {
            Ok(self.buffer.pop_front())
        } else {
            Ok(None)
        }
    }

    fn next_batch(&mut self, db: &Exec<'_>, max_rows: usize) -> Result<RowBatch> {
        // The rowid→row join already happened a whole ODCIIndexFetch
        // batch at a time (`heap_fetch_multi`); hand that work out
        // wholesale instead of draining it row by row.
        if !self.fill_buffer(db)? {
            return Ok(RowBatch::default());
        }
        let k = self.buffer.len().min(max_rows);
        Ok(RowBatch { rows: self.buffer.drain(..k).collect() })
    }

    fn reset(&mut self, db: &Exec<'_>) -> Result<()> {
        self.close(db)?;
        self.ctx = None;
        self.closed = false;
        self.fetch_done = false;
        self.buffer.clear();
        Ok(())
    }

    fn abandon(&mut self, db: &Exec<'_>) {
        self.close_on_error(db);
    }
}

// ---------------------------------------------------------------------------
// joins
// ---------------------------------------------------------------------------

struct NestedLoopJoinExec {
    left: Box<dyn ExecNode>,
    right: Box<dyn ExecNode>,
    pred: Option<RExpr>,
    current: Option<ExecRow>,
    started: bool,
}

impl ExecNode for NestedLoopJoinExec {
    fn next(&mut self, db: &Exec<'_>) -> Result<Option<ExecRow>> {
        loop {
            if self.current.is_none() {
                match self.left.next(db)? {
                    Some(l) => {
                        self.current = Some(l);
                        if self.started {
                            self.right.reset(db)?;
                        }
                        self.started = true;
                    }
                    None => return Ok(None),
                }
            }
            match self.right.next(db)? {
                Some(r) => {
                    let left = self.current.as_ref().expect("outer row present");
                    let mut values = left.values.clone();
                    values.extend(r.values);
                    let mut row = ExecRow::new(values);
                    row.ancillary.extend(left.ancillary.iter().cloned());
                    row.ancillary.extend(r.ancillary);
                    if let Some(pred) = &self.pred {
                        let ctx = EvalCtx { catalog: &db.catalog, storage: &db.storage, snap: db.snap };
                        if !filter_accepts(&eval(pred, &row, &ctx)?) {
                            continue;
                        }
                    }
                    return Ok(Some(row));
                }
                None => {
                    self.current = None;
                }
            }
        }
    }

    fn reset(&mut self, db: &Exec<'_>) -> Result<()> {
        self.left.reset(db)?;
        self.right.reset(db)?;
        self.current = None;
        self.started = false;
        Ok(())
    }

    fn abandon(&mut self, db: &Exec<'_>) {
        self.left.abandon(db);
        self.right.abandon(db);
    }
}

/// Nested loop whose inner side is a parameterized domain scan: the outer
/// row's values become the operator's arguments (spatial-join pattern).
struct DomainJoinExec {
    left: Box<dyn ExecNode>,
    scan: DomainScanExec,
    arg_exprs: Vec<RExpr>,
    current: Option<ExecRow>,
}

impl ExecNode for DomainJoinExec {
    fn next(&mut self, db: &Exec<'_>) -> Result<Option<ExecRow>> {
        loop {
            if self.current.is_none() {
                match self.left.next(db)? {
                    Some(l) => {
                        let args: Vec<Value> = {
                            let ctx = EvalCtx { catalog: &db.catalog, storage: &db.storage, snap: db.snap };
                            self.arg_exprs
                                .iter()
                                .map(|e| eval(e, &l, &ctx))
                                .collect::<Result<_>>()?
                        };
                        self.scan.reset(db)?;
                        self.scan.set_args(args);
                        self.current = Some(l);
                    }
                    None => return Ok(None),
                }
            }
            match self.scan.next(db)? {
                Some(r) => {
                    let left = self.current.as_ref().expect("outer row present");
                    let mut values = left.values.clone();
                    values.extend(r.values);
                    let mut row = ExecRow::new(values);
                    row.ancillary.extend(left.ancillary.iter().cloned());
                    row.ancillary.extend(r.ancillary);
                    return Ok(Some(row));
                }
                None => {
                    self.current = None;
                }
            }
        }
    }

    fn reset(&mut self, db: &Exec<'_>) -> Result<()> {
        self.left.reset(db)?;
        self.scan.reset(db)?;
        self.current = None;
        Ok(())
    }

    fn abandon(&mut self, db: &Exec<'_>) {
        self.left.abandon(db);
        self.scan.abandon(db);
    }
}

struct HashJoinExec {
    left: Box<dyn ExecNode>,
    right: Box<dyn ExecNode>,
    left_key: RExpr,
    right_key: RExpr,
    extra_pred: Option<RExpr>,
    /// Build side (right input) keyed by join key.
    table: Option<BTreeMap<Key, Vec<ExecRow>>>,
    pending: VecDeque<ExecRow>,
}

impl ExecNode for HashJoinExec {
    fn next(&mut self, db: &Exec<'_>) -> Result<Option<ExecRow>> {
        if self.table.is_none() {
            let mut table: BTreeMap<Key, Vec<ExecRow>> = BTreeMap::new();
            while let Some(r) = self.right.next(db)? {
                // Build side is a pipeline breaker — deadline per row.
                extidx_core::governor::poll()?;
                let key = {
                    let ctx = EvalCtx { catalog: &db.catalog, storage: &db.storage, snap: db.snap };
                    eval(&self.right_key, &r, &ctx)?
                };
                if key.is_null() {
                    continue; // NULL keys never join
                }
                table.entry(Key::single(key)).or_default().push(r);
            }
            self.table = Some(table);
        }
        loop {
            if let Some(row) = self.pending.pop_front() {
                return Ok(Some(row));
            }
            let left = match self.left.next(db)? {
                Some(l) => l,
                None => return Ok(None),
            };
            let key = {
                let ctx = EvalCtx { catalog: &db.catalog, storage: &db.storage, snap: db.snap };
                eval(&self.left_key, &left, &ctx)?
            };
            if key.is_null() {
                continue;
            }
            if let Some(matches) = self.table.as_ref().expect("built").get(&Key::single(key)) {
                for m in matches {
                    let mut values = left.values.clone();
                    values.extend(m.values.iter().cloned());
                    let mut row = ExecRow::new(values);
                    row.ancillary.extend(left.ancillary.iter().cloned());
                    row.ancillary.extend(m.ancillary.iter().cloned());
                    if let Some(pred) = &self.extra_pred {
                        let ctx = EvalCtx { catalog: &db.catalog, storage: &db.storage, snap: db.snap };
                        if !filter_accepts(&eval(pred, &row, &ctx)?) {
                            continue;
                        }
                    }
                    self.pending.push_back(row);
                }
            }
        }
    }

    fn reset(&mut self, db: &Exec<'_>) -> Result<()> {
        self.left.reset(db)?;
        self.right.reset(db)?;
        self.table = None;
        self.pending.clear();
        Ok(())
    }

    fn abandon(&mut self, db: &Exec<'_>) {
        self.left.abandon(db);
        self.right.abandon(db);
    }
}

// ---------------------------------------------------------------------------
// row transforms
// ---------------------------------------------------------------------------

struct FilterExec {
    input: Box<dyn ExecNode>,
    /// Conjuncts in optimizer-chosen (cost-ordered) evaluation order.
    terms: Vec<FilterTerm>,
}

impl FilterExec {
    /// Kleene-AND over the ordered terms, short-circuiting at the first
    /// non-TRUE (FALSE or NULL) result — sound under any term order,
    /// since three-valued AND is commutative and a row qualifies only
    /// when every conjunct is TRUE.
    fn accepts(&self, row: &ExecRow, ctx: &EvalCtx) -> Result<bool> {
        for t in &self.terms {
            if !filter_accepts(&eval(&t.pred, row, ctx)?) {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

impl ExecNode for FilterExec {
    fn next(&mut self, db: &Exec<'_>) -> Result<Option<ExecRow>> {
        while let Some(row) = self.input.next(db)? {
            let ctx = EvalCtx { catalog: &db.catalog, storage: &db.storage, snap: db.snap };
            if self.accepts(&row, &ctx)? {
                return Ok(Some(row));
            }
        }
        Ok(None)
    }

    fn next_batch(&mut self, db: &Exec<'_>, max_rows: usize) -> Result<RowBatch> {
        // Keep pulling input batches until at least one row survives (or
        // the input is exhausted) — an empty batch means "done" upstream.
        loop {
            let batch = self.input.next_batch(db, max_rows)?;
            if batch.rows.is_empty() {
                return Ok(batch);
            }
            let ctx = EvalCtx { catalog: &db.catalog, storage: &db.storage, snap: db.snap };
            let mut out = Vec::with_capacity(batch.rows.len());
            for row in batch.rows {
                if self.accepts(&row, &ctx)? {
                    out.push(row);
                }
            }
            if !out.is_empty() {
                return Ok(RowBatch { rows: out });
            }
        }
    }

    fn reset(&mut self, db: &Exec<'_>) -> Result<()> {
        self.input.reset(db)
    }

    fn abandon(&mut self, db: &Exec<'_>) {
        self.input.abandon(db);
    }
}

struct ProjectExec {
    input: Box<dyn ExecNode>,
    exprs: Vec<RExpr>,
}

impl ExecNode for ProjectExec {
    fn next(&mut self, db: &Exec<'_>) -> Result<Option<ExecRow>> {
        match self.input.next(db)? {
            Some(row) => {
                let ctx = EvalCtx { catalog: &db.catalog, storage: &db.storage, snap: db.snap };
                let values: Vec<Value> =
                    self.exprs.iter().map(|e| eval(e, &row, &ctx)).collect::<Result<_>>()?;
                let mut out = ExecRow::new(values);
                out.ancillary = row.ancillary;
                Ok(Some(out))
            }
            None => Ok(None),
        }
    }

    fn next_batch(&mut self, db: &Exec<'_>, max_rows: usize) -> Result<RowBatch> {
        let batch = self.input.next_batch(db, max_rows)?;
        let ctx = EvalCtx { catalog: &db.catalog, storage: &db.storage, snap: db.snap };
        let mut rows = Vec::with_capacity(batch.rows.len());
        for row in batch.rows {
            let values: Vec<Value> =
                self.exprs.iter().map(|e| eval(e, &row, &ctx)).collect::<Result<_>>()?;
            let mut out = ExecRow::new(values);
            out.ancillary = row.ancillary;
            rows.push(out);
        }
        Ok(RowBatch { rows })
    }

    fn reset(&mut self, db: &Exec<'_>) -> Result<()> {
        self.input.reset(db)
    }

    fn abandon(&mut self, db: &Exec<'_>) {
        self.input.abandon(db);
    }
}

struct SortExec {
    input: Box<dyn ExecNode>,
    keys: Vec<(RExpr, bool)>,
    sorted: Option<VecDeque<ExecRow>>,
}

impl ExecNode for SortExec {
    fn next(&mut self, db: &Exec<'_>) -> Result<Option<ExecRow>> {
        if self.sorted.is_none() {
            let mut rows: Vec<(Vec<Value>, ExecRow)> = Vec::new();
            while let Some(r) = self.input.next(db)? {
                // Pipeline breaker: the whole input drains inside this one
                // `next` call, so the statement deadline is charged per
                // row here rather than at the (never-reached) top level.
                extidx_core::governor::poll()?;
                let ctx = EvalCtx { catalog: &db.catalog, storage: &db.storage, snap: db.snap };
                let key: Vec<Value> =
                    self.keys.iter().map(|(e, _)| eval(e, &r, &ctx)).collect::<Result<_>>()?;
                rows.push((key, r));
            }
            let dirs: Vec<bool> = self.keys.iter().map(|(_, d)| *d).collect();
            rows.sort_by(|(a, _), (b, _)| {
                for ((x, y), desc) in a.iter().zip(b.iter()).zip(&dirs) {
                    let ord = x.total_cmp(y);
                    let ord = if *desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            self.sorted = Some(rows.into_iter().map(|(_, r)| r).collect());
        }
        Ok(self.sorted.as_mut().expect("sorted").pop_front())
    }

    fn reset(&mut self, db: &Exec<'_>) -> Result<()> {
        self.sorted = None;
        self.input.reset(db)
    }

    fn abandon(&mut self, db: &Exec<'_>) {
        self.input.abandon(db);
    }
}

struct LimitExec {
    input: Box<dyn ExecNode>,
    n: u64,
    produced: u64,
}

impl ExecNode for LimitExec {
    fn next(&mut self, db: &Exec<'_>) -> Result<Option<ExecRow>> {
        if self.produced >= self.n {
            // Give scans beneath a chance to close their ODCI contexts.
            self.input.reset(db)?;
            return Ok(None);
        }
        match self.input.next(db)? {
            Some(r) => {
                self.produced += 1;
                Ok(Some(r))
            }
            None => Ok(None),
        }
    }

    fn next_batch(&mut self, db: &Exec<'_>, max_rows: usize) -> Result<RowBatch> {
        if self.produced >= self.n {
            // Give scans beneath a chance to close their ODCI contexts.
            self.input.reset(db)?;
            return Ok(RowBatch::default());
        }
        // Push the remaining quota down as the batch size, so the child
        // never produces rows past the limit (batch early termination).
        let want = ((self.n - self.produced) as usize).min(max_rows);
        let batch = self.input.next_batch(db, want)?;
        self.produced += batch.rows.len() as u64;
        Ok(batch)
    }

    fn reset(&mut self, db: &Exec<'_>) -> Result<()> {
        self.produced = 0;
        self.input.reset(db)
    }

    fn abandon(&mut self, db: &Exec<'_>) {
        self.input.abandon(db);
    }
}

struct DistinctExec {
    input: Box<dyn ExecNode>,
    seen: BTreeMap<Key, ()>,
}

impl ExecNode for DistinctExec {
    fn next(&mut self, db: &Exec<'_>) -> Result<Option<ExecRow>> {
        while let Some(r) = self.input.next(db)? {
            let key = Key(r.values.clone());
            if self.seen.insert(key, ()).is_none() {
                return Ok(Some(r));
            }
        }
        Ok(None)
    }

    fn reset(&mut self, db: &Exec<'_>) -> Result<()> {
        self.seen.clear();
        self.input.reset(db)
    }

    fn abandon(&mut self, db: &Exec<'_>) {
        self.input.abandon(db);
    }
}

// ---------------------------------------------------------------------------
// aggregation
// ---------------------------------------------------------------------------

#[derive(Clone)]
struct AggState {
    kind: AggKind,
    count: u64,
    sum: f64,
    min: Option<Value>,
    max: Option<Value>,
}

impl AggState {
    fn new(kind: AggKind) -> Self {
        AggState { kind, count: 0, sum: 0.0, min: None, max: None }
    }

    fn update(&mut self, v: Option<&Value>) -> Result<()> {
        match v {
            None => {
                // COUNT(*): every row counts.
                self.count += 1;
            }
            Some(Value::Null) => {}
            Some(v) => {
                self.count += 1;
                match self.kind {
                    AggKind::Sum | AggKind::Avg => self.sum += v.as_number()?,
                    AggKind::Min => {
                        let lower = self
                            .min
                            .as_ref()
                            .map(|m| v.total_cmp(m) == std::cmp::Ordering::Less)
                            .unwrap_or(true);
                        if lower {
                            self.min = Some(v.clone());
                        }
                    }
                    AggKind::Max => {
                        let higher = self
                            .max
                            .as_ref()
                            .map(|m| v.total_cmp(m) == std::cmp::Ordering::Greater)
                            .unwrap_or(true);
                        if higher {
                            self.max = Some(v.clone());
                        }
                    }
                    AggKind::Count => {}
                }
            }
        }
        Ok(())
    }

    fn finish(&self) -> Value {
        match self.kind {
            AggKind::Count => Value::Integer(self.count as i64),
            AggKind::Sum => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Number(self.sum)
                }
            }
            AggKind::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Number(self.sum / self.count as f64)
                }
            }
            AggKind::Min => self.min.clone().unwrap_or(Value::Null),
            AggKind::Max => self.max.clone().unwrap_or(Value::Null),
        }
    }
}

struct AggregateExec {
    input: Box<dyn ExecNode>,
    group: Vec<RExpr>,
    aggs: Vec<(AggKind, Option<RExpr>)>,
    output: Option<VecDeque<ExecRow>>,
}

impl ExecNode for AggregateExec {
    fn next(&mut self, db: &Exec<'_>) -> Result<Option<ExecRow>> {
        if self.output.is_none() {
            // Group order: first-seen, tracked separately from the map.
            let mut groups: BTreeMap<Key, Vec<AggState>> = BTreeMap::new();
            let mut order: Vec<Key> = Vec::new();
            let mut any_row = false;
            while let Some(r) = self.input.next(db)? {
                // Pipeline breaker — deadline charged per drained row.
                extidx_core::governor::poll()?;
                any_row = true;
                let ctx = EvalCtx { catalog: &db.catalog, storage: &db.storage, snap: db.snap };
                let key_vals: Vec<Value> =
                    self.group.iter().map(|e| eval(e, &r, &ctx)).collect::<Result<_>>()?;
                let key = Key(key_vals);
                let states = match groups.get_mut(&key) {
                    Some(s) => s,
                    None => {
                        order.push(key.clone());
                        groups
                            .entry(key.clone())
                            .or_insert_with(|| self.aggs.iter().map(|(k, _)| AggState::new(*k)).collect())
                    }
                };
                for ((_, arg), state) in self.aggs.iter().zip(states.iter_mut()) {
                    match arg {
                        None => state.update(None)?,
                        Some(e) => {
                            let v = eval(e, &r, &ctx)?;
                            state.update(Some(&v))?;
                        }
                    }
                }
            }
            // Global aggregate over zero rows still yields one group.
            if !any_row && self.group.is_empty() {
                groups.insert(
                    Key(vec![]),
                    self.aggs.iter().map(|(k, _)| AggState::new(*k)).collect(),
                );
                order.push(Key(vec![]));
            }
            let mut out = VecDeque::with_capacity(order.len());
            for key in order {
                let states = &groups[&key];
                let mut values = key.0.clone();
                values.extend(states.iter().map(|s| s.finish()));
                out.push_back(ExecRow::new(values));
            }
            self.output = Some(out);
        }
        Ok(self.output.as_mut().expect("aggregated").pop_front())
    }

    fn reset(&mut self, db: &Exec<'_>) -> Result<()> {
        self.output = None;
        self.input.reset(db)
    }

    fn abandon(&mut self, db: &Exec<'_>) {
        self.input.abandon(db);
    }
}

// Re-export for the optimizer's BinOp usage in key matching (avoids an
// unused-import warning when compiled standalone).
#[allow(unused)]
fn _uses(_: BinOp, _: PredicateBound) {}
