//! The storage engine façade.
//!
//! [`StorageEngine`] owns every segment (heap tables, IOTs, the LOB
//! segment) plus the buffer cache, the undo machinery, and the *external*
//! file store. All mutating access flows through it so that:
//!
//! 1. every page touch is charged to the [`BufferCache`],
//! 2. every database-resident mutation is recorded in the caller's
//!    [`UndoLog`] (when one is active),
//! 3. external-file operations are *not* recorded — reproducing the
//!    paper's §5 transactional limitation for outside-the-database index
//!    data.

use std::collections::HashMap;
use std::ops::Bound;
use std::sync::Arc;

use extidx_common::{Error, Key, LobRef, Result, Row, RowId};

use crate::buffer::{BufferCache, CacheStats};
use crate::file_store::FileStore;
use crate::heap::HeapTable;
use crate::iot::IndexOrganizedTable;
use crate::lob::LobStore;
use crate::mvcc::{
    self, HeapVersion, IotCurrent, IotVersion, LobChain, LobImage, LobSpanVersion, Snapshot,
    TxnManager, TxnStatus, VersionStore, WriteKey, WriteRef, WHOLE_LOB,
};
use crate::page::{SegmentId, PAGE_SIZE};
use crate::undo::{UndoLog, UndoOp};
use crate::wal::{DurableMedium, EngineSnapshot, WalRecord};

/// Synthetic segment id under which LOB pages are charged to the cache.
const LOB_SEGMENT: SegmentId = SegmentId(u32::MAX);

/// Default buffer-cache capacity in pages (≈ 64 MiB at 8 KiB/page).
pub const DEFAULT_CACHE_PAGES: usize = 8192;

/// Lifetime counters for the incremental vacuum, surfaced by `V$MVCC`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VacuumStats {
    /// Incremental vacuum passes run.
    pub runs: u64,
    /// Displaced versions (heap/IOT rows, LOB spans) pruned.
    pub versions_pruned: u64,
    /// Dead heap slots physically reclaimed.
    pub slots_reclaimed: u64,
    /// Whole chains dropped (drained to trivial or reclaimed).
    pub chains_dropped: u64,
}

/// The storage engine: all segments plus cache, undo, and external files.
pub struct StorageEngine {
    cache: BufferCache,
    heaps: HashMap<SegmentId, HeapTable>,
    iots: HashMap<SegmentId, IndexOrganizedTable>,
    lobs: LobStore,
    files: FileStore,
    next_segment: u32,
    /// When attached, every mutation appends a redo record here *before*
    /// applying (write-ahead rule) and external-file ops write through to
    /// the medium's file mirror.
    wal: Option<DurableMedium>,
    /// Transaction manager shared with every session of the database.
    txns: Arc<TxnManager>,
    /// Snapshot of the transaction currently driving mutations. Txn 0 is
    /// the legacy single-session/autocommit lane: no version chains are
    /// created and every path behaves exactly as before MVCC.
    current: Snapshot,
    /// First-writer-wins enforcement knob. Turned off only by the
    /// differential oracle to demonstrate that it catches lost updates.
    conflict_checks: bool,
    /// Incremental-vacuum knob. On (default): every vacuum call prunes
    /// against the oldest-active-snapshot horizon. Off: the PR 8
    /// quiescence-only behavior — chains drain only when no transaction is
    /// active (the ablation baseline for the E18 experiment).
    incremental_vacuum: bool,
    /// LOB conflict-granularity knob. On (default): LOB writes conflict
    /// per byte range. Off: every LOB write is treated as a whole-locator
    /// write for conflict purposes — the PR 8 serialized-maintenance
    /// baseline (visibility stays span-exact either way).
    lob_span_conflicts: bool,
    /// Lifetime incremental-vacuum counters (V$MVCC).
    vacuum_stats: VacuumStats,
    /// Overlay version chains; empty whenever nothing concurrent is live.
    versions: VersionStore,
}

impl Default for StorageEngine {
    fn default() -> Self {
        Self::new(DEFAULT_CACHE_PAGES)
    }
}

impl StorageEngine {
    /// Engine with a cache of `cache_pages` pages.
    pub fn new(cache_pages: usize) -> Self {
        StorageEngine {
            cache: BufferCache::new(cache_pages),
            heaps: HashMap::new(),
            iots: HashMap::new(),
            lobs: LobStore::new(),
            files: FileStore::new(),
            next_segment: 1,
            wal: None,
            txns: Arc::new(TxnManager::default()),
            current: Snapshot::latest(),
            conflict_checks: true,
            incremental_vacuum: true,
            lob_span_conflicts: true,
            vacuum_stats: VacuumStats::default(),
            versions: VersionStore::default(),
        }
    }

    // ----- transactions -----------------------------------------------------

    /// The shared transaction manager (sessions begin/commit through it).
    pub fn txn_manager(&self) -> Arc<TxnManager> {
        Arc::clone(&self.txns)
    }

    /// Install the snapshot whose transaction drives subsequent mutations
    /// and latest-visibility reads. `Snapshot::latest()` (txn 0) restores
    /// the legacy lane.
    pub fn set_current_txn(&mut self, snap: Snapshot) {
        self.current = snap;
    }

    /// Id of the transaction currently driving mutations (0 = legacy lane).
    pub fn current_txn(&self) -> u64 {
        self.current.txn
    }

    /// Snapshot of the transaction currently driving mutations.
    pub fn current_snapshot(&self) -> Snapshot {
        self.current
    }

    /// Toggle first-writer-wins enforcement (early conflict detection and
    /// commit-time validation). Structural conflicts between two *active*
    /// writers are always rejected regardless — overlay MVCC cannot hold
    /// two uncommitted in-place versions of one row.
    pub fn set_conflict_checks(&mut self, on: bool) {
        self.conflict_checks = on;
    }

    /// Whether first-writer-wins enforcement is on.
    pub fn conflict_checks(&self) -> bool {
        self.conflict_checks
    }

    /// True when any version chain exists for the segment (fast gate for
    /// scan paths: no chains ⇒ every physical row is visible to every
    /// snapshot and legacy code paths are exact).
    pub fn segment_has_chains(&self, seg: SegmentId) -> bool {
        self.versions.heap.get(&seg).is_some_and(|m| !m.is_empty())
            || self.versions.iot.get(&seg).is_some_and(|m| !m.is_empty())
    }

    /// Toggle incremental vacuum (on by default). Off restores the PR 8
    /// quiescence-only behavior for ablation benchmarks.
    pub fn set_incremental_vacuum(&mut self, on: bool) {
        self.incremental_vacuum = on;
    }

    /// Whether incremental vacuum is on.
    pub fn incremental_vacuum(&self) -> bool {
        self.incremental_vacuum
    }

    /// Toggle byte-range LOB conflict granularity (on by default). Off
    /// treats every LOB write as a whole-locator conflict — the serialized
    /// same-index-maintenance baseline.
    pub fn set_lob_span_conflicts(&mut self, on: bool) {
        self.lob_span_conflicts = on;
    }

    /// Whether LOB conflicts are byte-range granular.
    pub fn lob_span_conflicts(&self) -> bool {
        self.lob_span_conflicts
    }

    /// Lifetime incremental-vacuum counters.
    pub fn vacuum_stats(&self) -> VacuumStats {
        self.vacuum_stats
    }

    /// The oldest-active-snapshot horizon the next vacuum would prune to.
    pub fn vacuum_horizon(&self) -> u64 {
        self.txns.horizon()
    }

    /// Per-segment MVCC chain statistics for `V$MVCC`: `(label, chains,
    /// versions)` where `versions` counts displaced images held beyond the
    /// in-place one (heap/IOT rows, LOB span patches). LOB chains
    /// aggregate under one `LOB` row; ordering is deterministic.
    pub fn mvcc_segment_stats(&self) -> Vec<(String, usize, usize)> {
        let mut out: Vec<(String, usize, usize)> = Vec::new();
        let mut heap_segs: Vec<_> =
            self.versions.heap.iter().filter(|(_, m)| !m.is_empty()).collect();
        heap_segs.sort_by_key(|(s, _)| s.0);
        for (seg, m) in heap_segs {
            let versions = m.values().map(|c| c.version_count()).sum();
            out.push((format!("HEAP:{}", seg.0), m.len(), versions));
        }
        let mut iot_segs: Vec<_> =
            self.versions.iot.iter().filter(|(_, m)| !m.is_empty()).collect();
        iot_segs.sort_by_key(|(s, _)| s.0);
        for (seg, m) in iot_segs {
            let versions = m.values().map(|c| c.version_count()).sum();
            out.push((format!("IOT:{}", seg.0), m.len(), versions));
        }
        if !self.versions.lobs.is_empty() {
            let versions = self.versions.lobs.values().map(|c| c.version_count()).sum();
            out.push(("LOB".to_string(), self.versions.lobs.len(), versions));
        }
        out
    }

    /// Garbage-collect version chains and commit history.
    ///
    /// Incremental mode (default): keyed to the *oldest active snapshot*
    /// horizon — the smallest snapshot high among live transactions, or
    /// the next CSN at quiescence. A displaced version whose end stamp
    /// committed at or below the horizon is invisible to every live and
    /// future snapshot (they all see a newer one instead) and is pruned;
    /// an in-place version whose delete mark committed at or below the
    /// horizon is physically reclaimed — the rowid becomes reusable
    /// exactly when no snapshot can see the old row, preserving the
    /// no-rowid-reuse guarantee for live snapshots. Runs on every
    /// commit/rollback, so chains stay bounded without quiescence.
    ///
    /// Quiescence mode (`set_incremental_vacuum(false)`, the PR 8
    /// baseline): only acts when no transaction is active, then clears
    /// everything.
    pub fn vacuum(&mut self) {
        if !self.incremental_vacuum {
            self.vacuum_at_quiescence();
            return;
        }
        let txns = Arc::clone(&self.txns);
        let horizon = txns.horizon();
        // A stamp is "settled" when its writer committed at or below the
        // horizon: every live snapshot has high ≥ horizon, so all of them
        // (and every future snapshot) see that commit.
        let settled = |stamp: u64| txns.committed_csn(stamp).is_some_and(|csn| csn <= horizon);
        let aborted = |stamp: u64| matches!(txns.status(stamp), Some(TxnStatus::Aborted));

        let mut pruned = 0u64;
        let mut dropped = 0u64;
        let mut reclaim: Vec<(SegmentId, RowId)> = Vec::new();

        for (&seg, chains) in self.versions.heap.iter_mut() {
            chains.retain(|&rid, chain| {
                if chain.dead.is_some_and(&settled) {
                    // The delete is settled: no snapshot can see this row
                    // or any displaced version under it.
                    pruned += chain.older.len() as u64;
                    dropped += 1;
                    reclaim.push((seg, rid));
                    return false;
                }
                let before = chain.older.len();
                chain.older.retain(|v| !settled(v.end) && !aborted(v.begin));
                pruned += (before - chain.older.len()) as u64;
                if chain.begin != 0 && settled(chain.begin) {
                    chain.begin = 0; // in-place version now visible to all
                }
                if chain.is_trivial() {
                    dropped += 1;
                    return false;
                }
                true
            });
        }
        self.versions.heap.retain(|_, m| !m.is_empty());

        for chains in self.versions.iot.values_mut() {
            chains.retain(|_, chain| {
                let before = chain.older.len();
                chain.older.retain(|v| !settled(v.end) && !aborted(v.begin));
                pruned += (before - chain.older.len()) as u64;
                if let Some(cur) = &mut chain.current {
                    if cur.begin != 0 && settled(cur.begin) {
                        cur.begin = 0;
                    }
                }
                if chain.is_trivial() {
                    dropped += 1;
                    return false;
                }
                true
            });
        }
        self.versions.iot.retain(|_, m| !m.is_empty());

        self.versions.lobs.retain(|_, chain| {
            let before = chain.spans.len();
            chain.spans.retain(|v| !settled(v.by) && !aborted(v.by));
            pruned += (before - chain.spans.len()) as u64;
            if chain.begin != 0 && (settled(chain.begin) || aborted(chain.begin)) {
                chain.begin = 0;
            }
            if chain.is_trivial() {
                dropped += 1;
                return false;
            }
            true
        });

        // Physically reclaim settled-dead slots in deterministic order so
        // repeated runs produce identical free-list state.
        reclaim.sort_by_key(|&(s, r)| (s.0, r.page, r.slot));
        let mut touched: Vec<SegmentId> = Vec::new();
        for (seg, rid) in reclaim {
            if let Some(h) = self.heaps.get_mut(&seg) {
                if h.delete(rid).is_ok() {
                    self.vacuum_stats.slots_reclaimed += 1;
                    self.cache.write((seg, rid.page));
                    if !touched.contains(&seg) {
                        touched.push(seg);
                    }
                }
            }
        }
        // A reclaim that emptied a page rebuilt that page's zone entry
        // exactly; re-widen with any chain-held displaced rows so the
        // superset invariant keeps covering them.
        for seg in touched {
            self.widen_zones_with_chains(seg);
        }

        self.vacuum_stats.runs += 1;
        self.vacuum_stats.versions_pruned += pruned;
        self.vacuum_stats.chains_dropped += dropped;

        // Commit-history pruning: keep statuses of active transactions and
        // of any stamp a surviving chain still references; keep committed
        // write-set entries above the horizon (first-writer-wins
        // validation still needs them for in-flight snapshots).
        self.txns.prune_history(horizon, &self.versions.referenced_stamps());
    }

    /// The PR 8 quiescence-only vacuum (ablation baseline): frees heap
    /// slots with committed delete marks, drops every chain, and forgets
    /// commit history — but only when no transaction is active.
    fn vacuum_at_quiescence(&mut self) {
        if self.txns.active_count() != 0 {
            return;
        }
        let mut dead: Vec<(SegmentId, RowId)> = Vec::new();
        for (&seg, chains) in &self.versions.heap {
            for (&rid, chain) in chains {
                if chain.dead.is_some_and(|d| self.txns.committed_csn(d).is_some()) {
                    dead.push((seg, rid));
                }
            }
        }
        // Deterministic free order so repeated runs produce identical
        // free-list state.
        dead.sort_by_key(|&(s, r)| (s.0, r.page, r.slot));
        for (seg, rid) in dead {
            if let Some(h) = self.heaps.get_mut(&seg) {
                let _ = h.delete(rid);
                self.cache.write((seg, rid.page));
            }
        }
        self.versions.heap.clear();
        self.versions.iot.clear();
        self.versions.lobs.clear();
        self.txns.forget_history();
    }

    /// Structural + early conflict check for a heap row write.
    fn check_heap_write(&self, seg: SegmentId, rid: RowId) -> Result<()> {
        let t = self.current.txn;
        if t == 0 {
            return Ok(());
        }
        if let Some(chain) = self.versions.heap_chain(seg, rid) {
            for stamp in [Some(chain.begin), chain.dead].into_iter().flatten() {
                if stamp != 0 && stamp != t && self.txns.is_active(stamp) {
                    return Err(Error::write_conflict(
                        stamp,
                        format!("heap rowid {rid} in {seg}"),
                        format!(
                            "txn {t}: heap row {rid} in {seg} has an uncommitted version from txn {stamp}"
                        ),
                    ));
                }
            }
        }
        if self.conflict_checks {
            let wref = WriteRef { seg, key: WriteKey::Rid(rid) };
            if let Some((csn, winner)) = self.txns.committed_writer(&wref) {
                if csn > self.current.high {
                    return Err(Error::write_conflict(
                        winner,
                        format!("heap rowid {rid} in {seg}"),
                        format!(
                            "txn {t}: heap row {rid} in {seg} was committed by txn {winner} at csn {csn}, after this snapshot (high {})",
                            self.current.high
                        ),
                    ));
                }
            }
        }
        Ok(())
    }

    /// Structural + early conflict check for an IOT key write.
    fn check_iot_write(&self, seg: SegmentId, key: &Key) -> Result<()> {
        let t = self.current.txn;
        if t == 0 {
            return Ok(());
        }
        if let Some(chain) = self.versions.iot_chain(seg, key) {
            let stamps = chain
                .current
                .as_ref()
                .map(|c| c.begin)
                .into_iter()
                .chain(chain.older.first().map(|v| v.end));
            for stamp in stamps {
                if stamp != 0 && stamp != t && self.txns.is_active(stamp) {
                    return Err(Error::write_conflict(
                        stamp,
                        format!("iot key {key} in {seg}"),
                        format!(
                            "txn {t}: IOT key {key} in {seg} has an uncommitted version from txn {stamp}"
                        ),
                    ));
                }
            }
        }
        if self.conflict_checks {
            let wref = WriteRef { seg, key: WriteKey::Key(key.clone()) };
            if let Some((csn, winner)) = self.txns.committed_writer(&wref) {
                if csn > self.current.high {
                    return Err(Error::write_conflict(
                        winner,
                        format!("iot key {key} in {seg}"),
                        format!(
                            "txn {t}: IOT key {key} in {seg} was committed by txn {winner} at csn {csn}, after this snapshot (high {})",
                            self.current.high
                        ),
                    ));
                }
            }
        }
        Ok(())
    }

    /// The byte range a LOB write of `len` bytes at `start` conflicts on.
    /// `len == WHOLE_LOB` marks a whole-locator operation (overwrite,
    /// free). With the granularity knob off every write widens to the
    /// whole locator, restoring serialized same-index maintenance.
    fn lob_conflict_span(&self, start: u64, len: u64) -> (u64, u64) {
        if !self.lob_span_conflicts || len == WHOLE_LOB {
            return (0, WHOLE_LOB);
        }
        (start, start.saturating_add(len))
    }

    /// Structural + early conflict check for a LOB write of `len` bytes at
    /// `start` (`len == WHOLE_LOB` for whole-locator operations).
    /// LOB-backed index stores share one LOB across all of an index's
    /// rows; byte-range granularity lets two sessions maintain the same
    /// index concurrently as long as their writes touch disjoint ranges —
    /// first-writer-wins applies only to genuinely overlapping writes.
    fn check_lob_write(&self, lob: LobRef, start: u64, len: u64) -> Result<()> {
        let t = self.current.txn;
        if t == 0 {
            return Ok(());
        }
        let (cs, ce) = self.lob_conflict_span(start, len);
        let overlaps = |v: &LobSpanVersion| {
            let (vs, ve) = if v.len == WHOLE_LOB {
                (0, WHOLE_LOB)
            } else {
                (v.start, v.start.saturating_add(v.len))
            };
            vs < ce && cs < ve
        };
        if let Some(chain) = self.versions.lobs.get(&lob) {
            let stamp = chain.begin;
            if stamp != 0 && stamp != t && self.txns.is_active(stamp) {
                return Err(Error::write_conflict(
                    stamp,
                    format!("{lob} (whole)"),
                    format!("txn {t}: {lob} was allocated by uncommitted txn {stamp}"),
                ));
            }
            for v in &chain.spans {
                if v.by != t && self.txns.is_active(v.by) && overlaps(v) {
                    return Err(Error::write_conflict(
                        v.by,
                        format!("{lob} bytes [{cs}, {ce})"),
                        format!(
                            "txn {t}: {lob} bytes [{cs}, {ce}) overlap an uncommitted write by txn {} at [{}, {})",
                            v.by, v.start, v.start.saturating_add(v.len)
                        ),
                    ));
                }
            }
        }
        if self.conflict_checks {
            let wref =
                WriteRef { seg: LOB_SEGMENT, key: WriteKey::LobSpan { lob, start: cs, end: ce } };
            if let Some((csn, winner)) = self.txns.committed_writer(&wref) {
                if csn > self.current.high {
                    return Err(Error::write_conflict(
                        winner,
                        format!("{lob} bytes [{cs}, {ce})"),
                        format!(
                            "txn {t}: {lob} bytes [{cs}, {ce}) overlap a write committed by txn {winner} at csn {csn}, after this snapshot (high {})",
                            self.current.high
                        ),
                    ));
                }
            }
        }
        Ok(())
    }

    /// MVCC bookkeeping before a LOB mutation of `len` bytes at `start`
    /// (`WHOLE_LOB` = whole-locator): displace the before-image of exactly
    /// that byte range into the version chain and record the write for
    /// commit-time validation. No-op on the legacy lane.
    fn displace_lob_span(&mut self, lob: LobRef, start: u64, len: u64) {
        let t = self.current.txn;
        if t == 0 {
            return;
        }
        let old = if len == WHOLE_LOB {
            self.lobs.read_all(lob).map(|(b, _)| b).unwrap_or_default()
        } else {
            let cur = self.lobs.length(lob).unwrap_or(0);
            let end = start.saturating_add(len).min(cur);
            if start < end {
                self.lobs.read(lob, start, (end - start) as usize).map(|(b, _)| b).unwrap_or_default()
            } else {
                Vec::new()
            }
        };
        let chain = self.versions.lobs.entry(lob).or_default();
        chain.spans.insert(0, LobSpanVersion { start, len, old, by: t });
        let (cs, ce) = self.lob_conflict_span(start, len);
        self.txns.record_write(
            t,
            WriteRef { seg: LOB_SEGMENT, key: WriteKey::LobSpan { lob, start: cs, end: ce } },
        );
    }

    fn alloc_segment(&mut self) -> SegmentId {
        let id = SegmentId(self.next_segment);
        self.next_segment += 1;
        id
    }

    // ----- write-ahead logging ---------------------------------------------

    /// Attach a durable medium: from now on, write-ahead before apply.
    pub fn attach_wal(&mut self, medium: DurableMedium) {
        self.wal = Some(medium);
    }

    /// Detach the medium (recovery replays with logging off).
    pub fn detach_wal(&mut self) -> Option<DurableMedium> {
        self.wal.take()
    }

    /// The attached medium, if durability is on.
    pub fn wal_medium(&self) -> Option<&DurableMedium> {
        self.wal.as_ref()
    }

    fn wal_append(&self, rec: WalRecord) -> Result<()> {
        match &self.wal {
            // Tag every record with the driving transaction so recovery can
            // replay whole-transaction groups in commit order.
            Some(w) => w.append_txn(self.current.txn, rec),
            None => Ok(()),
        }
    }

    fn wal_applied(&self) -> Result<()> {
        match &self.wal {
            Some(w) => w.applied(),
            None => Ok(()),
        }
    }

    /// Deep snapshot of all durable state (checkpoint source).
    pub fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot {
            heaps: self.heaps.clone(),
            iots: self.iots.clone(),
            lobs: self.lobs.clone(),
            files: self.files.clone(),
            next_segment: self.next_segment,
        }
    }

    /// Replace all durable state from a snapshot. The buffer cache comes
    /// up cold, as it would after a real restart.
    pub fn restore_snapshot(&mut self, snap: EngineSnapshot) {
        self.cache.invalidate_all();
        self.heaps = snap.heaps;
        self.iots = snap.iots;
        self.lobs = snap.lobs;
        self.files = snap.files;
        self.next_segment = snap.next_segment;
        // Checkpoints are only taken at quiescence after a vacuum, so the
        // restored state carries no version chains.
        self.versions = VersionStore::default();
        self.current = Snapshot::latest();
    }

    /// Replace the external file store wholesale (recovery installs the
    /// medium's crash-surviving file mirror).
    pub fn set_files(&mut self, files: FileStore) {
        self.files = files;
    }

    /// Redo one WAL record against current state. Used only by recovery,
    /// with the WAL detached. Application errors are swallowed: a record
    /// whose original apply failed fails identically on replay (same
    /// state, deterministic operations), leaving state unchanged both
    /// times.
    pub fn apply_wal_record(&mut self, rec: &WalRecord) {
        match rec {
            WalRecord::CreateHeap => {
                let _ = self.create_heap();
            }
            WalRecord::CreateIot { key_cols } => {
                let _ = self.create_iot(*key_cols);
            }
            WalRecord::DropSegment { seg } => {
                let _ = self.drop_segment(*seg);
            }
            WalRecord::TruncateSegment { seg } => {
                let _ = self.truncate_segment(*seg);
            }
            WalRecord::HeapInsert { seg, row } => {
                let _ = self.heap_insert(*seg, row.clone(), None);
            }
            WalRecord::HeapInsertAt { seg, rid, row } => {
                if let Some(h) = self.heaps.get_mut(seg) {
                    let _ = h.insert_at(*rid, row.clone());
                    self.cache.write((*seg, rid.page));
                }
            }
            WalRecord::HeapUpdate { seg, rid, row } => {
                let _ = self.heap_update(*seg, *rid, row.clone(), None);
            }
            WalRecord::HeapDelete { seg, rid } => {
                let _ = self.heap_delete(*seg, *rid, None);
            }
            WalRecord::IotInsert { seg, row } => {
                let _ = self.iot_insert(*seg, row.clone(), None);
            }
            WalRecord::IotInsertOrd { seg, row, ord } => {
                if let Some(t) = self.iots.get_mut(seg) {
                    let _ = t.insert_with_ordinal(row.clone(), *ord);
                }
            }
            WalRecord::IotUpsertOrd { seg, row, ord } => {
                if let Some(t) = self.iots.get_mut(seg) {
                    let _ = t.insert_with_ordinal(row.clone(), *ord);
                }
            }
            WalRecord::CreateHeapAt { seg } => {
                self.heaps.insert(*seg, HeapTable::new(*seg));
                self.next_segment = self.next_segment.max(seg.0 + 1);
            }
            WalRecord::CreateIotAt { seg, key_cols } => {
                self.iots.insert(*seg, IndexOrganizedTable::new(*seg, *key_cols));
                self.next_segment = self.next_segment.max(seg.0 + 1);
            }
            WalRecord::LobAllocateAt { lob } => {
                self.lobs.allocate_at(*lob);
            }
            WalRecord::IotUpsert { seg, row } => {
                let _ = self.iot_upsert(*seg, row.clone(), None);
            }
            WalRecord::IotDelete { seg, key } => {
                let _ = self.iot_delete(*seg, key, None);
            }
            WalRecord::LobAllocate => {
                let _ = self.lob_allocate(None);
            }
            WalRecord::LobWrite { lob, offset, bytes } => {
                let _ = self.lob_write(*lob, *offset, bytes, None);
            }
            WalRecord::LobAppendAt { lob, offset, bytes } => {
                // A gap below the recorded offset means an aborted
                // transaction's append was skipped during commit-order
                // replay; live rollback hole-filled that space with 0xFF
                // tombstone bytes, so replay must too.
                let _ = self.lobs.pad_to(*lob, *offset, 0xFF);
                let _ = self.lob_write(*lob, *offset, bytes, None);
            }
            WalRecord::LobTruncate { lob, len } => {
                let _ = self.lobs.truncate(*lob, *len);
            }
            WalRecord::LobOverwrite { lob, bytes } => {
                let _ = self.lob_overwrite(*lob, bytes, None);
            }
            WalRecord::LobFree { lob } => {
                let _ = self.lob_free(*lob, None);
            }
            WalRecord::LobRestore { lob, bytes } => {
                self.lobs.restore(*lob, bytes.clone());
            }
            // File content survives in the medium's mirror; commit markers
            // are the SQL layer's business.
            WalRecord::FileActivity { .. } | WalRecord::Commit { .. } => {}
        }
    }

    /// Recompute exact zone maps on every heap segment (end of recovery:
    /// replay re-derives superset bounds, this tightens them). Chain-held
    /// displaced rows are re-widened in so the superset invariant covers
    /// versions a snapshot may still resolve to.
    pub fn rebuild_all_zone_maps(&mut self) {
        let segs: Vec<SegmentId> = self.heaps.keys().copied().collect();
        for seg in segs {
            self.heaps.get_mut(&seg).expect("listed above").rebuild_zone_maps();
            self.widen_zones_with_chains(seg);
        }
    }

    /// Widen a heap segment's zone maps with every chain-held displaced
    /// row image, so zone pruning stays sound (and therefore stays *on*)
    /// while the segment carries version chains: a page may be skipped
    /// only if no physical row *and no displaced version* on it can
    /// match. Widen-only — bounds never tighten here.
    fn widen_zones_with_chains(&mut self, seg: SegmentId) {
        let Some(chains) = self.versions.heap.get(&seg) else { return };
        let Some(h) = self.heaps.get_mut(&seg) else { return };
        for (rid, chain) in chains {
            for v in &chain.older {
                h.widen_page_zone(rid.page, &v.row);
            }
        }
    }

    // ----- segment lifecycle ------------------------------------------------

    /// Create a heap segment. The WAL record carries the assigned segment
    /// id explicitly: commit-order replay may apply records in a different
    /// order than live execution, so allocations must not depend on replay
    /// order.
    pub fn create_heap(&mut self) -> Result<SegmentId> {
        self.wal_append(WalRecord::CreateHeapAt { seg: SegmentId(self.next_segment) })?;
        let seg = self.alloc_segment();
        self.heaps.insert(seg, HeapTable::new(seg));
        self.wal_applied()?;
        Ok(seg)
    }

    /// Create an index-organized segment keyed on the first `key_cols`
    /// row columns.
    pub fn create_iot(&mut self, key_cols: usize) -> Result<SegmentId> {
        self.wal_append(WalRecord::CreateIotAt {
            seg: SegmentId(self.next_segment),
            key_cols,
        })?;
        let seg = self.alloc_segment();
        self.iots.insert(seg, IndexOrganizedTable::new(seg, key_cols));
        self.wal_applied()?;
        Ok(seg)
    }

    /// Drop any segment; its cached pages are discarded.
    pub fn drop_segment(&mut self, seg: SegmentId) -> Result<()> {
        if !self.heaps.contains_key(&seg) && !self.iots.contains_key(&seg) {
            return Err(Error::Storage(format!("{seg}: no such segment")));
        }
        self.wal_append(WalRecord::DropSegment { seg })?;
        self.heaps.remove(&seg);
        self.iots.remove(&seg);
        self.versions.forget_segment(seg);
        self.cache.discard_segment(seg);
        self.wal_applied()
    }

    /// Truncate a segment in place (non-transactional, like Oracle
    /// TRUNCATE: it is DDL and cannot be rolled back).
    pub fn truncate_segment(&mut self, seg: SegmentId) -> Result<()> {
        if self.heaps.contains_key(&seg) || self.iots.contains_key(&seg) {
            self.wal_append(WalRecord::TruncateSegment { seg })?;
        }
        if let Some(h) = self.heaps.get_mut(&seg) {
            h.truncate();
        } else if let Some(t) = self.iots.get_mut(&seg) {
            t.truncate();
        } else {
            return Err(Error::Storage(format!("{seg}: no such segment")));
        }
        self.versions.forget_segment(seg);
        self.cache.discard_segment(seg);
        self.wal_applied()
    }

    // ----- read-only access (callers charge scans themselves) --------------

    /// Borrow a heap segment for reading. Use [`Self::charge_page_read`]
    /// while scanning.
    pub fn heap(&self, seg: SegmentId) -> Result<&HeapTable> {
        self.heaps.get(&seg).ok_or_else(|| Error::Storage(format!("{seg}: no such heap segment")))
    }

    /// Borrow an IOT segment for reading.
    pub fn iot(&self, seg: SegmentId) -> Result<&IndexOrganizedTable> {
        self.iots.get(&seg).ok_or_else(|| Error::Storage(format!("{seg}: no such IOT segment")))
    }

    /// The buffer cache (for stats snapshots and cold-start simulation).
    pub fn cache(&self) -> &BufferCache {
        &self.cache
    }

    /// Charge one page read on behalf of a scan.
    pub fn charge_page_read(&self, seg: SegmentId, page: u32) {
        self.cache.read((seg, page));
    }

    /// Zone-map check for a full scan: true when the page provably holds
    /// no `col` value inside `[lo, hi]`, so the scan may skip it without
    /// charging a page read. Zone maps are segment metadata, not page
    /// data — consulting them costs no buffer-cache touch.
    pub fn heap_zone_excludes(
        &self,
        seg: SegmentId,
        page: u32,
        col: usize,
        lo: Option<&extidx_common::Value>,
        hi: Option<&extidx_common::Value>,
    ) -> bool {
        self.heaps.get(&seg).is_some_and(|h| h.zone_excludes(page, col, lo, hi))
    }

    /// Recompute exact zone-map bounds for a heap segment (ANALYZE-time
    /// rebuild; no-op for non-heap segments), then re-widen with
    /// chain-held displaced rows to keep the superset invariant.
    pub fn heap_rebuild_zone_maps(&mut self, seg: SegmentId) {
        if let Some(h) = self.heaps.get_mut(&seg) {
            h.rebuild_zone_maps();
        }
        self.widen_zones_with_chains(seg);
    }

    /// Snapshot of cache statistics.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    // ----- heap mutations ----------------------------------------------------

    /// Insert a row into a heap segment. The WAL record names the rowid
    /// the insert will land on (peeked before the apply) so commit-order
    /// replay reproduces live placement exactly.
    pub fn heap_insert(
        &mut self,
        seg: SegmentId,
        row: Row,
        undo: Option<&mut UndoLog>,
    ) -> Result<RowId> {
        let Some(h) = self.heaps.get(&seg) else {
            return Err(Error::Storage(format!("{seg}: no such heap segment")));
        };
        let rid = h.peek_insert_rid(&row);
        self.wal_append(WalRecord::HeapInsertAt { seg, rid, row: row.clone() })?;
        let h = self.heaps.get_mut(&seg).expect("existence checked above");
        let (inserted, page) = h.insert(row);
        debug_assert_eq!(inserted, rid, "peeked rowid must match actual placement");
        self.cache.write((seg, page));
        let t = self.current.txn;
        if t != 0 {
            let chain = self.versions.heap_chain_mut(seg, inserted);
            chain.begin = t;
            self.txns.record_write(t, WriteRef { seg, key: WriteKey::Rid(inserted) });
        }
        if let Some(log) = undo {
            log.push(UndoOp::HeapInsert { seg, rid: inserted });
        }
        self.wal_applied()?;
        Ok(inserted)
    }

    /// Fetch one row by rowid (charges one page read).
    pub fn heap_fetch(&self, seg: SegmentId, rid: RowId) -> Result<Row> {
        let h = self.heap(seg)?;
        let row = h.fetch(rid)?.clone();
        self.cache.read((seg, rid.page));
        Ok(row)
    }

    /// Fetch a batch of rows by rowid, visiting pages in (page, slot)
    /// order so the buffer cache is charged **once per distinct page**
    /// instead of once per row — the batched half of the domain-scan
    /// rowid→row join. Results are returned aligned with the input order;
    /// a missing row (deleted slot, out-of-range page) yields the same
    /// error a single [`StorageEngine::heap_fetch`] would.
    pub fn heap_fetch_multi(&self, seg: SegmentId, rids: &[RowId]) -> Result<Vec<Row>> {
        let h = self.heap(seg)?;
        let mut order: Vec<usize> = (0..rids.len()).collect();
        order.sort_by_key(|&i| (rids[i].page, rids[i].slot));
        let mut out: Vec<Option<Row>> = vec![None; rids.len()];
        let mut last_page: Option<u32> = None;
        for i in order {
            let rid = rids[i];
            if last_page != Some(rid.page) {
                self.cache.read((seg, rid.page));
                last_page = Some(rid.page);
            }
            out[i] = Some(h.fetch(rid)?.clone());
        }
        Ok(out.into_iter().map(|r| r.expect("every index filled")).collect())
    }

    /// Update a row in place; returns the old image. Under a transaction
    /// the displaced image is pushed onto the row's version chain so
    /// concurrent snapshots keep seeing it.
    pub fn heap_update(
        &mut self,
        seg: SegmentId,
        rid: RowId,
        new_row: Row,
        undo: Option<&mut UndoLog>,
    ) -> Result<Row> {
        if !self.heaps.contains_key(&seg) {
            return Err(Error::Storage(format!("{seg}: no such heap segment")));
        }
        self.check_heap_write(seg, rid)?;
        self.wal_append(WalRecord::HeapUpdate { seg, rid, row: new_row.clone() })?;
        let h = self.heaps.get_mut(&seg).expect("existence checked above");
        let old = h.update(rid, new_row)?;
        self.cache.write((seg, rid.page));
        let t = self.current.txn;
        if t != 0 {
            let chain = self.versions.heap_chain_mut(seg, rid);
            if chain.begin != t {
                // Displace the previous writer's version; a second update
                // by the same transaction overwrites silently (nobody else
                // can see the intermediate image).
                chain.older.insert(
                    0,
                    HeapVersion { row: old.clone(), begin: chain.begin, end: t },
                );
                chain.begin = t;
            }
            self.txns.record_write(t, WriteRef { seg, key: WriteKey::Rid(rid) });
        }
        if let Some(log) = undo {
            log.push(UndoOp::HeapUpdate { seg, rid, old: old.clone() });
        }
        self.wal_applied()?;
        Ok(old)
    }

    /// Delete a row; returns the old image. Under a transaction the delete
    /// is *deferred*: the chain marks the in-place version dead and the
    /// physical slot survives until vacuum, so the rowid is never recycled
    /// while a snapshot can still see the row. (Replay applies the delete
    /// physically — by then the commit is durable and unconditional.)
    pub fn heap_delete(
        &mut self,
        seg: SegmentId,
        rid: RowId,
        undo: Option<&mut UndoLog>,
    ) -> Result<Row> {
        if !self.heaps.contains_key(&seg) {
            return Err(Error::Storage(format!("{seg}: no such heap segment")));
        }
        self.check_heap_write(seg, rid)?;
        let t = self.current.txn;
        if t != 0 {
            // Validate before logging: replay applies the delete physically
            // and unconditionally, so a record must only exist for deletes
            // that succeed live.
            let h = self.heaps.get(&seg).expect("existence checked above");
            h.fetch(rid)?;
            if self.versions.heap_chain(seg, rid).is_some_and(|c| c.dead.is_some()) {
                return Err(Error::Storage(format!("{rid}: row already deleted")));
            }
        }
        self.wal_append(WalRecord::HeapDelete { seg, rid })?;
        let old = if t == 0 {
            let h = self.heaps.get_mut(&seg).expect("existence checked above");
            let old = h.delete(rid)?;
            // A delete that emptied the page rebuilt its zone entry
            // exactly; re-cover chain-held displaced rows.
            self.widen_zones_with_chains(seg);
            old
        } else {
            let h = self.heaps.get(&seg).expect("existence checked above");
            let old = h.fetch(rid)?.clone();
            let chain = self.versions.heap_chain_mut(seg, rid);
            chain.dead = Some(t);
            self.txns.record_write(t, WriteRef { seg, key: WriteKey::Rid(rid) });
            old
        };
        self.cache.write((seg, rid.page));
        if let Some(log) = undo {
            log.push(UndoOp::HeapDelete { seg, rid, old: old.clone() });
        }
        self.wal_applied()?;
        Ok(old)
    }

    // ----- IOT mutations -------------------------------------------------------

    fn iot_mut(&mut self, seg: SegmentId) -> Result<&mut IndexOrganizedTable> {
        self.iots
            .get_mut(&seg)
            .ok_or_else(|| Error::Storage(format!("{seg}: no such IOT segment")))
    }

    fn charge_iot(&self, seg: SegmentId, charge: crate::iot::IotIoCharge, base_page: u32) {
        // Model: reads touch pages descending from the root; writes dirty
        // the leaf. Page numbers are synthetic but stable enough for LRU
        // behaviour (root pages stay hot, leaves cycle).
        for i in 0..charge.page_reads {
            self.cache.read((seg, base_page.wrapping_add(i as u32)));
        }
        for i in 0..charge.page_writes {
            self.cache.write((seg, base_page.wrapping_add(i as u32)));
        }
    }

    fn iot_leaf_page_for(&self, seg: SegmentId, key: &Key) -> u32 {
        // Stable leaf-page number derived from the key so repeated probes
        // of the same key hit the same cache page.
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        seg.0.hash(&mut h);
        format!("{key}").hash(&mut h);
        let iot = &self.iots[&seg];
        let pages = iot.page_count().max(1) as u64;
        (h.finish() % pages) as u32
    }

    /// Pack an IOT logical-rowid ordinal into a `RowId` (and the inverse
    /// below). Ordinals use the page/slot fields: 26 + 16 = 42 bits of
    /// address space per IOT segment.
    fn ord_to_rid(seg: SegmentId, ord: u64) -> RowId {
        debug_assert!(ord < (1 << 42), "IOT ordinal overflows rowid packing");
        RowId::new(seg.0, (ord >> 16) as u32, (ord & 0xFFFF) as u16)
    }

    fn rid_to_ord(rid: RowId) -> u64 {
        ((rid.page as u64) << 16) | rid.slot as u64
    }

    /// Insert a row into an IOT (duplicate key → constraint violation).
    /// Returns the row's logical rowid. The WAL record carries the ordinal
    /// the insert will receive so commit-order replay reproduces logical
    /// rowids exactly; consequently the duplicate check runs *before*
    /// logging (replay applies ordinal-explicit records unconditionally).
    pub fn iot_insert(
        &mut self,
        seg: SegmentId,
        row: Row,
        undo: Option<&mut UndoLog>,
    ) -> Result<RowId> {
        let iot = self.iot(seg)?;
        let key_cols = iot.key_cols();
        let key = Key(row[..key_cols.min(row.len())].to_vec());
        if iot.ordinal_of(&key).is_some() {
            return Err(Error::Constraint(format!("duplicate key {key} in IOT {seg}")));
        }
        self.check_iot_write(seg, &key)?;
        let ord = iot.peek_next_ord();
        self.wal_append(WalRecord::IotInsertOrd { seg, row: row.clone(), ord })?;
        let (inserted, charge) = self.iot_mut(seg)?.insert(row)?;
        debug_assert_eq!(inserted, ord, "peeked ordinal must match actual assignment");
        let leaf = self.iot_leaf_page_for(seg, &key);
        self.charge_iot(seg, charge, leaf);
        let t = self.current.txn;
        if t != 0 {
            let chain = self.versions.iot_chain_mut(seg, key.clone());
            chain.current = Some(IotCurrent { begin: t });
            self.txns.record_write(t, WriteRef { seg, key: WriteKey::Key(key.clone()) });
        }
        if let Some(log) = undo {
            log.push(UndoOp::IotInsert { seg, key });
        }
        self.wal_applied()?;
        Ok(Self::ord_to_rid(seg, inserted))
    }

    /// Insert-or-replace into an IOT. Returns the previous row (if any)
    /// and the row's logical rowid, which is stable across replaces.
    pub fn iot_upsert(
        &mut self,
        seg: SegmentId,
        row: Row,
        undo: Option<&mut UndoLog>,
    ) -> Result<(Option<Row>, RowId)> {
        let iot = self.iot(seg)?;
        let key_cols = iot.key_cols();
        let key = Key(row[..key_cols.min(row.len())].to_vec());
        self.check_iot_write(seg, &key)?;
        let ord = iot.peek_upsert_ord(&row)?;
        self.wal_append(WalRecord::IotUpsertOrd { seg, row: row.clone(), ord })?;
        let (old, ord, charge) = self.iot_mut(seg)?.upsert(row)?;
        let leaf = self.iot_leaf_page_for(seg, &key);
        self.charge_iot(seg, charge, leaf);
        let t = self.current.txn;
        if t != 0 {
            let chain = self.versions.iot_chain_mut(seg, key.clone());
            let prev_begin = chain.current.as_ref().map(|c| c.begin).unwrap_or(0);
            if let Some(o) = &old {
                if prev_begin != t {
                    chain.older.insert(
                        0,
                        IotVersion { row: o.clone(), begin: prev_begin, end: t, ord },
                    );
                }
            }
            chain.current = Some(IotCurrent { begin: t });
            self.txns.record_write(t, WriteRef { seg, key: WriteKey::Key(key.clone()) });
        }
        if let Some(log) = undo {
            match &old {
                Some(o) => log.push(UndoOp::IotReplace { seg, old: o.clone() }),
                None => log.push(UndoOp::IotInsert { seg, key }),
            }
        }
        self.wal_applied()?;
        Ok((old, Self::ord_to_rid(seg, ord)))
    }

    /// Delete by key from an IOT; returns the removed row if present.
    pub fn iot_delete(
        &mut self,
        seg: SegmentId,
        key: &Key,
        undo: Option<&mut UndoLog>,
    ) -> Result<Option<Row>> {
        self.check_iot_write(seg, key)?;
        self.wal_append(WalRecord::IotDelete { seg, key: key.clone() })?;
        // IOT deletes are physically immediate (ordinals are never reused,
        // so no rowid-recycling hazard); the removed row survives as a
        // ghost version in the chain for older snapshots.
        let (removed, charge) = self.iot_mut(seg)?.delete(key);
        let leaf = self.iot_leaf_page_for(seg, key);
        self.charge_iot(seg, charge, leaf);
        let t = self.current.txn;
        let old = match removed {
            Some((o, ord)) => {
                if t != 0 {
                    let chain = self.versions.iot_chain_mut(seg, key.clone());
                    let prev_begin = chain.current.as_ref().map(|c| c.begin).unwrap_or(0);
                    chain.older.insert(
                        0,
                        IotVersion { row: o.clone(), begin: prev_begin, end: t, ord },
                    );
                    chain.current = None;
                    self.txns.record_write(t, WriteRef { seg, key: WriteKey::Key(key.clone()) });
                }
                if let Some(log) = undo {
                    log.push(UndoOp::IotDelete { seg, old: o.clone(), ord });
                }
                Some(o)
            }
            None => None,
        };
        self.wal_applied()?;
        Ok(old)
    }

    /// The logical rowid of an IOT row, if the key exists.
    pub fn iot_rowid(&self, seg: SegmentId, key: &Key) -> Result<Option<RowId>> {
        Ok(self.iot(seg)?.ordinal_of(key).map(|ord| Self::ord_to_rid(seg, ord)))
    }

    /// Fetch one IOT row by logical rowid (charges a height-probe read).
    pub fn iot_fetch_by_rowid(&self, seg: SegmentId, rid: RowId) -> Result<Row> {
        let iot = self.iot(seg)?;
        let (found, charge) = iot.by_ordinal(Self::rid_to_ord(rid));
        let (key, row) = found.ok_or_else(|| {
            Error::Storage(format!("{rid} does not address a live row in IOT {seg}"))
        })?;
        let out = row.clone();
        let leaf = self.iot_leaf_page_for(seg, &key.clone());
        self.charge_iot(seg, charge, leaf);
        Ok(out)
    }

    /// Batched logical-rowid→row join for IOTs, aligned with input order
    /// — the IOT counterpart of [`StorageEngine::heap_fetch_multi`].
    pub fn iot_fetch_multi(&self, seg: SegmentId, rids: &[RowId]) -> Result<Vec<Row>> {
        rids.iter().map(|&rid| self.iot_fetch_by_rowid(seg, rid)).collect()
    }

    /// Full scan of an IOT with each row's logical rowid, charging one
    /// read per page (the sequential full-scan cost model, matching the
    /// rowid-less scan path).
    pub fn iot_scan_with_rids(&self, seg: SegmentId) -> Result<Vec<(RowId, Row)>> {
        let iot = self.iot(seg)?;
        let out: Vec<(RowId, Row)> =
            iot.scan_with_ordinals().map(|(ord, r)| (Self::ord_to_rid(seg, ord), r.clone())).collect();
        let pages = iot.page_count();
        for p in 0..pages {
            self.charge_page_read(seg, p as u32);
        }
        Ok(out)
    }

    /// Inclusive range scan in an IOT with each row's logical rowid.
    pub fn iot_range_with_rids(
        &self,
        seg: SegmentId,
        lo: Option<&Key>,
        hi: Option<&Key>,
    ) -> Result<Vec<(RowId, Row)>> {
        let iot = self.iot(seg)?;
        let (rows, charge) = iot.range(lo, hi);
        let key_cols = iot.key_cols();
        let out: Vec<(RowId, Row)> = rows
            .into_iter()
            .map(|r| {
                let key = Key(r[..key_cols.min(r.len())].to_vec());
                let ord = iot.ordinal_of(&key).unwrap_or(u64::MAX >> 22);
                (Self::ord_to_rid(seg, ord), r.clone())
            })
            .collect();
        let leaf = lo.or(hi).map(|k| self.iot_leaf_page_for(seg, k)).unwrap_or(0);
        self.charge_iot(seg, charge, leaf);
        Ok(out)
    }

    /// Up to `limit` IOT rows with keys strictly after `after` (`None`
    /// starts from the beginning), each with its logical rowid — the
    /// streaming cursor behind base-table scans over IOTs.
    pub fn iot_batch_after(
        &self,
        seg: SegmentId,
        after: Option<&Key>,
        limit: usize,
    ) -> Result<Vec<(RowId, Key, Row)>> {
        let iot = self.iot(seg)?;
        let batch: Vec<(RowId, Key, Row)> = iot
            .batch_after(after, limit.max(1))
            .into_iter()
            .map(|(ord, k, r)| (Self::ord_to_rid(seg, ord), k.clone(), r.clone()))
            .collect();
        let leaf_pages = batch.len().div_ceil(64).max(1);
        let charge =
            crate::iot::IotIoCharge { page_reads: iot.height() + leaf_pages, page_writes: 0 };
        self.charge_iot(seg, charge, 0);
        Ok(batch)
    }

    /// Point lookup in an IOT.
    pub fn iot_get(&self, seg: SegmentId, key: &Key) -> Result<Option<Row>> {
        let iot = self.iot(seg)?;
        let (row, charge) = iot.get(key);
        let out = row.cloned();
        let leaf = self.iot_leaf_page_for(seg, key);
        self.charge_iot(seg, charge, leaf);
        Ok(out)
    }

    /// Inclusive range scan in an IOT.
    pub fn iot_range(
        &self,
        seg: SegmentId,
        lo: Option<&Key>,
        hi: Option<&Key>,
    ) -> Result<Vec<Row>> {
        let iot = self.iot(seg)?;
        let (rows, charge) = iot.range(lo, hi);
        let out: Vec<Row> = rows.into_iter().cloned().collect();
        let leaf = lo
            .or(hi)
            .map(|k| self.iot_leaf_page_for(seg, k))
            .unwrap_or(0);
        self.charge_iot(seg, charge, leaf);
        Ok(out)
    }

    /// Key-prefix scan in an IOT (posting-list access pattern).
    pub fn iot_prefix_scan(&self, seg: SegmentId, prefix: &Key) -> Result<Vec<Row>> {
        let iot = self.iot(seg)?;
        let (rows, charge) = iot.prefix_scan(prefix);
        let out: Vec<Row> = rows.into_iter().cloned().collect();
        let leaf = self.iot_leaf_page_for(seg, prefix);
        self.charge_iot(seg, charge, leaf);
        Ok(out)
    }

    // ----- MVCC-visible reads ----------------------------------------------
    //
    // Every variant degrades to the legacy path (bit-identical results and
    // identical cache charges) when the segment carries no version chains —
    // which is always the case outside concurrent multi-session windows,
    // because the engine vacuums at quiescence.

    /// The image of a physically present heap row visible under `snap`
    /// (`None` = invisible: written by a concurrent uncommitted/too-new
    /// transaction, or deleted for this snapshot). Callers gate on
    /// [`Self::segment_has_chains`] to skip per-row calls entirely.
    pub fn heap_visible_image(
        &self,
        seg: SegmentId,
        rid: RowId,
        physical: &Row,
        snap: &Snapshot,
    ) -> Option<Row> {
        match self.versions.heap_chain(seg, rid) {
            None => Some(physical.clone()),
            Some(chain) => {
                mvcc::resolve_heap(&self.txns, chain, Some(physical), snap).cloned()
            }
        }
    }

    /// Batched rowid→row join that drops rows invisible to `snap` (the
    /// domain-scan join: cartridge postings are not versioned, so
    /// visibility is applied at the base-row fetch). Aligned with the
    /// input: `None` marks an invisible rowid. A rowid that addresses no
    /// physical row errors exactly like [`Self::heap_fetch_multi`] when no
    /// chain explains its absence.
    pub fn heap_fetch_multi_visible(
        &self,
        seg: SegmentId,
        rids: &[RowId],
        snap: &Snapshot,
    ) -> Result<Vec<Option<Row>>> {
        if !self.segment_has_chains(seg) {
            return Ok(self.heap_fetch_multi(seg, rids)?.into_iter().map(Some).collect());
        }
        let h = self.heap(seg)?;
        let mut order: Vec<usize> = (0..rids.len()).collect();
        order.sort_by_key(|&i| (rids[i].page, rids[i].slot));
        let mut out: Vec<Option<Row>> = vec![None; rids.len()];
        let mut last_page: Option<u32> = None;
        for i in order {
            let rid = rids[i];
            if last_page != Some(rid.page) {
                self.cache.read((seg, rid.page));
                last_page = Some(rid.page);
            }
            match h.fetch(rid) {
                Ok(row) => out[i] = self.heap_visible_image(seg, rid, row, snap),
                Err(e) => {
                    if self.versions.heap_chain(seg, rid).is_none() {
                        return Err(e);
                    }
                }
            }
        }
        Ok(out)
    }

    /// Number of heap rows visible under `snap` (COUNT(*) fast path).
    pub fn heap_visible_row_count(&self, seg: SegmentId, snap: &Snapshot) -> Result<usize> {
        let h = self.heap(seg)?;
        if !self.segment_has_chains(seg) {
            return Ok(h.row_count());
        }
        let mut n = 0;
        for (rid, _page, row) in h.scan() {
            if self.heap_visible_image(seg, rid, row, snap).is_some() {
                n += 1;
            }
        }
        Ok(n)
    }

    /// Key-ordered rows of an IOT visible under `snap` within the given
    /// bounds, each with the ordinal it is (or was) reachable under. Merges
    /// physical rows with ghost chain versions — a row deleted by a
    /// concurrent transaction is physically absent but still visible to
    /// snapshots that predate the delete.
    fn iot_visible_merged(
        &self,
        seg: SegmentId,
        lo: Bound<&Key>,
        hi: Bound<&Key>,
        snap: &Snapshot,
    ) -> Result<Vec<(Key, u64, Row)>> {
        let iot = self.iot(seg)?;
        let key_cols = iot.key_cols();
        let in_range = |k: &Key| {
            (match lo {
                Bound::Unbounded => true,
                Bound::Included(b) => k >= b,
                Bound::Excluded(b) => k > b,
            }) && (match hi {
                Bound::Unbounded => true,
                Bound::Included(b) => k <= b,
                Bound::Excluded(b) => k < b,
            })
        };
        let chains = self.versions.iot.get(&seg);
        let mut out: Vec<(Key, u64, Row)> = Vec::new();
        for (ord, row) in iot.scan_with_ordinals() {
            let key = Key(row[..key_cols.min(row.len())].to_vec());
            if !in_range(&key) {
                continue;
            }
            match chains.and_then(|m| m.get(&key)) {
                None => out.push((key, ord, row.clone())),
                Some(chain) => {
                    if let Some((r, gord)) = mvcc::resolve_iot(&self.txns, chain, Some(row), snap)
                    {
                        out.push((key, gord.unwrap_or(ord), r.clone()));
                    }
                }
            }
        }
        if let Some(m) = chains {
            let mut added_ghosts = false;
            for (key, chain) in m {
                if !in_range(key) || iot.ordinal_of(key).is_some() {
                    continue;
                }
                if let Some((r, gord)) = mvcc::resolve_iot(&self.txns, chain, None, snap) {
                    out.push((key.clone(), gord.unwrap_or(0), r.clone()));
                    added_ghosts = true;
                }
            }
            if added_ghosts {
                out.sort_by(|a, b| a.0.cmp(&b.0));
            }
        }
        Ok(out)
    }

    /// Visibility-filtered [`Self::iot_get`].
    pub fn iot_get_visible(
        &self,
        seg: SegmentId,
        key: &Key,
        snap: &Snapshot,
    ) -> Result<Option<Row>> {
        let Some(chain) = self.versions.iot_chain(seg, key) else {
            return self.iot_get(seg, key);
        };
        let iot = self.iot(seg)?;
        let (row, charge) = iot.get(key);
        let out = mvcc::resolve_iot(&self.txns, chain, row, snap).map(|(r, _)| r.clone());
        let leaf = self.iot_leaf_page_for(seg, key);
        self.charge_iot(seg, charge, leaf);
        Ok(out)
    }

    /// Visibility-filtered [`Self::iot_scan_with_rids`].
    pub fn iot_scan_with_rids_visible(
        &self,
        seg: SegmentId,
        snap: &Snapshot,
    ) -> Result<Vec<(RowId, Row)>> {
        if !self.segment_has_chains(seg) {
            return self.iot_scan_with_rids(seg);
        }
        let rows = self.iot_visible_merged(seg, Bound::Unbounded, Bound::Unbounded, snap)?;
        let pages = self.iot(seg)?.page_count();
        for p in 0..pages {
            self.charge_page_read(seg, p as u32);
        }
        Ok(rows.into_iter().map(|(_, ord, r)| (Self::ord_to_rid(seg, ord), r)).collect())
    }

    /// Visibility-filtered [`Self::iot_range_with_rids`].
    pub fn iot_range_with_rids_visible(
        &self,
        seg: SegmentId,
        lo: Option<&Key>,
        hi: Option<&Key>,
        snap: &Snapshot,
    ) -> Result<Vec<(RowId, Row)>> {
        if !self.segment_has_chains(seg) {
            return self.iot_range_with_rids(seg, lo, hi);
        }
        let rows = self.iot_visible_merged(
            seg,
            lo.map_or(Bound::Unbounded, Bound::Included),
            hi.map_or(Bound::Unbounded, Bound::Included),
            snap,
        )?;
        let charge = crate::iot::IotIoCharge {
            page_reads: self.iot(seg)?.height() + rows.len().div_ceil(64).max(1),
            page_writes: 0,
        };
        let leaf = lo.or(hi).map(|k| self.iot_leaf_page_for(seg, k)).unwrap_or(0);
        self.charge_iot(seg, charge, leaf);
        Ok(rows.into_iter().map(|(_, ord, r)| (Self::ord_to_rid(seg, ord), r)).collect())
    }

    /// Visibility-filtered [`Self::iot_range`].
    pub fn iot_range_visible(
        &self,
        seg: SegmentId,
        lo: Option<&Key>,
        hi: Option<&Key>,
        snap: &Snapshot,
    ) -> Result<Vec<Row>> {
        if !self.segment_has_chains(seg) {
            return self.iot_range(seg, lo, hi);
        }
        Ok(self
            .iot_range_with_rids_visible(seg, lo, hi, snap)?
            .into_iter()
            .map(|(_, r)| r)
            .collect())
    }

    /// Visibility-filtered [`Self::iot_prefix_scan`].
    pub fn iot_prefix_scan_visible(
        &self,
        seg: SegmentId,
        prefix: &Key,
        snap: &Snapshot,
    ) -> Result<Vec<Row>> {
        if !self.segment_has_chains(seg) {
            return self.iot_prefix_scan(seg, prefix);
        }
        let rows =
            self.iot_visible_merged(seg, Bound::Included(prefix), Bound::Unbounded, snap)?;
        let leaf = self.iot_leaf_page_for(seg, prefix);
        let charge = crate::iot::IotIoCharge {
            page_reads: self.iot(seg)?.height().max(1),
            page_writes: 0,
        };
        self.charge_iot(seg, charge, leaf);
        Ok(rows
            .into_iter()
            .filter(|(k, _, _)| k.0.len() >= prefix.0.len() && k.0[..prefix.0.len()] == prefix.0)
            .map(|(_, _, r)| r)
            .collect())
    }

    /// Visibility-filtered [`Self::iot_batch_after`]. Ghost rows (visible
    /// to `snap` but physically deleted by a concurrent transaction) are
    /// merged into the batch in key order, and invisible physical rows are
    /// dropped, so the cursor never terminates early or stalls.
    pub fn iot_batch_after_visible(
        &self,
        seg: SegmentId,
        after: Option<&Key>,
        limit: usize,
        snap: &Snapshot,
    ) -> Result<Vec<(RowId, Key, Row)>> {
        if !self.segment_has_chains(seg) {
            return self.iot_batch_after(seg, after, limit);
        }
        let rows = self.iot_visible_merged(
            seg,
            after.map_or(Bound::Unbounded, Bound::Excluded),
            Bound::Unbounded,
            snap,
        )?;
        let out: Vec<(RowId, Key, Row)> = rows
            .into_iter()
            .take(limit.max(1))
            .map(|(k, ord, r)| (Self::ord_to_rid(seg, ord), k, r))
            .collect();
        let leaf_pages = out.len().div_ceil(64).max(1);
        let charge = crate::iot::IotIoCharge {
            page_reads: self.iot(seg)?.height() + leaf_pages,
            page_writes: 0,
        };
        self.charge_iot(seg, charge, 0);
        Ok(out)
    }

    /// Visibility-filtered [`Self::iot_fetch_by_rowid`]: resolves ghost
    /// ordinals through the chains, returns `None` when nothing visible
    /// lives at the logical rowid.
    pub fn iot_fetch_by_rowid_visible(
        &self,
        seg: SegmentId,
        rid: RowId,
        snap: &Snapshot,
    ) -> Result<Option<Row>> {
        let iot = self.iot(seg)?;
        let ord = Self::rid_to_ord(rid);
        let (found, charge) = iot.by_ordinal(ord);
        if let Some((key, row)) = found {
            let out = match self.versions.iot_chain(seg, key) {
                None => Some(row.clone()),
                Some(chain) => mvcc::resolve_iot(&self.txns, chain, Some(row), snap)
                    .and_then(|(r, gord)| match gord {
                        // A ghost at a different ordinal is addressed by a
                        // different rowid — nothing visible *here*.
                        Some(g) if g != ord => None,
                        _ => Some(r.clone()),
                    }),
            };
            let leaf = self.iot_leaf_page_for(seg, &key.clone());
            self.charge_iot(seg, charge, leaf);
            return Ok(out);
        }
        self.charge_iot(seg, charge, 0);
        // Physically absent: the rowid may address a ghost version.
        if let Some(m) = self.versions.iot.get(&seg) {
            for chain in m.values() {
                if let Some(v) = chain.older.iter().find(|v| {
                    v.ord == ord
                        && self.txns.stamp_visible(v.begin, snap)
                        && !self.txns.stamp_visible(v.end, snap)
                }) {
                    return Ok(Some(v.row.clone()));
                }
            }
        }
        Ok(None)
    }

    /// Batched visibility-filtered logical-rowid→row join for IOTs.
    pub fn iot_fetch_multi_visible(
        &self,
        seg: SegmentId,
        rids: &[RowId],
        snap: &Snapshot,
    ) -> Result<Vec<Option<Row>>> {
        rids.iter().map(|&rid| self.iot_fetch_by_rowid_visible(seg, rid, snap)).collect()
    }

    /// Number of IOT rows visible under `snap` (COUNT(*) fast path).
    pub fn iot_visible_row_count(&self, seg: SegmentId, snap: &Snapshot) -> Result<usize> {
        if !self.segment_has_chains(seg) {
            return Ok(self.iot(seg)?.row_count());
        }
        Ok(self.iot_visible_merged(seg, Bound::Unbounded, Bound::Unbounded, snap)?.len())
    }

    /// Pop the version a transactional IOT write displaced (rollback
    /// support): only if this write was the displacing one — its undo
    /// image matches the displaced row.
    fn pop_iot_version(
        versions: &mut VersionStore,
        seg: SegmentId,
        key: &Key,
        t: u64,
        old: &Row,
    ) {
        if let Some(m) = versions.iot.get_mut(&seg) {
            if let Some(chain) = m.get_mut(key) {
                if chain.older.first().is_some_and(|v| v.end == t && v.row == *old) {
                    let popped = chain.older.remove(0);
                    chain.current = Some(IotCurrent { begin: popped.begin });
                }
                if chain.is_trivial() {
                    m.remove(key);
                }
            }
        }
    }

    /// Pop the newest span a rolled-back LOB write pushed (rollback
    /// support): the physical bytes are restored, so the span's patch must
    /// leave the chain too or readers would un-apply it twice.
    fn pop_lob_span(versions: &mut VersionStore, lob: LobRef, t: u64, start: u64, len: u64) {
        if let Some(chain) = versions.lobs.get_mut(&lob) {
            if let Some(pos) = chain
                .spans
                .iter()
                .position(|v| v.by == t && v.start == start && v.len == len)
            {
                chain.spans.remove(pos);
            }
            if chain.is_trivial() {
                versions.lobs.remove(&lob);
            }
        }
    }

    // ----- LOB operations -------------------------------------------------------

    fn lob_page(lob: LobRef, page: usize) -> u32 {
        (((lob.0 as u32) << 10) | (page as u32 & 0x3FF)).wrapping_add(0)
    }

    fn charge_lob(&self, lob: LobRef, charge: crate::lob::LobIoCharge) {
        for i in 0..charge.page_reads {
            self.cache.read((LOB_SEGMENT, Self::lob_page(lob, i)));
        }
        for i in 0..charge.page_writes {
            self.cache.write((LOB_SEGMENT, Self::lob_page(lob, i)));
        }
    }

    /// Allocate an empty LOB. The record names the locator explicitly so
    /// commit-order replay reproduces live assignments.
    pub fn lob_allocate(&mut self, undo: Option<&mut UndoLog>) -> Result<LobRef> {
        self.wal_append(WalRecord::LobAllocateAt { lob: self.lobs.peek_next_ref() })?;
        let lob = self.lobs.allocate();
        if let Some(log) = undo {
            log.push(UndoOp::LobAllocate { lob });
        }
        // Stamp the new LOB with its creating transaction so snapshots
        // that cannot see the creator do not see its content either.
        let t = self.current.txn;
        if t != 0 {
            self.versions.lobs.insert(lob, LobChain { begin: t, spans: Vec::new() });
            self.txns.record_write(
                t,
                WriteRef {
                    seg: LOB_SEGMENT,
                    key: WriteKey::LobSpan { lob, start: 0, end: WHOLE_LOB },
                },
            );
        }
        self.wal_applied()?;
        Ok(lob)
    }

    /// LOB length as the write lane's current snapshot sees it.
    pub fn lob_length(&self, lob: LobRef) -> Result<u64> {
        self.lob_length_at(lob, &self.current)
    }

    /// LOB length under a specific snapshot.
    pub fn lob_length_at(&self, lob: LobRef, snap: &Snapshot) -> Result<u64> {
        match self.lob_image(lob, snap)? {
            LobImage::Current => self.lobs.length(lob),
            LobImage::Patched(bytes) => Ok(bytes.len() as u64),
            LobImage::Absent => Ok(0),
        }
    }

    /// Read from a LOB at an offset (write lane's current snapshot).
    pub fn lob_read(&self, lob: LobRef, offset: u64, len: usize) -> Result<Vec<u8>> {
        self.lob_read_at(lob, offset, len, &self.current)
    }

    /// Read from a LOB at an offset under a specific snapshot.
    pub fn lob_read_at(
        &self,
        lob: LobRef,
        offset: u64,
        len: usize,
        snap: &Snapshot,
    ) -> Result<Vec<u8>> {
        match self.lob_image(lob, snap)? {
            LobImage::Current => {
                let (bytes, charge) = self.lobs.read(lob, offset, len)?;
                self.charge_lob(lob, charge);
                Ok(bytes)
            }
            LobImage::Patched(bytes) => {
                let off = (offset as usize).min(bytes.len());
                let end = (off + len).min(bytes.len());
                self.charge_lob_span(lob, off, end - off);
                Ok(bytes[off..end].to_vec())
            }
            LobImage::Absent => Ok(Vec::new()),
        }
    }

    /// Read a whole LOB (write lane's current snapshot).
    pub fn lob_read_all(&self, lob: LobRef) -> Result<Vec<u8>> {
        self.lob_read_all_at(lob, &self.current)
    }

    /// Read a whole LOB under a specific snapshot.
    pub fn lob_read_all_at(&self, lob: LobRef, snap: &Snapshot) -> Result<Vec<u8>> {
        match self.lob_image(lob, snap)? {
            LobImage::Current => {
                let (bytes, charge) = self.lobs.read_all(lob)?;
                self.charge_lob(lob, charge);
                Ok(bytes)
            }
            LobImage::Patched(bytes) => {
                self.charge_lob_span(lob, 0, bytes.len());
                Ok(bytes)
            }
            LobImage::Absent => Ok(Vec::new()),
        }
    }

    /// Which content of a LOB the snapshot sees: the physical bytes
    /// (common case), a patched reconstruction with invisible span writes
    /// un-applied, or nothing at all (allocation not yet visible).
    fn lob_image(&self, lob: LobRef, snap: &Snapshot) -> Result<LobImage> {
        let Some(chain) = self.versions.lobs.get(&lob) else {
            return Ok(LobImage::Current);
        };
        if !self.txns.stamp_visible(chain.begin, snap) {
            return Ok(LobImage::Absent);
        }
        if chain.spans.iter().all(|v| self.txns.stamp_visible(v.by, snap)) {
            return Ok(LobImage::Current);
        }
        // Reconstruction path: start from the physical bytes (empty if the
        // locator was physically freed — a whole-image span restores the
        // content) and un-apply every invisible span, newest first.
        let physical = self.lobs.read_all(lob).map(|(b, _)| b).unwrap_or_default();
        Ok(mvcc::resolve_lob_image(&self.txns, chain, &physical, snap))
    }

    /// Cache charge for a read served from a displaced version (same page
    /// accounting a current-content read of that span would get).
    fn charge_lob_span(&self, lob: LobRef, off: usize, len: usize) {
        let pages = if len == 0 { 1 } else { (off + len - 1) / PAGE_SIZE - off / PAGE_SIZE + 1 };
        for i in 0..pages {
            self.cache.read((LOB_SEGMENT, Self::lob_page(lob, i)));
        }
    }

    /// Write into a LOB at an offset. Conflict detection, undo, and
    /// version displacement are all span-granular: only the byte range
    /// `[offset, offset+len)` is touched (widened down to the current end
    /// of the LOB when the write lands past it, so the zero-filled gap is
    /// part of the span and rollback can truncate it away).
    pub fn lob_write(
        &mut self,
        lob: LobRef,
        offset: u64,
        bytes: &[u8],
        undo: Option<&mut UndoLog>,
    ) -> Result<()> {
        let cur = self.lobs.length(lob)?;
        let start = offset.min(cur);
        let len = offset.saturating_add(bytes.len() as u64) - start;
        self.check_lob_write(lob, start, len)?;
        self.wal_append(WalRecord::LobWrite { lob, offset, bytes: bytes.to_vec() })?;
        if let Some(log) = undo {
            let end = start.saturating_add(len).min(cur);
            let old = if start < end {
                self.lobs.read(lob, start, (end - start) as usize)?.0
            } else {
                Vec::new()
            };
            log.push(UndoOp::LobSpan { lob, start, len, old });
        }
        self.displace_lob_span(lob, start, len);
        let charge = self.lobs.write(lob, offset, bytes)?;
        self.charge_lob(lob, charge);
        self.wal_applied()
    }

    /// Append to a LOB; returns the offset written at. The WAL record is
    /// offset-explicit (peeked before apply) so commit-order replay places
    /// the bytes exactly where the live run did even when other
    /// transactions' appends interleaved.
    pub fn lob_append(
        &mut self,
        lob: LobRef,
        bytes: &[u8],
        undo: Option<&mut UndoLog>,
    ) -> Result<u64> {
        let offset = self.lobs.length(lob)?;
        let len = bytes.len() as u64;
        self.check_lob_write(lob, offset, len)?;
        self.wal_append(WalRecord::LobAppendAt { lob, offset, bytes: bytes.to_vec() })?;
        if let Some(log) = undo {
            log.push(UndoOp::LobSpan { lob, start: offset, len, old: Vec::new() });
        }
        self.displace_lob_span(lob, offset, len);
        let (off, charge) = self.lobs.append(lob, bytes)?;
        debug_assert_eq!(off, offset, "peeked append offset must match placement");
        self.charge_lob(lob, charge);
        self.wal_applied()?;
        Ok(off)
    }

    /// Replace a LOB's entire contents (a whole-locator operation: it
    /// conflicts with every concurrent write to the locator).
    pub fn lob_overwrite(
        &mut self,
        lob: LobRef,
        bytes: &[u8],
        undo: Option<&mut UndoLog>,
    ) -> Result<()> {
        self.check_lob_write(lob, 0, WHOLE_LOB)?;
        self.wal_append(WalRecord::LobOverwrite { lob, bytes: bytes.to_vec() })?;
        if let Some(log) = undo {
            let (old, _) = self.lobs.read_all(lob)?;
            log.push(UndoOp::LobModify { lob, old });
        }
        self.displace_lob_span(lob, 0, WHOLE_LOB);
        let charge = self.lobs.overwrite(lob, bytes)?;
        self.charge_lob(lob, charge);
        self.wal_applied()
    }

    /// Free a LOB (whole-locator). The before-image is displaced into the
    /// version chain first, so snapshots that predate the free still read
    /// the content.
    pub fn lob_free(&mut self, lob: LobRef, undo: Option<&mut UndoLog>) -> Result<()> {
        self.check_lob_write(lob, 0, WHOLE_LOB)?;
        self.wal_append(WalRecord::LobFree { lob })?;
        self.displace_lob_span(lob, 0, WHOLE_LOB);
        let old = self.lobs.free(lob)?;
        if let Some(log) = undo {
            log.push(UndoOp::LobFree { lob, old });
        }
        self.wal_applied()
    }

    // ----- external file store (NOT transactional, by design) -------------------

    /// The external file store. Mutations here are invisible to undo —
    /// this is the paper's §5 limitation made concrete. Callers that need
    /// crash-consistency stamps must use the `file_*` wrappers below;
    /// this raw handle exists for stats access and tests.
    pub fn files(&mut self) -> &mut FileStore {
        &mut self.files
    }

    /// Read-only view of the external file store.
    pub fn files_ref(&self) -> &FileStore {
        &self.files
    }

    /// Stamp a file mutation in the WAL (for post-crash dirty detection)
    /// and mirror it to the durable medium. File content is written
    /// through immediately — real files do not wait for commit, which is
    /// exactly why file-backed indexes need the quarantine path.
    fn file_mutate(
        &mut self,
        name: &str,
        op: impl Fn(&mut FileStore) -> Result<()>,
    ) -> Result<()> {
        self.wal_append(WalRecord::FileActivity { name: name.to_string() })?;
        op(&mut self.files)?;
        if let Some(w) = &self.wal {
            w.mirror_files(|fs| {
                let _ = op(fs);
            });
        }
        self.wal_applied()
    }

    /// Create (or truncate) an external file.
    pub fn file_create(&mut self, name: &str) -> Result<()> {
        self.file_mutate(name, |fs| {
            fs.create(name);
            Ok(())
        })
    }

    /// Remove an external file.
    pub fn file_remove(&mut self, name: &str) -> Result<()> {
        self.file_mutate(name, |fs| fs.remove(name))
    }

    /// Remove an external file if it exists (idempotent cleanup).
    pub fn file_remove_if_exists(&mut self, name: &str) -> Result<()> {
        if self.files.exists(name) {
            self.file_remove(name)?;
        }
        Ok(())
    }

    /// Replace a whole external file.
    pub fn file_write(&mut self, name: &str, bytes: &[u8]) -> Result<()> {
        self.file_mutate(name, |fs| fs.write(name, bytes))
    }

    /// Append to an external file.
    pub fn file_append(&mut self, name: &str, bytes: &[u8]) -> Result<()> {
        self.file_mutate(name, |fs| fs.append(name, bytes))
    }

    /// Flush an external file (content unchanged — no WAL stamp needed,
    /// but the op counter ticks on both stores).
    pub fn file_flush(&mut self, name: &str) -> Result<()> {
        self.files.flush(name)?;
        if let Some(w) = &self.wal {
            w.mirror_files(|fs| {
                let _ = fs.flush(name);
            });
        }
        Ok(())
    }

    // ----- rollback ---------------------------------------------------------------

    /// Apply a transaction's undo log in reverse, restoring all
    /// database-resident state. External files are untouched.
    ///
    /// Every undo application is itself written ahead as a *redo* record:
    /// an explicit-transaction ROLLBACK is a completed statement followed
    /// by a commit marker, so its effects must replay on recovery exactly
    /// like forward work.
    pub fn rollback(&mut self, log: &mut UndoLog) -> Result<()> {
        let t = self.current.txn;
        for op in log.drain_reverse() {
            match op {
                UndoOp::HeapInsert { seg, rid } => {
                    if self.heaps.contains_key(&seg) {
                        self.wal_append(WalRecord::HeapDelete { seg, rid })?;
                        let h = self.heaps.get_mut(&seg).expect("checked");
                        h.delete(rid)?;
                        if t != 0 {
                            self.versions.drop_heap_chain(seg, rid);
                        }
                        self.widen_zones_with_chains(seg);
                        self.cache.write((seg, rid.page));
                    }
                }
                UndoOp::HeapUpdate { seg, rid, old } => {
                    if self.heaps.contains_key(&seg) {
                        self.wal_append(WalRecord::HeapUpdate { seg, rid, row: old.clone() })?;
                        self.heaps.get_mut(&seg).expect("checked").update(rid, old.clone())?;
                        if t != 0 {
                            // Pop the version this update displaced, if this
                            // was the displacing write (a same-transaction
                            // re-update pushed nothing, and its undo image
                            // won't match the displaced row).
                            if let Some(m) = self.versions.heap.get_mut(&seg) {
                                if let Some(chain) = m.get_mut(&rid) {
                                    if chain.begin == t
                                        && chain
                                            .older
                                            .first()
                                            .is_some_and(|v| v.end == t && v.row == old)
                                    {
                                        let popped = chain.older.remove(0);
                                        chain.begin = popped.begin;
                                    }
                                    if chain.is_trivial() {
                                        m.remove(&rid);
                                    }
                                }
                            }
                        }
                        self.cache.write((seg, rid.page));
                    }
                }
                UndoOp::HeapDelete { seg, rid, old } => {
                    if self.heaps.contains_key(&seg) {
                        // Transactional deletes are deferred: the row is
                        // still physically present and only the chain's
                        // dead mark needs clearing. The compensating WAL
                        // record must still restore the row, because replay
                        // applies deletes physically.
                        let deferred = t != 0
                            && self
                                .versions
                                .heap_chain(seg, rid)
                                .is_some_and(|c| c.dead == Some(t));
                        if deferred {
                            self.wal_append(WalRecord::HeapInsertAt {
                                seg,
                                rid,
                                row: old.clone(),
                            })?;
                            let m = self.versions.heap.get_mut(&seg).expect("chain checked");
                            let chain = m.get_mut(&rid).expect("chain checked");
                            chain.dead = None;
                            if chain.is_trivial() {
                                m.remove(&rid);
                            }
                        } else {
                            // Legacy lane: the slot was freed; restore into
                            // it (or in place, if something re-occupied it).
                            let live =
                                self.heaps.get_mut(&seg).expect("checked").fetch(rid).is_ok();
                            if live {
                                self.wal_append(WalRecord::HeapUpdate {
                                    seg,
                                    rid,
                                    row: old.clone(),
                                })?;
                                self.heaps.get_mut(&seg).expect("checked").update(rid, old)?;
                            } else {
                                self.wal_append(WalRecord::HeapInsertAt {
                                    seg,
                                    rid,
                                    row: old.clone(),
                                })?;
                                self.heaps.get_mut(&seg).expect("checked").insert_at(rid, old)?;
                            }
                        }
                        self.cache.write((seg, rid.page));
                    }
                }
                UndoOp::IotInsert { seg, key } => {
                    if self.iots.contains_key(&seg) {
                        self.wal_append(WalRecord::IotDelete { seg, key: key.clone() })?;
                        self.iots.get_mut(&seg).expect("checked").delete(&key);
                        if t != 0 {
                            if let Some(m) = self.versions.iot.get_mut(&seg) {
                                if let Some(chain) = m.get_mut(&key) {
                                    if chain.current.as_ref().is_some_and(|c| c.begin == t) {
                                        chain.current = None;
                                    }
                                    if chain.older.is_empty() {
                                        m.remove(&key);
                                    }
                                }
                            }
                        }
                    }
                }
                UndoOp::IotReplace { seg, old } => {
                    // The key still exists, so upsert preserves its ordinal.
                    if self.iots.contains_key(&seg) {
                        let ord = {
                            let iot = self.iots.get(&seg).expect("checked");
                            iot.peek_upsert_ord(&old)?
                        };
                        self.wal_append(WalRecord::IotUpsertOrd {
                            seg,
                            row: old.clone(),
                            ord,
                        })?;
                        self.iots.get_mut(&seg).expect("checked").upsert(old.clone())?;
                        if t != 0 {
                            let key_cols = self.iots[&seg].key_cols();
                            let key = Key(old[..key_cols.min(old.len())].to_vec());
                            Self::pop_iot_version(&mut self.versions, seg, &key, t, &old);
                        }
                    }
                }
                UndoOp::IotDelete { seg, old, ord } => {
                    // Restore under the original ordinal so logical rowids
                    // held by secondary indexes stay valid after rollback.
                    if self.iots.contains_key(&seg) {
                        self.wal_append(WalRecord::IotInsertOrd {
                            seg,
                            row: old.clone(),
                            ord,
                        })?;
                        self.iots
                            .get_mut(&seg)
                            .expect("checked")
                            .insert_with_ordinal(old.clone(), ord)?;
                        if t != 0 {
                            let key_cols = self.iots[&seg].key_cols();
                            let key = Key(old[..key_cols.min(old.len())].to_vec());
                            Self::pop_iot_version(&mut self.versions, seg, &key, t, &old);
                        }
                    }
                }
                UndoOp::LobAllocate { lob } => {
                    self.wal_append(WalRecord::LobFree { lob })?;
                    let _ = self.lobs.free(lob);
                    // The allocation never becomes visible; without this
                    // the chain (begin = aborted txn) would linger forever.
                    self.versions.lobs.remove(&lob);
                }
                UndoOp::LobSpan { lob, start, len, old } => {
                    // Offset-stable span rollback: restore the before-image
                    // in place, then truncate (if this write was the end of
                    // the LOB) or 0xFF-hole-fill the part the write
                    // extended — never shift other writers' bytes. The
                    // compensation is WAL-logged as plain redo records so
                    // commit-order replay reproduces it.
                    let cur = self.lobs.length(lob).unwrap_or(0);
                    let old_end = start + old.len() as u64;
                    let write_end = start.saturating_add(len);
                    if !old.is_empty() {
                        self.wal_append(WalRecord::LobWrite {
                            lob,
                            offset: start,
                            bytes: old.clone(),
                        })?;
                        let _ = self.lobs.write(lob, start, &old);
                    }
                    if write_end >= cur {
                        if old_end < cur {
                            self.wal_append(WalRecord::LobTruncate { lob, len: old_end })?;
                            let _ = self.lobs.truncate(lob, old_end);
                        }
                    } else if write_end > old_end {
                        let fill = vec![0xFF; (write_end - old_end) as usize];
                        self.wal_append(WalRecord::LobWrite {
                            lob,
                            offset: old_end,
                            bytes: fill.clone(),
                        })?;
                        let _ = self.lobs.write(lob, old_end, &fill);
                    }
                    if t != 0 {
                        Self::pop_lob_span(&mut self.versions, lob, t, start, len);
                    }
                }
                UndoOp::LobModify { lob, old } | UndoOp::LobFree { lob, old } => {
                    self.wal_append(WalRecord::LobRestore { lob, bytes: old.clone() })?;
                    self.lobs.restore(lob, old);
                    if t != 0 {
                        Self::pop_lob_span(&mut self.versions, lob, t, 0, WHOLE_LOB);
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use extidx_common::Value;

    fn row(i: i64) -> Row {
        vec![Value::Integer(i)]
    }

    #[test]
    fn heap_rollback_restores_all_three_ops() {
        let mut e = StorageEngine::new(64);
        let seg = e.create_heap().unwrap();
        let keep = e.heap_insert(seg, row(1), None).unwrap();
        let doomed = e.heap_insert(seg, row(2), None).unwrap();

        let mut undo = UndoLog::new();
        let added = e.heap_insert(seg, row(3), Some(&mut undo)).unwrap();
        e.heap_update(seg, keep, row(100), Some(&mut undo)).unwrap();
        e.heap_delete(seg, doomed, Some(&mut undo)).unwrap();

        e.rollback(&mut undo).unwrap();
        assert_eq!(e.heap_fetch(seg, keep).unwrap(), row(1));
        assert_eq!(e.heap_fetch(seg, doomed).unwrap(), row(2));
        assert!(e.heap_fetch(seg, added).is_err());
        assert_eq!(e.heap(seg).unwrap().row_count(), 2);
    }

    #[test]
    fn iot_rollback_restores() {
        let mut e = StorageEngine::new(64);
        let seg = e.create_iot(1).unwrap();
        e.iot_insert(seg, vec![Value::Integer(1), Value::from("old")], None).unwrap();

        let mut undo = UndoLog::new();
        e.iot_insert(seg, vec![Value::Integer(2), Value::from("new")], Some(&mut undo)).unwrap();
        e.iot_upsert(seg, vec![Value::Integer(1), Value::from("changed")], Some(&mut undo)).unwrap();
        e.iot_delete(seg, &Key::single(Value::Integer(1)), Some(&mut undo)).unwrap();

        e.rollback(&mut undo).unwrap();
        let got = e.iot_get(seg, &Key::single(Value::Integer(1))).unwrap().unwrap();
        assert_eq!(got[1], Value::from("old"));
        assert!(e.iot_get(seg, &Key::single(Value::Integer(2))).unwrap().is_none());
    }

    #[test]
    fn lob_rollback_restores_bytes() {
        let mut e = StorageEngine::new(64);
        let mut undo = UndoLog::new();
        let keep = e.lob_allocate(None).unwrap();
        e.lob_write(keep, 0, b"stable", None).unwrap();

        e.lob_write(keep, 0, b"CLOBBERED!", Some(&mut undo)).unwrap();
        let temp = e.lob_allocate(Some(&mut undo)).unwrap();
        e.lob_write(temp, 0, b"scratch", Some(&mut undo)).unwrap();

        e.rollback(&mut undo).unwrap();
        assert_eq!(e.lob_read_all(keep).unwrap(), b"stable");
        assert!(e.lob_read_all(temp).is_err(), "rolled-back allocation is gone");
    }

    #[test]
    fn external_files_survive_rollback() {
        let mut e = StorageEngine::new(64);
        let mut undo = UndoLog::new();
        let seg = e.create_heap().unwrap();
        e.heap_insert(seg, row(1), Some(&mut undo)).unwrap();
        e.files().create("external.idx");
        e.files().write("external.idx", b"orphaned index entry").unwrap();

        e.rollback(&mut undo).unwrap();
        // Database state rolled back…
        assert_eq!(e.heap(seg).unwrap().row_count(), 0);
        // …but the external file kept the now-inconsistent data (§5).
        assert_eq!(e.files().read("external.idx").unwrap(), b"orphaned index entry");
    }

    #[test]
    fn drop_segment_discards_cache_pages() {
        let mut e = StorageEngine::new(64);
        let seg = e.create_heap().unwrap();
        e.heap_insert(seg, row(1), None).unwrap();
        assert!(e.cache().resident_pages() > 0);
        e.drop_segment(seg).unwrap();
        assert_eq!(e.cache().resident_pages(), 0);
        assert!(e.heap(seg).is_err());
    }

    #[test]
    fn truncate_works_for_both_kinds() {
        let mut e = StorageEngine::new(64);
        let h = e.create_heap().unwrap();
        let t = e.create_iot(1).unwrap();
        e.heap_insert(h, row(1), None).unwrap();
        e.iot_insert(t, vec![Value::Integer(1)], None).unwrap();
        e.truncate_segment(h).unwrap();
        e.truncate_segment(t).unwrap();
        assert_eq!(e.heap(h).unwrap().row_count(), 0);
        assert_eq!(e.iot(t).unwrap().row_count(), 0);
    }

    #[test]
    fn iot_logical_rowids_survive_update_and_rollback() {
        let mut e = StorageEngine::new(64);
        let seg = e.create_iot(1).unwrap();
        let rid = e.iot_insert(seg, vec![Value::Integer(7), Value::from("v1")], None).unwrap();
        assert_eq!(e.iot_fetch_by_rowid(seg, rid).unwrap()[1], Value::from("v1"));

        // In-place replace keeps the logical rowid.
        let (_, rid2) = e.iot_upsert(seg, vec![Value::Integer(7), Value::from("v2")], None).unwrap();
        assert_eq!(rid, rid2);
        assert_eq!(e.iot_rowid(seg, &Key::single(Value::Integer(7))).unwrap(), Some(rid));

        // Delete + rollback restores the row under the same rowid.
        let mut undo = UndoLog::new();
        e.iot_delete(seg, &Key::single(Value::Integer(7)), Some(&mut undo)).unwrap();
        assert!(e.iot_fetch_by_rowid(seg, rid).is_err());
        e.rollback(&mut undo).unwrap();
        assert_eq!(e.iot_fetch_by_rowid(seg, rid).unwrap()[1], Value::from("v2"));

        // Range scan hands back the same rowids.
        let pairs = e.iot_range_with_rids(seg, None, None).unwrap();
        assert_eq!(pairs, vec![(rid, vec![Value::Integer(7), Value::from("v2")])]);
    }

    #[test]
    fn repeated_point_probes_hit_cache() {
        let mut e = StorageEngine::new(1024);
        let seg = e.create_iot(1).unwrap();
        for i in 0..100 {
            e.iot_insert(seg, vec![Value::Integer(i), Value::from("v")], None).unwrap();
        }
        e.cache().reset_stats();
        let key = Key::single(Value::Integer(42));
        e.iot_get(seg, &key).unwrap();
        let cold = e.cache_stats();
        e.iot_get(seg, &key).unwrap();
        let warm = e.cache_stats().since(&cold);
        assert_eq!(warm.physical_reads, 0, "second probe should be fully cached");
    }
}
