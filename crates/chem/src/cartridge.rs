//! The ODCIIndex implementation for the chemistry indextype.
//!
//! Supports two operators over molecule columns (linear-notation
//! VARCHAR2):
//!
//! - `MolContains(mol, sub)` — substructure search: fingerprint screen
//!   (no false negatives) followed by exact subgraph isomorphism;
//! - `MolSimilar(mol, query, threshold[, label])` — Tanimoto similarity
//!   over fingerprints, with the similarity exposed as ancillary data.
//!
//! Index data lives in a [`FingerprintStore`] — a LOB inside the database
//! or an external file, selected by `PARAMETERS (':Storage LOB|FILE')`.
//! With `':Events ON'` in FILE mode, the cartridge registers the §5
//! database-event handler that re-synchronizes the external file after
//! rollbacks.

use std::sync::Arc;

use extidx_common::{Error, Result, RowId, Value};
use extidx_core::events::{DbEvent, EventHandler};
use extidx_core::meta::{IndexInfo, OperatorCall};
use extidx_core::params::ParamString;
use extidx_core::scan::{FetchResult, FetchedRow, ScanContext};
use extidx_core::server::ServerContext;
use extidx_core::stats::{IndexCost, OdciStats};
use extidx_core::OdciIndex;

use crate::fingerprint::Fingerprint;
use crate::molecule::Molecule;
use crate::store::{FingerprintStore, StorageMode};

/// The indextype implementation.
pub struct ChemIndexMethods;

fn mol_fingerprint(v: &Value) -> Result<Option<(Molecule, Fingerprint)>> {
    match v {
        Value::Null => Ok(None),
        Value::Varchar(s) => {
            let m = Molecule::parse(s)?;
            let fp = Fingerprint::of(&m);
            Ok(Some((m, fp)))
        }
        other => Err(Error::type_mismatch("VARCHAR2 molecule", other.type_name())),
    }
}

/// What a chemistry scan is evaluating.
enum ChemQuery {
    Substructure { pattern: Molecule },
    /// Thresholding already happened during the screen in `start`.
    Similarity,
}

/// Scan state: screened candidates awaiting verification/emission.
struct ChemScan {
    query: ChemQuery,
    /// `(rid, tanimoto-or-0)` survivors of the fingerprint screen.
    candidates: Vec<(RowId, f64)>,
    pos: usize,
    wants_ancillary: bool,
}

/// The §5 event handler: after a rollback, external-file index data is
/// stale (file writes are not transactional); rebuild it from the settled
/// base table.
struct FileResyncHandler {
    info: IndexInfo,
}

impl EventHandler for FileResyncHandler {
    fn on_event(&self, event: DbEvent, srv: &mut dyn ServerContext) -> Result<()> {
        if event == DbEvent::Rollback {
            FingerprintStore { mode: StorageMode::File }.rebuild_from_base(srv, &self.info)?;
        }
        Ok(())
    }
}

impl OdciIndex for ChemIndexMethods {
    fn create(&self, srv: &mut dyn ServerContext, info: &IndexInfo) -> Result<()> {
        let store = FingerprintStore::for_index(info);
        store.create(srv, info)?;
        store.rebuild_from_base(srv, info)?;
        // §5's proposed solution, opt-in: register commit/rollback hooks
        // to keep the external store consistent.
        if store.mode == StorageMode::File
            && info.parameters.first("Events").is_some_and(|v| v.eq_ignore_ascii_case("ON"))
        {
            srv.register_event_handler(
                &format!("CHEM_RESYNC_{}", info.index_name),
                Arc::new(FileResyncHandler { info: info.clone() }),
            );
        }
        Ok(())
    }

    fn alter(&self, srv: &mut dyn ServerContext, info: &IndexInfo, _delta: &ParamString) -> Result<()> {
        FingerprintStore::for_index(info).rebuild_from_base(srv, info)
    }

    fn truncate(&self, srv: &mut dyn ServerContext, info: &IndexInfo) -> Result<()> {
        FingerprintStore::for_index(info).truncate(srv, info)
    }

    fn drop_index(&self, srv: &mut dyn ServerContext, info: &IndexInfo) -> Result<()> {
        FingerprintStore::for_index(info).drop_store(srv, info)
    }

    fn external_files(&self, info: &IndexInfo) -> Vec<String> {
        match StorageMode::from_info(info) {
            StorageMode::File => vec![crate::store::file_name(info)],
            StorageMode::Lob => Vec::new(),
        }
    }

    fn insert(
        &self,
        srv: &mut dyn ServerContext,
        info: &IndexInfo,
        rid: RowId,
        new_value: &Value,
    ) -> Result<()> {
        if let Some((_, fp)) = mol_fingerprint(new_value)? {
            FingerprintStore::for_index(info).append(srv, info, rid, &fp)?;
            srv.fault_point("chem.maintenance.indexed")?;
        }
        Ok(())
    }

    fn update(
        &self,
        srv: &mut dyn ServerContext,
        info: &IndexInfo,
        rid: RowId,
        old_value: &Value,
        new_value: &Value,
    ) -> Result<()> {
        self.delete(srv, info, rid, old_value)?;
        // Old fingerprint tombstoned, new one not yet appended.
        srv.fault_point("chem.maintenance.reindex")?;
        self.insert(srv, info, rid, new_value)
    }

    fn delete(
        &self,
        srv: &mut dyn ServerContext,
        info: &IndexInfo,
        rid: RowId,
        old_value: &Value,
    ) -> Result<()> {
        if !old_value.is_null() {
            FingerprintStore::for_index(info).remove(srv, info, rid)?;
            srv.fault_point("chem.maintenance.unindexed")?;
        }
        Ok(())
    }

    fn start(
        &self,
        srv: &mut dyn ServerContext,
        info: &IndexInfo,
        op: &OperatorCall,
    ) -> Result<ScanContext> {
        let records = FingerprintStore::for_index(info).read_all(srv, info)?;
        let (query, candidates) = match op.operator.as_str() {
            "MOLCONTAINS" => {
                let sub_text = op.args.first().and_then(|v| v.as_str().ok()).ok_or_else(|| {
                    Error::odci(&info.indextype_name, "ODCIIndexStart", "missing substructure")
                })?;
                let pattern = Molecule::parse(sub_text)?;
                let sub_fp = Fingerprint::of(&pattern);
                // Screen: fp(sub) ⊆ fp(mol) is necessary for containment.
                let cands: Vec<(RowId, f64)> = records
                    .into_iter()
                    .filter(|(_, fp)| sub_fp.is_subset_of(fp))
                    .map(|(rid, _)| (rid, 0.0))
                    .collect();
                (ChemQuery::Substructure { pattern }, cands)
            }
            "MOLSIMILAR" => {
                let q_text = op.args.first().and_then(|v| v.as_str().ok()).ok_or_else(|| {
                    Error::odci(&info.indextype_name, "ODCIIndexStart", "missing query molecule")
                })?;
                let threshold = op.args.get(1).and_then(|v| v.as_number().ok()).ok_or_else(|| {
                    Error::odci(&info.indextype_name, "ODCIIndexStart", "missing threshold")
                })?;
                let q_fp = Fingerprint::of(&Molecule::parse(q_text)?);
                let mut cands: Vec<(RowId, f64)> = records
                    .into_iter()
                    .map(|(rid, fp)| (rid, q_fp.tanimoto(&fp)))
                    .filter(|(_, t)| *t >= threshold)
                    .collect();
                // Nearest-neighbor flavour: best matches first.
                cands.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
                let _ = threshold;
                (ChemQuery::Similarity, cands)
            }
            other => {
                return Err(Error::odci(
                    &info.indextype_name,
                    "ODCIIndexStart",
                    format!("unsupported operator {other}"),
                ))
            }
        };
        Ok(ScanContext::State(Box::new(ChemScan {
            query,
            candidates,
            pos: 0,
            wants_ancillary: op.wants_ancillary,
        })))
    }

    fn fetch(
        &self,
        srv: &mut dyn ServerContext,
        info: &IndexInfo,
        ctx: &mut ScanContext,
        nrows: usize,
    ) -> Result<FetchResult> {
        let base_sql =
            format!("SELECT {} FROM {} WHERE ROWID = ?", info.column_name, info.table_name);
        let st = ctx.state_mut::<ChemScan>().ok_or_else(|| {
            Error::odci(&info.indextype_name, "ODCIIndexFetch", "bad scan state")
        })?;
        let mut out = Vec::with_capacity(nrows);
        while out.len() < nrows && st.pos < st.candidates.len() {
            let (rid, sim) = st.candidates[st.pos];
            st.pos += 1;
            match &st.query {
                ChemQuery::Similarity => {
                    if st.wants_ancillary {
                        out.push(FetchedRow::with_ancillary(rid, Value::Number(sim)));
                    } else {
                        out.push(FetchedRow::plain(rid));
                    }
                }
                ChemQuery::Substructure { pattern } => {
                    // Exact verification against the stored molecule.
                    let rows = srv.query(&base_sql, &[Value::RowId(rid)])?;
                    let Some(row) = rows.first() else { continue };
                    let Ok(text) = row[0].as_str() else { continue };
                    let mol = Molecule::parse(text)?;
                    if mol.contains_subgraph(pattern) {
                        out.push(FetchedRow::plain(rid));
                    }
                }
            }
        }
        let done = st.pos >= st.candidates.len();
        Ok(FetchResult { rows: out, done })
    }

    fn close(&self, _srv: &mut dyn ServerContext, _info: &IndexInfo, _ctx: ScanContext) -> Result<()> {
        Ok(())
    }
}

/// ODCIStats for the chemistry indextype.
pub struct ChemStats;

impl OdciStats for ChemStats {
    fn collect(&self, _srv: &mut dyn ServerContext, _info: &IndexInfo) -> Result<()> {
        Ok(())
    }

    fn selectivity(
        &self,
        srv: &mut dyn ServerContext,
        info: &IndexInfo,
        op: &OperatorCall,
    ) -> Result<f64> {
        let total = srv.query(&format!("SELECT COUNT(*) FROM {}", info.table_name), &[])?[0][0]
            .as_integer()? as f64;
        if total == 0.0 {
            return Ok(0.0);
        }
        // Heuristics: substructure hits scale inversely with pattern
        // size; similarity with threshold.
        Ok(match op.operator.as_str() {
            "MOLCONTAINS" => {
                let atoms = op
                    .args
                    .first()
                    .and_then(|v| v.as_str().ok())
                    .and_then(|s| Molecule::parse(s).ok())
                    .map(|m| m.atom_count())
                    .unwrap_or(1) as f64;
                (0.5 / atoms).clamp(0.001, 0.5)
            }
            _ => {
                let threshold =
                    op.args.get(1).and_then(|v| v.as_number().ok()).unwrap_or(0.5);
                ((1.0 - threshold) * 0.2).clamp(0.001, 0.5)
            }
        })
    }

    fn index_cost(
        &self,
        srv: &mut dyn ServerContext,
        info: &IndexInfo,
        _op: &OperatorCall,
        selectivity: f64,
    ) -> Result<IndexCost> {
        let total = srv.query(&format!("SELECT COUNT(*) FROM {}", info.table_name), &[])?[0][0]
            .as_integer()? as f64;
        // Screening reads the whole fingerprint store (sequential, cheap
        // per record) plus per-candidate verification.
        Ok(IndexCost {
            io_cost: 1.0 + total * crate::store::RECORD_BYTES as f64 / 8192.0,
            cpu_cost: total * 0.0005 + total * selectivity * 0.01,
        })
    }
}
