//! LRU buffer cache with I/O accounting.
//!
//! Every page touch in the engine goes through this cache. A touch is a
//! *logical read*; if the page is not resident it also costs a *physical
//! read*. Writes dirty the resident page; evicting or flushing a dirty page
//! costs a *physical write*. These counters let the experiment harness
//! report the paper's I/O-reduction claims (e.g. §3.2.1: "Reduced I/O
//! because of no temporary result table") as numbers rather than prose.
//!
//! The cache stores no page bytes — row data lives in the segment
//! structures — it is purely the residency/accounting model, which is all
//! the reproduction's experiments need.

use std::collections::{BTreeMap, HashMap};

use parking_lot::Mutex;

use crate::page::SegmentId;

/// A page address: segment plus page number.
pub type PageAddr = (SegmentId, u32);

/// Snapshot of cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Page touches (every read or write access).
    pub logical_reads: u64,
    /// Touches that missed the cache and had to "go to disk".
    pub physical_reads: u64,
    /// Dirty pages written back (on eviction or flush).
    pub physical_writes: u64,
}

impl CacheStats {
    /// Difference between two snapshots (`self` later, `earlier` first).
    ///
    /// Saturating: if `reset_stats` landed between the two snapshots the
    /// later counters can be *smaller* than the earlier ones, and a plain
    /// subtraction would panic in debug builds (and wrap to garbage in
    /// release). A clamped-to-zero delta is the only sensible answer.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            logical_reads: self.logical_reads.saturating_sub(earlier.logical_reads),
            physical_reads: self.physical_reads.saturating_sub(earlier.physical_reads),
            physical_writes: self.physical_writes.saturating_sub(earlier.physical_writes),
        }
    }
}

struct CacheInner {
    /// Resident pages: address → (LRU stamp, dirty).
    resident: HashMap<PageAddr, (u64, bool)>,
    /// LRU order: stamp → address (stamps are unique).
    lru: BTreeMap<u64, PageAddr>,
    next_stamp: u64,
    capacity: usize,
    stats: CacheStats,
}

/// The buffer cache. Interior-mutable so that read paths can take `&self`.
pub struct BufferCache {
    inner: Mutex<CacheInner>,
}

impl BufferCache {
    /// Create a cache holding at most `capacity` pages.
    pub fn new(capacity: usize) -> Self {
        BufferCache {
            inner: Mutex::new(CacheInner {
                resident: HashMap::new(),
                lru: BTreeMap::new(),
                next_stamp: 0,
                capacity: capacity.max(1),
                stats: CacheStats::default(),
            }),
        }
    }

    /// Touch a page for reading.
    pub fn read(&self, addr: PageAddr) {
        self.touch(addr, false);
    }

    /// Touch a page for writing (marks it dirty).
    pub fn write(&self, addr: PageAddr) {
        self.touch(addr, true);
    }

    fn touch(&self, addr: PageAddr, dirty: bool) {
        let mut g = self.inner.lock();
        g.stats.logical_reads += 1;
        let stamp = g.next_stamp;
        g.next_stamp += 1;
        match g.resident.get_mut(&addr) {
            Some((old_stamp, was_dirty)) => {
                let old = *old_stamp;
                *old_stamp = stamp;
                *was_dirty |= dirty;
                g.lru.remove(&old);
                g.lru.insert(stamp, addr);
            }
            None => {
                g.stats.physical_reads += 1;
                g.resident.insert(addr, (stamp, dirty));
                g.lru.insert(stamp, addr);
                if g.resident.len() > g.capacity {
                    // Evict the least-recently used page.
                    if let Some((&victim_stamp, &victim)) = g.lru.iter().next() {
                        g.lru.remove(&victim_stamp);
                        if let Some((_, was_dirty)) = g.resident.remove(&victim) {
                            if was_dirty {
                                g.stats.physical_writes += 1;
                            }
                        }
                    }
                }
            }
        }
    }

    /// Drop all pages of a segment (table drop/truncate). Dirty pages of a
    /// dropped segment are discarded without a write, like Oracle
    /// invalidating buffers on TRUNCATE.
    pub fn discard_segment(&self, seg: SegmentId) {
        let mut g = self.inner.lock();
        let victims: Vec<PageAddr> = g.resident.keys().filter(|(s, _)| *s == seg).copied().collect();
        for v in victims {
            if let Some((stamp, _)) = g.resident.remove(&v) {
                g.lru.remove(&stamp);
            }
        }
    }

    /// Write back every dirty page (checkpoint).
    pub fn flush_all(&self) {
        let mut g = self.inner.lock();
        let mut writes = 0;
        for (_, (_, dirty)) in g.resident.iter_mut() {
            if *dirty {
                *dirty = false;
                writes += 1;
            }
        }
        g.stats.physical_writes += writes;
    }

    /// Empty the cache entirely (cold-start simulation). Dirty pages are
    /// written back first.
    pub fn invalidate_all(&self) {
        self.flush_all();
        let mut g = self.inner.lock();
        g.resident.clear();
        g.lru.clear();
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().stats
    }

    /// Zero all counters (residency is kept).
    pub fn reset_stats(&self) {
        self.inner.lock().stats = CacheStats::default();
    }

    /// Number of resident pages.
    pub fn resident_pages(&self) -> usize {
        self.inner.lock().resident.len()
    }

    /// Configured capacity in pages.
    pub fn capacity(&self) -> usize {
        self.inner.lock().capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEG: SegmentId = SegmentId(1);

    #[test]
    fn hit_and_miss_accounting() {
        let c = BufferCache::new(8);
        c.read((SEG, 0));
        c.read((SEG, 0));
        c.read((SEG, 1));
        let s = c.stats();
        assert_eq!(s.logical_reads, 3);
        assert_eq!(s.physical_reads, 2);
        assert_eq!(s.physical_writes, 0);
    }

    #[test]
    fn lru_eviction_writes_dirty_page() {
        let c = BufferCache::new(2);
        c.write((SEG, 0)); // dirty
        c.read((SEG, 1));
        c.read((SEG, 2)); // evicts page 0 (LRU) → physical write
        let s = c.stats();
        assert_eq!(s.physical_writes, 1);
        assert_eq!(c.resident_pages(), 2);
    }

    #[test]
    fn touch_refreshes_lru_position() {
        let c = BufferCache::new(2);
        c.read((SEG, 0));
        c.read((SEG, 1));
        c.read((SEG, 0)); // page 0 now MRU
        c.read((SEG, 2)); // evicts page 1, not page 0
        c.read((SEG, 0)); // should still be a hit
        let s = c.stats();
        assert_eq!(s.physical_reads, 3); // pages 0, 1, 2 each faulted once
    }

    #[test]
    fn discard_segment_drops_without_write() {
        let c = BufferCache::new(8);
        c.write((SEG, 0));
        c.discard_segment(SEG);
        assert_eq!(c.resident_pages(), 0);
        assert_eq!(c.stats().physical_writes, 0);
    }

    #[test]
    fn flush_all_writes_each_dirty_page_once() {
        let c = BufferCache::new(8);
        c.write((SEG, 0));
        c.write((SEG, 0));
        c.write((SEG, 1));
        c.flush_all();
        assert_eq!(c.stats().physical_writes, 2);
        c.flush_all();
        assert_eq!(c.stats().physical_writes, 2);
    }

    #[test]
    fn invalidate_all_cold_starts() {
        let c = BufferCache::new(8);
        c.read((SEG, 0));
        c.invalidate_all();
        c.reset_stats();
        c.read((SEG, 0));
        assert_eq!(c.stats().physical_reads, 1);
    }

    #[test]
    fn stats_since_survives_reset_between_snapshots() {
        // Regression: `reset_stats` between two snapshots used to make
        // `since` underflow (debug panic / release wraparound). It must
        // saturate to zero instead.
        let c = BufferCache::new(8);
        c.read((SEG, 0));
        c.read((SEG, 1));
        let before = c.stats();
        c.reset_stats();
        c.read((SEG, 0));
        let delta = c.stats().since(&before);
        assert_eq!(delta.logical_reads, 0);
        assert_eq!(delta.physical_reads, 0);
        assert_eq!(delta.physical_writes, 0);
    }

    #[test]
    fn stats_since() {
        let c = BufferCache::new(8);
        c.read((SEG, 0));
        let before = c.stats();
        c.read((SEG, 0));
        c.read((SEG, 1));
        let delta = c.stats().since(&before);
        assert_eq!(delta.logical_reads, 2);
        assert_eq!(delta.physical_reads, 1);
    }
}
