//! Registries for extensibility schema objects.
//!
//! The engine's catalog embeds a [`SchemaRegistry`] holding everything the
//! framework introduces as "top level schema objects" (§2.2.2): registered
//! functions, user-defined operators, and indextypes. DDL statements
//! (`CREATE OPERATOR`, `CREATE INDEXTYPE`, `DROP …`) resolve here, as does
//! the optimizer when it checks whether an operator predicate has an
//! index-based evaluation.

use std::collections::HashMap;
use std::sync::Arc;

use extidx_common::{Error, Result};

use crate::indextype::IndexType;
use crate::operator::{Operator, ScalarFunction};

/// All registered extensibility schema objects.
#[derive(Debug, Default, Clone)]
pub struct SchemaRegistry {
    functions: HashMap<String, ScalarFunction>,
    operators: HashMap<String, Operator>,
    indextypes: HashMap<String, Arc<IndexType>>,
}

impl SchemaRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    // ---- functions -----------------------------------------------------------

    /// Register a function (`CREATE FUNCTION`).
    pub fn create_function(&mut self, f: ScalarFunction) -> Result<()> {
        if self.functions.contains_key(&f.name) {
            return Err(Error::already_exists("function", &f.name));
        }
        self.functions.insert(f.name.clone(), f);
        Ok(())
    }

    /// Look up a function by name.
    pub fn function(&self, name: &str) -> Result<&ScalarFunction> {
        let upper = name.to_ascii_uppercase();
        self.functions.get(&upper).ok_or_else(|| Error::not_found("function", upper))
    }

    /// Drop a function.
    pub fn drop_function(&mut self, name: &str) -> Result<()> {
        let upper = name.to_ascii_uppercase();
        self.functions
            .remove(&upper)
            .map(|_| ())
            .ok_or_else(|| Error::not_found("function", upper))
    }

    // ---- operators -----------------------------------------------------------

    /// Register an operator (`CREATE OPERATOR`). Every binding's function
    /// must already exist — the paper requires a functional implementation
    /// per binding (§2.2.2).
    pub fn create_operator(&mut self, op: Operator) -> Result<()> {
        if self.operators.contains_key(&op.name) {
            return Err(Error::already_exists("operator", &op.name));
        }
        for b in &op.bindings {
            if !self.functions.contains_key(&b.function_name) {
                return Err(Error::not_found("function", &b.function_name));
            }
        }
        self.operators.insert(op.name.clone(), op);
        Ok(())
    }

    /// Look up an operator by name.
    pub fn operator(&self, name: &str) -> Result<&Operator> {
        let upper = name.to_ascii_uppercase();
        self.operators.get(&upper).ok_or_else(|| Error::not_found("operator", upper))
    }

    /// Whether an operator exists.
    pub fn has_operator(&self, name: &str) -> bool {
        self.operators.contains_key(&name.to_ascii_uppercase())
    }

    /// Drop an operator.
    pub fn drop_operator(&mut self, name: &str) -> Result<()> {
        let upper = name.to_ascii_uppercase();
        self.operators
            .remove(&upper)
            .map(|_| ())
            .ok_or_else(|| Error::not_found("operator", upper))
    }

    // ---- indextypes -----------------------------------------------------------

    /// Register an indextype (`CREATE INDEXTYPE`). Every supported
    /// operator must already exist.
    pub fn create_indextype(&mut self, it: IndexType) -> Result<()> {
        if self.indextypes.contains_key(&it.name) {
            return Err(Error::already_exists("indextype", &it.name));
        }
        for op in &it.operators {
            if !self.operators.contains_key(&op.name) {
                return Err(Error::not_found("operator", &op.name));
            }
        }
        self.indextypes.insert(it.name.clone(), Arc::new(it));
        Ok(())
    }

    /// Look up an indextype by name.
    pub fn indextype(&self, name: &str) -> Result<Arc<IndexType>> {
        let upper = name.to_ascii_uppercase();
        self.indextypes
            .get(&upper)
            .cloned()
            .ok_or_else(|| Error::not_found("indextype", upper))
    }

    /// Drop an indextype.
    pub fn drop_indextype(&mut self, name: &str) -> Result<()> {
        let upper = name.to_ascii_uppercase();
        self.indextypes
            .remove(&upper)
            .map(|_| ())
            .ok_or_else(|| Error::not_found("indextype", upper))
    }

    /// All indextype names (sorted, for catalog listings).
    pub fn indextype_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.indextypes.keys().cloned().collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::ScalarFunction;
    use extidx_common::Value;

    fn registry_with_fn() -> SchemaRegistry {
        let mut r = SchemaRegistry::new();
        r.create_function(ScalarFunction::new("TextContains", |_, _| Ok(Value::Boolean(true))))
            .unwrap();
        r
    }

    #[test]
    fn operator_requires_function() {
        let mut r = SchemaRegistry::new();
        let op = Operator::with_binding(
            "Contains",
            vec![],
            extidx_common::SqlType::Boolean,
            "Missing",
        );
        assert!(matches!(r.create_operator(op), Err(Error::NotFound { .. })));
    }

    #[test]
    fn operator_lifecycle() {
        let mut r = registry_with_fn();
        let op = Operator::with_binding(
            "Contains",
            vec![],
            extidx_common::SqlType::Boolean,
            "TextContains",
        );
        r.create_operator(op.clone()).unwrap();
        assert!(r.has_operator("contains"));
        assert!(matches!(r.create_operator(op), Err(Error::AlreadyExists { .. })));
        r.drop_operator("CONTAINS").unwrap();
        assert!(!r.has_operator("contains"));
        assert!(r.drop_operator("CONTAINS").is_err());
    }

    #[test]
    fn function_duplicate_rejected() {
        let mut r = registry_with_fn();
        let dup = ScalarFunction::new("TEXTCONTAINS", |_, _| Ok(Value::Null));
        assert!(r.create_function(dup).is_err());
        r.drop_function("textcontains").unwrap();
        assert!(r.function("TextContains").is_err());
    }
}
