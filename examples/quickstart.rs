//! Quickstart — the paper's running example, end to end.
//!
//! Builds the `Employees(resume)` scenario from §1: install the text
//! cartridge, register the `Contains` operator and `TextIndexType`
//! indextype, create a domain index with the paper's PARAMETERS string,
//! and run content-based searches that the server evaluates through
//! user-supplied ODCIIndex routines.
//!
//! Run with: `cargo run --example quickstart`

use extidx::sql::Database;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Database::new();

    // The cartridge developer's steps (§2.2): functional implementation,
    // CREATE OPERATOR, CREATE INDEXTYPE — bundled by install().
    extidx::text::install(&mut db)?;
    println!("text cartridge installed: operator CONTAINS, indextype TEXTINDEXTYPE\n");

    // The end user's steps (§2.3).
    db.execute(
        "CREATE TABLE Employees (name VARCHAR(128), id INTEGER, resume VARCHAR2(1024))",
    )?;
    for (name, id, resume) in [
        ("Alice", 1, "Ten years of Oracle administration on UNIX platforms"),
        ("Bob", 2, "Java and Spring microservices, some COBOL maintenance"),
        ("Carol", 3, "Oracle performance tuning, PL/SQL, Windows Server"),
        ("Dave", 4, "UNIX kernel development; occasional Oracle consulting"),
        ("Erin", 5, "Technical marketing and developer relations"),
    ] {
        db.execute_with(
            "INSERT INTO Employees VALUES (?, ?, ?)",
            &[name.into(), i64::from(id).into(), resume.into()],
        )?;
    }

    // Filler rows so plan choices look like production, not a toy table
    // (the cost-based optimizer rightly full-scans a one-page table).
    for i in 10..400 {
        db.execute_with(
            "INSERT INTO Employees VALUES (?, ?, ?)",
            &[
                format!("emp{i}").into(),
                i64::from(i).into(),
                format!("generic resume body number {i} with assorted unrelated skills").into(),
            ],
        )?;
    }

    // CREATE INDEX … INDEXTYPE IS … PARAMETERS — verbatim from the paper.
    db.execute(
        "CREATE INDEX ResumeTextIndex ON Employees(resume) \
         INDEXTYPE IS TextIndexType \
         PARAMETERS (':Language English :Ignore the a an')",
    )?;
    println!("created domain index RESUMETEXTINDEX (inverted index in DR$RESUMETEXTINDEX$I)\n");

    // The paper's flagship query.
    let sql = "SELECT name FROM Employees WHERE Contains(resume, 'Oracle AND UNIX')";
    println!("{sql}");
    for row in db.query(sql)? {
        println!("  -> {}", row[0]);
    }

    // The optimizer chose the domain-index scan; show the plan.
    println!("\nEXPLAIN:");
    for line in db.explain(sql)? {
        println!("  {line}");
    }

    // Ancillary operator: relevance ranking with SCORE.
    println!("\nSELECT name, SCORE(1) … WHERE Contains(resume, 'oracle', 1) ORDER BY SCORE(1) DESC");
    for row in db.query(
        "SELECT name, SCORE(1) FROM Employees \
         WHERE Contains(resume, 'oracle', 1) ORDER BY SCORE(1) DESC",
    )? {
        println!("  {} (score {})", row[0], row[1]);
    }

    // Implicit index maintenance: DML keeps the domain index in sync.
    db.execute(
        "INSERT INTO Employees VALUES ('Frank', 6, 'Oracle on UNIX and Linux clusters')",
    )?;
    let rows = db.query("SELECT name FROM Employees WHERE Contains(resume, 'Oracle AND UNIX')")?;
    println!("\nafter inserting Frank, the same query returns {} rows", rows.len());

    // ALTER INDEX PARAMETERS — the paper's stop-word update. The rebuild
    // removes COBOL postings from the inverted index.
    db.execute("ALTER INDEX ResumeTextIndex PARAMETERS (':Ignore COBOL')")?;
    let postings = db.query(
        "SELECT COUNT(*) FROM DR$RESUMETEXTINDEX$I WHERE token = 'cobol'",
    )?;
    println!("after ALTER … (':Ignore COBOL'), the index holds {} cobol postings", postings[0][0]);

    Ok(())
}
