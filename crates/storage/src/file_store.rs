//! External file storage — index data kept *outside* the database.
//!
//! This models the pre-Oracle8i world the paper argues against (§1, §2.5:
//! "many applications resort to maintaining file-based indexes for data
//! residing in database tables") and the Daylight baseline (§3.2.4). Files
//! live in memory behind a file-system-like API with explicit operation
//! counters, plus a configurable *write-through* mode: the legacy Daylight
//! engine persisted intermediate index state on every update, which is
//! exactly the "intermediate write operations" the LOB migration
//! eliminated.
//!
//! Crucially, the file store sits **outside** the transaction manager:
//! nothing here participates in undo, which is how the reproduction
//! demonstrates the paper's §5 limitation (aborted transactions leave
//! external index data inconsistent) and its proposed database-event fix.

use std::collections::HashMap;

use extidx_common::{Error, Result};
use parking_lot::Mutex;

/// Operation counters for the external store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FileStats {
    pub opens: u64,
    pub read_ops: u64,
    pub write_ops: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
    /// Writes attributable to persisting intermediate state (flushes).
    pub flushes: u64,
}

/// An in-memory external "file system" with operation accounting.
///
/// Counters sit behind a mutex so read paths (`read`) can run through a
/// shared reference — concurrent scan lanes read external index files
/// without exclusive access to the engine.
#[derive(Debug, Default)]
pub struct FileStore {
    files: HashMap<String, Vec<u8>>,
    stats: Mutex<FileStats>,
}

impl Clone for FileStore {
    fn clone(&self) -> Self {
        FileStore { files: self.files.clone(), stats: Mutex::new(*self.stats.lock()) }
    }
}

impl FileStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create (or truncate) a file.
    pub fn create(&mut self, name: &str) {
        self.stats.lock().opens += 1;
        self.files.insert(name.to_string(), Vec::new());
    }

    /// Whether a file exists.
    pub fn exists(&self, name: &str) -> bool {
        self.files.contains_key(name)
    }

    /// Delete a file.
    pub fn remove(&mut self, name: &str) -> Result<()> {
        self.files
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| Error::Storage(format!("file {name:?} does not exist")))
    }

    /// List file names (sorted, for deterministic tests).
    pub fn list(&self) -> Vec<String> {
        let mut names: Vec<String> = self.files.keys().cloned().collect();
        names.sort();
        names
    }

    /// Read the whole file.
    pub fn read(&self, name: &str) -> Result<Vec<u8>> {
        let data = self
            .files
            .get(name)
            .ok_or_else(|| Error::Storage(format!("file {name:?} does not exist")))?;
        let mut st = self.stats.lock();
        st.read_ops += 1;
        st.bytes_read += data.len() as u64;
        Ok(data.clone())
    }

    /// Replace the whole file content.
    pub fn write(&mut self, name: &str, bytes: &[u8]) -> Result<()> {
        let data = self
            .files
            .get_mut(name)
            .ok_or_else(|| Error::Storage(format!("file {name:?} does not exist")))?;
        data.clear();
        data.extend_from_slice(bytes);
        let mut st = self.stats.lock();
        st.write_ops += 1;
        st.bytes_written += bytes.len() as u64;
        Ok(())
    }

    /// Append bytes to the file.
    pub fn append(&mut self, name: &str, bytes: &[u8]) -> Result<()> {
        let data = self
            .files
            .get_mut(name)
            .ok_or_else(|| Error::Storage(format!("file {name:?} does not exist")))?;
        data.extend_from_slice(bytes);
        let mut st = self.stats.lock();
        st.write_ops += 1;
        st.bytes_written += bytes.len() as u64;
        Ok(())
    }

    /// Record a flush of intermediate state: the legacy engine's
    /// checkpoint-every-update behaviour. Counts as a write op too.
    pub fn flush(&mut self, name: &str) -> Result<()> {
        if !self.files.contains_key(name) {
            return Err(Error::Storage(format!("file {name:?} does not exist")));
        }
        let mut st = self.stats.lock();
        st.flushes += 1;
        st.write_ops += 1;
        Ok(())
    }

    /// File length.
    pub fn length(&self, name: &str) -> Result<u64> {
        self.files
            .get(name)
            .map(|d| d.len() as u64)
            .ok_or_else(|| Error::Storage(format!("file {name:?} does not exist")))
    }

    /// Counter snapshot.
    pub fn stats(&self) -> FileStats {
        *self.stats.lock()
    }

    /// Zero counters.
    pub fn reset_stats(&mut self) {
        *self.stats.get_mut() = FileStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_write_read() {
        let mut fs = FileStore::new();
        fs.create("idx.dat");
        fs.write("idx.dat", b"payload").unwrap();
        assert_eq!(fs.read("idx.dat").unwrap(), b"payload");
    }

    #[test]
    fn missing_file_errors() {
        let mut fs = FileStore::new();
        assert!(fs.read("nope").is_err());
        assert!(fs.write("nope", b"x").is_err());
        assert!(fs.remove("nope").is_err());
        assert!(fs.flush("nope").is_err());
    }

    #[test]
    fn append_accumulates() {
        let mut fs = FileStore::new();
        fs.create("log");
        fs.append("log", b"ab").unwrap();
        fs.append("log", b"cd").unwrap();
        assert_eq!(fs.read("log").unwrap(), b"abcd");
        assert_eq!(fs.length("log").unwrap(), 4);
    }

    #[test]
    fn counters_track_operations() {
        let mut fs = FileStore::new();
        fs.create("f");
        fs.write("f", b"12345").unwrap();
        fs.read("f").unwrap();
        fs.flush("f").unwrap();
        let s = fs.stats();
        assert_eq!(s.opens, 1);
        assert_eq!(s.write_ops, 2); // write + flush
        assert_eq!(s.read_ops, 1);
        assert_eq!(s.bytes_written, 5);
        assert_eq!(s.bytes_read, 5);
        assert_eq!(s.flushes, 1);
    }

    #[test]
    fn create_truncates_existing() {
        let mut fs = FileStore::new();
        fs.create("f");
        fs.write("f", b"old").unwrap();
        fs.create("f");
        assert_eq!(fs.length("f").unwrap(), 0);
    }

    #[test]
    fn list_is_sorted() {
        let mut fs = FileStore::new();
        fs.create("b");
        fs.create("a");
        assert_eq!(fs.list(), vec!["a".to_string(), "b".to_string()]);
    }
}
