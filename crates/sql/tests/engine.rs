//! End-to-end engine tests: SQL surface, optimizer behaviour, and the full
//! extensible-indexing lifecycle driven through a minimal test cartridge.

use std::sync::Arc;

use extidx_common::{Result, RowId, Value};
use extidx_core::meta::{IndexInfo, OperatorCall};
use extidx_core::operator::ScalarFunction;
use extidx_core::params::ParamString;
use extidx_core::scan::{FetchResult, FetchedRow, ScanContext};
use extidx_core::server::ServerContext;
use extidx_core::stats::{IndexCost, OdciStats};
use extidx_core::OdciIndex;
use extidx_sql::{Database, StmtResult};

// ---------------------------------------------------------------------------
// a minimal cartridge: exact-match inverted index over VARCHAR2 columns
// ---------------------------------------------------------------------------

/// `KeyMatch(col, key)` is true when `col = key`; the index stores
/// `(value, rowid)` pairs in an IOT created through server callbacks.
struct KvIndexMethods;

fn kv_table(info: &IndexInfo) -> String {
    info.storage_table_name("KV")
}

struct KvScanState {
    rows: Vec<RowId>,
    pos: usize,
}

impl OdciIndex for KvIndexMethods {
    fn create(&self, srv: &mut dyn ServerContext, info: &IndexInfo) -> Result<()> {
        srv.execute(
            &format!(
                "CREATE TABLE {} (val VARCHAR2(4000), rid ROWID, PRIMARY KEY (val, rid)) \
                 ORGANIZATION INDEX",
                kv_table(info)
            ),
            &[],
        )?;
        // Populate from existing base rows.
        let rows = srv.query(
            &format!("SELECT {}, ROWID FROM {}", info.column_name, info.table_name),
            &[],
        )?;
        for r in rows {
            if r[0].is_null() {
                continue;
            }
            srv.execute(
                &format!("INSERT INTO {} VALUES (?, ?)", kv_table(info)),
                &[r[0].clone(), r[1].clone()],
            )?;
        }
        Ok(())
    }

    fn alter(&self, _srv: &mut dyn ServerContext, _info: &IndexInfo, _delta: &ParamString) -> Result<()> {
        Ok(())
    }

    fn truncate(&self, srv: &mut dyn ServerContext, info: &IndexInfo) -> Result<()> {
        srv.execute(&format!("TRUNCATE TABLE {}", kv_table(info)), &[])?;
        Ok(())
    }

    fn drop_index(&self, srv: &mut dyn ServerContext, info: &IndexInfo) -> Result<()> {
        srv.execute(&format!("DROP TABLE {}", kv_table(info)), &[])?;
        Ok(())
    }

    fn insert(
        &self,
        srv: &mut dyn ServerContext,
        info: &IndexInfo,
        rid: RowId,
        new_value: &Value,
    ) -> Result<()> {
        if new_value.is_null() {
            return Ok(());
        }
        srv.execute(
            &format!("INSERT INTO {} VALUES (?, ?)", kv_table(info)),
            &[new_value.clone(), Value::RowId(rid)],
        )?;
        Ok(())
    }

    fn update(
        &self,
        srv: &mut dyn ServerContext,
        info: &IndexInfo,
        rid: RowId,
        old_value: &Value,
        new_value: &Value,
    ) -> Result<()> {
        self.delete(srv, info, rid, old_value)?;
        self.insert(srv, info, rid, new_value)
    }

    fn delete(
        &self,
        srv: &mut dyn ServerContext,
        info: &IndexInfo,
        rid: RowId,
        old_value: &Value,
    ) -> Result<()> {
        if old_value.is_null() {
            return Ok(());
        }
        srv.execute(
            &format!("DELETE FROM {} WHERE val = ? AND rid = ?", kv_table(info)),
            &[old_value.clone(), Value::RowId(rid)],
        )?;
        Ok(())
    }

    fn start(
        &self,
        srv: &mut dyn ServerContext,
        info: &IndexInfo,
        op: &OperatorCall,
    ) -> Result<ScanContext> {
        let key = op.args[0].clone();
        let rows = srv.query(
            &format!("SELECT rid FROM {} WHERE val = ?", kv_table(info)),
            &[key],
        )?;
        let rids: Vec<RowId> = rows.iter().map(|r| r[0].as_rowid()).collect::<Result<_>>()?;
        Ok(ScanContext::State(Box::new(KvScanState { rows: rids, pos: 0 })))
    }

    fn fetch(
        &self,
        _srv: &mut dyn ServerContext,
        _info: &IndexInfo,
        ctx: &mut ScanContext,
        nrows: usize,
    ) -> Result<FetchResult> {
        let st = ctx.state_mut::<KvScanState>().expect("state ctx");
        let end = (st.pos + nrows).min(st.rows.len());
        let batch: Vec<FetchedRow> =
            st.rows[st.pos..end].iter().map(|r| FetchedRow::plain(*r)).collect();
        st.pos = end;
        Ok(FetchResult { rows: batch, done: st.pos >= st.rows.len() })
    }

    fn close(&self, _srv: &mut dyn ServerContext, _info: &IndexInfo, _ctx: ScanContext) -> Result<()> {
        Ok(())
    }
}

struct KvStats;

impl OdciStats for KvStats {
    fn collect(&self, _srv: &mut dyn ServerContext, _info: &IndexInfo) -> Result<()> {
        Ok(())
    }

    fn selectivity(
        &self,
        srv: &mut dyn ServerContext,
        info: &IndexInfo,
        op: &OperatorCall,
    ) -> Result<f64> {
        let total = srv.query(&format!("SELECT COUNT(*) FROM {}", kv_table(info)), &[])?;
        let matched = srv.query(
            &format!("SELECT COUNT(*) FROM {} WHERE val = ?", kv_table(info)),
            &[op.args[0].clone()],
        )?;
        let t = total[0][0].as_integer()? as f64;
        let m = matched[0][0].as_integer()? as f64;
        Ok(if t == 0.0 { 0.0 } else { m / t })
    }

    fn index_cost(
        &self,
        _srv: &mut dyn ServerContext,
        _info: &IndexInfo,
        _op: &OperatorCall,
        selectivity: f64,
    ) -> Result<IndexCost> {
        Ok(IndexCost { io_cost: 2.0 + selectivity * 10.0, cpu_cost: 0.5 })
    }
}

/// Database with the KV cartridge fully registered via SQL DDL.
fn kv_db() -> Database {
    let mut db = Database::with_cache_pages(1024);
    db.register_function(ScalarFunction::new("KeyMatchFn", |_, args| {
        if args[0].is_null() || args[1].is_null() {
            return Ok(Value::Null);
        }
        Ok(Value::Boolean(args[0].as_str()? == args[1].as_str()?))
    }))
    .unwrap();
    db.register_odci_implementation("KvIndexMethods", Arc::new(KvIndexMethods), Arc::new(KvStats));
    db.execute(
        "CREATE OPERATOR KeyMatch BINDING (VARCHAR2, VARCHAR2) RETURN BOOLEAN USING KeyMatchFn",
    )
    .unwrap();
    db.execute(
        "CREATE INDEXTYPE KvIndexType FOR KeyMatch(VARCHAR2, VARCHAR2) USING KvIndexMethods",
    )
    .unwrap();
    db
}

fn setup_emp(db: &mut Database) {
    db.execute("CREATE TABLE employees (name VARCHAR2(64), id INTEGER, dept VARCHAR2(16))").unwrap();
    for (n, i, d) in [
        ("alice", 1, "eng"),
        ("bob", 2, "eng"),
        ("carol", 3, "sales"),
        ("dave", 4, "sales"),
        ("erin", 5, "hr"),
    ] {
        db.execute_with("INSERT INTO employees VALUES (?, ?, ?)", &[n.into(), (i as i64).into(), d.into()])
            .unwrap();
    }
}

/// A larger employee table (plan-choice assertions need realistic sizes:
/// the optimizer correctly prefers full scans on one-page tables).
fn setup_emp_many(db: &mut Database, n: i64) {
    db.execute("CREATE TABLE employees (name VARCHAR2(64), id INTEGER, dept VARCHAR2(16))").unwrap();
    for i in 0..n {
        db.execute_with(
            "INSERT INTO employees VALUES (?, ?, ?)",
            &[format!("emp{i}").into(), i.into(), format!("dept{}", i % 10).into()],
        )
        .unwrap();
    }
}

// ---------------------------------------------------------------------------
// plain engine behaviour
// ---------------------------------------------------------------------------

#[test]
fn basic_select_and_projection() {
    let mut db = Database::new();
    setup_emp(&mut db);
    let rows = db.query("SELECT name, id FROM employees WHERE id > 3 ORDER BY id").unwrap();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0][0], Value::from("dave"));
    assert_eq!(rows[1][1], Value::Integer(5));
}

#[test]
fn select_star_hides_rowid_but_rowid_is_queryable() {
    let mut db = Database::new();
    setup_emp(&mut db);
    match db.execute("SELECT * FROM employees LIMIT 1").unwrap() {
        StmtResult::Rows { columns, rows } => {
            assert_eq!(columns, vec!["NAME", "ID", "DEPT"]);
            assert_eq!(rows[0].len(), 3);
        }
        other => panic!("{other:?}"),
    }
    let rows = db.query("SELECT ROWID FROM employees WHERE id = 1").unwrap();
    assert!(matches!(rows[0][0], Value::RowId(_)));
}

#[test]
fn aggregates_group_having() {
    let mut db = Database::new();
    setup_emp(&mut db);
    let rows = db
        .query(
            "SELECT dept, COUNT(*), MIN(id), MAX(id) FROM employees \
             GROUP BY dept HAVING COUNT(*) > 1 ORDER BY dept",
        )
        .unwrap();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0], vec!["eng".into(), Value::Integer(2), Value::Integer(1), Value::Integer(2)]);
    assert_eq!(rows[1][0], Value::from("sales"));
}

#[test]
fn global_aggregate_on_empty_table() {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (a INTEGER)").unwrap();
    let rows = db.query("SELECT COUNT(*), SUM(a), AVG(a) FROM t").unwrap();
    assert_eq!(rows[0], vec![Value::Integer(0), Value::Null, Value::Null]);
}

#[test]
fn distinct_and_limit() {
    let mut db = Database::new();
    setup_emp(&mut db);
    let rows = db.query("SELECT DISTINCT dept FROM employees ORDER BY dept").unwrap();
    assert_eq!(rows.len(), 3);
    let rows = db.query("SELECT name FROM employees ORDER BY id LIMIT 2").unwrap();
    assert_eq!(rows.len(), 2);
}

#[test]
fn update_and_delete() {
    let mut db = Database::new();
    setup_emp(&mut db);
    let r = db.execute("UPDATE employees SET dept = 'exec' WHERE id = 5").unwrap();
    assert_eq!(r.affected(), 1);
    let r = db.execute("DELETE FROM employees WHERE dept = 'sales'").unwrap();
    assert_eq!(r.affected(), 2);
    let rows = db.query("SELECT COUNT(*) FROM employees").unwrap();
    assert_eq!(rows[0][0], Value::Integer(3));
}

#[test]
fn btree_index_is_used_and_maintained() {
    let mut db = Database::new();
    setup_emp_many(&mut db, 500);
    db.execute("CREATE INDEX emp_id ON employees(id)").unwrap();
    db.execute("ANALYZE TABLE employees").unwrap();
    let plan = db.explain("SELECT name FROM employees WHERE id = 3").unwrap().join("\n");
    assert!(plan.contains("BTREE ACCESS"), "plan should use btree:\n{plan}");
    let rows = db.query("SELECT name FROM employees WHERE id = 3").unwrap();
    assert_eq!(rows[0][0], Value::from("emp3"));
    // Maintained across DML.
    db.execute("UPDATE employees SET id = 3000 WHERE id = 3").unwrap();
    assert!(db.query("SELECT name FROM employees WHERE id = 3").unwrap().is_empty());
    assert_eq!(
        db.query("SELECT name FROM employees WHERE id = 3000").unwrap()[0][0],
        Value::from("emp3")
    );
    db.execute("DELETE FROM employees WHERE id = 3000").unwrap();
    assert!(db.query("SELECT name FROM employees WHERE id = 3000").unwrap().is_empty());
}

#[test]
fn hash_join_on_equality() {
    let mut db = Database::new();
    setup_emp(&mut db);
    db.execute("CREATE TABLE depts (dname VARCHAR2(16), floor INTEGER)").unwrap();
    db.execute("INSERT INTO depts VALUES ('eng', 3), ('sales', 1), ('hr', 2)").unwrap();
    let rows = db
        .query(
            "SELECT e.name, d.floor FROM employees e, depts d \
             WHERE e.dept = d.dname AND d.floor > 1 ORDER BY e.name",
        )
        .unwrap();
    assert_eq!(rows.len(), 3); // alice, bob (eng/3), erin (hr/2)
    assert_eq!(rows[0][0], Value::from("alice"));
    let plan = db
        .explain(
            "SELECT e.name, d.floor FROM employees e, depts d WHERE e.dept = d.dname",
        )
        .unwrap()
        .join("\n");
    assert!(plan.contains("HASH JOIN"), "{plan}");
}

#[test]
fn rowid_join_legacy_two_step_pattern() {
    // The pre-8i text pattern: temp table of rowids joined back.
    let mut db = Database::new();
    setup_emp(&mut db);
    db.execute("CREATE TABLE results (rid ROWID)").unwrap();
    let rids = db.query("SELECT ROWID FROM employees WHERE dept = 'eng'").unwrap();
    for r in &rids {
        db.execute_with("INSERT INTO results VALUES (?)", &[r[0].clone()]).unwrap();
    }
    let rows = db
        .query("SELECT e.name FROM employees e, results r WHERE e.ROWID = r.rid ORDER BY e.name")
        .unwrap();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0][0], Value::from("alice"));
}

#[test]
fn iot_table_roundtrip_and_key_access() {
    let mut db = Database::new();
    db.execute(
        "CREATE TABLE kv (k VARCHAR2(10), seq INTEGER, payload VARCHAR2(20), \
         PRIMARY KEY (k, seq)) ORGANIZATION INDEX",
    )
    .unwrap();
    db.execute("INSERT INTO kv VALUES ('a', 1, 'x'), ('a', 2, 'y'), ('b', 1, 'z')").unwrap();
    // Bulk rows so key access beats a full scan.
    for i in 0..500 {
        db.execute_with(
            "INSERT INTO kv VALUES (?, ?, ?)",
            &[format!("k{i}").into(), 1i64.into(), "p".into()],
        )
        .unwrap();
    }
    db.execute("ANALYZE TABLE kv").unwrap();
    let rows = db.query("SELECT payload FROM kv WHERE k = 'a'").unwrap();
    assert_eq!(rows.len(), 2);
    // Duplicate primary key is rejected.
    assert!(db.execute("INSERT INTO kv VALUES ('a', 1, 'dup')").is_err());
    // Key access shows up in the plan.
    let plan = db.explain("SELECT payload FROM kv WHERE k = 'b'").unwrap().join("\n");
    assert!(plan.contains("IOT RANGE"), "{plan}");
}

#[test]
fn transactions_rollback_and_commit() {
    let mut db = Database::new();
    setup_emp(&mut db);
    db.execute("BEGIN").unwrap();
    db.execute("DELETE FROM employees WHERE dept = 'eng'").unwrap();
    assert_eq!(db.query("SELECT COUNT(*) FROM employees").unwrap()[0][0], Value::Integer(3));
    db.execute("ROLLBACK").unwrap();
    assert_eq!(db.query("SELECT COUNT(*) FROM employees").unwrap()[0][0], Value::Integer(5));
    db.execute("BEGIN").unwrap();
    db.execute("INSERT INTO employees VALUES ('zed', 9, 'eng')").unwrap();
    db.execute("COMMIT").unwrap();
    assert_eq!(db.query("SELECT COUNT(*) FROM employees").unwrap()[0][0], Value::Integer(6));
}

#[test]
fn statement_atomicity_on_error() {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (a INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES (1), (2)").unwrap();
    // Division by zero mid-statement must roll the whole statement back.
    let err = db.execute("UPDATE t SET a = 10 / (a - 2)");
    assert!(err.is_err());
    let rows = db.query("SELECT a FROM t ORDER BY a").unwrap();
    assert_eq!(rows, vec![vec![Value::Integer(1)], vec![Value::Integer(2)]]);
}

#[test]
fn streaming_cursor_yields_incrementally() {
    let mut db = Database::new();
    setup_emp(&mut db);
    let mut cur = db.open_query("SELECT name FROM employees").unwrap();
    assert_eq!(cur.columns(), &["NAME".to_string()]);
    let first = cur.next_row().unwrap().unwrap();
    assert!(!first.is_empty());
    let mut rest = 0;
    while cur.next_row().unwrap().is_some() {
        rest += 1;
    }
    assert_eq!(rest, 4);
}

// ---------------------------------------------------------------------------
// the extensible-indexing lifecycle through the KV cartridge
// ---------------------------------------------------------------------------

#[test]
fn domain_index_full_lifecycle() {
    let mut db = kv_db();
    setup_emp_many(&mut db, 300);
    // Create with pre-existing data → cartridge populates via callbacks.
    db.execute("CREATE INDEX emp_dept_kv ON employees(dept) INDEXTYPE IS KvIndexType").unwrap();
    // Index storage table exists and holds all entries.
    let n = db.query("SELECT COUNT(*) FROM DR$EMP_DEPT_KV$KV").unwrap()[0][0].clone();
    assert_eq!(n, Value::Integer(300));

    // Query through the operator: optimizer should pick the domain scan.
    let plan = db.explain("SELECT name FROM employees WHERE KeyMatch(dept, 'dept3')").unwrap().join("\n");
    assert!(plan.contains("DOMAIN INDEX SCAN"), "{plan}");
    let rows = db.query("SELECT name FROM employees WHERE KeyMatch(dept, 'dept3')").unwrap();
    assert_eq!(rows.len(), 30);

    // Implicit maintenance on INSERT/UPDATE/DELETE.
    db.execute("INSERT INTO employees VALUES ('zed', 9001, 'dept3')").unwrap();
    assert_eq!(db.query("SELECT name FROM employees WHERE KeyMatch(dept, 'dept3')").unwrap().len(), 31);
    db.execute("UPDATE employees SET dept = 'dept4' WHERE name = 'zed'").unwrap();
    assert_eq!(db.query("SELECT name FROM employees WHERE KeyMatch(dept, 'dept3')").unwrap().len(), 30);
    db.execute("DELETE FROM employees WHERE name = 'emp3'").unwrap();
    assert_eq!(db.query("SELECT name FROM employees WHERE KeyMatch(dept, 'dept3')").unwrap().len(), 29);

    // TRUNCATE drives ODCIIndexTruncate.
    db.execute("TRUNCATE TABLE employees").unwrap();
    assert_eq!(
        db.query("SELECT COUNT(*) FROM DR$EMP_DEPT_KV$KV").unwrap()[0][0],
        Value::Integer(0)
    );

    // DROP INDEX drives ODCIIndexDrop (storage table disappears).
    db.execute("DROP INDEX emp_dept_kv").unwrap();
    assert!(db.query("SELECT COUNT(*) FROM DR$EMP_DEPT_KV$KV").is_err());
}

#[test]
fn trace_records_fig1_call_flow() {
    let mut db = kv_db();
    setup_emp_many(&mut db, 300);
    db.trace().set_enabled(true);
    db.execute("CREATE INDEX emp_dept_kv ON employees(dept) INDEXTYPE IS KvIndexType").unwrap();
    db.execute("INSERT INTO employees VALUES ('zed', 9001, 'dept3')").unwrap();
    db.query("SELECT name FROM employees WHERE KeyMatch(dept, 'dept3')").unwrap();
    let seq = db.trace().routine_sequence();
    assert!(seq.contains(&"ODCIIndexCreate"));
    assert!(seq.contains(&"ODCIIndexInsert"));
    assert!(seq.contains(&"ODCIStatsSelectivity"));
    assert!(seq.contains(&"ODCIStatsIndexCost"));
    assert!(seq.contains(&"ODCIIndexStart"));
    assert!(seq.contains(&"ODCIIndexFetch"));
    assert!(seq.contains(&"ODCIIndexClose"));
    // Start precedes Fetch precedes Close.
    let p = |r: &str| seq.iter().position(|x| *x == r).unwrap();
    assert!(p("ODCIIndexStart") < p("ODCIIndexFetch"));
    assert!(p("ODCIIndexFetch") < p("ODCIIndexClose"));
}

#[test]
fn optimizer_prefers_btree_when_cheaper() {
    // The paper's §2.4.2 example: Contains(resume,…) AND id = 100 should
    // use the id B-tree and evaluate the operator functionally.
    let mut db = kv_db();
    setup_emp_many(&mut db, 300);
    db.execute("CREATE INDEX emp_dept_kv ON employees(dept) INDEXTYPE IS KvIndexType").unwrap();
    db.execute("CREATE INDEX emp_id ON employees(id)").unwrap();
    db.execute("ANALYZE TABLE employees").unwrap();
    let plan = db
        .explain("SELECT name FROM employees WHERE KeyMatch(dept, 'dept2') AND id = 2")
        .unwrap()
        .join("\n");
    assert!(plan.contains("BTREE ACCESS"), "{plan}");
    assert!(!plan.contains("DOMAIN INDEX SCAN"), "{plan}");
    // And the result is still correct (functional fallback applied).
    let rows =
        db.query("SELECT name FROM employees WHERE KeyMatch(dept, 'dept2') AND id = 2").unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0][0], Value::from("emp2"));
}

#[test]
fn functional_fallback_without_index() {
    let mut db = kv_db();
    setup_emp(&mut db);
    // No domain index at all: operator evaluates through its function.
    let rows = db.query("SELECT name FROM employees WHERE KeyMatch(dept, 'hr')").unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0][0], Value::from("erin"));
}

#[test]
fn domain_index_rolls_back_with_transaction() {
    // §2.5: "Updates to the index data are within the same transactional
    // boundaries as updates to the base table."
    let mut db = kv_db();
    setup_emp(&mut db);
    db.execute("CREATE INDEX emp_dept_kv ON employees(dept) INDEXTYPE IS KvIndexType").unwrap();
    db.execute("BEGIN").unwrap();
    db.execute("INSERT INTO employees VALUES ('zed', 6, 'eng')").unwrap();
    assert_eq!(db.query("SELECT name FROM employees WHERE KeyMatch(dept, 'eng')").unwrap().len(), 3);
    db.execute("ROLLBACK").unwrap();
    // Base table AND the cartridge's index table both rolled back.
    assert_eq!(db.query("SELECT COUNT(*) FROM employees").unwrap()[0][0], Value::Integer(5));
    assert_eq!(db.query("SELECT name FROM employees WHERE KeyMatch(dept, 'eng')").unwrap().len(), 2);
    assert_eq!(
        db.query("SELECT COUNT(*) FROM DR$EMP_DEPT_KV$KV").unwrap()[0][0],
        Value::Integer(5)
    );
}

#[test]
fn create_index_on_missing_column_fails_cleanly() {
    let mut db = kv_db();
    setup_emp(&mut db);
    assert!(db
        .execute("CREATE INDEX broken ON employees(nope) INDEXTYPE IS KvIndexType")
        .is_err());
    // No stale dictionary entry.
    assert!(db.catalog().domain_index("BROKEN").is_none());
}

#[test]
fn alter_index_merges_parameters() {
    let mut db = kv_db();
    setup_emp(&mut db);
    db.execute(
        "CREATE INDEX emp_dept_kv ON employees(dept) INDEXTYPE IS KvIndexType \
         PARAMETERS (':Language English :Ignore the a an')",
    )
    .unwrap();
    db.execute("ALTER INDEX emp_dept_kv PARAMETERS (':Ignore COBOL')").unwrap();
    let d = db.catalog().domain_index("EMP_DEPT_KV").unwrap();
    assert_eq!(d.parameters.first("Language"), Some("English"));
    assert_eq!(d.parameters.values("Ignore"), &["COBOL"]);
}

#[test]
fn batch_size_controls_fetch_granularity() {
    let mut db = kv_db();
    setup_emp_many(&mut db, 300);
    db.execute("CREATE INDEX emp_dept_kv ON employees(dept) INDEXTYPE IS KvIndexType").unwrap();
    db.trace().set_enabled(true);

    db.set_batch_size(1);
    db.query("SELECT name FROM employees WHERE KeyMatch(dept, 'dept3')").unwrap();
    let fetches_row_at_a_time =
        db.trace().routine_sequence().iter().filter(|r| **r == "ODCIIndexFetch").count();

    db.trace().clear();
    db.set_batch_size(100);
    db.query("SELECT name FROM employees WHERE KeyMatch(dept, 'dept3')").unwrap();
    let fetches_batched =
        db.trace().routine_sequence().iter().filter(|r| **r == "ODCIIndexFetch").count();

    assert!(
        fetches_row_at_a_time > fetches_batched,
        "row-at-a-time {fetches_row_at_a_time} vs batched {fetches_batched}"
    );
}

#[test]
fn varray_contains_via_functional_operator() {
    // The paper's collection example: Contains(Hobbies, 'Skiing').
    let mut db = Database::new();
    db.register_function(ScalarFunction::new("VArrayContainsFn", |_, args| {
        let elems = args[0].as_array()?;
        Ok(Value::Boolean(elems.iter().any(|e| e == &args[1])))
    }))
    .unwrap();
    db.execute(
        "CREATE OPERATOR VContains BINDING (VARRAY OF VARCHAR2(32), VARCHAR2) \
         RETURN BOOLEAN USING VArrayContainsFn",
    )
    .unwrap();
    db.execute("CREATE TABLE people (name VARCHAR2(32), hobbies VARRAY OF VARCHAR2(32))").unwrap();
    db.execute("INSERT INTO people VALUES ('ann', VARRAY('Skiing', 'Chess'))").unwrap();
    db.execute("INSERT INTO people VALUES ('ben', VARRAY('Running'))").unwrap();
    let rows = db.query("SELECT name FROM people WHERE VContains(hobbies, 'Skiing')").unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0][0], Value::from("ann"));
}

#[test]
fn object_types_and_attribute_access() {
    let mut db = Database::new();
    db.execute("CREATE TYPE point AS OBJECT (x NUMBER, y NUMBER)").unwrap();
    db.execute("CREATE TABLE sites (name VARCHAR2(20), loc POINT)").unwrap();
    db.execute("INSERT INTO sites VALUES ('hq', POINT(1.5, 2.5))").unwrap();
    let rows = db.query("SELECT s.loc.y FROM sites s WHERE s.loc.x = 1.5").unwrap();
    assert_eq!(rows[0][0], Value::Number(2.5));
}

#[test]
fn lob_columns_store_strings_out_of_line() {
    let mut db = Database::new();
    db.execute("CREATE TABLE docs (id INTEGER, body CLOB)").unwrap();
    db.execute("INSERT INTO docs VALUES (1, 'a very large document body')").unwrap();
    let rows = db.query("SELECT body FROM docs WHERE id = 1").unwrap();
    assert!(matches!(rows[0][0], Value::Lob(_)), "LOB column holds a locator");
}

#[test]
fn explain_shows_costs() {
    let mut db = Database::new();
    setup_emp(&mut db);
    let lines = db.explain("SELECT name FROM employees WHERE id = 1").unwrap();
    assert!(lines.iter().any(|l| l.contains("cost=")), "{lines:?}");
}
