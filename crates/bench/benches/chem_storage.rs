//! E5 (§3.2.4): LOB-resident vs external-file fingerprint index:
//! incremental maintenance cost and warm substructure-query latency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use extidx_bench::chem_fixture;
use extidx_chem::MoleculeWorkload;

fn bench_chem_storage(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_chem_storage");
    group.sample_size(10);
    for storage in ["LOB", "FILE"] {
        let mut fx = chem_fixture(1500, 5, &format!(":Storage {storage}")).expect("fixture");
        let mut wl = MoleculeWorkload::new(777);
        let mut next_id = 100_000i64;
        group.bench_with_input(BenchmarkId::new("incremental_insert", storage), &storage, |b, _| {
            b.iter(|| {
                let m = wl.molecule(12);
                next_id += 1;
                fx.db
                    .execute_with(
                        "INSERT INTO compounds VALUES (?, ?)",
                        &[next_id.into(), m.into()],
                    )
                    .expect("insert")
            })
        });
        let sql = "SELECT COUNT(*) FROM compounds WHERE MolContains(mol, 'CC(=O)N')";
        group.bench_with_input(BenchmarkId::new("substructure_query_warm", storage), &storage, |b, _| {
            b.iter(|| fx.db.query(sql).expect("query"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_chem_storage);
criterion_main!(benches);
