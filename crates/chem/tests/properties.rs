//! Property tests for the chemistry cartridge. The load-bearing
//! invariant: the fingerprint screen never produces a false negative for
//! substructure containment.

use proptest::prelude::*;

use extidx_chem::{Fingerprint, Molecule, MoleculeWorkload};

proptest! {
    /// Generated molecules always parse, and parsing is deterministic.
    #[test]
    fn generated_molecules_parse(seed in 0u64..10_000, atoms in 1usize..25) {
        let mut wl = MoleculeWorkload::new(seed);
        let s = wl.molecule(atoms);
        let m1 = Molecule::parse(&s).expect("generated molecule parses");
        let m2 = Molecule::parse(&s).expect("reparse");
        prop_assert_eq!(m1, m2);
    }

    /// molecule_containing(f) really contains f, and the screen agrees.
    #[test]
    fn screen_has_no_false_negatives(seed in 0u64..10_000, extra in 0usize..12) {
        let fragments = ["CC=O", "CCN", "C(=O)N", "CCO", "CSC"];
        let mut wl = MoleculeWorkload::new(seed);
        let frag_text = fragments[(seed as usize) % fragments.len()];
        let frag = Molecule::parse(frag_text).unwrap();
        let mol_text = wl.molecule_containing(frag_text, extra);
        let mol = Molecule::parse(&mol_text).unwrap();
        prop_assert!(mol.contains_subgraph(&frag), "{mol_text} should contain {frag_text}");
        prop_assert!(
            Fingerprint::of(&frag).is_subset_of(&Fingerprint::of(&mol)),
            "screen false negative for {frag_text} in {mol_text}"
        );
    }

    /// Tanimoto is symmetric, in [0,1], and 1.0 for identical molecules.
    #[test]
    fn tanimoto_properties(seed_a in 0u64..5_000, seed_b in 0u64..5_000) {
        let a = Fingerprint::of(&Molecule::parse(&MoleculeWorkload::new(seed_a).molecule(10)).unwrap());
        let b = Fingerprint::of(&Molecule::parse(&MoleculeWorkload::new(seed_b).molecule(10)).unwrap());
        let t = a.tanimoto(&b);
        prop_assert!((0.0..=1.0).contains(&t));
        prop_assert!((t - b.tanimoto(&a)).abs() < 1e-12);
        prop_assert_eq!(a.tanimoto(&a), 1.0);
    }

    /// Subgraph containment is reflexive and respects atom counts.
    #[test]
    fn subgraph_reflexive(seed in 0u64..5_000, atoms in 1usize..18) {
        let mut wl = MoleculeWorkload::new(seed);
        let m = Molecule::parse(&wl.molecule(atoms)).unwrap();
        prop_assert!(m.contains_subgraph(&m));
    }

    /// Fingerprint byte encoding round-trips exactly.
    #[test]
    fn fingerprint_bytes_roundtrip(seed in 0u64..5_000) {
        let mut wl = MoleculeWorkload::new(seed);
        let fp = Fingerprint::of(&Molecule::parse(&wl.molecule(12)).unwrap());
        prop_assert_eq!(Fingerprint::from_bytes(&fp.to_bytes()).unwrap(), fp);
    }
}
