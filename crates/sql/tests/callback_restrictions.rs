//! §2.5's callback restrictions, enforced: "Index maintenance routines
//! can not execute DDL statements. Also, these routines cannot update the
//! base table on which the domain index is created. Index scan routines
//! can only execute SQL query statements. There are no restrictions on
//! the index definition routines." Plus failure injection: a cartridge
//! whose routines fail must leave no debris behind (statement atomicity).

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use extidx_common::{Error, Result, RowId, Value};
use extidx_core::meta::{IndexInfo, OperatorCall};
use extidx_core::operator::ScalarFunction;
use extidx_core::params::ParamString;
use extidx_core::scan::{FetchResult, ScanContext};
use extidx_core::server::ServerContext;
use extidx_core::stats::{DefaultStats, IndexCost, OdciStats};
use extidx_core::OdciIndex;
use extidx_sql::Database;

/// What the misbehaving cartridge should attempt next.
/// 0 = behave; 1 = DDL in maintenance; 2 = base-table DML in maintenance;
/// 3 = DML in scan; 4 = fail during create after creating a table.
static MODE: AtomicU8 = AtomicU8::new(0);

struct NaughtyIndex;

impl OdciIndex for NaughtyIndex {
    fn create(&self, srv: &mut dyn ServerContext, info: &IndexInfo) -> Result<()> {
        srv.execute(
            &format!("CREATE TABLE {} (k INTEGER, PRIMARY KEY (k)) ORGANIZATION INDEX",
                info.storage_table_name("N")),
            &[],
        )?;
        if MODE.load(Ordering::SeqCst) == 4 {
            return Err(Error::odci(&info.indextype_name, "ODCIIndexCreate", "injected failure"));
        }
        Ok(())
    }
    fn alter(&self, _: &mut dyn ServerContext, _: &IndexInfo, _: &ParamString) -> Result<()> {
        Ok(())
    }
    fn truncate(&self, _: &mut dyn ServerContext, _: &IndexInfo) -> Result<()> {
        Ok(())
    }
    fn drop_index(&self, srv: &mut dyn ServerContext, info: &IndexInfo) -> Result<()> {
        srv.execute(&format!("DROP TABLE {}", info.storage_table_name("N")), &[])?;
        Ok(())
    }
    fn insert(&self, srv: &mut dyn ServerContext, info: &IndexInfo, _: RowId, _: &Value) -> Result<()> {
        match MODE.load(Ordering::SeqCst) {
            1 => {
                // DDL from a maintenance routine: must be rejected.
                srv.execute("CREATE TABLE smuggled (a INTEGER)", &[])?;
                Ok(())
            }
            2 => {
                // Base-table DML from a maintenance routine: rejected.
                srv.execute(&format!("DELETE FROM {}", info.table_name), &[])?;
                Ok(())
            }
            _ => Ok(()),
        }
    }
    fn update(
        &self,
        _: &mut dyn ServerContext,
        _: &IndexInfo,
        _: RowId,
        _: &Value,
        _: &Value,
    ) -> Result<()> {
        Ok(())
    }
    fn delete(&self, _: &mut dyn ServerContext, _: &IndexInfo, _: RowId, _: &Value) -> Result<()> {
        Ok(())
    }
    fn start(&self, srv: &mut dyn ServerContext, info: &IndexInfo, _: &OperatorCall) -> Result<ScanContext> {
        if MODE.load(Ordering::SeqCst) == 3 {
            // DML from a scan routine: must be rejected.
            srv.execute(
                &format!("INSERT INTO {} VALUES (1)", info.storage_table_name("N")),
                &[],
            )?;
        }
        Ok(ScanContext::State(Box::new(())))
    }
    fn fetch(
        &self,
        _: &mut dyn ServerContext,
        _: &IndexInfo,
        _: &mut ScanContext,
        _: usize,
    ) -> Result<FetchResult> {
        Ok(FetchResult::end())
    }
    fn close(&self, _: &mut dyn ServerContext, _: &IndexInfo, _: ScanContext) -> Result<()> {
        Ok(())
    }
}

struct NaughtyStats;
impl OdciStats for NaughtyStats {
    fn collect(&self, _: &mut dyn ServerContext, _: &IndexInfo) -> Result<()> {
        Ok(())
    }
    fn selectivity(&self, _: &mut dyn ServerContext, _: &IndexInfo, _: &OperatorCall) -> Result<f64> {
        Ok(DefaultStats::default().default_selectivity)
    }
    fn index_cost(
        &self,
        _: &mut dyn ServerContext,
        _: &IndexInfo,
        _: &OperatorCall,
        _: f64,
    ) -> Result<IndexCost> {
        Ok(IndexCost { io_cost: 0.0, cpu_cost: 0.0 })
    }
}

fn naughty_db() -> Database {
    MODE.store(0, Ordering::SeqCst);
    let mut db = Database::new();
    db.register_function(ScalarFunction::new("NMatchFn", |_, _| Ok(Value::Boolean(true)))).unwrap();
    db.register_odci_implementation("NaughtyIndex", Arc::new(NaughtyIndex), Arc::new(NaughtyStats));
    db.execute("CREATE OPERATOR NMatch BINDING (INTEGER) RETURN BOOLEAN USING NMatchFn").unwrap();
    db.execute("CREATE INDEXTYPE NaughtyType FOR NMatch(INTEGER) USING NaughtyIndex").unwrap();
    db.execute("CREATE TABLE base (v INTEGER)").unwrap();
    db.execute("INSERT INTO base VALUES (1), (2)").unwrap();
    db.execute("CREATE INDEX nidx ON base(v) INDEXTYPE IS NaughtyType").unwrap();
    db
}

#[test]
fn maintenance_cannot_execute_ddl() {
    let mut db = naughty_db();
    MODE.store(1, Ordering::SeqCst);
    let err = db.execute("INSERT INTO base VALUES (3)").unwrap_err();
    assert!(matches!(err, Error::CallbackViolation(_)), "{err}");
    // The failed statement rolled back entirely: no new row.
    MODE.store(0, Ordering::SeqCst);
    assert_eq!(db.query("SELECT COUNT(*) FROM base").unwrap()[0][0], Value::Integer(2));
    assert!(!db.catalog().has_table("SMUGGLED"));
}

#[test]
fn maintenance_cannot_modify_base_table() {
    let mut db = naughty_db();
    MODE.store(2, Ordering::SeqCst);
    let err = db.execute("INSERT INTO base VALUES (3)").unwrap_err();
    assert!(matches!(err, Error::CallbackViolation(_)), "{err}");
    MODE.store(0, Ordering::SeqCst);
    assert_eq!(db.query("SELECT COUNT(*) FROM base").unwrap()[0][0], Value::Integer(2));
}

#[test]
fn scan_routines_are_query_only() {
    let mut db = naughty_db();
    MODE.store(3, Ordering::SeqCst);
    let err = db.query("SELECT v FROM base WHERE NMatch(v)").unwrap_err();
    assert!(matches!(err, Error::CallbackViolation(_)), "{err}");
}

#[test]
fn definition_routines_are_unrestricted() {
    // naughty_db()'s create issued DDL (its own index table) — §2.5: "no
    // restrictions on the index definition routines."
    let mut db = naughty_db();
    assert!(db.query("SELECT COUNT(*) FROM DR$NIDX$N").is_ok());
}

#[test]
fn failed_create_leaves_no_debris() {
    MODE.store(0, Ordering::SeqCst);
    let mut db = Database::new();
    db.register_function(ScalarFunction::new("NMatchFn", |_, _| Ok(Value::Boolean(true)))).unwrap();
    db.register_odci_implementation("NaughtyIndex", Arc::new(NaughtyIndex), Arc::new(NaughtyStats));
    db.execute("CREATE OPERATOR NMatch BINDING (INTEGER) RETURN BOOLEAN USING NMatchFn").unwrap();
    db.execute("CREATE INDEXTYPE NaughtyType FOR NMatch(INTEGER) USING NaughtyIndex").unwrap();
    db.execute("CREATE TABLE base (v INTEGER)").unwrap();
    MODE.store(4, Ordering::SeqCst);
    let err = db.execute("CREATE INDEX nidx ON base(v) INDEXTYPE IS NaughtyType").unwrap_err();
    assert!(matches!(err, Error::Odci { .. }), "{err}");
    // Dictionary entry removed AND the half-created index table unwound
    // by statement atomicity.
    assert!(db.catalog().domain_index("NIDX").is_none());
    assert!(!db.catalog().has_table("DR$NIDX$N"));
    MODE.store(0, Ordering::SeqCst);
}

#[test]
fn transaction_control_rejected_inside_callbacks() {
    // Even definition routines may not issue BEGIN/COMMIT/ROLLBACK.
    struct TxnIndex;
    impl OdciIndex for TxnIndex {
        fn create(&self, srv: &mut dyn ServerContext, _: &IndexInfo) -> Result<()> {
            srv.execute("COMMIT", &[])?;
            Ok(())
        }
        fn alter(&self, _: &mut dyn ServerContext, _: &IndexInfo, _: &ParamString) -> Result<()> {
            Ok(())
        }
        fn truncate(&self, _: &mut dyn ServerContext, _: &IndexInfo) -> Result<()> {
            Ok(())
        }
        fn drop_index(&self, _: &mut dyn ServerContext, _: &IndexInfo) -> Result<()> {
            Ok(())
        }
        fn insert(&self, _: &mut dyn ServerContext, _: &IndexInfo, _: RowId, _: &Value) -> Result<()> {
            Ok(())
        }
        fn update(
            &self,
            _: &mut dyn ServerContext,
            _: &IndexInfo,
            _: RowId,
            _: &Value,
            _: &Value,
        ) -> Result<()> {
            Ok(())
        }
        fn delete(&self, _: &mut dyn ServerContext, _: &IndexInfo, _: RowId, _: &Value) -> Result<()> {
            Ok(())
        }
        fn start(&self, _: &mut dyn ServerContext, _: &IndexInfo, _: &OperatorCall) -> Result<ScanContext> {
            Ok(ScanContext::State(Box::new(())))
        }
        fn fetch(
            &self,
            _: &mut dyn ServerContext,
            _: &IndexInfo,
            _: &mut ScanContext,
            _: usize,
        ) -> Result<FetchResult> {
            Ok(FetchResult::end())
        }
        fn close(&self, _: &mut dyn ServerContext, _: &IndexInfo, _: ScanContext) -> Result<()> {
            Ok(())
        }
    }
    let mut db = Database::new();
    db.register_function(ScalarFunction::new("TMatchFn", |_, _| Ok(Value::Boolean(true)))).unwrap();
    db.register_odci_implementation("TxnIndex", Arc::new(TxnIndex), Arc::new(NaughtyStats));
    db.execute("CREATE OPERATOR TMatch BINDING (INTEGER) RETURN BOOLEAN USING TMatchFn").unwrap();
    db.execute("CREATE INDEXTYPE TxnType FOR TMatch(INTEGER) USING TxnIndex").unwrap();
    db.execute("CREATE TABLE base (v INTEGER)").unwrap();
    let err = db.execute("CREATE INDEX tidx ON base(v) INDEXTYPE IS TxnType").unwrap_err();
    assert!(matches!(err, Error::CallbackViolation(_)), "{err}");
}

#[test]
fn failed_create_releases_external_storage() {
    // External storage (here: a server-managed file) is invisible to the
    // statement-atomicity undo that cleans up SQL-level debris. The
    // engine must instead invoke the cartridge's own ODCIIndexDrop on a
    // failed ODCIIndexCreate, so the cartridge can release what it
    // allocated.
    use std::sync::atomic::AtomicBool;
    static FAIL: AtomicBool = AtomicBool::new(true);
    const EXT_FILE: &str = "dr$fidx.ext";

    struct FileDebrisIndex;
    impl OdciIndex for FileDebrisIndex {
        fn create(&self, srv: &mut dyn ServerContext, info: &IndexInfo) -> Result<()> {
            srv.file_create(EXT_FILE)?;
            if FAIL.load(Ordering::SeqCst) {
                return Err(Error::odci(&info.indextype_name, "ODCIIndexCreate", "injected"));
            }
            Ok(())
        }
        fn alter(&self, _: &mut dyn ServerContext, _: &IndexInfo, _: &ParamString) -> Result<()> {
            Ok(())
        }
        fn truncate(&self, _: &mut dyn ServerContext, _: &IndexInfo) -> Result<()> {
            Ok(())
        }
        fn drop_index(&self, srv: &mut dyn ServerContext, _: &IndexInfo) -> Result<()> {
            srv.file_remove(EXT_FILE)?;
            Ok(())
        }
        fn insert(&self, _: &mut dyn ServerContext, _: &IndexInfo, _: RowId, _: &Value) -> Result<()> {
            Ok(())
        }
        fn update(
            &self,
            _: &mut dyn ServerContext,
            _: &IndexInfo,
            _: RowId,
            _: &Value,
            _: &Value,
        ) -> Result<()> {
            Ok(())
        }
        fn delete(&self, _: &mut dyn ServerContext, _: &IndexInfo, _: RowId, _: &Value) -> Result<()> {
            Ok(())
        }
        fn start(&self, _: &mut dyn ServerContext, _: &IndexInfo, _: &OperatorCall) -> Result<ScanContext> {
            Ok(ScanContext::State(Box::new(())))
        }
        fn fetch(
            &self,
            _: &mut dyn ServerContext,
            _: &IndexInfo,
            _: &mut ScanContext,
            _: usize,
        ) -> Result<FetchResult> {
            Ok(FetchResult::end())
        }
        fn close(&self, _: &mut dyn ServerContext, _: &IndexInfo, _: ScanContext) -> Result<()> {
            Ok(())
        }
    }

    let mut db = Database::new();
    db.register_function(ScalarFunction::new("FMatchFn", |_, _| Ok(Value::Boolean(true)))).unwrap();
    db.register_odci_implementation("FileDebrisIndex", Arc::new(FileDebrisIndex), Arc::new(NaughtyStats));
    db.execute("CREATE OPERATOR FMatch BINDING (INTEGER) RETURN BOOLEAN USING FMatchFn").unwrap();
    db.execute("CREATE INDEXTYPE FileType FOR FMatch(INTEGER) USING FileDebrisIndex").unwrap();
    db.execute("CREATE TABLE fbase (v INTEGER)").unwrap();
    db.execute("INSERT INTO fbase VALUES (1)").unwrap();

    FAIL.store(true, Ordering::SeqCst);
    let err = db.execute("CREATE INDEX fidx ON fbase(v) INDEXTYPE IS FileType").unwrap_err();
    assert!(matches!(err, Error::Odci { .. }), "{err}");
    // The external file the failed create allocated is gone, and the
    // dictionary never recorded the index.
    assert!(!db.storage().files_ref().exists(EXT_FILE), "leaked external file");
    assert!(db.catalog().domain_index("FIDX").is_none());

    // A retry on the same name now succeeds cleanly.
    FAIL.store(false, Ordering::SeqCst);
    db.execute("CREATE INDEX fidx ON fbase(v) INDEXTYPE IS FileType").unwrap();
    assert!(db.storage().files_ref().exists(EXT_FILE));
    assert!(db.catalog().domain_index("FIDX").is_some());
}
