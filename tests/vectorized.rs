//! The vectorized batch executor (see DESIGN.md §4h).
//!
//! Three things are load-bearing and checked here:
//! - the batch path and the row path are bag-equal — directly on pinned
//!   queries across heap, B-tree, and domain-index access paths, and
//!   through the differential oracle's forced-plan sweep with the
//!   executor pinned to each path;
//! - zone maps only ever widen under UPDATE/DELETE (superset validity),
//!   so pruning never drops a live row even after heavy churn; and
//! - LIMIT terminates a batched scan early by shrinking the batch quota
//!   it hands downstream, visible in EXPLAIN ANALYZE actual-row counts.

use extidx::sql::Database;
use extidx_qgen::{run_seed, ChaosOpts};

/// Parse `key=<digits>` from a plan line, searching from the *last*
/// occurrence (lines carry both the estimate and the actual).
fn field(line: &str, key: &str) -> u64 {
    let pat = format!("{key}=");
    let at = line.rfind(&pat).unwrap_or_else(|| panic!("no {pat} in {line:?}"));
    line[at + pat.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap()
}

fn analyze(db: &mut Database, sql: &str) -> Vec<String> {
    db.query(&format!("EXPLAIN ANALYZE {sql}"))
        .unwrap()
        .into_iter()
        .map(|r| r[0].to_string())
        .collect()
}

/// Sorted stringified rows — the bag, order-insensitively.
fn bag(db: &mut Database, sql: &str) -> Vec<String> {
    let mut rows: Vec<String> = db
        .query(sql)
        .unwrap_or_else(|e| panic!("{sql}: {e}"))
        .into_iter()
        .map(|r| r.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("|"))
        .collect();
    rows.sort();
    rows
}

fn mixed_db() -> Database {
    let mut db = Database::with_cache_pages(4096);
    extidx::text::install(&mut db).unwrap();
    db.execute("CREATE TABLE docs (id INTEGER, score INTEGER, body VARCHAR2(200))").unwrap();
    for i in 0..600i64 {
        let body = if i % 9 == 0 {
            format!("heather moor number {i}")
        } else {
            format!("plain filler row {i}")
        };
        db.execute_with(
            "INSERT INTO docs VALUES (?, ?, ?)",
            &[i.into(), ((i * 31) % 500).into(), body.into()],
        )
        .unwrap();
    }
    db.execute("CREATE INDEX ds ON docs(score)").unwrap();
    db.execute("CREATE INDEX dt ON docs(body) INDEXTYPE IS TextIndexType").unwrap();
    db.execute("ANALYZE TABLE docs").unwrap();
    db
}

/// Batch and row execution must return the same bag on every access
/// path: full scan, B-tree range, domain-index scan, and the functional
/// fallback, with and without cost-ordered conjuncts.
#[test]
fn batch_and_row_paths_are_bag_equal() {
    let mut db = mixed_db();
    let queries = [
        "SELECT id, score FROM docs WHERE id BETWEEN 100 AND 180".to_string(),
        "SELECT /*+ FULL(docs) */ id FROM docs WHERE score < 40".to_string(),
        "SELECT /*+ INDEX(docs ds) */ id FROM docs WHERE score < 40".to_string(),
        "SELECT id FROM docs WHERE Contains(body, 'heather') AND id < 300".to_string(),
        "SELECT /*+ NO_INDEX(docs) */ id FROM docs WHERE Contains(body, 'moor')".to_string(),
        "SELECT id FROM docs WHERE score > 450 OR body LIKE '%number 9%'".to_string(),
        "SELECT COUNT(*), MAX(score) FROM docs WHERE id > 250".to_string(),
        "SELECT score, COUNT(*) FROM docs GROUP BY score HAVING COUNT(*) > 1".to_string(),
    ];
    for sql in &queries {
        for ordered in [true, false] {
            db.set_cost_ordered_terms(ordered);
            db.set_batch_execution(true);
            let batched = bag(&mut db, sql);
            db.set_batch_execution(false);
            let rowed = bag(&mut db, sql);
            assert_eq!(batched, rowed, "batch/row divergence (ordered={ordered}) on {sql}");
        }
    }
}

/// The differential oracle's full forced-plan sweep, pinned to each
/// executor path. Every reachable plan must stay bag-equal to the
/// brute-force mirror whether rows flow one at a time or in batches.
#[test]
fn qgen_sweep_agrees_on_batch_and_row_paths() {
    for seed in [1u64, 2, 3] {
        for (label, chaos) in
            [("batch", ChaosOpts::default()), ("row", ChaosOpts::row_exec())]
        {
            if let Some(d) = run_seed(seed, 120, chaos) {
                panic!(
                    "{label} path diverged at seed {} statement {}\n{}\n{}",
                    d.seed, d.step, d.detail, d.script
                );
            }
        }
    }
}

/// Zone maps must stay supersets of page contents under churn: UPDATE
/// may move a value outside the original bounds (the map widens) and
/// DELETE leaves the map stale-but-valid (never narrowed). Pruned
/// execution must agree with unpruned execution after every mutation.
#[test]
fn zone_maps_widen_never_narrow_under_update_delete() {
    let mut db = Database::with_cache_pages(4096);
    db.execute("CREATE TABLE zt (id INTEGER, val INTEGER)").unwrap();
    for i in 0..3000i64 {
        db.execute_with("INSERT INTO zt VALUES (?, ?)", &[i.into(), i.into()]).unwrap();
    }
    db.execute("ANALYZE TABLE zt").unwrap();

    let probes = [
        "SELECT id FROM zt WHERE val BETWEEN 10 AND 60",
        "SELECT id FROM zt WHERE val = 999999",
        "SELECT id FROM zt WHERE val > 2900",
        "SELECT COUNT(*) FROM zt WHERE val < 0",
    ];
    let check = |db: &mut Database, stage: &str| {
        for sql in &probes {
            db.set_zone_pruning(true);
            let pruned = bag(db, sql);
            db.set_zone_pruning(false);
            let full = bag(db, sql);
            assert_eq!(pruned, full, "zone pruning changed the result after {stage}: {sql}");
        }
        db.set_zone_pruning(true);
    };
    check(&mut db, "load");

    // UPDATE: teleport a low-page row's value far outside its page's
    // original [min,max]. The map must widen or the row disappears from
    // pruned range scans.
    db.execute("UPDATE zt SET val = 999999 WHERE id = 25").unwrap();
    let hit = db.query("SELECT id FROM zt WHERE val = 999999").unwrap();
    assert_eq!(hit.len(), 1, "widened zone map must keep the updated row reachable");
    check(&mut db, "UPDATE out of range");

    // The same page now answers for both its old neighborhood and the
    // teleported value (stale-but-valid covers both).
    db.execute("UPDATE zt SET val = -7 WHERE id = 26").unwrap();
    check(&mut db, "UPDATE below range");

    // DELETE: bounds go stale (too wide), never narrow — correctness
    // must hold even though pruning is now less effective.
    db.execute("DELETE FROM zt WHERE val BETWEEN 100 AND 2000").unwrap();
    check(&mut db, "bulk DELETE");
    db.execute("DELETE FROM zt WHERE val = 999999").unwrap();
    assert!(db.query("SELECT id FROM zt WHERE val = 999999").unwrap().is_empty());
    check(&mut db, "DELETE of widened row");
}

/// A pruning scan still satisfies the observability invariant: pruned
/// pages are never charged to the buffer cache, so the root node's gets
/// equal the statement cache delta — on both executor paths.
#[test]
fn pruned_scan_keeps_root_gets_equal_statement_delta() {
    let mut db = Database::with_cache_pages(4096);
    db.execute("CREATE TABLE big (id INTEGER, val INTEGER)").unwrap();
    for i in 0..5000i64 {
        db.execute_with("INSERT INTO big VALUES (?, ?)", &[i.into(), i.into()]).unwrap();
    }
    db.execute("ANALYZE TABLE big").unwrap();
    let sql = "SELECT id FROM big WHERE id BETWEEN 2400 AND 2450";

    for batch in [true, false] {
        db.set_batch_execution(batch);
        let lines = analyze(&mut db, sql);
        let root = &lines[0];
        let summary = lines.last().unwrap();
        assert!(summary.starts_with("statement:"), "{summary}");
        assert_eq!(
            field(root, "gets"),
            field(summary, "gets"),
            "batch={batch}\nroot: {root}\nsummary: {summary}"
        );
        assert_eq!(field(summary, "rows"), 51, "batch={batch}");
        let scan = lines.iter().find(|l| l.contains("FULL SCAN")).unwrap();
        assert!(scan.contains("zone-prune[ID]"), "plan should advertise pruning: {scan}");
        assert!(field(scan, "pruned") > 0, "a tight range over 5000 rows must skip pages: {scan}");
        assert_eq!(field(summary, "pages pruned"), field(scan, "pruned"));
        if batch {
            assert!(field(root, "batches") >= 1, "{root}");
        }
    }
    db.set_batch_execution(true);
}

/// LIMIT inside the batch path: the limit node shrinks the batch quota
/// it requests, so the scan materializes only as many rows as the limit
/// needs instead of a full BATCH_TARGET batch per call.
#[test]
fn limit_terminates_batched_scan_early() {
    let mut db = Database::with_cache_pages(4096);
    db.execute("CREATE TABLE lt (id INTEGER)").unwrap();
    for i in 0..4000i64 {
        db.execute_with("INSERT INTO lt VALUES (?)", &[i.into()]).unwrap();
    }
    db.execute("ANALYZE TABLE lt").unwrap();

    let lines = analyze(&mut db, "SELECT id FROM lt LIMIT 5");
    let summary = lines.last().unwrap();
    assert_eq!(field(summary, "rows"), 5);
    let scan = lines.iter().find(|l| l.contains("FULL SCAN")).unwrap();
    assert_eq!(
        field(scan, "actual rows"),
        5,
        "limit must push its quota into the scan's batch size: {scan}"
    );
    // Early termination is also visible in I/O: 4000 rows span many
    // pages, but a LIMIT 5 scan touches only the first.
    assert!(field(scan, "gets") <= 2, "LIMIT 5 should touch at most a page or two: {scan}");
}
