//! The cartridge sandbox — panic containment and tick budgets at every
//! server↔cartridge crossing.
//!
//! ODCIIndex routines are *user code* running inside the server (§2):
//! Oracle8i answers the obvious risk with safe callouts and an index
//! `UNUSABLE`/`FAILED` state machine. Our equivalent is this module:
//! every crossing runs under [`sandboxed_call`], which
//!
//! - catches unwinds (`catch_unwind`) so a buggy cartridge cannot tear
//!   down the process, and
//! - meters the routine against a deterministic *tick budget*: each
//!   server callback the routine issues ([`tick`] is invoked from the
//!   host's `ServerContext` methods) costs one tick, and exceeding the
//!   budget aborts the call via a sentinel unwind.
//!
//! Both failure shapes surface as [`Error::CartridgeFault`], which feeds
//! the statement's existing compensation/undo machinery and the index
//! health circuit breaker (`health` module) instead of killing anything.
//!
//! Ticks are counted, not timed, so budget verdicts are reproducible:
//! the same statement against the same data always spends the same
//! number of ticks. A routine that burns CPU without calling back is not
//! caught — metering is cooperative, like the SQL-callback profile of
//! real cartridges, where essentially all work flows through the server.
//!
//! The sandbox state is thread-local. The PR-1 parallel build fans out
//! pure computation to worker threads without a `ServerContext`, so all
//! metered callbacks happen on the driving thread; a worker panic
//! surfaces on the driving thread when its result is joined and is
//! caught there.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Once;

use extidx_common::{Error, Result};

/// Default per-call tick budget — generous enough that no legitimate
/// routine in the workspace comes near it (a full text-index build over
/// thousands of rows spends a few thousand ticks).
pub const DEFAULT_TICK_BUDGET: u64 = 1_000_000;

thread_local! {
    /// Nesting depth of active sandboxes on this thread (a sandboxed
    /// routine's callback may re-enter the engine, which may cross into
    /// another sandboxed routine).
    static DEPTH: Cell<u32> = const { Cell::new(0) };
    /// Ticks spent by the *innermost* active sandboxed call, and its
    /// budget. Saved/restored across nesting by the guard.
    static USED: Cell<u64> = const { Cell::new(0) };
    static BUDGET: Cell<u64> = const { Cell::new(u64::MAX) };
}

/// Sentinel unwind payload distinguishing a budget overrun from a
/// genuine cartridge panic.
struct BudgetExceeded {
    used: u64,
    budget: u64,
}

/// Whether the current thread is inside a sandboxed crossing.
fn in_sandbox() -> bool {
    DEPTH.with(|d| d.get()) > 0
}

/// Install (once, process-wide) a panic hook that suppresses the default
/// "thread panicked at …" report for panics the sandbox is about to
/// catch, while delegating everything else to the previous hook.
fn install_quiet_hook() {
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !in_sandbox() {
                prev(info);
            }
        }));
    });
}

/// RAII guard establishing one sandbox scope; restores the enclosing
/// scope's counters on drop (including on unwind).
struct Guard {
    prev_used: u64,
    prev_budget: u64,
}

impl Guard {
    fn enter(budget: u64) -> Self {
        let prev_used = USED.with(|c| c.replace(0));
        let prev_budget = BUDGET.with(|c| c.replace(budget));
        DEPTH.with(|d| d.set(d.get() + 1));
        Guard { prev_used, prev_budget }
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        USED.with(|c| c.set(self.prev_used));
        BUDGET.with(|c| c.set(self.prev_budget));
    }
}

/// Charge one tick against the innermost active sandbox. Called by the
/// host engine's `ServerContext` methods on every callback a cartridge
/// issues. A no-op outside any sandbox; unwinds with a sentinel payload
/// when the budget is exhausted (caught and classified by
/// [`sandboxed_call`]).
pub fn tick() {
    if !in_sandbox() {
        return;
    }
    let used = USED.with(|c| {
        let u = c.get() + 1;
        c.set(u);
        u
    });
    let budget = BUDGET.with(|c| c.get());
    if used > budget {
        std::panic::panic_any(BudgetExceeded { used, budget });
    }
    // Statement deadlines are charged alongside the tick budget: a
    // cartridge routine that loops through server callbacks is exited at
    // its next crossing once the statement's deadline expires (the
    // sentinel unwind is converted to `Error::StatementTimeout` below).
    crate::governor::sandbox_poll();
}

/// Ticks spent so far by the innermost active sandboxed call (0 outside
/// a sandbox). Exposed for tests pinning determinism.
pub fn ticks_used() -> u64 {
    USED.with(|c| c.get())
}

/// Run one server↔cartridge crossing under the sandbox: panics and tick
/// budget overruns become [`Error::CartridgeFault`] instead of unwinding
/// through the engine.
///
/// `AssertUnwindSafe` is sound here because the engine recovers logical
/// invariants itself: a `CartridgeFault` fails the statement, and the
/// statement boundary replays compensation and storage undo over
/// whatever partial state the interrupted routine left behind.
pub fn sandboxed_call<T>(
    indextype: &str,
    routine: &'static str,
    budget: u64,
    f: impl FnOnce() -> Result<T>,
) -> Result<T> {
    install_quiet_hook();
    let guard = Guard::enter(budget);
    let outcome = catch_unwind(AssertUnwindSafe(f));
    drop(guard);
    match outcome {
        Ok(result) => result,
        Err(payload) => {
            // A statement-deadline unwind is *not* a cartridge fault: the
            // cartridge did nothing wrong, so it must neither feed the
            // health breaker nor be attributed to the indextype.
            if let Some(c) = payload.downcast_ref::<crate::governor::CancelUnwind>() {
                return Err(Error::statement_timeout(c.0.clone()));
            }
            let reason = if let Some(b) = payload.downcast_ref::<BudgetExceeded>() {
                format!("tick budget exceeded ({} ticks spent, budget {})", b.used, b.budget)
            } else if let Some(s) = payload.downcast_ref::<&'static str>() {
                format!("panic: {s}")
            } else if let Some(s) = payload.downcast_ref::<String>() {
                format!("panic: {s}")
            } else {
                "panic: <non-string payload>".to_string()
            };
            Err(Error::cartridge_fault(indextype, routine, reason))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_call_passes_through() {
        let r = sandboxed_call("T", "ODCIIndexInsert", 10, || Ok(41 + 1));
        assert_eq!(r.unwrap(), 42);
        assert!(!in_sandbox());
        assert_eq!(ticks_used(), 0);
    }

    #[test]
    fn error_passes_through_unclassified() {
        let r: Result<()> =
            sandboxed_call("T", "ODCIIndexInsert", 10, || Err(Error::Storage("x".into())));
        assert_eq!(r.unwrap_err(), Error::Storage("x".into()));
    }

    #[test]
    fn panic_becomes_cartridge_fault() {
        let r: Result<()> = sandboxed_call("T", "ODCIIndexFetch", 10, || panic!("kaboom"));
        match r.unwrap_err() {
            Error::CartridgeFault { indextype, routine, reason } => {
                assert_eq!(indextype, "T");
                assert_eq!(routine, "ODCIIndexFetch");
                assert!(reason.contains("kaboom"), "reason: {reason}");
            }
            other => panic!("expected CartridgeFault, got {other}"),
        }
        // The thread is fully recovered.
        assert!(!in_sandbox());
        sandboxed_call("T", "ODCIIndexFetch", 10, || Ok(())).unwrap();
    }

    #[test]
    fn budget_overrun_becomes_cartridge_fault() {
        let r: Result<()> = sandboxed_call("T", "ODCIIndexCreate", 5, || {
            for _ in 0..100 {
                tick();
            }
            Ok(())
        });
        match r.unwrap_err() {
            Error::CartridgeFault { reason, .. } => {
                assert!(reason.contains("tick budget exceeded"), "reason: {reason}");
                assert!(reason.contains("budget 5"), "reason: {reason}");
            }
            other => panic!("expected CartridgeFault, got {other}"),
        }
    }

    #[test]
    fn nested_sandboxes_meter_independently() {
        let r = sandboxed_call("OUTER", "ODCIIndexCreate", 100, || {
            tick();
            tick();
            let inner: Result<u64> =
                sandboxed_call("INNER", "ODCIIndexInsert", 100, || {
                    tick();
                    Ok(ticks_used())
                });
            assert_eq!(inner.unwrap(), 1); // inner counted from zero
            Ok(ticks_used()) // outer's counter restored
        });
        assert_eq!(r.unwrap(), 2);
    }

    #[test]
    fn deadline_inside_sandbox_becomes_statement_timeout() {
        use crate::governor::{begin_statement, CancelToken};
        let _g = begin_statement(CancelToken::new(), None, Some(2));
        let r: Result<()> = sandboxed_call("T", "ODCIIndexFetch", 1000, || {
            loop {
                tick(); // each tick charges one governor poll
            }
        });
        match r.unwrap_err() {
            Error::StatementTimeout { detail } => {
                assert!(detail.contains("poll limit"), "detail: {detail}");
            }
            other => panic!("expected StatementTimeout, got {other}"),
        }
        assert!(!in_sandbox());
    }

    #[test]
    fn tick_outside_sandbox_is_free() {
        for _ in 0..1000 {
            tick();
        }
        assert_eq!(ticks_used(), 0);
    }
}
