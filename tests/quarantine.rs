//! The cartridge sandbox and index health state machine (DESIGN.md §4g):
//! a panicking cartridge must never tear down the process — the failing
//! statement gets a clean `CartridgeFault`, the circuit breaker walks the
//! index VALID → SUSPECT → QUARANTINED, the optimizer silently degrades
//! to the functional fallback (annotated in EXPLAIN), base-table DML
//! keeps succeeding against the pending-work log, and
//! `ALTER INDEX … REBUILD` replays the log (or rebuilds from the base
//! table) to restore VALID with results identical to a never-faulted run.

use extidx::core::fault::FaultKind;
use extidx::core::health::{BreakerConfig, HealthState};
use extidx::sql::Database;
use extidx_common::{Error, Value};

/// Text cartridge over `docs(body)` plus a B-tree on `num`.
fn quarantine_db() -> Database {
    let mut db = Database::with_cache_pages(2048);
    extidx::text::install(&mut db).unwrap();
    db.execute("CREATE TABLE docs (id INTEGER, body VARCHAR2(400), num NUMBER)").unwrap();
    let rows = [
        (1, "'alpha beta gamma'", "10.0"),
        (2, "'alpha delta'", "20.0"),
        (3, "'epsilon zeta'", "30.0"),
        (4, "'alpha omega'", "40.0"),
    ];
    for (id, body, num) in rows {
        db.execute(&format!("INSERT INTO docs VALUES ({id}, {body}, {num})")).unwrap();
    }
    db.execute("CREATE INDEX d_txt ON docs(body) INDEXTYPE IS TextIndexType").unwrap();
    db
}

fn ids(rows: &[Vec<Value>]) -> Vec<i64> {
    let mut out: Vec<i64> = rows
        .iter()
        .map(|r| match &r[0] {
            Value::Integer(i) => *i,
            other => panic!("expected integer id, got {other:?}"),
        })
        .collect();
    out.sort_unstable();
    out
}

const QUERY: &str = "SELECT id FROM docs WHERE Contains(body, 'alpha')";
/// Forced variant: pins the domain scan so the fault points in
/// Start/Fetch/Close are guaranteed to be crossed (the cost model is
/// free to prefer a full scan over a four-row table).
const FORCED: &str = "SELECT /*+ INDEX(docs d_txt) */ id FROM docs WHERE Contains(body, 'alpha')";

/// The acceptance pin for the whole sandbox: a cartridge that panics in
/// Fetch never aborts the process; the statement fails cleanly with a
/// `CartridgeFault`; the breaker reaches QUARANTINED at the threshold;
/// subsequent queries return correct rows via the functional fallback
/// with `[DEGRADED]` in EXPLAIN; and `ALTER INDEX … REBUILD` restores
/// VALID with results identical to a never-faulted run.
#[test]
fn panicking_fetch_degrades_then_rebuild_restores() {
    // Reference: the same query against a never-faulted engine.
    let reference = {
        let mut db = quarantine_db();
        ids(&db.query(QUERY).unwrap())
    };

    let mut db = quarantine_db();
    db.catalog().health.set_breaker(BreakerConfig { threshold: 3, window: 50 });
    let inj = db.fault_injector().clone();

    for attempt in 1..=3 {
        inj.arm("ODCIIndexFetch", Some("TEXTINDEXTYPE"), 1, FaultKind::Panic);
        let err = db.query(FORCED).expect_err("panicking fetch must fail the statement");
        inj.disarm_all();
        match &err {
            Error::CartridgeFault { indextype, routine, reason } => {
                assert_eq!(indextype, "TEXTINDEXTYPE");
                assert_eq!(*routine, "ODCIIndexFetch");
                assert!(reason.contains("injected panic"), "reason: {reason}");
            }
            other => panic!("attempt {attempt}: expected CartridgeFault, got {other}"),
        }
        let expected = if attempt < 3 { HealthState::Suspect } else { HealthState::Quarantined };
        assert_eq!(db.index_health("D_TXT"), expected, "after attempt {attempt}");
    }

    // Degraded: the optimizer plans the functional fallback, annotates
    // the quarantine, and the rows still come back correct.
    let plan = db.explain(QUERY).unwrap().join("\n");
    assert!(!plan.contains("DOMAIN INDEX SCAN"), "plan:\n{plan}");
    assert!(plan.contains("[DEGRADED: index quarantined: D_TXT]"), "plan:\n{plan}");
    assert!(plan.contains("FUNCTIONAL FALLBACK CONTAINS"), "plan:\n{plan}");
    assert_eq!(ids(&db.query(QUERY).unwrap()), reference, "fallback rows");

    // Forcing the quarantined index is an error, never a silent
    // fall-through (the hint contract).
    let err = db.query(FORCED).expect_err("forcing a quarantined index must fail");
    assert!(err.to_string().contains("QUARANTINED"), "err: {err}");

    // Recovery: REBUILD restores VALID, the index serves scans again,
    // and results match the never-faulted run.
    db.execute("ALTER INDEX d_txt REBUILD").unwrap();
    assert_eq!(db.index_health("D_TXT"), HealthState::Valid);
    let plan = db.explain(FORCED).unwrap().join("\n");
    assert!(plan.contains("DOMAIN INDEX SCAN DOCS VIA D_TXT"), "plan:\n{plan}");
    assert!(!plan.contains("DEGRADED"), "plan:\n{plan}");
    assert_eq!(ids(&db.query(FORCED).unwrap()), reference, "post-rebuild rows via the index");
    assert_eq!(ids(&db.query(QUERY).unwrap()), reference, "post-rebuild rows unhinted");
}

/// DML against a quarantined index goes to the pending-work log (the
/// base table keeps accepting writes); REBUILD replays the log. After a
/// rollback the log can no longer be trusted, so REBUILD must take the
/// full from-base-table path instead — V$INDEX_HEALTH exposes which.
#[test]
fn pending_log_replay_and_full_rebuild_after_rollback() {
    let mut db = quarantine_db();
    db.quarantine_index("D_TXT").unwrap();
    assert_eq!(db.index_health("D_TXT"), HealthState::Quarantined);

    // DML succeeds while quarantined; the index's share is deferred.
    db.execute("INSERT INTO docs VALUES (10, 'alpha pending', 100.0)").unwrap();
    db.execute("UPDATE docs SET body = 'alpha rewritten' WHERE id = 3").unwrap();
    let pending = db
        .query("SELECT PENDING_OPS, NEEDS_FULL_REBUILD FROM V$INDEX_HEALTH WHERE INDEX_NAME = 'D_TXT'")
        .unwrap();
    assert_eq!(pending[0][0], Value::Integer(2), "two deferred ops");
    assert_eq!(pending[0][1], Value::from("NO"), "log is replayable");

    // The fallback already sees the new rows.
    assert_eq!(ids(&db.query(QUERY).unwrap()), vec![1, 2, 3, 4, 10]);

    // Replay: the deferred ops land in the index; a forced index scan
    // (bypassing the fallback) agrees.
    db.execute("ALTER INDEX d_txt REBUILD").unwrap();
    assert_eq!(db.index_health("D_TXT"), HealthState::Valid);
    let forced =
        db.query("SELECT /*+ INDEX(docs d_txt) */ id FROM docs WHERE Contains(body, 'alpha')");
    assert_eq!(ids(&forced.unwrap()), vec![1, 2, 3, 4, 10]);

    // Rollback with deferred ops poisons the log: the pending entries
    // may reference rows the rollback un-made.
    db.quarantine_index("D_TXT").unwrap();
    db.execute("BEGIN").unwrap();
    db.execute("INSERT INTO docs VALUES (11, 'alpha doomed', 110.0)").unwrap();
    db.execute("ROLLBACK").unwrap();
    let dirty = db
        .query("SELECT NEEDS_FULL_REBUILD FROM V$INDEX_HEALTH WHERE INDEX_NAME = 'D_TXT'")
        .unwrap();
    assert_eq!(dirty[0][0], Value::from("YES"), "rollback must force the full-rebuild path");

    // Full rebuild from the base table still restores an exact index.
    db.execute("ALTER INDEX d_txt REBUILD").unwrap();
    assert_eq!(db.index_health("D_TXT"), HealthState::Valid);
    let forced =
        db.query("SELECT /*+ INDEX(docs d_txt) */ id FROM docs WHERE Contains(body, 'alpha')");
    assert_eq!(ids(&forced.unwrap()), vec![1, 2, 3, 4, 10]);
}

/// A single fault makes the index SUSPECT, and a clean window heals it
/// back to VALID without operator intervention.
#[test]
fn suspect_heals_after_clean_window() {
    let mut db = quarantine_db();
    db.catalog().health.set_breaker(BreakerConfig { threshold: 3, window: 8 });
    let inj = db.fault_injector().clone();

    inj.arm("ODCIIndexFetch", Some("TEXTINDEXTYPE"), 1, FaultKind::Panic);
    db.query(FORCED).expect_err("panic must fail the query");
    inj.disarm_all();
    assert_eq!(db.index_health("D_TXT"), HealthState::Suspect);

    // Each clean query crosses the sandbox several times (stats, start,
    // fetch, close); a few of them slide the fault out of the window.
    for _ in 0..4 {
        db.query(FORCED).unwrap();
    }
    assert_eq!(db.index_health("D_TXT"), HealthState::Valid);
}

/// When CREATE INDEX fails *and* the cleanup drop faults too, the
/// catalog entry stays behind as BUILD_FAILED: the name is not silently
/// reusable while cartridge storage may linger. REBUILD recovers it.
#[test]
fn failed_create_leaves_build_failed_entry_until_rebuild() {
    let mut db = quarantine_db();
    db.execute("CREATE TABLE notes (id INTEGER, txt VARCHAR2(100))").unwrap();
    for (id, txt) in [(1, "'alpha one'"), (2, "'beta two'"), (3, "'alpha three'")] {
        db.execute(&format!("INSERT INTO notes VALUES ({id}, {txt})")).unwrap();
    }
    let inj = db.fault_injector().clone();

    inj.arm("ODCIIndexCreate", Some("TEXTINDEXTYPE"), 1, FaultKind::Panic);
    inj.arm("ODCIIndexDrop", Some("TEXTINDEXTYPE"), 1, FaultKind::Fail);
    db.execute("CREATE INDEX n_txt ON notes(txt) INDEXTYPE IS TextIndexType")
        .expect_err("create must fail");
    inj.disarm_all();
    assert_eq!(db.index_health("N_TXT"), HealthState::BuildFailed);

    // The name is taken — re-creating it must be refused.
    db.execute("CREATE INDEX n_txt ON notes(txt) INDEXTYPE IS TextIndexType")
        .expect_err("BUILD_FAILED name must not be silently reusable");

    // Base-table DML keeps working: the wreck is skipped, not consulted.
    db.execute("INSERT INTO notes VALUES (20, 'alpha tail')").unwrap();

    // REBUILD takes the full path and resurrects the index with the
    // post-failure rows included.
    db.execute("ALTER INDEX n_txt REBUILD").unwrap();
    assert_eq!(db.index_health("N_TXT"), HealthState::Valid);
    let forced = db
        .query("SELECT /*+ INDEX(notes n_txt) */ id FROM notes WHERE Contains(txt, 'alpha')")
        .unwrap();
    assert_eq!(ids(&forced), vec![1, 3, 20]);
}

/// DROP of a quarantined index always succeeds, even when the
/// cartridge's own drop routine faults — the catalog entry must go.
#[test]
fn drop_of_quarantined_index_always_succeeds() {
    // Clean cartridge drop: catalog, health registry, and storage all
    // go, and the name is immediately reusable.
    let mut db = quarantine_db();
    db.quarantine_index("D_TXT").unwrap();
    db.execute("DROP INDEX d_txt").expect("drop of quarantined index must succeed");
    assert!(db.query("SELECT INDEX_NAME FROM V$INDEX_HEALTH").unwrap().is_empty());
    db.execute("CREATE INDEX d_txt ON docs(body) INDEXTYPE IS TextIndexType").unwrap();
    assert_eq!(db.index_health("D_TXT"), HealthState::Valid);
    assert_eq!(ids(&db.query(FORCED).unwrap()), vec![1, 2, 4]);

    // Even a cartridge that panics in its own drop routine cannot block
    // the DROP: the catalog entry goes regardless (storage wreckage may
    // linger — the deliberate cost of always letting the user escape a
    // quarantined index).
    db.quarantine_index("D_TXT").unwrap();
    let inj = db.fault_injector().clone();
    inj.arm("ODCIIndexDrop", Some("TEXTINDEXTYPE"), 1, FaultKind::Panic);
    db.execute("DROP INDEX d_txt").expect("faulted drop of quarantined index must still succeed");
    inj.disarm_all();
    let rows = db.query("SELECT INDEX_NAME FROM V$INDEX_HEALTH").unwrap();
    assert!(rows.is_empty(), "health registry must forget the index: {rows:?}");
    // Queries keep answering through the functional path.
    assert_eq!(ids(&db.query(QUERY).unwrap()), vec![1, 2, 4]);
}

/// V$INDEX_HEALTH reports the full state row, and health transitions
/// land in the call trace.
#[test]
fn vindex_health_reports_states_and_trace_records_transitions() {
    let mut db = quarantine_db();
    db.trace().set_enabled(true);
    let rows = db
        .query("SELECT INDEX_NAME, TABLE_NAME, INDEXTYPE, STATE FROM V$INDEX_HEALTH")
        .unwrap();
    assert_eq!(
        rows,
        vec![vec![
            Value::from("D_TXT"),
            Value::from("DOCS"),
            Value::from("TEXTINDEXTYPE"),
            Value::from("VALID"),
        ]]
    );

    db.quarantine_index("D_TXT").unwrap();
    let rows = db.query("SELECT STATE FROM V$INDEX_HEALTH WHERE INDEX_NAME = 'D_TXT'").unwrap();
    assert_eq!(rows[0][0], Value::from("QUARANTINED"));

    db.execute("ALTER INDEX d_txt REBUILD").unwrap();
    let rows = db.query("SELECT STATE FROM V$INDEX_HEALTH WHERE INDEX_NAME = 'D_TXT'").unwrap();
    assert_eq!(rows[0][0], Value::from("VALID"));

    let transitions: Vec<String> = db
        .trace()
        .events()
        .iter()
        .filter(|e| e.routine == "HealthTransition")
        .map(|e| e.detail.clone())
        .collect();
    assert!(
        transitions.iter().any(|d| d.contains("VALID -> QUARANTINED")),
        "transitions: {transitions:?}"
    );
    assert!(
        transitions.iter().any(|d| d.contains("QUARANTINED -> VALID")),
        "transitions: {transitions:?}"
    );
}

/// A runaway routine is cut off by the deterministic tick budget and
/// surfaces as a CartridgeFault like any other sandbox violation. The
/// index build is the tick-hungriest routine (base-table scan plus one
/// callback per posting), so it is the one a tiny budget must stop.
#[test]
fn tick_budget_overrun_is_a_cartridge_fault() {
    let mut db = Database::with_cache_pages(2048);
    extidx::text::install(&mut db).unwrap();
    db.execute("CREATE TABLE docs (id INTEGER, body VARCHAR2(400))").unwrap();
    for (id, body) in [(1, "'alpha beta'"), (2, "'alpha delta'"), (3, "'epsilon zeta'")] {
        db.execute(&format!("INSERT INTO docs VALUES ({id}, {body})")).unwrap();
    }

    db.set_tick_budget(3);
    let err = db
        .execute("CREATE INDEX d_txt ON docs(body) INDEXTYPE IS TextIndexType")
        .expect_err("3 ticks cannot cover an index build");
    match err {
        Error::CartridgeFault { reason, .. } => {
            assert!(reason.contains("tick budget exceeded"), "reason: {reason}");
        }
        other => panic!("expected CartridgeFault, got {other}"),
    }

    // Restore a sane budget: the engine is unharmed, and the index can
    // be built (directly, or via REBUILD if the starved cleanup left a
    // BUILD_FAILED entry behind).
    db.set_tick_budget(extidx::core::DEFAULT_TICK_BUDGET);
    if db.index_health("D_TXT") == HealthState::BuildFailed {
        db.execute("ALTER INDEX d_txt REBUILD").unwrap();
    } else {
        db.execute("CREATE INDEX d_txt ON docs(body) INDEXTYPE IS TextIndexType").unwrap();
    }
    assert_eq!(db.index_health("D_TXT"), HealthState::Valid);
    let rows = db.query("SELECT /*+ INDEX(docs d_txt) */ id FROM docs WHERE Contains(body, 'alpha')");
    assert_eq!(ids(&rows.unwrap()), vec![1, 2]);
}
