//! Chemical structure search — the §3.2.4 Daylight case study.
//!
//! Substructure and Tanimoto-similarity searches over a synthetic
//! compound library, with the fingerprint index stored either in a
//! database LOB (the Oracle8i migration) or in an external file (the
//! legacy structure). Shows the maintenance-cost gap (the file rewrites
//! itself per update), the warm-cache query parity, and the §5
//! transactional hazard of external storage plus its database-event fix.
//!
//! Run with: `cargo run --release --example chemistry`

use std::time::Instant;

use extidx::chem::MoleculeWorkload;
use extidx::sql::Database;

fn build(storage: &str, compounds: &[String]) -> Result<Database, Box<dyn std::error::Error>> {
    let mut db = Database::with_cache_pages(16_384);
    extidx::chem::install(&mut db)?;
    db.execute("CREATE TABLE compounds (id INTEGER, mol VARCHAR2(256))")?;
    for (i, m) in compounds.iter().enumerate() {
        db.execute_with("INSERT INTO compounds VALUES (?, ?)", &[(i as i64).into(), m.clone().into()])?;
    }
    db.execute(&format!(
        "CREATE INDEX cidx ON compounds(mol) INDEXTYPE IS ChemIndexType PARAMETERS (':Storage {storage}')"
    ))?;
    Ok(db)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut wl = MoleculeWorkload::new(88);
    let mut compounds = wl.corpus(1_500, 12);
    for _ in 0..30 {
        compounds.push(wl.molecule_containing("CC(=O)N", 6)); // plant amide-bearing molecules
    }

    println!("library: {} compounds\n", compounds.len());
    let mut lob_db = build("LOB", &compounds)?;
    let mut file_db = build("FILE", &compounds)?;

    // Incremental maintenance cost: LOB appends vs whole-file rewrites.
    let mut batch = MoleculeWorkload::new(99);
    let t = Instant::now();
    for i in 0..200 {
        let m = batch.molecule(12);
        lob_db.execute_with("INSERT INTO compounds VALUES (?, ?)", &[(9000 + i as i64).into(), m.into()])?;
    }
    let lob_insert = t.elapsed();
    let mut batch = MoleculeWorkload::new(99);
    file_db.reset_file_stats();
    let t = Instant::now();
    for i in 0..200 {
        let m = batch.molecule(12);
        file_db.execute_with("INSERT INTO compounds VALUES (?, ?)", &[(9000 + i as i64).into(), m.into()])?;
    }
    let file_insert = t.elapsed();
    let fstats = file_db.file_stats();
    println!("200 incremental inserts:");
    println!("  LOB store   {lob_insert:?}");
    println!(
        "  FILE store  {file_insert:?}  ({} file writes, {} MiB rewritten — the \"intermediate \
         write operations\")",
        fstats.write_ops,
        fstats.bytes_written / (1024 * 1024)
    );

    // Queries: substructure + similarity, LOB vs FILE, cold vs warm.
    let sub_sql = "SELECT COUNT(*) FROM compounds WHERE MolContains(mol, 'CC(=O)N')";
    lob_db.cold_start();
    let t = Instant::now();
    let hits = lob_db.query(sub_sql)?[0][0].clone();
    let cold = t.elapsed();
    let t = Instant::now();
    lob_db.query(sub_sql)?;
    let warm = t.elapsed();
    println!("\nsubstructure search CC(=O)N → {hits} hits");
    println!("  LOB store: cold {cold:?}, warm {warm:?} (LOB pages cache in the buffer pool)");
    let t = Instant::now();
    file_db.query(sub_sql)?;
    let file_q = t.elapsed();
    println!("  FILE store: {file_q:?} (every query re-reads the file)");

    // Similarity ranking with ancillary scores.
    let probe = &compounds[compounds.len() - 1];
    println!("\nnearest neighbours of {probe}:");
    for row in lob_db.query_with(
        "SELECT id, SCORE(1) FROM compounds WHERE MolSimilar(mol, ?, 0.5, 1) \
         ORDER BY SCORE(1) DESC LIMIT 5",
        &[probe.clone().into()],
    )? {
        println!("  compound {:>5}  tanimoto {}", row[0], row[1]);
    }

    // §5: external files ignore transactions; events repair them.
    println!("\ntransaction-rollback hazard (§5):");
    let len_before = file_db.storage().files_ref().length("dr$cidx.fpidx")?;
    file_db.execute("BEGIN")?;
    file_db.execute("INSERT INTO compounds VALUES (9999, 'CC=O')")?;
    file_db.execute("ROLLBACK")?;
    let len_after = file_db.storage().files_ref().length("dr$cidx.fpidx")?;
    println!("  FILE store grew {} → {} bytes across a rolled-back insert (stale entry!)",
        len_before, len_after);

    let mut evented = build("FILE :Events ON", &compounds)?;
    let len_before = evented.storage().files_ref().length("dr$cidx.fpidx")?;
    evented.execute("BEGIN")?;
    evented.execute("INSERT INTO compounds VALUES (9999, 'CC=O')")?;
    evented.execute("ROLLBACK")?;
    let len_after = evented.storage().files_ref().length("dr$cidx.fpidx")?;
    println!(
        "  with ':Events ON', the rollback event handler re-syncs the file: {} → {} bytes",
        len_before, len_after
    );
    Ok(())
}
