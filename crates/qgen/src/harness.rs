//! Execution, comparison, replay, and shrinking.
//!
//! Every generated query runs through each reachable engine plan —
//! optimizer's choice, `/*+ FULL */`, `/*+ NO_INDEX */`, and one
//! `/*+ INDEX(t idx) */` per applicable index — plus the mirror
//! interpreter, and all answers must agree. `COUNT(*)` over the same
//! predicate (the NoREC construction) must match the row count too.
//!
//! The replay rule that makes shrinking sound: a DML/DDL statement is
//! applied to the mirror only if the *engine* accepted it, and engine
//! errors on DML/DDL are no-ops on both sides. Any subset of the
//! statement prefix is therefore a valid workload, so delta debugging
//! can bisect freely.

use extidx_common::Value;
use extidx_core::HealthState;
use extidx_sql::{Database, DurableMedium, WAL_FAULT_POINTS};

use crate::gen::{generate, Query, Stmt};
use crate::interp::{apply_cell, query_ids, Mirror};

/// Chaos switches for an oracle run. All are deterministic: batch
/// dropping is stateless, quarantine flips are keyed on the
/// statement text (see [`quarantine_chaos`]) so delta-debugging subsets
/// replay identically, and row-at-a-time execution is a global engine
/// knob.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosOpts {
    /// Drop the final batch of every domain-index scan (exercises the
    /// executor's partial-fetch handling).
    pub drop_last_batch: bool,
    /// Randomly quarantine a healthy domain index — or `ALTER INDEX …
    /// REBUILD` a quarantined one — before ~8% of statements, forcing
    /// queries through the functional fallback mid-stream.
    pub quarantine: bool,
    /// Run the engine on the legacy row-at-a-time executor path instead
    /// of the vectorized default — a sweep on this flag is the
    /// batch-vs-row bag-equality oracle.
    pub row_exec: bool,
    /// Seeded daemon-cadence chaos for the concurrent scheduler: `0`
    /// keeps the fixed every-3rd-step vacuum; any other value salts a
    /// dedicated rng so incremental vacuum fires at scheduler-random
    /// steps instead. Vacuum is semantics-preserving, so every cadence
    /// must leave the oracles green — this knob hunts for timings the
    /// fixed cadence never produces.
    pub random_vacuum: u64,
}

impl ChaosOpts {
    /// The pre-existing scan chaos mode.
    pub fn drop_last_batch() -> Self {
        Self { drop_last_batch: true, ..Self::default() }
    }

    /// Quarantine/rebuild chaos only.
    pub fn quarantine() -> Self {
        Self { quarantine: true, ..Self::default() }
    }

    /// Row-at-a-time executor (batch path disabled).
    pub fn row_exec() -> Self {
        Self { row_exec: true, ..Self::default() }
    }

    /// Scheduler-random vacuum cadence (see [`ChaosOpts::random_vacuum`]).
    pub fn random_vacuum(salt: u64) -> Self {
        Self { random_vacuum: salt.max(1), ..Self::default() }
    }
}

/// A confirmed disagreement between execution paths, with a minimized
/// self-contained SQL reproduction script.
#[derive(Debug)]
pub struct Divergence {
    pub seed: u64,
    /// Index of the failing statement in the generated stream.
    pub step: usize,
    /// Human-readable description of the first disagreement.
    pub detail: String,
    /// Statements in the minimized repro (prefix + failing query).
    pub minimized: usize,
    /// Self-contained SQL script reproducing the divergence.
    pub script: String,
}

/// A fresh engine with all five cartridges installed.
pub fn fresh_db(chaos: ChaosOpts) -> Database {
    let mut db = Database::with_cache_pages(4096);
    extidx_text::install(&mut db).expect("text cartridge");
    extidx_spatial::install(&mut db).expect("spatial cartridge");
    extidx_vir::install(&mut db).expect("vir cartridge");
    extidx_chem::install(&mut db).expect("chem cartridge");
    db.set_chaos_drop_last_domain_batch(chaos.drop_last_batch);
    db.set_batch_execution(!chaos.row_exec);
    db
}

/// Indexes that can be *forced* for this query right now: the catalog
/// must hold the index, and a top-level conjunct must be consumable by
/// it (operator + arity supported, no NULL literal argument; `num`
/// comparisons for the B-tree). Computed against the live catalog so
/// replayed/shrunk workloads never emit an invalid hint.
pub(crate) fn forcible_indexes(db: &Database, q: &Query) -> Vec<String> {
    let atoms = q.pred.top_atoms();
    let mut out = Vec::new();
    for d in db.catalog().domain_indexes_on(q.table) {
        // A quarantined index cannot be forced (the optimizer rejects the
        // hint outright); the unhinted plan degrades to the fallback.
        if !db.catalog().health.is_usable(&d.name) {
            continue;
        }
        let Ok(it) = db.catalog().registry.indextype(&d.indextype) else { continue };
        let usable = atoms.iter().any(|a| {
            a.op_info().is_some_and(|(op, col, arity, has_null)| {
                !has_null && d.column.eq_ignore_ascii_case(col) && it.supports(op, arity)
            })
        });
        if usable {
            out.push(d.name.clone());
        }
    }
    for b in db.catalog().btree_indexes_on(q.table) {
        if b.column.eq_ignore_ascii_case("NUM") && atoms.iter().any(|a| a.btreeable_on_num()) {
            out.push(b.name.clone());
        }
    }
    out.sort();
    out
}

fn fmt_ids(ids: &[i64]) -> String {
    let shown: Vec<String> = ids.iter().take(24).map(|i| i.to_string()).collect();
    let ellipsis = if ids.len() > 24 { ", …" } else { "" };
    format!("[{}{ellipsis}] ({} rows)", shown.join(", "), ids.len())
}

/// Extract the id column (always column 0) from engine rows. Ancillary
/// SCORE columns are deliberately ignored: the functional and full-scan
/// paths have no index scan to produce a score, so only row membership
/// is comparable across paths.
fn ids_of(rows: &[Vec<Value>]) -> Result<Vec<i64>, String> {
    rows.iter()
        .map(|r| match r.first() {
            Some(Value::Integer(i)) => Ok(*i),
            other => Err(format!("expected integer id column, got {other:?}")),
        })
        .collect()
}

/// Run one query through every path and compare. `Some(detail)` on the
/// first disagreement.
fn check_query(db: &mut Database, mirror: &Mirror, q: &Query) -> Option<String> {
    let expected = query_ids(q, mirror);
    let expected_count = crate::interp::accepted_ids(q, mirror).len() as i64;

    let mut variants: Vec<(String, String)> = vec![
        ("plan".into(), q.sql(None)),
        ("full".into(), q.sql(Some(&format!("FULL({})", q.table)))),
        ("no_index".into(), q.sql(Some(&format!("NO_INDEX({})", q.table)))),
    ];
    for idx in forcible_indexes(db, q) {
        let hint = format!("INDEX({} {idx})", q.table);
        variants.push((format!("index:{idx}"), q.sql(Some(&hint))));
    }

    for (label, sql) in &variants {
        let got = match db.query(sql) {
            Err(e) => return Some(format!("variant [{label}] errored: {e}\n  sql: {sql}")),
            Ok(rows) => match ids_of(&rows) {
                Ok(ids) => ids,
                Err(e) => return Some(format!("variant [{label}] bad row shape: {e}\n  sql: {sql}")),
            },
        };
        // Ordered comparison under ORDER BY id LIMIT n; bag comparison
        // otherwise (ids are unique, so a sorted list is the bag).
        let got = if q.order_limit.is_some() {
            got
        } else {
            let mut g = got;
            g.sort_unstable();
            g
        };
        if got != expected {
            return Some(format!(
                "variant [{label}] diverges from interpreter\n  sql: {sql}\n  expected {}\n  got      {}",
                fmt_ids(&expected),
                fmt_ids(&got)
            ));
        }
    }

    // NoREC: the aggregated form of the same predicate must agree with
    // the row-retrieval count.
    let full_hint = format!("FULL({})", q.table);
    for (label, sql) in
        [("count", q.count_sql(None)), ("count_full", q.count_sql(Some(&full_hint)))]
    {
        match db.query(&sql) {
            Err(e) => return Some(format!("variant [{label}] errored: {e}\n  sql: {sql}")),
            Ok(rows) => {
                let got = rows.first().and_then(|r| r.first()).cloned();
                if got != Some(Value::Integer(expected_count)) {
                    return Some(format!(
                        "variant [{label}] count diverges\n  sql: {sql}\n  expected {expected_count}, got {got:?}"
                    ));
                }
            }
        }
    }
    None
}

/// Quarantine chaos: before ~8% of statements, flip one domain index's
/// health — quarantine it if usable, `ALTER INDEX … REBUILD` it if
/// already quarantined. Keyed on the statement *text*, not the stream
/// position, so a ddmin-shrunk subset makes exactly the same flips for
/// the statements it keeps; the differential oracle must see bag-equal
/// results regardless, because degraded queries answer through the
/// functional fallback.
fn quarantine_chaos(db: &mut Database, stmt: &Stmt) {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    stmt.sql().hash(&mut h);
    let roll = h.finish();
    if roll % 100 >= 8 {
        return;
    }
    let snap = db.catalog().health.snapshot();
    if snap.is_empty() {
        return;
    }
    let pick = &snap[(roll / 100) as usize % snap.len()];
    match pick.state {
        HealthState::Quarantined => {
            let sql = format!("ALTER INDEX {} REBUILD", pick.index);
            db.execute(&sql).expect("chaos rebuild of quarantined index");
        }
        HealthState::Valid | HealthState::Suspect => {
            let name = pick.index.clone();
            db.quarantine_index(&name).expect("chaos quarantine of live index");
        }
        HealthState::BuildFailed => {}
    }
}

/// Execute one statement against engine + mirror. `Some(detail)` when a
/// query statement exposes a divergence.
fn step(db: &mut Database, mirror: &mut Mirror, stmt: &Stmt, chaos: ChaosOpts) -> Option<String> {
    if chaos.quarantine {
        quarantine_chaos(db, stmt);
    }
    match stmt {
        Stmt::Sql(sql) => {
            let _ = db.execute(sql);
            None
        }
        Stmt::Truncate { table } => {
            if db.execute(&stmt.sql()).is_ok() {
                mirror.table_mut(table).clear();
            }
            None
        }
        Stmt::Insert { table, row } => {
            if db.execute(&stmt.sql()).is_ok() {
                mirror.table_mut(table).insert(row.id, row.clone());
            }
            None
        }
        Stmt::Update { table, pred, cell } => {
            if db.execute(&stmt.sql()).is_ok() {
                for row in mirror.table_mut(table).values_mut() {
                    if pred.matches(row.id) {
                        apply_cell(row, cell);
                    }
                }
            }
            None
        }
        Stmt::Delete { table, pred } => {
            if db.execute(&stmt.sql()).is_ok() {
                mirror.table_mut(table).retain(|id, _| !pred.matches(*id));
            }
            None
        }
        Stmt::Query(q) => check_query(db, mirror, q),
    }
}

/// Replay `preamble + stmts + final_stmt` from scratch; true if any
/// divergence shows (used as the delta-debugging failure predicate).
fn replay_fails(preamble: &[String], stmts: &[Stmt], final_stmt: &Stmt, chaos: ChaosOpts) -> bool {
    let mut db = fresh_db(chaos);
    for sql in preamble {
        if db.execute(sql).is_err() {
            return false;
        }
    }
    let mut mirror = Mirror::default();
    for s in stmts {
        if step(&mut db, &mut mirror, s, chaos).is_some() {
            return true;
        }
    }
    step(&mut db, &mut mirror, final_stmt, chaos).is_some()
}

/// Classic ddmin over the statement prefix: repeatedly drop chunks (then
/// single statements) while the failure persists. Deterministic replay
/// plus the errors-are-no-ops rule make every candidate subset valid.
fn ddmin(preamble: &[String], prefix: &[Stmt], final_stmt: &Stmt, chaos: ChaosOpts) -> Vec<Stmt> {
    let mut kept: Vec<Stmt> = prefix.to_vec();
    let mut chunk = kept.len().div_ceil(2).max(1);
    loop {
        let mut removed_any = false;
        let mut i = 0;
        while i < kept.len() {
            let end = (i + chunk).min(kept.len());
            let mut cand = kept.clone();
            cand.drain(i..end);
            if replay_fails(preamble, &cand, final_stmt, chaos) {
                kept = cand;
                removed_any = true;
            } else {
                i = end;
            }
        }
        if chunk == 1 {
            if !removed_any {
                break;
            }
        } else {
            chunk = (chunk / 2).max(1);
        }
    }
    kept
}

/// Render a self-contained SQL repro script.
fn render_script(
    seed: u64,
    step_idx: usize,
    detail: &str,
    preamble: &[String],
    kept: &[Stmt],
    final_stmt: &Stmt,
) -> String {
    let mut out = String::new();
    out.push_str(&format!("-- extidx differential oracle repro\n-- seed {seed}, divergence at statement {step_idx}\n"));
    for line in detail.lines() {
        out.push_str(&format!("-- {line}\n"));
    }
    out.push_str("-- schema preamble (cartridges installed via *::install):\n");
    for sql in preamble {
        out.push_str(sql);
        out.push_str(";\n");
    }
    out.push_str(&format!("-- minimized prefix ({} statements):\n", kept.len()));
    for s in kept {
        out.push_str(&s.sql());
        out.push_str(";\n");
    }
    out.push_str("-- failing statement — run each plan variant and compare:\n");
    if let Stmt::Query(q) = final_stmt {
        out.push_str(&q.sql(None));
        out.push_str(";\n");
        out.push_str(&q.sql(Some(&format!("FULL({})", q.table))));
        out.push_str(";\n");
        out.push_str(&q.sql(Some(&format!("NO_INDEX({})", q.table))));
        out.push_str(";\n");
    } else {
        out.push_str(&final_stmt.sql());
        out.push_str(";\n");
    }
    out
}

/// Run `n` seeded statements through the oracle. `None` means every
/// query agreed on every path; `Some(divergence)` carries the first
/// disagreement, already minimized by delta debugging.
pub fn run_seed(seed: u64, n: usize, chaos: ChaosOpts) -> Option<Divergence> {
    let workload = generate(seed, n);
    let mut db = fresh_db(chaos);
    for sql in &workload.preamble {
        db.execute(sql).unwrap_or_else(|e| panic!("preamble failed: {sql}: {e}"));
    }
    let mut mirror = Mirror::default();
    for (i, s) in workload.stmts.iter().enumerate() {
        if let Some(detail) = step(&mut db, &mut mirror, s, chaos) {
            let kept = ddmin(&workload.preamble, &workload.stmts[..i], s, chaos);
            let script = render_script(seed, i, &detail, &workload.preamble, &kept, s);
            return Some(Divergence { seed, step: i, detail, minimized: kept.len() + 1, script });
        }
    }
    None
}

// ---- crash-recover-compare mode --------------------------------------------

/// `SELECT *` bag of one table, as sorted display strings (rows have no
/// guaranteed order, and `Value` is not `Ord`).
fn table_bag(db: &mut Database, table: &str) -> Result<Vec<String>, String> {
    let rows = db
        .query(&format!("SELECT * FROM {table}"))
        .map_err(|e| format!("SELECT * FROM {table}: {e}"))?;
    let mut bag: Vec<String> = rows.iter().map(|r| format!("{r:?}")).collect();
    bag.sort();
    Ok(bag)
}

/// `ALTER INDEX … REBUILD` every non-VALID domain index (recovery may
/// legitimately leave external-file indexes quarantined).
fn rebuild_degraded(db: &mut Database) -> Result<(), String> {
    let degraded: Vec<String> = db
        .catalog()
        .health
        .snapshot()
        .into_iter()
        .filter(|s| s.state != HealthState::Valid)
        .map(|s| s.index)
        .collect();
    for name in degraded {
        db.execute(&format!("ALTER INDEX {name} REBUILD"))
            .map_err(|e| format!("post-recovery REBUILD of {name}: {e}"))?;
    }
    Ok(())
}

/// Crash-recover-compare: run a seeded workload on a durable engine,
/// kill it at an injected WAL crash point mid-stream, recover a fresh
/// engine from the surviving medium, and demand the recovered state be
/// bag-equal (per table, plus index health after REBUILD of quarantined
/// indexes) to a twin engine that executed exactly the committed prefix.
///
/// Every `wal.*` crash point is exercised in turn, each against a crash
/// site derived from the seed. `None` means all points recovered
/// cleanly; `Some(detail)` describes the first mismatch.
pub fn run_crash_seed(seed: u64, n: usize) -> Option<String> {
    let workload = generate(seed, n);
    // Crash on a mutation statement (queries never touch the WAL, so a
    // fault armed there would sit unfired and the run would not crash).
    let mutation_idxs: Vec<usize> = workload
        .stmts
        .iter()
        .enumerate()
        .filter(|(_, s)| !matches!(s, Stmt::Query(_)))
        .map(|(i, _)| i)
        .collect();
    if mutation_idxs.is_empty() {
        return None;
    }
    for (pi, point) in WAL_FAULT_POINTS.iter().enumerate() {
        let crash_at = mutation_idxs[(seed as usize + pi) % mutation_idxs.len()];
        if let Some(detail) = crash_recover_once(&workload.preamble, &workload.stmts, point, crash_at)
        {
            return Some(format!("seed {seed}, crash point {point}, statement {crash_at}: {detail}"));
        }
    }
    None
}

fn crash_recover_once(
    preamble: &[String],
    stmts: &[Stmt],
    point: &str,
    crash_at: usize,
) -> Option<String> {
    let medium = DurableMedium::new();
    let chaos = ChaosOpts::default();
    // Victim: durable engine that will die mid-statement.
    {
        let mut db = fresh_db(chaos);
        db.enable_durability(medium.clone()).expect("enable durability");
        for sql in preamble {
            db.execute(sql).unwrap_or_else(|e| panic!("preamble failed: {sql}: {e}"));
        }
        for (i, s) in stmts.iter().enumerate() {
            if i == crash_at {
                db.fault_injector().arm_fail(point, None, 1);
                // Checkpoint crash points only fire inside `checkpoint()`;
                // the others fire inside ordinary statements.
                let r = if point.starts_with("wal.checkpoint") {
                    db.checkpoint()
                } else {
                    db.execute(&s.sql()).map(|_| ())
                };
                if db.fault_injector().fired() == 0 {
                    // The statement never reached the WAL (e.g. a DML
                    // matching zero rows appends nothing). No crash
                    // happened; nothing to recover — the scenario is
                    // vacuous for this site.
                    db.fault_injector().disarm_all();
                    return None;
                }
                assert!(r.is_err(), "statement survived a WAL crash at {point}");
                break;
            }
            let _ = db.execute(&s.sql());
        }
        // Victim dropped here: the process is dead; only `medium` survives.
    }
    // Recovered engine from the surviving medium.
    let mut recovered = fresh_db(chaos);
    if let Err(e) = recovered.enable_durability(medium) {
        return Some(format!("recovery failed: {e}"));
    }
    // Twin: a fresh engine that executes exactly the committed prefix.
    let mut twin = fresh_db(chaos);
    for sql in preamble {
        twin.execute(sql).unwrap_or_else(|e| panic!("preamble failed: {sql}: {e}"));
    }
    for s in &stmts[..crash_at] {
        let _ = twin.execute(&s.sql());
    }
    // External-file indexes may come back QUARANTINED (their files do
    // not wait for commit); REBUILD restores them, and nothing else may
    // be degraded on either side afterwards.
    if let Err(e) = rebuild_degraded(&mut recovered) {
        return Some(e);
    }
    if let Err(e) = rebuild_degraded(&mut twin) {
        return Some(format!("twin: {e}"));
    }
    // Per-table bag equality.
    let mut tables = recovered.catalog().table_names();
    let mut twin_tables = twin.catalog().table_names();
    tables.sort();
    twin_tables.sort();
    if tables != twin_tables {
        return Some(format!(
            "recovered tables {tables:?} != committed-prefix tables {twin_tables:?}"
        ));
    }
    for t in &tables {
        let got = match table_bag(&mut recovered, t) {
            Ok(b) => b,
            Err(e) => return Some(format!("recovered: {e}")),
        };
        let want = match table_bag(&mut twin, t) {
            Ok(b) => b,
            Err(e) => return Some(format!("twin: {e}")),
        };
        if got != want {
            return Some(format!(
                "table {t}: recovered bag ({} rows) != committed-prefix bag ({} rows)",
                got.len(),
                want.len()
            ));
        }
    }
    // Health must agree too (all VALID after the rebuild pass).
    let mut rh: Vec<(String, HealthState)> =
        recovered.catalog().health.snapshot().into_iter().map(|s| (s.index, s.state)).collect();
    let mut th: Vec<(String, HealthState)> =
        twin.catalog().health.snapshot().into_iter().map(|s| (s.index, s.state)).collect();
    rh.sort_by(|a, b| a.0.cmp(&b.0));
    th.sort_by(|a, b| a.0.cmp(&b.0));
    if rh != th {
        return Some(format!("index health diverges: recovered {rh:?} != twin {th:?}"));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_seeded_run_is_clean() {
        if let Some(d) = run_seed(1, 40, ChaosOpts::default()) {
            panic!("unexpected divergence: {}\n{}", d.detail, d.script);
        }
    }

    #[test]
    fn short_seeded_run_survives_quarantine_chaos() {
        if let Some(d) = run_seed(1, 40, ChaosOpts::quarantine()) {
            panic!("unexpected divergence under quarantine chaos: {}\n{}", d.detail, d.script);
        }
    }

    /// Cost-ordered conjuncts + the row-at-a-time executor must agree
    /// with the Kleene mirror interpreter: the engine's term reordering
    /// and NULL short-circuiting are semantics-preserving under 3VL on
    /// both executor paths.
    #[test]
    fn short_seeded_run_is_clean_on_row_path() {
        if let Some(d) = run_seed(1, 40, ChaosOpts::row_exec()) {
            panic!("unexpected divergence on row executor: {}\n{}", d.detail, d.script);
        }
    }
}
