//! User-defined operators and their functional implementations.
//!
//! The paper (§1): "User-defined operators, identified by names (e.g.
//! `Contains`), are similar to built-in operators, except that their
//! implementation is provided by the user. After a user has defined a new
//! operator, it can be used in SQL statements like any other built-in
//! operator."
//!
//! An [`Operator`] is a schema object carrying one or more
//! [`OperatorBinding`]s (§2.2.2: "An operator binding identifies the
//! operator with a unique signature (via argument data types), and allows
//! associating a function that provides an implementation"). The bound
//! [`ScalarFunction`] is the *functional implementation* — the fallback
//! the engine evaluates row-by-row whenever the optimizer does not pick a
//! domain-index scan (§2.2.1).

use std::sync::Arc;

use extidx_common::{Error, LobRef, Result, SqlType, Value};

/// The minimal server surface a functional implementation may touch while
/// evaluating one row: LOB dereferencing. (Functional implementations are
/// row-local by design; anything bigger belongs in an index scan.)
pub trait FnContext {
    /// Read a whole LOB's bytes.
    fn lob_read_all(&self, lob: LobRef) -> Result<Vec<u8>>;
}

/// A no-op context for functions that never touch LOBs (tests, pure
/// value-level functions).
pub struct NoLobContext;

impl FnContext for NoLobContext {
    fn lob_read_all(&self, lob: LobRef) -> Result<Vec<u8>> {
        Err(Error::Storage(format!("{lob}: no LOB access in this context")))
    }
}

/// The Rust shape of a functional implementation.
pub type ScalarFnImpl = Arc<dyn Fn(&dyn FnContext, &[Value]) -> Result<Value> + Send + Sync>;

/// A named, registered function (the `CREATE FUNCTION` of §2.2.1 — here
/// the body is Rust rather than PL/SQL, which the paper's
/// language-independence point explicitly allows).
#[derive(Clone)]
pub struct ScalarFunction {
    /// Function name, upper-cased.
    pub name: String,
    /// The callable body.
    pub body: ScalarFnImpl,
}

impl ScalarFunction {
    /// Define a function.
    pub fn new(
        name: impl Into<String>,
        body: impl Fn(&dyn FnContext, &[Value]) -> Result<Value> + Send + Sync + 'static,
    ) -> Self {
        ScalarFunction { name: name.into().to_ascii_uppercase(), body: Arc::new(body) }
    }

    /// Invoke the function.
    pub fn call(&self, ctx: &dyn FnContext, args: &[Value]) -> Result<Value> {
        (self.body)(ctx, args)
    }
}

impl std::fmt::Debug for ScalarFunction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ScalarFunction({})", self.name)
    }
}

/// One binding of an operator: a signature plus the implementing function.
#[derive(Debug, Clone)]
pub struct OperatorBinding {
    /// Declared argument types.
    pub arg_types: Vec<SqlType>,
    /// Declared return type.
    pub return_type: SqlType,
    /// Name of the registered [`ScalarFunction`] implementing this
    /// binding.
    pub function_name: String,
}

impl OperatorBinding {
    /// Whether a concrete argument list is accepted by this binding.
    /// NULLs match any parameter type, mirroring SQL.
    pub fn matches(&self, args: &[Value]) -> bool {
        args.len() == self.arg_types.len()
            && args.iter().zip(&self.arg_types).all(|(v, t)| v.conforms_to(t))
    }
}

/// A user-defined operator schema object.
#[derive(Debug, Clone)]
pub struct Operator {
    /// Operator name, upper-cased (e.g. `CONTAINS`).
    pub name: String,
    /// Bindings in declaration order; resolution picks the first match.
    pub bindings: Vec<OperatorBinding>,
}

impl Operator {
    /// Create an operator with a single binding.
    pub fn with_binding(
        name: impl Into<String>,
        arg_types: Vec<SqlType>,
        return_type: SqlType,
        function_name: impl Into<String>,
    ) -> Self {
        Operator {
            name: name.into().to_ascii_uppercase(),
            bindings: vec![OperatorBinding {
                arg_types,
                return_type,
                function_name: function_name.into().to_ascii_uppercase(),
            }],
        }
    }

    /// Add another binding (operators may have several, §2.2.2).
    pub fn add_binding(
        &mut self,
        arg_types: Vec<SqlType>,
        return_type: SqlType,
        function_name: impl Into<String>,
    ) {
        self.bindings.push(OperatorBinding {
            arg_types,
            return_type,
            function_name: function_name.into().to_ascii_uppercase(),
        });
    }

    /// Resolve the binding for a concrete argument list.
    pub fn resolve(&self, args: &[Value]) -> Result<&OperatorBinding> {
        self.bindings.iter().find(|b| b.matches(args)).ok_or_else(|| {
            Error::Semantic(format!(
                "no binding of operator {} matches argument types ({})",
                self.name,
                args.iter().map(|v| v.type_name()).collect::<Vec<_>>().join(", ")
            ))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn contains_op() -> Operator {
        Operator::with_binding(
            "Contains",
            vec![SqlType::Varchar(4000), SqlType::Varchar(4000)],
            SqlType::Boolean,
            "TextContains",
        )
    }

    #[test]
    fn names_are_uppercased() {
        let op = contains_op();
        assert_eq!(op.name, "CONTAINS");
        assert_eq!(op.bindings[0].function_name, "TEXTCONTAINS");
    }

    #[test]
    fn binding_resolution_by_types() {
        let op = contains_op();
        let args = vec![Value::from("resume text"), Value::from("Oracle")];
        assert!(op.resolve(&args).is_ok());
        let bad = vec![Value::Integer(1), Value::from("Oracle")];
        assert!(op.resolve(&bad).is_err());
        let wrong_arity = vec![Value::from("x")];
        assert!(op.resolve(&wrong_arity).is_err());
    }

    #[test]
    fn null_matches_any_parameter() {
        let op = contains_op();
        let args = vec![Value::Null, Value::from("Oracle")];
        assert!(op.resolve(&args).is_ok());
    }

    #[test]
    fn multiple_bindings_first_match_wins() {
        let mut op = contains_op();
        op.add_binding(
            vec![SqlType::VArray(Box::new(SqlType::Varchar(64))), SqlType::Varchar(64)],
            SqlType::Boolean,
            "VArrayContains",
        );
        let arr = Value::Array(vec![Value::from("Skiing")]);
        let b = op.resolve(&[arr, Value::from("Skiing")]).unwrap();
        assert_eq!(b.function_name, "VARRAYCONTAINS");
    }

    #[test]
    fn scalar_function_calls_through() {
        let f = ScalarFunction::new("upper", |_ctx, args| {
            Ok(Value::from(args[0].as_str()?.to_ascii_uppercase()))
        });
        let out = f.call(&NoLobContext, &[Value::from("abc")]).unwrap();
        assert_eq!(out, Value::from("ABC"));
    }

    #[test]
    fn no_lob_context_rejects() {
        assert!(NoLobContext.lob_read_all(LobRef(1)).is_err());
    }
}
