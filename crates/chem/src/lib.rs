//! # extidx-chem — the Daylight-like chemistry cartridge
//!
//! Reproduces the §3.2.4 case study: molecular substructure and similarity
//! search whose index data migrated from a proprietary **file-based**
//! structure to **LOBs inside the database**, "thereby providing a single
//! data storage model for both tables and indexes".
//!
//! - `MolContains(mol, fragment)` — substructure search: path-fingerprint
//!   screen (never a false negative) then exact subgraph isomorphism;
//! - `MolSimilar(mol, query, threshold[, label])` — Tanimoto similarity
//!   with the score as ancillary data (`SCORE(label)`);
//! - `PARAMETERS (':Storage LOB')` (default) keeps fingerprints in a
//!   database LOB — transactional, buffer-cached, patched in place;
//!   `':Storage FILE'` reproduces the legacy external file that rewrites
//!   itself on every update and ignores transactions (§5's limitation);
//!   `':Storage FILE :Events ON'` adds the database-event handler that
//!   re-synchronizes the file after rollbacks (§5's proposed solution).

pub mod cartridge;
pub mod fingerprint;
pub mod molecule;
pub mod store;
pub mod workload;

use std::sync::Arc;

use extidx_common::{Result, Value};
use extidx_core::operator::ScalarFunction;
use extidx_sql::Database;

pub use cartridge::{ChemIndexMethods, ChemStats};
pub use fingerprint::Fingerprint;
pub use molecule::Molecule;
pub use store::{file_name, StorageMode};
pub use workload::MoleculeWorkload;

/// Install the chemistry cartridge: functional implementations, the two
/// operators, and the `ChemIndexType` indextype.
pub fn install(db: &mut Database) -> Result<()> {
    db.register_function(ScalarFunction::new("MolContainsFn", |_, args| {
        if args[0].is_null() || args[1].is_null() {
            return Ok(Value::Null);
        }
        let mol = Molecule::parse(args[0].as_str()?)?;
        let sub = Molecule::parse(args[1].as_str()?)?;
        Ok(Value::Boolean(mol.contains_subgraph(&sub)))
    }))?;
    db.register_function(ScalarFunction::new("MolSimilarFn", |_, args| {
        if args[0].is_null() || args[1].is_null() {
            return Ok(Value::Null);
        }
        let a = Fingerprint::of(&Molecule::parse(args[0].as_str()?)?);
        let b = Fingerprint::of(&Molecule::parse(args[1].as_str()?)?);
        let threshold = args
            .get(2)
            .ok_or_else(|| extidx_common::Error::Semantic("MolSimilar needs a threshold".into()))?
            .as_number()?;
        Ok(Value::Boolean(a.tanimoto(&b) >= threshold))
    }))?;
    db.execute(
        "CREATE OPERATOR MolContains \
         BINDING (VARCHAR2, VARCHAR2) RETURN BOOLEAN USING MolContainsFn",
    )?;
    db.execute(
        "CREATE OPERATOR MolSimilar \
         BINDING (VARCHAR2, VARCHAR2, NUMBER) RETURN BOOLEAN USING MolSimilarFn, \
         (VARCHAR2, VARCHAR2, NUMBER, INTEGER) RETURN BOOLEAN USING MolSimilarFn",
    )?;
    db.register_odci_implementation("ChemIndexMethods", Arc::new(ChemIndexMethods), Arc::new(ChemStats));
    db.execute(
        "CREATE INDEXTYPE ChemIndexType FOR \
         MolContains(VARCHAR2, VARCHAR2), \
         MolSimilar(VARCHAR2, VARCHAR2, NUMBER), \
         MolSimilar(VARCHAR2, VARCHAR2, NUMBER, INTEGER) \
         USING ChemIndexMethods",
    )?;
    Ok(())
}
