//! End-to-end tests of the chemistry cartridge: substructure and
//! similarity search, LOB vs file storage, and the §5 transactional
//! limitation with its database-event fix.

use extidx_common::Value;
use extidx_sql::Database;
use extidx_chem::{Molecule, MoleculeWorkload};

fn chem_db() -> Database {
    let mut db = Database::with_cache_pages(4096);
    extidx_chem::install(&mut db).unwrap();
    db
}

/// Load a known set plus noise: ids 0..n are random, 1000+i contain the
/// fragment CC=O.
fn load_molecules(db: &mut Database, noise: usize, planted: usize, seed: u64) {
    db.execute("CREATE TABLE compounds (id INTEGER, mol VARCHAR2(256))").unwrap();
    let mut wl = MoleculeWorkload::new(seed);
    for i in 0..noise {
        let m = wl.molecule(10);
        db.execute_with("INSERT INTO compounds VALUES (?, ?)", &[(i as i64).into(), m.into()])
            .unwrap();
    }
    for i in 0..planted {
        let m = wl.molecule_containing("CC=O", 6);
        db.execute_with(
            "INSERT INTO compounds VALUES (?, ?)",
            &[((1000 + i) as i64).into(), m.into()],
        )
        .unwrap();
    }
}

#[test]
fn substructure_search_finds_planted() {
    let mut db = chem_db();
    load_molecules(&mut db, 100, 5, 17);
    db.execute("CREATE INDEX cidx ON compounds(mol) INDEXTYPE IS ChemIndexType").unwrap();
    let rows = db
        .query("SELECT id FROM compounds WHERE MolContains(mol, 'CC=O') ORDER BY id")
        .unwrap();
    let ids: Vec<i64> = rows.iter().map(|r| r[0].as_integer().unwrap()).collect();
    for planted in 1000..1005 {
        assert!(ids.contains(&planted), "planted {planted} missing from {ids:?}");
    }
}

#[test]
fn functional_and_indexed_agree() {
    let seed = 23;
    let mut plain = chem_db();
    load_molecules(&mut plain, 80, 4, seed);
    let f = plain.query("SELECT id FROM compounds WHERE MolContains(mol, 'C=O') ORDER BY id").unwrap();

    let mut indexed = chem_db();
    load_molecules(&mut indexed, 80, 4, seed);
    indexed.execute("CREATE INDEX cidx ON compounds(mol) INDEXTYPE IS ChemIndexType").unwrap();
    let i = indexed.query("SELECT id FROM compounds WHERE MolContains(mol, 'C=O') ORDER BY id").unwrap();
    assert_eq!(f, i);
    assert!(!f.is_empty());
}

#[test]
fn file_storage_agrees_with_lob_storage() {
    let seed = 31;
    let mut lob = chem_db();
    load_molecules(&mut lob, 60, 3, seed);
    lob.execute("CREATE INDEX cidx ON compounds(mol) INDEXTYPE IS ChemIndexType PARAMETERS (':Storage LOB')")
        .unwrap();
    let a = lob.query("SELECT id FROM compounds WHERE MolContains(mol, 'CC=O') ORDER BY id").unwrap();

    let mut file = chem_db();
    load_molecules(&mut file, 60, 3, seed);
    file.execute(
        "CREATE INDEX cidx ON compounds(mol) INDEXTYPE IS ChemIndexType PARAMETERS (':Storage FILE')",
    )
    .unwrap();
    let b = file.query("SELECT id FROM compounds WHERE MolContains(mol, 'CC=O') ORDER BY id").unwrap();
    assert_eq!(a, b);
}

#[test]
fn similarity_search_ranks_identical_first() {
    let mut db = chem_db();
    load_molecules(&mut db, 60, 0, 41);
    let probe = "CC(=O)NC";
    db.execute_with("INSERT INTO compounds VALUES (500, ?)", &[probe.into()]).unwrap();
    db.execute("CREATE INDEX cidx ON compounds(mol) INDEXTYPE IS ChemIndexType").unwrap();
    let rows = db
        .query_with(
            "SELECT id, SCORE(1) FROM compounds WHERE MolSimilar(mol, ?, 0.4, 1) \
             ORDER BY SCORE(1) DESC",
            &[probe.into()],
        )
        .unwrap();
    assert!(!rows.is_empty());
    assert_eq!(rows[0][0], Value::Integer(500), "exact copy ranks first");
    assert_eq!(rows[0][1], Value::Number(1.0));
}

#[test]
fn maintenance_tracks_dml_in_both_modes() {
    for storage in [":Storage LOB", ":Storage FILE"] {
        let mut db = chem_db();
        load_molecules(&mut db, 30, 1, 53);
        db.execute(&format!(
            "CREATE INDEX cidx ON compounds(mol) INDEXTYPE IS ChemIndexType PARAMETERS ('{storage}')"
        ))
        .unwrap();
        let q = "SELECT id FROM compounds WHERE MolContains(mol, 'CC=O')";
        let before = db.query(q).unwrap().len();
        db.execute("INSERT INTO compounds VALUES (600, 'CC=OC')").unwrap();
        assert_eq!(db.query(q).unwrap().len(), before + 1, "{storage}");
        db.execute("UPDATE compounds SET mol = 'CCC' WHERE id = 600").unwrap();
        assert_eq!(db.query(q).unwrap().len(), before, "{storage}");
        db.execute("DELETE FROM compounds WHERE id = 1000").unwrap();
        assert_eq!(db.query(q).unwrap().len(), before - 1, "{storage}");
    }
}

#[test]
fn lob_index_rolls_back_but_file_index_does_not() {
    // The §5 limitation, demonstrated head-to-head.
    let q = "SELECT id FROM compounds WHERE MolContains(mol, 'CC=O')";

    // LOB mode: transactional for free.
    let mut lob = chem_db();
    load_molecules(&mut lob, 20, 1, 61);
    lob.execute("CREATE INDEX cidx ON compounds(mol) INDEXTYPE IS ChemIndexType PARAMETERS (':Storage LOB')")
        .unwrap();
    let before = lob.query(q).unwrap().len();
    lob.execute("BEGIN").unwrap();
    lob.execute("INSERT INTO compounds VALUES (700, 'CC=O')").unwrap();
    lob.execute("ROLLBACK").unwrap();
    assert_eq!(lob.query(q).unwrap().len(), before, "LOB index must roll back");

    // FILE mode without events: the file keeps the phantom entry.
    let mut file = chem_db();
    load_molecules(&mut file, 20, 1, 61);
    file.execute(
        "CREATE INDEX cidx ON compounds(mol) INDEXTYPE IS ChemIndexType PARAMETERS (':Storage FILE')",
    )
    .unwrap();
    let total_rows =
        file.query("SELECT COUNT(*) FROM compounds").unwrap()[0][0].as_integer().unwrap() as u64;
    file.execute("BEGIN").unwrap();
    file.execute("INSERT INTO compounds VALUES (700, 'CC=O')").unwrap();
    file.execute("ROLLBACK").unwrap();
    // The scan screens a phantom rowid; the base row is gone so the exact
    // phase drops it — but the stale record IS still in the file:
    let stale = file.storage().files_ref().length("dr$cidx.fpidx").unwrap();
    let expected = (total_rows + 1) * extidx_chem::store::RECORD_BYTES as u64;
    assert_eq!(stale, expected, "external file retains the rolled-back entry");
}

#[test]
fn events_resynchronize_external_file_after_rollback() {
    // §5's proposed solution: database events repair the external store.
    let mut db = chem_db();
    load_molecules(&mut db, 20, 1, 71);
    db.execute(
        "CREATE INDEX cidx ON compounds(mol) INDEXTYPE IS ChemIndexType \
         PARAMETERS (':Storage FILE :Events ON')",
    )
    .unwrap();
    let clean = db.storage().files_ref().length("dr$cidx.fpidx").unwrap();
    db.execute("BEGIN").unwrap();
    db.execute("INSERT INTO compounds VALUES (700, 'CC=O')").unwrap();
    db.execute("ROLLBACK").unwrap();
    let after = db.storage().files_ref().length("dr$cidx.fpidx").unwrap();
    assert_eq!(after, clean, "event handler rebuilt the file to the settled state");
}

#[test]
fn truncate_and_drop() {
    let mut db = chem_db();
    load_molecules(&mut db, 10, 1, 81);
    db.execute("CREATE INDEX cidx ON compounds(mol) INDEXTYPE IS ChemIndexType").unwrap();
    db.execute("TRUNCATE TABLE compounds").unwrap();
    assert!(db.query("SELECT id FROM compounds WHERE MolContains(mol, 'C')").unwrap().is_empty());
    db.execute("DROP INDEX cidx").unwrap();
    assert!(db.query("SELECT COUNT(*) FROM DR$CIDX$META").is_err());
}

#[test]
fn screen_never_misses_plan_uses_domain_index() {
    let mut db = chem_db();
    load_molecules(&mut db, 200, 10, 91);
    db.execute("CREATE INDEX cidx ON compounds(mol) INDEXTYPE IS ChemIndexType").unwrap();
    let plan = db
        .explain("SELECT id FROM compounds WHERE MolContains(mol, 'CC=O')")
        .unwrap()
        .join("\n");
    assert!(plan.contains("DOMAIN INDEX SCAN"), "{plan}");
    // Cross-check against a purely functional evaluation of every row.
    let rows = db.query("SELECT id, mol FROM compounds").unwrap();
    let frag = Molecule::parse("CC=O").unwrap();
    let mut expected: Vec<i64> = rows
        .iter()
        .filter(|r| Molecule::parse(r[1].as_str().unwrap()).unwrap().contains_subgraph(&frag))
        .map(|r| r[0].as_integer().unwrap())
        .collect();
    expected.sort_unstable();
    let mut got: Vec<i64> = db
        .query("SELECT id FROM compounds WHERE MolContains(mol, 'CC=O')")
        .unwrap()
        .iter()
        .map(|r| r[0].as_integer().unwrap())
        .collect();
    got.sort_unstable();
    assert_eq!(got, expected);
}

/// EXPLAIN ANALYZE smoke: the substructure scan is annotated with actual
/// counters and the summary reports the executed row count.
#[test]
fn explain_analyze_annotates_the_chem_scan() {
    let mut db = chem_db();
    load_molecules(&mut db, 60, 4, 41);
    db.execute("CREATE INDEX cidx ON compounds(mol) INDEXTYPE IS ChemIndexType").unwrap();
    let sql =
        "SELECT /*+ INDEX(compounds cidx) */ id FROM compounds WHERE MolContains(mol, 'CC=O')";
    let lines: Vec<String> = db
        .query(&format!("EXPLAIN ANALYZE {sql}"))
        .unwrap()
        .into_iter()
        .map(|r| r[0].to_string())
        .collect();
    let scan =
        lines.iter().find(|l| l.contains("DOMAIN INDEX SCAN")).expect("domain scan in plan");
    assert!(scan.contains("[actual rows="), "unannotated scan line: {scan}");
    let expected = db.query(sql).unwrap().len();
    let summary = lines.last().unwrap();
    assert!(summary.contains(&format!("rows={expected}")), "{summary}");
}

/// A panic inside the fingerprint maintenance path is contained by the
/// sandbox: the INSERT fails with `CartridgeFault`, nothing of the row
/// survives (base table or index), and a clean retry succeeds.
#[test]
fn panic_in_maintenance_is_contained() {
    use extidx_core::fault::FaultKind;

    let mut db = chem_db();
    load_molecules(&mut db, 40, 2, 11);
    db.execute("CREATE INDEX cidx ON compounds(mol) INDEXTYPE IS ChemIndexType").unwrap();
    let mut wl = MoleculeWorkload::new(99);
    let probe: String = wl.molecule_containing("CC=O", 6);

    let inj = db.fault_injector().clone();
    inj.arm("chem.maintenance.indexed", None, 1, FaultKind::Panic);
    let err = db
        .execute_with("INSERT INTO compounds VALUES (?, ?)", &[5000_i64.into(), probe.clone().into()])
        .expect_err("panicking maintenance must fail the statement");
    assert!(
        matches!(err, extidx_common::Error::CartridgeFault { .. }),
        "expected CartridgeFault, got {err}"
    );
    inj.disarm_all();

    let ids = |db: &mut Database| -> Vec<i64> {
        db.query("SELECT id FROM compounds WHERE MolContains(mol, 'CC=O') ORDER BY id")
            .unwrap()
            .iter()
            .map(|r| r[0].as_integer().unwrap())
            .collect()
    };
    assert!(!ids(&mut db).contains(&5000), "failed insert must leave no fingerprint");

    db.execute_with("INSERT INTO compounds VALUES (?, ?)", &[5000_i64.into(), probe.into()])
        .unwrap();
    assert!(ids(&mut db).contains(&5000), "clean retry must be indexed");
}
