//! Property-based tests for the value model: total ordering of keys,
//! rowid packing, and size estimates.

use proptest::prelude::*;

use extidx_common::key::Key;
use extidx_common::{RowId, Value};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Integer),
        (-1e12f64..1e12).prop_map(Value::Number),
        "[a-z]{0,8}".prop_map(Value::from),
        any::<bool>().prop_map(Value::Boolean),
        (0u32..1 << 22, 0u32..1 << 26, any::<u16>())
            .prop_map(|(t, p, s)| Value::RowId(RowId::new(t, p, s))),
    ]
}

fn arb_key() -> impl Strategy<Value = Key> {
    prop::collection::vec(arb_value(), 0..4).prop_map(Key)
}

proptest! {
    #[test]
    fn rowid_pack_roundtrip(t in 0u32..1 << 22, p in 0u32..1 << 26, s in any::<u16>()) {
        let r = RowId::new(t, p, s);
        prop_assert_eq!(RowId::from_u64(r.to_u64()), r);
    }

    #[test]
    fn key_ordering_is_total_and_consistent(a in arb_key(), b in arb_key(), c in arb_key()) {
        use std::cmp::Ordering;
        // Antisymmetry.
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        // Transitivity (≤).
        if a.cmp(&b) != Ordering::Greater && b.cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.cmp(&c), Ordering::Greater);
        }
        // Reflexivity.
        prop_assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn keys_sort_stably_in_collections(keys in prop::collection::vec(arb_key(), 0..20)) {
        // Sorting twice yields the same order, and BTreeMap accepts all
        // keys without panicking (Ord is total).
        let mut v1 = keys.clone();
        v1.sort();
        let mut v2 = v1.clone();
        v2.sort();
        prop_assert_eq!(&v1, &v2);
        let map: std::collections::BTreeMap<Key, ()> =
            keys.into_iter().map(|k| (k, ())).collect();
        let collected: Vec<&Key> = map.keys().collect();
        let mut resorted = collected.clone();
        resorted.sort();
        prop_assert_eq!(collected, resorted);
    }

    #[test]
    fn total_cmp_agrees_with_sql_cmp_when_defined(a in arb_value(), b in arb_value()) {
        if let Some(ord) = a.sql_cmp(&b) {
            prop_assert_eq!(a.total_cmp(&b), ord);
        }
    }

    #[test]
    fn nulls_always_sort_last(v in arb_value()) {
        if !v.is_null() {
            prop_assert_eq!(v.total_cmp(&Value::Null), std::cmp::Ordering::Less);
            prop_assert_eq!(Value::Null.total_cmp(&v), std::cmp::Ordering::Greater);
        }
    }

    #[test]
    fn approx_sizes_are_positive(v in arb_value()) {
        prop_assert!(extidx_common::approx_value_size(&v) >= 1);
    }

    #[test]
    fn integer_number_comparison_is_coherent(i in -1_000_000i64..1_000_000, f in -1e6f64..1e6) {
        let a = Value::Integer(i);
        let b = Value::Number(f);
        let expected = (i as f64).partial_cmp(&f).unwrap();
        prop_assert_eq!(a.sql_cmp(&b), Some(expected));
        prop_assert_eq!(b.sql_cmp(&a), Some(expected.reverse()));
    }
}
