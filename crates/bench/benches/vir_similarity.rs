//! E4 (§3.2.3): three-phase filtered image similarity vs the unindexed
//! per-row full signature comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use extidx_bench::vir_fixture;

fn bench_vir_similarity(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_vir_similarity");
    group.sample_size(10);
    let weights = "globalcolor=0.5, localcolor=0.0, texture=0.5, structure=0.0";
    for n in [1000usize, 4000] {
        let mut base = vir_fixture(n, 5, 7, false).expect("baseline fixture");
        let sql = format!(
            "SELECT id FROM images WHERE VirSimilar(img, '{}', '{weights}', 3.0)",
            base.query.serialize()
        );
        group.bench_with_input(BenchmarkId::new("full_scan_compare", n), &sql, |b, sql| {
            b.iter(|| base.db.query(sql).expect("full scan"))
        });
        let mut idx = vir_fixture(n, 5, 7, true).expect("indexed fixture");
        group.bench_with_input(BenchmarkId::new("three_phase_index", n), &sql, |b, sql| {
            b.iter(|| idx.db.query(sql).expect("indexed"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vir_similarity);
criterion_main!(benches);
