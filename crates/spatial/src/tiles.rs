//! Fixed-grid tessellation.
//!
//! §3.2.2: "The spatial index consists of a collection of tiles (unit of
//! space) corresponding to every spatial object, and is stored in an
//! Oracle table." The world `[0, world)²` is divided into `2^level ×
//! 2^level` tiles; a geometry's tile set is every tile its MBR touches.
//! Two geometries can only interact if they share a tile — the primary
//! filter of the two-phase evaluation.

use crate::geometry::Geometry;

/// Tessellation parameters.
#[derive(Debug, Clone, Copy)]
pub struct Tessellation {
    /// Side length of the (square) world.
    pub world: f64,
    /// Grid level: the world is `2^level` tiles on a side.
    pub level: u32,
}

impl Default for Tessellation {
    fn default() -> Self {
        Tessellation { world: 1024.0, level: 6 }
    }
}

impl Tessellation {
    /// Grid cells per side.
    pub fn grid(&self) -> u64 {
        1 << self.level
    }

    /// Tile side length.
    pub fn tile_size(&self) -> f64 {
        self.world / self.grid() as f64
    }

    fn clamp_cell(&self, c: f64) -> u64 {
        let g = self.grid() as i64;
        (c.floor() as i64).clamp(0, g - 1) as u64
    }

    /// Tile code for a grid cell.
    fn code(&self, ix: u64, iy: u64) -> i64 {
        (iy * self.grid() + ix) as i64
    }

    /// All tiles a geometry's MBR touches.
    pub fn tiles_for(&self, g: &Geometry) -> Vec<i64> {
        let m = g.mbr();
        let ts = self.tile_size();
        let x0 = self.clamp_cell(m.xmin / ts);
        let x1 = self.clamp_cell(m.xmax / ts);
        let y0 = self.clamp_cell(m.ymin / ts);
        let y1 = self.clamp_cell(m.ymax / ts);
        let mut out = Vec::with_capacity(((x1 - x0 + 1) * (y1 - y0 + 1)) as usize);
        for iy in y0..=y1 {
            for ix in x0..=x1 {
                out.push(self.code(ix, iy));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Mbr;

    fn tess() -> Tessellation {
        Tessellation { world: 100.0, level: 2 } // 4x4 grid, 25-unit tiles
    }

    #[test]
    fn point_maps_to_one_tile() {
        let t = tess();
        let g = Geometry::Point { x: 10.0, y: 10.0 };
        assert_eq!(t.tiles_for(&g), vec![0]);
        let g = Geometry::Point { x: 30.0, y: 60.0 };
        assert_eq!(t.tiles_for(&g), vec![2 * 4 + 1]);
    }

    #[test]
    fn rect_spans_multiple_tiles() {
        let t = tess();
        let g = Geometry::Rect(Mbr { xmin: 20.0, ymin: 20.0, xmax: 30.0, ymax: 30.0 });
        // crosses the 25-boundary in both axes → 4 tiles
        assert_eq!(t.tiles_for(&g).len(), 4);
    }

    #[test]
    fn out_of_world_clamps() {
        let t = tess();
        let g = Geometry::Point { x: -5.0, y: 1e9 };
        let tiles = t.tiles_for(&g);
        assert_eq!(tiles.len(), 1);
        assert_eq!(tiles[0], 12); // x clamped to col 0, y clamped to row 3
    }

    #[test]
    fn overlapping_geometries_share_a_tile() {
        let t = Tessellation::default();
        let a = Geometry::Rect(Mbr { xmin: 100.0, ymin: 100.0, xmax: 120.0, ymax: 120.0 });
        let b = Geometry::Rect(Mbr { xmin: 110.0, ymin: 110.0, xmax: 130.0, ymax: 130.0 });
        let ta = t.tiles_for(&a);
        let tb = t.tiles_for(&b);
        assert!(ta.iter().any(|x| tb.contains(x)), "primary filter must not miss overlaps");
    }

    #[test]
    fn whole_world_rect_touches_every_tile() {
        let t = tess();
        let g = Geometry::Rect(Mbr { xmin: 0.0, ymin: 0.0, xmax: 99.9, ymax: 99.9 });
        assert_eq!(t.tiles_for(&g).len(), 16);
    }
}
