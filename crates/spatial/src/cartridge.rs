//! The ODCIIndex implementation for the spatial indextype.
//!
//! Two storage tables per index (both index-organized, created through
//! server callbacks):
//!
//! - `DR$<index>$T (tile, rid)` — the tile table: one row per (tile,
//!   geometry) pair, the primary filter;
//! - `DR$<index>$G (rid, geom)` — serialized geometries, the exact
//!   filter's input.
//!
//! A scan evaluates `Sdo_Relate` in the two phases §3.2.2 describes: the
//! primary filter ("determines the candidate set of tiles … which
//! overlap") runs in `ODCIIndexStart`; the exact filter ("applies an exact
//! filter to these candidate rows") runs incrementally during
//! `ODCIIndexFetch`.

use std::collections::BTreeSet;

use extidx_common::{Error, Result, RowId, Value};
use extidx_core::build::{try_partition_map, DEFAULT_BUILD_BATCH_ROWS};
use extidx_core::meta::{IndexInfo, OperatorCall};
use extidx_core::params::ParamString;
use extidx_core::scan::{FetchResult, FetchedRow, ScanContext};
use extidx_core::server::{BaseRow, ServerContext};
use extidx_core::stats::{IndexCost, OdciStats};
use extidx_core::OdciIndex;

use crate::geometry::{Geometry, Mask};
use crate::tiles::Tessellation;

/// The indextype implementation.
pub struct SpatialIndexMethods;

fn tile_table(info: &IndexInfo) -> String {
    info.storage_table_name("T")
}

pub(crate) fn geom_table(info: &IndexInfo) -> String {
    info.storage_table_name("G")
}

/// Tessellation from index parameters (`:World 1024 :Level 6`).
pub fn tessellation(params: &ParamString) -> Tessellation {
    let mut t = Tessellation::default();
    if let Some(w) = params.first("World").and_then(|v| v.parse::<f64>().ok()) {
        if w > 0.0 {
            t.world = w;
        }
    }
    if let Some(l) = params.first("Level").and_then(|v| v.parse::<u32>().ok()) {
        t.level = l.min(12);
    }
    t
}

fn index_one(
    srv: &mut dyn ServerContext,
    info: &IndexInfo,
    tess: &Tessellation,
    rid: RowId,
    value: &Value,
) -> Result<()> {
    if value.is_null() {
        return Ok(());
    }
    let g = Geometry::from_value(value)?;
    for tile in tess.tiles_for(&g) {
        srv.execute(
            &format!("INSERT INTO {} VALUES (?, ?)", tile_table(info)),
            &[Value::Integer(tile), Value::RowId(rid)],
        )?;
    }
    srv.execute(
        &format!("INSERT INTO {} VALUES (?, ?)", geom_table(info)),
        &[Value::RowId(rid), Value::from(g.serialize())],
    )?;
    Ok(())
}

fn unindex_one(
    srv: &mut dyn ServerContext,
    info: &IndexInfo,
    tess: &Tessellation,
    rid: RowId,
    value: &Value,
) -> Result<()> {
    if value.is_null() {
        return Ok(());
    }
    let g = Geometry::from_value(value)?;
    for tile in tess.tiles_for(&g) {
        srv.execute(
            &format!("DELETE FROM {} WHERE tile = ? AND rid = ?", tile_table(info)),
            &[Value::Integer(tile), Value::RowId(rid)],
        )?;
    }
    srv.execute(
        &format!("DELETE FROM {} WHERE rid = ?", geom_table(info)),
        &[Value::RowId(rid)],
    )?;
    Ok(())
}

/// Per-scan state: candidates awaiting the exact filter. Shared by the
/// tile cartridge and the R-tree cartridge — both produce candidate
/// rowids from a primary filter, then verify exact geometry during fetch.
pub(crate) struct SpatialScan {
    pub(crate) query: Geometry,
    pub(crate) mask: Mask,
    pub(crate) candidates: Vec<RowId>,
    pub(crate) pos: usize,
    /// Candidate-count diagnostics for the filter-effectiveness reports.
    pub(crate) primary_candidates: usize,
}

/// The exact-filter fetch loop (§3.2.2's second phase), shared by both
/// spatial indextypes: pull candidates, look up their geometry in the
/// `…$G` table, emit those whose exact relation holds.
pub(crate) fn exact_fetch(
    srv: &mut dyn ServerContext,
    geom_table_name: &str,
    st: &mut SpatialScan,
    nrows: usize,
) -> Result<FetchResult> {
    let mut out = Vec::with_capacity(nrows);
    while out.len() < nrows && st.pos < st.candidates.len() {
        let rid = st.candidates[st.pos];
        st.pos += 1;
        let rows = srv.query(
            &format!("SELECT geom FROM {geom_table_name} WHERE rid = ?"),
            &[Value::RowId(rid)],
        )?;
        let Some(row) = rows.first() else { continue };
        let g = Geometry::deserialize(row[0].as_str()?)?;
        if g.relate(&st.query, st.mask) {
            out.push(FetchedRow::plain(rid));
        }
    }
    let done = st.pos >= st.candidates.len();
    let _ = st.primary_candidates;
    Ok(FetchResult { rows: out, done })
}

impl SpatialIndexMethods {
    /// Stream the base table through [`OdciIndex::build_batch`] — shared
    /// by `create` and rebuild-on-`alter`, honoring `PARALLEL <n>`.
    fn populate_from_base(&self, srv: &mut dyn ServerContext, info: &IndexInfo) -> Result<()> {
        let parallel = info.parameters.parallel_degree();
        srv.scan_base_batches(
            &info.table_name,
            &[&info.column_name],
            DEFAULT_BUILD_BATCH_ROWS,
            &mut |srv, batch| self.build_batch(srv, info, batch, parallel),
        )
    }
}

impl OdciIndex for SpatialIndexMethods {
    fn create(&self, srv: &mut dyn ServerContext, info: &IndexInfo) -> Result<()> {
        srv.execute(
            &format!(
                "CREATE TABLE {} (tile INTEGER, rid ROWID, PRIMARY KEY (tile, rid)) \
                 ORGANIZATION INDEX",
                tile_table(info)
            ),
            &[],
        )?;
        srv.execute(
            &format!(
                "CREATE TABLE {} (rid ROWID, geom VARCHAR2(4000), PRIMARY KEY (rid)) \
                 ORGANIZATION INDEX",
                geom_table(info)
            ),
            &[],
        )?;
        self.populate_from_base(srv, info)
    }

    fn alter(&self, srv: &mut dyn ServerContext, info: &IndexInfo, _delta: &ParamString) -> Result<()> {
        // Changed tessellation parameters require a rebuild under the
        // merged parameters.
        srv.execute(&format!("TRUNCATE TABLE {}", tile_table(info)), &[])?;
        srv.execute(&format!("TRUNCATE TABLE {}", geom_table(info)), &[])?;
        self.populate_from_base(srv, info)
    }

    fn build_batch(
        &self,
        srv: &mut dyn ServerContext,
        info: &IndexInfo,
        batch: &[BaseRow],
        parallel: usize,
    ) -> Result<()> {
        let tess = tessellation(&info.parameters);
        // Geometry parsing, tile decomposition and serialization are pure
        // CPU — fan them out; the tile/geom inserts stay on the
        // coordinator, in input order.
        let prepared = try_partition_map(batch, parallel, |row| {
            let v = row.value();
            if v.is_null() {
                return Ok::<_, Error>(None);
            }
            let g = Geometry::from_value(v)?;
            Ok(Some((row.rid, tess.tiles_for(&g), g.serialize())))
        })?;
        let tt = tile_table(info);
        let gt = geom_table(info);
        for (rid, tiles, geom) in prepared.into_iter().flatten() {
            for tile in tiles {
                srv.execute(
                    &format!("INSERT INTO {tt} VALUES (?, ?)"),
                    &[Value::Integer(tile), Value::RowId(rid)],
                )?;
            }
            srv.execute(
                &format!("INSERT INTO {gt} VALUES (?, ?)"),
                &[Value::RowId(rid), Value::from(geom)],
            )?;
        }
        Ok(())
    }

    fn truncate(&self, srv: &mut dyn ServerContext, info: &IndexInfo) -> Result<()> {
        srv.execute(&format!("TRUNCATE TABLE {}", tile_table(info)), &[])?;
        srv.execute(&format!("TRUNCATE TABLE {}", geom_table(info)), &[])?;
        Ok(())
    }

    fn drop_index(&self, srv: &mut dyn ServerContext, info: &IndexInfo) -> Result<()> {
        srv.execute(&format!("DROP TABLE {}", tile_table(info)), &[])?;
        srv.execute(&format!("DROP TABLE {}", geom_table(info)), &[])?;
        Ok(())
    }

    fn insert(
        &self,
        srv: &mut dyn ServerContext,
        info: &IndexInfo,
        rid: RowId,
        new_value: &Value,
    ) -> Result<()> {
        let tess = tessellation(&info.parameters);
        index_one(srv, info, &tess, rid, new_value)?;
        srv.fault_point("spatial.maintenance.indexed")
    }

    fn update(
        &self,
        srv: &mut dyn ServerContext,
        info: &IndexInfo,
        rid: RowId,
        old_value: &Value,
        new_value: &Value,
    ) -> Result<()> {
        let tess = tessellation(&info.parameters);
        unindex_one(srv, info, &tess, rid, old_value)?;
        // Old tiles removed, new tiles not yet written.
        srv.fault_point("spatial.maintenance.reindex")?;
        index_one(srv, info, &tess, rid, new_value)
    }

    fn delete(
        &self,
        srv: &mut dyn ServerContext,
        info: &IndexInfo,
        rid: RowId,
        old_value: &Value,
    ) -> Result<()> {
        let tess = tessellation(&info.parameters);
        unindex_one(srv, info, &tess, rid, old_value)
    }

    fn start(
        &self,
        srv: &mut dyn ServerContext,
        info: &IndexInfo,
        op: &OperatorCall,
    ) -> Result<ScanContext> {
        let query = Geometry::from_value(op.args.first().ok_or_else(|| {
            Error::odci(&info.indextype_name, "ODCIIndexStart", "missing query geometry")
        })?)?;
        let mask = Mask::parse(op.args.get(1).and_then(|v| v.as_str().ok()).unwrap_or("ANYINTERACT"))?;
        let tess = tessellation(&info.parameters);

        // Primary filter: candidate rowids sharing a tile with the query.
        let mut candidates: BTreeSet<RowId> = BTreeSet::new();
        for tile in tess.tiles_for(&query) {
            let rows = srv.query(
                &format!("SELECT rid FROM {} WHERE tile = ?", tile_table(info)),
                &[Value::Integer(tile)],
            )?;
            for r in rows {
                candidates.insert(r[0].as_rowid()?);
            }
        }
        let candidates: Vec<RowId> = candidates.into_iter().collect();
        let primary = candidates.len();
        Ok(ScanContext::State(Box::new(SpatialScan {
            query,
            mask,
            candidates,
            pos: 0,
            primary_candidates: primary,
        })))
    }

    fn fetch(
        &self,
        srv: &mut dyn ServerContext,
        info: &IndexInfo,
        ctx: &mut ScanContext,
        nrows: usize,
    ) -> Result<FetchResult> {
        let gt = geom_table(info);
        let st = ctx.state_mut::<SpatialScan>().ok_or_else(|| {
            Error::odci(&info.indextype_name, "ODCIIndexFetch", "bad scan state")
        })?;
        exact_fetch(srv, &gt, st, nrows)
    }

    fn close(&self, _srv: &mut dyn ServerContext, _info: &IndexInfo, _ctx: ScanContext) -> Result<()> {
        Ok(())
    }
}

/// ODCIStats for the spatial indextype: candidate density from the tile
/// table drives selectivity; cost counts tile probes plus exact
/// comparisons.
pub struct SpatialStats;

impl OdciStats for SpatialStats {
    fn collect(&self, _srv: &mut dyn ServerContext, _info: &IndexInfo) -> Result<()> {
        Ok(())
    }

    fn selectivity(
        &self,
        srv: &mut dyn ServerContext,
        info: &IndexInfo,
        op: &OperatorCall,
    ) -> Result<f64> {
        let total =
            srv.query(&format!("SELECT COUNT(*) FROM {}", geom_table(info)), &[])?[0][0].as_integer()? as f64;
        if total == 0.0 {
            return Ok(0.0);
        }
        let Some(first) = op.args.first() else { return Ok(0.01) };
        let Ok(query) = Geometry::from_value(first) else { return Ok(0.01) };
        let tess = tessellation(&info.parameters);
        // Sample up to 8 query tiles to estimate candidate density.
        let tiles = tess.tiles_for(&query);
        let sample: Vec<i64> = tiles.iter().copied().take(8).collect();
        let mut sampled = 0f64;
        for t in &sample {
            let n = srv.query(
                &format!("SELECT COUNT(*) FROM {} WHERE tile = ?", tile_table(info)),
                &[Value::Integer(*t)],
            )?[0][0]
                .as_integer()? as f64;
            sampled += n;
        }
        let est_candidates = if sample.is_empty() {
            0.0
        } else {
            sampled / sample.len() as f64 * tiles.len() as f64
        };
        Ok((est_candidates / total).clamp(0.0, 1.0))
    }

    fn index_cost(
        &self,
        _srv: &mut dyn ServerContext,
        info: &IndexInfo,
        op: &OperatorCall,
        selectivity: f64,
    ) -> Result<IndexCost> {
        let tess = tessellation(&info.parameters);
        let tiles = op
            .args
            .first()
            .and_then(|v| Geometry::from_value(v).ok())
            .map(|g| tess.tiles_for(&g).len())
            .unwrap_or(1) as f64;
        Ok(IndexCost {
            io_cost: tiles + selectivity * 100.0,
            cpu_cost: selectivity * 50.0,
        })
    }
}
