//! Parallel index-build helpers: partition → merge over scoped threads.
//!
//! The paper's case studies (§4) all stress bulk ingest — text corpora,
//! spatial layers, image and molecule libraries — and the CPU-heavy part
//! of every one of those builds is per-row and embarrassingly parallel:
//! tokenization, tile decomposition, feature extraction, fingerprinting.
//! The DB-touching part is not: server callbacks mutate `&mut Database`,
//! which is single-writer.
//!
//! [`partition_map`] encodes the split. The coordinating thread (the one
//! holding the `ServerContext`) partitions a batch into contiguous chunks,
//! fans the pure per-row function across `std::thread::scope` workers, and
//! merges the chunk results back **in input order**. Callbacks never leave
//! the coordinating thread, so a `PARALLEL 4` build issues exactly the
//! same callback sequence as a serial one — determinism is structural, not
//! incidental.
//!
//! `PARALLEL <n>` arrives through the index's `PARAMETERS` string (see
//! [`crate::params::ParamString::parallel_degree`]), mirroring Oracle's
//! `PARALLEL` clause.

/// Default number of base-table rows a streaming build holds in memory at
/// once (the `batch_size` handed to
/// [`crate::server::ServerContext::scan_base_batches`]).
pub const DEFAULT_BUILD_BATCH_ROWS: usize = 1024;

/// Apply `f` to every item, fanning contiguous chunks across `parallel`
/// scoped worker threads. Results come back in input order; with
/// `parallel <= 1` (or a trivially small input) no threads are spawned and
/// this is exactly `items.iter().map(f).collect()`.
pub fn partition_map<T, R, F>(items: &[T], parallel: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let parallel = parallel.clamp(1, items.len().max(1));
    if parallel <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(parallel);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .map(|chunk| scope.spawn(move || chunk.iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("index-build worker panicked"))
            .collect()
    })
}

/// [`partition_map`] for fallible per-row work: the error of the
/// **lowest-index** failing item wins, regardless of which worker hit an
/// error first — another determinism guarantee (a serial build would have
/// surfaced exactly that error).
pub fn try_partition_map<T, R, E, F>(items: &[T], parallel: usize, f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(&T) -> Result<R, E> + Sync,
{
    partition_map(items, parallel, f).into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        for parallel in [1, 2, 3, 8, 64] {
            let out = partition_map(&items, parallel, |&x| x * 2);
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>(), "parallel={parallel}");
        }
    }

    #[test]
    fn degenerate_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(partition_map(&empty, 8, |&x| x).is_empty());
        assert_eq!(partition_map(&[7], 8, |&x| x + 1), vec![8]);
    }

    #[test]
    fn parallel_larger_than_input_is_clamped() {
        let items = [1, 2, 3];
        assert_eq!(partition_map(&items, 100, |&x| x), vec![1, 2, 3]);
    }

    #[test]
    fn first_error_by_input_index_wins() {
        let items: Vec<i32> = (0..100).collect();
        let out = try_partition_map(&items, 4, |&x| if x >= 30 { Err(x) } else { Ok(x) });
        // Items 30..100 all fail, split across several workers; the merge
        // must surface item 30's error, as a serial run would.
        assert_eq!(out, Err(30));
    }

    #[test]
    fn workers_actually_run_in_parallel_threads() {
        let main = std::thread::current().id();
        let items: Vec<u32> = (0..64).collect();
        let off_thread = partition_map(&items, 4, |_| std::thread::current().id() != main);
        assert!(off_thread.iter().all(|&b| b), "parallel>1 must not run on the coordinator");
        let on_thread = partition_map(&items, 1, |_| std::thread::current().id() == main);
        assert!(on_thread.iter().all(|&b| b), "parallel=1 must stay on the coordinator");
    }
}
