//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access and no vendored registry,
//! so the workspace provides the tiny slice of `parking_lot` it actually
//! uses as a local shim: `Mutex`/`RwLock` with guards that do not expose
//! lock poisoning. Backed by `std::sync`; on a poisoned lock the inner
//! value is recovered (matching `parking_lot`'s no-poisoning semantics).

use std::fmt;

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutex whose `lock` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock whose guards never report poisoning.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
    }

    #[test]
    fn poisoned_mutex_recovers() {
        let m = std::sync::Arc::new(Mutex::new(7));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
