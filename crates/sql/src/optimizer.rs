//! The cost-based optimizer.
//!
//! Implements §2.4.2: operators in a WHERE clause default to functional
//! evaluation, but predicates of the form `op(...) relop value` over a
//! column with a domain index whose indextype supports the operator are
//! candidates for index-scan evaluation, and "the choice between the
//! indexed implementation and the functional evaluation of the operator is
//! made by the … cost based optimizer using selectivity and cost
//! functions" — the cartridge-supplied `ODCIStatsSelectivity` and
//! `ODCIStatsIndexCost`.
//!
//! Ordinary access paths (full scan, B-tree range, IOT key range) are
//! costed from catalog statistics; joins are ordered greedily left-deep,
//! with hash joins for equi-predicates and a *domain join* (nested loop
//! driving a parameterized domain-index scan) for user-defined operators
//! whose arguments span tables — the spatial `Sdo_Relate(r.geometry,
//! p.geometry, …)` pattern.

use extidx_common::{Error, Key, Result, SqlType, Value};
use extidx_core::meta::{OperatorCall, PredicateBound, RelOp};
use extidx_core::server::CallbackMode;
use extidx_core::trace::Component;

use crate::ast::{BinOp, Expr, Hint, OrderItem, Select, SelectItem, UnOp};
use crate::catalog::{Catalog, TableDef, TableOrg};
use crate::database::Database;
use crate::exec_ctx::Exec;
use crate::expr::{aggregate_kind, compile_expr, AggKind, RExpr, Scope, ScopeCol};
use crate::plan::{FilterTerm, PlanKind, PlanNode, PlannedQuery, TermClass, ZoneBound};

/// Tunable cost constants (page-read units).
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// CPU cost of producing one tuple.
    pub cpu_tuple: f64,
    /// CPU cost of one simple predicate evaluation.
    pub cpu_pred: f64,
    /// CPU cost of one *functional* user-defined operator evaluation —
    /// deliberately high: these re-parse documents, compare geometries,
    /// or diff image signatures per row.
    pub func_eval: f64,
    /// Default equality selectivity without statistics.
    pub default_eq_sel: f64,
    /// Default range/LIKE selectivity without statistics.
    pub default_range_sel: f64,
    /// Default join selectivity.
    pub default_join_sel: f64,
    /// Cost of fetching one base row by rowid from an index (discounted
    /// below one page read for buffer-cache locality, like a clustering
    /// factor).
    pub rowid_fetch: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            cpu_tuple: 0.001,
            cpu_pred: 0.0005,
            func_eval: 0.1,
            default_eq_sel: 0.01,
            default_range_sel: 0.05,
            default_join_sel: 0.05,
            rowid_fetch: 0.2,
        }
    }
}

/// The scope a table contributes: its columns plus a hidden ROWID
/// pseudo-column, qualified by alias or table name. Heap tables expose
/// physical rowids; index-organized tables expose logical rowids (stable
/// key ordinals), so DML and index maintenance address both uniformly.
pub fn table_scope(tdef: &TableDef, alias: Option<&str>) -> Scope {
    let q = alias.unwrap_or(&tdef.name).to_ascii_uppercase();
    let mut cols: Vec<ScopeCol> = tdef
        .columns
        .iter()
        .map(|c| ScopeCol::visible(Some(q.clone()), c.name.clone(), Some(c.ty.clone())))
        .collect();
    cols.push(ScopeCol::hidden(Some(q), "ROWID", Some(SqlType::RowId)));
    Scope::new(cols)
}

/// Split an expression into AND-ed conjuncts.
fn conjuncts(expr: &Expr, out: &mut Vec<Expr>) {
    if let Expr::Binary(BinOp::And, a, b) = expr {
        conjuncts(a, out);
        conjuncts(b, out);
    } else {
        out.push(expr.clone());
    }
}

/// Which of `scopes` an expression's column references touch (bitmask).
/// Errors on unresolvable or ambiguous references.
fn expr_table_mask(expr: &Expr, scopes: &[Scope]) -> Result<u64> {
    let mut mask = 0u64;
    collect_mask(expr, scopes, &mut mask)?;
    Ok(mask)
}

fn collect_mask(expr: &Expr, scopes: &[Scope], mask: &mut u64) -> Result<()> {
    match expr {
        Expr::Column { qualifier, name } => {
            let mut hits = Vec::new();
            for (i, s) in scopes.iter().enumerate() {
                if s.resolve(qualifier.as_deref(), name).is_ok() {
                    hits.push(i);
                }
            }
            match (hits.len(), qualifier) {
                (1, _) => *mask |= 1 << hits[0],
                (0, Some(q)) => {
                    // `q.name` may be object-attribute access on column q.
                    let mut attr_hits = Vec::new();
                    for (i, s) in scopes.iter().enumerate() {
                        if s.resolve(None, q).is_ok() {
                            attr_hits.push(i);
                        }
                    }
                    match attr_hits.len() {
                        1 => *mask |= 1 << attr_hits[0],
                        0 => return Err(Error::not_found("column", format!("{q}.{name}"))),
                        _ => {
                            return Err(Error::Semantic(format!("column {q} is ambiguous")));
                        }
                    }
                }
                (0, None) => return Err(Error::not_found("column", name.clone())),
                _ => return Err(Error::Semantic(format!("column {name} is ambiguous"))),
            }
        }
        Expr::Literal(_) | Expr::Parameter(_) | Expr::Star => {}
        Expr::Attribute(e, _) | Expr::Unary(_, e) | Expr::IsNull(e, _) => {
            collect_mask(e, scopes, mask)?
        }
        Expr::Binary(_, a, b) => {
            collect_mask(a, scopes, mask)?;
            collect_mask(b, scopes, mask)?;
        }
        Expr::Between(a, b, c) => {
            collect_mask(a, scopes, mask)?;
            collect_mask(b, scopes, mask)?;
            collect_mask(c, scopes, mask)?;
        }
        Expr::InList(a, list) => {
            collect_mask(a, scopes, mask)?;
            for e in list {
                collect_mask(e, scopes, mask)?;
            }
        }
        Expr::Call { args, .. } => {
            for e in args {
                collect_mask(e, scopes, mask)?;
            }
        }
    }
    Ok(())
}

/// Render an expression as SQL-ish text (output column naming).
pub fn display_expr(e: &Expr) -> String {
    match e {
        Expr::Literal(v) => v.to_string(),
        Expr::Column { qualifier: Some(q), name } => format!("{q}.{name}"),
        Expr::Column { qualifier: None, name } => name.clone(),
        Expr::Attribute(inner, a) => format!("{}.{a}", display_expr(inner)),
        Expr::Unary(UnOp::Not, e) => format!("NOT {}", display_expr(e)),
        Expr::Unary(UnOp::Neg, e) => format!("-{}", display_expr(e)),
        Expr::Binary(op, a, b) => {
            let sym = match op {
                BinOp::And => "AND",
                BinOp::Or => "OR",
                BinOp::Eq => "=",
                BinOp::Ne => "!=",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::Like => "LIKE",
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
            };
            format!("{} {sym} {}", display_expr(a), display_expr(b))
        }
        Expr::Between(a, lo, hi) => {
            format!("{} BETWEEN {} AND {}", display_expr(a), display_expr(lo), display_expr(hi))
        }
        Expr::InList(a, l) => format!(
            "{} IN ({})",
            display_expr(a),
            l.iter().map(display_expr).collect::<Vec<_>>().join(", ")
        ),
        Expr::IsNull(a, false) => format!("{} IS NULL", display_expr(a)),
        Expr::IsNull(a, true) => format!("{} IS NOT NULL", display_expr(a)),
        Expr::Call { name, args } => format!(
            "{name}({})",
            args.iter().map(display_expr).collect::<Vec<_>>().join(", ")
        ),
        Expr::Star => "*".into(),
        Expr::Parameter(i) => format!("?{i}"),
    }
}


/// Evaluate an expression that references no columns to a constant, if
/// possible (lets geometry/object constructors act as operator arguments
/// for index matching).
fn try_const_eval(db: &Database, e: &Expr) -> Option<Value> {
    if let Expr::Literal(v) = e {
        return Some(v.clone());
    }
    let empty = Scope::default();
    let compiled = compile_expr(e, &empty, db.catalog()).ok()?;
    let ctx = crate::expr::EvalCtx {
        catalog: db.catalog(),
        storage: db.storage(),
        snap: db.storage().current_snapshot(),
    };
    crate::expr::eval(&compiled, &crate::expr::ExecRow::default(), &ctx).ok()
}

// ---------------------------------------------------------------------------
// plan-forcing hints
// ---------------------------------------------------------------------------

/// Plan-forcing hints resolved for one table reference. Unlike Oracle's
/// advisory hints these are *hard* overrides of the cost decision — the
/// differential test harness uses them to pin each of §2.4.2's
/// semantically equivalent paths in turn.
#[derive(Debug, Clone, Default)]
pub struct TableHints {
    /// `INDEX(t idx)`: access must go through the named index.
    pub force_index: Option<String>,
    /// `NO_INDEX[(t)]`: no domain-index paths; operators fall back to
    /// functional evaluation. B-tree/IOT access stays available.
    pub no_index: bool,
    /// `FULL[(t)]`: full scan only.
    pub full: bool,
}

/// Resolve a SELECT's hint list against its FROM clause and the catalog.
/// Unknown tables, unknown index names, indexes on the wrong table, and
/// contradictory combinations are all errors — a hint that cannot bind
/// must not silently degrade to "optimizer's choice".
fn resolve_table_hints(
    db: &Database,
    hints: &[Hint],
    tdefs: &[TableDef],
    aliases: &[String],
) -> Result<Vec<TableHints>> {
    let mut out = vec![TableHints::default(); tdefs.len()];
    let find = |name: &str| -> Result<usize> {
        aliases
            .iter()
            .position(|a| a.eq_ignore_ascii_case(name))
            .or_else(|| tdefs.iter().position(|t| t.name.eq_ignore_ascii_case(name)))
            .ok_or_else(|| {
                Error::Semantic(format!("hint references table {name} not in FROM clause"))
            })
    };
    for h in hints {
        match h {
            Hint::Index { table, index } => {
                let i = find(table)?;
                let owner = db
                    .catalog()
                    .domain_index(index)
                    .map(|d| d.table.clone())
                    .or_else(|| db.catalog().btree_index(index).map(|b| b.table.clone()))
                    .ok_or_else(|| Error::not_found("index", index.clone()))?;
                if !owner.eq_ignore_ascii_case(&tdefs[i].name) {
                    return Err(Error::Semantic(format!(
                        "hint INDEX({table} {index}): index {index} is on table {owner}, not {}",
                        tdefs[i].name
                    )));
                }
                out[i].force_index = Some(index.to_ascii_uppercase());
            }
            Hint::NoIndex { table: Some(t) } => out[find(t)?].no_index = true,
            Hint::NoIndex { table: None } => out.iter_mut().for_each(|h| h.no_index = true),
            Hint::Full { table: Some(t) } => out[find(t)?].full = true,
            Hint::Full { table: None } => out.iter_mut().for_each(|h| h.full = true),
        }
    }
    for (i, h) in out.iter().enumerate() {
        if h.full && h.force_index.is_some() {
            return Err(Error::Semantic(format!(
                "conflicting hints FULL and INDEX on table {}",
                tdefs[i].name
            )));
        }
        if let (true, Some(idx)) = (h.no_index, &h.force_index) {
            if db.catalog().domain_index(idx).is_some() {
                return Err(Error::Semantic(format!(
                    "conflicting hints NO_INDEX and INDEX({}) on table {}",
                    idx, tdefs[i].name
                )));
            }
        }
    }
    Ok(out)
}

/// Collect the names of user-defined operators called inside `e` — these
/// evaluate through their functional implementations when they end up in
/// a Filter node.
fn collect_op_call_names(e: &Expr, db: &Database, out: &mut Vec<String>) {
    if let Expr::Call { name, args } = e {
        if db.catalog().registry.has_operator(name) {
            let upper = name.to_ascii_uppercase();
            if !out.contains(&upper) {
                out.push(upper);
            }
        }
        for a in args {
            collect_op_call_names(a, db, out);
        }
        return;
    }
    match e {
        Expr::Attribute(x, _) | Expr::Unary(_, x) | Expr::IsNull(x, _) => {
            collect_op_call_names(x, db, out)
        }
        Expr::Binary(_, a, b) => {
            collect_op_call_names(a, db, out);
            collect_op_call_names(b, db, out);
        }
        Expr::Between(a, b, c) => {
            collect_op_call_names(a, db, out);
            collect_op_call_names(b, db, out);
            collect_op_call_names(c, db, out);
        }
        Expr::InList(a, l) => {
            collect_op_call_names(a, db, out);
            for x in l {
                collect_op_call_names(x, db, out);
            }
        }
        _ => {}
    }
}

/// Does `e` reference any column (or `*`, which stands for whole rows)?
fn expr_has_column(e: &Expr) -> bool {
    match e {
        Expr::Column { .. } | Expr::Star => true,
        Expr::Literal(_) | Expr::Parameter(_) => false,
        Expr::Attribute(x, _) | Expr::Unary(_, x) | Expr::IsNull(x, _) => expr_has_column(x),
        Expr::Binary(_, a, b) => expr_has_column(a) || expr_has_column(b),
        Expr::Between(a, b, c) => {
            expr_has_column(a) || expr_has_column(b) || expr_has_column(c)
        }
        Expr::InList(a, l) => expr_has_column(a) || l.iter().any(expr_has_column),
        Expr::Call { args, .. } => args.iter().any(expr_has_column),
    }
}

/// Is `e` the `col relop literal` / `col BETWEEN lit AND lit` shape that
/// zone maps and B-trees cover? Purely structural — scope-independent,
/// so join residuals classify identically to single-table ones.
fn is_indexed_col_shape(e: &Expr) -> bool {
    let is_col = |x: &Expr| matches!(x, Expr::Column { .. });
    let is_lit = |x: &Expr| matches!(x, Expr::Literal(_));
    match e {
        Expr::Binary(op, a, b) => {
            matches!(op, BinOp::Eq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge)
                && ((is_col(a) && is_lit(b)) || (is_lit(a) && is_col(b)))
        }
        Expr::Between(a, lo, hi) => is_col(a) && is_lit(lo) && is_lit(hi),
        _ => false,
    }
}

/// Rank one WHERE conjunct by evaluation cost (see [`TermClass`]).
fn classify_conjunct(db: &Database, e: &Expr) -> TermClass {
    if count_op_calls(e, db) > 0 {
        TermClass::DomainOp
    } else if !expr_has_column(e) {
        TermClass::Const
    } else if is_indexed_col_shape(e) {
        TermClass::IndexedCol
    } else {
        TermClass::PlainCol
    }
}

// ---------------------------------------------------------------------------
// single-table access-path selection
// ---------------------------------------------------------------------------

/// `(rows, pages)` the optimizer believes a table has.
fn table_shape(db: &Database, tdef: &TableDef) -> (f64, f64) {
    match tdef.org {
        TableOrg::Heap => match db.storage().heap(tdef.seg) {
            Ok(h) => (h.row_count() as f64, h.page_count().max(1) as f64),
            Err(_) => (1.0, 1.0),
        },
        TableOrg::Index { .. } => match db.storage().iot(tdef.seg) {
            Ok(t) => (t.row_count() as f64, t.page_count() as f64),
            Err(_) => (1.0, 1.0),
        },
    }
}

/// `col relop literal` (either orientation) over this table's scope.
fn match_col_relop(e: &Expr, scope: &Scope, tdef: &TableDef) -> Option<(String, RelOp, Value)> {
    let to_relop = |op: BinOp| match op {
        BinOp::Eq => Some(RelOp::Eq),
        BinOp::Lt => Some(RelOp::Lt),
        BinOp::Le => Some(RelOp::Le),
        BinOp::Gt => Some(RelOp::Gt),
        BinOp::Ge => Some(RelOp::Ge),
        _ => None,
    };
    let flip = |r: RelOp| match r {
        RelOp::Lt => RelOp::Gt,
        RelOp::Le => RelOp::Ge,
        RelOp::Gt => RelOp::Lt,
        RelOp::Ge => RelOp::Le,
        other => other,
    };
    let col_of = |e: &Expr| -> Option<String> {
        if let Expr::Column { qualifier, name } = e {
            if scope.resolve(qualifier.as_deref(), name).is_ok() && tdef.column_index(name).is_ok() {
                return Some(name.to_ascii_uppercase());
            }
        }
        None
    };
    if let Expr::Binary(op, a, b) = e {
        let relop = to_relop(*op)?;
        if let (Some(col), Expr::Literal(v)) = (col_of(a), b.as_ref()) {
            return Some((col, relop, v.clone()));
        }
        if let (Expr::Literal(v), Some(col)) = (a.as_ref(), col_of(b)) {
            return Some((col, flip(relop), v.clone()));
        }
    }
    None
}

/// `col BETWEEN lo AND hi` over this table.
fn match_between(e: &Expr, scope: &Scope, tdef: &TableDef) -> Option<(String, Value, Value)> {
    if let Expr::Between(a, lo, hi) = e {
        if let (Expr::Column { qualifier, name }, Expr::Literal(l), Expr::Literal(h)) =
            (a.as_ref(), lo.as_ref(), hi.as_ref())
        {
            if scope.resolve(qualifier.as_deref(), name).is_ok() && tdef.column_index(name).is_ok() {
                return Some((name.to_ascii_uppercase(), l.clone(), h.clone()));
            }
        }
    }
    None
}

/// A user-defined-operator predicate in indexable form:
/// `Op(args…)` or `Op(args…) relop literal` (§2.4.2).
struct OpPredicate {
    name: String,
    args: Vec<Expr>,
    bound: PredicateBound,
}

fn match_op_predicate(e: &Expr, db: &Database) -> Option<OpPredicate> {
    let as_call = |e: &Expr| -> Option<(String, Vec<Expr>)> {
        if let Expr::Call { name, args } = e {
            if db.catalog().registry.has_operator(name) {
                return Some((name.to_ascii_uppercase(), args.clone()));
            }
        }
        None
    };
    let to_relop = |op: BinOp| match op {
        BinOp::Eq => Some(RelOp::Eq),
        BinOp::Lt => Some(RelOp::Lt),
        BinOp::Le => Some(RelOp::Le),
        BinOp::Gt => Some(RelOp::Gt),
        BinOp::Ge => Some(RelOp::Ge),
        BinOp::Like => Some(RelOp::Like),
        _ => None,
    };
    // Bare call: Contains(...) ≡ Contains(...) = TRUE.
    if let Some((name, args)) = as_call(e) {
        return Some(OpPredicate { name, args, bound: PredicateBound::is_true() });
    }
    if let Expr::Binary(op, a, b) = e {
        let relop = to_relop(*op)?;
        if let (Some((name, args)), Expr::Literal(v)) = (as_call(a), b.as_ref()) {
            return Some(OpPredicate {
                name,
                args,
                bound: PredicateBound { relop, value: v.clone() },
            });
        }
        if let (Expr::Literal(v), Some((name, args))) = (a.as_ref(), as_call(b)) {
            let flipped = match relop {
                RelOp::Lt => RelOp::Gt,
                RelOp::Le => RelOp::Ge,
                RelOp::Gt => RelOp::Lt,
                RelOp::Ge => RelOp::Le,
                other => other,
            };
            return Some(OpPredicate {
                name,
                args,
                bound: PredicateBound { relop: flipped, value: v.clone() },
            });
        }
    }
    None
}

/// Selectivity of an ordinary predicate from column statistics.
fn builtin_selectivity(db: &Database, tdef: &TableDef, e: &Expr, scope: &Scope) -> f64 {
    let cm = db.cost;
    let stats = tdef.stats.as_ref();
    if let Some((col, relop, v)) = match_col_relop(e, scope, tdef) {
        let idx = tdef.column_index(&col).unwrap_or(0);
        let cs = stats.and_then(|s| s.columns.get(idx));
        return match relop {
            RelOp::Eq => cs
                .filter(|c| c.ndv > 0)
                .map(|c| 1.0 / c.ndv as f64)
                .unwrap_or(cm.default_eq_sel),
            RelOp::Like => cm.default_range_sel,
            _ => {
                // Range fraction over [min, max] when numeric stats exist.
                if let (Some(c), Ok(x)) = (cs, v.as_number()) {
                    if let (Some(Ok(lo)), Some(Ok(hi))) =
                        (c.min.as_ref().map(|m| m.as_number()), c.max.as_ref().map(|m| m.as_number()))
                    {
                        if hi > lo {
                            let f = ((x - lo) / (hi - lo)).clamp(0.0, 1.0);
                            return match relop {
                                RelOp::Lt | RelOp::Le => f.max(1e-4),
                                RelOp::Gt | RelOp::Ge => (1.0 - f).max(1e-4),
                                _ => cm.default_range_sel,
                            };
                        }
                    }
                }
                cm.default_range_sel
            }
        };
    }
    if let Some((col, lo, hi)) = match_between(e, scope, tdef) {
        // Range fraction over [min, max] when numeric stats exist.
        let idx = tdef.column_index(&col).unwrap_or(0);
        if let Some(c) = stats.and_then(|s| s.columns.get(idx)) {
            if let (Ok(lo), Ok(hi), Some(Ok(mn)), Some(Ok(mx))) = (
                lo.as_number(),
                hi.as_number(),
                c.min.as_ref().map(|m| m.as_number()),
                c.max.as_ref().map(|m| m.as_number()),
            ) {
                if mx > mn {
                    return (((hi.min(mx) - lo.max(mn)) / (mx - mn)).clamp(0.0, 1.0)).max(1e-4);
                }
            }
        }
        return cm.default_range_sel;
    }
    // Unknown shapes: default.
    cm.default_range_sel
}

/// Count functional user-operator calls in an expression (they dominate
/// per-row filter cost).
fn count_op_calls(e: &Expr, db: &Database) -> usize {
    let mut n = 0;
    fn walk(e: &Expr, db: &Database, n: &mut usize) {
        if let Expr::Call { name, args } = e {
            if db.catalog().registry.has_operator(name) {
                *n += 1;
            }
            for a in args {
                walk(a, db, n);
            }
            return;
        }
        match e {
            Expr::Attribute(x, _) | Expr::Unary(_, x) | Expr::IsNull(x, _) => walk(x, db, n),
            Expr::Binary(_, a, b) => {
                walk(a, db, n);
                walk(b, db, n);
            }
            Expr::Between(a, b, c) => {
                walk(a, db, n);
                walk(b, db, n);
                walk(c, db, n);
            }
            Expr::InList(a, l) => {
                walk(a, db, n);
                for x in l {
                    walk(x, db, n);
                }
            }
            _ => {}
        }
    }
    walk(e, db, &mut n);
    n
}

/// Scores referenced by the query (labels of SCORE(n) calls), used to set
/// `wants_ancillary` on matching domain scans.
fn collect_score_labels(s: &Select) -> Vec<i64> {
    let mut labels = Vec::new();
    fn walk(e: &Expr, labels: &mut Vec<i64>) {
        if let Expr::Call { name, args } = e {
            if name.eq_ignore_ascii_case("SCORE") {
                match args.first() {
                    Some(Expr::Literal(Value::Integer(l))) => labels.push(*l),
                    None => labels.push(1),
                    _ => {}
                }
            }
            for a in args {
                walk(a, labels);
            }
            return;
        }
        match e {
            Expr::Attribute(x, _) | Expr::Unary(_, x) | Expr::IsNull(x, _) => walk(x, labels),
            Expr::Binary(_, a, b) => {
                walk(a, labels);
                walk(b, labels);
            }
            Expr::Between(a, b, c) => {
                walk(a, labels);
                walk(b, labels);
                walk(c, labels);
            }
            Expr::InList(a, l) => {
                walk(a, labels);
                for x in l {
                    walk(x, labels);
                }
            }
            _ => {}
        }
    }
    for item in &s.items {
        if let SelectItem::Expr { expr, .. } = item {
            walk(expr, &mut labels);
        }
    }
    for o in &s.order_by {
        walk(&o.expr, &mut labels);
    }
    labels
}

/// Build the best access plan for one table given its single-table
/// conjuncts. Consumed conjuncts are absorbed by the access path; the
/// rest become a Filter node on top.
fn best_table_access(
    db: &Exec<'_>,
    tdef: &TableDef,
    alias: &str,
    table_conjuncts: &[Expr],
    score_labels: &[i64],
    hints: &TableHints,
) -> Result<PlanNode> {
    let cm = db.cost;
    let scope = table_scope(tdef, Some(alias));
    let (rows, pages) = table_shape(db, tdef);

    // Candidate: full scan (always available).
    let full_sel: f64 = table_conjuncts
        .iter()
        .map(|e| builtin_selectivity(db, tdef, e, &scope))
        .product();
    let op_calls: usize = table_conjuncts.iter().map(|e| count_op_calls(e, db)).sum();
    let full_cost = pages
        + rows * cm.cpu_tuple
        + rows * table_conjuncts.len() as f64 * cm.cpu_pred
        + rows * op_calls as f64 * cm.func_eval;
    // Per-row cost of evaluating each conjunct (operator calls dominate).
    // An index candidate that consumes conjunct `ci` still pays
    // `per_conjunct_cost` for every OTHER conjunct on each matched row —
    // this is what makes "B-tree + functional Contains" pay for its
    // Contains.
    let per_conjunct_cost: Vec<f64> = table_conjuncts
        .iter()
        .map(|e| cm.cpu_pred + count_op_calls(e, db) as f64 * cm.func_eval)
        .collect();
    let total_conjunct_cost: f64 = per_conjunct_cost.iter().sum();
    let residual_row_cost = |consumed: usize| -> f64 {
        total_conjunct_cost - per_conjunct_cost.get(consumed).copied().unwrap_or(0.0)
    };

    struct Candidate {
        cost: f64,
        rows: f64,
        consumed: Option<usize>,
        kind: CandKind,
    }
    enum CandKind {
        Full,
        RowIdEq { rid: extidx_common::RowId },
        BTree { index: String, lo: Option<Key>, hi: Option<Key> },
        IotRange { lo: Option<Key>, hi: Option<Key> },
        Domain { index: String, indextype: String, call: OperatorCall, label: Option<i64> },
    }

    let mut best = Candidate {
        cost: full_cost,
        rows: (rows * full_sel).max(1.0),
        consumed: None,
        kind: CandKind::Full,
    };

    // `FULL` is a hard override: the default full-scan candidate stands
    // and no alternative is even considered (or costed — cartridge stats
    // routines are not consulted for a path that cannot be taken).
    let consider_alternatives = !hints.full;
    // Quarantined domain indexes that would otherwise have been
    // candidates for conjunct `ci` — if that conjunct ends up in the
    // residual filter, EXPLAIN annotates the degradation.
    let mut degraded: Vec<(usize, String)> = Vec::new();
    for (ci, e) in table_conjuncts.iter().enumerate().filter(|_| consider_alternatives) {
        // Direct ROWID fetch: `t.ROWID = <rowid literal>` (the legacy
        // temp-table join pattern resolves through this).
        if let Expr::Binary(BinOp::Eq, a, b) = e {
            let rid_of = |x: &Expr, y: &Expr| -> Option<extidx_common::RowId> {
                if let (Expr::Column { qualifier, name }, Expr::Literal(Value::RowId(r))) = (x, y) {
                    if name.eq_ignore_ascii_case("ROWID")
                        && scope.resolve(qualifier.as_deref(), name).is_ok()
                    {
                        return Some(*r);
                    }
                }
                None
            };
            if let Some(rid) = rid_of(a, b).or_else(|| rid_of(b, a)) {
                if 1.2 < best.cost {
                    best = Candidate {
                        cost: 1.2,
                        rows: 1.0,
                        consumed: Some(ci),
                        kind: CandKind::RowIdEq { rid },
                    };
                }
            }
        }

        // B-tree range / equality.
        let range = match_col_relop(e, &scope, tdef)
            .map(|(col, relop, v)| {
                let (lo, hi) = match relop {
                    RelOp::Eq => (Some(v.clone()), Some(v)),
                    RelOp::Lt | RelOp::Le => (None, Some(v)),
                    RelOp::Gt | RelOp::Ge => (Some(v), None),
                    RelOp::Like => (None, None),
                };
                (col, lo, hi)
            })
            .or_else(|| match_between(e, &scope, tdef).map(|(c, l, h)| (c, Some(l), Some(h))));
        if let Some((col, lo, hi)) = range {
            if lo.is_none() && hi.is_none() {
                // LIKE — not range-indexable here.
            } else {
                let sel = builtin_selectivity(db, tdef, e, &scope);
                for b in db.catalog().btree_indexes_on(&tdef.name) {
                    if b.column != col {
                        continue;
                    }
                    // An INDEX hint excludes every other index, and makes
                    // the named one win unconditionally.
                    let forced = match &hints.force_index {
                        Some(f) if *f != b.name => continue,
                        Some(_) => true,
                        None => false,
                    };
                    let (height, leaf_pages) = match db.storage().iot(b.seg) {
                        Ok(t) => (t.height() as f64, t.page_count() as f64),
                        Err(_) => (1.0, 1.0),
                    };
                    let matched = (rows * sel).max(1.0);
                    let cost = if forced {
                        f64::MIN
                    } else {
                        height
                            + sel * leaf_pages
                            + matched * cm.rowid_fetch
                            + matched * cm.cpu_tuple
                            + matched * residual_row_cost(ci)
                    };
                    if cost < best.cost {
                        best = Candidate {
                            cost,
                            rows: matched,
                            consumed: Some(ci),
                            kind: CandKind::BTree {
                                index: b.name.clone(),
                                lo: lo.clone().map(Key::single),
                                hi: hi.clone().map(Key::single),
                            },
                        };
                    }
                }
                // IOT primary-key access on the leading key column.
                if let TableOrg::Index { .. } = tdef.org {
                    if tdef.columns.first().map(|c| c.name.as_str()) == Some(col.as_str()) {
                        let (height, leaf_pages) = match db.storage().iot(tdef.seg) {
                            Ok(t) => (t.height() as f64, t.page_count() as f64),
                            Err(_) => (1.0, 1.0),
                        };
                        let matched = (rows * sel).max(1.0);
                        let cost = height
                            + sel * leaf_pages
                            + matched * cm.cpu_tuple
                            + matched * residual_row_cost(ci);
                        if cost < best.cost {
                            best = Candidate {
                                cost,
                                rows: matched,
                                consumed: Some(ci),
                                kind: CandKind::IotRange {
                                    lo: lo.clone().map(Key::single),
                                    hi: hi.clone().map(Key::single),
                                },
                            };
                        }
                    }
                }
            }
        }

        // Domain-index scan (§2.4.2). `NO_INDEX` forbids this path
        // entirely — the operator then evaluates functionally in the
        // residual filter.
        if let Some(op_pred) = match_op_predicate(e, db).filter(|_| !hints.no_index) {
            for d in db.catalog().domain_indexes_on(&tdef.name).into_iter().cloned().collect::<Vec<_>>() {
                let forced = match &hints.force_index {
                    Some(f) if *f != d.name => continue,
                    Some(_) => true,
                    None => false,
                };
                let Ok(it) = db.catalog().registry.indextype(&d.indextype) else { continue };
                if !it.supports(&op_pred.name, op_pred.args.len()) {
                    continue;
                }
                // The indexed column must appear as a bare argument; all
                // other args must fold to constants (literals or
                // column-free constructor expressions).
                let mut col_arg = None;
                let mut literal_args: Vec<Value> = Vec::new();
                let mut ok = true;
                for a in &op_pred.args {
                    if let Expr::Column { qualifier, name } = a {
                        if name.eq_ignore_ascii_case(&d.column)
                            && scope.resolve(qualifier.as_deref(), name).is_ok()
                            && col_arg.is_none()
                        {
                            col_arg = Some(name.clone());
                            continue;
                        }
                    }
                    match try_const_eval(db, a) {
                        // A NULL operand makes the operator NULL for every
                        // row (three-valued logic), so the predicate can
                        // never accept — the index path would have to
                        // guess what the cartridge does with NULL. Leave
                        // it to the functional fallback, which
                        // short-circuits NULL args uniformly.
                        Some(Value::Null) => {
                            ok = false;
                            break;
                        }
                        Some(v) => literal_args.push(v),
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if !ok || col_arg.is_none() {
                    continue;
                }
                // Health gate: a quarantined (or build-failed) index is
                // invisible to costing — its stats routines are never
                // consulted — and the conjunct degrades to the functional
                // fallback. Forcing an unusable index is an error, not a
                // silent fall-through.
                if !db.catalog().health.is_usable(&d.name) {
                    if forced {
                        return Err(Error::Semantic(format!(
                            "cannot force index {} on {}: index is {}",
                            d.name,
                            tdef.name,
                            db.catalog().health.state(&d.name)
                        )));
                    }
                    degraded.push((ci, d.name.clone()));
                    continue;
                }
                // Ancillary label convention: a trailing integer literal
                // argument matching a SCORE(n) reference in the query.
                let label = literal_args.last().and_then(|v| match v {
                    Value::Integer(l) if score_labels.contains(l) => Some(*l),
                    _ => None,
                });
                let mut call = OperatorCall {
                    operator: op_pred.name.clone(),
                    args: literal_args,
                    bound: op_pred.bound.clone(),
                    wants_ancillary: label.is_some(),
                };
                call.operator = op_pred.name.clone();
                // Ask the cartridge's ODCIStats for selectivity and cost.
                let (_, stats, info) = db.domain_index_runtime(&d)?;
                let h = db.trace_event(
                    Component::Optimizer,
                    "ODCIStatsSelectivity",
                    &d.indextype,
                    format!("{}({})", call.operator, d.name),
                );
                let sel = db.sandboxed_odci(
                    "ODCIStatsSelectivity",
                    &d.name,
                    &d.indextype,
                    CallbackMode::Scan,
                    None,
                    |ctx| stats.selectivity(ctx, &info, &call),
                );
                db.trace_finish(h);
                let sel = sel?.clamp(0.0, 1.0);
                let h = db.trace_event(
                    Component::Optimizer,
                    "ODCIStatsIndexCost",
                    &d.indextype,
                    format!("sel={sel:.4}"),
                );
                let icost = db.sandboxed_odci(
                    "ODCIStatsIndexCost",
                    &d.name,
                    &d.indextype,
                    CallbackMode::Scan,
                    None,
                    |ctx| stats.index_cost(ctx, &info, &call, sel),
                );
                db.trace_finish(h);
                let icost = icost?;
                let matched = (rows * sel).max(1.0);
                // Index scan + rowid fetches of matches. A query that
                // references the scan's ancillary data (SCORE) can only be
                // answered through the index — force the path then. An
                // INDEX hint forces it the same way.
                let cost = if forced || label.is_some() {
                    f64::MIN
                } else {
                    icost.total()
                        + matched * cm.rowid_fetch
                        + matched * cm.cpu_tuple
                        + matched * residual_row_cost(ci)
                };
                if cost < best.cost {
                    best = Candidate {
                        cost,
                        rows: matched,
                        consumed: Some(ci),
                        kind: CandKind::Domain {
                            index: d.name.clone(),
                            indextype: d.indextype.clone(),
                            call: call.clone(),
                            label,
                        },
                    };
                }
            }
        }
    }

    // A forced index must actually carry the access: a hint naming a
    // valid index that no predicate on this table can use is an error,
    // never a silent fall-through to another path (the forcing contract
    // the differential harness relies on).
    if let Some(f) = &hints.force_index {
        let used = match &best.kind {
            CandKind::BTree { index, .. } | CandKind::Domain { index, .. } => index == f,
            _ => false,
        };
        if !used {
            return Err(Error::Semantic(format!(
                "cannot force index {f} on {}: no predicate can use it",
                tdef.name
            )));
        }
    }

    // Materialize the chosen access path. Hint-forced paths carry the
    // hint text so EXPLAIN shows the cost decision was overridden.
    let scan_forced = if hints.full {
        Some(format!("FULL({alias})"))
    } else if hints.no_index {
        Some(format!("NO_INDEX({alias})"))
    } else {
        None
    };
    let forced_note = |index: &str| {
        hints
            .force_index
            .as_deref()
            .filter(|f| *f == index)
            .map(|f| format!("INDEX({alias} {f})"))
    };
    // Zone-map pruning bounds for a heap full scan: every range-shaped
    // conjunct restated over physical column indexes. The conjunct stays
    // in the residual filter — the bound only lets the scan skip pages
    // whose recorded min/max provably exclude every qualifying row.
    let zone_prune: Vec<ZoneBound> = if db.zone_pruning()
        && matches!(best.kind, CandKind::Full)
        && matches!(tdef.org, TableOrg::Heap)
    {
        table_conjuncts
            .iter()
            .filter_map(|e| {
                match_col_relop(e, &scope, tdef)
                    .and_then(|(col, relop, v)| match relop {
                        RelOp::Eq => Some((col, Some(v.clone()), Some(v))),
                        RelOp::Lt | RelOp::Le => Some((col, None, Some(v))),
                        RelOp::Gt | RelOp::Ge => Some((col, Some(v), None)),
                        RelOp::Like => None,
                    })
                    .or_else(|| {
                        match_between(e, &scope, tdef).map(|(c, l, h)| (c, Some(l), Some(h)))
                    })
            })
            .filter_map(|(col_name, lo, hi)| {
                tdef.column_index(&col_name).ok().map(|col| ZoneBound { col, col_name, lo, hi })
            })
            .collect()
    } else {
        Vec::new()
    };
    let access = match best.kind {
        CandKind::Full => PlanNode {
            kind: match tdef.org {
                TableOrg::Heap => PlanKind::FullScan {
                    table: tdef.name.clone(),
                    forced: scan_forced,
                    prune: zone_prune,
                },
                TableOrg::Index { .. } => {
                    PlanKind::IotFullScan { table: tdef.name.clone(), forced: scan_forced }
                }
            },
            scope: scope.clone(),
            est_rows: rows.max(1.0),
            est_cost: pages + rows * cm.cpu_tuple,
        },
        CandKind::RowIdEq { rid } => PlanNode {
            kind: PlanKind::RowIdEq { table: tdef.name.clone(), rid },
            scope: scope.clone(),
            est_rows: 1.0,
            est_cost: best.cost,
        },
        CandKind::BTree { index, lo, hi } => {
            let forced = forced_note(&index);
            PlanNode {
                kind: PlanKind::BTreeAccess { table: tdef.name.clone(), index, lo, hi, forced },
                scope: scope.clone(),
                est_rows: best.rows,
                est_cost: best.cost,
            }
        }
        CandKind::IotRange { lo, hi } => PlanNode {
            kind: PlanKind::IotRange { table: tdef.name.clone(), lo, hi },
            scope: scope.clone(),
            est_rows: best.rows,
            est_cost: best.cost,
        },
        CandKind::Domain { index, indextype, call, label } => {
            let forced = forced_note(&index);
            PlanNode {
                kind: PlanKind::DomainScan {
                    table: tdef.name.clone(),
                    index,
                    indextype,
                    call,
                    label,
                    forced,
                },
                scope: scope.clone(),
                est_rows: best.rows,
                est_cost: best.cost,
            }
        }
    };

    // Residual conjuncts → Filter. A conjunct whose quarantined index was
    // skipped degrades to the residual; surface the index names unless
    // another access path consumed the conjunct after all.
    let residual: Vec<&Expr> = table_conjuncts
        .iter()
        .enumerate()
        .filter(|(i, _)| best.consumed != Some(*i))
        .map(|(_, e)| e)
        .collect();
    let degraded_names: Vec<String> = degraded
        .into_iter()
        .filter(|(ci, _)| best.consumed != Some(*ci))
        .map(|(_, name)| name)
        .collect();
    wrap_filter(db, access, &residual, &scope, &degraded_names)
}

/// Synthetic catalog entry for a `V$` virtual table: a heap-shaped
/// definition with no backing segment, so generic scope/join machinery
/// treats it like any other table.
fn vtable_def(name: &str) -> Result<TableDef> {
    let upper = name.to_ascii_uppercase();
    let columns = Catalog::vtable_columns(&upper)
        .ok_or_else(|| Error::not_found("table", upper.clone()))?;
    Ok(TableDef {
        name: upper,
        columns,
        org: TableOrg::Heap,
        seg: extidx_storage::SegmentId(u32::MAX),
        stats: None,
    })
}

/// Access path for a `V$` virtual table: rows materialized from engine
/// state at plan time into a ConstRows node, table-local conjuncts on
/// top as an ordinary Filter. ConstRows never qualifies as a domain-join
/// right side, so joins against V$ tables take hash/NLJ paths.
fn vtable_access(
    db: &Exec<'_>,
    tdef: &TableDef,
    alias: &str,
    table_conjuncts: &[Expr],
) -> Result<PlanNode> {
    let rows = db.vtable_rows(&tdef.name)?;
    let scope = table_scope(tdef, Some(alias));
    let est_rows = rows.len().max(1) as f64;
    let access = PlanNode {
        kind: PlanKind::ConstRows { rows },
        scope: scope.clone(),
        est_rows,
        est_cost: 0.0,
    };
    let residual: Vec<&Expr> = table_conjuncts.iter().collect();
    wrap_filter(db, access, &residual, &scope, &[])
}

/// AND-combine conjuncts into a Filter node over `input`. `degraded`
/// names quarantined indexes whose conjuncts fell back to this filter.
fn wrap_filter(
    db: &Database,
    input: PlanNode,
    residual: &[&Expr],
    scope: &Scope,
    degraded: &[String],
) -> Result<PlanNode> {
    if residual.is_empty() {
        return Ok(input);
    }
    // Classify each conjunct by evaluation cost and stable-sort
    // cheapest-first (source order preserved within a class), so the
    // executor short-circuits into the expensive cartridge operators with
    // the fewest surviving rows. Reordering is sound under Kleene logic:
    // three-valued AND is commutative, and a row is rejected at the first
    // non-TRUE (FALSE *or* NULL) term either way.
    let mut classed: Vec<(TermClass, &Expr)> =
        residual.iter().map(|e| (classify_conjunct(db, e), *e)).collect();
    if db.cost_ordered_terms() {
        classed.sort_by_key(|(c, _)| *c);
    }
    // User-defined operators left in the residual evaluate through their
    // functional implementation — name them so EXPLAIN exposes the
    // fallback path.
    let mut functional_ops = Vec::new();
    let mut terms = Vec::with_capacity(classed.len());
    for (class, e) in &classed {
        collect_op_call_names(e, db, &mut functional_ops);
        terms.push(FilterTerm { pred: compile_expr(e, scope, db.catalog())?, class: *class });
    }
    let est_rows = (input.est_rows * 0.5).max(1.0);
    let est_cost = input.est_cost + input.est_rows * db.cost.cpu_pred;
    Ok(PlanNode {
        scope: scope.clone(),
        est_rows,
        est_cost,
        kind: PlanKind::Filter {
            input: Box::new(input),
            terms,
            functional_ops,
            degraded: {
                let mut d = degraded.to_vec();
                d.sort();
                d.dedup();
                d
            },
        },
    })
}

/// Plan the table access for UPDATE/DELETE target collection.
pub(crate) fn plan_dml_scan(
    db: &Exec<'_>,
    tdef: &TableDef,
    where_clause: Option<&Expr>,
) -> Result<PlanNode> {
    let mut cs = Vec::new();
    if let Some(w) = where_clause {
        conjuncts(w, &mut cs);
    }
    best_table_access(db, tdef, &tdef.name.clone(), &cs, &[], &TableHints::default())
}

// ---------------------------------------------------------------------------
// full SELECT planning
// ---------------------------------------------------------------------------

/// Plan a SELECT statement.
pub(crate) fn plan_select(db: &Exec<'_>, s: &Select) -> Result<PlannedQuery> {
    if s.from.is_empty() {
        return Err(Error::Semantic("SELECT requires a FROM clause".into()));
    }
    // Fast path: `SELECT COUNT(*) FROM t` with no predicates is answered
    // from table metadata without scanning — the single hottest callback
    // query cartridge stats routines issue. A hinted query must take a
    // real scan (the differential oracle's NoREC checks compare hinted
    // COUNT(*) results against actual row sets).
    if s.hints.is_empty() {
        if let Some(planned) = plan_bare_count(db, s)? {
            return Ok(planned);
        }
    }
    if s.from.len() > 63 {
        return Err(Error::Unsupported("too many tables in FROM".into()));
    }
    let score_labels = collect_score_labels(s);

    // Per-table definitions and scopes.
    let mut tdefs = Vec::new();
    let mut aliases = Vec::new();
    let mut scopes = Vec::new();
    for tref in &s.from {
        let tdef = if Catalog::is_vtable(&tref.table) {
            vtable_def(&tref.table)?
        } else {
            db.catalog.table(&tref.table)?.clone()
        };
        let alias = tref.alias.clone().unwrap_or_else(|| tdef.name.clone());
        scopes.push(table_scope(&tdef, Some(&alias)));
        tdefs.push(tdef);
        aliases.push(alias);
    }

    // Classify conjuncts.
    let mut all_conjuncts = Vec::new();
    if let Some(w) = &s.where_clause {
        conjuncts(w, &mut all_conjuncts);
    }
    let mut table_conjuncts: Vec<Vec<Expr>> = vec![Vec::new(); s.from.len()];
    let mut join_conjuncts: Vec<(u64, Expr)> = Vec::new();
    for e in all_conjuncts {
        let mask = expr_table_mask(&e, &scopes)?;
        if mask.count_ones() <= 1 {
            let idx = if mask == 0 { 0 } else { mask.trailing_zeros() as usize };
            table_conjuncts[idx].push(e);
        } else {
            join_conjuncts.push((mask, e));
        }
    }

    // Resolve plan-forcing hints against the FROM clause and catalog
    // before any costing; a malformed hint fails the statement.
    let table_hints = resolve_table_hints(db, &s.hints, &tdefs, &aliases)?;

    // Best single-table access per table.
    let mut accesses: Vec<Option<PlanNode>> = Vec::new();
    for i in 0..tdefs.len() {
        let node = if Catalog::is_vtable(&tdefs[i].name) {
            vtable_access(db, &tdefs[i], &aliases[i], &table_conjuncts[i])?
        } else {
            best_table_access(
                db,
                &tdefs[i],
                &aliases[i],
                &table_conjuncts[i],
                &score_labels,
                &table_hints[i],
            )?
        };
        accesses.push(Some(node));
    }

    // Greedy left-deep join ordering: start from the cheapest-cardinality
    // table, repeatedly add the table that joins (preferring connected
    // tables).
    let n = tdefs.len();
    let mut remaining: Vec<usize> = (0..n).collect();
    remaining.sort_by(|&a, &b| {
        let ra = accesses[a].as_ref().map(|p| p.est_rows).unwrap_or(f64::MAX);
        let rb = accesses[b].as_ref().map(|p| p.est_rows).unwrap_or(f64::MAX);
        ra.partial_cmp(&rb).unwrap_or(std::cmp::Ordering::Equal)
    });
    let first = remaining.remove(0);
    let mut joined_mask = 1u64 << first;
    let mut current = accesses[first].take().expect("access plan present");
    let mut pending_joins = join_conjuncts;

    while !remaining.is_empty() {
        // Prefer a table connected to the current set by some conjunct.
        let pick_pos = remaining
            .iter()
            .position(|&t| {
                pending_joins.iter().any(|(m, _)| {
                    m & (1 << t) != 0 && (m & !(1 << t)) & !joined_mask == 0
                })
            })
            .unwrap_or(0);
        let t = remaining.remove(pick_pos);
        let right = accesses[t].take().expect("access plan present");
        // Conjuncts now fully covered by joined ∪ {t}.
        let mut applicable = Vec::new();
        let mut rest = Vec::new();
        for (m, e) in pending_joins {
            if m & !(joined_mask | (1 << t)) == 0 {
                applicable.push(e);
            } else {
                rest.push((m, e));
            }
        }
        pending_joins = rest;
        current = build_join(db, current, right, &tdefs[t], &aliases[t], applicable, &score_labels)?;
        joined_mask |= 1 << t;
    }
    if let Some((_, e)) = pending_joins.into_iter().next() {
        return Err(Error::Semantic(format!(
            "could not place join predicate {}",
            display_expr(&e)
        )));
    }

    finish_select(db, s, current)
}

/// Join `right` (table `tdef` aliased `alias`) onto `left` under the given
/// join conjuncts. Chooses, in order of preference:
/// 1. a *domain join* — a user-defined-operator conjunct whose indexed
///    column belongs to `right` and whose other arguments come from
///    `left` (the spatial `Sdo_Relate` pattern);
/// 2. a hash join on an equality conjunct;
/// 3. a nested-loop join with the conjuncts as a residual filter.
fn build_join(
    db: &Exec<'_>,
    left: PlanNode,
    right: PlanNode,
    tdef: &TableDef,
    alias: &str,
    conjuncts: Vec<Expr>,
    score_labels: &[i64],
) -> Result<PlanNode> {
    let cm = db.cost;
    let joined_scope = left.scope.join(&right.scope);
    let right_scope = table_scope(tdef, Some(alias));

    // 1. Domain join.
    let mut degraded: Vec<(usize, String)> = Vec::new();
    if matches!(right.kind, PlanKind::FullScan { .. } | PlanKind::IotFullScan { .. }) {
        for (ci, e) in conjuncts.iter().enumerate() {
            let Some(op_pred) = match_op_predicate(e, db) else { continue };
            for d in db.catalog().domain_indexes_on(&tdef.name).into_iter().cloned().collect::<Vec<_>>() {
                let Ok(it) = db.catalog().registry.indextype(&d.indextype) else { continue };
                if !it.supports(&op_pred.name, op_pred.args.len()) {
                    continue;
                }
                // Health gate: quarantined indexes cannot carry a domain
                // join — the operator evaluates functionally in the join
                // residual instead.
                if !db.catalog().health.is_usable(&d.name) {
                    degraded.push((ci, d.name.clone()));
                    continue;
                }
                // Indexed column must be a bare arg resolving in `right`;
                // all other args must compile against `left`.
                let mut col_seen = false;
                let mut outer_args: Vec<RExpr> = Vec::new();
                let mut ok = true;
                for a in &op_pred.args {
                    if let Expr::Column { qualifier, name } = a {
                        if name.eq_ignore_ascii_case(&d.column)
                            && right_scope.resolve(qualifier.as_deref(), name).is_ok()
                            && !col_seen
                        {
                            col_seen = true;
                            continue;
                        }
                    }
                    match compile_expr(a, &left.scope, db.catalog()) {
                        Ok(r) => outer_args.push(r),
                        Err(_) => {
                            ok = false;
                            break;
                        }
                    }
                }
                if !ok || !col_seen {
                    continue;
                }
                let label = op_pred.args.last().and_then(|v| match v {
                    Expr::Literal(Value::Integer(l)) if score_labels.contains(l) => Some(*l),
                    _ => None,
                });
                // Residual conjuncts after this one.
                let residual: Vec<&Expr> =
                    conjuncts.iter().enumerate().filter(|(i, _)| *i != ci).map(|(_, e)| e).collect();
                let est_rows = (left.est_rows * right.est_rows * cm.default_join_sel).max(1.0);
                let est_cost = left.est_cost + left.est_rows * (10.0 + right.est_rows * 0.01);
                let node = PlanNode {
                    scope: joined_scope.clone(),
                    est_rows,
                    est_cost,
                    kind: PlanKind::DomainJoin {
                        left: Box::new(left),
                        right_table: tdef.name.clone(),
                        index: d.name.clone(),
                        indextype: d.indextype.clone(),
                        operator: op_pred.name.clone(),
                        arg_exprs: outer_args,
                        bound: op_pred.bound.clone(),
                        label,
                    },
                };
                let degraded_names: Vec<String> = degraded
                    .into_iter()
                    .filter(|(i, _)| *i != ci)
                    .map(|(_, name)| name)
                    .collect();
                return wrap_filter(db, node, &residual, &joined_scope, &degraded_names);
            }
        }
    }
    let degraded_names: Vec<String> = degraded.into_iter().map(|(_, name)| name).collect();

    // 2. Hash join on an equality conjunct between the two sides.
    for (ci, e) in conjuncts.iter().enumerate() {
        if let Expr::Binary(BinOp::Eq, a, b) = e {
            let try_keys = |x: &Expr, y: &Expr| -> Option<(RExpr, RExpr)> {
                let lk = compile_expr(x, &left.scope, db.catalog()).ok()?;
                let rk = compile_expr(y, &right.scope, db.catalog()).ok()?;
                Some((lk, rk))
            };
            let keys = try_keys(a, b).or_else(|| try_keys(b, a));
            if let Some((left_key, right_key)) = keys {
                let residual: Vec<&Expr> =
                    conjuncts.iter().enumerate().filter(|(i, _)| *i != ci).map(|(_, e)| e).collect();
                let est_rows = (left.est_rows * right.est_rows * cm.default_join_sel).max(1.0);
                let est_cost = left.est_cost
                    + right.est_cost
                    + (left.est_rows + right.est_rows) * cm.cpu_tuple;
                let node = PlanNode {
                    scope: joined_scope.clone(),
                    est_rows,
                    est_cost,
                    kind: PlanKind::HashJoin {
                        left: Box::new(left),
                        right: Box::new(right),
                        left_key,
                        right_key,
                        extra_pred: None,
                    },
                };
                return wrap_filter(db, node, &residual, &joined_scope, &degraded_names);
            }
        }
    }

    // 3. Nested loop with residual predicate.
    let residual: Vec<&Expr> = conjuncts.iter().collect();
    let est_rows = if residual.is_empty() {
        (left.est_rows * right.est_rows).max(1.0)
    } else {
        (left.est_rows * right.est_rows * cm.default_join_sel).max(1.0)
    };
    let est_cost = left.est_cost + left.est_rows.max(1.0) * right.est_cost;
    let node = PlanNode {
        scope: joined_scope.clone(),
        est_rows,
        est_cost,
        kind: PlanKind::NestedLoopJoin { left: Box::new(left), right: Box::new(right), pred: None },
    };
    wrap_filter(db, node, &residual, &joined_scope, &degraded_names)
}

/// Aggregation, projection, DISTINCT, ORDER BY, LIMIT on top of the join
/// tree; also computes output column names.
fn finish_select(db: &Exec<'_>, s: &Select, source: PlanNode) -> Result<PlannedQuery> {
    let cm = db.cost;
    // Detect aggregation.
    let has_aggs = s
        .items
        .iter()
        .any(|i| matches!(i, SelectItem::Expr { expr, .. } if contains_aggregate(expr)))
        || s.having.as_ref().is_some_and(contains_aggregate)
        || !s.group_by.is_empty();

    let (mut node, mut item_exprs, names, order_items): AggregatePlan = if has_aggs {
        plan_aggregate(db, s, source)?
    } else {
        // Expand wildcards into explicit column refs.
        let mut exprs = Vec::new();
        let mut names = Vec::new();
        for item in &s.items {
            match item {
                SelectItem::Wildcard => {
                    for c in source.scope.columns.iter().filter(|c| !c.hidden) {
                        exprs.push(Expr::Column {
                            qualifier: c.qualifier.clone(),
                            name: c.name.clone(),
                        });
                        names.push(c.name.clone());
                    }
                }
                SelectItem::QualifiedWildcard(q) => {
                    let qu = q.to_ascii_uppercase();
                    let mut any = false;
                    for c in source
                        .scope
                        .columns
                        .iter()
                        .filter(|c| !c.hidden && c.qualifier.as_deref() == Some(qu.as_str()))
                    {
                        exprs.push(Expr::Column {
                            qualifier: c.qualifier.clone(),
                            name: c.name.clone(),
                        });
                        names.push(c.name.clone());
                        any = true;
                    }
                    if !any {
                        return Err(Error::not_found("table alias", q.clone()));
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    names.push(
                        alias.clone().unwrap_or_else(|| display_expr(expr).to_ascii_uppercase()),
                    );
                    exprs.push(expr.clone());
                }
            }
        }
        (source, exprs, names, s.order_by.clone())
    };

    // HAVING without aggregation context is handled in plan_aggregate;
    // here having on a non-aggregated query is an error.
    if !has_aggs && s.having.is_some() {
        return Err(Error::Semantic("HAVING requires GROUP BY or aggregates".into()));
    }

    // ORDER BY: try output scope (aliases), else input scope (sort below
    // projection).
    let out_scope = Scope::new(
        names
            .iter()
            .map(|n| ScopeCol::visible(None, n.clone(), None))
            .collect(),
    );

    let mut order_on_output: Option<Vec<(RExpr, bool)>> = None;
    let mut order_on_input: Option<Vec<(RExpr, bool)>> = None;
    if !order_items.is_empty() {
        let compile_keys = |scope: &Scope, db: &Database| -> Result<Vec<(RExpr, bool)>> {
            order_items
                .iter()
                .map(|OrderItem { expr, desc }| {
                    Ok((compile_expr(expr, scope, db.catalog())?, *desc))
                })
                .collect()
        };
        match compile_keys(&out_scope, db) {
            Ok(keys) => order_on_output = Some(keys),
            Err(_) => order_on_input = Some(compile_keys(&node.scope, db)?),
        }
    }

    if let Some(keys) = order_on_input {
        let est_rows = node.est_rows;
        let est_cost = node.est_cost + est_rows * cm.cpu_tuple * 2.0;
        node = PlanNode {
            scope: node.scope.clone(),
            est_rows,
            est_cost,
            kind: PlanKind::Sort { input: Box::new(node), keys },
        };
    }

    // Projection.
    let compiled_items: Vec<RExpr> = item_exprs
        .drain(..)
        .map(|e| compile_expr(&e, &node.scope, db.catalog()))
        .collect::<Result<_>>()?;
    let est_rows = node.est_rows;
    let est_cost = node.est_cost + est_rows * cm.cpu_tuple;
    node = PlanNode {
        scope: out_scope.clone(),
        est_rows,
        est_cost,
        kind: PlanKind::Project { input: Box::new(node), exprs: compiled_items },
    };

    if s.distinct {
        let est_rows = (node.est_rows * 0.9).max(1.0);
        let est_cost = node.est_cost + node.est_rows * cm.cpu_tuple;
        node = PlanNode {
            scope: out_scope.clone(),
            est_rows,
            est_cost,
            kind: PlanKind::Distinct { input: Box::new(node) },
        };
    }

    if let Some(keys) = order_on_output {
        let est_rows = node.est_rows;
        let est_cost = node.est_cost + est_rows * cm.cpu_tuple * 2.0;
        node = PlanNode {
            scope: out_scope.clone(),
            est_rows,
            est_cost,
            kind: PlanKind::Sort { input: Box::new(node), keys },
        };
    }

    if let Some(n) = s.limit {
        let est_rows = node.est_rows.min(n as f64);
        let est_cost = node.est_cost;
        node = PlanNode {
            scope: out_scope,
            est_rows,
            est_cost,
            kind: PlanKind::Limit { input: Box::new(node), n },
        };
    }

    Ok(PlannedQuery { root: node, column_names: names })
}

/// Recognize `SELECT COUNT(*) FROM <one table>` with no filtering and
/// answer it from the storage layer's row count.
fn plan_bare_count(db: &Database, s: &Select) -> Result<Option<PlannedQuery>> {
    if s.from.len() != 1
        || s.where_clause.is_some()
        || !s.group_by.is_empty()
        || s.having.is_some()
        || !s.order_by.is_empty()
        || s.distinct
        || s.limit == Some(0)
        || s.items.len() != 1
    {
        return Ok(None);
    }
    let SelectItem::Expr { expr, alias } = &s.items[0] else { return Ok(None) };
    let Expr::Call { name, args } = expr else { return Ok(None) };
    if !name.eq_ignore_ascii_case("COUNT") || !matches!(args.as_slice(), [] | [Expr::Star]) {
        return Ok(None);
    }
    // V$ tables have no storage-layer shape — count their materialized rows.
    if Catalog::is_vtable(&s.from[0].table) {
        return Ok(None);
    }
    let tdef = db.catalog.table(&s.from[0].table)?.clone();
    // Physical row counts are only snapshot-exact while no version chains
    // exist; with concurrent writers in flight the count must come from a
    // visibility-filtered scan instead.
    if db.storage.segment_has_chains(tdef.seg) {
        return Ok(None);
    }
    let (rows, _) = table_shape(db, &tdef);
    let name = alias.clone().unwrap_or_else(|| "COUNT(*)".to_string());
    Ok(Some(PlannedQuery {
        root: PlanNode {
            kind: PlanKind::ConstRows { rows: vec![vec![Value::Integer(rows as i64)]] },
            scope: Scope::new(vec![ScopeCol::visible(None, name.clone(), None)]),
            est_rows: 1.0,
            est_cost: 0.0,
        },
        column_names: vec![name],
    }))
}

fn contains_aggregate(e: &Expr) -> bool {
    match e {
        Expr::Call { name, args } => {
            aggregate_kind(name).is_some() || args.iter().any(contains_aggregate)
        }
        Expr::Attribute(x, _) | Expr::Unary(_, x) | Expr::IsNull(x, _) => contains_aggregate(x),
        Expr::Binary(_, a, b) => contains_aggregate(a) || contains_aggregate(b),
        Expr::Between(a, b, c) => {
            contains_aggregate(a) || contains_aggregate(b) || contains_aggregate(c)
        }
        Expr::InList(a, l) => contains_aggregate(a) || l.iter().any(contains_aggregate),
        _ => false,
    }
}

/// Replace aggregate calls in `e` with references to `#AGG{i}` columns,
/// collecting the aggregate specs.
fn rewrite_aggregates(e: &Expr, aggs: &mut Vec<(AggKind, Option<Expr>)>) -> Expr {
    if let Expr::Call { name, args } = e {
        if let Some(kind) = aggregate_kind(name) {
            let arg = match args.as_slice() {
                [] | [Expr::Star] => None,
                [a] => Some(a.clone()),
                _ => Some(args[0].clone()),
            };
            // Reuse identical aggregates.
            let pos = aggs.iter().position(|(k, a)| *k == kind && *a == arg).unwrap_or_else(|| {
                aggs.push((kind, arg.clone()));
                aggs.len() - 1
            });
            return Expr::Column { qualifier: None, name: format!("#AGG{pos}") };
        }
        return Expr::Call {
            name: name.clone(),
            args: args.iter().map(|a| rewrite_aggregates(a, aggs)).collect(),
        };
    }
    match e {
        Expr::Attribute(x, a) => {
            Expr::Attribute(Box::new(rewrite_aggregates(x, aggs)), a.clone())
        }
        Expr::Unary(op, x) => Expr::Unary(*op, Box::new(rewrite_aggregates(x, aggs))),
        Expr::IsNull(x, n) => Expr::IsNull(Box::new(rewrite_aggregates(x, aggs)), *n),
        Expr::Binary(op, a, b) => Expr::Binary(
            *op,
            Box::new(rewrite_aggregates(a, aggs)),
            Box::new(rewrite_aggregates(b, aggs)),
        ),
        Expr::Between(a, b, c) => Expr::Between(
            Box::new(rewrite_aggregates(a, aggs)),
            Box::new(rewrite_aggregates(b, aggs)),
            Box::new(rewrite_aggregates(c, aggs)),
        ),
        Expr::InList(a, l) => Expr::InList(
            Box::new(rewrite_aggregates(a, aggs)),
            l.iter().map(|x| rewrite_aggregates(x, aggs)).collect(),
        ),
        other => other.clone(),
    }
}

/// Replace any (sub)expression that syntactically equals a GROUP BY
/// expression with a reference to that group's output column — this is
/// what lets `SELECT f(x) … GROUP BY f(x)` compile, since `x` itself is
/// not visible above the aggregation.
fn replace_group_exprs(e: &Expr, group_by: &[Expr]) -> Expr {
    for (i, g) in group_by.iter().enumerate() {
        if e == g {
            return match g {
                Expr::Column { .. } => g.clone(),
                _ => Expr::Column { qualifier: None, name: format!("#GRP{i}") },
            };
        }
    }
    match e {
        Expr::Attribute(x, a) => {
            Expr::Attribute(Box::new(replace_group_exprs(x, group_by)), a.clone())
        }
        Expr::Unary(op, x) => Expr::Unary(*op, Box::new(replace_group_exprs(x, group_by))),
        Expr::IsNull(x, n) => Expr::IsNull(Box::new(replace_group_exprs(x, group_by)), *n),
        Expr::Binary(op, a, b) => Expr::Binary(
            *op,
            Box::new(replace_group_exprs(a, group_by)),
            Box::new(replace_group_exprs(b, group_by)),
        ),
        Expr::Between(a, b, c) => Expr::Between(
            Box::new(replace_group_exprs(a, group_by)),
            Box::new(replace_group_exprs(b, group_by)),
            Box::new(replace_group_exprs(c, group_by)),
        ),
        Expr::InList(a, l) => Expr::InList(
            Box::new(replace_group_exprs(a, group_by)),
            l.iter().map(|x| replace_group_exprs(x, group_by)).collect(),
        ),
        Expr::Call { name, args } => Expr::Call {
            name: name.clone(),
            args: args.iter().map(|x| replace_group_exprs(x, group_by)).collect(),
        },
        other => other.clone(),
    }
}

/// Build the aggregation subtree; returns (node, rewritten select exprs,
/// output names, rewritten ORDER BY items).
/// Output of [`plan_aggregate`]: the aggregation subtree, the rewritten
/// select expressions, their output names, and rewritten ORDER BY items.
type AggregatePlan = (PlanNode, Vec<Expr>, Vec<String>, Vec<OrderItem>);

fn plan_aggregate(db: &Exec<'_>, s: &Select, source: PlanNode) -> Result<AggregatePlan> {
    let cm = db.cost;
    let mut aggs: Vec<(AggKind, Option<Expr>)> = Vec::new();
    let mut rewritten_items = Vec::new();
    let mut names = Vec::new();
    for item in &s.items {
        match item {
            SelectItem::Expr { expr, alias } => {
                names.push(alias.clone().unwrap_or_else(|| display_expr(expr).to_ascii_uppercase()));
                let rewritten = rewrite_aggregates(expr, &mut aggs);
                rewritten_items.push(replace_group_exprs(&rewritten, &s.group_by));
            }
            _ => {
                return Err(Error::Semantic(
                    "wildcards are not allowed with GROUP BY / aggregates".into(),
                ))
            }
        }
    }
    let rewritten_having = s
        .having
        .as_ref()
        .map(|h| replace_group_exprs(&rewrite_aggregates(h, &mut aggs), &s.group_by));
    // ORDER BY items live above the aggregation too: aggregate calls in
    // them join the aggregate list, group expressions become group-column
    // references.
    let rewritten_order: Vec<OrderItem> = s
        .order_by
        .iter()
        .map(|oi| OrderItem {
            expr: replace_group_exprs(&rewrite_aggregates(&oi.expr, &mut aggs), &s.group_by),
            desc: oi.desc,
        })
        .collect();

    // Compile group exprs and aggregate args against the source scope.
    let group: Vec<RExpr> = s
        .group_by
        .iter()
        .map(|e| compile_expr(e, &source.scope, db.catalog()))
        .collect::<Result<_>>()?;
    let compiled_aggs: Vec<(AggKind, Option<RExpr>)> = aggs
        .iter()
        .map(|(k, a)| {
            Ok((
                *k,
                a.as_ref()
                    .map(|e| compile_expr(e, &source.scope, db.catalog()))
                    .transpose()?,
            ))
        })
        .collect::<Result<_>>()?;

    // Post-aggregate scope: group columns (named by their expression if a
    // simple column, else #GRP{i}) then #AGG{i} columns.
    let mut agg_scope_cols = Vec::new();
    for (i, e) in s.group_by.iter().enumerate() {
        match e {
            Expr::Column { qualifier, name } => {
                agg_scope_cols.push(ScopeCol::visible(qualifier.clone(), name.clone(), None));
            }
            _ => agg_scope_cols.push(ScopeCol::visible(None, format!("#GRP{i}"), None)),
        }
    }
    for i in 0..aggs.len() {
        agg_scope_cols.push(ScopeCol::visible(None, format!("#AGG{i}"), None));
    }
    let agg_scope = Scope::new(agg_scope_cols);

    let est_rows = (source.est_rows / 10.0).max(1.0);
    let est_cost = source.est_cost + source.est_rows * cm.cpu_tuple;
    let mut node = PlanNode {
        scope: agg_scope.clone(),
        est_rows,
        est_cost,
        kind: PlanKind::Aggregate { input: Box::new(source), group, aggs: compiled_aggs },
    };

    if let Some(h) = rewritten_having {
        // HAVING goes through the same cost-ordered term machinery as
        // WHERE residuals (split into conjuncts, cheapest first).
        let mut having_conjuncts = Vec::new();
        conjuncts(&h, &mut having_conjuncts);
        let mut classed: Vec<(TermClass, &Expr)> = having_conjuncts
            .iter()
            .map(|e| (classify_conjunct(db, e), e))
            .collect();
        if db.cost_ordered_terms() {
            classed.sort_by_key(|(c, _)| *c);
        }
        let terms = classed
            .iter()
            .map(|(class, e)| {
                Ok(FilterTerm { pred: compile_expr(e, &agg_scope, db.catalog())?, class: *class })
            })
            .collect::<Result<Vec<_>>>()?;
        let est_rows = (node.est_rows * 0.5).max(1.0);
        let est_cost = node.est_cost + node.est_rows * cm.cpu_pred;
        node = PlanNode {
            scope: agg_scope,
            est_rows,
            est_cost,
            kind: PlanKind::Filter {
                input: Box::new(node),
                terms,
                functional_ops: Vec::new(),
                degraded: Vec::new(),
            },
        };
    }

    Ok((node, rewritten_items, names, rewritten_order))
}
