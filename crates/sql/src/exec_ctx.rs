//! Read-lane execution context for MVCC query processing.
//!
//! Historically every executor node and planner routine took
//! `&mut Database`, which made the whole query path exclusive: one
//! statement at a time, even for pure reads. Snapshot isolation removes
//! the semantic need for that exclusivity — a reader pinned to a snapshot
//! never observes concurrent writers — so this module provides the shared
//! counterpart of the write path's plumbing:
//!
//! - [`Exec`]: a `&Database` plus the statement's [`Snapshot`] and a
//!   private cartridge scratch. It derefs to `Database` so the existing
//!   `db.catalog` / `db.storage()` call sites compile unchanged, and it
//!   carries the snapshot every visibility-aware storage read needs.
//! - [`SharedCtx`]: the read-only [`ServerContext`] handed to cartridge
//!   scan and costing routines (`ODCIIndexStart/Fetch/Close`,
//!   `ODCIStatsSelectivity/IndexCost`). It is the §2.5 `Scan` restriction
//!   made structural: mutation entry points fail with
//!   [`Error::CallbackViolation`] instead of merely being policed.
//! - [`run_select_shared`]: the single SELECT implementation used by the
//!   legacy `Database::execute` lane, nested cartridge callbacks, and the
//!   concurrent `Session` read lane — all three produce byte-identical
//!   results for a given snapshot.
//!
//! Scan workspace state (what `ODCIIndexStart` stores and `Fetch`/`Close`
//! retrieve) lives in a per-statement [`SessionScratch`] rather than the
//! shared `Database`, so concurrent readers cannot collide on handles and
//! a fetch context stays pinned to the statement (and snapshot) that
//! opened it.

use std::any::Any;
use std::cell::RefCell;
use std::collections::HashMap;
use std::ops::Deref;
use std::sync::Arc;

use extidx_common::{Error, LobRef, Result, Row, Value};
use extidx_core::events::EventHandler;
use extidx_core::sandbox;
use extidx_core::scan::WorkspaceHandle;
use extidx_core::server::{
    scan_base_batches_via_query, BatchSink, CallbackMode, ServerContext,
};
use extidx_storage::Snapshot;

use crate::ast::{bind_statement, Select, Statement};
use crate::database::Database;
use crate::executor;
use crate::optimizer;
use crate::parser::parse;

/// Per-statement cartridge scratch: the scan workspace `ODCIIndexStart`
/// fills and `ODCIIndexFetch`/`Close` consume. Owned by the statement
/// (or cursor), never by the shared `Database`.
#[derive(Default)]
pub(crate) struct SessionScratch {
    ws: HashMap<u64, Box<dyn Any + Send>>,
    next: u64,
}

/// The read-lane execution context threaded through the planner and every
/// executor node in place of `&mut Database`.
pub struct Exec<'a> {
    pub(crate) db: &'a Database,
    scratch: &'a RefCell<SessionScratch>,
    /// The snapshot this statement reads under. `Snapshot::latest()` in
    /// the legacy autocommit lane (sees all committed versions), a fixed
    /// snapshot inside an explicit transaction.
    pub(crate) snap: Snapshot,
}

impl Deref for Exec<'_> {
    type Target = Database;
    fn deref(&self) -> &Database {
        self.db
    }
}

impl<'a> Exec<'a> {
    pub(crate) fn new(
        db: &'a Database,
        scratch: &'a RefCell<SessionScratch>,
        snap: Snapshot,
    ) -> Self {
        Exec { db, scratch, snap }
    }

    /// Read-lane twin of `Database::sandboxed_odci`: same sandbox, fault
    /// check, and health-breaker accounting, but the cartridge sees a
    /// read-only [`SharedCtx`] bound to this statement's snapshot and
    /// scratch. `base_table` is accepted for call-site parity and unused —
    /// read contexts never run maintenance routines.
    pub(crate) fn sandboxed_odci<T>(
        &self,
        routine: &'static str,
        index: &str,
        indextype: &str,
        mode: CallbackMode,
        _base_table: Option<String>,
        f: impl FnOnce(&mut SharedCtx) -> Result<T>,
    ) -> Result<T> {
        let budget = self.db.tick_budget();
        let result = sandbox::sandboxed_call(indextype, routine, budget, || {
            self.db.fault_check(routine, Some(indextype))?;
            let mut guard = self.scratch.borrow_mut();
            let mut ctx = SharedCtx { db: self.db, snap: self.snap, ws: &mut guard, mode };
            f(&mut ctx)
        });
        self.db.note_health_outcome(routine, index, indextype, result.as_ref().err());
        result
    }

    /// Build a [`SharedCtx`] and hand it to `f` without the fault-check /
    /// health plumbing — the executor's best-effort error-path close uses
    /// this so recovery is never sabotaged by injected faults.
    pub(crate) fn with_shared_ctx<T>(
        &self,
        mode: CallbackMode,
        f: impl FnOnce(&mut SharedCtx) -> T,
    ) -> T {
        let mut guard = self.scratch.borrow_mut();
        let mut ctx = SharedCtx { db: self.db, snap: self.snap, ws: &mut guard, mode };
        f(&mut ctx)
    }
}

/// Read-only [`ServerContext`] for cartridge crossings on the query path.
///
/// Queries re-enter through [`run_select_shared`] under the *same*
/// snapshot, so a cartridge that probes its own metadata table mid-scan
/// sees the statement-consistent image. All mutation entry points return
/// [`Error::CallbackViolation`].
pub(crate) struct SharedCtx<'a> {
    pub(crate) db: &'a Database,
    pub(crate) snap: Snapshot,
    ws: &'a mut SessionScratch,
    mode: CallbackMode,
}

fn read_only_violation(what: &str) -> Error {
    Error::CallbackViolation(format!("{what} is not allowed in a read-only scan context"))
}

impl ServerContext for SharedCtx<'_> {
    fn mode(&self) -> CallbackMode {
        self.mode
    }

    fn execute(&mut self, sql: &str, binds: &[Value]) -> Result<u64> {
        sandbox::tick();
        let mut stmt = parse(sql)?;
        bind_statement(&mut stmt, binds)?;
        match stmt {
            Statement::Select(s) => {
                run_select_shared(self.db, self.snap, &s)?;
                Ok(0)
            }
            _ => Err(read_only_violation("execute() of a non-SELECT statement")),
        }
    }

    fn query(&mut self, sql: &str, binds: &[Value]) -> Result<Vec<Row>> {
        sandbox::tick();
        let mut stmt = parse(sql)?;
        bind_statement(&mut stmt, binds)?;
        let Statement::Select(s) = stmt else {
            return Err(Error::CallbackViolation("query() requires a SELECT".into()));
        };
        let (_, rows) = run_select_shared(self.db, self.snap, &s)?;
        Ok(rows)
    }

    fn scan_base_batches(
        &mut self,
        table: &str,
        cols: &[&str],
        batch_size: usize,
        sink: &mut BatchSink,
    ) -> Result<()> {
        sandbox::tick();
        // The snapshot-consistent SELECT path; the streaming heap walk is
        // a write-lane (index build) optimization and is not needed here.
        scan_base_batches_via_query(self, table, cols, batch_size, sink)
    }

    fn fault_point(&mut self, point: &str) -> Result<()> {
        sandbox::tick();
        self.db.fault_check(point, None)
    }

    fn lob_create(&mut self) -> Result<LobRef> {
        Err(read_only_violation("lob_create"))
    }

    fn lob_length(&mut self, lob: LobRef) -> Result<u64> {
        sandbox::tick();
        self.db.storage.lob_length_at(lob, &self.snap)
    }

    fn lob_read(&mut self, lob: LobRef, offset: u64, len: usize) -> Result<Vec<u8>> {
        sandbox::tick();
        self.db.storage.lob_read_at(lob, offset, len, &self.snap)
    }

    fn lob_read_all(&mut self, lob: LobRef) -> Result<Vec<u8>> {
        sandbox::tick();
        self.db.storage.lob_read_all_at(lob, &self.snap)
    }

    fn lob_write(&mut self, _lob: LobRef, _offset: u64, _bytes: &[u8]) -> Result<()> {
        Err(read_only_violation("lob_write"))
    }

    fn lob_append(&mut self, _lob: LobRef, _bytes: &[u8]) -> Result<u64> {
        Err(read_only_violation("lob_append"))
    }

    fn lob_overwrite(&mut self, _lob: LobRef, _bytes: &[u8]) -> Result<()> {
        Err(read_only_violation("lob_overwrite"))
    }

    fn lob_free(&mut self, _lob: LobRef) -> Result<()> {
        Err(read_only_violation("lob_free"))
    }

    fn workspace_put(&mut self, state: Box<dyn Any + Send>) -> WorkspaceHandle {
        sandbox::tick();
        let h = WorkspaceHandle(self.ws.next);
        self.ws.next += 1;
        self.ws.ws.insert(h.0, state);
        h
    }

    fn workspace_get(&mut self, handle: WorkspaceHandle) -> Option<&mut (dyn Any + Send)> {
        sandbox::tick();
        self.ws.ws.get_mut(&handle.0).map(|b| b.as_mut())
    }

    fn workspace_take(&mut self, handle: WorkspaceHandle) -> Option<Box<dyn Any + Send>> {
        sandbox::tick();
        self.ws.ws.remove(&handle.0)
    }

    fn register_event_handler(&mut self, _name: &str, _handler: Arc<dyn EventHandler>) {
        // Handler registration mutates shared server state; scan routines
        // have no business doing it. The trait cannot report an error
        // here, so the registration is dropped — definition/maintenance
        // routines (write lane) remain the supported registration points.
        sandbox::tick();
    }

    fn file_create(&mut self, _name: &str) -> Result<()> {
        Err(read_only_violation("file_create"))
    }

    fn file_exists(&mut self, name: &str) -> bool {
        sandbox::tick();
        self.db.storage.files_ref().exists(name)
    }

    fn file_remove(&mut self, _name: &str) -> Result<()> {
        Err(read_only_violation("file_remove"))
    }

    fn file_read(&mut self, name: &str) -> Result<Vec<u8>> {
        sandbox::tick();
        self.db.storage.files_ref().read(name)
    }

    fn file_write(&mut self, _name: &str, _bytes: &[u8]) -> Result<()> {
        Err(read_only_violation("file_write"))
    }

    fn file_append(&mut self, _name: &str, _bytes: &[u8]) -> Result<()> {
        Err(read_only_violation("file_append"))
    }

    fn file_flush(&mut self, _name: &str) -> Result<()> {
        Err(read_only_violation("file_flush"))
    }

    fn file_length(&mut self, name: &str) -> Result<u64> {
        sandbox::tick();
        self.db.storage.files_ref().length(name)
    }
}

/// Plan and run one SELECT against `db` under `snap`, returning the
/// column names and result rows. This is the only SELECT implementation:
/// the autocommit lane, nested cartridge callbacks, and concurrent
/// sessions all route here.
pub(crate) fn run_select_shared(
    db: &Database,
    snap: Snapshot,
    s: &Select,
) -> Result<(Vec<String>, Vec<Row>)> {
    let scratch = RefCell::new(SessionScratch::default());
    let ecx = Exec::new(db, &scratch, snap);
    let planned = optimizer::plan_select(&ecx, s)?;
    let columns = planned.column_names;
    let mut exec = executor::build(planned.root);
    let mut rows = Vec::new();
    // The statement deadline is charged once per executor iteration; on
    // *any* error the tree is abandoned so an open cartridge scan context
    // is closed best-effort (Start ≡ Close on the error path too).
    let drained: Result<()> = (|| {
        if db.batch_exec {
            loop {
                extidx_core::governor::poll()?;
                let b = exec.next_batch(&ecx, executor::BATCH_TARGET)?;
                if b.rows.is_empty() {
                    break;
                }
                rows.extend(b.rows.into_iter().map(|r| r.values));
            }
        } else {
            loop {
                extidx_core::governor::poll()?;
                match exec.next(&ecx)? {
                    Some(r) => rows.push(r.values),
                    None => break,
                }
            }
        }
        Ok(())
    })();
    if let Err(e) = drained {
        exec.abandon(&ecx);
        return Err(e);
    }
    Ok((columns, rows))
}
