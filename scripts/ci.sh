#!/usr/bin/env bash
# Tier-1 gate + lints. Run from anywhere; works fully offline (all
# third-party deps are vendored as path shims — see shims/README.md).
#
# Note: cargo only accepts CARGO_NET_OFFLINE=true/false, not 0/1.
set -euo pipefail
cd "$(dirname "$0")/.."
export CARGO_NET_OFFLINE=true

echo "== build (release) =="
cargo build --release

echo "== tests (workspace, including ignored long sweeps) =="
cargo test --workspace -q -- --include-ignored

# Differential query oracle (tests/differential.rs). DIFF_SEED picks the
# seed of the default 200-statement run (decimal or 0x-hex); on a
# divergence the test's panic output prints the failing seed and the
# delta-debugged minimal SQL repro script.
echo "== differential oracle (DIFF_SEED=${DIFF_SEED:-0xD1FF}) =="
DIFF_SEED="${DIFF_SEED:-0xD1FF}" \
    cargo test -q --test differential -- --include-ignored --nocapture

echo "== fault matrix (statement atomicity at every cartridge crossing) =="
cargo test -q --test fault_matrix -- --include-ignored

# Observability layer: EXPLAIN ANALYZE instrumentation + V$ virtual
# tables + scan-lifecycle invariants, then the per-cartridge EXPLAIN
# ANALYZE smoke tests (all five indextypes annotate their domain scan).
echo "== observability (EXPLAIN ANALYZE + V\$ smoke) =="
cargo test -q --test observability --test scan_lifecycle
cargo test -q -p extidx-text -p extidx-spatial -p extidx-vir -p extidx-chem explain_analyze

# Cartridge sandbox: the quarantine state machine end to end, the panic
# fault matrix (FaultKind::Panic at every ODCI crossing and every
# cartridge-internal fault point), and the 3-seed qgen chaos sweep that
# flips indexes QUARANTINED<->VALID mid-workload demanding bag-equality.
echo "== cartridge sandbox (quarantine + panic containment) =="
cargo test -q --test quarantine
cargo test -q --test fault_matrix panic_at_every_crossing -- --include-ignored
cargo test -q --test differential quarantine_chaos_sweep -- --include-ignored

# Vectorized batch executor: batch-vs-row bag equality (direct + qgen
# sweep on both executor paths), zone-map widen-never-narrow under
# UPDATE/DELETE, LIMIT early termination, and the pruning-aware
# root-gets == cache-delta invariant.
echo "== vectorized executor (batch/row equality + zone maps) =="
cargo test -q --test vectorized -- --include-ignored

# Durability: WAL + checkpoints. The crash-point matrix (every wal.*
# fault point x {heap, IOT, LOB, each cartridge}, with an at-call sweep
# over every call site inside the crashing statement), checkpoint
# crash/truncate behaviour, the external-file quarantine contract, the
# lifecycle/rollback bugfix pins, and the 3-seed qgen crash-recover
# sweep (recovered state bag-equal to a committed-prefix twin).
echo "== crash recovery (WAL + checkpoints + qgen sweep) =="
cargo test -q --test recovery

# Bench smoke: the E15 repro must clear its speedup floors (>=5x cold
# pruned scan, >=2x cost-ordered conjuncts) at a reduced N, and leave
# machine-readable BENCH_*.json records under target/bench-json.
echo "== bench smoke (e15-vectorized + BENCH_*.json) =="
mkdir -p target/bench-json
E15_N=20000 E15_RUNS=3 \
    BENCH_OUT=target/bench-json \
    GIT_REV="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
    BENCH_DATE="$(date -u +%F)" \
    cargo run --release -q -p extidx-bench --bin repro -- e15-vectorized
ls target/bench-json/BENCH_e15_cold_scan.json target/bench-json/BENCH_e15_cost_ordered.json

# Durability tax: the E16 repro measures the same workload with the WAL
# off vs on (ceiling: 3x), plus checkpoint and recovery timings, and
# records the durable-run median as BENCH_e16_wal_overhead.json.
echo "== bench smoke (e16-wal + wal_overhead BENCH json) =="
E16_N=5000 E16_RUNS=3 \
    BENCH_OUT=target/bench-json \
    GIT_REV="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
    BENCH_DATE="$(date -u +%F)" \
    cargo run --release -q -p extidx-bench --bin repro -- e16-wal
ls target/bench-json/BENCH_e16_wal_overhead.json

# MVCC: the concurrent differential oracle (N interleaved sessions vs a
# commit-order serial twin, incl. the 8-seed sweep and the 4-thread
# insert stress), the snapshot-visibility property tests (every scan
# shape, incl. the chem cartridge's shared-LOB fingerprint store), and
# the two-in-flight-transactions crash tests. MVCC_SEED pins the
# default oracle run's seed; panics print the diverging seed + report.
echo "== mvcc (concurrent oracle + visibility properties) =="
MVCC_SEED="${MVCC_SEED:-1}" \
    cargo test -q --test mvcc_differential -- --include-ignored
cargo test -q --test mvcc_visibility
cargo test -q --test recovery in_flight

# MVCC bench smoke: aggregate read throughput of 4 reader sessions while
# a writer transaction is in flight — snapshot readers vs a writer-fair
# big lock that excludes readers for the transaction's lifetime. Floor
# 2x; records the MVCC run as BENCH_e17_mvcc.json.
echo "== bench smoke (e17-mvcc + BENCH json) =="
E17_TXNS=15 \
    BENCH_OUT=target/bench-json \
    GIT_REV="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
    BENCH_DATE="$(date -u +%F)" \
    cargo run --release -q -p extidx-bench --bin repro -- e17-mvcc
ls target/bench-json/BENCH_e17_mvcc.json

# Incremental vacuum + sub-LOB conflict granularity: the no-quiescence
# soak (chains bounded, drained after the last commit), the
# vacuum-never-removes-a-visible-version property across every scan
# shape, span-granular concurrent maintenance of one chem index, and
# chain-aware zone pruning. The concurrent oracle above already runs
# with a vacuum firing between scheduler steps.
echo "== vacuum (incremental GC + span conflicts + chained-zone pruning) =="
cargo test -q --test mvcc_vacuum

# Vacuum bench smoke: quiescence-only vacuum must accumulate versions
# under a never-quiescent update stream while the incremental pass stays
# bounded (cap 16), and whole-locator LOB conflicts must abort writer
# pairs that byte-range spans commit. Records BENCH_e18_vacuum.json.
echo "== bench smoke (e18-vacuum + BENCH json) =="
E18_ROUNDS=200 E18_PAIRS=25 \
    BENCH_OUT=target/bench-json \
    GIT_REV="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
    BENCH_DATE="$(date -u +%F)" \
    cargo run --release -q -p extidx-bench --bin repro -- e18-vacuum
ls target/bench-json/BENCH_e18_vacuum.json

# Server governor: statement timeouts striking mid-scan / mid-ODCI /
# mid-maintenance / mid-backpressure-wait with full statement rollback,
# the daemon panic/fault sweep (contained, restarted, lock never
# poisoned), cross-thread cancellation, the 4-session soak with bounded
# occupancy, drop-ordering regression, and V$SERVER counters. The
# conflict storm + random-cadence sweeps ride in the --include-ignored
# runs above.
echo "== governor (daemon + timeouts + backpressure + retry) =="
cargo test -q --test server_governor

# Governor bench smoke: foreground p99 statement latency with the
# maintenance daemon owning the vacuum cadence vs PR 9's inline vacuum
# on every commit, under a pinned-horizon chain set the vacuum must scan
# but cannot reclaim. Floor 2x; records BENCH_e19_governor.json.
echo "== bench smoke (e19-governor + BENCH json) =="
E19_CHURN=800 E19_ROUNDS=120 \
    BENCH_OUT=target/bench-json \
    GIT_REV="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
    BENCH_DATE="$(date -u +%F)" \
    cargo run --release -q -p extidx-bench --bin repro -- e19-governor
ls target/bench-json/BENCH_e19_governor.json

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "CI OK"
