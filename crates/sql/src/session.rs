//! Concurrent multi-session front end over one shared [`Database`].
//!
//! The paper's framework runs inside a multi-user server: many sessions
//! issue statements against one instance, each session seeing a
//! transaction-consistent snapshot while domain-index maintenance stays
//! statement-atomic. This module supplies that front end for the
//! reproduction:
//!
//! - [`Server`] wraps the engine in an `Arc<RwLock<Database>>` and hands
//!   out [`Session`]s (independent handles, one per "connection").
//! - SELECT statements take the **read lock**: any number of sessions
//!   scan concurrently, each pinned to its snapshot — its own
//!   transaction's snapshot inside `BEGIN…COMMIT`, latest-committed
//!   otherwise. Cartridge scan callbacks (`ODCIIndexStart/Fetch/Close`)
//!   run under the read lock through the read-only `SharedCtx`, so a
//!   cartridge can never mutate shared state from a reader.
//! - Everything else (DML, DDL, transaction control) takes the **write
//!   lock** for the duration of the statement. That exclusivity is what
//!   serializes ODCIIndex maintenance, the compensation log, and the
//!   pending-work log per index: a cartridge never observes a torn
//!   statement, and crash recovery's commit markers are appended in
//!   commit order because csn assignment and the marker append happen
//!   under one exclusive hold.
//!
//! Isolation level is **snapshot isolation** with first-writer-wins:
//! `COMMIT` validates the transaction's write set against concurrently
//! committed writers and fails with a conflict error on overlap,
//! auto-rolling the loser back (its session returns to autocommit mode).
//! Statements outside an explicit transaction are an implicit
//! begin+statement+commit, so autocommit writers participate in the same
//! conflict protocol.

use std::sync::Arc;

use extidx_common::{Error, Result, Row, Value};
use extidx_core::events::DbEvent;
use extidx_storage::{Snapshot, UndoLog};
use parking_lot::RwLock;

use crate::ast::{bind_statement, Statement};
use crate::database::{Database, SqlStat, StmtResult};
use crate::exec_ctx::run_select_shared;
use crate::parser::parse;

/// A shared database server: the constructor of [`Session`]s.
#[derive(Clone)]
pub struct Server {
    db: Arc<RwLock<Database>>,
}

// The whole point: a `Server` (and its `Database`) crosses threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Server>();
};

impl Server {
    /// Wrap an engine (typically already loaded with schema/cartridges)
    /// for shared multi-session access.
    pub fn new(db: Database) -> Self {
        Server { db: Arc::new(RwLock::new(db)) }
    }

    /// Open a new session. Sessions are independent: each owns its
    /// transaction state and can run on its own thread.
    pub fn session(&self) -> Session {
        Session { db: Arc::clone(&self.db), txn: None }
    }

    /// Run `f` with exclusive access to the engine — setup, ablation
    /// toggles, assertions. Not a statement path.
    pub fn admin<T>(&self, f: impl FnOnce(&mut Database) -> T) -> T {
        f(&mut self.db.write())
    }

    /// Run `f` with shared access to the engine (metrics, catalog reads).
    pub fn read<T>(&self, f: impl FnOnce(&Database) -> T) -> T {
        f(&self.db.read())
    }

    /// Tear the server down and reclaim the engine. Fails (returning the
    /// still-shared server) if sessions or clones are alive.
    pub fn into_inner(self) -> std::result::Result<Database, Server> {
        match Arc::try_unwrap(self.db) {
            Ok(lock) => Ok(lock.into_inner()),
            Err(db) => Err(Server { db }),
        }
    }
}

/// The session's open transaction: the snapshot every statement reads
/// under plus the accumulated undo for rollback.
struct SessionTxn {
    snap: Snapshot,
    undo: UndoLog,
}

/// One database connection. `Send` — hand sessions to worker threads —
/// but driven by one thread at a time.
pub struct Session {
    db: Arc<RwLock<Database>>,
    txn: Option<SessionTxn>,
}

impl Session {
    /// Whether an explicit transaction is open.
    pub fn in_txn(&self) -> bool {
        self.txn.is_some()
    }

    /// The open transaction's snapshot (None in autocommit mode).
    pub fn snapshot(&self) -> Option<Snapshot> {
        self.txn.as_ref().map(|t| t.snap)
    }

    /// Execute one statement.
    pub fn execute(&mut self, sql: &str) -> Result<StmtResult> {
        self.execute_with(sql, &[])
    }

    /// Convenience: run a query and return just the rows.
    pub fn query(&mut self, sql: &str) -> Result<Vec<Row>> {
        match self.execute(sql)? {
            StmtResult::Rows { rows, .. } => Ok(rows),
            _ => Err(Error::Semantic("statement did not produce rows".into())),
        }
    }

    /// Execute one statement with `?` binds.
    pub fn execute_with(&mut self, sql: &str, binds: &[Value]) -> Result<StmtResult> {
        let mut stmt = parse(sql)?;
        bind_statement(&mut stmt, binds)?;
        match stmt {
            Statement::Begin => self.begin(),
            Statement::Commit => self.commit(),
            Statement::Rollback => self.rollback(),
            // Maintenance command: no transaction of its own. Open
            // snapshots (including this session's) hold the horizon back,
            // so an explicit VACUUM mid-transaction is always safe.
            Statement::Vacuum => {
                self.db.write().vacuum();
                Ok(StmtResult::Ok)
            }
            Statement::Select(s) => {
                // Read lane: shared lock, snapshot-pinned, no mutation.
                let started = std::time::Instant::now();
                let db = self.db.read();
                let snap =
                    self.txn.as_ref().map(|t| t.snap).unwrap_or_else(Snapshot::latest);
                let before = db.cache_stats();
                let (columns, rows) = run_select_shared(&db, snap, &s)?;
                db.record_sql_stat(SqlStat {
                    sql_id: 0, // assigned by record_sql_stat
                    sql_text: sql.to_string(),
                    rows_processed: rows.len() as u64,
                    elapsed_micros: started.elapsed().as_micros() as u64,
                    cache: db.cache_stats().since(&before),
                });
                Ok(StmtResult::Rows { columns, rows })
            }
            other => self.write_statement(other),
        }
    }

    /// Open an explicit transaction: reserve a txn id and pin the
    /// snapshot every subsequent statement reads under.
    fn begin(&mut self) -> Result<StmtResult> {
        if self.txn.is_some() {
            return Err(Error::Transaction("a transaction is already active".into()));
        }
        let snap = self.db.read().storage().txn_manager().begin();
        self.txn = Some(SessionTxn { snap, undo: UndoLog::new() });
        Ok(StmtResult::Ok)
    }

    /// Commit the open transaction: first-writer-wins validation, then
    /// the commit marker (in csn order) and version GC. On a write-write
    /// conflict the transaction is rolled back automatically and the
    /// conflict error surfaces — the session drops back to autocommit.
    fn commit(&mut self) -> Result<StmtResult> {
        let Some(mut t) = self.txn.take() else {
            // COMMIT with nothing open mirrors the legacy arm: fire the
            // event, succeed.
            self.db.write().fire_event(DbEvent::Commit)?;
            return Ok(StmtResult::Ok);
        };
        let mut db = self.db.write();
        let txns = db.storage().txn_manager();
        let enforce = db.storage().conflict_checks();
        match txns.commit(&t.snap, enforce) {
            Ok(_csn) => {
                db.session_commit_finish(t.snap)?;
                Ok(StmtResult::Ok)
            }
            Err(conflict) => {
                db.trace_conflict(&conflict);
                let _ = db.session_abort(t.snap, &mut t.undo);
                Err(conflict)
            }
        }
    }

    /// Roll back the open transaction (no-op + event when none is open,
    /// mirroring the legacy arm).
    fn rollback(&mut self) -> Result<StmtResult> {
        let Some(mut t) = self.txn.take() else {
            self.db.write().fire_event(DbEvent::Rollback)?;
            return Ok(StmtResult::Ok);
        };
        self.db.write().session_abort(t.snap, &mut t.undo)?;
        Ok(StmtResult::Ok)
    }

    /// Write lane: DML/DDL under the exclusive lock. Inside an explicit
    /// transaction the statement joins it; otherwise the statement is an
    /// implicit begin+statement+commit so autocommit writers take part in
    /// the same first-writer-wins protocol.
    fn write_statement(&mut self, stmt: Statement) -> Result<StmtResult> {
        if let Some(t) = self.txn.as_mut() {
            let mut db = self.db.write();
            // A failed statement already rolled its own effects back
            // inside `run_top`; the transaction stays open either way.
            let result = db.session_statement(stmt, t.snap, &mut t.undo);
            if let Err(e) = &result {
                db.trace_conflict(e);
            }
            return result;
        }
        let mut db = self.db.write();
        let txns = db.storage().txn_manager();
        let snap = txns.begin();
        let mut undo = UndoLog::new();
        match db.session_statement(stmt, snap, &mut undo) {
            Ok(result) => {
                let enforce = db.storage().conflict_checks();
                match txns.commit(&snap, enforce) {
                    Ok(_csn) => {
                        db.session_commit_finish(snap)?;
                        Ok(result)
                    }
                    Err(conflict) => {
                        db.trace_conflict(&conflict);
                        let _ = db.session_abort(snap, &mut undo);
                        Err(conflict)
                    }
                }
            }
            Err(e) => {
                // Statement-level rollback (and its Rollback event) ran in
                // `run_top`; just retire the implicit transaction.
                db.trace_conflict(&e);
                db.session_discard(snap);
                Err(e)
            }
        }
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        // An abandoned open transaction must not pin versions or leave
        // uncommitted in-place images behind: roll it back.
        if let Some(mut t) = self.txn.take() {
            let _ = self.db.write().session_abort(t.snap, &mut t.undo);
        }
    }
}
