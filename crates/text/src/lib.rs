//! # extidx-text — the interMedia-Text-like cartridge
//!
//! Reproduces the paper's flagship case study (§3.2.1): full-text indexing
//! of document columns through the extensible indexing framework.
//!
//! - The index is an **inverted index** ("storing the occurrence list for
//!   each token in each of the text documents") kept in an
//!   **index-organized table** named `DR$<index>$I`, maintained through
//!   server callbacks on every base-table change.
//! - The **`Contains`** operator takes a document column and a boolean
//!   keyword expression (`'Oracle AND UNIX'`, with `OR`, `NOT`, and
//!   parentheses) and is evaluated either through the domain index
//!   (ODCIIndexStart/Fetch/Close) or through the functional fallback that
//!   tokenizes each row.
//! - The **`Score`** ancillary operator surfaces a per-row relevance value
//!   computed by the index scan (§2.4.2 "ancillary operators").
//! - `PARAMETERS (':Language English :Ignore the a an')` selects the
//!   stop-word list; `:ScanMode PRECOMPUTE|INCREMENTAL` selects between
//!   the two scan implementations of §2.2.3 (Precompute-All materializes
//!   and ranks the entire result in `start`; Incremental merges posting
//!   lists batch-by-batch during `fetch`, using a Return-Handle workspace
//!   context).
//! - [`legacy`] reimplements the **pre-Oracle8i two-step execution**
//!   (materialize matching rowids into a temporary result table, rewrite
//!   the query as a join) that the case study benchmarks against.

pub mod cartridge;
pub mod corpus;
pub mod legacy;
pub mod query;
pub mod tokenizer;

use std::sync::Arc;

use extidx_common::Result;
use extidx_common::Value;
use extidx_core::operator::ScalarFunction;
use extidx_sql::Database;

pub use cartridge::{TextIndexMethods, TextStats};
pub use corpus::CorpusGenerator;

/// Install the text cartridge into a database: the `Contains` functional
/// implementation, the operator (both 2- and 3-argument bindings, the
/// third being the ancillary `Score` label), and the `TextIndexType`
/// indextype.
pub fn install(db: &mut Database) -> Result<()> {
    db.register_function(ScalarFunction::new("TextContains", |ctx, args| {
        let doc = match &args[0] {
            Value::Null => return Ok(Value::Null),
            Value::Varchar(s) => s.clone(),
            Value::Lob(l) => String::from_utf8_lossy(&ctx.lob_read_all(*l)?).into_owned(),
            other => {
                return Err(extidx_common::Error::type_mismatch(
                    "VARCHAR2 or LOB",
                    other.type_name(),
                ))
            }
        };
        let query = args[1].as_str()?;
        let q = query::parse_query(query)?;
        let tokens = tokenizer::tokenize(&doc, &tokenizer::StopWords::none());
        Ok(Value::Boolean(q.matches(&tokens)))
    }))?;
    db.register_odci_implementation(
        "TextIndexMethods",
        Arc::new(TextIndexMethods),
        Arc::new(TextStats),
    );
    db.execute(
        "CREATE OPERATOR Contains \
         BINDING (VARCHAR2, VARCHAR2) RETURN BOOLEAN USING TextContains, \
         (VARCHAR2, VARCHAR2, INTEGER) RETURN BOOLEAN USING TextContains, \
         (CLOB, VARCHAR2) RETURN BOOLEAN USING TextContains, \
         (CLOB, VARCHAR2, INTEGER) RETURN BOOLEAN USING TextContains",
    )?;
    db.execute(
        "CREATE INDEXTYPE TextIndexType FOR \
         Contains(VARCHAR2, VARCHAR2), Contains(VARCHAR2, VARCHAR2, INTEGER), \
         Contains(CLOB, VARCHAR2), Contains(CLOB, VARCHAR2, INTEGER) \
         USING TextIndexMethods",
    )?;
    Ok(())
}
