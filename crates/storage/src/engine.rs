//! The storage engine façade.
//!
//! [`StorageEngine`] owns every segment (heap tables, IOTs, the LOB
//! segment) plus the buffer cache, the undo machinery, and the *external*
//! file store. All mutating access flows through it so that:
//!
//! 1. every page touch is charged to the [`BufferCache`],
//! 2. every database-resident mutation is recorded in the caller's
//!    [`UndoLog`] (when one is active),
//! 3. external-file operations are *not* recorded — reproducing the
//!    paper's §5 transactional limitation for outside-the-database index
//!    data.

use std::collections::HashMap;

use extidx_common::{Error, Key, LobRef, Result, Row, RowId};

use crate::buffer::{BufferCache, CacheStats};
use crate::file_store::FileStore;
use crate::heap::HeapTable;
use crate::iot::IndexOrganizedTable;
use crate::lob::LobStore;
use crate::page::SegmentId;
use crate::undo::{UndoLog, UndoOp};
use crate::wal::{DurableMedium, EngineSnapshot, WalRecord};

/// Synthetic segment id under which LOB pages are charged to the cache.
const LOB_SEGMENT: SegmentId = SegmentId(u32::MAX);

/// Default buffer-cache capacity in pages (≈ 64 MiB at 8 KiB/page).
pub const DEFAULT_CACHE_PAGES: usize = 8192;

/// The storage engine: all segments plus cache, undo, and external files.
pub struct StorageEngine {
    cache: BufferCache,
    heaps: HashMap<SegmentId, HeapTable>,
    iots: HashMap<SegmentId, IndexOrganizedTable>,
    lobs: LobStore,
    files: FileStore,
    next_segment: u32,
    /// When attached, every mutation appends a redo record here *before*
    /// applying (write-ahead rule) and external-file ops write through to
    /// the medium's file mirror.
    wal: Option<DurableMedium>,
}

impl Default for StorageEngine {
    fn default() -> Self {
        Self::new(DEFAULT_CACHE_PAGES)
    }
}

impl StorageEngine {
    /// Engine with a cache of `cache_pages` pages.
    pub fn new(cache_pages: usize) -> Self {
        StorageEngine {
            cache: BufferCache::new(cache_pages),
            heaps: HashMap::new(),
            iots: HashMap::new(),
            lobs: LobStore::new(),
            files: FileStore::new(),
            next_segment: 1,
            wal: None,
        }
    }

    fn alloc_segment(&mut self) -> SegmentId {
        let id = SegmentId(self.next_segment);
        self.next_segment += 1;
        id
    }

    // ----- write-ahead logging ---------------------------------------------

    /// Attach a durable medium: from now on, write-ahead before apply.
    pub fn attach_wal(&mut self, medium: DurableMedium) {
        self.wal = Some(medium);
    }

    /// Detach the medium (recovery replays with logging off).
    pub fn detach_wal(&mut self) -> Option<DurableMedium> {
        self.wal.take()
    }

    /// The attached medium, if durability is on.
    pub fn wal_medium(&self) -> Option<&DurableMedium> {
        self.wal.as_ref()
    }

    fn wal_append(&self, rec: WalRecord) -> Result<()> {
        match &self.wal {
            Some(w) => w.append(rec),
            None => Ok(()),
        }
    }

    fn wal_applied(&self) -> Result<()> {
        match &self.wal {
            Some(w) => w.applied(),
            None => Ok(()),
        }
    }

    /// Deep snapshot of all durable state (checkpoint source).
    pub fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot {
            heaps: self.heaps.clone(),
            iots: self.iots.clone(),
            lobs: self.lobs.clone(),
            files: self.files.clone(),
            next_segment: self.next_segment,
        }
    }

    /// Replace all durable state from a snapshot. The buffer cache comes
    /// up cold, as it would after a real restart.
    pub fn restore_snapshot(&mut self, snap: EngineSnapshot) {
        self.cache.invalidate_all();
        self.heaps = snap.heaps;
        self.iots = snap.iots;
        self.lobs = snap.lobs;
        self.files = snap.files;
        self.next_segment = snap.next_segment;
    }

    /// Replace the external file store wholesale (recovery installs the
    /// medium's crash-surviving file mirror).
    pub fn set_files(&mut self, files: FileStore) {
        self.files = files;
    }

    /// Redo one WAL record against current state. Used only by recovery,
    /// with the WAL detached. Application errors are swallowed: a record
    /// whose original apply failed fails identically on replay (same
    /// state, deterministic operations), leaving state unchanged both
    /// times.
    pub fn apply_wal_record(&mut self, rec: &WalRecord) {
        match rec {
            WalRecord::CreateHeap => {
                let _ = self.create_heap();
            }
            WalRecord::CreateIot { key_cols } => {
                let _ = self.create_iot(*key_cols);
            }
            WalRecord::DropSegment { seg } => {
                let _ = self.drop_segment(*seg);
            }
            WalRecord::TruncateSegment { seg } => {
                let _ = self.truncate_segment(*seg);
            }
            WalRecord::HeapInsert { seg, row } => {
                let _ = self.heap_insert(*seg, row.clone(), None);
            }
            WalRecord::HeapInsertAt { seg, rid, row } => {
                if let Some(h) = self.heaps.get_mut(seg) {
                    let _ = h.insert_at(*rid, row.clone());
                    self.cache.write((*seg, rid.page));
                }
            }
            WalRecord::HeapUpdate { seg, rid, row } => {
                let _ = self.heap_update(*seg, *rid, row.clone(), None);
            }
            WalRecord::HeapDelete { seg, rid } => {
                let _ = self.heap_delete(*seg, *rid, None);
            }
            WalRecord::IotInsert { seg, row } => {
                let _ = self.iot_insert(*seg, row.clone(), None);
            }
            WalRecord::IotInsertOrd { seg, row, ord } => {
                if let Some(t) = self.iots.get_mut(seg) {
                    let _ = t.insert_with_ordinal(row.clone(), *ord);
                }
            }
            WalRecord::IotUpsert { seg, row } => {
                let _ = self.iot_upsert(*seg, row.clone(), None);
            }
            WalRecord::IotDelete { seg, key } => {
                let _ = self.iot_delete(*seg, key, None);
            }
            WalRecord::LobAllocate => {
                let _ = self.lob_allocate(None);
            }
            WalRecord::LobWrite { lob, offset, bytes } => {
                let _ = self.lob_write(*lob, *offset, bytes, None);
            }
            WalRecord::LobAppend { lob, bytes } => {
                let _ = self.lob_append(*lob, bytes, None);
            }
            WalRecord::LobOverwrite { lob, bytes } => {
                let _ = self.lob_overwrite(*lob, bytes, None);
            }
            WalRecord::LobFree { lob } => {
                let _ = self.lob_free(*lob, None);
            }
            WalRecord::LobRestore { lob, bytes } => {
                self.lobs.restore(*lob, bytes.clone());
            }
            // File content survives in the medium's mirror; commit markers
            // are the SQL layer's business.
            WalRecord::FileActivity { .. } | WalRecord::Commit { .. } => {}
        }
    }

    /// Recompute exact zone maps on every heap segment (end of recovery:
    /// replay re-derives superset bounds, this tightens them).
    pub fn rebuild_all_zone_maps(&mut self) {
        for h in self.heaps.values_mut() {
            h.rebuild_zone_maps();
        }
    }

    // ----- segment lifecycle ------------------------------------------------

    /// Create a heap segment.
    pub fn create_heap(&mut self) -> Result<SegmentId> {
        self.wal_append(WalRecord::CreateHeap)?;
        let seg = self.alloc_segment();
        self.heaps.insert(seg, HeapTable::new(seg));
        self.wal_applied()?;
        Ok(seg)
    }

    /// Create an index-organized segment keyed on the first `key_cols`
    /// row columns.
    pub fn create_iot(&mut self, key_cols: usize) -> Result<SegmentId> {
        self.wal_append(WalRecord::CreateIot { key_cols })?;
        let seg = self.alloc_segment();
        self.iots.insert(seg, IndexOrganizedTable::new(seg, key_cols));
        self.wal_applied()?;
        Ok(seg)
    }

    /// Drop any segment; its cached pages are discarded.
    pub fn drop_segment(&mut self, seg: SegmentId) -> Result<()> {
        if !self.heaps.contains_key(&seg) && !self.iots.contains_key(&seg) {
            return Err(Error::Storage(format!("{seg}: no such segment")));
        }
        self.wal_append(WalRecord::DropSegment { seg })?;
        self.heaps.remove(&seg);
        self.iots.remove(&seg);
        self.cache.discard_segment(seg);
        self.wal_applied()
    }

    /// Truncate a segment in place (non-transactional, like Oracle
    /// TRUNCATE: it is DDL and cannot be rolled back).
    pub fn truncate_segment(&mut self, seg: SegmentId) -> Result<()> {
        if self.heaps.contains_key(&seg) || self.iots.contains_key(&seg) {
            self.wal_append(WalRecord::TruncateSegment { seg })?;
        }
        if let Some(h) = self.heaps.get_mut(&seg) {
            h.truncate();
        } else if let Some(t) = self.iots.get_mut(&seg) {
            t.truncate();
        } else {
            return Err(Error::Storage(format!("{seg}: no such segment")));
        }
        self.cache.discard_segment(seg);
        self.wal_applied()
    }

    // ----- read-only access (callers charge scans themselves) --------------

    /// Borrow a heap segment for reading. Use [`Self::charge_page_read`]
    /// while scanning.
    pub fn heap(&self, seg: SegmentId) -> Result<&HeapTable> {
        self.heaps.get(&seg).ok_or_else(|| Error::Storage(format!("{seg}: no such heap segment")))
    }

    /// Borrow an IOT segment for reading.
    pub fn iot(&self, seg: SegmentId) -> Result<&IndexOrganizedTable> {
        self.iots.get(&seg).ok_or_else(|| Error::Storage(format!("{seg}: no such IOT segment")))
    }

    /// The buffer cache (for stats snapshots and cold-start simulation).
    pub fn cache(&self) -> &BufferCache {
        &self.cache
    }

    /// Charge one page read on behalf of a scan.
    pub fn charge_page_read(&self, seg: SegmentId, page: u32) {
        self.cache.read((seg, page));
    }

    /// Zone-map check for a full scan: true when the page provably holds
    /// no `col` value inside `[lo, hi]`, so the scan may skip it without
    /// charging a page read. Zone maps are segment metadata, not page
    /// data — consulting them costs no buffer-cache touch.
    pub fn heap_zone_excludes(
        &self,
        seg: SegmentId,
        page: u32,
        col: usize,
        lo: Option<&extidx_common::Value>,
        hi: Option<&extidx_common::Value>,
    ) -> bool {
        self.heaps.get(&seg).is_some_and(|h| h.zone_excludes(page, col, lo, hi))
    }

    /// Recompute exact zone-map bounds for a heap segment (ANALYZE-time
    /// rebuild; no-op for non-heap segments).
    pub fn heap_rebuild_zone_maps(&mut self, seg: SegmentId) {
        if let Some(h) = self.heaps.get_mut(&seg) {
            h.rebuild_zone_maps();
        }
    }

    /// Snapshot of cache statistics.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    // ----- heap mutations ----------------------------------------------------

    /// Insert a row into a heap segment.
    pub fn heap_insert(
        &mut self,
        seg: SegmentId,
        row: Row,
        undo: Option<&mut UndoLog>,
    ) -> Result<RowId> {
        if !self.heaps.contains_key(&seg) {
            return Err(Error::Storage(format!("{seg}: no such heap segment")));
        }
        self.wal_append(WalRecord::HeapInsert { seg, row: row.clone() })?;
        let h = self.heaps.get_mut(&seg).expect("existence checked above");
        let (rid, page) = h.insert(row);
        self.cache.write((seg, page));
        if let Some(log) = undo {
            log.push(UndoOp::HeapInsert { seg, rid });
        }
        self.wal_applied()?;
        Ok(rid)
    }

    /// Fetch one row by rowid (charges one page read).
    pub fn heap_fetch(&self, seg: SegmentId, rid: RowId) -> Result<Row> {
        let h = self.heap(seg)?;
        let row = h.fetch(rid)?.clone();
        self.cache.read((seg, rid.page));
        Ok(row)
    }

    /// Fetch a batch of rows by rowid, visiting pages in (page, slot)
    /// order so the buffer cache is charged **once per distinct page**
    /// instead of once per row — the batched half of the domain-scan
    /// rowid→row join. Results are returned aligned with the input order;
    /// a missing row (deleted slot, out-of-range page) yields the same
    /// error a single [`StorageEngine::heap_fetch`] would.
    pub fn heap_fetch_multi(&self, seg: SegmentId, rids: &[RowId]) -> Result<Vec<Row>> {
        let h = self.heap(seg)?;
        let mut order: Vec<usize> = (0..rids.len()).collect();
        order.sort_by_key(|&i| (rids[i].page, rids[i].slot));
        let mut out: Vec<Option<Row>> = vec![None; rids.len()];
        let mut last_page: Option<u32> = None;
        for i in order {
            let rid = rids[i];
            if last_page != Some(rid.page) {
                self.cache.read((seg, rid.page));
                last_page = Some(rid.page);
            }
            out[i] = Some(h.fetch(rid)?.clone());
        }
        Ok(out.into_iter().map(|r| r.expect("every index filled")).collect())
    }

    /// Update a row in place; returns the old image.
    pub fn heap_update(
        &mut self,
        seg: SegmentId,
        rid: RowId,
        new_row: Row,
        undo: Option<&mut UndoLog>,
    ) -> Result<Row> {
        if !self.heaps.contains_key(&seg) {
            return Err(Error::Storage(format!("{seg}: no such heap segment")));
        }
        self.wal_append(WalRecord::HeapUpdate { seg, rid, row: new_row.clone() })?;
        let h = self.heaps.get_mut(&seg).expect("existence checked above");
        let old = h.update(rid, new_row)?;
        self.cache.write((seg, rid.page));
        if let Some(log) = undo {
            log.push(UndoOp::HeapUpdate { seg, rid, old: old.clone() });
        }
        self.wal_applied()?;
        Ok(old)
    }

    /// Delete a row; returns the old image.
    pub fn heap_delete(
        &mut self,
        seg: SegmentId,
        rid: RowId,
        undo: Option<&mut UndoLog>,
    ) -> Result<Row> {
        if !self.heaps.contains_key(&seg) {
            return Err(Error::Storage(format!("{seg}: no such heap segment")));
        }
        self.wal_append(WalRecord::HeapDelete { seg, rid })?;
        let h = self.heaps.get_mut(&seg).expect("existence checked above");
        let old = h.delete(rid)?;
        self.cache.write((seg, rid.page));
        if let Some(log) = undo {
            log.push(UndoOp::HeapDelete { seg, rid, old: old.clone() });
        }
        self.wal_applied()?;
        Ok(old)
    }

    // ----- IOT mutations -------------------------------------------------------

    fn iot_mut(&mut self, seg: SegmentId) -> Result<&mut IndexOrganizedTable> {
        self.iots
            .get_mut(&seg)
            .ok_or_else(|| Error::Storage(format!("{seg}: no such IOT segment")))
    }

    fn charge_iot(&self, seg: SegmentId, charge: crate::iot::IotIoCharge, base_page: u32) {
        // Model: reads touch pages descending from the root; writes dirty
        // the leaf. Page numbers are synthetic but stable enough for LRU
        // behaviour (root pages stay hot, leaves cycle).
        for i in 0..charge.page_reads {
            self.cache.read((seg, base_page.wrapping_add(i as u32)));
        }
        for i in 0..charge.page_writes {
            self.cache.write((seg, base_page.wrapping_add(i as u32)));
        }
    }

    fn iot_leaf_page_for(&self, seg: SegmentId, key: &Key) -> u32 {
        // Stable leaf-page number derived from the key so repeated probes
        // of the same key hit the same cache page.
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        seg.0.hash(&mut h);
        format!("{key}").hash(&mut h);
        let iot = &self.iots[&seg];
        let pages = iot.page_count().max(1) as u64;
        (h.finish() % pages) as u32
    }

    /// Pack an IOT logical-rowid ordinal into a `RowId` (and the inverse
    /// below). Ordinals use the page/slot fields: 26 + 16 = 42 bits of
    /// address space per IOT segment.
    fn ord_to_rid(seg: SegmentId, ord: u64) -> RowId {
        debug_assert!(ord < (1 << 42), "IOT ordinal overflows rowid packing");
        RowId::new(seg.0, (ord >> 16) as u32, (ord & 0xFFFF) as u16)
    }

    fn rid_to_ord(rid: RowId) -> u64 {
        ((rid.page as u64) << 16) | rid.slot as u64
    }

    /// Insert a row into an IOT (duplicate key → constraint violation).
    /// Returns the row's logical rowid.
    pub fn iot_insert(
        &mut self,
        seg: SegmentId,
        row: Row,
        undo: Option<&mut UndoLog>,
    ) -> Result<RowId> {
        let key_cols = self.iot(seg)?.key_cols();
        let key = Key(row[..key_cols.min(row.len())].to_vec());
        self.wal_append(WalRecord::IotInsert { seg, row: row.clone() })?;
        let (ord, charge) = self.iot_mut(seg)?.insert(row)?;
        let leaf = self.iot_leaf_page_for(seg, &key);
        self.charge_iot(seg, charge, leaf);
        if let Some(log) = undo {
            log.push(UndoOp::IotInsert { seg, key });
        }
        self.wal_applied()?;
        Ok(Self::ord_to_rid(seg, ord))
    }

    /// Insert-or-replace into an IOT. Returns the previous row (if any)
    /// and the row's logical rowid, which is stable across replaces.
    pub fn iot_upsert(
        &mut self,
        seg: SegmentId,
        row: Row,
        undo: Option<&mut UndoLog>,
    ) -> Result<(Option<Row>, RowId)> {
        let key_cols = self.iot(seg)?.key_cols();
        let key = Key(row[..key_cols.min(row.len())].to_vec());
        self.wal_append(WalRecord::IotUpsert { seg, row: row.clone() })?;
        let (old, ord, charge) = self.iot_mut(seg)?.upsert(row)?;
        let leaf = self.iot_leaf_page_for(seg, &key);
        self.charge_iot(seg, charge, leaf);
        if let Some(log) = undo {
            match &old {
                Some(o) => log.push(UndoOp::IotReplace { seg, old: o.clone() }),
                None => log.push(UndoOp::IotInsert { seg, key }),
            }
        }
        self.wal_applied()?;
        Ok((old, Self::ord_to_rid(seg, ord)))
    }

    /// Delete by key from an IOT; returns the removed row if present.
    pub fn iot_delete(
        &mut self,
        seg: SegmentId,
        key: &Key,
        undo: Option<&mut UndoLog>,
    ) -> Result<Option<Row>> {
        self.wal_append(WalRecord::IotDelete { seg, key: key.clone() })?;
        let (removed, charge) = self.iot_mut(seg)?.delete(key);
        let leaf = self.iot_leaf_page_for(seg, key);
        self.charge_iot(seg, charge, leaf);
        let old = match removed {
            Some((o, ord)) => {
                if let Some(log) = undo {
                    log.push(UndoOp::IotDelete { seg, old: o.clone(), ord });
                }
                Some(o)
            }
            None => None,
        };
        self.wal_applied()?;
        Ok(old)
    }

    /// The logical rowid of an IOT row, if the key exists.
    pub fn iot_rowid(&self, seg: SegmentId, key: &Key) -> Result<Option<RowId>> {
        Ok(self.iot(seg)?.ordinal_of(key).map(|ord| Self::ord_to_rid(seg, ord)))
    }

    /// Fetch one IOT row by logical rowid (charges a height-probe read).
    pub fn iot_fetch_by_rowid(&self, seg: SegmentId, rid: RowId) -> Result<Row> {
        let iot = self.iot(seg)?;
        let (found, charge) = iot.by_ordinal(Self::rid_to_ord(rid));
        let (key, row) = found.ok_or_else(|| {
            Error::Storage(format!("{rid} does not address a live row in IOT {seg}"))
        })?;
        let out = row.clone();
        let leaf = self.iot_leaf_page_for(seg, &key.clone());
        self.charge_iot(seg, charge, leaf);
        Ok(out)
    }

    /// Batched logical-rowid→row join for IOTs, aligned with input order
    /// — the IOT counterpart of [`StorageEngine::heap_fetch_multi`].
    pub fn iot_fetch_multi(&self, seg: SegmentId, rids: &[RowId]) -> Result<Vec<Row>> {
        rids.iter().map(|&rid| self.iot_fetch_by_rowid(seg, rid)).collect()
    }

    /// Full scan of an IOT with each row's logical rowid, charging one
    /// read per page (the sequential full-scan cost model, matching the
    /// rowid-less scan path).
    pub fn iot_scan_with_rids(&self, seg: SegmentId) -> Result<Vec<(RowId, Row)>> {
        let iot = self.iot(seg)?;
        let out: Vec<(RowId, Row)> =
            iot.scan_with_ordinals().map(|(ord, r)| (Self::ord_to_rid(seg, ord), r.clone())).collect();
        let pages = iot.page_count();
        for p in 0..pages {
            self.charge_page_read(seg, p as u32);
        }
        Ok(out)
    }

    /// Inclusive range scan in an IOT with each row's logical rowid.
    pub fn iot_range_with_rids(
        &self,
        seg: SegmentId,
        lo: Option<&Key>,
        hi: Option<&Key>,
    ) -> Result<Vec<(RowId, Row)>> {
        let iot = self.iot(seg)?;
        let (rows, charge) = iot.range(lo, hi);
        let key_cols = iot.key_cols();
        let out: Vec<(RowId, Row)> = rows
            .into_iter()
            .map(|r| {
                let key = Key(r[..key_cols.min(r.len())].to_vec());
                let ord = iot.ordinal_of(&key).unwrap_or(u64::MAX >> 22);
                (Self::ord_to_rid(seg, ord), r.clone())
            })
            .collect();
        let leaf = lo.or(hi).map(|k| self.iot_leaf_page_for(seg, k)).unwrap_or(0);
        self.charge_iot(seg, charge, leaf);
        Ok(out)
    }

    /// Up to `limit` IOT rows with keys strictly after `after` (`None`
    /// starts from the beginning), each with its logical rowid — the
    /// streaming cursor behind base-table scans over IOTs.
    pub fn iot_batch_after(
        &self,
        seg: SegmentId,
        after: Option<&Key>,
        limit: usize,
    ) -> Result<Vec<(RowId, Key, Row)>> {
        let iot = self.iot(seg)?;
        let batch: Vec<(RowId, Key, Row)> = iot
            .batch_after(after, limit.max(1))
            .into_iter()
            .map(|(ord, k, r)| (Self::ord_to_rid(seg, ord), k.clone(), r.clone()))
            .collect();
        let leaf_pages = batch.len().div_ceil(64).max(1);
        let charge =
            crate::iot::IotIoCharge { page_reads: iot.height() + leaf_pages, page_writes: 0 };
        self.charge_iot(seg, charge, 0);
        Ok(batch)
    }

    /// Point lookup in an IOT.
    pub fn iot_get(&self, seg: SegmentId, key: &Key) -> Result<Option<Row>> {
        let iot = self.iot(seg)?;
        let (row, charge) = iot.get(key);
        let out = row.cloned();
        let leaf = self.iot_leaf_page_for(seg, key);
        self.charge_iot(seg, charge, leaf);
        Ok(out)
    }

    /// Inclusive range scan in an IOT.
    pub fn iot_range(
        &self,
        seg: SegmentId,
        lo: Option<&Key>,
        hi: Option<&Key>,
    ) -> Result<Vec<Row>> {
        let iot = self.iot(seg)?;
        let (rows, charge) = iot.range(lo, hi);
        let out: Vec<Row> = rows.into_iter().cloned().collect();
        let leaf = lo
            .or(hi)
            .map(|k| self.iot_leaf_page_for(seg, k))
            .unwrap_or(0);
        self.charge_iot(seg, charge, leaf);
        Ok(out)
    }

    /// Key-prefix scan in an IOT (posting-list access pattern).
    pub fn iot_prefix_scan(&self, seg: SegmentId, prefix: &Key) -> Result<Vec<Row>> {
        let iot = self.iot(seg)?;
        let (rows, charge) = iot.prefix_scan(prefix);
        let out: Vec<Row> = rows.into_iter().cloned().collect();
        let leaf = self.iot_leaf_page_for(seg, prefix);
        self.charge_iot(seg, charge, leaf);
        Ok(out)
    }

    // ----- LOB operations -------------------------------------------------------

    fn lob_page(lob: LobRef, page: usize) -> u32 {
        (((lob.0 as u32) << 10) | (page as u32 & 0x3FF)).wrapping_add(0)
    }

    fn charge_lob(&self, lob: LobRef, charge: crate::lob::LobIoCharge) {
        for i in 0..charge.page_reads {
            self.cache.read((LOB_SEGMENT, Self::lob_page(lob, i)));
        }
        for i in 0..charge.page_writes {
            self.cache.write((LOB_SEGMENT, Self::lob_page(lob, i)));
        }
    }

    /// Allocate an empty LOB.
    pub fn lob_allocate(&mut self, undo: Option<&mut UndoLog>) -> Result<LobRef> {
        self.wal_append(WalRecord::LobAllocate)?;
        let lob = self.lobs.allocate();
        if let Some(log) = undo {
            log.push(UndoOp::LobAllocate { lob });
        }
        self.wal_applied()?;
        Ok(lob)
    }

    /// LOB length.
    pub fn lob_length(&self, lob: LobRef) -> Result<u64> {
        self.lobs.length(lob)
    }

    /// Read from a LOB at an offset.
    pub fn lob_read(&self, lob: LobRef, offset: u64, len: usize) -> Result<Vec<u8>> {
        let (bytes, charge) = self.lobs.read(lob, offset, len)?;
        self.charge_lob(lob, charge);
        Ok(bytes)
    }

    /// Read a whole LOB.
    pub fn lob_read_all(&self, lob: LobRef) -> Result<Vec<u8>> {
        let (bytes, charge) = self.lobs.read_all(lob)?;
        self.charge_lob(lob, charge);
        Ok(bytes)
    }

    /// Write into a LOB at an offset.
    pub fn lob_write(
        &mut self,
        lob: LobRef,
        offset: u64,
        bytes: &[u8],
        undo: Option<&mut UndoLog>,
    ) -> Result<()> {
        self.wal_append(WalRecord::LobWrite { lob, offset, bytes: bytes.to_vec() })?;
        if let Some(log) = undo {
            let (old, _) = self.lobs.read_all(lob)?;
            log.push(UndoOp::LobModify { lob, old });
        }
        let charge = self.lobs.write(lob, offset, bytes)?;
        self.charge_lob(lob, charge);
        self.wal_applied()
    }

    /// Append to a LOB; returns the offset written at.
    pub fn lob_append(
        &mut self,
        lob: LobRef,
        bytes: &[u8],
        undo: Option<&mut UndoLog>,
    ) -> Result<u64> {
        self.wal_append(WalRecord::LobAppend { lob, bytes: bytes.to_vec() })?;
        if let Some(log) = undo {
            let (old, _) = self.lobs.read_all(lob)?;
            log.push(UndoOp::LobModify { lob, old });
        }
        let (off, charge) = self.lobs.append(lob, bytes)?;
        self.charge_lob(lob, charge);
        self.wal_applied()?;
        Ok(off)
    }

    /// Replace a LOB's entire contents.
    pub fn lob_overwrite(
        &mut self,
        lob: LobRef,
        bytes: &[u8],
        undo: Option<&mut UndoLog>,
    ) -> Result<()> {
        self.wal_append(WalRecord::LobOverwrite { lob, bytes: bytes.to_vec() })?;
        if let Some(log) = undo {
            let (old, _) = self.lobs.read_all(lob)?;
            log.push(UndoOp::LobModify { lob, old });
        }
        let charge = self.lobs.overwrite(lob, bytes)?;
        self.charge_lob(lob, charge);
        self.wal_applied()
    }

    /// Free a LOB.
    pub fn lob_free(&mut self, lob: LobRef, undo: Option<&mut UndoLog>) -> Result<()> {
        self.wal_append(WalRecord::LobFree { lob })?;
        let old = self.lobs.free(lob)?;
        if let Some(log) = undo {
            log.push(UndoOp::LobFree { lob, old });
        }
        self.wal_applied()
    }

    // ----- external file store (NOT transactional, by design) -------------------

    /// The external file store. Mutations here are invisible to undo —
    /// this is the paper's §5 limitation made concrete. Callers that need
    /// crash-consistency stamps must use the `file_*` wrappers below;
    /// this raw handle exists for stats access and tests.
    pub fn files(&mut self) -> &mut FileStore {
        &mut self.files
    }

    /// Read-only view of the external file store.
    pub fn files_ref(&self) -> &FileStore {
        &self.files
    }

    /// Stamp a file mutation in the WAL (for post-crash dirty detection)
    /// and mirror it to the durable medium. File content is written
    /// through immediately — real files do not wait for commit, which is
    /// exactly why file-backed indexes need the quarantine path.
    fn file_mutate(
        &mut self,
        name: &str,
        op: impl Fn(&mut FileStore) -> Result<()>,
    ) -> Result<()> {
        self.wal_append(WalRecord::FileActivity { name: name.to_string() })?;
        op(&mut self.files)?;
        if let Some(w) = &self.wal {
            w.mirror_files(|fs| {
                let _ = op(fs);
            });
        }
        self.wal_applied()
    }

    /// Create (or truncate) an external file.
    pub fn file_create(&mut self, name: &str) -> Result<()> {
        self.file_mutate(name, |fs| {
            fs.create(name);
            Ok(())
        })
    }

    /// Remove an external file.
    pub fn file_remove(&mut self, name: &str) -> Result<()> {
        self.file_mutate(name, |fs| fs.remove(name))
    }

    /// Remove an external file if it exists (idempotent cleanup).
    pub fn file_remove_if_exists(&mut self, name: &str) -> Result<()> {
        if self.files.exists(name) {
            self.file_remove(name)?;
        }
        Ok(())
    }

    /// Replace a whole external file.
    pub fn file_write(&mut self, name: &str, bytes: &[u8]) -> Result<()> {
        self.file_mutate(name, |fs| fs.write(name, bytes))
    }

    /// Append to an external file.
    pub fn file_append(&mut self, name: &str, bytes: &[u8]) -> Result<()> {
        self.file_mutate(name, |fs| fs.append(name, bytes))
    }

    /// Flush an external file (content unchanged — no WAL stamp needed,
    /// but the op counter ticks on both stores).
    pub fn file_flush(&mut self, name: &str) -> Result<()> {
        self.files.flush(name)?;
        if let Some(w) = &self.wal {
            w.mirror_files(|fs| {
                let _ = fs.flush(name);
            });
        }
        Ok(())
    }

    // ----- rollback ---------------------------------------------------------------

    /// Apply a transaction's undo log in reverse, restoring all
    /// database-resident state. External files are untouched.
    ///
    /// Every undo application is itself written ahead as a *redo* record:
    /// an explicit-transaction ROLLBACK is a completed statement followed
    /// by a commit marker, so its effects must replay on recovery exactly
    /// like forward work.
    pub fn rollback(&mut self, log: &mut UndoLog) -> Result<()> {
        for op in log.drain_reverse() {
            match op {
                UndoOp::HeapInsert { seg, rid } => {
                    if self.heaps.contains_key(&seg) {
                        self.wal_append(WalRecord::HeapDelete { seg, rid })?;
                        let h = self.heaps.get_mut(&seg).expect("checked");
                        h.delete(rid)?;
                        self.cache.write((seg, rid.page));
                    }
                }
                UndoOp::HeapDelete { seg, rid, old } | UndoOp::HeapUpdate { seg, rid, old } => {
                    if self.heaps.contains_key(&seg) {
                        // Update restores in place; delete restores into the
                        // freed slot. `insert_at` covers the delete case and
                        // `update` the update case — try update first.
                        let live =
                            self.heaps.get_mut(&seg).expect("checked").fetch(rid).is_ok();
                        if live {
                            self.wal_append(WalRecord::HeapUpdate {
                                seg,
                                rid,
                                row: old.clone(),
                            })?;
                            self.heaps.get_mut(&seg).expect("checked").update(rid, old)?;
                        } else {
                            self.wal_append(WalRecord::HeapInsertAt {
                                seg,
                                rid,
                                row: old.clone(),
                            })?;
                            self.heaps.get_mut(&seg).expect("checked").insert_at(rid, old)?;
                        }
                        self.cache.write((seg, rid.page));
                    }
                }
                UndoOp::IotInsert { seg, key } => {
                    if self.iots.contains_key(&seg) {
                        self.wal_append(WalRecord::IotDelete { seg, key: key.clone() })?;
                        self.iots.get_mut(&seg).expect("checked").delete(&key);
                    }
                }
                UndoOp::IotReplace { seg, old } => {
                    // The key still exists, so upsert preserves its ordinal.
                    if self.iots.contains_key(&seg) {
                        self.wal_append(WalRecord::IotUpsert { seg, row: old.clone() })?;
                        self.iots.get_mut(&seg).expect("checked").upsert(old)?;
                    }
                }
                UndoOp::IotDelete { seg, old, ord } => {
                    // Restore under the original ordinal so logical rowids
                    // held by secondary indexes stay valid after rollback.
                    if self.iots.contains_key(&seg) {
                        self.wal_append(WalRecord::IotInsertOrd {
                            seg,
                            row: old.clone(),
                            ord,
                        })?;
                        self.iots.get_mut(&seg).expect("checked").insert_with_ordinal(old, ord)?;
                    }
                }
                UndoOp::LobAllocate { lob } => {
                    self.wal_append(WalRecord::LobFree { lob })?;
                    let _ = self.lobs.free(lob);
                }
                UndoOp::LobModify { lob, old } | UndoOp::LobFree { lob, old } => {
                    self.wal_append(WalRecord::LobRestore { lob, bytes: old.clone() })?;
                    self.lobs.restore(lob, old);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use extidx_common::Value;

    fn row(i: i64) -> Row {
        vec![Value::Integer(i)]
    }

    #[test]
    fn heap_rollback_restores_all_three_ops() {
        let mut e = StorageEngine::new(64);
        let seg = e.create_heap().unwrap();
        let keep = e.heap_insert(seg, row(1), None).unwrap();
        let doomed = e.heap_insert(seg, row(2), None).unwrap();

        let mut undo = UndoLog::new();
        let added = e.heap_insert(seg, row(3), Some(&mut undo)).unwrap();
        e.heap_update(seg, keep, row(100), Some(&mut undo)).unwrap();
        e.heap_delete(seg, doomed, Some(&mut undo)).unwrap();

        e.rollback(&mut undo).unwrap();
        assert_eq!(e.heap_fetch(seg, keep).unwrap(), row(1));
        assert_eq!(e.heap_fetch(seg, doomed).unwrap(), row(2));
        assert!(e.heap_fetch(seg, added).is_err());
        assert_eq!(e.heap(seg).unwrap().row_count(), 2);
    }

    #[test]
    fn iot_rollback_restores() {
        let mut e = StorageEngine::new(64);
        let seg = e.create_iot(1).unwrap();
        e.iot_insert(seg, vec![Value::Integer(1), Value::from("old")], None).unwrap();

        let mut undo = UndoLog::new();
        e.iot_insert(seg, vec![Value::Integer(2), Value::from("new")], Some(&mut undo)).unwrap();
        e.iot_upsert(seg, vec![Value::Integer(1), Value::from("changed")], Some(&mut undo)).unwrap();
        e.iot_delete(seg, &Key::single(Value::Integer(1)), Some(&mut undo)).unwrap();

        e.rollback(&mut undo).unwrap();
        let got = e.iot_get(seg, &Key::single(Value::Integer(1))).unwrap().unwrap();
        assert_eq!(got[1], Value::from("old"));
        assert!(e.iot_get(seg, &Key::single(Value::Integer(2))).unwrap().is_none());
    }

    #[test]
    fn lob_rollback_restores_bytes() {
        let mut e = StorageEngine::new(64);
        let mut undo = UndoLog::new();
        let keep = e.lob_allocate(None).unwrap();
        e.lob_write(keep, 0, b"stable", None).unwrap();

        e.lob_write(keep, 0, b"CLOBBERED!", Some(&mut undo)).unwrap();
        let temp = e.lob_allocate(Some(&mut undo)).unwrap();
        e.lob_write(temp, 0, b"scratch", Some(&mut undo)).unwrap();

        e.rollback(&mut undo).unwrap();
        assert_eq!(e.lob_read_all(keep).unwrap(), b"stable");
        assert!(e.lob_read_all(temp).is_err(), "rolled-back allocation is gone");
    }

    #[test]
    fn external_files_survive_rollback() {
        let mut e = StorageEngine::new(64);
        let mut undo = UndoLog::new();
        let seg = e.create_heap().unwrap();
        e.heap_insert(seg, row(1), Some(&mut undo)).unwrap();
        e.files().create("external.idx");
        e.files().write("external.idx", b"orphaned index entry").unwrap();

        e.rollback(&mut undo).unwrap();
        // Database state rolled back…
        assert_eq!(e.heap(seg).unwrap().row_count(), 0);
        // …but the external file kept the now-inconsistent data (§5).
        assert_eq!(e.files().read("external.idx").unwrap(), b"orphaned index entry");
    }

    #[test]
    fn drop_segment_discards_cache_pages() {
        let mut e = StorageEngine::new(64);
        let seg = e.create_heap().unwrap();
        e.heap_insert(seg, row(1), None).unwrap();
        assert!(e.cache().resident_pages() > 0);
        e.drop_segment(seg).unwrap();
        assert_eq!(e.cache().resident_pages(), 0);
        assert!(e.heap(seg).is_err());
    }

    #[test]
    fn truncate_works_for_both_kinds() {
        let mut e = StorageEngine::new(64);
        let h = e.create_heap().unwrap();
        let t = e.create_iot(1).unwrap();
        e.heap_insert(h, row(1), None).unwrap();
        e.iot_insert(t, vec![Value::Integer(1)], None).unwrap();
        e.truncate_segment(h).unwrap();
        e.truncate_segment(t).unwrap();
        assert_eq!(e.heap(h).unwrap().row_count(), 0);
        assert_eq!(e.iot(t).unwrap().row_count(), 0);
    }

    #[test]
    fn iot_logical_rowids_survive_update_and_rollback() {
        let mut e = StorageEngine::new(64);
        let seg = e.create_iot(1).unwrap();
        let rid = e.iot_insert(seg, vec![Value::Integer(7), Value::from("v1")], None).unwrap();
        assert_eq!(e.iot_fetch_by_rowid(seg, rid).unwrap()[1], Value::from("v1"));

        // In-place replace keeps the logical rowid.
        let (_, rid2) = e.iot_upsert(seg, vec![Value::Integer(7), Value::from("v2")], None).unwrap();
        assert_eq!(rid, rid2);
        assert_eq!(e.iot_rowid(seg, &Key::single(Value::Integer(7))).unwrap(), Some(rid));

        // Delete + rollback restores the row under the same rowid.
        let mut undo = UndoLog::new();
        e.iot_delete(seg, &Key::single(Value::Integer(7)), Some(&mut undo)).unwrap();
        assert!(e.iot_fetch_by_rowid(seg, rid).is_err());
        e.rollback(&mut undo).unwrap();
        assert_eq!(e.iot_fetch_by_rowid(seg, rid).unwrap()[1], Value::from("v2"));

        // Range scan hands back the same rowids.
        let pairs = e.iot_range_with_rids(seg, None, None).unwrap();
        assert_eq!(pairs, vec![(rid, vec![Value::Integer(7), Value::from("v2")])]);
    }

    #[test]
    fn repeated_point_probes_hit_cache() {
        let mut e = StorageEngine::new(1024);
        let seg = e.create_iot(1).unwrap();
        for i in 0..100 {
            e.iot_insert(seg, vec![Value::Integer(i), Value::from("v")], None).unwrap();
        }
        e.cache().reset_stats();
        let key = Key::single(Value::Integer(42));
        e.iot_get(seg, &key).unwrap();
        let cold = e.cache_stats();
        e.iot_get(seg, &key).unwrap();
        let warm = e.cache_stats().since(&cold);
        assert_eq!(warm.physical_reads, 0, "second probe should be fully cached");
    }
}
