//! Large-object storage with a file-like interface.
//!
//! LOBs hold unstructured bytes out-of-line and are addressed by
//! [`LobRef`] locators. The interface deliberately mirrors a file API
//! (read at offset, write at offset, append, length, truncate) because the
//! paper's chemistry case study (§3.2.4) hinges on exactly that: "Since
//! LOBs can be accessed and manipulated with a file-like interface,
//! minimal changes were required to the index management software" when
//! Daylight migrated its file-based index into database LOBs.
//!
//! I/O accounting: each operation reports the chunk pages it touched so
//! the engine can charge the buffer cache — this is what makes LOB-stored
//! index data benefit from the database cache ("data is cached in-memory
//! for subsequent operations") while file-stored data does not.

use std::collections::HashMap;

use extidx_common::{Error, LobRef, Result};

use crate::page::PAGE_SIZE;

/// Pages touched by a LOB operation: `(reads, writes)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LobIoCharge {
    pub page_reads: usize,
    pub page_writes: usize,
}

/// The LOB segment: all large objects in the database.
#[derive(Debug, Default, Clone)]
pub struct LobStore {
    lobs: HashMap<LobRef, Vec<u8>>,
    next: u64,
}

fn pages_spanned(offset: usize, len: usize) -> usize {
    if len == 0 {
        return 0;
    }
    let first = offset / PAGE_SIZE;
    let last = (offset + len - 1) / PAGE_SIZE;
    last - first + 1
}

impl LobStore {
    /// Create an empty LOB segment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a new, empty LOB and return its locator.
    pub fn allocate(&mut self) -> LobRef {
        self.next += 1;
        let r = LobRef(self.next);
        self.lobs.insert(r, Vec::new());
        r
    }

    /// The locator [`LobStore::allocate`] would assign next (WAL
    /// log-before-apply support for ref-explicit allocation records).
    pub fn peek_next_ref(&self) -> LobRef {
        LobRef(self.next + 1)
    }

    /// Allocate a specific locator (WAL replay of a ref-explicit record —
    /// commit-order replay must reproduce the live run's assignments).
    pub fn allocate_at(&mut self, r: LobRef) {
        self.next = self.next.max(r.0);
        self.lobs.insert(r, Vec::new());
    }

    /// Total number of LOBs.
    pub fn lob_count(&self) -> usize {
        self.lobs.len()
    }

    /// Total modeled pages across all LOBs.
    pub fn page_count(&self) -> usize {
        self.lobs
            .values()
            .map(|b| b.len().div_ceil(PAGE_SIZE))
            .sum()
    }

    fn get(&self, r: LobRef) -> Result<&Vec<u8>> {
        self.lobs.get(&r).ok_or_else(|| Error::Storage(format!("{r}: no such LOB")))
    }

    fn get_mut(&mut self, r: LobRef) -> Result<&mut Vec<u8>> {
        self.lobs.get_mut(&r).ok_or_else(|| Error::Storage(format!("{r}: no such LOB")))
    }

    /// Length of the LOB in bytes.
    pub fn length(&self, r: LobRef) -> Result<u64> {
        Ok(self.get(r)?.len() as u64)
    }

    /// Read `len` bytes starting at `offset` (short read at end-of-lob).
    pub fn read(&self, r: LobRef, offset: u64, len: usize) -> Result<(Vec<u8>, LobIoCharge)> {
        let data = self.get(r)?;
        let off = (offset as usize).min(data.len());
        let end = (off + len).min(data.len());
        let out = data[off..end].to_vec();
        let charge = LobIoCharge { page_reads: pages_spanned(off, out.len()).max(1), page_writes: 0 };
        Ok((out, charge))
    }

    /// Read the whole LOB.
    pub fn read_all(&self, r: LobRef) -> Result<(Vec<u8>, LobIoCharge)> {
        let data = self.get(r)?;
        let charge = LobIoCharge { page_reads: pages_spanned(0, data.len()).max(1), page_writes: 0 };
        Ok((data.clone(), charge))
    }

    /// Write bytes at `offset`, extending (zero-filled) if needed.
    pub fn write(&mut self, r: LobRef, offset: u64, bytes: &[u8]) -> Result<LobIoCharge> {
        let data = self.get_mut(r)?;
        let off = offset as usize;
        if data.len() < off + bytes.len() {
            data.resize(off + bytes.len(), 0);
        }
        data[off..off + bytes.len()].copy_from_slice(bytes);
        Ok(LobIoCharge { page_reads: 0, page_writes: pages_spanned(off, bytes.len()).max(1) })
    }

    /// Append bytes at the end; returns the offset written at.
    pub fn append(&mut self, r: LobRef, bytes: &[u8]) -> Result<(u64, LobIoCharge)> {
        let off = self.get(r)?.len() as u64;
        let charge = self.write(r, off, bytes)?;
        Ok((off, charge))
    }

    /// Extend the LOB to at least `len` bytes, filling new space with
    /// `fill`. Used by WAL replay of offset-explicit appends: a gap below
    /// the recorded offset means an aborted transaction's append was
    /// skipped, and live rollback hole-filled that space with `0xFF`
    /// tombstone bytes — replay must reproduce the same image.
    pub fn pad_to(&mut self, r: LobRef, len: u64, fill: u8) -> Result<()> {
        let data = self.get_mut(r)?;
        if data.len() < len as usize {
            data.resize(len as usize, fill);
        }
        Ok(())
    }

    /// Replace the whole LOB content.
    pub fn overwrite(&mut self, r: LobRef, bytes: &[u8]) -> Result<LobIoCharge> {
        let data = self.get_mut(r)?;
        data.clear();
        data.extend_from_slice(bytes);
        Ok(LobIoCharge { page_reads: 0, page_writes: pages_spanned(0, bytes.len()).max(1) })
    }

    /// Truncate to `len` bytes.
    pub fn truncate(&mut self, r: LobRef, len: u64) -> Result<()> {
        let data = self.get_mut(r)?;
        data.truncate(len as usize);
        Ok(())
    }

    /// Free the LOB entirely.
    pub fn free(&mut self, r: LobRef) -> Result<Vec<u8>> {
        self.lobs
            .remove(&r)
            .ok_or_else(|| Error::Storage(format!("{r}: no such LOB")))
    }

    /// Restore a previously freed LOB (undo support).
    pub fn restore(&mut self, r: LobRef, bytes: Vec<u8>) {
        self.next = self.next.max(r.0);
        self.lobs.insert(r, bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_write_read_roundtrip() {
        let mut s = LobStore::new();
        let r = s.allocate();
        s.write(r, 0, b"hello world").unwrap();
        let (bytes, _) = s.read(r, 6, 5).unwrap();
        assert_eq!(&bytes, b"world");
        assert_eq!(s.length(r).unwrap(), 11);
    }

    #[test]
    fn write_beyond_end_zero_fills() {
        let mut s = LobStore::new();
        let r = s.allocate();
        s.write(r, 4, b"xy").unwrap();
        let (all, _) = s.read_all(r).unwrap();
        assert_eq!(all, vec![0, 0, 0, 0, b'x', b'y']);
    }

    #[test]
    fn append_reports_offset() {
        let mut s = LobStore::new();
        let r = s.allocate();
        let (o1, _) = s.append(r, b"abc").unwrap();
        let (o2, _) = s.append(r, b"def").unwrap();
        assert_eq!((o1, o2), (0, 3));
        assert_eq!(s.read_all(r).unwrap().0, b"abcdef");
    }

    #[test]
    fn short_read_at_end() {
        let mut s = LobStore::new();
        let r = s.allocate();
        s.write(r, 0, b"abc").unwrap();
        let (bytes, _) = s.read(r, 2, 100).unwrap();
        assert_eq!(&bytes, b"c");
    }

    #[test]
    fn page_charges_span_chunks() {
        let mut s = LobStore::new();
        let r = s.allocate();
        let big = vec![7u8; PAGE_SIZE * 3 + 10];
        let charge = s.write(r, 0, &big).unwrap();
        assert_eq!(charge.page_writes, 4);
        let (_, rc) = s.read(r, (PAGE_SIZE - 1) as u64, 2).unwrap();
        assert_eq!(rc.page_reads, 2, "read straddling a page boundary touches 2 pages");
    }

    #[test]
    fn free_and_restore() {
        let mut s = LobStore::new();
        let r = s.allocate();
        s.write(r, 0, b"data").unwrap();
        let bytes = s.free(r).unwrap();
        assert!(s.read_all(r).is_err());
        s.restore(r, bytes);
        assert_eq!(s.read_all(r).unwrap().0, b"data");
    }

    #[test]
    fn truncate_shrinks() {
        let mut s = LobStore::new();
        let r = s.allocate();
        s.write(r, 0, b"abcdef").unwrap();
        s.truncate(r, 2).unwrap();
        assert_eq!(s.read_all(r).unwrap().0, b"ab");
    }

    #[test]
    fn locators_are_distinct() {
        let mut s = LobStore::new();
        assert_ne!(s.allocate(), s.allocate());
        assert_eq!(s.lob_count(), 2);
    }
}
