//! The concurrent differential oracle (see crates/qgen/src/concurrent.rs).
//!
//! N seeded sessions interleave under a deterministic scheduler: explicit
//! transactions, autocommit statements, snapshot queries, commits, and
//! rollbacks. Every query is checked against a per-transaction mirror of
//! what its snapshot must see (under every forcible plan — FULL and each
//! domain index), and at the end the committed history is replayed, in
//! commit order, on a fresh serial twin database whose table contents
//! must be bag-equal to the concurrent survivor.
//!
//! `MVCC_SEED` pins the default run's seed (decimal or 0x-hex).

use extidx_qgen::{conflict_storm, lost_update_demo, run_concurrent_seed, run_concurrent_seed_opts, ChaosOpts};

const STEPS: usize = 120;

fn seed_from_env() -> u64 {
    match std::env::var("MVCC_SEED") {
        Ok(s) => {
            let s = s.trim();
            let parsed = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => s.parse(),
            };
            parsed.unwrap_or_else(|_| panic!("MVCC_SEED must be a u64, got {s:?}"))
        }
        Err(_) => 1,
    }
}

/// The default gate: three seeds, three sessions each, every snapshot
/// query bag-equal to its mirror and the final state bag-equal to the
/// commit-order serial replay.
#[test]
fn concurrent_sessions_match_serial_twin() {
    let base = seed_from_env();
    for seed in [base, base + 1, base + 2] {
        let report = run_concurrent_seed(seed, 3, STEPS).unwrap_or_else(|d| {
            panic!("concurrent oracle diverged (rerun with MVCC_SEED={seed})\n{d}")
        });
        assert!(report.queries > 0, "seed {seed}: no snapshot queries exercised");
        assert!(report.commits > 0, "seed {seed}: no transactions committed");
    }
}

/// More sessions than the default gate: the scheduler must still produce
/// a committed history the serial twin agrees with.
#[test]
fn four_sessions_match_serial_twin() {
    let seed = seed_from_env();
    let report = run_concurrent_seed(seed, 4, STEPS)
        .unwrap_or_else(|d| panic!("4-session oracle diverged (MVCC_SEED={seed})\n{d}"));
    assert!(report.commits > 0);
}

/// The acceptance check for the oracle itself: with first-writer-wins
/// validation disabled, a handcrafted write-skew interleaving commits a
/// lost update and the serial twin exposes it; with validation on, the
/// same interleaving ends in `Error::WriteConflict` and the twin agrees.
#[test]
fn lost_update_is_caught_without_enforcement_and_prevented_with() {
    let divergence = lost_update_demo(false)
        .expect("with conflict checks off, the planted lost update must reach the oracle");
    assert!(
        divergence.contains("x") || !divergence.is_empty(),
        "divergence report should carry the mismatched rows: {divergence}"
    );
    assert!(
        lost_update_demo(true).is_none(),
        "with conflict checks on, first-writer-wins must abort the second writer"
    );
}

/// Long multi-seed sweep, run by scripts/ci.sh via `--include-ignored`.
/// Transparent conflict retry and the maintenance daemon are both live
/// (`Server::new` defaults), and each seed also runs with the seeded
/// random-vacuum cadence — the bag-equality and serial-twin oracles must
/// stay green no matter when maintenance fires or how often statements
/// are invisibly retried.
#[test]
#[ignore = "long sweep; run via scripts/ci.sh or --include-ignored"]
fn concurrent_multi_seed_sweep() {
    for seed in 1..=8u64 {
        for sessions in [3, 4] {
            if let Err(d) = run_concurrent_seed(seed, sessions, STEPS) {
                panic!("seed {seed} x{sessions} diverged (MVCC_SEED={seed})\n{d}");
            }
            if let Err(d) =
                run_concurrent_seed_opts(seed, sessions, STEPS, ChaosOpts::random_vacuum(seed))
            {
                panic!("seed {seed} x{sessions} (random vacuum) diverged (MVCC_SEED={seed})\n{d}");
            }
        }
    }
}

/// Conflict storm: OS-thread writers racing commutative increments on a
/// few hot rows against an explicit-transaction blocker. Transparent
/// retry must keep every autocommit conflict invisible and the final sum
/// must account for every successful increment exactly once. Run by
/// scripts/ci.sh.
#[test]
#[ignore = "thread stress; run via scripts/ci.sh or --include-ignored"]
fn conflict_storm_stays_exact() {
    for seed in [1u64, 2, 3] {
        let report = conflict_storm(seed, 4, 60)
            .unwrap_or_else(|e| panic!("storm seed {seed}: {e}"));
        assert_eq!(
            report.surfaced_autocommit_conflicts, 0,
            "seed {seed}: transparent retry must absorb autocommit conflicts: {report:?}"
        );
        assert!(report.increments > 0, "seed {seed}: storm never incremented");
    }
}

/// Real OS threads against one `Server`: four writers race autocommit
/// inserts into one table (disjoint id ranges, retry on conflict) while
/// interleaving reads. Checks the committed row count and that no
/// partial statement ever surfaces. Run by scripts/ci.sh.
#[test]
#[ignore = "thread stress; run via scripts/ci.sh or --include-ignored"]
fn threaded_insert_stress() {
    use extidx::sql::{Database, Server};

    const THREADS: u64 = 4;
    const ROWS_PER_THREAD: u64 = 50;

    let server = Server::new(Database::new());
    {
        let mut s = server.session();
        s.execute("CREATE TABLE STRESS (id INTEGER, worker INTEGER)").unwrap();
    }
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let mut sess = server.session();
            scope.spawn(move || {
                for i in 0..ROWS_PER_THREAD {
                    let id = t * 10_000 + i;
                    let sql = format!("INSERT INTO STRESS (id, worker) VALUES ({id}, {t})");
                    // First-writer-wins can abort either side of a racing
                    // pair; the ids are disjoint so a retry must succeed.
                    let mut tries = 0;
                    while let Err(e) = sess.execute(&sql) {
                        tries += 1;
                        assert!(
                            matches!(e, extidx::common::Error::WriteConflict { .. }),
                            "worker {t}: unexpected error {e}"
                        );
                        assert!(tries < 100, "worker {t}: livelock on id {id}");
                    }
                    if i % 10 == 0 {
                        let rows = sess.query("SELECT COUNT(*) FROM STRESS").unwrap();
                        assert_eq!(rows.len(), 1, "COUNT(*) must return one row");
                    }
                }
            });
        }
    });
    let mut s = server.session();
    let rows = s.query("SELECT COUNT(*) FROM STRESS").unwrap();
    assert_eq!(
        rows[0][0],
        extidx::common::Value::Integer((THREADS * ROWS_PER_THREAD) as i64),
        "every retried insert must be durable exactly once"
    );
}
