//! E8 (§2.5): the ODCIIndexFetch batch interface — query latency as the
//! per-fetch batch size sweeps from row-at-a-time to bulk.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use extidx_bench::text_fixture;

fn bench_batch_fetch(c: &mut Criterion) {
    let mut fx = text_fixture(2000, 50, 1000, 42).expect("fixture");
    let term = fx.gen.term(25).to_string();
    let sql = format!("SELECT id FROM docs WHERE Contains(body, '{term}')");

    let mut group = c.benchmark_group("e8_batch_fetch");
    group.sample_size(10);
    for batch in [1usize, 8, 64, 512] {
        fx.db.set_batch_size(batch);
        group.bench_with_input(BenchmarkId::new("fetch_batch", batch), &sql, |b, sql| {
            b.iter(|| fx.db.query(sql).expect("query"))
        });
    }
    fx.db.set_batch_size(32);
    group.finish();
}

criterion_group!(benches, bench_batch_fetch);
criterion_main!(benches);
