//! Parallel-build determinism: a `PARALLEL <n>` index build must produce
//! **byte-identical** index contents to a serial build, for every
//! cartridge. The partition→merge pipeline keeps all server callbacks on
//! the coordinating thread and merges worker results in input order, so
//! this is a structural guarantee — these tests pin it down.

use extidx::spatial::{geometry_sql, Geometry, Mbr};
use extidx::sql::Database;
use extidx::vir::SignatureWorkload;
use extidx_common::Value;

fn full_db() -> Database {
    let mut db = Database::with_cache_pages(8192);
    extidx::text::install(&mut db).unwrap();
    extidx::spatial::install(&mut db).unwrap();
    extidx::vir::install(&mut db).unwrap();
    extidx::chem::install(&mut db).unwrap();
    db
}

/// Dump a storage table as sorted display strings (storage tables are
/// IOTs, but sorting in the test keeps the comparison order-independent).
fn dump(db: &mut Database, table: &str) -> Vec<String> {
    let mut rows: Vec<String> =
        db.query(&format!("SELECT * FROM {table}")).unwrap().iter().map(|r| format!("{r:?}")).collect();
    rows.sort();
    rows
}

/// Build the same index under each PARAMETERS string (on identically
/// populated databases) and return the dumped contents of its storage
/// tables.
fn build_variants(
    setup: &dyn Fn(&mut Database),
    create_index: &dyn Fn(&mut Database, &str),
    storage_tables: &[&str],
) -> Vec<Vec<String>> {
    // Serial, keyed `:Parallel 4`, and Oracle-style bare `PARALLEL 4`.
    ["", ":Parallel 4", "PARALLEL 4"]
        .iter()
        .map(|params| {
            let mut db = full_db();
            setup(&mut db);
            create_index(&mut db, params);
            storage_tables.iter().flat_map(|t| dump(&mut db, t)).collect()
        })
        .collect()
}

fn assert_all_identical(variants: Vec<Vec<String>>, what: &str) {
    let serial = &variants[0];
    assert!(!serial.is_empty(), "{what}: serial build produced an empty index");
    for (i, v) in variants.iter().enumerate().skip(1) {
        assert_eq!(v, serial, "{what}: variant {i} differs from the serial build");
    }
}

#[test]
fn text_parallel_build_is_deterministic() {
    let setup = |db: &mut Database| {
        db.execute("CREATE TABLE docs (id INTEGER, body VARCHAR2(500))").unwrap();
        let words = ["lake", "cabin", "sauna", "dock", "view", "transit", "loft", "estate"];
        for i in 0..60i64 {
            let body: Vec<&str> =
                (0..6).map(|j| words[((i as usize) * 7 + j * 3) % words.len()]).collect();
            db.execute_with(
                "INSERT INTO docs VALUES (?, ?)",
                &[Value::Integer(i), body.join(" ").into()],
            )
            .unwrap();
        }
    };
    let create = |db: &mut Database, params: &str| {
        let p = if params.is_empty() { String::new() } else { format!(" PARAMETERS ('{params}')") };
        db.execute(&format!("CREATE INDEX dt ON docs(body) INDEXTYPE IS TextIndexType{p}"))
            .unwrap();
    };
    assert_all_identical(build_variants(&setup, &create, &["DR$DT$I"]), "text");
}

#[test]
fn spatial_parallel_build_is_deterministic() {
    let setup = |db: &mut Database| {
        db.execute("CREATE TABLE places (id INTEGER, area SDO_GEOMETRY)").unwrap();
        for i in 0..50i64 {
            let x = (i % 10) as f64 * 37.0;
            let y = (i / 10) as f64 * 53.0;
            let g = Geometry::Rect(Mbr { xmin: x, ymin: y, xmax: x + 30.0, ymax: y + 40.0 });
            db.execute(&format!("INSERT INTO places VALUES ({i}, {})", geometry_sql(&g))).unwrap();
        }
    };
    let create = |db: &mut Database, params: &str| {
        let p = if params.is_empty() { String::new() } else { format!(" PARAMETERS ('{params}')") };
        db.execute(&format!("CREATE INDEX ps ON places(area) INDEXTYPE IS SpatialIndexType{p}"))
            .unwrap();
    };
    assert_all_identical(build_variants(&setup, &create, &["DR$PS$T", "DR$PS$G"]), "spatial");
}

#[test]
fn vir_parallel_build_is_deterministic() {
    let setup = |db: &mut Database| {
        db.execute("CREATE TABLE assets (id INTEGER, img VIR_IMAGE)").unwrap();
        // Seeded workload: every database variant gets the same images.
        let mut wl = SignatureWorkload::new(7);
        for i in 0..50i64 {
            let sig = wl.random();
            db.execute_with(
                "INSERT INTO assets VALUES (?, VIR_IMAGE(?))",
                &[Value::Integer(i), sig.serialize().into()],
            )
            .unwrap();
        }
    };
    let create = |db: &mut Database, params: &str| {
        let p = if params.is_empty() { String::new() } else { format!(" PARAMETERS ('{params}')") };
        db.execute(&format!("CREATE INDEX ai ON assets(img) INDEXTYPE IS VirIndexType{p}"))
            .unwrap();
    };
    assert_all_identical(build_variants(&setup, &create, &["DR$AI$S"]), "vir");
}

#[test]
fn chem_parallel_build_is_deterministic() {
    // The chem store is a LOB of fixed-width records, not a table — the
    // build is deterministic iff the LOB bytes are identical (record
    // order included, so no sorting here).
    let molecules = ["CCO", "CC=O", "c1ccccc1", "CC(C)O", "CCN", "OCC", "CCOC", "CC(=O)O"];
    let lob_bytes = |params: &str| -> Vec<u8> {
        let mut db = full_db();
        db.execute("CREATE TABLE mols (id INTEGER, smiles VARCHAR2(200))").unwrap();
        for i in 0..60i64 {
            db.execute_with(
                "INSERT INTO mols VALUES (?, ?)",
                &[Value::Integer(i), molecules[(i as usize) % molecules.len()].into()],
            )
            .unwrap();
        }
        let p = if params.is_empty() { String::new() } else { format!(" PARAMETERS ('{params}')") };
        db.execute(&format!("CREATE INDEX mi ON mols(smiles) INDEXTYPE IS ChemIndexType{p}"))
            .unwrap();
        let lob =
            db.query("SELECT data FROM DR$MI$META WHERE id = 1").unwrap()[0][0].as_lob().unwrap();
        db.storage().lob_read_all(lob).unwrap()
    };
    let serial = lob_bytes("");
    assert!(!serial.is_empty(), "chem: serial build produced an empty store");
    assert_eq!(lob_bytes(":Parallel 4"), serial, "chem: ':Parallel 4' differs from serial");
    assert_eq!(lob_bytes("PARALLEL 4"), serial, "chem: bare 'PARALLEL 4' differs from serial");
}

#[test]
fn rtree_parallel_build_is_deterministic() {
    let setup = |db: &mut Database| {
        db.execute("CREATE TABLE zones (id INTEGER, area SDO_GEOMETRY)").unwrap();
        for i in 0..40i64 {
            let x = (i % 8) as f64 * 41.0;
            let y = (i / 8) as f64 * 29.0;
            let g = Geometry::Rect(Mbr { xmin: x, ymin: y, xmax: x + 25.0, ymax: y + 35.0 });
            db.execute(&format!("INSERT INTO zones VALUES ({i}, {})", geometry_sql(&g))).unwrap();
        }
    };
    let create = |db: &mut Database, params: &str| {
        let p = if params.is_empty() { String::new() } else { format!(" PARAMETERS ('{params}')") };
        db.execute(&format!("CREATE INDEX zr ON zones(area) INDEXTYPE IS RtreeIndexType{p}"))
            .unwrap();
    };
    assert_all_identical(build_variants(&setup, &create, &["DR$ZR$R", "DR$ZR$G"]), "rtree");
}
