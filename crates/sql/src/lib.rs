//! # extidx-sql — the host relational engine
//!
//! A compact Oracle8i stand-in hosting the extensible indexing framework:
//! a SQL dialect (parser + AST), a data dictionary, a cost-based optimizer
//! with cartridge-supplied selectivity/cost callbacks, a Volcano-style
//! executor that drives ODCIIndex scan routines in a pipelined fashion,
//! implicit domain-index maintenance on DML, transactions with rollback,
//! and the server-callback surface cartridge code uses to store its index
//! data inside the database.
//!
//! Entry point: [`Database`].
//!
//! ```
//! use extidx_sql::Database;
//!
//! let mut db = Database::new();
//! db.execute("CREATE TABLE t (id INTEGER, name VARCHAR2(20))").unwrap();
//! db.execute("INSERT INTO t VALUES (1, 'ada'), (2, 'grace')").unwrap();
//! let rows = db.query("SELECT name FROM t WHERE id = 2").unwrap();
//! assert_eq!(rows[0][0].to_string(), "grace");
//! ```

pub mod ast;
pub mod catalog;
pub mod database;
pub mod exec_ctx;
pub mod executor;
pub mod expr;
pub mod governor;
pub mod lexer;
pub mod optimizer;
pub mod parser;
pub mod plan;
pub mod session;

pub use database::{Database, QueryCursor, StmtResult};
pub use governor::{GovernorConfig, ServerGovernor};
pub use session::{Server, Session};
// Statement cancellation tokens are minted by `Session::cancel_token`.
pub use extidx_core::governor::CancelToken;
// Durability surface: callers hand a `DurableMedium` to
// `Database::enable_durability` and arm `WAL_FAULT_POINTS` to simulate
// crashes, so the types are re-exported here.
pub use extidx_storage::{DurableMedium, WalStats, WAL_FAULT_POINTS};
