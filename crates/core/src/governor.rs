//! Cooperative statement cancellation and deadlines.
//!
//! The paper's framework runs cartridge code *inside* the server, so a
//! runaway statement — a scan over a huge result, a cartridge routine
//! that loops through server callbacks — would otherwise hold the
//! engine's write lock (or a read lock the vacuum daemon is waiting
//! behind) forever. This module supplies the server-resident guard: a
//! per-statement [`CancelToken`] plus an optional deadline, installed
//! thread-locally for the duration of one statement and *polled
//! cooperatively*:
//!
//! - executor loops (`next`/`next_batch`, DML row loops) call [`poll`],
//!   which returns [`Error::StatementTimeout`] once the deadline or a
//!   cancellation is observed;
//! - ODCI crossings are charged through [`sandbox::tick`]
//!   (`crate::sandbox`), which consults the same state and unwinds with
//!   a [`CancelUnwind`] sentinel so arbitrary cartridge code is exited
//!   at its next server callback — `sandboxed_call` converts the
//!   sentinel into `Error::StatementTimeout` (never a `CartridgeFault`:
//!   the cartridge did nothing wrong, so the health breaker is not fed).
//!
//! Deadlines come in two shapes: wall-clock (`SET STATEMENT_TIMEOUT`,
//! milliseconds) and deterministic poll-count (`SET
//! STATEMENT_TIMEOUT_TICKS`), the latter for tests that need the timeout
//! to fire at an exact, reproducible point in execution.
//!
//! **One-shot semantics**: once a timeout fires, the guard disarms
//! itself. The statement's rollback/compensation machinery runs under
//! the same thread-local guard, and it must never be interrupted by the
//! very timeout that triggered it.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use extidx_common::{Error, Result};

/// A shareable cancellation flag for one session's in-flight statement.
/// Clone it out of the session (`Session::cancel_token`) and call
/// [`CancelToken::cancel`] from any thread; the running statement
/// observes it at its next cooperative poll.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation of the statement currently guarding on this
    /// token. Sticky until [`CancelToken::reset`].
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }

    /// Clear the flag (each new statement starts uncancelled).
    pub fn reset(&self) {
        self.flag.store(false, Ordering::SeqCst);
    }
}

/// Sentinel unwind payload raised by [`sandbox_poll`] inside a sandboxed
/// ODCI crossing; `sandbox::sandboxed_call` downcasts it back into
/// [`Error::StatementTimeout`].
pub struct CancelUnwind(pub String);

struct ActiveStmt {
    token: CancelToken,
    deadline: Option<Instant>,
    /// Deterministic deadline: the statement times out after this many
    /// cooperative polls (executor loop iterations + sandbox ticks).
    poll_limit: Option<u64>,
    polls: u64,
    /// One-shot: set after the first expiry so rollback/compensation
    /// under the same guard is never re-interrupted.
    fired: bool,
}

thread_local! {
    static ACTIVE: RefCell<Option<ActiveStmt>> = const { RefCell::new(None) };
}

/// RAII guard installing the statement's cancellation state on this
/// thread; restores the previous state (normally `None`) on drop.
pub struct StmtGuard {
    prev: Option<ActiveStmt>,
}

/// Install cancellation state for one statement. `timeout` is the
/// wall-clock deadline, `poll_limit` the deterministic poll-count
/// deadline; either, both, or neither may be set (with neither, only
/// explicit [`CancelToken::cancel`] can interrupt the statement).
pub fn begin_statement(
    token: CancelToken,
    timeout: Option<Duration>,
    poll_limit: Option<u64>,
) -> StmtGuard {
    let stmt = ActiveStmt {
        token,
        deadline: timeout.map(|d| Instant::now() + d),
        poll_limit,
        polls: 0,
        fired: false,
    };
    let prev = ACTIVE.with(|a| a.borrow_mut().replace(stmt));
    StmtGuard { prev }
}

impl Drop for StmtGuard {
    fn drop(&mut self) {
        ACTIVE.with(|a| {
            *a.borrow_mut() = self.prev.take();
        });
    }
}

/// Charge one poll and return the expiry reason if the statement just
/// crossed its deadline (or was cancelled).
fn expire(st: &mut ActiveStmt) -> Option<String> {
    if st.fired {
        return None;
    }
    st.polls += 1;
    if st.token.is_cancelled() {
        st.fired = true;
        return Some("cancelled by client".to_string());
    }
    if let Some(limit) = st.poll_limit {
        if st.polls > limit {
            st.fired = true;
            return Some(format!("deterministic deadline: poll limit {limit} exceeded"));
        }
    }
    if let Some(deadline) = st.deadline {
        if Instant::now() >= deadline {
            st.fired = true;
            return Some("statement_timeout exceeded".to_string());
        }
    }
    None
}

/// Cooperative cancellation check for engine-side loops. Free (a
/// thread-local branch) when no statement guard is installed.
pub fn poll() -> Result<()> {
    ACTIVE.with(|a| {
        let mut guard = a.borrow_mut();
        match guard.as_mut() {
            None => Ok(()),
            Some(st) => match expire(st) {
                None => Ok(()),
                Some(reason) => Err(Error::statement_timeout(reason)),
            },
        }
    })
}

/// Cancellation check for sandboxed ODCI crossings: unwinds with a
/// [`CancelUnwind`] sentinel (caught and classified by
/// `sandbox::sandboxed_call`) so cartridge code is exited at its next
/// server callback even though it cannot return our `Result`.
pub fn sandbox_poll() {
    let reason = ACTIVE.with(|a| a.borrow_mut().as_mut().and_then(expire));
    if let Some(reason) = reason {
        std::panic::panic_any(CancelUnwind(reason));
    }
}

/// Disarm the active statement's deadline. Called at the commit point of
/// an autocommit statement: once its work is done, the commit itself must
/// never be interrupted — a half-committed statement is worse than a late
/// one. Uses the same one-shot flag an expiry sets, so subsequent polls
/// are free.
pub fn disarm() {
    ACTIVE.with(|a| {
        if let Some(st) = a.borrow_mut().as_mut() {
            st.fired = true;
        }
    });
}

/// Re-arm a guard disarmed by [`disarm`] — the transparent conflict-retry
/// loop re-runs the statement, which must observe the original deadline
/// again. The poll counter keeps accumulating across attempts, so a
/// deterministic poll-limit deadline stays reproducible.
pub fn rearm() {
    ACTIVE.with(|a| {
        if let Some(st) = a.borrow_mut().as_mut() {
            st.fired = false;
        }
    });
}

/// Polls charged so far by the active statement (0 without a guard).
/// Exposed for tests pinning deterministic timeout points.
pub fn polls_used() -> u64 {
    ACTIVE.with(|a| a.borrow().as_ref().map(|s| s.polls).unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poll_without_guard_is_free() {
        for _ in 0..100 {
            poll().unwrap();
        }
        assert_eq!(polls_used(), 0);
    }

    #[test]
    fn poll_limit_fires_deterministically() {
        let _g = begin_statement(CancelToken::new(), None, Some(3));
        poll().unwrap();
        poll().unwrap();
        poll().unwrap();
        let err = poll().unwrap_err();
        assert!(matches!(err, Error::StatementTimeout { .. }), "got {err}");
        // One-shot: the rollback path keeps polling without being shot.
        poll().unwrap();
        poll().unwrap();
    }

    #[test]
    fn cancel_token_interrupts_and_resets() {
        let token = CancelToken::new();
        {
            let _g = begin_statement(token.clone(), None, None);
            poll().unwrap();
            token.cancel();
            let err = poll().unwrap_err();
            assert!(err.to_string().contains("cancelled"), "got {err}");
        }
        token.reset();
        let _g = begin_statement(token, None, None);
        poll().unwrap();
    }

    #[test]
    fn wall_clock_deadline_fires() {
        let _g = begin_statement(CancelToken::new(), Some(Duration::ZERO), None);
        let err = poll().unwrap_err();
        assert!(err.to_string().contains("statement_timeout"), "got {err}");
    }

    #[test]
    fn guards_nest_and_restore() {
        let _outer = begin_statement(CancelToken::new(), None, Some(1000));
        poll().unwrap();
        assert_eq!(polls_used(), 1);
        {
            let _inner = begin_statement(CancelToken::new(), None, Some(1));
            poll().unwrap();
            assert!(poll().is_err());
        }
        // Outer state restored, its counter untouched by the inner guard.
        assert_eq!(polls_used(), 1);
        poll().unwrap();
    }
}
