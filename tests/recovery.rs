//! Crash-recovery tests: WAL + checkpoint durability (DESIGN.md §4i).
//!
//! The crash model: a [`DurableMedium`] plays the disk — it survives the
//! `Database` instance. A crash is simulated by arming one of the
//! `wal.*` fault points; the armed fault fires inside the medium at the
//! chosen instant, freezes it (nothing reaches "disk" afterwards), and
//! the statement in flight errors out. Dropping the dead `Database` and
//! running `enable_durability` on the surviving medium is process
//! restart + recovery.
//!
//! What must hold at EVERY crash point:
//! - recovered state is bag-equal to the committed prefix (the crashed
//!   statement fully disappears — statement atomicity extends across
//!   process death);
//! - domain indexes over internal tables recover for free via the WAL;
//! - external-file indexes whose files saw post-commit writes come back
//!   `QUARANTINED` and are restored by `ALTER INDEX … REBUILD`;
//! - a crash inside `checkpoint()` loses nothing.

use extidx::core::health::HealthState;
use extidx::sql::Database;
use extidx::spatial::{geometry_sql, SpatialWorkload};
use extidx::storage::wal::{
    FP_WAL_APPEND, FP_WAL_APPLY, FP_WAL_CHECKPOINT, FP_WAL_CHECKPOINT_TRUNCATE, FP_WAL_COMMIT,
};
use extidx::storage::DurableMedium;
use extidx::vir::SignatureWorkload;
use extidx_common::Value;

/// Statement-level crash points (the checkpoint points fire only inside
/// `checkpoint()` and are exercised separately).
const STMT_POINTS: &[&str] = &[FP_WAL_APPEND, FP_WAL_APPLY, FP_WAL_COMMIT];

/// Sorted `SELECT *` bag of one table as display strings.
fn bag(db: &mut Database, table: &str) -> Vec<String> {
    let mut rows: Vec<String> = db
        .query(&format!("SELECT * FROM {table}"))
        .unwrap_or_else(|e| panic!("SELECT * FROM {table}: {e}"))
        .iter()
        .map(|r| format!("{r:?}"))
        .collect();
    rows.sort();
    rows
}

/// Observable state: every table's bag plus every probe's sorted result.
fn observe(db: &mut Database, probes: &[(String, Vec<Value>)]) -> Vec<String> {
    let mut out = Vec::new();
    let mut tables = db.catalog().table_names();
    tables.sort();
    for t in tables {
        out.push(format!("table {t}: {}", bag(db, &t).join(" | ")));
    }
    for (sql, binds) in probes {
        let mut rows: Vec<String> = db
            .query_with(sql, binds)
            .unwrap_or_else(|e| panic!("probe {sql}: {e}"))
            .iter()
            .map(|r| format!("{r:?}"))
            .collect();
        rows.sort();
        out.push(format!("probe {sql}: {}", rows.join(" | ")));
    }
    out
}

/// Crash `db` by arming `point` and running `crash_stmt`; returns the
/// medium for recovery. Panics if the fault never fired (the scenario
/// would be vacuous) or if the statement "succeeded" through a crash.
fn crash(mut db: Database, medium: &DurableMedium, point: &str, crash_stmt: &str) {
    db.fault_injector().arm_fail(point, None, 1);
    let r = db.execute(crash_stmt);
    assert!(
        db.fault_injector().fired() > 0,
        "crash point {point} never fired for: {crash_stmt}"
    );
    assert!(r.is_err(), "statement survived a simulated crash at {point}: {crash_stmt}");
    assert!(medium.is_crashed(), "medium not frozen after crash at {point}");
    // `db` dropped here — the process is dead.
}

// ---- heap / IOT / LOB matrix ------------------------------------------------

/// One storage-shape scenario: committed setup, a crashing mutation, and
/// the invariant that recovery restores exactly the committed prefix.
fn storage_shape_roundtrip(make: impl Fn(&mut Database), crash_stmt: &str, table: &str) {
    for point in STMT_POINTS {
        let medium = DurableMedium::new();
        let committed = {
            let mut db = Database::with_cache_pages(256);
            db.enable_durability(medium.clone()).unwrap();
            make(&mut db);
            let committed = bag(&mut db, table);
            crash(db, &medium, point, crash_stmt);
            committed
        };
        let mut rec = Database::with_cache_pages(256);
        rec.enable_durability(medium.clone()).unwrap();
        assert_eq!(
            bag(&mut rec, table),
            committed,
            "crash at {point} during `{crash_stmt}`: recovered bag != committed prefix"
        );
        // The recovered instance is live: it can mutate and commit again.
        rec.execute(&format!("DELETE FROM {table} WHERE 1 = 0")).unwrap();
    }
}

#[test]
fn heap_crash_points_restore_committed_prefix() {
    storage_shape_roundtrip(
        |db| {
            db.execute("CREATE TABLE h (id INTEGER, val VARCHAR2(40))").unwrap();
            for i in 0..20 {
                db.execute(&format!("INSERT INTO h VALUES ({i}, 'row {i}')")).unwrap();
            }
            db.execute("DELETE FROM h WHERE id >= 15").unwrap();
            db.execute("UPDATE h SET val = 'updated' WHERE id < 3").unwrap();
        },
        "INSERT INTO h VALUES (100, 'uncommitted'), (101, 'also uncommitted')",
        "h",
    );
}

#[test]
fn iot_crash_points_restore_committed_prefix() {
    storage_shape_roundtrip(
        |db| {
            db.execute(
                "CREATE TABLE k (id INTEGER, val VARCHAR2(40), PRIMARY KEY (id)) ORGANIZATION INDEX",
            )
            .unwrap();
            for i in 0..20 {
                db.execute(&format!("INSERT INTO k VALUES ({i}, 'row {i}')")).unwrap();
            }
            db.execute("DELETE FROM k WHERE id >= 15").unwrap();
        },
        "UPDATE k SET val = 'uncommitted' WHERE id < 10",
        "k",
    );
}

#[test]
fn lob_crash_points_restore_committed_prefix() {
    for point in STMT_POINTS {
        let medium = DurableMedium::new();
        {
            let mut db = Database::with_cache_pages(256);
            db.enable_durability(medium.clone()).unwrap();
            db.execute("CREATE TABLE blobs (id INTEGER, data CLOB)").unwrap();
            db.execute("INSERT INTO blobs VALUES (1, 'the committed payload')").unwrap();
            crash(db, &medium, point, "INSERT INTO blobs VALUES (2, 'lost forever')");
        }
        let mut rec = Database::with_cache_pages(256);
        rec.enable_durability(medium.clone()).unwrap();
        let rows = rec.query("SELECT id, data FROM blobs").unwrap();
        assert_eq!(rows.len(), 1, "crash at {point}: uncommitted LOB row survived");
        let Value::Lob(lob) = rows[0][1] else { panic!("expected LOB value") };
        assert_eq!(
            rec.storage().lob_read_all(lob).unwrap(),
            b"the committed payload",
            "crash at {point}: LOB bytes not recovered"
        );
    }
}

// ---- domain-index matrix ----------------------------------------------------

struct Rig {
    name: &'static str,
    /// The domain index's catalog name.
    index_name: &'static str,
    db: Database,
    medium: DurableMedium,
    crash_stmts: Vec<String>,
    probes: Vec<(String, Vec<Value>)>,
    /// Rebuild the same engine shape for the recovered instance.
    install: fn(&mut Database),
}

fn durable(install: fn(&mut Database)) -> (Database, DurableMedium) {
    let mut db = Database::with_cache_pages(4096);
    install(&mut db);
    let medium = DurableMedium::new();
    db.enable_durability(medium.clone()).unwrap();
    (db, medium)
}

fn text_rig() -> Rig {
    fn install(db: &mut Database) {
        extidx::text::install(db).unwrap();
    }
    let (mut db, medium) = durable(install);
    db.execute("CREATE TABLE docs (id INTEGER, body VARCHAR2(200))").unwrap();
    for (id, body) in
        [(1, "ale under the gorse"), (2, "cole and dun ferries"), (3, "gorse hale erg")]
    {
        db.execute_with("INSERT INTO docs VALUES (?, ?)", &[i64::from(id).into(), body.into()])
            .unwrap();
    }
    db.execute("CREATE INDEX dt ON docs(body) INDEXTYPE IS TextIndexType").unwrap();
    Rig {
        name: "text",
        index_name: "DT",
        db,
        medium,
        crash_stmts: vec![
            "INSERT INTO docs VALUES (10, 'fyn brix gorse'), (11, 'ale cole')".into(),
            "UPDATE docs SET body = 'brix fyn rewritten' WHERE id >= 2".into(),
            "DELETE FROM docs WHERE id >= 2".into(),
        ],
        probes: vec![
            ("SELECT id FROM docs WHERE Contains(body, 'gorse')".into(), vec![]),
            ("SELECT id FROM docs WHERE Contains(body, 'ale OR dun')".into(), vec![]),
        ],
        install,
    }
}

fn spatial_rig() -> Rig {
    fn install(db: &mut Database) {
        extidx::spatial::install(db).unwrap();
    }
    let (mut db, medium) = durable(install);
    db.execute("CREATE TABLE parcels (gid INTEGER, geometry SDO_GEOMETRY)").unwrap();
    let mut wl = SpatialWorkload::new(800.0, 41);
    for gid in 1..=3i64 {
        let g = geometry_sql(&wl.rect(5.0, 50.0));
        db.execute(&format!("INSERT INTO parcels VALUES ({gid}, {g})")).unwrap();
    }
    db.execute("CREATE INDEX sx ON parcels(geometry) INDEXTYPE IS RtreeIndexType").unwrap();
    let g1 = geometry_sql(&wl.rect(5.0, 50.0));
    let g2 = geometry_sql(&wl.rect(5.0, 50.0));
    let window = geometry_sql(&wl.rect(200.0, 700.0));
    Rig {
        name: "rtree",
        index_name: "SX",
        db,
        medium,
        crash_stmts: vec![
            format!("INSERT INTO parcels VALUES (10, {g1}), (11, {g2})"),
            "DELETE FROM parcels WHERE gid >= 2".into(),
        ],
        probes: vec![(
            format!(
                "SELECT gid FROM parcels WHERE Sdo_Relate(geometry, {window}, 'mask=ANYINTERACT')"
            ),
            vec![],
        )],
        install,
    }
}

fn vir_rig() -> Rig {
    fn install(db: &mut Database) {
        extidx::vir::install(db).unwrap();
    }
    let (mut db, medium) = durable(install);
    db.execute("CREATE TABLE assets (id INTEGER, img VIR_IMAGE)").unwrap();
    let mut wl = SignatureWorkload::new(17);
    let base = wl.random();
    for id in 1..=3i64 {
        let sig = wl.near_duplicate(&base, 0.3);
        db.execute_with(
            "INSERT INTO assets VALUES (?, VIR_IMAGE(?))",
            &[id.into(), sig.serialize().into()],
        )
        .unwrap();
    }
    db.execute("CREATE INDEX ax ON assets(img) INDEXTYPE IS VirIndexType").unwrap();
    Rig {
        name: "vir",
        index_name: "AX",
        db,
        medium,
        crash_stmts: vec!["DELETE FROM assets WHERE id >= 2".into()],
        probes: vec![(
            "SELECT id FROM assets WHERE VirSimilar(img, ?, 'globalcolor=0.5, texture=0.5', 2.5)"
                .into(),
            vec![base.serialize().into()],
        )],
        install,
    }
}

fn chem_rig(params: &'static str, name: &'static str) -> Rig {
    fn install(db: &mut Database) {
        extidx::chem::install(db).unwrap();
    }
    let (mut db, medium) = durable(install);
    db.execute("CREATE TABLE compounds (id INTEGER, mol VARCHAR2(256))").unwrap();
    for (id, mol) in [(1, "CC(=O)N"), (2, "CCO"), (3, "CCN")] {
        db.execute_with("INSERT INTO compounds VALUES (?, ?)", &[i64::from(id).into(), mol.into()])
            .unwrap();
    }
    db.execute(&format!(
        "CREATE INDEX cx ON compounds(mol) INDEXTYPE IS ChemIndexType PARAMETERS ('{params}')"
    ))
    .unwrap();
    Rig {
        name,
        index_name: "CX",
        db,
        medium,
        crash_stmts: vec![
            "INSERT INTO compounds VALUES (10, 'CC(=O)NC'), (11, 'CCCO')".into(),
            "DELETE FROM compounds WHERE id >= 2".into(),
        ],
        probes: vec![
            ("SELECT id FROM compounds WHERE MolContains(mol, 'CC(=O)N')".into(), vec![]),
            ("SELECT id FROM compounds WHERE MolContains(mol, 'CCO')".into(), vec![]),
        ],
        install,
    }
}

/// The matrix: every cartridge × every statement crash point × every DML
/// shape × every call site of the point within the statement (`at_call`
/// sweep — a crash on the FIRST `wal.append` of an INSERT lands before
/// any index maintenance ran, a crash on a later one lands after the
/// chem FILE store already wrote to its file; both must recover).
///
/// Internal-table indexes must come back VALID and answering; the
/// external-file chem index comes back QUARANTINED whenever the crash
/// landed after a post-commit file write, and must be restored by
/// REBUILD. Either way the recovered observable state must equal the
/// committed prefix.
#[test]
fn domain_index_crash_matrix() {
    type RigMaker = fn() -> Rig;
    let makers: Vec<(RigMaker, bool)> = vec![
        (text_rig as RigMaker, false),
        (spatial_rig, false),
        (vir_rig, false),
        (|| chem_rig(":Storage LOB", "chem-lob"), false),
        (|| chem_rig(":Storage FILE :Events ON", "chem-file"), true),
    ];
    for (maker, file_backed) in &makers {
        let probe_rig = maker();
        let ncrash = probe_rig.crash_stmts.len();
        drop(probe_rig);
        let mut quarantine_seen = false;
        for ci in 0..ncrash {
            for point in STMT_POINTS {
                // Sweep the point's call sites until one instance of the
                // statement no longer reaches call `k`.
                for k in 1..=200u64 {
                    let mut rig = maker();
                    let committed = observe(&mut rig.db, &rig.probes);
                    let stmt = rig.crash_stmts[ci].clone();
                    rig.db.fault_injector().arm_fail(point, None, k);
                    let r = rig.db.execute(&stmt);
                    if rig.db.fault_injector().fired() == 0 {
                        // The statement has fewer than k call sites for
                        // this point: sweep exhausted.
                        assert!(k > 1, "{}: {point} never fired for `{stmt}`", rig.name);
                        break;
                    }
                    assert!(r.is_err(), "{}: statement survived crash at {point}#{k}", rig.name);
                    assert!(rig.medium.is_crashed(), "{}: medium not frozen at {point}#{k}", rig.name);
                    drop(rig.db); // the process is dead

                    let mut rec = Database::with_cache_pages(4096);
                    (rig.install)(&mut rec);
                    rec.enable_durability(rig.medium.clone()).unwrap();

                    if rec.index_health(rig.index_name) == HealthState::Quarantined {
                        // The backing file absorbed writes from the
                        // crashed statement (files do not wait for
                        // commit): only legal for the FILE-backed rig.
                        assert!(
                            *file_backed,
                            "{}: internal-table index quarantined at {point}#{k}",
                            rig.name
                        );
                        quarantine_seen = true;
                        // Degraded probes still answer via the fallback.
                        let _ = observe(&mut rec, &rig.probes);
                        rec.execute(&format!("ALTER INDEX {} REBUILD", rig.index_name))
                            .unwrap_or_else(|e| {
                                panic!("{}: REBUILD after crash at {point}#{k}: {e}", rig.name)
                            });
                    } else {
                        // Index storage replayed from the WAL (or, for
                        // the FILE rig, the crash landed before any file
                        // write): everything must be VALID.
                        for s in &rec.catalog().health.snapshot() {
                            assert_eq!(
                                s.state,
                                HealthState::Valid,
                                "{}: crash at {point}#{k} during `{stmt}`: index {} not VALID",
                                rig.name,
                                s.index
                            );
                        }
                    }
                    assert_eq!(
                        observe(&mut rec, &rig.probes),
                        committed,
                        "{}: crash at {point}#{k} during `{stmt}`: recovered != committed prefix",
                        rig.name
                    );
                }
            }
        }
        assert_eq!(
            *file_backed, quarantine_seen,
            "quarantine expected iff FILE-backed (rig family with {})",
            if *file_backed { "external files" } else { "internal storage" }
        );
    }
}

// ---- checkpoints ------------------------------------------------------------

#[test]
fn checkpoint_truncates_wal_and_roundtrips() {
    let medium = DurableMedium::new();
    {
        let mut db = Database::with_cache_pages(256);
        db.enable_durability(medium.clone()).unwrap();
        db.execute("CREATE TABLE t (id INTEGER, v VARCHAR2(20))").unwrap();
        for i in 0..50 {
            db.execute(&format!("INSERT INTO t VALUES ({i}, 'v{i}')")).unwrap();
        }
        let before = medium.stats().wal_len;
        assert!(before > 0, "WAL empty before checkpoint");
        db.checkpoint().unwrap();
        assert_eq!(medium.stats().wal_len, 0, "checkpoint did not truncate the WAL");
        // Post-checkpoint mutations land in the (short) WAL tail.
        db.execute("DELETE FROM t WHERE id >= 40").unwrap();
        db.execute("INSERT INTO t VALUES (99, 'after checkpoint')").unwrap();
        crash(db, &medium, FP_WAL_COMMIT, "DELETE FROM t WHERE id < 5");
    }
    let mut rec = Database::with_cache_pages(256);
    rec.enable_durability(medium.clone()).unwrap();
    let rows = rec.query("SELECT id FROM t").unwrap();
    let mut ids: Vec<i64> = rows
        .iter()
        .map(|r| match r[0] {
            Value::Integer(i) => i,
            ref other => panic!("bad id {other:?}"),
        })
        .collect();
    ids.sort_unstable();
    let mut expected: Vec<i64> = (0..40).collect();
    expected.push(99);
    assert_eq!(ids, expected);
}

#[test]
fn crash_mid_checkpoint_loses_nothing() {
    for point in [FP_WAL_CHECKPOINT, FP_WAL_CHECKPOINT_TRUNCATE] {
        let medium = DurableMedium::new();
        let committed = {
            let mut db = Database::with_cache_pages(256);
            db.enable_durability(medium.clone()).unwrap();
            db.execute("CREATE TABLE t (id INTEGER)").unwrap();
            for i in 0..10 {
                db.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
            }
            let committed = bag(&mut db, "t");
            db.fault_injector().arm_fail(point, None, 1);
            assert!(db.checkpoint().is_err(), "checkpoint survived a crash at {point}");
            assert!(db.fault_injector().fired() > 0);
            committed
        };
        let mut rec = Database::with_cache_pages(256);
        rec.enable_durability(medium.clone()).unwrap();
        assert_eq!(bag(&mut rec, "t"), committed, "crash at {point} lost committed rows");
    }
}

#[test]
fn checkpoint_refused_inside_transaction() {
    let medium = DurableMedium::new();
    let mut db = Database::with_cache_pages(256);
    db.enable_durability(medium).unwrap();
    db.execute("CREATE TABLE t (id INTEGER)").unwrap();
    db.execute("BEGIN").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    assert!(db.checkpoint().is_err(), "checkpoint inside an open transaction must be refused");
    db.execute("COMMIT").unwrap();
    db.checkpoint().unwrap();
}

// ---- explicit transactions --------------------------------------------------

#[test]
fn open_transaction_tail_is_discarded_and_committed_txn_survives() {
    let medium = DurableMedium::new();
    {
        let mut db = Database::with_cache_pages(256);
        db.enable_durability(medium.clone()).unwrap();
        db.execute("CREATE TABLE t (id INTEGER)").unwrap();
        // A committed transaction: survives.
        db.execute("BEGIN").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
        db.execute("INSERT INTO t VALUES (2)").unwrap();
        db.execute("COMMIT").unwrap();
        // A rolled-back transaction: its net effect (nothing) survives.
        db.execute("BEGIN").unwrap();
        db.execute("INSERT INTO t VALUES (3)").unwrap();
        db.execute("ROLLBACK").unwrap();
        // An open transaction at crash time: discarded wholesale.
        db.execute("BEGIN").unwrap();
        db.execute("INSERT INTO t VALUES (4)").unwrap();
        db.execute("INSERT INTO t VALUES (5)").unwrap();
        // No crash needed: process death without COMMIT is enough.
    }
    let mut rec = Database::with_cache_pages(256);
    rec.enable_durability(medium).unwrap();
    assert_eq!(bag(&mut rec, "t"), vec!["[Integer(1)]".to_string(), "[Integer(2)]".to_string()]);
}

// ---- satellite 1: external-file lifecycle orphan audit ----------------------

#[test]
fn chem_file_lifecycle_never_leaks_files() {
    let mut db = Database::with_cache_pages(256);
    extidx::chem::install(&mut db).unwrap();
    db.execute("CREATE TABLE compounds (id INTEGER, mol VARCHAR2(256))").unwrap();
    db.execute("INSERT INTO compounds VALUES (1, 'CCO')").unwrap();

    // Plain create → drop: file removed.
    db.execute(
        "CREATE INDEX cx ON compounds(mol) INDEXTYPE IS ChemIndexType PARAMETERS (':Storage FILE')",
    )
    .unwrap();
    assert!(db.storage().files_ref().exists("dr$cx.fpidx"));
    db.execute("DROP INDEX cx").unwrap();
    assert!(
        db.storage().files_ref().list().is_empty(),
        "files leaked after DROP INDEX: {:?}",
        db.storage().files_ref().list()
    );

    // Failed CREATE whose cleanup also faults: the entry stays
    // BUILD_FAILED, and the later DROP must still remove the file.
    db.fault_injector().arm_fail("chem.build.assembled", None, 1);
    db.fault_injector().arm_fail("ODCIIndexDrop", Some("CHEMINDEXTYPE"), 1);
    assert!(db
        .execute(
            "CREATE INDEX cx ON compounds(mol) INDEXTYPE IS ChemIndexType PARAMETERS (':Storage FILE')",
        )
        .is_err());
    db.fault_injector().disarm_all();
    assert_eq!(db.index_health("CX"), HealthState::BuildFailed);
    db.execute("DROP INDEX cx").unwrap();
    assert!(
        db.storage().files_ref().list().is_empty(),
        "files leaked after DROP of a BUILD_FAILED index: {:?}",
        db.storage().files_ref().list()
    );

    // REBUILD-from-scratch replaces the backing file.
    db.execute(
        "CREATE INDEX cx ON compounds(mol) INDEXTYPE IS ChemIndexType PARAMETERS (':Storage FILE')",
    )
    .unwrap();
    db.execute("INSERT INTO compounds VALUES (2, 'CCN')").unwrap();
    db.quarantine_index("CX").unwrap();
    db.catalog().health.mark_dirty("CX");
    db.execute("ALTER INDEX cx REBUILD").unwrap();
    assert_eq!(db.index_health("CX"), HealthState::Valid);
    assert_eq!(db.storage().files_ref().list(), vec!["dr$cx.fpidx".to_string()]);
    let ids = db.query("SELECT id FROM compounds WHERE MolContains(mol, 'CC')").unwrap();
    assert_eq!(ids.len(), 2, "rebuilt FILE index lost rows");
}

// ---- satellite 2: zone maps stay a superset under rollback churn ------------

/// Zone maps may widen but must never exclude a live row. Churn the
/// table through interleaved committed and rolled-back statements (plus
/// failed statements, which take the undo path), then demand range
/// queries agree with pruning on and off.
#[test]
fn zone_maps_survive_rollback_churn() {
    let mut db = Database::with_cache_pages(256);
    db.execute("CREATE TABLE z (id INTEGER, num INTEGER)").unwrap();
    for i in 0..60 {
        db.execute(&format!("INSERT INTO z VALUES ({i}, {})", i * 10)).unwrap();
    }
    for round in 0..8 {
        // Committed churn.
        db.execute(&format!("DELETE FROM z WHERE id >= {}", 50 - round * 3)).unwrap();
        db.execute(&format!("INSERT INTO z VALUES ({}, {})", 200 + round, round * 1000)).unwrap();
        db.execute(&format!("UPDATE z SET num = num + 1 WHERE id < {}", round * 2)).unwrap();
        // Rolled-back churn: must leave zones valid (superset is fine).
        db.execute("BEGIN").unwrap();
        db.execute(&format!("DELETE FROM z WHERE id < {}", round * 4)).unwrap();
        db.execute(&format!("INSERT INTO z VALUES (900, {})", round * 7777)).unwrap();
        db.execute("UPDATE z SET num = 0 - num WHERE id >= 10").unwrap();
        db.execute("ROLLBACK").unwrap();
        // Every range query agrees with pruning on and off.
        for (lo, hi) in [(0, 100), (100, 500), (round * 100, round * 100 + 250), (5000, 9000)] {
            db.set_zone_pruning(true);
            let mut pruned: Vec<String> = db
                .query(&format!("SELECT id FROM z WHERE num >= {lo} AND num <= {hi}"))
                .unwrap()
                .iter()
                .map(|r| format!("{r:?}"))
                .collect();
            db.set_zone_pruning(false);
            let mut full: Vec<String> = db
                .query(&format!("SELECT id FROM z WHERE num >= {lo} AND num <= {hi}"))
                .unwrap()
                .iter()
                .map(|r| format!("{r:?}"))
                .collect();
            db.set_zone_pruning(true);
            pruned.sort();
            full.sort();
            assert_eq!(
                pruned, full,
                "round {round}: zone pruning dropped rows for num in [{lo}, {hi}]"
            );
        }
    }
}

// ---- satellite 3: REBUILD replay must not lose pending work -----------------

/// A quarantined index accumulates deferred maintenance; a REBUILD whose
/// replay faults mid-way must keep the FULL pending log (statement
/// compensation inverses the applied prefix), so a later recovery still
/// has everything it is owed.
#[test]
fn failed_replay_keeps_full_pending_log() {
    let mut db = Database::with_cache_pages(256);
    extidx::text::install(&mut db).unwrap();
    db.execute("CREATE TABLE docs (id INTEGER, body VARCHAR2(100))").unwrap();
    db.execute("INSERT INTO docs VALUES (1, 'alpha beta')").unwrap();
    db.execute("CREATE INDEX dt ON docs(body) INDEXTYPE IS TextIndexType").unwrap();
    db.quarantine_index("DT").unwrap();
    // Deferred maintenance accrues while quarantined.
    db.execute("INSERT INTO docs VALUES (2, 'gamma delta')").unwrap();
    db.execute("INSERT INTO docs VALUES (3, 'epsilon zeta')").unwrap();
    db.execute("INSERT INTO docs VALUES (4, 'eta theta')").unwrap();
    let owed = db.catalog().health.snapshot()[0].pending_ops;
    assert_eq!(owed, 3);
    // Replay faults on its second op: the first op was applied, then
    // compensated away by statement atomicity — so all 3 are still owed.
    db.fault_injector().arm_fail("ODCIIndexInsert", Some("TEXTINDEXTYPE"), 2);
    assert!(db.execute("ALTER INDEX dt REBUILD").is_err());
    db.fault_injector().disarm_all();
    let snap = &db.catalog().health.snapshot()[0];
    assert_eq!(
        snap.pending_ops, owed,
        "failed replay dropped pending ops: {} of {owed} left",
        snap.pending_ops
    );
    // Recovery still completes (the breaker may demand a full rebuild;
    // either path must restore VALID and correct answers).
    db.execute("ALTER INDEX dt REBUILD").unwrap();
    assert_eq!(db.index_health("DT"), HealthState::Valid);
    let hits = db.query("SELECT id FROM docs WHERE Contains(body, 'gamma')").unwrap();
    assert_eq!(hits.len(), 1);
    let hits = db.query("SELECT id FROM docs WHERE Contains(body, 'eta')").unwrap();
    assert_eq!(hits.len(), 1);
}

// ---- qgen crash-recover sweep ----------------------------------------------

/// Seeded workloads × every WAL crash point: recovered state must be
/// bag-equal to a twin that executed exactly the committed prefix.
#[test]
fn qgen_crash_recover_sweep() {
    for seed in [1, 2, 3] {
        if let Some(detail) = extidx_qgen::run_crash_seed(seed, 40) {
            panic!("crash-recovery divergence: {detail}");
        }
    }
}

// ---- MVCC: crash with two in-flight sessions --------------------------------

/// Two sessions interleave WAL records; one commits, one is still open
/// at process death. Recovery must replay exactly the committed
/// transaction — its records regrouped out of the interleaving — and
/// discard every record of the open one, marker-less in the log.
#[test]
fn crash_with_two_in_flight_sessions_keeps_only_the_committed_one() {
    use extidx::sql::Server;

    let medium = DurableMedium::new();
    let mut db = Database::with_cache_pages(256);
    db.enable_durability(medium.clone()).unwrap();
    db.execute("CREATE TABLE pair (id INTEGER)").unwrap();
    let server = Server::new(db);

    let mut a = server.session();
    let mut b = server.session();
    a.execute("BEGIN").unwrap();
    b.execute("BEGIN").unwrap();
    // Interleave so the log carries a:1, b:100, a:2, b:101 in sequence.
    a.execute("INSERT INTO pair VALUES (1)").unwrap();
    b.execute("INSERT INTO pair VALUES (100)").unwrap();
    a.execute("INSERT INTO pair VALUES (2)").unwrap();
    b.execute("INSERT INTO pair VALUES (101)").unwrap();
    a.execute("COMMIT").unwrap();
    // More in-flight records after the committed marker.
    b.execute("INSERT INTO pair VALUES (102)").unwrap();

    // Process death: neither session runs its Drop cleanup (a Drop would
    // write an orderly rollback; a crash writes nothing).
    std::mem::forget(b);
    std::mem::forget(a);
    drop(server);

    let mut rec = Database::with_cache_pages(256);
    rec.enable_durability(medium).unwrap();
    assert_eq!(
        bag(&mut rec, "pair"),
        vec!["[Integer(1)]".to_string(), "[Integer(2)]".to_string()],
        "recovery must keep the committed transaction and discard the open one"
    );
}

/// Same shape, but the crash fires inside the first session's COMMIT
/// (the commit-marker append). Neither transaction has a durable marker,
/// so recovery must discard both — commit atomicity across process death
/// with a second transaction's records interleaved in the log.
#[test]
fn crash_during_commit_with_second_transaction_in_flight_discards_both() {
    use extidx::sql::Server;

    let medium = DurableMedium::new();
    let mut db = Database::with_cache_pages(256);
    db.enable_durability(medium.clone()).unwrap();
    db.execute("CREATE TABLE pair (id INTEGER)").unwrap();
    db.fault_injector().arm_fail(FP_WAL_COMMIT, None, 1);
    let server = Server::new(db);

    let mut a = server.session();
    let mut b = server.session();
    a.execute("BEGIN").unwrap();
    b.execute("BEGIN").unwrap();
    a.execute("INSERT INTO pair VALUES (1)").unwrap();
    b.execute("INSERT INTO pair VALUES (100)").unwrap();
    let err = a.execute("COMMIT").expect_err("armed commit point must crash the commit");
    assert!(format!("{err}").contains("fault"), "unexpected commit error: {err}");

    std::mem::forget(b);
    std::mem::forget(a);
    drop(server);

    let mut rec = Database::with_cache_pages(256);
    rec.enable_durability(medium).unwrap();
    assert_eq!(
        bag(&mut rec, "pair"),
        Vec::<String>::new(),
        "a commit that never reached its marker must vanish wholesale"
    );
}
