//! Property-based tests for framework utilities: LIKE matching against a
//! reference implementation, parameter-string merge laws, predicate
//! bounds.

use proptest::prelude::*;

use extidx_common::Value;
use extidx_core::meta::{like_match, PredicateBound, RelOp};
use extidx_core::params::ParamString;

/// Naive backtracking LIKE used as the oracle.
fn naive_like(text: &str, pattern: &str) -> bool {
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    fn go(t: &[char], p: &[char]) -> bool {
        match p.first() {
            None => t.is_empty(),
            Some('%') => (0..=t.len()).any(|k| go(&t[k..], &p[1..])),
            Some('_') => !t.is_empty() && go(&t[1..], &p[1..]),
            Some(c) => t.first() == Some(c) && go(&t[1..], &p[1..]),
        }
    }
    go(&t, &p)
}

proptest! {
    #[test]
    fn like_agrees_with_reference(text in "[ab]{0,10}", pattern in "[ab%_]{0,8}") {
        prop_assert_eq!(like_match(&text, &pattern), naive_like(&text, &pattern));
    }

    #[test]
    fn like_self_match(text in "[a-z]{0,10}") {
        prop_assert!(like_match(&text, &text), "every string LIKEs itself");
        prop_assert!(like_match(&text, "%"), "%% matches everything");
    }

    #[test]
    fn param_merge_right_bias(
        keys1 in prop::collection::vec(("[A-Z]{1,4}", "[a-z0-9]{1,4}"), 0..4),
        keys2 in prop::collection::vec(("[A-Z]{1,4}", "[a-z0-9]{1,4}"), 0..4),
    ) {
        let raw1: String = keys1.iter().map(|(k, v)| format!(":{k} {v} ")).collect();
        let raw2: String = keys2.iter().map(|(k, v)| format!(":{k} {v} ")).collect();
        let a = ParamString::parse(&raw1);
        let b = ParamString::parse(&raw2);
        let merged = a.merged_with(&b);
        // Every key of b wins in the merge.
        for (k, _) in &keys2 {
            prop_assert_eq!(merged.values(k), b.values(k));
        }
        // Keys only in a survive.
        for (k, _) in &keys1 {
            if !b.has(k) {
                prop_assert_eq!(merged.values(k), a.values(k));
            }
        }
    }

    #[test]
    fn param_merge_with_empty_is_identity(
        keys in prop::collection::vec(("[A-Z]{1,4}", "[a-z0-9]{1,4}"), 0..4),
    ) {
        let raw: String = keys.iter().map(|(k, v)| format!(":{k} {v} ")).collect();
        let a = ParamString::parse(&raw);
        let merged = a.merged_with(&ParamString::empty());
        for (k, _) in &keys {
            prop_assert_eq!(merged.values(k), a.values(k));
        }
    }

    #[test]
    fn relop_eval_is_coherent_with_ordering(a in -100i64..100, b in -100i64..100) {
        let va = Value::Integer(a);
        let vb = Value::Integer(b);
        prop_assert_eq!(RelOp::Lt.eval(&va, &vb), Some(a < b));
        prop_assert_eq!(RelOp::Le.eval(&va, &vb), Some(a <= b));
        prop_assert_eq!(RelOp::Eq.eval(&va, &vb), Some(a == b));
        prop_assert_eq!(RelOp::Ge.eval(&va, &vb), Some(a >= b));
        prop_assert_eq!(RelOp::Gt.eval(&va, &vb), Some(a > b));
    }

    #[test]
    fn bound_accepts_matches_relop(x in -50i64..50, thresh in -50i64..50) {
        for relop in [RelOp::Lt, RelOp::Le, RelOp::Eq, RelOp::Ge, RelOp::Gt] {
            let bound = PredicateBound { relop, value: Value::Integer(thresh) };
            let expected = relop.eval(&Value::Integer(x), &Value::Integer(thresh)).unwrap();
            prop_assert_eq!(bound.accepts(&Value::Integer(x)), expected);
        }
    }
}
