//! Property tests for the text cartridge. The central invariant: the
//! functional implementation and the index implementation of `Contains`
//! agree on every document set and every boolean query.

use std::collections::BTreeMap;

use proptest::prelude::*;

use extidx_common::RowId;
use extidx_text::query::{parse_query, TextQuery};
use extidx_text::tokenizer::{tokenize, StopWords};

/// Random documents over a tiny vocabulary so term overlap is common.
fn arb_doc() -> impl Strategy<Value = String> {
    prop::collection::vec(prop_oneof!["alpha", "beta", "gamma", "delta", "epsilon"], 0..12)
        .prop_map(|words| words.join(" "))
}

/// Random positive-dominant boolean queries over the same vocabulary.
fn arb_query() -> impl Strategy<Value = TextQuery> {
    let term = prop_oneof!["alpha", "beta", "gamma", "delta", "epsilon", "missing"]
        .prop_map(|t: String| TextQuery::Term(t));
    term.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| TextQuery::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| TextQuery::Or(Box::new(a), Box::new(b))),
            // NOT only under an AND with a positive side, like real
            // queries; build `a AND NOT b`.
            (inner.clone(), inner).prop_map(|(a, b)| TextQuery::And(
                Box::new(a),
                Box::new(TextQuery::Not(Box::new(b)))
            )),
        ]
    })
}

/// Build the postings map the index path would load.
fn postings_of(docs: &[String]) -> BTreeMap<String, BTreeMap<RowId, u32>> {
    let mut postings: BTreeMap<String, BTreeMap<RowId, u32>> = BTreeMap::new();
    for (i, d) in docs.iter().enumerate() {
        let rid = RowId::new(1, 0, i as u16);
        for (tok, freq) in tokenize(d, &StopWords::none()) {
            postings.entry(tok).or_default().insert(rid, freq);
        }
    }
    postings
}

proptest! {
    /// Functional (per-document) evaluation and posting-list evaluation
    /// return exactly the same document set.
    #[test]
    fn functional_equals_posting_evaluation(
        docs in prop::collection::vec(arb_doc(), 0..20),
        q in arb_query(),
    ) {
        let postings = postings_of(&docs);
        // Only test queries the index path accepts (positive top level).
        if let Ok(index_result) = q.evaluate_postings(&postings) {
            let functional: Vec<usize> = docs
                .iter()
                .enumerate()
                .filter(|(_, d)| q.matches(&tokenize(d, &StopWords::none())))
                .map(|(i, _)| i)
                .collect();
            let indexed: Vec<usize> =
                index_result.keys().map(|rid| rid.slot as usize).collect();
            prop_assert_eq!(functional, indexed);
        }
    }

    /// Scores are positive exactly for matched documents that contain a
    /// positive query term.
    #[test]
    fn scores_are_positive_for_matches(
        docs in prop::collection::vec(arb_doc(), 1..15),
        q in arb_query(),
    ) {
        let postings = postings_of(&docs);
        if let Ok(result) = q.evaluate_postings(&postings) {
            for (rid, score) in &result {
                let doc = &docs[rid.slot as usize];
                prop_assert!(q.matches(&tokenize(doc, &StopWords::none())));
                // A matched doc may still score 0 only if matched purely
                // through NOT; scores never go negative (u32) and a
                // single-term match always scores >= its frequency ≥ 1.
                if let TextQuery::Term(_) = q {
                    prop_assert!(*score >= 1);
                }
            }
        }
    }

    /// The query parser round-trips through a rendering of itself.
    #[test]
    fn parser_handles_rendered_queries(q in arb_query()) {
        fn render(q: &TextQuery) -> String {
            match q {
                TextQuery::Term(t) => t.clone(),
                TextQuery::And(a, b) => format!("({} AND {})", render(a), render(b)),
                TextQuery::Or(a, b) => format!("({} OR {})", render(a), render(b)),
                TextQuery::Not(a) => format!("NOT {}", render(a)),
            }
        }
        let text = render(&q);
        let reparsed = parse_query(&text).expect("rendered query parses");
        prop_assert_eq!(reparsed, q);
    }

    /// Tokenization is idempotent under stop-word filtering and never
    /// yields stop words or empty tokens.
    #[test]
    fn tokenizer_respects_stop_words(
        text in "[a-zA-Z ,.!]{0,60}",
        stops in prop::collection::vec("[a-z]{1,6}", 0..4),
    ) {
        let stop = StopWords::from_words(stops.iter());
        let tokens = tokenize(&text, &stop);
        for t in tokens.keys() {
            prop_assert!(!t.is_empty());
            prop_assert_eq!(t.to_ascii_lowercase(), t.clone());
            prop_assert!(!stop.contains(t), "stop word {t:?} leaked through");
        }
    }
}
