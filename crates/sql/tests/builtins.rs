//! Tests for scalar builtin functions through the SQL surface.

use extidx_common::Value;
use extidx_sql::Database;

fn db_one_row() -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (s VARCHAR2(40), n NUMBER, i INTEGER, nul VARCHAR2(4))").unwrap();
    db.execute("INSERT INTO t VALUES ('Oracle8i', 3.25159, -7, NULL)").unwrap();
    db
}

fn eval(db: &mut Database, expr: &str) -> Value {
    db.query(&format!("SELECT {expr} FROM t")).unwrap()[0][0].clone()
}

#[test]
fn string_builtins() {
    let mut db = db_one_row();
    assert_eq!(eval(&mut db, "UPPER(s)"), Value::from("ORACLE8I"));
    assert_eq!(eval(&mut db, "LOWER(s)"), Value::from("oracle8i"));
    assert_eq!(eval(&mut db, "LENGTH(s)"), Value::Integer(8));
    assert_eq!(eval(&mut db, "SUBSTR(s, 1, 6)"), Value::from("Oracle"));
    assert_eq!(eval(&mut db, "SUBSTR(s, 7)"), Value::from("8i"));
    assert_eq!(eval(&mut db, "SUBSTR(s, -2)"), Value::from("8i"));
    assert_eq!(eval(&mut db, "SUBSTR(s, 3, 100)"), Value::from("acle8i"));
    assert_eq!(eval(&mut db, "INSTR(s, '8i')"), Value::Integer(7));
    assert_eq!(eval(&mut db, "INSTR(s, 'zzz')"), Value::Integer(0));
    assert_eq!(eval(&mut db, "CONCAT(s, '-', i)"), Value::from("Oracle8i--7"));
}

#[test]
fn numeric_builtins() {
    let mut db = db_one_row();
    assert_eq!(eval(&mut db, "ABS(i)"), Value::Integer(7));
    assert_eq!(eval(&mut db, "ROUND(n)"), Value::Number(3.0));
    assert_eq!(eval(&mut db, "ROUND(n, 2)"), Value::Number(3.25));
    assert_eq!(eval(&mut db, "FLOOR(n)"), Value::Integer(3));
    assert_eq!(eval(&mut db, "CEIL(n)"), Value::Integer(4));
    assert_eq!(eval(&mut db, "MOD(10, 3)"), Value::Integer(1));
    assert_eq!(eval(&mut db, "MOD(10.5, 3)"), Value::Number(1.5));
}

#[test]
fn null_handling() {
    let mut db = db_one_row();
    assert_eq!(eval(&mut db, "UPPER(nul)"), Value::Null);
    assert_eq!(eval(&mut db, "LENGTH(nul)"), Value::Null);
    assert_eq!(eval(&mut db, "SUBSTR(nul, 1)"), Value::Null);
    assert_eq!(eval(&mut db, "NVL(nul, 'fallback')"), Value::from("fallback"));
    assert_eq!(eval(&mut db, "NVL(s, 'fallback')"), Value::from("Oracle8i"));
    assert_eq!(eval(&mut db, "COALESCE(nul, nul, i)"), Value::Integer(-7));
    assert_eq!(eval(&mut db, "CONCAT(nul, 'x')"), Value::from("x"));
}

#[test]
fn errors() {
    let mut db = db_one_row();
    assert!(db.query("SELECT MOD(1, 0) FROM t").is_err());
    assert!(db.query("SELECT NOSUCHFN(1) FROM t").is_err());
    assert!(db.query("SELECT ABS(s) FROM t").is_err());
}

#[test]
fn builtins_in_where_and_order_by() {
    let mut db = Database::new();
    db.execute("CREATE TABLE names (n VARCHAR2(20))").unwrap();
    db.execute("INSERT INTO names VALUES ('Charlie'), ('alice'), ('BOB')").unwrap();
    let rows = db.query("SELECT n FROM names WHERE LENGTH(n) <= 5 ORDER BY LOWER(n)").unwrap();
    assert_eq!(rows, vec![vec![Value::from("alice")], vec![Value::from("BOB")]]);
}
