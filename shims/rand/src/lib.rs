//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace ships the
//! small slice of `rand`'s API it actually uses as a local shim:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and `Rng`'s
//! `gen`/`gen_range`/`gen_bool`. The generator is splitmix64 — not
//! cryptographic, but fast, seedable, and statistically fine for workload
//! generation and tests. Determinism per seed is the only contract callers
//! rely on.

use std::ops::{Range, RangeInclusive};

/// Seedable RNG constructor, mirroring `rand::SeedableRng`'s one method
/// the workspace calls.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling from a range type (the shim's `SampleRange`).
pub trait SampleRange<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Types that `Rng::gen` can produce.
pub trait Standard {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// The sampling surface of `rand::Rng` used by the workspace.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: Rng> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Map a raw u64 to a uniform f64 in [0, 1) using the top 53 bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `rand`'s
    /// `StdRng`. Same seed → same stream, which is all the workspace's
    /// fixtures and tests require.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Pre-mix so small consecutive seeds do not yield correlated
            // early outputs.
            let mut rng = StdRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 };
            rng.next_u64();
            rng
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = unit_f64(rng.next_u64()) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let unit = unit_f64(rng.next_u64()) as $t;
                start + unit * (end - start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10i64..20);
            assert!((10..20).contains(&v));
            let u = rng.gen_range(0usize..=3);
            assert!(u <= 3);
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_and_bools() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut trues = 0;
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            if rng.gen_bool(0.5) {
                trues += 1;
            }
        }
        assert!((300..700).contains(&trues), "gen_bool(0.5) badly skewed: {trues}");
    }
}
