//! Invocation tracing — Figure 1 made observable.
//!
//! The paper's Figure 1 shows the call flow: client SQL arrives, the
//! indexing component calls the registered ODCIIndexStart/Fetch/Close
//! routines, the optimizer calls ODCIStatsIndexCost/Selectivity, DML
//! drives the maintenance routines. [`CallTrace`] records exactly those
//! crossings of the server↔cartridge boundary so the E1 experiment (and
//! any debugging session) can print the architecture diagram as a live
//! event log.

use std::sync::Arc;

use parking_lot::Mutex;

/// Which server component invoked the cartridge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Component {
    /// DDL processing (CREATE/ALTER/TRUNCATE/DROP INDEX).
    Ddl,
    /// Implicit index maintenance during DML.
    Dml,
    /// The index-access component driving scans.
    IndexAccess,
    /// The cost-based optimizer.
    Optimizer,
    /// Compensation replay after a failed statement — inverse maintenance
    /// operations restoring domain indexes to pre-statement state.
    Recovery,
    /// The fault-injection harness firing at a crossing.
    Fault,
}

impl std::fmt::Display for Component {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Component::Ddl => "DDL",
            Component::Dml => "DML",
            Component::IndexAccess => "INDEX-ACCESS",
            Component::Optimizer => "OPTIMIZER",
            Component::Recovery => "RECOVERY",
            Component::Fault => "FAULT",
        };
        write!(f, "{s}")
    }
}

/// One server→cartridge invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Which server component made the call.
    pub component: Component,
    /// The ODCI routine name (e.g. `ODCIIndexFetch`).
    pub routine: &'static str,
    /// Which indextype was invoked.
    pub indextype: String,
    /// Human-readable argument summary.
    pub detail: String,
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {} -> {}.{}", self.component, self.detail, self.indextype, self.routine)
    }
}

/// A shared, toggleable trace. Cloning shares the underlying buffer, so
/// the engine and a test/bench harness can watch the same stream.
#[derive(Clone, Default)]
pub struct CallTrace {
    inner: Arc<Mutex<TraceInner>>,
}

#[derive(Default)]
struct TraceInner {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl CallTrace {
    /// A new, disabled trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enable or disable recording.
    pub fn set_enabled(&self, on: bool) {
        self.inner.lock().enabled = on;
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.inner.lock().enabled
    }

    /// Record an event (no-op while disabled).
    pub fn record(
        &self,
        component: Component,
        routine: &'static str,
        indextype: &str,
        detail: impl Into<String>,
    ) {
        let mut g = self.inner.lock();
        if g.enabled {
            g.events.push(TraceEvent {
                component,
                routine,
                indextype: indextype.to_string(),
                detail: detail.into(),
            });
        }
    }

    /// Snapshot the recorded events.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.lock().events.clone()
    }

    /// Clear recorded events.
    pub fn clear(&self) {
        self.inner.lock().events.clear();
    }

    /// Routine names in recorded order — handy for call-sequence asserts.
    pub fn routine_sequence(&self) -> Vec<&'static str> {
        self.inner.lock().events.iter().map(|e| e.routine).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let t = CallTrace::new();
        t.record(Component::Ddl, "ODCIIndexCreate", "T", "x");
        assert!(t.events().is_empty());
    }

    #[test]
    fn enabled_trace_records_in_order() {
        let t = CallTrace::new();
        t.set_enabled(true);
        t.record(Component::IndexAccess, "ODCIIndexStart", "T", "q1");
        t.record(Component::IndexAccess, "ODCIIndexFetch", "T", "q1");
        t.record(Component::IndexAccess, "ODCIIndexClose", "T", "q1");
        assert_eq!(
            t.routine_sequence(),
            vec!["ODCIIndexStart", "ODCIIndexFetch", "ODCIIndexClose"]
        );
    }

    #[test]
    fn clones_share_the_buffer() {
        let t = CallTrace::new();
        t.set_enabled(true);
        let t2 = t.clone();
        t2.record(Component::Optimizer, "ODCIStatsSelectivity", "T", "");
        assert_eq!(t.events().len(), 1);
        t.clear();
        assert!(t2.events().is_empty());
    }

    #[test]
    fn event_display() {
        let e = TraceEvent {
            component: Component::Dml,
            routine: "ODCIIndexInsert",
            indextype: "TEXTINDEXTYPE".into(),
            detail: "EMPLOYEES row".into(),
        };
        assert_eq!(
            e.to_string(),
            "[DML] EMPLOYEES row -> TEXTINDEXTYPE.ODCIIndexInsert"
        );
    }
}
