//! Incremental vacuum and sub-LOB conflict granularity (DESIGN.md §4k).
//!
//! Four invariants:
//! - **bounded chains without quiescence**: with at least one transaction
//!   open at every moment, the horizon-keyed vacuum still prunes settled
//!   versions, so chain occupancy stays bounded under churn and drains to
//!   zero once the last transaction commits;
//! - **visibility safety**: an explicit `VACUUM` (or the implicit passes
//!   at commit/rollback) never removes a version some live snapshot can
//!   still see, through any scan shape (domain index, functional full
//!   scan, zone-prunable range scan) — checked as a property;
//! - **span granularity**: two sessions maintaining the *same* chemistry
//!   domain index commit cleanly when their writes touch disjoint byte
//!   ranges of the shared fingerprint LOB, and first-writer-wins fires
//!   (naming the winning transaction) only on genuine overlap;
//! - **chain-aware pruning**: zone pruning stays active on a segment that
//!   carries version chains, and the widened bounds remain a superset of
//!   every version any snapshot can see.

use extidx::common::{Error, Value};
use extidx::sql::{GovernorConfig, Server, Session};
use extidx_qgen::{fresh_db, ChaosOpts};
use proptest::prelude::*;

const MOLS: [&str; 6] = ["CCO", "COC", "OCC", "CCC", "CCN", "CCS"];

fn sorted_ids(rows: &[Vec<Value>]) -> Vec<i64> {
    let mut ids: Vec<i64> = rows
        .iter()
        .map(|r| match r[0] {
            Value::Integer(i) => i,
            ref v => panic!("expected integer id, got {v:?}"),
        })
        .collect();
    ids.sort_unstable();
    ids
}

fn probes(lo: i64, hi: i64) -> [String; 3] {
    [
        "SELECT /*+ INDEX(MV MV_MOL) */ id FROM MV WHERE MolContains(mol, 'CO')".to_string(),
        "SELECT /*+ NO_INDEX */ id FROM MV WHERE MolContains(mol, 'CO')".to_string(),
        format!("SELECT id FROM MV WHERE num >= {lo} AND num <= {hi}"),
    ]
}

fn observe(sess: &mut Session, lo: i64, hi: i64) -> Vec<Vec<i64>> {
    probes(lo, hi)
        .iter()
        .map(|q| sorted_ids(&sess.query(q).expect("probe query must run")))
        .collect()
}

/// A server with `MV (id, mol, num)`, a chemistry domain index on `mol`
/// (fingerprints in a shared LOB), and `n` seeded rows. Runs with inline
/// vacuum (no maintenance daemon): this file pins the commit/rollback
/// vacuum invariants; the daemon's own cadence is covered by
/// `tests/server_governor.rs`.
fn setup(n: usize, seed: u64) -> Server {
    let server = Server::with_config(fresh_db(ChaosOpts::default()), GovernorConfig::inline_vacuum());
    let mut s = server.session();
    s.execute("CREATE TABLE MV (id INTEGER, mol VARCHAR2(64), num INTEGER)").unwrap();
    s.execute("CREATE INDEX MV_MOL ON MV(mol) INDEXTYPE IS ChemIndexType").unwrap();
    for i in 0..n {
        let mol = MOLS[(seed as usize + i) % MOLS.len()];
        let num = ((seed >> 8) as i64 + i as i64 * 13) % 200;
        s.execute(&format!("INSERT INTO MV (id, mol, num) VALUES ({i}, '{mol}', {num})"))
            .unwrap();
    }
    server
}

/// Total (chains, versions) across every segment, LOB included.
fn occupancy(server: &Server) -> (usize, usize) {
    server.read(|db| {
        db.storage()
            .mvcc_segment_stats()
            .iter()
            .fold((0, 0), |(c, v), (_, sc, sv)| (c + sc, v + sv))
    })
}

/// Soak: ping-pong two writers so at least one transaction is open at
/// every scheduler moment — there is never a quiescent point — yet chain
/// occupancy stays bounded and drains to zero at the end.
#[test]
fn chains_stay_bounded_without_quiescence() {
    const ROUNDS: usize = 60;
    let server = setup(20, 7);
    let mut a = server.session();
    let mut b = server.session();
    a.execute("BEGIN").unwrap();
    let mut max_versions = 0usize;
    for r in 0..ROUNDS {
        // Overlap before the older transaction retires: B opens while A
        // is still active, so the system is never quiescent.
        let (open, closing) = if r % 2 == 0 { (&mut b, &mut a) } else { (&mut a, &mut b) };
        open.execute("BEGIN").unwrap();
        let id = r % 20;
        let mol = MOLS[r % MOLS.len()];
        closing
            .execute(&format!("UPDATE MV SET mol = '{mol}', num = {r} WHERE id = {id}"))
            .unwrap();
        closing.execute("COMMIT").unwrap();
        let (_, versions) = occupancy(&server);
        max_versions = max_versions.max(versions);
    }
    assert!(
        max_versions > 0,
        "the soak must actually create version chains to be meaningful"
    );
    assert!(
        max_versions <= 16,
        "incremental vacuum must bound chain occupancy under churn \
         without quiescence; saw {max_versions} versions held"
    );
    // Retire the last open transaction; one explicit pass drains the
    // rest. After round r the session opened in it is still live: b for
    // even r, a for odd — the final round is ROUNDS - 1.
    let mut last = if (ROUNDS - 1).is_multiple_of(2) { b } else { a };
    last.execute("COMMIT").unwrap();
    last.execute("VACUUM").unwrap();
    let (chains, versions) = occupancy(&server);
    assert_eq!(
        (chains, versions),
        (0, 0),
        "after the last commit every chain must drain to zero"
    );
    let stats = server.read(|db| db.storage().vacuum_stats());
    assert!(stats.runs > 0, "vacuum passes must have fired: {stats:?}");
    assert!(stats.versions_pruned > 0, "the soak must have pruned versions: {stats:?}");
}

/// Two sessions maintain the same chemistry domain index concurrently.
/// Updates to different rows touch disjoint byte ranges of the shared
/// fingerprint LOB (distinct tombstone offsets, appends at distinct
/// ends), so both commit; updates to the same row overlap and the second
/// writer loses first-writer-wins with an error naming the winner.
#[test]
fn same_index_concurrent_maintenance_is_span_granular() {
    let server = setup(12, 3);
    let mut w1 = server.session();
    let mut w2 = server.session();

    // Disjoint rows: no spurious abort.
    w1.execute("BEGIN").unwrap();
    w2.execute("BEGIN").unwrap();
    w1.execute("UPDATE MV SET mol = 'CCO' WHERE id = 2").unwrap();
    w2.execute("UPDATE MV SET mol = 'COC' WHERE id = 7").unwrap();
    w1.execute("COMMIT").expect("disjoint LOB spans must not conflict");
    w2.execute("COMMIT").expect("disjoint LOB spans must not conflict");

    // Same row: genuine overlap, FWW names the winning transaction.
    server.admin(|db| db.trace().set_enabled(true));
    w1.execute("BEGIN").unwrap();
    w2.execute("BEGIN").unwrap();
    let winner = w1.snapshot().unwrap().txn;
    w1.execute("UPDATE MV SET mol = 'OCC' WHERE id = 5").unwrap();
    let err = w2
        .execute("UPDATE MV SET mol = 'CCN' WHERE id = 5")
        .expect_err("overlapping writes to one row must conflict");
    match err {
        Error::WriteConflict { other_txn, ref key, .. } => {
            assert_eq!(other_txn, winner, "conflict must name the winning txn: {err}");
            assert!(!key.is_empty(), "conflict must name the contended key: {err}");
        }
        other => panic!("expected WriteConflict, got {other}"),
    }
    w1.execute("COMMIT").unwrap();
    w2.execute("ROLLBACK").unwrap();

    // The abort is observable after the fact: V$TRACE carries a TXN row.
    let mut s = server.session();
    let rows = s
        .query("SELECT DETAIL FROM V$TRACE WHERE COMPONENT = 'TXN'")
        .expect("V$TRACE must be queryable");
    assert!(
        rows.iter().any(|r| r[0].to_string().contains(&format!("txn {winner}"))),
        "the FWW abort must be recorded in V$TRACE: {rows:?}"
    );

    // Ablation: with whole-locator conflicts (the pre-span baseline) the
    // very same disjoint-row schedule aborts spuriously.
    server.admin(|db| db.storage_mut().set_lob_span_conflicts(false));
    w1.execute("BEGIN").unwrap();
    w2.execute("BEGIN").unwrap();
    w1.execute("UPDATE MV SET mol = 'CCO' WHERE id = 1").unwrap();
    let spurious = w2.execute("UPDATE MV SET mol = 'COC' WHERE id = 9");
    assert!(
        matches!(spurious, Err(Error::WriteConflict { .. })),
        "whole-locator granularity must serialize all same-LOB writers: {spurious:?}"
    );
    w1.execute("COMMIT").unwrap();
    w2.execute("ROLLBACK").unwrap();
    server.admin(|db| db.storage_mut().set_lob_span_conflicts(true));
}

/// V$MVCC: the TOTAL row is always present; chain counters rise while a
/// displacing transaction is open and fall back after commit + vacuum.
#[test]
fn v_mvcc_reports_occupancy_and_vacuum_counters() {
    let server = setup(10, 11);
    let mut s = server.session();
    let total = |s: &mut Session| -> Vec<Value> {
        s.query("SELECT CHAINS, VERSIONS, VACUUM_RUNS FROM V$MVCC WHERE SEGMENT = 'TOTAL'")
            .unwrap()
            .remove(0)
    };
    let drained = total(&mut s);
    assert_eq!((&drained[0], &drained[1]), (&Value::Integer(0), &Value::Integer(0)));

    let mut w = server.session();
    w.execute("BEGIN").unwrap();
    w.execute("UPDATE MV SET mol = 'CCO', num = 999 WHERE id = 3").unwrap();
    let busy = total(&mut s);
    assert!(
        matches!(busy[0], Value::Integer(c) if c > 0),
        "an open displacing txn must show chains in V$MVCC: {busy:?}"
    );
    w.execute("COMMIT").unwrap();
    s.execute("VACUUM").unwrap();
    let after = total(&mut s);
    assert_eq!(
        (&after[0], &after[1]),
        (&Value::Integer(0), &Value::Integer(0)),
        "commit + vacuum must drain the chains: {after:?}"
    );
    assert!(matches!(after[2], Value::Integer(r) if r > 0), "vacuum runs must count: {after:?}");
}

/// Zone pruning stays active on a segment that carries version chains,
/// and the widened bounds stay a superset: the displaced version a
/// concurrent snapshot reads is never hidden by a pruned page.
#[test]
fn zone_pruning_active_on_chained_segment() {
    let server = Server::new(fresh_db(ChaosOpts::default()));
    let mut s = server.session();
    s.execute("CREATE TABLE big (id INTEGER, val INTEGER)").unwrap();
    for i in 0..3000i64 {
        s.execute_with("INSERT INTO big VALUES (?, ?)", &[i.into(), i.into()]).unwrap();
    }
    s.execute("ANALYZE TABLE big").unwrap();

    // Reader pins a snapshot of the original world.
    let mut reader = server.session();
    reader.execute("BEGIN").unwrap();

    // Writer displaces rows (commits, but after the reader's snapshot),
    // then an explicit vacuum runs with the reader still live.
    let mut w = server.session();
    w.execute("UPDATE big SET val = 900000 WHERE id = 1500").unwrap();
    w.execute("UPDATE big SET val = -900000 WHERE id = 1501").unwrap();
    w.execute("VACUUM").unwrap();
    let seg_versions = occupancy(&server).1;
    assert!(seg_versions > 0, "the reader's snapshot must be pinning displaced versions");

    // The chained segment still prunes: a tight range over 3000 rows
    // must skip pages, and the row counts must be exact for both worlds.
    let lines: Vec<String> = reader
        .query("EXPLAIN ANALYZE SELECT id FROM big WHERE val BETWEEN 1200 AND 1250")
        .unwrap()
        .into_iter()
        .map(|r| r[0].to_string())
        .collect();
    let summary = lines.last().unwrap();
    let pruned: u64 = {
        let at = summary.rfind("pages pruned=").expect("summary line") + "pages pruned=".len();
        summary[at..].chars().take_while(|c| c.is_ascii_digit()).collect::<String>().parse().unwrap()
    };
    assert!(pruned > 0, "pruning must stay active on a chained segment: {summary}");

    // Superset invariant, snapshot side: the reader still finds the
    // displaced originals through the (possibly pruned) scan...
    assert_eq!(
        sorted_ids(&reader.query("SELECT id FROM big WHERE val = 1500").unwrap()),
        vec![1500],
        "reader must still see the displaced pre-update version"
    );
    assert_eq!(
        sorted_ids(&reader.query("SELECT id FROM big WHERE val = 1501").unwrap()),
        vec![1501]
    );
    // ...and the latest world finds the teleported values (widened bounds).
    assert_eq!(
        sorted_ids(&s.query("SELECT id FROM big WHERE val = 900000").unwrap()),
        vec![1500]
    );
    assert_eq!(
        sorted_ids(&s.query("SELECT id FROM big WHERE val = -900000").unwrap()),
        vec![1501]
    );
    reader.execute("COMMIT").unwrap();
    s.execute("VACUUM").unwrap();
    assert_eq!(occupancy(&server), (0, 0), "chains must drain once the reader retires");
}

proptest! {
    /// Property: an explicit vacuum firing while a snapshot is live never
    /// removes a version that snapshot can still see — observed through
    /// the domain index, the functional full scan, and the zone-prunable
    /// range scan alike.
    #[test]
    fn vacuum_never_removes_a_visible_version(
        n in 8usize..20,
        seed in any::<u64>(),
    ) {
        let server = setup(n, seed);
        let lo = (seed % 100) as i64;
        let hi = lo + 60;
        let victim = (seed % n as u64) as i64;
        let other = ((seed >> 16) % n as u64) as i64;

        let mut reader = server.session();
        reader.execute("BEGIN").unwrap();
        let baseline = observe(&mut reader, lo, hi);

        let mut writer = server.session();
        writer.execute("BEGIN").unwrap();
        writer
            .execute(&format!(
                "INSERT INTO MV (id, mol, num) VALUES ({}, 'CCO', {})",
                n as i64 + 1,
                lo + 1
            ))
            .unwrap();
        writer
            .execute(&format!("UPDATE MV SET mol = 'CCO', num = {} WHERE id = {victim}", lo + 2))
            .unwrap();
        writer.execute(&format!("DELETE FROM MV WHERE id = {other}")).unwrap();
        writer.execute("COMMIT").unwrap();

        // Hammer the vacuum with the reader's snapshot live: every pass
        // must keep each version the reader can still see.
        for _ in 0..3 {
            server.admin(|db| db.vacuum());
            prop_assert_eq!(&observe(&mut reader, lo, hi), &baseline);
        }
        reader.execute("COMMIT").unwrap();

        // With the reader retired the horizon advances past the commit;
        // a final pass drains everything and the new world is intact.
        server.admin(|db| db.vacuum());
        prop_assert_eq!(occupancy(&server), (0, 0));
        let now = observe(&mut server.session(), lo, hi);
        prop_assert!(now[0].contains(&(n as i64 + 1)) && now[1].contains(&(n as i64 + 1)));
        for obs in &now {
            prop_assert!(!obs.contains(&other), "committed DELETE must hide id {}", other);
        }
    }
}
