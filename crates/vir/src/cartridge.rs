//! The ODCIIndex implementation for the VIR indextype.
//!
//! Index storage: `DR$<index>$S (q1, rid, q2, q3, q4, sig)` — an
//! index-organized table keyed on `(q1, rid)`, where `q1…q4` are the
//! coarse per-channel means and `sig` is the serialized full signature.
//! Keying on `q1` makes the **first filter pass** ("a range query on the
//! index data table") an IOT range scan.
//!
//! The scan evaluates `VirSimilar` in the paper's three phases:
//! 1. range query on `q1` (coarse first channel) — via SQL `BETWEEN`;
//! 2. coarse weighted distance over `q1…q4` ≤ threshold;
//! 3. full signature comparison ≤ threshold (during fetch).

use extidx_common::{Error, Result, RowId, Value};
use extidx_core::build::{try_partition_map, DEFAULT_BUILD_BATCH_ROWS};
use extidx_core::meta::{IndexInfo, OperatorCall};
use extidx_core::params::ParamString;
use extidx_core::scan::{FetchResult, FetchedRow, ScanContext};
use extidx_core::server::{BaseRow, ServerContext};
use extidx_core::stats::{IndexCost, OdciStats};
use extidx_core::OdciIndex;

use crate::signature::{Signature, Weights, CHANNELS};

/// The indextype implementation.
pub struct VirIndexMethods;

fn sig_table(info: &IndexInfo) -> String {
    info.storage_table_name("S")
}

/// Extract a signature from an indexed column value: either a serialized
/// VARCHAR2 or a `VIR_IMAGE(signature)` object.
pub fn column_signature(v: &Value) -> Result<Option<Signature>> {
    Ok(match v {
        Value::Null => None,
        Value::Varchar(s) => Some(Signature::deserialize(s)?),
        Value::Object(_, attrs) => match attrs.first() {
            Some(Value::Varchar(s)) => Some(Signature::deserialize(s)?),
            Some(Value::Null) | None => None,
            Some(other) => {
                return Err(Error::type_mismatch("VARCHAR2 signature attribute", other.type_name()))
            }
        },
        other => return Err(Error::type_mismatch("VIR_IMAGE or VARCHAR2", other.type_name())),
    })
}

fn index_one(srv: &mut dyn ServerContext, info: &IndexInfo, rid: RowId, v: &Value) -> Result<()> {
    let Some(sig) = column_signature(v)? else { return Ok(()) };
    let c = sig.coarse();
    srv.execute(
        &format!("INSERT INTO {} VALUES (?, ?, ?, ?, ?, ?)", sig_table(info)),
        &[
            Value::Number(c[0]),
            Value::RowId(rid),
            Value::Number(c[1]),
            Value::Number(c[2]),
            Value::Number(c[3]),
            Value::from(sig.serialize()),
        ],
    )?;
    Ok(())
}

fn unindex_one(srv: &mut dyn ServerContext, info: &IndexInfo, rid: RowId, v: &Value) -> Result<()> {
    let Some(sig) = column_signature(v)? else { return Ok(()) };
    let c = sig.coarse();
    srv.execute(
        &format!("DELETE FROM {} WHERE q1 = ? AND rid = ?", sig_table(info)),
        &[Value::Number(c[0]), Value::RowId(rid)],
    )?;
    Ok(())
}

/// Parsed operator arguments: `(query signature, weights, threshold,
/// ancillary label?)`.
fn parse_args(info: &IndexInfo, op: &OperatorCall) -> Result<(Signature, Weights, f64)> {
    let sig_text = op
        .args
        .first()
        .and_then(|v| v.as_str().ok())
        .ok_or_else(|| Error::odci(&info.indextype_name, "ODCIIndexStart", "missing query signature"))?;
    let query = Signature::deserialize(sig_text)?;
    let weights = Weights::parse(op.args.get(1).and_then(|v| v.as_str().ok()).unwrap_or(""))?;
    let threshold = op
        .args
        .get(2)
        .and_then(|v| v.as_number().ok())
        .ok_or_else(|| Error::odci(&info.indextype_name, "ODCIIndexStart", "missing threshold"))?;
    Ok((query, weights, threshold))
}

/// Scan state: phase-2 survivors awaiting the phase-3 full comparison.
struct VirScan {
    query: Signature,
    weights: Weights,
    threshold: f64,
    /// `(rid, serialized signature)` candidates that passed phases 1–2.
    candidates: Vec<(RowId, String)>,
    pos: usize,
}

/// Counts of rows surviving each filter phase — the E4 report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseCounts {
    pub total: usize,
    pub after_range: usize,
    pub after_coarse: usize,
    pub matches: usize,
}

/// Run the three phases directly and report per-phase survivor counts
/// (used by the experiment harness to quantify filter effectiveness).
pub fn phase_counts(
    srv: &mut dyn ServerContext,
    info: &IndexInfo,
    query: &Signature,
    weights: &Weights,
    threshold: f64,
) -> Result<PhaseCounts> {
    let table = sig_table(info);
    let total = srv.query(&format!("SELECT COUNT(*) FROM {table}"), &[])?[0][0].as_integer()? as usize;
    let (rows, _) = phase12(srv, &table, query, weights, threshold)?;
    let after_coarse = rows.len();
    let after_range = phase1_count(srv, &table, query, weights, threshold)?;
    let mut matches = 0;
    for (_, sig_text) in &rows {
        let sig = Signature::deserialize(sig_text)?;
        if sig.distance(query, weights) <= threshold {
            matches += 1;
        }
    }
    Ok(PhaseCounts { total, after_range, after_coarse, matches })
}

/// Phase-1 candidate count alone (range query on `q1`).
fn phase1_count(
    srv: &mut dyn ServerContext,
    table: &str,
    query: &Signature,
    weights: &Weights,
    threshold: f64,
) -> Result<usize> {
    let qc = query.coarse();
    let (lo, hi) = phase1_bounds(&qc, weights, threshold);
    let rows = srv.query(
        &format!("SELECT COUNT(*) FROM {table} WHERE q1 BETWEEN ? AND ?"),
        &[Value::Number(lo), Value::Number(hi)],
    )?;
    Ok(rows[0][0].as_integer()? as usize)
}

/// Safe `q1` bounds: if the first channel's weight is positive, a
/// qualifying image's `q1` can differ by at most `threshold / w1`.
fn phase1_bounds(qc: &[f64; CHANNELS], w: &Weights, threshold: f64) -> (f64, f64) {
    if w.0[0] > 0.0 {
        let r = threshold / w.0[0];
        (qc[0] - r, qc[0] + r)
    } else {
        (f64::MIN, f64::MAX)
    }
}

/// Phases 1+2: range query on `q1`, then coarse-distance filter. Returns
/// surviving `(rid, serialized signature)` rows plus the phase-1 count.
fn phase12(
    srv: &mut dyn ServerContext,
    table: &str,
    query: &Signature,
    weights: &Weights,
    threshold: f64,
) -> Result<(Vec<(RowId, String)>, usize)> {
    let qc = query.coarse();
    let (lo, hi) = phase1_bounds(&qc, weights, threshold);
    let rows = srv.query(
        &format!("SELECT q1, rid, q2, q3, q4, sig FROM {table} WHERE q1 BETWEEN ? AND ?"),
        &[Value::Number(lo), Value::Number(hi)],
    )?;
    let phase1 = rows.len();
    let mut out = Vec::new();
    for r in rows {
        let c = [r[0].as_number()?, r[2].as_number()?, r[3].as_number()?, r[4].as_number()?];
        if Signature::coarse_distance(&qc, &c, weights) <= threshold {
            out.push((r[1].as_rowid()?, r[5].as_str()?.to_string()));
        }
    }
    Ok((out, phase1))
}

impl OdciIndex for VirIndexMethods {
    fn create(&self, srv: &mut dyn ServerContext, info: &IndexInfo) -> Result<()> {
        srv.execute(
            &format!(
                "CREATE TABLE {} (q1 NUMBER, rid ROWID, q2 NUMBER, q3 NUMBER, q4 NUMBER, \
                 sig VARCHAR2(2000), PRIMARY KEY (q1, rid)) ORGANIZATION INDEX",
                sig_table(info)
            ),
            &[],
        )?;
        let parallel = info.parameters.parallel_degree();
        srv.scan_base_batches(
            &info.table_name,
            &[&info.column_name],
            DEFAULT_BUILD_BATCH_ROWS,
            &mut |srv, batch| self.build_batch(srv, info, batch, parallel),
        )
    }

    fn build_batch(
        &self,
        srv: &mut dyn ServerContext,
        info: &IndexInfo,
        batch: &[BaseRow],
        parallel: usize,
    ) -> Result<()> {
        // Signature extraction + coarse-channel computation is the
        // CPU-heavy part (the paper's "feature extraction"); fan it out.
        // The per-row inserts stay on the coordinator, in input order.
        let prepared = try_partition_map(batch, parallel, |row| {
            Ok::<_, Error>(match column_signature(row.value())? {
                Some(sig) => {
                    let c = sig.coarse();
                    Some((row.rid, c, sig.serialize()))
                }
                None => None,
            })
        })?;
        let table = sig_table(info);
        let sql = format!("INSERT INTO {table} VALUES (?, ?, ?, ?, ?, ?)");
        for (rid, c, sig_text) in prepared.into_iter().flatten() {
            srv.execute(
                &sql,
                &[
                    Value::Number(c[0]),
                    Value::RowId(rid),
                    Value::Number(c[1]),
                    Value::Number(c[2]),
                    Value::Number(c[3]),
                    Value::from(sig_text),
                ],
            )?;
        }
        Ok(())
    }

    fn alter(&self, _srv: &mut dyn ServerContext, _info: &IndexInfo, _delta: &ParamString) -> Result<()> {
        Ok(())
    }

    fn truncate(&self, srv: &mut dyn ServerContext, info: &IndexInfo) -> Result<()> {
        srv.execute(&format!("TRUNCATE TABLE {}", sig_table(info)), &[])?;
        Ok(())
    }

    fn drop_index(&self, srv: &mut dyn ServerContext, info: &IndexInfo) -> Result<()> {
        srv.execute(&format!("DROP TABLE {}", sig_table(info)), &[])?;
        Ok(())
    }

    fn insert(
        &self,
        srv: &mut dyn ServerContext,
        info: &IndexInfo,
        rid: RowId,
        new_value: &Value,
    ) -> Result<()> {
        index_one(srv, info, rid, new_value)?;
        srv.fault_point("vir.maintenance.indexed")
    }

    fn update(
        &self,
        srv: &mut dyn ServerContext,
        info: &IndexInfo,
        rid: RowId,
        old_value: &Value,
        new_value: &Value,
    ) -> Result<()> {
        unindex_one(srv, info, rid, old_value)?;
        // Old signature removed, new one not yet written.
        srv.fault_point("vir.maintenance.reindex")?;
        index_one(srv, info, rid, new_value)
    }

    fn delete(
        &self,
        srv: &mut dyn ServerContext,
        info: &IndexInfo,
        rid: RowId,
        old_value: &Value,
    ) -> Result<()> {
        unindex_one(srv, info, rid, old_value)
    }

    fn start(
        &self,
        srv: &mut dyn ServerContext,
        info: &IndexInfo,
        op: &OperatorCall,
    ) -> Result<ScanContext> {
        let (query, weights, threshold) = parse_args(info, op)?;
        // Phases 1 and 2 — "the first two passes of filtering are very
        // selective and greatly reduce the data set on which the image
        // signature comparisons need to be performed."
        let (candidates, _) = phase12(srv, &sig_table(info), &query, &weights, threshold)?;
        Ok(ScanContext::State(Box::new(VirScan { query, weights, threshold, candidates, pos: 0 })))
    }

    fn fetch(
        &self,
        _srv: &mut dyn ServerContext,
        info: &IndexInfo,
        ctx: &mut ScanContext,
        nrows: usize,
    ) -> Result<FetchResult> {
        let wants_anc = false;
        let _ = wants_anc;
        let st = ctx.state_mut::<VirScan>().ok_or_else(|| {
            Error::odci(&info.indextype_name, "ODCIIndexFetch", "bad scan state")
        })?;
        let mut out = Vec::with_capacity(nrows);
        while out.len() < nrows && st.pos < st.candidates.len() {
            let (rid, sig_text) = &st.candidates[st.pos];
            st.pos += 1;
            // Phase 3: the actual image signature comparison.
            let sig = Signature::deserialize(sig_text)?;
            let d = sig.distance(&st.query, &st.weights);
            if d <= st.threshold {
                out.push(FetchedRow::with_ancillary(*rid, Value::Number(d)));
            }
        }
        let done = st.pos >= st.candidates.len();
        Ok(FetchResult { rows: out, done })
    }

    fn close(&self, _srv: &mut dyn ServerContext, _info: &IndexInfo, _ctx: ScanContext) -> Result<()> {
        Ok(())
    }
}

/// ODCIStats for the VIR indextype.
pub struct VirStats;

impl OdciStats for VirStats {
    fn collect(&self, _srv: &mut dyn ServerContext, _info: &IndexInfo) -> Result<()> {
        Ok(())
    }

    fn selectivity(
        &self,
        srv: &mut dyn ServerContext,
        info: &IndexInfo,
        op: &OperatorCall,
    ) -> Result<f64> {
        let total = srv.query(&format!("SELECT COUNT(*) FROM {}", sig_table(info)), &[])?[0][0]
            .as_integer()? as f64;
        if total == 0.0 {
            return Ok(0.0);
        }
        let Ok((query, weights, threshold)) = parse_args(info, op) else { return Ok(0.01) };
        let phase1 = phase1_count(srv, &sig_table(info), &query, &weights, threshold)? as f64;
        // Coarse/full filters cut phase-1 candidates further; halve as a
        // rough calibration.
        Ok((phase1 / total * 0.5).clamp(0.0, 1.0))
    }

    fn index_cost(
        &self,
        srv: &mut dyn ServerContext,
        info: &IndexInfo,
        _op: &OperatorCall,
        selectivity: f64,
    ) -> Result<IndexCost> {
        let total = srv.query(&format!("SELECT COUNT(*) FROM {}", sig_table(info)), &[])?[0][0]
            .as_integer()? as f64;
        // Range scan of the candidate fraction plus per-candidate coarse
        // math; full comparisons only for survivors.
        Ok(IndexCost {
            io_cost: 2.0 + total * selectivity / 40.0,
            cpu_cost: total * selectivity * 0.002,
        })
    }
}
