//! A miniature molecular model with a SMILES-like linear notation.
//!
//! Stand-in for Daylight's chemistry (the real toolkit is proprietary):
//! molecules are undirected labeled graphs parsed from a linear notation
//! supporting element symbols (`C`, `N`, `O`, `S`, `P`, `F`, `Cl`, `Br`,
//! `I`), bond orders (`-` single implied, `=` double, `#` triple),
//! branches in parentheses, and single-digit ring closures — enough to
//! express the substructure/similarity workloads the §3.2.4 case study
//! needs, while exercising real graph algorithms (path enumeration for
//! fingerprints, subgraph isomorphism for exact matching).

use extidx_common::{Error, Result};

/// An atom: its element symbol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    pub element: String,
}

/// A bond between two atoms with an order (1, 2, 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bond {
    pub a: usize,
    pub b: usize,
    pub order: u8,
}

/// A molecule graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Molecule {
    pub atoms: Vec<Atom>,
    pub bonds: Vec<Bond>,
}

impl Molecule {
    /// Parse the linear notation.
    pub fn parse(input: &str) -> Result<Molecule> {
        let chars: Vec<char> = input.chars().collect();
        let mut atoms: Vec<Atom> = Vec::new();
        let mut bonds: Vec<Bond> = Vec::new();
        let mut stack: Vec<usize> = Vec::new();
        let mut prev: Option<usize> = None;
        let mut pending_order: u8 = 1;
        let mut rings: std::collections::HashMap<u8, (usize, u8)> = std::collections::HashMap::new();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            match c {
                ' ' => i += 1,
                '-' => {
                    pending_order = 1;
                    i += 1;
                }
                '=' => {
                    pending_order = 2;
                    i += 1;
                }
                '#' => {
                    pending_order = 3;
                    i += 1;
                }
                '(' => {
                    let p = prev.ok_or_else(|| Error::Parse("branch with no prior atom".into()))?;
                    stack.push(p);
                    i += 1;
                }
                ')' => {
                    prev = Some(
                        stack.pop().ok_or_else(|| Error::Parse("unbalanced ) in molecule".into()))?,
                    );
                    i += 1;
                }
                d if d.is_ascii_digit() => {
                    let p = prev.ok_or_else(|| Error::Parse("ring digit with no prior atom".into()))?;
                    let key = d as u8 - b'0';
                    match rings.remove(&key) {
                        Some((other, order)) => {
                            bonds.push(Bond { a: other, b: p, order: order.max(pending_order) });
                        }
                        None => {
                            rings.insert(key, (p, pending_order));
                        }
                    }
                    pending_order = 1;
                    i += 1;
                }
                c if c.is_ascii_uppercase() => {
                    // Two-letter elements: Cl, Br.
                    let mut element = c.to_string();
                    if let Some(&next) = chars.get(i + 1) {
                        if next.is_ascii_lowercase() && matches!((c, next), ('C', 'l') | ('B', 'r')) {
                            element.push(next);
                            i += 1;
                        }
                    }
                    if !matches!(element.as_str(), "C" | "N" | "O" | "S" | "P" | "F" | "Cl" | "Br" | "I" | "B" | "H")
                    {
                        return Err(Error::Parse(format!("unknown element {element:?}")));
                    }
                    let idx = atoms.len();
                    atoms.push(Atom { element });
                    if let Some(p) = prev {
                        bonds.push(Bond { a: p, b: idx, order: pending_order });
                    }
                    prev = Some(idx);
                    pending_order = 1;
                    i += 1;
                }
                other => return Err(Error::Parse(format!("unexpected character {other:?} in molecule"))),
            }
        }
        if !stack.is_empty() {
            return Err(Error::Parse("unbalanced ( in molecule".into()));
        }
        if !rings.is_empty() {
            return Err(Error::Parse("unclosed ring bond in molecule".into()));
        }
        if atoms.is_empty() {
            return Err(Error::Parse("empty molecule".into()));
        }
        Ok(Molecule { atoms, bonds })
    }

    /// Number of atoms.
    pub fn atom_count(&self) -> usize {
        self.atoms.len()
    }

    /// Adjacency list: `(neighbor, bond order)` per atom.
    pub fn adjacency(&self) -> Vec<Vec<(usize, u8)>> {
        let mut adj = vec![Vec::new(); self.atoms.len()];
        for b in &self.bonds {
            adj[b.a].push((b.b, b.order));
            adj[b.b].push((b.a, b.order));
        }
        adj
    }

    /// All linear paths up to `max_len` atoms, rendered as label strings
    /// (the fingerprint features). Each path is emitted in its
    /// lexicographically smaller direction so both traversals agree.
    pub fn paths(&self, max_len: usize) -> Vec<String> {
        let adj = self.adjacency();
        let mut out = Vec::new();
        for start in 0..self.atoms.len() {
            let mut visited = vec![false; self.atoms.len()];
            visited[start] = true;
            let mut path = vec![start];
            let mut bonds = Vec::new();
            self.walk(&adj, &mut visited, &mut path, &mut bonds, max_len, &mut out);
        }
        out
    }

    /// Render a path canonically: the lexicographically smaller of the
    /// forward and reverse atom/bond sequences.
    fn render_path(&self, path: &[usize], bonds: &[&'static str]) -> String {
        let fwd = {
            let mut s = self.atoms[path[0]].element.clone();
            for (i, b) in bonds.iter().enumerate() {
                s.push_str(b);
                s.push_str(&self.atoms[path[i + 1]].element);
            }
            s
        };
        let rev = {
            let n = path.len();
            let mut s = self.atoms[path[n - 1]].element.clone();
            for i in (0..bonds.len()).rev() {
                s.push_str(bonds[i]);
                s.push_str(&self.atoms[path[i]].element);
            }
            s
        };
        if fwd <= rev {
            fwd
        } else {
            rev
        }
    }

    fn walk(
        &self,
        adj: &[Vec<(usize, u8)>],
        visited: &mut Vec<bool>,
        path: &mut Vec<usize>,
        bonds: &mut Vec<&'static str>,
        max_len: usize,
        out: &mut Vec<String>,
    ) {
        out.push(self.render_path(path, bonds));
        if path.len() >= max_len {
            return;
        }
        let last = *path.last().expect("path nonempty");
        for &(n, order) in &adj[last] {
            if visited[n] {
                continue;
            }
            visited[n] = true;
            path.push(n);
            bonds.push(match order {
                2 => "=",
                3 => "#",
                _ => "-",
            });
            self.walk(adj, visited, path, bonds, max_len, out);
            bonds.pop();
            path.pop();
            visited[n] = false;
        }
    }

    /// Exact subgraph-isomorphism check: is `pattern` a substructure of
    /// `self`? Atom labels and bond orders must match; extra bonds in
    /// `self` between matched atoms are allowed (standard substructure
    /// semantics).
    pub fn contains_subgraph(&self, pattern: &Molecule) -> bool {
        if pattern.atoms.len() > self.atoms.len() {
            return false;
        }
        let p_adj = pattern.adjacency();
        let t_adj = self.adjacency();
        let mut mapping = vec![usize::MAX; pattern.atoms.len()];
        let mut used = vec![false; self.atoms.len()];
        self.match_rec(pattern, &p_adj, &t_adj, 0, &mut mapping, &mut used)
    }

    fn match_rec(
        &self,
        pattern: &Molecule,
        p_adj: &[Vec<(usize, u8)>],
        t_adj: &[Vec<(usize, u8)>],
        next: usize,
        mapping: &mut Vec<usize>,
        used: &mut Vec<bool>,
    ) -> bool {
        if next == pattern.atoms.len() {
            return true;
        }
        'candidates: for t in 0..self.atoms.len() {
            if used[t] || self.atoms[t].element != pattern.atoms[next].element {
                continue;
            }
            // Every already-mapped pattern neighbor of `next` must be a
            // target neighbor of `t` with a matching bond order.
            for &(pn, order) in &p_adj[next] {
                if pn < next {
                    let tn = mapping[pn];
                    if !t_adj[t].iter().any(|&(x, o)| x == tn && o == order) {
                        continue 'candidates;
                    }
                }
            }
            mapping[next] = t;
            used[t] = true;
            if self.match_rec(pattern, p_adj, t_adj, next + 1, mapping, used) {
                return true;
            }
            used[t] = false;
            mapping[next] = usize::MAX;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_chains_and_bonds() {
        let m = Molecule::parse("CC=O").unwrap();
        assert_eq!(m.atom_count(), 3);
        assert_eq!(m.bonds.len(), 2);
        assert_eq!(m.bonds[1].order, 2);
    }

    #[test]
    fn parses_branches() {
        // isobutane-ish: C(C)(C)C
        let m = Molecule::parse("C(C)(C)C").unwrap();
        assert_eq!(m.atom_count(), 4);
        let adj = m.adjacency();
        assert_eq!(adj[0].len(), 3, "central carbon bonds to three others");
    }

    #[test]
    fn parses_rings() {
        // cyclohexane: C1CCCCC1
        let m = Molecule::parse("C1CCCCC1").unwrap();
        assert_eq!(m.atom_count(), 6);
        assert_eq!(m.bonds.len(), 6);
        let adj = m.adjacency();
        assert!(adj.iter().all(|n| n.len() == 2), "every ring atom has two neighbors");
    }

    #[test]
    fn parses_two_letter_elements() {
        let m = Molecule::parse("CCl").unwrap();
        assert_eq!(m.atoms[1].element, "Cl");
        let m = Molecule::parse("CBr").unwrap();
        assert_eq!(m.atoms[1].element, "Br");
    }

    #[test]
    fn parse_errors() {
        assert!(Molecule::parse("").is_err());
        assert!(Molecule::parse("C(C").is_err());
        assert!(Molecule::parse("C)").is_err());
        assert!(Molecule::parse("C1CC").is_err(), "unclosed ring");
        assert!(Molecule::parse("Xy").is_err());
        assert!(Molecule::parse("(C)").is_err(), "branch before any atom");
    }

    #[test]
    fn substructure_chain_in_ring() {
        let ring = Molecule::parse("C1CCCCC1").unwrap();
        let chain = Molecule::parse("CCC").unwrap();
        assert!(ring.contains_subgraph(&chain));
        assert!(!chain.contains_subgraph(&ring));
    }

    #[test]
    fn substructure_respects_bond_order() {
        let aldehyde = Molecule::parse("CC=O").unwrap();
        let single_co = Molecule::parse("C-O").unwrap();
        let double_co = Molecule::parse("C=O").unwrap();
        assert!(aldehyde.contains_subgraph(&double_co));
        assert!(!aldehyde.contains_subgraph(&single_co));
    }

    #[test]
    fn substructure_respects_elements() {
        let m = Molecule::parse("CCN").unwrap();
        assert!(m.contains_subgraph(&Molecule::parse("CN").unwrap()));
        assert!(!m.contains_subgraph(&Molecule::parse("CO").unwrap()));
    }

    #[test]
    fn self_is_substructure_of_self() {
        for s in ["C", "CC=O", "C1CCCCC1", "C(C)(C)C", "CC(=O)N"] {
            let m = Molecule::parse(s).unwrap();
            assert!(m.contains_subgraph(&m), "{s}");
        }
    }

    #[test]
    fn paths_canonical_direction() {
        let m = Molecule::parse("CN").unwrap();
        let paths = m.paths(2);
        // Both directions canonicalize to the same 2-atom path string.
        let two: Vec<&String> = paths.iter().filter(|p| p.contains('-')).collect();
        assert_eq!(two.len(), 2);
        assert_eq!(two[0], two[1]);
    }

    #[test]
    fn branch_molecule_roundtrip_paths() {
        let m = Molecule::parse("CC(=O)N").unwrap();
        let paths = m.paths(4);
        assert!(paths.iter().any(|p| p.contains('=')), "double bond appears in a path");
        assert!(!paths.is_empty());
    }
}
