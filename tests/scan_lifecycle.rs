//! Scan-lifecycle invariant: every `ODCIIndexStart` is matched by an
//! `ODCIIndexClose` — across clean runs, faults at every scan crossing,
//! LIMIT early termination, forced plans, domain joins, and a multi-seed
//! qgen sweep. A cartridge whose scan context leaks never gets it back;
//! the engine must close best-effort on every error path (traced under
//! RECOVERY) while the original error still wins.

use extidx::core::fault::FaultKind;
use extidx::sql::Database;
use extidx::spatial::{geometry_sql, Geometry, Mbr};

fn start_close_counts(db: &Database) -> (u64, u64) {
    let mut starts = 0;
    let mut closes = 0;
    for (_, routine, s) in db.trace().aggregates() {
        match routine {
            "ODCIIndexStart" => starts += s.calls,
            "ODCIIndexClose" => closes += s.calls,
            _ => {}
        }
    }
    (starts, closes)
}

fn assert_balanced(db: &Database, label: &str) {
    let (starts, closes) = start_close_counts(db);
    assert_eq!(starts, closes, "{label}: {starts} ODCIIndexStart vs {closes} ODCIIndexClose");
}

fn text_db(bulk: i64) -> Database {
    let mut db = Database::with_cache_pages(4096);
    extidx::text::install(&mut db).unwrap();
    db.execute("CREATE TABLE docs (id INTEGER, body VARCHAR2(200))").unwrap();
    for i in 0..bulk {
        let body = if i % 5 == 0 {
            format!("gorse stand {i}")
        } else {
            format!("filler {i}")
        };
        db.execute_with("INSERT INTO docs VALUES (?, ?)", &[i.into(), body.into()]).unwrap();
    }
    db.execute("CREATE INDEX dt ON docs(body) INDEXTYPE IS TextIndexType").unwrap();
    db
}

/// The fault matrix over the scan path: permanent and transient faults
/// at the k-th Start/Fetch/Close crossing must leave the event stream
/// balanced — failed starts record a synthetic close, failed fetches
/// close best-effort, and failed closes still count as closes.
#[test]
fn faults_at_every_scan_crossing_leave_start_close_balanced() {
    let mut db = text_db(100);
    db.trace().set_enabled(true);
    let inj = db.fault_injector().clone();
    let probe = "SELECT id FROM docs WHERE Contains(body, 'gorse')";
    let clean = db.query(probe).unwrap();
    assert_balanced(&db, "clean run");

    let mut injected = 0u32;
    for point in ["ODCIIndexStart", "ODCIIndexFetch", "ODCIIndexClose"] {
        for k in 1..=6u64 {
            for kind in [FaultKind::Fail, FaultKind::Transient { failures: 1 }] {
                let transient = matches!(kind, FaultKind::Transient { .. });
                inj.reset();
                inj.arm(point, Some("TEXTINDEXTYPE"), k, kind);
                db.trace().clear();
                let res = db.query(probe);
                let reached = inj.fired() > 0;
                inj.disarm_all();
                let label = format!("{point}#{k} ({:?})", if transient { "transient" } else { "fail" });
                assert_balanced(&db, &label);
                if reached {
                    // Scan crossings have no retry loop: both kinds fail
                    // the query, and the engine stays usable.
                    assert!(res.is_err(), "{label}: query should fail");
                    injected += 1;
                } else {
                    assert_eq!(res.unwrap(), clean, "{label}: clean run diverged");
                }
                db.trace().clear();
                assert_eq!(db.query(probe).unwrap(), clean, "{label}: engine wedged");
                assert_balanced(&db, &format!("{label}: recovery probe"));
            }
        }
    }
    assert!(injected >= 6, "matrix must actually reach faults ({injected} injected runs)");
}

/// LIMIT early termination abandons the scan mid-stream; the Limit node
/// must still drive the close. Both the cost-chosen plan and a forced
/// `INDEX` hint path are covered, and EXPLAIN ANALYZE's instrumented
/// tree must uphold the same invariant.
#[test]
fn limit_early_termination_and_forced_plans_close_the_scan() {
    let mut db = text_db(100);
    db.trace().set_enabled(true);
    for sql in [
        "SELECT id FROM docs WHERE Contains(body, 'gorse') LIMIT 1",
        "SELECT /*+ INDEX(docs dt) */ id FROM docs WHERE Contains(body, 'gorse') LIMIT 2",
        "SELECT /*+ INDEX(docs dt) */ id FROM docs WHERE Contains(body, 'gorse')",
        "EXPLAIN ANALYZE SELECT id FROM docs WHERE Contains(body, 'gorse') LIMIT 1",
    ] {
        db.trace().clear();
        let rows = db.query(sql).unwrap();
        assert!(!rows.is_empty(), "{sql}: no rows");
        let (starts, closes) = start_close_counts(&db);
        assert!(starts > 0, "{sql}: the domain scan never started");
        assert_eq!(starts, closes, "{sql}: unbalanced lifecycle");
    }
}

/// Domain joins re-parameterize one scan per outer row (reset + start);
/// every one of those starts needs its close, including under a fetch
/// fault striking deep into the join.
#[test]
fn domain_join_scans_balance_under_faults() {
    let mut db = Database::with_cache_pages(4096);
    extidx::spatial::install(&mut db).unwrap();
    for table in ["roads", "parks"] {
        db.execute(&format!("CREATE TABLE {table} (gid INTEGER, geometry SDO_GEOMETRY)")).unwrap();
    }
    let rect = |x0: f64, y0: f64, x1: f64, y1: f64| {
        geometry_sql(&Geometry::Rect(Mbr { xmin: x0, ymin: y0, xmax: x1, ymax: y1 }))
    };
    for i in 0..12 {
        let o = f64::from(i) * 30.0;
        let r = rect(o, 0.0, o + 40.0, 10.0);
        let p = rect(o + 5.0, 0.0, o + 20.0, 50.0);
        db.execute(&format!("INSERT INTO roads VALUES ({i}, {r})")).unwrap();
        db.execute(&format!("INSERT INTO parks VALUES ({i}, {p})")).unwrap();
    }
    db.execute("CREATE INDEX parks_sidx ON parks(geometry) INDEXTYPE IS SpatialIndexType").unwrap();
    db.trace().set_enabled(true);

    let join = "SELECT r.gid, p.gid FROM roads r, parks p \
                WHERE Sdo_Relate(r.geometry, p.geometry, 'mask=OVERLAPS')";
    let plan = db.explain(join).unwrap().join("\n");
    assert!(plan.contains("DOMAIN JOIN"), "setup must produce a domain join:\n{plan}");

    db.trace().clear();
    let rows = db.query(join).unwrap();
    assert!(!rows.is_empty());
    let (starts, closes) = start_close_counts(&db);
    assert!(starts > 1, "a domain join starts one scan per outer row");
    assert_eq!(starts, closes, "clean domain join unbalanced");

    // Fetch faults mid-join: the k-th fetch dies, its scan must close.
    let inj = db.fault_injector().clone();
    for k in [1u64, 3, 5] {
        inj.reset();
        inj.arm("ODCIIndexFetch", Some("SPATIALINDEXTYPE"), k, FaultKind::Fail);
        db.trace().clear();
        let res = db.query(join);
        let reached = inj.fired() > 0;
        inj.disarm_all();
        assert!(reached, "fetch#{k} never reached");
        assert!(res.is_err());
        assert_balanced(&db, &format!("join fetch#{k}"));
    }
    db.trace().clear();
    assert_eq!(db.query(join).unwrap(), rows, "engine wedged after join faults");
}

/// Multi-seed qgen sweep: the generated workloads cover all five
/// cartridges, DDL churn, forced-plan hints, and ORDER BY/LIMIT early
/// termination. After every statement (and each hinted variant) the
/// Start/Close aggregate counts must match exactly.
#[test]
fn qgen_sweep_never_leaks_a_scan_context() {
    use extidx_qgen::gen::Stmt;

    for seed in [0xD1FF_u64, 7, 23] {
        let workload = extidx_qgen::generate(seed, 120);
        let mut db = extidx_qgen::fresh_db(extidx_qgen::ChaosOpts::default());
        for sql in &workload.preamble {
            db.execute(sql).unwrap_or_else(|e| panic!("preamble {sql}: {e}"));
        }
        db.trace().set_enabled(true);
        for (i, stmt) in workload.stmts.iter().enumerate() {
            let mut sqls = vec![stmt.sql()];
            if let Stmt::Query(q) = stmt {
                // Forced-plan variants: hint every domain index on the
                // table plus the hintless scan-suppressing paths.
                sqls.push(q.sql(Some(&format!("FULL({})", q.table))));
                for d in db.catalog().domain_indexes_on(q.table) {
                    sqls.push(q.sql(Some(&format!("INDEX({} {})", q.table, d.name))));
                }
                sqls.push(q.count_sql(None));
            }
            for sql in sqls {
                // Hinted variants may legitimately error (e.g. a forced
                // index whose operator doesn't match); leaks may not.
                let _ = db.execute(&sql);
                let (starts, closes) = start_close_counts(&db);
                assert_eq!(
                    starts, closes,
                    "seed {seed}, statement {i}: scan leak after {sql:?}"
                );
            }
        }
    }
}
