//! Property tests for spatial geometry and tiling invariants, including
//! the critical one: the tile-based primary filter never misses an
//! interacting pair (no false dismissals before the exact filter).

use proptest::prelude::*;

use extidx_spatial::{Geometry, Mask, Mbr, Tessellation};

fn arb_rect() -> impl Strategy<Value = Geometry> {
    (0.0f64..900.0, 0.0f64..900.0, 1.0f64..100.0, 1.0f64..100.0).prop_map(|(x, y, w, h)| {
        Geometry::Rect(Mbr { xmin: x, ymin: y, xmax: x + w, ymax: y + h })
    })
}

fn arb_point() -> impl Strategy<Value = Geometry> {
    (0.0f64..1000.0, 0.0f64..1000.0).prop_map(|(x, y)| Geometry::Point { x, y })
}

fn arb_triangle() -> impl Strategy<Value = Geometry> {
    (50.0f64..900.0, 50.0f64..900.0, 1.0f64..50.0, 1.0f64..50.0, 1.0f64..50.0).prop_map(
        |(cx, cy, a, b, c)| {
            Geometry::Polygon(vec![(cx - a, cy - b), (cx + b, cy - c), (cx + c, cy + a)])
        },
    )
}

fn arb_geom() -> impl Strategy<Value = Geometry> {
    prop_oneof![arb_rect(), arb_point(), arb_triangle()]
}

proptest! {
    /// intersects is symmetric.
    #[test]
    fn intersects_symmetric(a in arb_geom(), b in arb_geom()) {
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
    }

    /// contains implies intersects; equality implies both contains.
    #[test]
    fn contains_implies_intersects(a in arb_geom(), b in arb_geom()) {
        if a.contains(&b) {
            prop_assert!(a.intersects(&b));
        }
        prop_assert!(a.contains(&a));
        prop_assert!(a.relate(&a, Mask::Equal));
    }

    /// OVERLAPS, INSIDE, CONTAINS, EQUAL are mutually exclusive and each
    /// implies ANYINTERACT.
    #[test]
    fn masks_partition_interactions(a in arb_rect(), b in arb_rect()) {
        let relations = [Mask::Overlaps, Mask::Inside, Mask::Contains, Mask::Equal];
        let holding: Vec<Mask> =
            relations.into_iter().filter(|m| a.relate(&b, *m)).collect();
        prop_assert!(holding.len() <= 1, "multiple exclusive masks hold: {holding:?}");
        for m in &holding {
            prop_assert!(a.relate(&b, Mask::AnyInteract), "{m:?} without ANYINTERACT");
        }
        // INSIDE and CONTAINS are converses.
        prop_assert_eq!(a.relate(&b, Mask::Inside), b.relate(&a, Mask::Contains));
    }

    /// The primary filter is safe: interacting geometries always share at
    /// least one tile, at any tessellation level.
    #[test]
    fn primary_filter_never_misses(a in arb_geom(), b in arb_geom(), level in 1u32..8) {
        let tess = Tessellation { world: 1024.0, level };
        if a.intersects(&b) {
            let ta = tess.tiles_for(&a);
            let tb = tess.tiles_for(&b);
            prop_assert!(
                ta.iter().any(|t| tb.contains(t)),
                "interacting geometries share no tile at level {level}"
            );
        }
    }

    /// Every geometry maps to at least one tile, and all tile codes are
    /// within the grid.
    #[test]
    fn tiles_are_in_range(g in arb_geom(), level in 1u32..8) {
        let tess = Tessellation { world: 1024.0, level };
        let tiles = tess.tiles_for(&g);
        prop_assert!(!tiles.is_empty());
        let max = (tess.grid() * tess.grid()) as i64;
        for t in tiles {
            prop_assert!((0..max).contains(&t));
        }
    }

    /// Serialization round-trips geometry exactly.
    #[test]
    fn serialization_roundtrip(g in arb_geom()) {
        let s = g.serialize();
        let back = Geometry::deserialize(&s).unwrap();
        prop_assert_eq!(back, g);
    }

    /// MBR containment is implied by geometric containment.
    #[test]
    fn mbr_respects_containment(a in arb_geom(), b in arb_geom()) {
        if a.contains(&b) {
            prop_assert!(a.mbr().contains(&b.mbr()));
        }
        if a.intersects(&b) {
            prop_assert!(a.mbr().intersects(&b.mbr()));
        }
    }

    /// A rect always contains its own center point.
    #[test]
    fn rect_contains_center(g in arb_rect()) {
        let m = g.mbr();
        let (cx, cy) = ((m.xmin + m.xmax) / 2.0, (m.ymin + m.ymax) / 2.0);
        prop_assert!(g.covers_point(cx, cy));
        let center = Geometry::Point { x: cx, y: cy };
        prop_assert!(g.relate(&center, Mask::Contains));
    }
}
