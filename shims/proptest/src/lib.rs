//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace ships a
//! small property-testing runner with the same spelling as the proptest
//! API surface its tests use: the `proptest!` macro, `prop_assert*`
//! macros, `prop_oneof!`, `Just`, `any`, `prop::collection::vec`, ranges
//! and `&str` regex-lite patterns as strategies, `prop_map`,
//! `prop_recursive`, and `BoxedStrategy`.
//!
//! Differences from real proptest, deliberately accepted: no shrinking
//! (failures report the case number and seed instead), a fixed per-test
//! case count (`PROPTEST_CASES` env var, default 32), and `&str`
//! strategies support only the character-class pattern subset the
//! workspace's tests use (literals, `[...]` classes with ranges, and
//! `{m}`/`{m,n}` repetition).

pub mod strategy;
pub mod test_runner;

pub mod collection {
    pub use crate::strategy::{btree_map, vec};
}

pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    pub mod prop {
        pub use crate::collection;
    }
}

/// Run each property as a `#[test]`, drawing inputs from the listed
/// strategies for `PROPTEST_CASES` iterations (default 32).
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let cases = $crate::test_runner::case_count();
            let mut rng = $crate::test_runner::rng_for(stringify!($name));
            for case in 0..cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property '{}' failed at case {}/{}: {}",
                        stringify!($name),
                        case,
                        cases,
                        e
                    );
                }
            }
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                        stringify!($left), stringify!($right), l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}\n  left: {:?}\n right: {:?}", format!($($fmt)+), l, r),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {} != {}\n  both: {:?}",
                        stringify!($left), stringify!($right), l),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}\n  both: {:?}", format!($($fmt)+), l),
            ));
        }
    }};
}

/// Choose uniformly among the listed strategies (all must yield the same
/// value type). Weighted arms are not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
