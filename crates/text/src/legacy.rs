//! The pre-Oracle8i two-step text query execution — the baseline of the
//! §3.2.1 case study.
//!
//! "In releases prior to Oracle8i, the text indexing code, though
//! logically a part of the Oracle server, was not known by the query
//! optimizer to be a valid access path. As a result, text queries were
//! evaluated as a two step process: (1) The text index was scanned and all
//! the rows satisfying the predicate were identified. The row identifiers
//! … were written out into a temporary result table … (2) The original
//! query was rewritten as a join" of the base table with that temporary
//! table.
//!
//! [`two_step_query`] reproduces exactly that flow against the same
//! inverted-index table the modern cartridge maintains, so E2 can compare
//! the two executions over identical index data. The extra temp-table
//! writes, the extra join, and the loss of first-row pipelining are all
//! faithfully present.

use extidx_common::{Result, Row, Value};
use extidx_sql::Database;

use crate::query::parse_query;

/// Monotonic temp-table suffix so concurrent/benchmark calls don't clash.
static TEMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Run `SELECT {select_cols} FROM {base_table} WHERE Contains({…}) ` the
/// pre-8i way, using the inverted-index table `DR$<index_name>$I`.
///
/// Returns the result rows. I/O done for the temporary result table is
/// visible in the database's cache statistics — that is the point.
pub fn two_step_query(
    db: &mut Database,
    base_table: &str,
    select_cols: &str,
    index_name: &str,
    text_query: &str,
) -> Result<Vec<Row>> {
    let q = parse_query(text_query)?;

    // Step 1: scan the text index for ALL satisfying rowids.
    let index_table = format!("DR${}$I", index_name.to_ascii_uppercase());
    let mut postings = std::collections::BTreeMap::new();
    for term in q.terms() {
        if postings.contains_key(&term) {
            continue;
        }
        let rows = db.query_with(
            &format!("SELECT rid, freq FROM {index_table} WHERE token = ?"),
            &[Value::from(term.clone())],
        )?;
        let mut list = std::collections::BTreeMap::new();
        for r in rows {
            list.insert(r[0].as_rowid()?, r[1].as_integer()? as u32);
        }
        postings.insert(term, list);
    }
    let matches = q.evaluate_postings(&postings)?;

    // …written out into a temporary result table.
    let seq = TEMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let temp = format!("TEXT_RESULTS_{seq}");
    db.execute(&format!("CREATE TABLE {temp} (rid ROWID)"))?;
    let rids: Vec<Value> = matches.keys().map(|r| Value::RowId(*r)).collect();
    for chunk in rids.chunks(256) {
        let mut sql = format!("INSERT INTO {temp} VALUES ");
        for i in 0..chunk.len() {
            if i > 0 {
                sql.push_str(", ");
            }
            sql.push_str("(?)");
        }
        db.execute_with(&sql, chunk)?;
    }

    // Step 2: the rewritten join — "SELECT d.* FROM docs d, results r
    // WHERE d.rowid = r.rid".
    let join = format!(
        "SELECT {select_cols} FROM {base_table} d, {temp} r WHERE d.ROWID = r.rid"
    );
    let result = db.query(&join);

    // Clean up the temporary table regardless of query outcome.
    let _ = db.execute(&format!("DROP TABLE {temp}"));
    result
}

/// The first-row variant: run the two-step flow but stop after the first
/// joined row (for first-row-latency comparisons). The full temp table is
/// still built first — that is precisely the pre-8i behaviour E2 measures.
pub fn two_step_first_row(
    db: &mut Database,
    base_table: &str,
    select_cols: &str,
    index_name: &str,
    text_query: &str,
) -> Result<Option<Row>> {
    let mut rows = two_step_query(db, base_table, select_cols, index_name, text_query)?;
    Ok(if rows.is_empty() { None } else { Some(rows.swap_remove(0)) })
}
