//! Text search at scale: the §3.2.1 case study as a demo.
//!
//! Builds a synthetic Zipfian corpus, indexes it with the text cartridge,
//! and contrasts the modern pipelined execution against the pre-Oracle8i
//! two-step (temp-table + join) execution: total time, time to first row,
//! and buffer-cache I/O.
//!
//! Run with: `cargo run --release --example text_search`

use std::time::Instant;

use extidx::sql::Database;
use extidx::text::{legacy, CorpusGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let docs = 4000;
    let doc_len = 60;
    let mut gen = CorpusGenerator::new(2000, 1.0, 42);

    let mut db = Database::with_cache_pages(16_384);
    extidx::text::install(&mut db)?;
    db.execute("CREATE TABLE docs (id INTEGER, body VARCHAR2(4000))")?;
    print!("loading {docs} documents… ");
    let t = Instant::now();
    for (i, body) in gen.corpus(docs, doc_len).into_iter().enumerate() {
        db.execute_with("INSERT INTO docs VALUES (?, ?)", &[(i as i64).into(), body.into()])?;
    }
    println!("{:?}", t.elapsed());

    print!("building inverted index… ");
    let t = Instant::now();
    db.execute("CREATE INDEX doc_text ON docs(body) INDEXTYPE IS TextIndexType")?;
    println!("{:?}", t.elapsed());
    db.execute("ANALYZE TABLE docs")?;

    println!(
        "\n{:<28} {:>10} {:>12} {:>12} {:>10} {:>8}",
        "query", "rows", "total", "first-row", "log.reads", "speedup"
    );
    for (label, term_rank) in [("rare term", 800), ("mid term", 60), ("common term", 4)] {
        let term = gen.term(term_rank).to_string();

        // Modern: single-step pipelined domain-index scan.
        db.reset_cache_stats();
        let t = Instant::now();
        let mut cur = db.open_query(&format!(
            "SELECT id FROM docs WHERE Contains(body, '{term}')"
        ))?;
        let _first = cur.next_row()?;
        let first_latency = t.elapsed();
        let mut n = 1usize;
        while cur.next_row()?.is_some() {
            n += 1;
        }
        drop(cur);
        let modern_total = t.elapsed();
        let modern_io = db.cache_stats().logical_reads;

        // Legacy: two-step temp-table execution over the same index data.
        db.reset_cache_stats();
        let t = Instant::now();
        let legacy_rows = legacy::two_step_query(&mut db, "docs", "d.id", "doc_text", &term)?;
        let legacy_total = t.elapsed();
        let legacy_io = db.cache_stats().logical_reads;
        assert_eq!(legacy_rows.len(), n);

        println!(
            "{:<28} {:>10} {:>12?} {:>12?} {:>10} {:>7.1}x",
            format!("{label} ({term})"),
            n,
            modern_total,
            first_latency,
            modern_io,
            legacy_total.as_secs_f64() / modern_total.as_secs_f64(),
        );
        println!(
            "{:<28} {:>10} {:>12?} {:>12} {:>10}",
            "  └ legacy two-step", legacy_rows.len(), legacy_total, "(all rows)", legacy_io
        );
    }

    println!("\nThe legacy path writes a temporary result table and joins it back —");
    println!("more I/O, no first-row pipelining, one extra join (§3.2.1).");
    Ok(())
}
