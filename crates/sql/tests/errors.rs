//! Error-path coverage: the engine must fail cleanly (never panic) on
//! malformed SQL, unknown objects, and semantic violations — and the
//! parser must survive arbitrary input.

use proptest::prelude::*;

use extidx_common::Error;
use extidx_sql::parser::parse;
use extidx_sql::Database;

fn db() -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (a INTEGER, b VARCHAR2(10))").unwrap();
    db.execute("INSERT INTO t VALUES (1, 'x')").unwrap();
    db
}

#[test]
fn unknown_objects() {
    let mut db = db();
    assert!(matches!(db.query("SELECT * FROM nope"), Err(Error::NotFound { .. })));
    assert!(matches!(db.query("SELECT nope FROM t"), Err(Error::NotFound { .. })));
    assert!(matches!(db.execute("DROP TABLE nope"), Err(Error::NotFound { .. })));
    assert!(matches!(db.execute("DROP INDEX nope"), Err(Error::NotFound { .. })));
    assert!(matches!(
        db.execute("CREATE INDEX i ON t(a) INDEXTYPE IS Missing"),
        Err(Error::NotFound { .. })
    ));
    assert!(matches!(
        db.execute("CREATE OPERATOR op BINDING (INTEGER) RETURN BOOLEAN USING MissingFn"),
        Err(Error::NotFound { .. })
    ));
}

#[test]
fn duplicate_objects() {
    let mut db = db();
    assert!(matches!(
        db.execute("CREATE TABLE t (x INTEGER)"),
        Err(Error::AlreadyExists { .. })
    ));
    db.execute("CREATE INDEX i ON t(a)").unwrap();
    assert!(matches!(db.execute("CREATE INDEX i ON t(b)"), Err(Error::AlreadyExists { .. })));
}

#[test]
fn semantic_violations() {
    let mut db = db();
    // Wrong INSERT arity.
    assert!(db.execute("INSERT INTO t VALUES (1)").is_err());
    // Type mismatch.
    assert!(matches!(
        db.execute("INSERT INTO t VALUES ('str', 'x')"),
        Err(Error::TypeMismatch { .. })
    ));
    // Ambiguous column in a self-join.
    assert!(db.query("SELECT a FROM t x, t y").is_err());
    // HAVING without aggregation context.
    assert!(db.query("SELECT a FROM t HAVING a > 1").is_err());
    // Aggregate in WHERE.
    assert!(db.query("SELECT a FROM t WHERE COUNT(*) > 1").is_err());
    // Wildcard with GROUP BY.
    assert!(db.query("SELECT * FROM t GROUP BY a").is_err());
    // ORGANIZATION INDEX without a primary key.
    assert!(db.execute("CREATE TABLE iot (x INTEGER) ORGANIZATION INDEX").is_err());
    // PK not a prefix.
    assert!(db
        .execute("CREATE TABLE iot (x INTEGER, y INTEGER, PRIMARY KEY (y)) ORGANIZATION INDEX")
        .is_err());
}

#[test]
fn transaction_violations() {
    let mut db = db();
    db.execute("BEGIN").unwrap();
    assert!(matches!(db.execute("BEGIN"), Err(Error::Transaction(_))));
    db.execute("ROLLBACK").unwrap();
    // COMMIT/ROLLBACK without a transaction are tolerated no-ops.
    assert!(db.execute("COMMIT").is_ok());
    assert!(db.execute("ROLLBACK").is_ok());
}

#[test]
fn btree_on_unindexable_column_is_guided_to_domain_indexes() {
    let mut db = Database::new();
    db.execute("CREATE TABLE blobs (data CLOB)").unwrap();
    let err = db.execute("CREATE INDEX bi ON blobs(data)").unwrap_err();
    assert!(err.to_string().contains("extensible indexing"), "{err}");
}

#[test]
fn explain_only_supports_select() {
    let mut db = db();
    assert!(matches!(
        db.execute("EXPLAIN INSERT INTO t VALUES (2, 'y')"),
        Err(Error::Unsupported(_))
    ));
}

#[test]
fn failed_statement_reports_original_error_not_cleanup_noise() {
    let mut db = db();
    let err = db.execute("INSERT INTO t VALUES (2, 'y'), (3, 4)").unwrap_err();
    assert!(matches!(err, Error::TypeMismatch { .. }), "{err}");
    // And nothing from the failed statement survived.
    assert_eq!(db.query("SELECT COUNT(*) FROM t").unwrap()[0][0], extidx_common::Value::Integer(1));
}

proptest! {
    /// The parser never panics, whatever bytes arrive.
    #[test]
    fn parser_never_panics(input in ".{0,80}") {
        let _ = parse(&input);
    }

    /// Same for SQL-flavoured token soup (more likely to get deep into
    /// the grammar than raw unicode).
    #[test]
    fn parser_survives_token_soup(
        words in prop::collection::vec(
            prop_oneof![
                Just("SELECT".to_string()), Just("FROM".to_string()), Just("WHERE".to_string()),
                Just("INSERT".to_string()), Just("CREATE".to_string()), Just("INDEX".to_string()),
                Just("TABLE".to_string()), Just("(".to_string()), Just(")".to_string()),
                Just(",".to_string()), Just("*".to_string()), Just("=".to_string()),
                Just("'lit'".to_string()), Just("7".to_string()), Just("id".to_string()),
                Just("AND".to_string()), Just("OR".to_string()), Just("NOT".to_string()),
                Just("GROUP".to_string()), Just("BY".to_string()), Just("ORDER".to_string()),
            ],
            0..25,
        )
    ) {
        let sql = words.join(" ");
        let _ = parse(&sql);
    }

    /// Executing random near-SQL never panics the engine either (errors
    /// are fine; crashes are not).
    #[test]
    fn execute_never_panics(input in "[A-Za-z0-9 ,.*()='?]{0,60}") {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (a INTEGER)").unwrap();
        let _ = db.execute(&input);
    }
}
