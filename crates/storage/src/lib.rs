//! # extidx-storage
//!
//! The storage substrate standing in for Oracle8i's storage layer in the
//! extensible-indexing reproduction. It provides every storage construct
//! the paper says domain indexes are built from (§2.5: "The index data can
//! be stored within the database itself in heap tables, index-organized
//! tables and in Large Objects (LOBs). The index data can also be stored
//! outside the database as files"):
//!
//! - [`heap::HeapTable`] — slotted-page heap segments addressed by
//!   [`RowId`](extidx_common::RowId);
//! - [`iot::IndexOrganizedTable`] — B-tree-organized tables keyed by a
//!   [`Key`](extidx_common::Key) prefix (the paper notes IOTs are the most
//!   common domain-index data store);
//! - [`lob::LobStore`] — out-of-line large objects with a file-like
//!   read/write interface (used by the Daylight chemistry case study);
//! - [`file_store::FileStore`] — storage *outside* the database, with
//!   operation counters, for the pre-8i file-index baselines;
//! - [`buffer::BufferCache`] — an LRU page cache that converts every page
//!   touch into logical/physical I/O statistics, so experiments can report
//!   the paper's "reduced I/O" claims quantitatively;
//! - [`undo::UndoLog`] — row-level undo enabling transaction rollback; the
//!   key point reproduced here is that **domain-index data stored in
//!   database objects rolls back for free**, while file-stored index data
//!   does not (paper §5);
//! - [`engine::StorageEngine`] — the façade that owns all segments and
//!   funnels every access through the buffer cache and undo log.

pub mod buffer;
pub mod engine;
pub mod file_store;
pub mod heap;
pub mod iot;
pub mod lob;
pub mod mvcc;
pub mod page;
pub mod undo;
pub mod wal;

pub use buffer::{BufferCache, CacheStats};
pub use engine::StorageEngine;
pub use mvcc::{Snapshot, TxnManager, TxnStatus, WriteKey, WriteRef};
pub use page::{SegmentId, PAGE_SIZE};
pub use undo::{UndoLog, UndoOp};
pub use wal::{
    CommitBlob, DurableMedium, EngineSnapshot, RecoveryImage, WalRecord, WalStats,
    WAL_FAULT_POINTS,
};
