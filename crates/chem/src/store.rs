//! Fingerprint record storage — database LOB vs external file.
//!
//! The §3.2.4 migration story: "The indexing scheme previously used a
//! proprietary file-based index structure… An extensible indexing solution
//! was provided by storing the data within the database as LOBs. Since
//! LOBs can be accessed and manipulated with a file-like interface,
//! minimal changes were required to the index management software."
//!
//! Both backends store the same fixed-width records — packed rowid (8
//! bytes) + fingerprint ([`FP_BYTES`] bytes) — through a file-like API:
//!
//! - **LOB mode** (the 8i solution): records live in one LOB whose
//!   locator is kept in a tiny metadata table. Appends and in-place
//!   tombstoning touch only the affected pages, reads go through the
//!   buffer cache, and every change is transactional.
//! - **FILE mode** (the legacy baseline): records live in an external
//!   file. Faithful to the legacy engine, every maintenance operation
//!   rewrites and flushes the whole file ("the extensible indexing based
//!   solution scales much better than the file based indexing scheme
//!   because it minimizes intermediate write operations") — and nothing
//!   here participates in transactions (§5's limitation).

use extidx_common::{Error, LobRef, Result, RowId, Value};
use extidx_core::build::{partition_map, DEFAULT_BUILD_BATCH_ROWS};
use extidx_core::meta::IndexInfo;
use extidx_core::server::{BaseRow, ServerContext};

use crate::fingerprint::{Fingerprint, FP_BYTES};

/// Bytes per record: packed rowid + fingerprint.
pub const RECORD_BYTES: usize = 8 + FP_BYTES;

/// Tombstone marker in the rowid slot of deleted records.
const TOMBSTONE: u64 = u64::MAX;

/// Which backend an index uses (`PARAMETERS (':Storage LOB|FILE')`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageMode {
    Lob,
    File,
}

impl StorageMode {
    /// Read the mode from index parameters (default LOB).
    pub fn from_info(info: &IndexInfo) -> StorageMode {
        match info.parameters.first("Storage") {
            Some(m) if m.eq_ignore_ascii_case("FILE") => StorageMode::File,
            _ => StorageMode::Lob,
        }
    }
}

/// Metadata table holding the LOB locator.
fn meta_table(info: &IndexInfo) -> String {
    info.storage_table_name("META")
}

/// External file name for FILE mode.
pub fn file_name(info: &IndexInfo) -> String {
    format!("dr${}.fpidx", info.index_name.to_ascii_lowercase())
}

fn encode_record(rid: u64, fp: &Fingerprint) -> [u8; RECORD_BYTES] {
    let mut rec = [0u8; RECORD_BYTES];
    rec[..8].copy_from_slice(&rid.to_le_bytes());
    rec[8..].copy_from_slice(&fp.to_bytes());
    rec
}

fn decode_records(bytes: &[u8]) -> Result<Vec<(RowId, Fingerprint)>> {
    if !bytes.len().is_multiple_of(RECORD_BYTES) {
        return Err(Error::Storage(format!(
            "fingerprint store corrupted: {} bytes is not a record multiple",
            bytes.len()
        )));
    }
    let mut out = Vec::with_capacity(bytes.len() / RECORD_BYTES);
    for rec in bytes.chunks(RECORD_BYTES) {
        let rid = u64::from_le_bytes(rec[..8].try_into().expect("8-byte slice"));
        if rid == TOMBSTONE {
            continue;
        }
        let fp = Fingerprint::from_bytes(&rec[8..])
            .ok_or_else(|| Error::Storage("bad fingerprint payload".into()))?;
        out.push((RowId::from_u64(rid), fp));
    }
    Ok(out)
}

/// The record store for one index, dispatching on storage mode.
pub struct FingerprintStore {
    pub mode: StorageMode,
}

impl FingerprintStore {
    /// Store handle for an index.
    pub fn for_index(info: &IndexInfo) -> FingerprintStore {
        FingerprintStore { mode: StorageMode::from_info(info) }
    }

    /// Create the backing storage (LOB + meta table, or external file).
    pub fn create(&self, srv: &mut dyn ServerContext, info: &IndexInfo) -> Result<()> {
        match self.mode {
            StorageMode::Lob => {
                srv.execute(
                    &format!("CREATE TABLE {} (id INTEGER, data CLOB)", meta_table(info)),
                    &[],
                )?;
                let lob = srv.lob_create()?;
                srv.execute(
                    &format!("INSERT INTO {} VALUES (1, ?)", meta_table(info)),
                    &[Value::Lob(lob)],
                )?;
            }
            StorageMode::File => {
                srv.file_create(&file_name(info))?;
            }
        }
        Ok(())
    }

    /// Drop the backing storage.
    pub fn drop_store(&self, srv: &mut dyn ServerContext, info: &IndexInfo) -> Result<()> {
        match self.mode {
            StorageMode::Lob => {
                let lob = self.locator(srv, info)?;
                srv.lob_free(lob)?;
                srv.execute(&format!("DROP TABLE {}", meta_table(info)), &[])?;
            }
            StorageMode::File => {
                // A half-created or already-cleaned index may have no
                // file; dropping it must still succeed (idempotent).
                let name = file_name(info);
                if srv.file_exists(&name) {
                    srv.file_remove(&name)?;
                }
            }
        }
        Ok(())
    }

    /// Remove all records.
    pub fn truncate(&self, srv: &mut dyn ServerContext, info: &IndexInfo) -> Result<()> {
        match self.mode {
            StorageMode::Lob => {
                let lob = self.locator(srv, info)?;
                srv.lob_overwrite(lob, &[])?;
            }
            StorageMode::File => {
                srv.file_create(&file_name(info))?; // create truncates
            }
        }
        Ok(())
    }

    fn locator(&self, srv: &mut dyn ServerContext, info: &IndexInfo) -> Result<LobRef> {
        let rows = srv.query(&format!("SELECT data FROM {} WHERE id = 1", meta_table(info)), &[])?;
        rows.first()
            .and_then(|r| r.first())
            .and_then(|v| v.as_lob().ok())
            .ok_or_else(|| Error::Storage("fingerprint LOB locator missing".into()))
    }

    /// Append one record.
    pub fn append(
        &self,
        srv: &mut dyn ServerContext,
        info: &IndexInfo,
        rid: RowId,
        fp: &Fingerprint,
    ) -> Result<()> {
        let rec = encode_record(rid.to_u64(), fp);
        match self.mode {
            StorageMode::Lob => {
                let lob = self.locator(srv, info)?;
                srv.lob_append(lob, &rec)?;
            }
            StorageMode::File => {
                // Legacy behaviour: read-modify-rewrite the whole file and
                // flush — the "intermediate write operations" the paper
                // calls out.
                let name = file_name(info);
                // External file I/O during maintenance is classified
                // retryable: the read-modify-rewrite cycle is restartable
                // from scratch, so a transient filesystem error should be
                // retried by the server rather than abort the statement.
                let mut bytes = srv.file_read(&name).map_err(Error::retryable)?;
                bytes.extend_from_slice(&rec);
                srv.file_write(&name, &bytes).map_err(Error::retryable)?;
                srv.file_flush(&name).map_err(Error::retryable)?;
            }
        }
        Ok(())
    }

    /// Tombstone the record for a rowid (if present).
    pub fn remove(&self, srv: &mut dyn ServerContext, info: &IndexInfo, rid: RowId) -> Result<()> {
        let target = rid.to_u64();
        match self.mode {
            StorageMode::Lob => {
                let lob = self.locator(srv, info)?;
                let bytes = srv.lob_read_all(lob)?;
                for (i, rec) in bytes.chunks(RECORD_BYTES).enumerate() {
                    if rec.len() == RECORD_BYTES
                        && u64::from_le_bytes(rec[..8].try_into().expect("8 bytes")) == target
                    {
                        // In-place tombstone: one small patch write.
                        srv.lob_write(lob, (i * RECORD_BYTES) as u64, &TOMBSTONE.to_le_bytes())?;
                    }
                }
            }
            StorageMode::File => {
                let name = file_name(info);
                // Retryable for the same reason as `append`: the whole
                // cycle restarts cleanly from the on-disk image.
                let bytes = srv.file_read(&name).map_err(Error::retryable)?;
                let mut out = Vec::with_capacity(bytes.len());
                for rec in bytes.chunks(RECORD_BYTES) {
                    if rec.len() == RECORD_BYTES
                        && u64::from_le_bytes(rec[..8].try_into().expect("8 bytes")) == target
                    {
                        continue;
                    }
                    out.extend_from_slice(rec);
                }
                srv.file_write(&name, &out).map_err(Error::retryable)?;
                srv.file_flush(&name).map_err(Error::retryable)?;
            }
        }
        Ok(())
    }

    /// Read every live record.
    pub fn read_all(
        &self,
        srv: &mut dyn ServerContext,
        info: &IndexInfo,
    ) -> Result<Vec<(RowId, Fingerprint)>> {
        let bytes = match self.mode {
            StorageMode::Lob => {
                let lob = self.locator(srv, info)?;
                srv.lob_read_all(lob)?
            }
            StorageMode::File => srv.file_read(&file_name(info))?,
        };
        decode_records(&bytes)
    }

    /// Fingerprint one base row: parse the molecule and encode its
    /// record. Pure CPU — safe to run on a build worker thread.
    /// Unparsable or non-text rows are skipped, as the serial rebuild
    /// always did.
    fn fingerprint_row(row: &BaseRow) -> Option<[u8; RECORD_BYTES]> {
        let text = row.value().as_str().ok()?;
        let mol = crate::molecule::Molecule::parse(text).ok()?;
        Some(encode_record(row.rid.to_u64(), &Fingerprint::of(&mol)))
    }

    /// Rebuild the store from the base table — used at create time and by
    /// the database-event handler that re-synchronizes an external file
    /// store after a rollback (§5's proposed solution).
    ///
    /// The base table is streamed batch-by-batch (never fully
    /// materialized) and molecule parsing + fingerprinting — the CPU-heavy
    /// part — fans across `PARALLEL <n>` worker threads; record order
    /// stays identical to a serial rebuild.
    pub fn rebuild_from_base(&self, srv: &mut dyn ServerContext, info: &IndexInfo) -> Result<()> {
        let parallel = info.parameters.parallel_degree();
        let mut bytes: Vec<u8> = Vec::new();
        srv.scan_base_batches(
            &info.table_name,
            &[&info.column_name],
            DEFAULT_BUILD_BATCH_ROWS,
            &mut |_srv, batch| {
                for rec in partition_map(batch, parallel, Self::fingerprint_row).into_iter().flatten()
                {
                    bytes.extend_from_slice(&rec);
                }
                Ok(())
            },
        )?;
        // Internal milestone: the fingerprint image is assembled but not
        // yet written — a fault here leaves the store created-but-stale
        // (the lifecycle orphan-audit tests arm this).
        srv.fault_point("chem.build.assembled")?;
        match self.mode {
            StorageMode::Lob => {
                let lob = self.locator(srv, info)?;
                srv.lob_overwrite(lob, &bytes)?;
            }
            StorageMode::File => {
                let name = file_name(info);
                srv.file_write(&name, &bytes)?;
                srv.file_flush(&name)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::molecule::Molecule;

    #[test]
    fn record_roundtrip() {
        let fp = Fingerprint::of(&Molecule::parse("CC=O").unwrap());
        let rid = RowId::new(3, 17, 4);
        let rec = encode_record(rid.to_u64(), &fp);
        let decoded = decode_records(&rec).unwrap();
        assert_eq!(decoded, vec![(rid, fp)]);
    }

    #[test]
    fn tombstones_are_skipped() {
        let fp = Fingerprint::of(&Molecule::parse("C").unwrap());
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&encode_record(TOMBSTONE, &fp));
        bytes.extend_from_slice(&encode_record(RowId::new(1, 0, 0).to_u64(), &fp));
        let decoded = decode_records(&bytes).unwrap();
        assert_eq!(decoded.len(), 1);
    }

    #[test]
    fn corrupt_length_rejected() {
        assert!(decode_records(&[1, 2, 3]).is_err());
    }
}
