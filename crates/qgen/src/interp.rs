//! The brute-force mirror interpreter.
//!
//! A [`Mirror`] is a `BTreeMap` copy of each fuzz table, maintained from
//! the *structured* statements (never by parsing SQL). Queries are
//! answered by evaluating the predicate tree over every row with SQL
//! three-valued logic, calling only the cartridges' pure domain
//! functions — the tokenizer, geometry algebra, signature distance, and
//! subgraph matcher. None of the engine layers under test (parser,
//! optimizer, executor, ODCI scan machinery, storage) are involved, so
//! agreement is meaningful evidence.

use std::collections::BTreeMap;

use extidx_chem::{Fingerprint, Molecule};
use extidx_spatial::Mask;
use extidx_text::{query::parse_query, tokenizer};
use extidx_vir::{Signature, Weights};

use crate::gen::{Atom, Col, GenCell, GenRow, Pred, Query, HEAP, IOT};

/// In-memory copies of both fuzz tables, keyed by the unique `id`.
#[derive(Debug, Default, Clone)]
pub struct Mirror {
    pub heap: BTreeMap<i64, GenRow>,
    pub iot: BTreeMap<i64, GenRow>,
}

impl Mirror {
    pub fn table(&self, t: &str) -> &BTreeMap<i64, GenRow> {
        match t {
            HEAP => &self.heap,
            IOT => &self.iot,
            other => panic!("unknown fuzz table {other}"),
        }
    }

    pub fn table_mut(&mut self, t: &str) -> &mut BTreeMap<i64, GenRow> {
        match t {
            HEAP => &mut self.heap,
            IOT => &mut self.iot,
            other => panic!("unknown fuzz table {other}"),
        }
    }
}

/// Apply an UPDATE cell to one row.
pub fn apply_cell(row: &mut GenRow, cell: &GenCell) {
    match cell {
        GenCell::Doc(v) => row.doc = v.clone(),
        GenCell::Geom(v) => row.geom = v.clone(),
        GenCell::Img(v) => row.img = v.clone(),
        GenCell::Mol(v) => row.mol = v.clone(),
        GenCell::Num(v) => row.num = *v,
    }
}

fn mol(s: &str) -> Molecule {
    Molecule::parse(s).expect("generated molecule parses")
}

/// Evaluate one atom under three-valued logic: `None` is SQL's UNKNOWN.
/// Any NULL operand — stored or literal — makes an operator atom
/// UNKNOWN, matching both the engine's functional short-circuit and the
/// domain-index path (which never returns rows for NULL arguments).
pub fn eval_atom(a: &Atom, row: &GenRow) -> Option<bool> {
    match a {
        Atom::Contains { query, .. } => {
            let q = query.as_deref()?;
            let doc = row.doc.as_deref()?;
            let parsed = parse_query(q).expect("generated text query parses");
            let tokens = tokenizer::tokenize(doc, &tokenizer::StopWords::none());
            Some(parsed.matches(&tokens))
        }
        Atom::SdoRelate { window, mask } => {
            let w = window.as_ref()?;
            let g = row.geom.as_ref()?;
            let m = Mask::parse(mask).expect("generated mask parses");
            Some(g.relate(w, m))
        }
        Atom::VirSimilar { sig, weights, threshold } => {
            let q = Signature::deserialize(sig.as_deref()?).expect("query signature parses");
            let s = Signature::deserialize(row.img.as_deref()?).expect("stored signature parses");
            let w = Weights::parse(weights).expect("generated weights parse");
            Some(s.distance(&q, &w) <= *threshold)
        }
        Atom::MolContains { frag } => {
            let f = mol(frag.as_deref()?);
            let m = mol(row.mol.as_deref()?);
            Some(m.contains_subgraph(&f))
        }
        Atom::MolSimilar { query, threshold } => {
            let a = Fingerprint::of(&mol(row.mol.as_deref()?));
            let b = Fingerprint::of(&mol(query));
            Some(a.tanimoto(&b) >= *threshold)
        }
        Atom::NumCmp { op, value } => {
            let n = row.num?;
            Some(match *op {
                "<" => n < *value,
                "<=" => n <= *value,
                ">" => n > *value,
                ">=" => n >= *value,
                "=" => n == *value,
                other => panic!("unknown num op {other}"),
            })
        }
        Atom::IdEq { id } => Some(row.id == *id),
        Atom::IdBetween { lo, hi } => Some((*lo..=*hi).contains(&row.id)),
        Atom::IsNull { col, negated } => {
            let is_null = match col {
                Col::Doc => row.doc.is_none(),
                Col::Geom => row.geom.is_none(),
                Col::Img => row.img.is_none(),
                Col::Mol => row.mol.is_none(),
                Col::Num => row.num.is_none(),
            };
            Some(is_null != *negated)
        }
    }
}

/// Kleene AND/OR over the predicate tree.
pub fn eval_pred(p: &Pred, row: &GenRow) -> Option<bool> {
    match p {
        Pred::Atom(a) => eval_atom(a, row),
        Pred::And(cs) => {
            let mut unknown = false;
            for c in cs {
                match eval_pred(c, row) {
                    Some(false) => return Some(false),
                    None => unknown = true,
                    Some(true) => {}
                }
            }
            if unknown {
                None
            } else {
                Some(true)
            }
        }
        Pred::Or(cs) => {
            let mut unknown = false;
            for c in cs {
                match eval_pred(c, row) {
                    Some(true) => return Some(true),
                    None => unknown = true,
                    Some(false) => {}
                }
            }
            if unknown {
                None
            } else {
                Some(false)
            }
        }
    }
}

/// All ids the query's WHERE clause accepts, ascending — before LIMIT.
/// A WHERE clause accepts a row only when it evaluates to TRUE (UNKNOWN
/// rejects).
pub fn accepted_ids(q: &Query, mirror: &Mirror) -> Vec<i64> {
    mirror
        .table(q.table)
        .values()
        .filter(|row| eval_pred(&q.pred, row) == Some(true))
        .map(|row| row.id)
        .collect()
}

/// The query's expected id list: ascending, truncated by LIMIT.
pub fn query_ids(q: &Query, mirror: &Mirror) -> Vec<i64> {
    let mut ids = accepted_ids(q, mirror);
    if let Some(n) = q.order_limit {
        ids.truncate(n as usize);
    }
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::Atom;

    fn row(id: i64, doc: Option<&str>, num: Option<f64>) -> GenRow {
        GenRow { id, doc: doc.map(String::from), geom: None, img: None, mol: None, num }
    }

    #[test]
    fn null_operands_are_unknown_not_false_positive() {
        let r = row(1, None, None);
        let contains = Atom::Contains { query: Some("alpha".into()), label: None };
        assert_eq!(eval_atom(&contains, &r), None, "NULL doc is UNKNOWN");
        let null_query = Atom::Contains { query: None, label: None };
        let r2 = row(2, Some("alpha beta"), None);
        assert_eq!(eval_atom(&null_query, &r2), None, "NULL literal is UNKNOWN");
        let isnull = Atom::IsNull { col: Col::Doc, negated: false };
        assert_eq!(eval_atom(&isnull, &r), Some(true), "IS NULL is two-valued");
    }

    #[test]
    fn kleene_or_rescues_unknown_and_rejects_it() {
        let r = row(1, None, Some(5.0));
        let unknown = Pred::Atom(Atom::Contains { query: Some("x".into()), label: None });
        let yes = Pred::Atom(Atom::NumCmp { op: ">", value: 1.0 });
        let no = Pred::Atom(Atom::NumCmp { op: "<", value: 1.0 });
        assert_eq!(eval_pred(&Pred::Or(vec![unknown.clone(), yes]), &r), Some(true));
        assert_eq!(eval_pred(&Pred::Or(vec![unknown.clone(), no.clone()]), &r), None);
        assert_eq!(eval_pred(&Pred::And(vec![unknown, no]), &r), Some(false));
    }
}
