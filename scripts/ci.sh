#!/usr/bin/env bash
# Tier-1 gate + lints. Run from anywhere; works fully offline (all
# third-party deps are vendored as path shims — see shims/README.md).
#
# Note: cargo only accepts CARGO_NET_OFFLINE=true/false, not 0/1.
set -euo pipefail
cd "$(dirname "$0")/.."
export CARGO_NET_OFFLINE=true

echo "== build (release) =="
cargo build --release

echo "== tests (workspace, including ignored long sweeps) =="
cargo test --workspace -q -- --include-ignored

# Differential query oracle (tests/differential.rs). DIFF_SEED picks the
# seed of the default 200-statement run (decimal or 0x-hex); on a
# divergence the test's panic output prints the failing seed and the
# delta-debugged minimal SQL repro script.
echo "== differential oracle (DIFF_SEED=${DIFF_SEED:-0xD1FF}) =="
DIFF_SEED="${DIFF_SEED:-0xD1FF}" \
    cargo test -q --test differential -- --include-ignored --nocapture

echo "== fault matrix (statement atomicity at every cartridge crossing) =="
cargo test -q --test fault_matrix -- --include-ignored

# Observability layer: EXPLAIN ANALYZE instrumentation + V$ virtual
# tables + scan-lifecycle invariants, then the per-cartridge EXPLAIN
# ANALYZE smoke tests (all five indextypes annotate their domain scan).
echo "== observability (EXPLAIN ANALYZE + V\$ smoke) =="
cargo test -q --test observability --test scan_lifecycle
cargo test -q -p extidx-text -p extidx-spatial -p extidx-vir -p extidx-chem explain_analyze

# Cartridge sandbox: the quarantine state machine end to end, the panic
# fault matrix (FaultKind::Panic at every ODCI crossing and every
# cartridge-internal fault point), and the 3-seed qgen chaos sweep that
# flips indexes QUARANTINED<->VALID mid-workload demanding bag-equality.
echo "== cartridge sandbox (quarantine + panic containment) =="
cargo test -q --test quarantine
cargo test -q --test fault_matrix panic_at_every_crossing -- --include-ignored
cargo test -q --test differential quarantine_chaos_sweep -- --include-ignored

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "CI OK"
