//! The Indextype schema object.
//!
//! The paper (§1): "A new schema object, called an Indextype, specifies
//! the routines that manage all the aspects of application-specific
//! index… It also specifies the set of user-defined operators that can be
//! evaluated using a domain index defined using this indextype."
//!
//! `CREATE INDEXTYPE TextIndexType FOR Contains(VARCHAR2, VARCHAR2) USING
//! TextIndexMethods` becomes an [`IndexType`] value: the supported
//! operator signatures plus an `Arc<dyn OdciIndex>` standing in for the
//! implementing object type, and optionally an `Arc<dyn OdciStats>` for
//! the optimizer interface.

use std::sync::Arc;

use extidx_common::SqlType;

use crate::odci::OdciIndex;
use crate::stats::OdciStats;

/// An operator signature an indextype declares support for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupportedOperator {
    /// Operator name, upper-cased.
    pub name: String,
    /// Declared argument types of the supported binding.
    pub arg_types: Vec<SqlType>,
}

/// The indextype schema object.
#[derive(Clone)]
pub struct IndexType {
    /// Indextype name, upper-cased.
    pub name: String,
    /// Operators whose predicates a domain index of this type can
    /// evaluate.
    pub operators: Vec<SupportedOperator>,
    /// The user implementation of the ODCIIndex routines (the paper's
    /// `USING TextIndexMethods` clause).
    pub implementation: Arc<dyn OdciIndex>,
    /// Optional optimizer interface (ODCIStats).
    pub stats: Arc<dyn OdciStats>,
}

impl IndexType {
    /// Create an indextype.
    pub fn new(
        name: impl Into<String>,
        operators: Vec<SupportedOperator>,
        implementation: Arc<dyn OdciIndex>,
        stats: Arc<dyn OdciStats>,
    ) -> Self {
        IndexType {
            name: name.into().to_ascii_uppercase(),
            operators: operators
                .into_iter()
                .map(|o| SupportedOperator { name: o.name.to_ascii_uppercase(), arg_types: o.arg_types })
                .collect(),
            implementation,
            stats,
        }
    }

    /// Whether this indextype supports evaluating `operator` (§2.4.2's
    /// check that "the index is of type TextIndexType, and TextIndexType
    /// supports the appropriate Contains() operator"). Arity is checked;
    /// declared types are advisory, as binding resolution already
    /// happened at the operator level.
    pub fn supports(&self, operator: &str, arg_count: usize) -> bool {
        let upper = operator.to_ascii_uppercase();
        self.operators
            .iter()
            .any(|o| o.name == upper && o.arg_types.len() == arg_count)
    }
}

impl std::fmt::Debug for IndexType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IndexType")
            .field("name", &self.name)
            .field("operators", &self.operators)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::{IndexInfo, OperatorCall};
    use crate::params::ParamString;
    use crate::scan::{FetchResult, ScanContext};
    use crate::server::ServerContext;
    use crate::stats::{DefaultStats, IndexCost};
    use extidx_common::{Result, RowId, Value};

    struct NullIndex;

    impl OdciIndex for NullIndex {
        fn create(&self, _: &mut dyn ServerContext, _: &IndexInfo) -> Result<()> {
            Ok(())
        }
        fn alter(&self, _: &mut dyn ServerContext, _: &IndexInfo, _: &ParamString) -> Result<()> {
            Ok(())
        }
        fn truncate(&self, _: &mut dyn ServerContext, _: &IndexInfo) -> Result<()> {
            Ok(())
        }
        fn drop_index(&self, _: &mut dyn ServerContext, _: &IndexInfo) -> Result<()> {
            Ok(())
        }
        fn insert(&self, _: &mut dyn ServerContext, _: &IndexInfo, _: RowId, _: &Value) -> Result<()> {
            Ok(())
        }
        fn update(
            &self,
            _: &mut dyn ServerContext,
            _: &IndexInfo,
            _: RowId,
            _: &Value,
            _: &Value,
        ) -> Result<()> {
            Ok(())
        }
        fn delete(&self, _: &mut dyn ServerContext, _: &IndexInfo, _: RowId, _: &Value) -> Result<()> {
            Ok(())
        }
        fn start(
            &self,
            _: &mut dyn ServerContext,
            _: &IndexInfo,
            _: &OperatorCall,
        ) -> Result<ScanContext> {
            Ok(ScanContext::State(Box::new(())))
        }
        fn fetch(
            &self,
            _: &mut dyn ServerContext,
            _: &IndexInfo,
            _: &mut ScanContext,
            _: usize,
        ) -> Result<FetchResult> {
            Ok(FetchResult::end())
        }
        fn close(&self, _: &mut dyn ServerContext, _: &IndexInfo, _: ScanContext) -> Result<()> {
            Ok(())
        }
    }

    struct NullStats;
    impl crate::stats::OdciStats for NullStats {
        fn collect(&self, _: &mut dyn ServerContext, _: &IndexInfo) -> Result<()> {
            Ok(())
        }
        fn selectivity(&self, _: &mut dyn ServerContext, _: &IndexInfo, _: &OperatorCall) -> Result<f64> {
            Ok(DefaultStats::default().default_selectivity)
        }
        fn index_cost(
            &self,
            _: &mut dyn ServerContext,
            _: &IndexInfo,
            _: &OperatorCall,
            _: f64,
        ) -> Result<IndexCost> {
            Ok(IndexCost { io_cost: 1.0, cpu_cost: 0.0 })
        }
    }

    fn sample() -> IndexType {
        IndexType::new(
            "TextIndexType",
            vec![SupportedOperator {
                name: "contains".into(),
                arg_types: vec![SqlType::Varchar(4000), SqlType::Varchar(4000)],
            }],
            Arc::new(NullIndex),
            Arc::new(NullStats),
        )
    }

    #[test]
    fn supports_checks_name_and_arity() {
        let it = sample();
        assert_eq!(it.name, "TEXTINDEXTYPE");
        assert!(it.supports("Contains", 2));
        assert!(it.supports("CONTAINS", 2));
        assert!(!it.supports("Contains", 3));
        assert!(!it.supports("Overlaps", 2));
    }

    #[test]
    fn debug_omits_trait_objects() {
        let s = format!("{:?}", sample());
        assert!(s.contains("TEXTINDEXTYPE"));
    }
}
