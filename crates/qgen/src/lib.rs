//! # extidx-qgen — differential query oracle
//!
//! A seeded workload fuzzer for the extensible-indexing engine. Every
//! user-defined operator in the framework has *two* engine execution
//! strategies that must agree — the domain-index scan
//! (ODCIIndexStart/Fetch/Close) and the functional fallback (§2.4.2) —
//! plus a third, engine-independent answer this crate computes itself
//! from the cartridges' pure predicate functions. The oracle runs every
//! generated query through all reachable plans, pinned with the
//! plan-forcing hints (`/*+ INDEX(t idx) */`, `/*+ NO_INDEX */`,
//! `/*+ FULL */`), and demands bag-equality of the result sets and
//! NoREC-style agreement between row retrieval and `COUNT(*)`.
//!
//! - [`gen`] — structured schemas, rows, and statement streams, fully
//!   deterministic per seed (heap and index-organized tables, NULL-heavy
//!   columns, all five cartridge domains, mixed AND/OR predicates,
//!   ancillary `Score`, ORDER BY/LIMIT);
//! - [`interp`] — the brute-force mirror interpreter: a `BTreeMap` of
//!   structured rows evaluated with SQL three-valued logic, sharing no
//!   code with the parser, optimizer, executor, or index layers;
//! - [`harness`] — execution, comparison, deterministic replay, and
//!   delta-debugging shrink to a minimal self-contained SQL repro.

pub mod concurrent;
pub mod gen;
pub mod harness;
pub mod interp;

pub use concurrent::{
    conflict_storm, lost_update_demo, run_concurrent_seed, run_concurrent_seed_opts,
    ConcurrentReport, StormReport,
};
pub use gen::{generate, Workload};
pub use harness::{fresh_db, run_crash_seed, run_seed, ChaosOpts, Divergence};
