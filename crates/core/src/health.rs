//! Index health — the `VALID → SUSPECT → QUARANTINED` state machine,
//! circuit breaker, and per-index pending-work log.
//!
//! Oracle8i marks a domain index `FAILED`/`UNUSABLE` when its cartridge
//! misbehaves; queries then refuse the index and DML can defer its
//! maintenance. [`HealthRegistry`] is our rendering of that state
//! machine, layered on the sandbox (`sandbox` module):
//!
//! - every sandboxed crossing reports its outcome here;
//! - a clean call advances the index's call clock;
//! - a [`Error::CartridgeFault`] (panic / tick-budget overrun) counts as
//!   a *fault*: the first one moves `VALID → SUSPECT`, and when the
//!   circuit breaker sees `threshold` faults within the last `window`
//!   calls on that index it trips `SUSPECT → QUARANTINED`;
//! - a SUSPECT index whose recent window drains of faults heals back to
//!   `VALID` on its own — only QUARANTINED (and BUILD_FAILED) are sticky
//!   and require `ALTER INDEX … REBUILD`.
//!
//! While an index is QUARANTINED the optimizer plans the functional
//! fallback (the operator's §2.4.2 functional binding) and base-table
//! DML appends the index's share of the work to the *pending log* held
//! here, so the statement succeeds and REBUILD can replay the log later.
//! Faults in maintenance/definition routines additionally set a *dirty*
//! flag — the cartridge's own storage may be inconsistent, so REBUILD
//! must rebuild from the base table instead of trusting a replay.
//!
//! The breaker is deterministic: windows are measured in per-index
//! crossing calls, never wall time.

use std::collections::HashMap;
use std::sync::Arc;

use extidx_common::{RowId, Value};
use parking_lot::Mutex;

/// The health state of one domain index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HealthState {
    /// Fully usable; the optimizer may plan it and DML maintains it.
    #[default]
    Valid,
    /// Recent faults below the breaker threshold: still usable, under
    /// observation. Heals to `Valid` as clean calls slide the window.
    Suspect,
    /// The breaker tripped: the optimizer must not plan this index, DML
    /// defers to the pending log, and only REBUILD restores it.
    Quarantined,
    /// `CREATE INDEX` failed *and* its cleanup faulted: the dictionary
    /// entry is kept (the name is taken, storage may linger) and only a
    /// full REBUILD or DROP resolves it.
    BuildFailed,
}

impl std::fmt::Display for HealthState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            HealthState::Valid => "VALID",
            HealthState::Suspect => "SUSPECT",
            HealthState::Quarantined => "QUARANTINED",
            HealthState::BuildFailed => "BUILD_FAILED",
        };
        write!(f, "{s}")
    }
}

/// Circuit-breaker thresholds: trip when `threshold` faults land within
/// the last `window` crossing calls of one index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    pub threshold: u32,
    pub window: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig { threshold: 3, window: 10 }
    }
}

/// One deferred maintenance operation for a quarantined index — the
/// index's share of a base-table DML that succeeded without it.
#[derive(Debug, Clone, PartialEq)]
pub enum PendingOp {
    Insert { rid: RowId, value: Value },
    Update { rid: RowId, old: Value, new: Value },
    Delete { rid: RowId, old: Value },
}

/// A state transition observed by the registry, for CallTrace recording.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    pub from: HealthState,
    pub to: HealthState,
}

#[derive(Debug, Default, Clone)]
struct IndexHealth {
    state: HealthState,
    /// Per-index crossing-call clock (successes and faults both count).
    calls: u64,
    /// Call-clock stamps of recent faults, pruned to the breaker window.
    recent_faults: Vec<u64>,
    total_faults: u64,
    /// Set when a maintenance/definition routine faulted: cartridge
    /// storage may be inconsistent, so only a full rebuild is safe.
    dirty: bool,
    pending: Vec<PendingOp>,
}

/// One row of the registry snapshot (backs `V$INDEX_HEALTH`).
#[derive(Debug, Clone)]
pub struct HealthSnapshot {
    pub index: String,
    pub state: HealthState,
    pub recent_faults: u32,
    pub total_faults: u64,
    pub pending_ops: usize,
    pub calls: u64,
    pub dirty: bool,
}

#[derive(Debug, Default)]
struct Inner {
    config: BreakerConfig,
    indexes: HashMap<String, IndexHealth>,
}

/// A deep copy of the registry's whole state — attached (opaquely) to WAL
/// commit markers and checkpoints so recovery restores health verbatim:
/// quarantines, pending-work logs, and dirty flags survive a crash.
#[derive(Debug, Clone)]
pub struct HealthDump {
    config: BreakerConfig,
    indexes: HashMap<String, IndexHealth>,
}

/// Shared, cloneable health registry (the same handle pattern as
/// [`crate::fault::FaultInjector`] and [`crate::trace::CallTrace`]), so
/// read-only engine contexts can still record scan faults.
#[derive(Debug, Clone, Default)]
pub struct HealthRegistry {
    inner: Arc<Mutex<Inner>>,
}

impl HealthRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Replace the breaker thresholds (settable per ISSUE; tests use
    /// tight windows to trip quickly).
    pub fn set_breaker(&self, config: BreakerConfig) {
        self.inner.lock().config = config;
    }

    /// Current breaker thresholds.
    pub fn breaker(&self) -> BreakerConfig {
        self.inner.lock().config
    }

    /// Register a new index as VALID (domain-index CREATE).
    pub fn register(&self, index: &str) {
        self.inner
            .lock()
            .indexes
            .insert(index.to_ascii_uppercase(), IndexHealth::default());
    }

    /// Forget an index entirely (DROP INDEX).
    pub fn remove(&self, index: &str) {
        self.inner.lock().indexes.remove(&index.to_ascii_uppercase());
    }

    /// Current state (VALID for unknown names — B-tree indexes and
    /// pre-health catalogs are simply healthy).
    pub fn state(&self, index: &str) -> HealthState {
        self.inner
            .lock()
            .indexes
            .get(&index.to_ascii_uppercase())
            .map(|h| h.state)
            .unwrap_or(HealthState::Valid)
    }

    /// Whether the optimizer may plan this index and DML should maintain
    /// it directly.
    pub fn is_usable(&self, index: &str) -> bool {
        matches!(self.state(index), HealthState::Valid | HealthState::Suspect)
    }

    /// Record a clean crossing: advances the call clock and lets a
    /// SUSPECT index heal once the window slides past its faults.
    /// Returns a transition if one happened.
    pub fn note_success(&self, index: &str) -> Option<Transition> {
        let mut g = self.inner.lock();
        let window = g.config.window;
        let h = g.indexes.get_mut(&index.to_ascii_uppercase())?;
        h.calls += 1;
        let cutoff = h.calls.saturating_sub(window);
        h.recent_faults.retain(|&stamp| stamp > cutoff);
        if h.state == HealthState::Suspect && h.recent_faults.is_empty() {
            h.state = HealthState::Valid;
            return Some(Transition { from: HealthState::Suspect, to: HealthState::Valid });
        }
        None
    }

    /// Record a sandbox-caught fault. `dirty` marks the cartridge's own
    /// storage as possibly inconsistent (maintenance/definition
    /// routines); scan/stats faults leave it clean. Returns the breaker's
    /// transition, if any.
    pub fn note_fault(&self, index: &str, dirty: bool) -> Option<Transition> {
        let mut g = self.inner.lock();
        let BreakerConfig { threshold, window } = g.config;
        let h = g.indexes.get_mut(&index.to_ascii_uppercase())?;
        h.calls += 1;
        h.total_faults += 1;
        h.dirty |= dirty;
        let cutoff = h.calls.saturating_sub(window);
        h.recent_faults.retain(|&stamp| stamp > cutoff);
        h.recent_faults.push(h.calls);
        match h.state {
            HealthState::Valid => {
                if h.recent_faults.len() as u32 >= threshold {
                    h.state = HealthState::Quarantined;
                    Some(Transition { from: HealthState::Valid, to: HealthState::Quarantined })
                } else {
                    h.state = HealthState::Suspect;
                    Some(Transition { from: HealthState::Valid, to: HealthState::Suspect })
                }
            }
            HealthState::Suspect => {
                if h.recent_faults.len() as u32 >= threshold {
                    h.state = HealthState::Quarantined;
                    Some(Transition { from: HealthState::Suspect, to: HealthState::Quarantined })
                } else {
                    None
                }
            }
            // Sticky states: faults during recovery attempts don't
            // transition further.
            HealthState::Quarantined | HealthState::BuildFailed => None,
        }
    }

    /// Force-quarantine (the qgen chaos knob and administrative tests).
    pub fn quarantine(&self, index: &str) -> Option<Transition> {
        let mut g = self.inner.lock();
        let h = g.indexes.get_mut(&index.to_ascii_uppercase())?;
        if h.state == HealthState::Quarantined {
            return None;
        }
        let from = h.state;
        h.state = HealthState::Quarantined;
        Some(Transition { from, to: HealthState::Quarantined })
    }

    /// Mark a failed CREATE whose cleanup also faulted.
    pub fn set_build_failed(&self, index: &str) -> Option<Transition> {
        let mut g = self.inner.lock();
        let h = g.indexes.entry(index.to_ascii_uppercase()).or_default();
        let from = h.state;
        h.state = HealthState::BuildFailed;
        h.dirty = true;
        (from != HealthState::BuildFailed)
            .then_some(Transition { from, to: HealthState::BuildFailed })
    }

    /// Mark the cartridge's storage as requiring a full rebuild (e.g. a
    /// transaction rollback invalidated pending-log assumptions).
    pub fn mark_dirty(&self, index: &str) {
        if let Some(h) = self.inner.lock().indexes.get_mut(&index.to_ascii_uppercase()) {
            h.dirty = true;
        }
    }

    /// Whether REBUILD must rebuild from the base table instead of
    /// replaying the pending log.
    pub fn needs_full_rebuild(&self, index: &str) -> bool {
        self.inner
            .lock()
            .indexes
            .get(&index.to_ascii_uppercase())
            .map(|h| h.dirty || h.state == HealthState::BuildFailed)
            .unwrap_or(false)
    }

    /// Append one deferred maintenance op (DML against a quarantined
    /// index).
    pub fn append_pending(&self, index: &str, op: PendingOp) {
        if let Some(h) = self.inner.lock().indexes.get_mut(&index.to_ascii_uppercase()) {
            h.pending.push(op);
        }
    }

    /// Drop the most recently appended pending op (statement-failure
    /// compensation: appends are statement-scoped until the boundary
    /// commits them).
    pub fn pop_pending(&self, index: &str) {
        if let Some(h) = self.inner.lock().indexes.get_mut(&index.to_ascii_uppercase()) {
            h.pending.pop();
        }
    }

    /// Take the whole pending log (REBUILD replay).
    pub fn take_pending(&self, index: &str) -> Vec<PendingOp> {
        self.inner
            .lock()
            .indexes
            .get_mut(&index.to_ascii_uppercase())
            .map(|h| std::mem::take(&mut h.pending))
            .unwrap_or_default()
    }

    /// Put a pending log back (failed REBUILD replay keeps the debt).
    pub fn restore_pending(&self, index: &str, ops: Vec<PendingOp>) {
        if let Some(h) = self.inner.lock().indexes.get_mut(&index.to_ascii_uppercase()) {
            let mut ops = ops;
            ops.append(&mut h.pending);
            h.pending = ops;
        }
    }

    /// Pending-log length.
    pub fn pending_len(&self, index: &str) -> usize {
        self.inner
            .lock()
            .indexes
            .get(&index.to_ascii_uppercase())
            .map(|h| h.pending.len())
            .unwrap_or(0)
    }

    /// Successful REBUILD: back to VALID with a clean slate.
    pub fn restore_valid(&self, index: &str) -> Option<Transition> {
        let mut g = self.inner.lock();
        let h = g.indexes.get_mut(&index.to_ascii_uppercase())?;
        let from = h.state;
        *h = IndexHealth::default();
        (from != HealthState::Valid).then_some(Transition { from, to: HealthState::Valid })
    }

    /// Deep-copy the whole registry state (durability commit markers).
    pub fn export(&self) -> HealthDump {
        let g = self.inner.lock();
        HealthDump { config: g.config, indexes: g.indexes.clone() }
    }

    /// Replace the whole registry state from a dump (crash recovery). The
    /// shared handle is kept — every clone of this registry sees the
    /// imported state.
    pub fn import(&self, dump: &HealthDump) {
        let mut g = self.inner.lock();
        g.config = dump.config;
        g.indexes = dump.indexes.clone();
    }

    /// Snapshot of every tracked index, name-sorted (backs
    /// `V$INDEX_HEALTH`).
    pub fn snapshot(&self) -> Vec<HealthSnapshot> {
        let g = self.inner.lock();
        let mut rows: Vec<HealthSnapshot> = g
            .indexes
            .iter()
            .map(|(name, h)| HealthSnapshot {
                index: name.clone(),
                state: h.state,
                recent_faults: h.recent_faults.len() as u32,
                total_faults: h.total_faults,
                pending_ops: h.pending.len(),
                calls: h.calls,
                dirty: h.dirty,
            })
            .collect();
        rows.sort_by(|a, b| a.index.cmp(&b.index));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breaker_trips_at_threshold_within_window() {
        let reg = HealthRegistry::new();
        reg.set_breaker(BreakerConfig { threshold: 3, window: 10 });
        reg.register("IX");
        assert_eq!(reg.state("IX"), HealthState::Valid);
        assert_eq!(
            reg.note_fault("IX", false),
            Some(Transition { from: HealthState::Valid, to: HealthState::Suspect })
        );
        assert_eq!(reg.note_fault("IX", false), None);
        assert_eq!(
            reg.note_fault("IX", false),
            Some(Transition { from: HealthState::Suspect, to: HealthState::Quarantined })
        );
        assert!(!reg.is_usable("IX"));
        // Sticky: further faults and successes do not move it.
        assert_eq!(reg.note_fault("IX", false), None);
        assert_eq!(reg.note_success("IX"), None);
        assert_eq!(reg.state("IX"), HealthState::Quarantined);
    }

    #[test]
    fn suspect_heals_when_window_slides_clean() {
        let reg = HealthRegistry::new();
        reg.set_breaker(BreakerConfig { threshold: 3, window: 4 });
        reg.register("IX");
        reg.note_fault("IX", false);
        assert_eq!(reg.state("IX"), HealthState::Suspect);
        for _ in 0..3 {
            assert_eq!(reg.note_success("IX"), None);
            assert_eq!(reg.state("IX"), HealthState::Suspect);
        }
        // Fourth clean call pushes the fault out of the window.
        assert_eq!(
            reg.note_success("IX"),
            Some(Transition { from: HealthState::Suspect, to: HealthState::Valid })
        );
        assert!(reg.is_usable("IX"));
    }

    #[test]
    fn spaced_faults_do_not_trip_the_breaker() {
        let reg = HealthRegistry::new();
        reg.set_breaker(BreakerConfig { threshold: 2, window: 3 });
        reg.register("IX");
        for _ in 0..5 {
            reg.note_fault("IX", false);
            for _ in 0..4 {
                reg.note_success("IX");
            }
        }
        // Never two faults within 3 calls of each other.
        assert_ne!(reg.state("IX"), HealthState::Quarantined);
    }

    #[test]
    fn dirty_flag_and_pending_log() {
        let reg = HealthRegistry::new();
        reg.register("IX");
        assert!(!reg.needs_full_rebuild("IX"));
        reg.note_fault("IX", false); // scan fault: clean storage
        assert!(!reg.needs_full_rebuild("IX"));
        reg.note_fault("IX", true); // maintenance fault: dirty
        assert!(reg.needs_full_rebuild("IX"));

        reg.quarantine("IX");
        reg.append_pending("IX", PendingOp::Delete { rid: RowId::new(1, 0, 0), old: Value::Null });
        reg.append_pending(
            "IX",
            PendingOp::Insert { rid: RowId::new(1, 0, 1), value: Value::from("x") },
        );
        assert_eq!(reg.pending_len("IX"), 2);
        reg.pop_pending("IX");
        assert_eq!(reg.pending_len("IX"), 1);
        let ops = reg.take_pending("IX");
        assert_eq!(ops.len(), 1);
        assert_eq!(reg.pending_len("IX"), 0);
        reg.restore_pending("IX", ops);
        assert_eq!(reg.pending_len("IX"), 1);

        let t = reg.restore_valid("IX").unwrap();
        assert_eq!(t.to, HealthState::Valid);
        assert!(!reg.needs_full_rebuild("IX"));
        assert_eq!(reg.pending_len("IX"), 0);
    }

    #[test]
    fn build_failed_is_sticky_until_restore() {
        let reg = HealthRegistry::new();
        reg.register("IX");
        let t = reg.set_build_failed("IX").unwrap();
        assert_eq!(t.to, HealthState::BuildFailed);
        assert!(!reg.is_usable("IX"));
        assert!(reg.needs_full_rebuild("IX"));
        reg.note_fault("IX", false);
        assert_eq!(reg.state("IX"), HealthState::BuildFailed);
        reg.restore_valid("IX");
        assert_eq!(reg.state("IX"), HealthState::Valid);
    }

    #[test]
    fn unknown_indexes_read_as_valid() {
        let reg = HealthRegistry::new();
        assert_eq!(reg.state("NOPE"), HealthState::Valid);
        assert!(reg.is_usable("NOPE"));
        assert_eq!(reg.note_fault("NOPE", true), None);
        assert_eq!(reg.pending_len("NOPE"), 0);
    }

    #[test]
    fn snapshot_is_name_sorted() {
        let reg = HealthRegistry::new();
        reg.register("B_IX");
        reg.register("A_IX");
        reg.note_fault("B_IX", false);
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].index, "A_IX");
        assert_eq!(snap[1].index, "B_IX");
        assert_eq!(snap[1].state, HealthState::Suspect);
        assert_eq!(snap[1].total_faults, 1);
    }
}
